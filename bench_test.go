package delta

// The benchmark harness: one testing.B benchmark per paper table/figure
// (DESIGN.md §5). Each benchmark regenerates its artifact through the
// experiment driver and reports domain-specific metrics alongside the usual
// ns/op, so `go test -bench=. -benchmem` reproduces the whole evaluation.
//
// Figure benchmarks run the reduced "quick" sweep per iteration to keep
// -bench runs tractable; `delta-experiments -run all` produces the full
// artifacts recorded in EXPERIMENTS.md.

import (
	"context"
	"math"
	"testing"

	"delta/internal/benchkit"
	"delta/internal/experiments"
	"delta/internal/explore"
	"delta/internal/gpu"
	"delta/internal/perf"
	"delta/internal/pipeline"
	"delta/internal/tiling"
	"delta/internal/traffic"
)

var benchCfg = experiments.Config{Batch: 32, SimBatch: 2, TimingBatch: 8, Quick: true}

func benchDriver(b *testing.B, id string) {
	d, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := d.Run(context.Background(), benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for _, t := range tables {
			rows += t.Len()
		}
		b.ReportMetric(float64(rows), "rows")
	}
}

// BenchmarkTab1DeviceSpecs regenerates Table I.
func BenchmarkTab1DeviceSpecs(b *testing.B) { benchDriver(b, "tab1") }

// BenchmarkFig4MissRates regenerates the GoogLeNet miss-rate figure.
func BenchmarkFig4MissRates(b *testing.B) { benchDriver(b, "fig4") }

// BenchmarkFig6CTATileLookup regenerates the CTA-tile-width staircase.
func BenchmarkFig6CTATileLookup(b *testing.B) { benchDriver(b, "fig6") }

// BenchmarkFig11TrafficModel regenerates the headline traffic validation.
func BenchmarkFig11TrafficModel(b *testing.B) { benchDriver(b, "fig11") }

// BenchmarkFig12PriorTraffic regenerates the prior-model traffic comparison.
func BenchmarkFig12PriorTraffic(b *testing.B) { benchDriver(b, "fig12") }

// BenchmarkFig13PerfTitanXp regenerates the TITAN Xp performance validation.
func BenchmarkFig13PerfTitanXp(b *testing.B) { benchDriver(b, "fig13") }

// BenchmarkFig14PerfV100 regenerates the V100 performance validation.
func BenchmarkFig14PerfV100(b *testing.B) { benchDriver(b, "fig14") }

// BenchmarkFig15Distribution regenerates the estimate distributions.
func BenchmarkFig15Distribution(b *testing.B) { benchDriver(b, "fig15") }

// BenchmarkFig16ScalingStudy regenerates the GPU scaling study.
func BenchmarkFig16ScalingStudy(b *testing.B) { benchDriver(b, "fig16") }

// BenchmarkFig17Sensitivity regenerates the sensitivity sweeps.
func BenchmarkFig17Sensitivity(b *testing.B) { benchDriver(b, "fig17") }

// BenchmarkFig18DRAMMicrobench regenerates the DRAM latency/BW curves.
func BenchmarkFig18DRAMMicrobench(b *testing.B) { benchDriver(b, "fig18") }

// BenchmarkFig19ExecutionCycles regenerates the absolute-cycles figure.
func BenchmarkFig19ExecutionCycles(b *testing.B) { benchDriver(b, "fig19") }

// BenchmarkFig20AbsoluteTraffic regenerates the absolute-traffic figure.
func BenchmarkFig20AbsoluteTraffic(b *testing.B) { benchDriver(b, "fig20") }

// BenchmarkExtTraining regenerates the training-step extension tables.
func BenchmarkExtTraining(b *testing.B) { benchDriver(b, "train") }

// BenchmarkExtExplore regenerates the design-space-search extension table.
func BenchmarkExtExplore(b *testing.B) { benchDriver(b, "explore") }

// --- Micro-benchmarks of the core model itself ---

// BenchmarkTrafficModelSingleLayer measures one closed-form traffic
// evaluation (the unit of every design-space sweep).
func BenchmarkTrafficModelSingleLayer(b *testing.B) {
	l := Conv{Name: "b", B: 256, Ci: 256, Hi: 13, Wi: 13, Co: 384, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	d := gpu.TitanXp()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := traffic.Model(l, d, traffic.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfModelSingleLayer measures traffic + performance model.
func BenchmarkPerfModelSingleLayer(b *testing.B) {
	l := Conv{Name: "b", B: 256, Ci: 256, Hi: 13, Wi: 13, Co: 384, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	d := gpu.TitanXp()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := perf.ModelLayer(l, d, traffic.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResNet152FullSweep measures a full-network evaluation, the unit
// of the Fig. 16 design-space exploration.
func BenchmarkResNet152FullSweep(b *testing.B) {
	net := ResNet152Full(256)
	d := gpu.TitanXp()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := perf.ModelAll(net.Layers, d, traffic.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(perf.NetworkTime(rs, net.Counts)*1e3, "predicted-ms")
	}
}

// BenchmarkSimulatorSmallLayer measures the trace-driven simulator on the
// Appendix A base layer at B=1.
func BenchmarkSimulatorSmallLayer(b *testing.B) {
	l := Conv{Name: "b", B: 1, Ci: 256, Hi: 13, Wi: 13, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Simulate(l, SimConfig{Device: gpu.TitanXp()})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.L1Stats.SectorAccesses)/float64(b.Elapsed().Nanoseconds())*1e3, "Msectors/s")
	}
}

// BenchmarkCTATileSelect measures the Fig. 6 lookup (called per layer in
// every sweep).
func BenchmarkCTATileSelect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = tiling.Select(i % 512)
	}
}

// --- Serial vs. pipeline design-space exploration ---
//
// The paper frames DeLTA as fast enough to drive whole design-space
// optimizations; these two benchmarks measure that claim's hot path — the
// default-axes grid (96 candidates) over full ResNet152 — serially and
// through the concurrent pipeline. The pipeline run uses a fresh evaluator
// with the cache disabled so the comparison isolates the worker-pool
// fan-out; on >= 4 cores the pipeline run should be >= 2x faster.

func exploreWorkloadAndScales() (explore.Workload, []gpu.Scale, explore.CostModel) {
	return explore.Workload{Net: ResNet152Full(256)},
		explore.DefaultAxes().Enumerate(),
		explore.DefaultCostModel()
}

// BenchmarkExploreSerial measures the serial explore.Evaluate sweep.
func BenchmarkExploreSerial(b *testing.B) {
	w, scales, cm := exploreWorkloadAndScales()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cands, err := explore.Evaluate(w, gpu.TitanXp(), scales, cm)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(cands)), "candidates")
	}
}

// BenchmarkExplorePipeline measures the same sweep through the concurrent
// pipeline (cacheless, so every candidate is really computed).
func BenchmarkExplorePipeline(b *testing.B) {
	w, scales, cm := exploreWorkloadAndScales()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := pipeline.New(pipeline.WithoutCache())
		cands, err := p.Explore(context.Background(), w, gpu.TitanXp(), scales, cm)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(cands)), "candidates")
	}
}

// BenchmarkExplorePipelineCached measures the steady-state serving shape:
// a warm shared evaluator answering repeated sweeps from the memo cache.
func BenchmarkExplorePipelineCached(b *testing.B) {
	w, scales, cm := exploreWorkloadAndScales()
	p := pipeline.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Explore(context.Background(), w, gpu.TitanXp(), scales, cm); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serial vs. parallel trace-driven simulation ---
//
// The two benchmark pairs behind BENCH_sim.json (see cmd/delta-bench,
// which runs the same benchkit bodies). On one core the parallel runs
// degrade gracefully to the serial path; on >= 4 cores the suite pair
// should show >= 3x.

// BenchmarkSimEngineSerial measures the serial reference engine on one
// mid-size layer.
func BenchmarkSimEngineSerial(b *testing.B) { benchkit.EngineRun(b, 1) }

// BenchmarkSimEngineParallel measures the deterministic two-phase parallel
// engine (GOMAXPROCS workers) on the same layer.
func BenchmarkSimEngineParallel(b *testing.B) { benchkit.EngineRun(b, 0) }

// BenchmarkSimSuiteSerial simulates the Fig. 4 corpus layer by layer on
// one goroutine — the pre-pipeline experiment-driver shape.
func BenchmarkSimSuiteSerial(b *testing.B) { benchkit.SuiteSerial(b) }

// BenchmarkSimSuiteParallel fans the same corpus across the pipeline
// worker pool (cacheless, so every layer really simulates).
func BenchmarkSimSuiteParallel(b *testing.B) { benchkit.SuiteParallel(b) }

// BenchmarkSimEngineParallelParts measures the two-phase engine with the
// shared-L2 replay itself partitioned across two set-partition workers —
// the configuration that lifts the serial-replay Amdahl ceiling.
func BenchmarkSimEngineParallelParts(b *testing.B) { benchkit.EngineRunParts(b, 0, 2) }

// BenchmarkSimStreamSweepPrivate measures an L2-capacity sweep with
// per-run private stream generation (the pre-tier behaviour).
func BenchmarkSimStreamSweepPrivate(b *testing.B) { benchkit.StreamSweepPrivate(b) }

// BenchmarkSimStreamSweepShared measures the same sweep with the shared
// stream-cache tier, so adjacent points reuse coalesced tile streams.
func BenchmarkSimStreamSweepShared(b *testing.B) { benchkit.StreamSweepShared(b) }

// BenchmarkScenarioStream measures declarative-sweep throughput: the
// canonical multi-axis scenario streamed through a cacheless pipeline,
// reporting points/s — the Scenario-API overhead metric BENCH_sim.json
// tracks (see cmd/delta-bench, which runs the same benchkit body).
func BenchmarkScenarioStream(b *testing.B) { benchkit.ScenarioStream(b) }

// BenchmarkScenarioStreamCached measures the steady-state serving shape:
// the same sweep against a warm shared evaluator, so every point
// memo-hits and the measurement isolates pure expansion + streaming
// overhead.
func BenchmarkScenarioStreamCached(b *testing.B) { benchkit.ScenarioStreamCached(b) }

// BenchmarkFleetSweep measures the distributed shape of the same sweep:
// sharded over in-process HTTP workers and merged by a coordinator — the
// fleet_vs_single numerator in BENCH_sim.json.
func BenchmarkFleetSweep(b *testing.B) { benchkit.FleetSweep(b) }

// --- Ablation benches (DESIGN.md §4 design choices) ---

// ablationDRAMRatio evaluates the whole paper suite under a traffic-model
// variant and reports the geomean model/simulator DRAM ratio, so ablations
// are directly comparable. The per-layer simulations fan out across a
// cacheless pipeline so every iteration really simulates.
func ablationDRAMRatio(b *testing.B, opt traffic.Options, skipPad bool) {
	b.ReportAllocs()
	d := gpu.TitanXp()
	ls := []Conv{
		{Name: "a", B: 2, Ci: 192, Hi: 28, Wi: 28, Co: 96, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
		{Name: "b", B: 2, Ci: 64, Hi: 56, Wi: 56, Co: 256, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
		{Name: "c", B: 2, Ci: 512, Hi: 14, Wi: 14, Co: 128, Hf: 1, Wf: 1, Stride: 1},
	}
	p := NewPipeline(WithoutPipelineCache())
	for i := 0; i < b.N; i++ {
		sims, err := p.SimulateLayers(context.Background(), ls,
			SimConfig{Device: d, SkipPadding: skipPad})
		if err != nil {
			b.Fatal(err)
		}
		prod := 1.0
		for li, l := range ls {
			m, err := traffic.Model(l, d, opt)
			if err != nil {
				b.Fatal(err)
			}
			prod *= m.DRAMBytes / sims[li].DRAMBytes
		}
		b.ReportMetric(math.Pow(prod, 1.0/float64(len(ls))), "geomean-DRAM-ratio")
	}
}

// BenchmarkAblationPaperDRAM measures the paper's Eq. 10 (column re-stream
// always charged).
func BenchmarkAblationPaperDRAM(b *testing.B) {
	ablationDRAMRatio(b, traffic.Options{}, false)
}

// BenchmarkAblationCapacityAwareDRAM measures the L2-capacity-aware variant
// that removes the paper's known small-layer over-estimation.
func BenchmarkAblationCapacityAwareDRAM(b *testing.B) {
	ablationDRAMRatio(b, traffic.Options{CapacityAwareDRAM: true}, false)
}

// BenchmarkAblationPaperMLIFilter measures the published Pascal filter-MLI
// constants instead of the request-granularity closed form.
func BenchmarkAblationPaperMLIFilter(b *testing.B) {
	ablationDRAMRatio(b, traffic.Options{PaperMLIFilter: true}, false)
}

// BenchmarkAblationSkipPadding measures the simulator with zero-padding
// loads predicated off (the model keeps them, per the paper).
func BenchmarkAblationSkipPadding(b *testing.B) {
	ablationDRAMRatio(b, traffic.Options{}, true)
}
