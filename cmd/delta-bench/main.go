// Command delta-bench records the repository's simulator performance
// baseline: it runs the canonical serial-vs-parallel benchmark pairs (the
// same benchkit bodies `go test -bench 'BenchmarkSim'` runs) through
// testing.Benchmark and writes the results — ns/op, allocs/op, and the
// serial-vs-parallel speedups — as a JSON trajectory artifact.
//
// Usage:
//
//	delta-bench [-o BENCH_sim.json] [-check-against BENCH_sim.json]
//	            [-workers-sweep] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// The artifact is committed at the repo root as the recorded baseline and
// regenerated per-PR by the CI benchmark job, so perf regressions in the
// simulator hot paths are visible in review. -check-against compares the
// fresh run to a recorded baseline and exits non-zero when EngineSerial
// throughput regresses more than 10%, when the warm scenario path loses to
// the cold one, when the shared stream tier loses to private generation,
// or — on hosts with GOMAXPROCS >= 4 — when the parallel engine fails to
// beat serial by >= 1.05x or the suite fan-out falls below 1.0x (the CI
// guards). -workers-sweep additionally measures engine throughput at
// 1/2/4/max workers and several replay-partition counts into a "scaling"
// section. -cpuprofile and -memprofile capture pprof profiles of the
// benchmark workload for offline analysis (CI uploads them as artifacts).
// Compare two checkouts with `go test -bench 'BenchmarkSim' -count 10`
// piped through benchstat for statistically grounded deltas.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"delta/internal/benchkit"
)

// entry is one benchmark's recorded measurements.
type entry struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Iterations  int                `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// baseline is the BENCH_sim.json document.
type baseline struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	SuiteSize  int    `json:"suite_layers"`

	// Benchmarks maps the BenchmarkSim* names (without the prefix) to
	// their measurements.
	Benchmarks map[string]entry `json:"benchmarks"`

	// Speedup holds serial-ns / parallel-ns per pair. On a single-core
	// host the parallel engine degrades gracefully to the serial path, so
	// ~1.0 is expected there; the >= 3x target applies at >= 4 cores.
	// stream_shared_vs_private is private-ns / shared-ns over the
	// L2-capacity sweep: how much the shared stream tier saves.
	Speedup map[string]float64 `json:"speedup"`

	// Scaling (with -workers-sweep) holds EngineRun measurements at
	// several worker and replay-partition counts, keyed engine_w<N> and
	// engine_w<N>_p<P> (w0 = GOMAXPROCS workers).
	Scaling map[string]entry `json:"scaling,omitempty"`

	// Throughput tracks the Scenario-API overhead: whole-network points/s
	// through Evaluator.Stream on the canonical multi-axis sweep, cold
	// (cacheless) and warm (memo-cached), plus their ratio. The warm path
	// must not lose to the cold one — a memo hit that costs more than the
	// recompute it saves is a regression (scenario_cached_vs_cold < 1).
	// fleet_vs_single records (not gates) the same sweep sharded across
	// in-process fleet workers relative to the single-node cold path.
	Throughput map[string]float64 `json:"throughput"`
}

// engineSerialMetric is the regression-guard quantity: single-thread
// simulated sectors per second, the engine's core hot-path throughput.
const engineSerialMetric = "Msectors/s"

// regressionTolerance is how far EngineSerial may fall below the recorded
// baseline before -check-against fails (shared-runner noise allowance).
const regressionTolerance = 0.10

func measure(f func(b *testing.B)) entry {
	r := testing.Benchmark(f)
	return entry{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
		Metrics:     r.Extra,
	}
}

func main() {
	// All work happens in run so its defers — notably StopCPUProfile,
	// which is what actually writes the CPU profile — execute before the
	// process exits, profile included on the failing (regressed) runs the
	// profile exists to diagnose.
	os.Exit(run())
}

func run() int {
	out := flag.String("o", "BENCH_sim.json", "output path for the benchmark trajectory")
	checkAgainst := flag.String("check-against", "", "baseline BENCH_sim.json to compare against; exit non-zero on >10% EngineSerial regression or failed speedup gates")
	workersSweep := flag.Bool("workers-sweep", false, "measure engine throughput at 1/2/4/max workers and several replay-partition counts into a scaling section")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark workload to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the benchmark workload to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	doc := baseline{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SuiteSize:  len(benchkit.SuiteLayers()),
		Benchmarks: map[string]entry{},
		Speedup:    map[string]float64{},
		Throughput: map[string]float64{},
	}

	run := func(name string, f func(b *testing.B)) entry {
		fmt.Fprintf(os.Stderr, "delta-bench: running %s...\n", name)
		e := measure(f)
		doc.Benchmarks[name] = e
		return e
	}
	// The parallel engine measurement uses partitioned L2 replay on hosts
	// with cores to run it (the configuration that lifts the serial-replay
	// Amdahl ceiling); on one core partitions would only add harness
	// overhead the engine is designed to avoid, so the replay stays serial
	// there, matching the engine's own degradation behaviour.
	engineParts := 0
	if doc.GOMAXPROCS >= 2 {
		engineParts = 2
	}
	engSerial := run("EngineSerial", func(b *testing.B) { benchkit.EngineRun(b, 1) })
	engPar := run("EngineParallel", func(b *testing.B) { benchkit.EngineRunParts(b, 0, engineParts) })
	suiteSerial := run("SuiteSerial", benchkit.SuiteSerial)
	suitePar := run("SuiteParallel", benchkit.SuiteParallel)
	streamPrivate := run("StreamSweepPrivate", benchkit.StreamSweepPrivate)
	streamShared := run("StreamSweepShared", benchkit.StreamSweepShared)

	doc.Speedup["engine_parallel_vs_serial"] = engSerial.NsPerOp / engPar.NsPerOp
	doc.Speedup["engine_replay_partitions"] = float64(engineParts)
	doc.Speedup["suite_parallel_vs_serial"] = suiteSerial.NsPerOp / suitePar.NsPerOp
	doc.Speedup["stream_shared_vs_private"] = streamPrivate.NsPerOp / streamShared.NsPerOp

	if *workersSweep {
		doc.Scaling = map[string]entry{}
		seen := map[int]bool{}
		for _, w := range []int{1, 2, 4, doc.GOMAXPROCS} {
			if seen[w] {
				continue
			}
			seen[w] = true
			doc.Scaling[fmt.Sprintf("engine_w%d", w)] =
				run(fmt.Sprintf("EngineW%d", w), func(b *testing.B) { benchkit.EngineRun(b, w) })
		}
		for _, p := range []int{2, 4} {
			doc.Scaling[fmt.Sprintf("engine_w0_p%d", p)] =
				run(fmt.Sprintf("EngineW0P%d", p), func(b *testing.B) { benchkit.EngineRunParts(b, 0, p) })
		}
	}

	scenCold := run("ScenarioStream", benchkit.ScenarioStream)
	scenWarm := run("ScenarioStreamCached", benchkit.ScenarioStreamCached)
	doc.Throughput["scenario_points_per_sec"] = scenCold.Metrics["points/s"]
	doc.Throughput["scenario_points_per_sec_cached"] = scenWarm.Metrics["points/s"]
	cachedVsCold := scenWarm.Metrics["points/s"] / scenCold.Metrics["points/s"]
	doc.Throughput["scenario_cached_vs_cold"] = cachedVsCold

	// Distributed shape of the same sweep: sharded over in-process HTTP
	// workers and merged by a coordinator. Recorded, not gated — the ratio
	// mostly measures HTTP+SSE overhead vs fleet parallelism and swings
	// with host core count.
	fleet := run("FleetSweep", benchkit.FleetSweep)
	doc.Throughput["fleet_points_per_sec"] = fleet.Metrics["points/s"]
	doc.Throughput["fleet_vs_single"] = fleet.Metrics["points/s"] / scenCold.Metrics["points/s"]

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fail(err)
		}
		f.Close()
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("delta-bench: wrote %s (engine %.2fx, suite %.2fx, streams %.2fx, warm/cold %.2fx at GOMAXPROCS=%d)\n",
		*out, doc.Speedup["engine_parallel_vs_serial"],
		doc.Speedup["suite_parallel_vs_serial"],
		doc.Speedup["stream_shared_vs_private"], cachedVsCold, doc.GOMAXPROCS)

	failed := false
	gate := func(bad bool, format string, args ...any) {
		if !bad {
			return
		}
		fmt.Fprintf(os.Stderr, "delta-bench: WARNING: "+format+"\n", args...)
		if *checkAgainst != "" {
			failed = true
		}
	}
	// Warm must beat cold: a memo hit costing more than the recompute it
	// replaces means the cache lookup path has regressed.
	gate(cachedVsCold < 1,
		"ScenarioStreamCached (%.0f points/s) is slower than ScenarioStream (%.0f points/s): memo hits cost more than recomputing",
		scenWarm.Metrics["points/s"], scenCold.Metrics["points/s"])
	// The shared stream tier must not lose to private generation: it
	// strictly removes generation work, so a real loss means the tier's
	// lookup or publication path has regressed (the same noise allowance
	// as the EngineSerial guard applies — the pair's bodies run few
	// iterations under testing.Benchmark's default budget).
	gate(doc.Speedup["stream_shared_vs_private"] < 1-regressionTolerance,
		"StreamSweepShared is slower than StreamSweepPrivate (%.2fx): the shared stream tier costs more than the generation it saves",
		doc.Speedup["stream_shared_vs_private"])
	// Parallel-execution gates only bind where the cores exist to parallelize
	// (the engine degrades gracefully to ~1.0x on small hosts).
	if doc.GOMAXPROCS >= 4 {
		gate(doc.Speedup["engine_parallel_vs_serial"] < 1.05,
			"engine_parallel_vs_serial %.2fx < 1.05x at GOMAXPROCS=%d: the parallel engine is not paying for itself",
			doc.Speedup["engine_parallel_vs_serial"], doc.GOMAXPROCS)
		gate(doc.Speedup["suite_parallel_vs_serial"] < 1.0,
			"suite_parallel_vs_serial %.2fx < 1.0x at GOMAXPROCS=%d: the pipeline fan-out is slower than the serial driver",
			doc.Speedup["suite_parallel_vs_serial"], doc.GOMAXPROCS)
	} else if doc.GOMAXPROCS >= 2 && doc.Speedup["suite_parallel_vs_serial"] < 1.0 {
		fmt.Fprintf(os.Stderr,
			"delta-bench: WARNING: suite_parallel_vs_serial %.2fx < 1.0x on a multi-core host (GOMAXPROCS=%d)\n",
			doc.Speedup["suite_parallel_vs_serial"], doc.GOMAXPROCS)
	}
	if *checkAgainst != "" && !checkRegression(*checkAgainst, engSerial) {
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}

// checkRegression compares the fresh EngineSerial throughput to the
// recorded baseline and reports (loudly) whether it is acceptable.
func checkRegression(path string, engSerial entry) bool {
	buf, err := os.ReadFile(path)
	if err != nil {
		fail(fmt.Errorf("check-against: %w", err))
		return false
	}
	var base baseline
	if err := json.Unmarshal(buf, &base); err != nil {
		fail(fmt.Errorf("check-against %s: %w", path, err))
		return false
	}
	ref, ok := base.Benchmarks["EngineSerial"]
	if !ok || ref.Metrics[engineSerialMetric] == 0 {
		fmt.Fprintf(os.Stderr, "delta-bench: check-against %s: no EngineSerial %s metric recorded; skipping check\n",
			path, engineSerialMetric)
		return true
	}
	baseline := ref.Metrics[engineSerialMetric]
	fresh := engSerial.Metrics[engineSerialMetric]
	ratio := fresh / baseline
	fmt.Fprintf(os.Stderr, "delta-bench: EngineSerial %.2f %s vs baseline %.2f (%.2fx)\n",
		fresh, engineSerialMetric, baseline, ratio)
	if ratio < 1-regressionTolerance {
		fmt.Fprintf(os.Stderr,
			"delta-bench: FAIL: EngineSerial regressed >%d%% vs %s (%.2f -> %.2f %s)\n",
			int(regressionTolerance*100), path, baseline, fresh, engineSerialMetric)
		return false
	}
	return true
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "delta-bench:", err)
	return 1
}
