// Command delta-bench records the repository's simulator performance
// baseline: it runs the canonical serial-vs-parallel benchmark pairs (the
// same benchkit bodies `go test -bench 'BenchmarkSim'` runs) through
// testing.Benchmark and writes the results — ns/op, allocs/op, and the
// serial-vs-parallel speedups — as a JSON trajectory artifact.
//
// Usage:
//
//	delta-bench [-o BENCH_sim.json]
//
// The artifact is committed at the repo root as the recorded baseline and
// regenerated per-PR by the non-blocking CI benchmark job, so perf
// regressions in the simulator hot paths are visible in review. Compare
// two checkouts with `go test -bench 'BenchmarkSim' -count 10` piped
// through benchstat for statistically grounded deltas.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"delta/internal/benchkit"
)

// entry is one benchmark's recorded measurements.
type entry struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Iterations  int                `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// baseline is the BENCH_sim.json document.
type baseline struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	SuiteSize  int    `json:"suite_layers"`

	// Benchmarks maps the four BenchmarkSim* names (without the prefix)
	// to their measurements.
	Benchmarks map[string]entry `json:"benchmarks"`

	// Speedup holds serial-ns / parallel-ns per pair. On a single-core
	// host the parallel engine degrades gracefully to the serial path, so
	// ~1.0 is expected there; the >= 3x target applies at >= 4 cores.
	Speedup map[string]float64 `json:"speedup"`

	// Throughput tracks the Scenario-API overhead: whole-network points/s
	// through Evaluator.Stream on the canonical multi-axis sweep, cold
	// (cacheless) and warm (memo-cached), so API-layer regressions show
	// in the trajectory alongside the simulator hot paths.
	Throughput map[string]float64 `json:"throughput"`
}

func measure(f func(b *testing.B)) entry {
	r := testing.Benchmark(f)
	return entry{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
		Metrics:     r.Extra,
	}
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output path for the benchmark trajectory")
	flag.Parse()

	doc := baseline{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SuiteSize:  len(benchkit.SuiteLayers()),
		Benchmarks: map[string]entry{},
		Speedup:    map[string]float64{},
		Throughput: map[string]float64{},
	}

	run := func(name string, f func(b *testing.B)) entry {
		fmt.Fprintf(os.Stderr, "delta-bench: running %s...\n", name)
		e := measure(f)
		doc.Benchmarks[name] = e
		return e
	}
	engSerial := run("EngineSerial", func(b *testing.B) { benchkit.EngineRun(b, 1) })
	engPar := run("EngineParallel", func(b *testing.B) { benchkit.EngineRun(b, 0) })
	suiteSerial := run("SuiteSerial", benchkit.SuiteSerial)
	suitePar := run("SuiteParallel", benchkit.SuiteParallel)

	doc.Speedup["engine_parallel_vs_serial"] = engSerial.NsPerOp / engPar.NsPerOp
	doc.Speedup["suite_parallel_vs_serial"] = suiteSerial.NsPerOp / suitePar.NsPerOp

	scenCold := run("ScenarioStream", benchkit.ScenarioStream)
	scenWarm := run("ScenarioStreamCached", benchkit.ScenarioStreamCached)
	doc.Throughput["scenario_points_per_sec"] = scenCold.Metrics["points/s"]
	doc.Throughput["scenario_points_per_sec_cached"] = scenWarm.Metrics["points/s"]

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("delta-bench: wrote %s (engine %.2fx, suite %.2fx at GOMAXPROCS=%d)\n",
		*out, doc.Speedup["engine_parallel_vs_serial"],
		doc.Speedup["suite_parallel_vs_serial"], doc.GOMAXPROCS)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "delta-bench:", err)
	os.Exit(1)
}
