// Command delta-experiments regenerates the paper's evaluation artifacts:
// every table and figure of Section VII and the appendices, as documented in
// DESIGN.md's per-experiment index.
//
// Examples:
//
//	delta-experiments -list
//	delta-experiments -run fig11
//	delta-experiments -run all -simbatch 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"delta/internal/experiments"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		run      = flag.String("run", "all", "experiment id (tab1, fig4, ...) or 'all'")
		batch    = flag.Int("batch", 256, "analytical-model mini-batch")
		simBatch = flag.Int("simbatch", 4, "trace-simulation mini-batch")
		timBatch = flag.Int("timingbatch", 32, "timing-simulation mini-batch")
		quick    = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		csvDir   = flag.String("csvdir", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "delta-experiments:", err)
			os.Exit(1)
		}
	}

	if *list {
		for _, d := range experiments.Drivers() {
			fmt.Printf("%-6s %s\n", d.ID, d.Title)
		}
		return
	}

	cfg := experiments.Config{
		Batch: *batch, SimBatch: *simBatch, TimingBatch: *timBatch, Quick: *quick,
	}

	var drivers []experiments.Driver
	if *run == "all" {
		drivers = experiments.Drivers()
	} else {
		d, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "delta-experiments:", err)
			os.Exit(1)
		}
		drivers = []experiments.Driver{d}
	}

	for _, d := range drivers {
		start := time.Now()
		tables, err := d.Run(ctx, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "delta-experiments: %s: %v\n", d.ID, err)
			os.Exit(1)
		}
		fmt.Printf("### %s — %s (%.1fs)\n\n", d.ID, d.Title, time.Since(start).Seconds())
		for i, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "delta-experiments:", err)
				os.Exit(1)
			}
			fmt.Println()
			if *csvDir != "" {
				name := fmt.Sprintf("%s_%d.csv", d.ID, i)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err == nil {
					err = t.RenderCSV(f)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "delta-experiments:", err)
					os.Exit(1)
				}
			}
		}
	}
}
