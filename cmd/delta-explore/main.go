// Command delta-explore searches a GPU design space with the DeLTA model:
// it enumerates resource-scaling grids around a baseline device, prices each
// candidate with a silicon cost model, and reports the Pareto frontier of
// (hardware cost, predicted speedup) for a CNN workload — the design-space
// exploration the paper's conclusion frames as a convex optimization.
// Candidates fan out across all cores through the shared pipeline; Ctrl-C
// cancels a sweep cleanly.
//
// Examples:
//
//	delta-explore -net resnet152 -target 4.0
//	delta-explore -net vgg16 -gpu V100 -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"delta"
	"delta/internal/report"
)

func main() {
	var (
		gpuName = flag.String("gpu", "TITAN Xp", "baseline device")
		netName = flag.String("net", "resnet152", "workload: alexnet, vgg16, googlenet, resnet50, resnet152 (full instances)")
		batch   = flag.Int("b", 256, "mini-batch size")
		target  = flag.Float64("target", 0, "report the cheapest design hitting this speedup (0 = skip)")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	base, err := delta.DeviceByName(*gpuName)
	if err != nil {
		fatal(err)
	}
	name := *netName
	if name == "resnet152" {
		// The scaling study runs every conv instance of the real network.
		name = "resnet152full"
	}
	net, err := delta.NetworkByName(name, *batch)
	if err != nil {
		fatal(err)
	}

	p := delta.NewPipeline(delta.WithPipelineWorkers(*workers))
	cands, err := p.Explore(ctx, delta.ExploreWorkload{Net: net},
		base, delta.DefaultExploreAxes().Enumerate(), delta.DefaultCostModel())
	if err != nil {
		fatal(err)
	}
	front := delta.ParetoFront(cands)

	t := report.NewTable(
		fmt.Sprintf("Pareto frontier: %s on scaled %s (%d candidates)", net.Name, base.Name, len(cands)),
		"cost", "speedup", "eff", "SMs", "MAC/SM", "mem BW", "SM-local")
	for _, c := range front {
		t.AddRow(c.Cost, c.Speedup, c.Efficiency(),
			fmt.Sprintf("%.1fx", orOne(c.Scale.NumSM)),
			fmt.Sprintf("%.1fx", orOne(c.Scale.MACPerSM)),
			fmt.Sprintf("%.1fx", orOne(c.Scale.DRAMBW)),
			fmt.Sprintf("%.1fx", orOne(c.Scale.RegPerSM)))
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}

	if *target > 0 {
		if best, ok := delta.CheapestAtLeast(cands, *target); ok {
			fmt.Printf("\nCheapest design reaching %.1fx: %s\n", *target, best)
			fmt.Printf("  scales: %+v\n", best.Scale)
		} else {
			fmt.Printf("\nNo enumerated design reaches %.1fx.\n", *target)
		}
	}
}

func orOne(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "delta-explore:", err)
	os.Exit(1)
}
