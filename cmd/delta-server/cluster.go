// Coordinator-mode glue: with -coordinator -peers, /v2 job sweeps are
// sharded across a fleet of delta-server workers (internal/cluster) and
// the merged per-point stream is drained into the same job record a
// single-node sweep fills. Workers render points with the job store's own
// renderer, so a distributed job's results — payloads, ordering, progress
// counts — are byte-identical to running the sweep on one node.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"delta"
	"delta/internal/cluster"
)

// runClusterJob drains a distributed sweep into the job record, the
// coordinator-mode counterpart of runJob. The coordinator merges worker
// shard streams back into expansion order, so appends land exactly as the
// single-node stream would deliver them; terminal classification mirrors
// runJob, with coordination failures (a shard out of attempts, a merge
// error) failing the job with their cause.
func (s *server) runClusterJob(ctx context.Context, j *job, doc json.RawMessage, sc delta.Scenario, offset int, policy delta.StreamErrorPolicy) {
	defer s.jobs.runners.Done()
	defer j.cancel(nil)
	var firstErr string
	runErr := s.coord.Run(ctx, cluster.Sweep{
		JobID: j.id, Doc: doc, Scenario: sc, Offset: offset, Policy: policy,
	}, func(u cluster.Update) error {
		var pr pointResult
		if err := json.Unmarshal(u.Payload, &pr); err != nil {
			return fmt.Errorf("decoding worker result %d: %w", u.Index, err)
		}
		seq := j.append(pr)
		s.jobs.durable.recordResult(j.id, seq, pr)
		if u.Err != "" && firstErr == "" {
			firstErr = u.Err
		}
		return nil
	})
	now := s.jobs.cfg.now()
	switch {
	case ctx.Err() != nil:
		cause := context.Cause(ctx)
		j.finish(jobCancelled, cause.Error(), now)
		// Like runJob: a shutdown cancellation stays "running" durably so
		// the next process resumes the sweep from the merged prefix.
		if !errors.Is(cause, errServerShutdown) {
			s.jobs.durable.recordFinish(j.id, jobCancelled, cause.Error(), now)
		}
	case runErr != nil:
		j.finish(jobFailed, runErr.Error(), now)
		s.jobs.durable.recordFinish(j.id, jobFailed, runErr.Error(), now)
	case firstErr != "" && policy == delta.StreamFailFast:
		// The merger stopped emitting at the failing point; the stored
		// prefix matches a single-node fail-fast run.
		j.finish(jobFailed, firstErr, now)
		s.jobs.durable.recordFinish(j.id, jobFailed, firstErr, now)
	default:
		j.finish(jobDone, "", now)
		s.jobs.durable.recordFinish(j.id, jobDone, "", now)
	}
}

// parsePeersFlag resolves -peers: a comma-separated list of worker base
// URLs, or @file with one peer per line (blank lines and # comments
// skipped).
func parsePeersFlag(v string) ([]string, error) {
	v = strings.TrimSpace(v)
	sep := ","
	if name, ok := strings.CutPrefix(v, "@"); ok {
		buf, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		v, sep = string(buf), "\n"
	}
	var peers []string
	for _, p := range strings.Split(v, sep) {
		if p = strings.TrimSpace(p); p != "" && !strings.HasPrefix(p, "#") {
			peers = append(peers, p)
		}
	}
	if len(peers) == 0 {
		return nil, errors.New("no workers named")
	}
	return peers, nil
}
