// Fleet-mode tests: real worker servers (full middleware stack) behind a
// real coordinator server, exercising the distributed /v2 job path — the
// in-process half of the distributed-sweep acceptance criteria. The
// contract under test: a coordinated sweep's stored results are
// byte-identical to the same scenario run on one node, through worker
// failure and reassignment, with the fleet metrics and /healthz quorum
// view reflecting what happened.
package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"delta"
	"delta/internal/durable"
)

// startFleetWorker brings up one single-node delta-server to serve
// /v2/shards for a coordinator.
func startFleetWorker(t *testing.T, token string) *httptest.Server {
	t.Helper()
	st := newJobStore(jobStoreConfig{})
	t.Cleanup(st.Close)
	ts := httptest.NewServer(newServerWith(delta.NewPipeline(), st, serverConfig{AuthToken: token}))
	t.Cleanup(ts.Close)
	return ts
}

// startFleetCoordinator brings up a coordinator-mode server over peers.
// The tiny retry backoff keeps reassignment tests fast.
func startFleetCoordinator(t *testing.T, st *jobStore, cfg serverConfig) *httptest.Server {
	t.Helper()
	if st == nil {
		st = newJobStore(jobStoreConfig{})
		t.Cleanup(st.Close)
	}
	if cfg.ShardRetryBackoff == 0 {
		cfg.ShardRetryBackoff = 2 * time.Millisecond
	}
	cfg.AccessLog = quietLogger()
	handler, _, err := buildServer(delta.NewPipeline(), st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return ts
}

// metricValue scrapes ts's /metrics and sums every series of name (all
// label combinations); ok reports whether any series was present.
func metricValue(t *testing.T, ts *httptest.Server, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sum, found := 0.0, false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		sum += v
		found = true
	}
	return sum, found
}

// TestFleetJobBitIdentical is the core acceptance criterion: the same
// scenario submitted to a 2-worker fleet and to a single node must store
// byte-identical result lists.
func TestFleetJobBitIdentical(t *testing.T) {
	single, _ := jobTestServer(t, jobStoreConfig{})
	refSum := submitJob(t, single, multiAxisJob)
	ref := pollJob(t, single, refSum.ID)
	if ref.Status != string(jobDone) || len(ref.Results) != 8 {
		t.Fatalf("single-node reference = %s, %d results", ref.Status, len(ref.Results))
	}

	w1, w2 := startFleetWorker(t, ""), startFleetWorker(t, "")
	coord := startFleetCoordinator(t, nil, serverConfig{Peers: []string{w1.URL, w2.URL}})
	sum := submitJob(t, coord, multiAxisJob)
	got := pollJob(t, coord, sum.ID)
	if got.Status != string(jobDone) {
		t.Fatalf("fleet job = %s (err %q)", got.Status, got.Error)
	}

	want, _ := json.Marshal(ref.Results)
	have, _ := json.Marshal(got.Results)
	if string(want) != string(have) {
		t.Fatalf("fleet results diverge from single-node:\n  want %s\n  have %s", want, have)
	}

	if v, ok := metricValue(t, coord, "delta_cluster_points_merged_total"); !ok || v != 8 {
		t.Errorf("points merged = %v, %v (want 8)", v, ok)
	}
	if v, _ := metricValue(t, coord, "delta_cluster_shards_in_flight"); v != 0 {
		t.Errorf("shards in flight after completion = %v", v)
	}
	if v, ok := metricValue(t, coord, "delta_cluster_peers"); !ok || v != 2 {
		t.Errorf("peer gauge = %v, %v (want 2)", v, ok)
	}
}

// TestFleetReassignsDeadWorker: one peer is permanently down (connection
// refused); its shards must reassign to the live worker, the sweep must
// still complete byte-identically, and the retry counter must move.
func TestFleetReassignsDeadWorker(t *testing.T) {
	single, _ := jobTestServer(t, jobStoreConfig{})
	ref := pollJob(t, single, submitJob(t, single, multiAxisJob).ID)

	live := startFleetWorker(t, "")
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // the URL now refuses connections
	coord := startFleetCoordinator(t, nil, serverConfig{Peers: []string{dead.URL, live.URL}})

	got := pollJob(t, coord, submitJob(t, coord, multiAxisJob).ID)
	if got.Status != string(jobDone) {
		t.Fatalf("fleet job with dead worker = %s (err %q)", got.Status, got.Error)
	}
	want, _ := json.Marshal(ref.Results)
	have, _ := json.Marshal(got.Results)
	if string(want) != string(have) {
		t.Fatal("results with a dead worker diverge from single-node")
	}
	if v, ok := metricValue(t, coord, "delta_cluster_shard_retries_total"); !ok || v == 0 {
		t.Errorf("shard retries = %v, %v (want > 0)", v, ok)
	}
}

// TestFleetAuthForwarded: with bearer auth on, the coordinator must
// forward its token to workers; a sweep completes end to end.
func TestFleetAuthForwarded(t *testing.T) {
	const token = "fleet-secret"
	w := startFleetWorker(t, token)
	coord := startFleetCoordinator(t, nil, serverConfig{AuthToken: token, Peers: []string{w.URL}})

	do := func(method, url, body string) *http.Response {
		t.Helper()
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp := do(http.MethodPost, coord.URL+"/v2/jobs", multiAxisJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var sum jobSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var jr jobResponse
		resp := do(http.MethodGet, coord.URL+"/v2/jobs/"+sum.ID, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		if jr.Status != string(jobRunning) {
			if jr.Status != string(jobDone) || len(jr.Results) != 8 {
				t.Fatalf("authed fleet job = %s (err %q), %d results", jr.Status, jr.Error, len(jr.Results))
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetHealthQuorum: /healthz reports per-peer reachability and flips
// to degraded 503 when a majority of workers is unreachable.
func TestFleetHealthQuorum(t *testing.T) {
	w1, w2 := startFleetWorker(t, ""), startFleetWorker(t, "")
	healthy := startFleetCoordinator(t, nil, serverConfig{Peers: []string{w1.URL, w2.URL}})
	var body struct {
		Status string `json:"status"`
		Fleet  struct {
			Quorum bool `json:"quorum"`
			Peers  []struct {
				Peer string `json:"peer"`
				OK   bool   `json:"ok"`
			} `json:"peers"`
		} `json:"fleet"`
	}
	resp := postGet(t, healthy.URL+"/healthz", &body)
	if resp.StatusCode != http.StatusOK || body.Status != "ok" || !body.Fleet.Quorum || len(body.Fleet.Peers) != 2 {
		t.Fatalf("healthy fleet: status %d, body %+v", resp.StatusCode, body)
	}

	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead1.Close()
	dead2 := httptest.NewServer(http.NotFoundHandler())
	dead2.Close()
	degraded := startFleetCoordinator(t, nil, serverConfig{Peers: []string{dead1.URL, dead2.URL, w1.URL}})
	resp, err := http.Get(degraded.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body.Fleet.Peers = nil
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || body.Status != "degraded" || body.Fleet.Quorum {
		t.Fatalf("majority-dead fleet: status %d, body %+v", resp.StatusCode, body)
	}
	up := 0
	for _, p := range body.Fleet.Peers {
		if p.OK {
			up++
		}
	}
	if up != 1 {
		t.Errorf("peers up = %d (want 1)", up)
	}
}

// TestFleetDurableShardRecords: a durable coordinator audits the shard
// lifecycle in the job WAL — every shard reaches "done" on a completed
// sweep.
func TestFleetDurableShardRecords(t *testing.T) {
	d := openTestDurability(t, t.TempDir(), durable.SinkConfig{Kind: "none"})
	defer d.close(t.Context())
	st := newJobStore(jobStoreConfig{})
	st.durable = d
	t.Cleanup(st.Close)
	w := startFleetWorker(t, "")
	coord := startFleetCoordinator(t, st, serverConfig{Peers: []string{w.URL}})

	got := pollJob(t, coord, submitJob(t, coord, multiAxisJob).ID)
	if got.Status != string(jobDone) {
		t.Fatalf("durable fleet job = %s (err %q)", got.Status, got.Error)
	}
	js := findDurableJob(t, d, got.ID)
	if js.Status != durable.StatusDone || len(js.Results) != 8 {
		t.Fatalf("durable state: status %s, %d results", js.Status, len(js.Results))
	}
	if len(js.Shards) == 0 {
		t.Fatal("no shard records in the job WAL")
	}
	covered := 0
	for idx, sh := range js.Shards {
		if sh.Status != durable.ShardDone {
			t.Errorf("shard %d status = %s (want done)", idx, sh.Status)
		}
		if sh.Peer == "" || sh.Attempts < 1 {
			t.Errorf("shard %d missing peer/attempt: %+v", idx, sh)
		}
		covered += sh.Count
	}
	if covered != 8 {
		t.Errorf("shard records cover %d points (want 8)", covered)
	}
}

// TestParsePeersFlag covers the two -peers spellings.
func TestParsePeersFlag(t *testing.T) {
	got, err := parsePeersFlag(" a:8080, http://b:9090 ,, ")
	if err != nil || len(got) != 2 || got[0] != "a:8080" || got[1] != "http://b:9090" {
		t.Fatalf("inline list = %v, %v", got, err)
	}

	path := filepath.Join(t.TempDir(), "peers")
	if err := os.WriteFile(path, []byte("# fleet\nhost1:8080\n\n  host2:8080  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = parsePeersFlag("@" + path)
	if err != nil || len(got) != 2 || got[0] != "host1:8080" || got[1] != "host2:8080" {
		t.Fatalf("@file list = %v, %v", got, err)
	}

	if _, err := parsePeersFlag(""); err == nil {
		t.Error("empty -peers did not error")
	}
	if _, err := parsePeersFlag("@" + filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing @file did not error")
	}
}
