package main

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden files from the live handlers:
//
//	go test ./cmd/delta-server -run TestV1Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenCases are the pinned /v1 requests. The golden bodies were captured
// before the /v1 handlers became adapters over the scenario path, so these
// tests prove the redesign is byte-identical to the original synchronous
// implementation.
var goldenCases = []struct {
	name, path, body string
}{
	{"estimate_layers", "/v1/estimate", `{
	  "device": "TITAN Xp",
	  "layers": [
	    {"name": "conv2", "b": 32, "ci": 96, "hi": 27, "co": 256, "hf": 5, "stride": 1, "pad": 2},
	    {"name": "conv3", "b": 32, "ci": 256, "hi": 13, "co": 384, "hf": 3, "stride": 1, "pad": 1, "count": 2}
	  ]
	}`},
	{"network_alexnet", "/v1/network", `{"network": "alexnet", "batch": 32, "device": "v100"}`},
	{"network_training", "/v1/network", `{"network": "alexnet", "batch": 16, "pass": "training"}`},
	{"network_prior", "/v1/network", `{"network": "alexnet", "batch": 16, "model": "prior", "miss_rate": 0.5}`},
	{"network_roofline", "/v1/network", `{"network": "alexnet", "batch": 16, "model": "roofline"}`},
	{"network_options", "/v1/network", `{"network": "googlenet", "batch": 16, "device": "P100", "options": {"paper_mli_filter": true}}`},
	{"explore_grid", "/v1/explore", `{
	  "network": "alexnet", "batch": 16,
	  "axes": {"mac_per_sm": [1, 2], "mem_bw": [1, 2]},
	  "target": 1.5
	}`},
}

// TestV1GoldenParity asserts every pinned /v1 response is byte-identical to
// its golden capture.
func TestV1GoldenParity(t *testing.T) {
	ts := testServer(t)
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d, body %s", resp.StatusCode, got)
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("response diverged from golden %s:\ngot:  %s\nwant: %s", path, got, want)
			}
		})
	}
}
