// The /v2 async job API: POST a declarative scenario, poll its status, or
// stream its results over SSE as the pipeline produces them. Jobs live in
// a bounded in-memory store with TTL eviction of finished entries, so a
// long-running server cannot accumulate unbounded result sets.
package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"delta"
	"delta/internal/spec"
)

// Job store bounds (overridable via jobStoreConfig / server flags).
const (
	defaultMaxJobs = 64
	defaultJobTTL  = 15 * time.Minute
)

type jobStatus string

const (
	jobRunning   jobStatus = "running"
	jobDone      jobStatus = "done"
	jobFailed    jobStatus = "failed"
	jobCancelled jobStatus = "cancelled"
)

// jobStoreConfig bounds the store; zero values take the defaults.
type jobStoreConfig struct {
	MaxJobs int
	TTL     time.Duration
	now     func() time.Time // test hook
}

// Cancellation causes: a job context carries why it was cancelled, so a
// cancel racing the final stream update still classifies the job honestly
// instead of reporting it "done".
var (
	errJobDeleted     = errors.New("job cancelled by client")
	errServerShutdown = errors.New("server shutting down")
)

// jobStore is the bounded in-memory job registry.
type jobStore struct {
	mu   sync.Mutex
	jobs map[string]*job
	cfg  jobStoreConfig

	// evicted counts jobs dropped by TTL or capacity eviction (a gauge
	// companion for /metrics and /healthz).
	evicted atomic.Uint64

	// running tracks jobs still in the running state (incremented at
	// submit, decremented by each job's finish transition), so the
	// /metrics and /healthz occupancy reads don't walk every job under
	// its lock on each scrape.
	running atomic.Int64

	// base is the server-lifetime context jobs run under, so shutdown
	// cancels in-flight sweeps.
	base   context.Context
	cancel context.CancelCauseFunc

	// durable, when non-nil, mirrors every job lifecycle edge into the
	// WAL-backed store and result outbox (-data-dir). nil = in-memory only;
	// all its record methods are nil-safe.
	durable *durability

	// runners tracks in-flight runJob goroutines so shutdown can drain
	// them into the durable store before the final snapshot.
	runners sync.WaitGroup
}

func newJobStore(cfg jobStoreConfig) *jobStore {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = defaultMaxJobs
	}
	if cfg.TTL <= 0 {
		cfg.TTL = defaultJobTTL
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	base, cancel := context.WithCancelCause(context.Background())
	return &jobStore{jobs: make(map[string]*job), cfg: cfg, base: base, cancel: cancel}
}

// Close cancels every running job (server shutdown).
func (st *jobStore) Close() { st.cancel(errServerShutdown) }

// drain waits up to d for in-flight sweeps to settle after Close,
// reporting whether every runner finished within the deadline. Runners
// observe the shutdown cancellation quickly (the stream stops between
// points), so this is a bound on flushing the last results, not on
// finishing the sweep.
func (st *jobStore) drain(d time.Duration) bool {
	done := make(chan struct{})
	go func() { st.runners.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// occupancy reports the stored and still-running job counts. A job
// DELETEd mid-run counts as running until its runner observes the cancel
// — it is still consuming pipeline workers, which is what readiness
// cares about.
func (st *jobStore) occupancy() (stored, running int) {
	st.mu.Lock()
	stored = len(st.jobs)
	st.mu.Unlock()
	if n := st.running.Load(); n > 0 {
		running = int(n)
	}
	return stored, running
}

// evictions reports jobs dropped by TTL or capacity eviction so far.
func (st *jobStore) evictions() uint64 { return st.evicted.Load() }

// job is one submitted scenario sweep. Immutable fields are set at submit;
// the mutable tail is guarded by mu, with notify closed-and-replaced on
// every append so SSE subscribers wake without polling.
type job struct {
	id      string
	name    string
	total   int
	created time.Time
	cancel  context.CancelCauseFunc

	// onFinish fires exactly once, on the running→terminal transition
	// (the store's running-count bookkeeping).
	onFinish func()

	mu       sync.Mutex
	notify   chan struct{}
	status   jobStatus
	results  []pointResult
	errMsg   string
	finished time.Time
}

// pointResult is the rendered JSON shape of one streamed scenario point.
type pointResult struct {
	Index    int    `json:"index"`
	Workload string `json:"workload"`
	Device   string `json:"device"`
	Batch    int    `json:"batch,omitempty"`
	Model    string `json:"model,omitempty"`
	Pass     string `json:"pass,omitempty"`
	Kind     string `json:"kind"` // "analytic" | "sim"
	Done     int    `json:"done"`
	Total    int    `json:"total"`

	Error  string             `json:"error,omitempty"`
	Result *estimateResponse  `json:"result,omitempty"`
	Sim    []simLayerResponse `json:"sim,omitempty"`
}

// simLayerResponse is one simulated layer of a sim point.
type simLayerResponse struct {
	Name           string  `json:"name"`
	L1Bytes        float64 `json:"l1_bytes"`
	L2Bytes        float64 `json:"l2_bytes"`
	DRAMBytes      float64 `json:"dram_bytes"`
	DRAMWriteBytes float64 `json:"dram_write_bytes"`
	L1Requests     uint64  `json:"l1_requests"`
	SimulatedCTAs  int     `json:"simulated_ctas"`
	TotalCTAs      int     `json:"total_ctas"`
}

// append records one streamed update and wakes SSE subscribers. It
// returns the result's dense index — the sequence number persisted with
// it, and the resume offset contract across restarts.
func (j *job) append(r pointResult) int {
	j.mu.Lock()
	j.results = append(j.results, r)
	seq := len(j.results) - 1
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
	return seq
}

// finish moves the job to a terminal status.
func (j *job) finish(status jobStatus, errMsg string, at time.Time) {
	j.mu.Lock()
	transitioned := j.status == jobRunning
	if transitioned {
		j.status, j.errMsg, j.finished = status, errMsg, at
	}
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
	if transitioned && j.onFinish != nil {
		j.onFinish()
	}
}

// snapshot returns the job's state for status responses: results from
// offset on, plus the channel to wait on for more.
func (j *job) snapshot(offset int) (status jobStatus, errMsg string, results []pointResult, done int, more <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if offset < 0 || offset > len(j.results) {
		offset = len(j.results)
	}
	return j.status, j.errMsg, append([]pointResult(nil), j.results[offset:]...), len(j.results), j.notify
}

var errStoreFull = errors.New("job store full (all slots running); retry later")

// submit registers a job and returns it; the caller launches the sweep.
// Finished jobs past TTL are evicted first, then the oldest finished job
// if the store is still at capacity; a store full of running jobs rejects.
func (st *jobStore) submit(name string, total int, cancel context.CancelCauseFunc) (*job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.cfg.now()
	st.evictLocked(now)
	if len(st.jobs) >= st.cfg.MaxJobs {
		return nil, errStoreFull
	}
	id := newJobID()
	for _, taken := st.jobs[id]; taken; _, taken = st.jobs[id] {
		id = newJobID()
	}
	j := &job{
		id: id, name: name, total: total, created: now,
		cancel: cancel, status: jobRunning, notify: make(chan struct{}),
		onFinish: func() { st.running.Add(-1) },
	}
	st.running.Add(1)
	st.jobs[id] = j
	return j, nil
}

// adopt inserts a recovered job under its persisted id (the durable
// restart path). Recovery may briefly exceed MaxJobs — refusing to
// re-adopt state the previous process accepted would break the resume
// guarantee — so only TTL/capacity eviction of already-finished jobs
// applies here, never a rejection.
func (st *jobStore) adopt(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked(st.cfg.now())
	st.jobs[j.id] = j
	if j.status == jobRunning {
		st.running.Add(1)
	}
}

// evictLocked drops finished jobs past TTL; if the store is still full it
// drops the oldest finished jobs until a slot frees.
func (st *jobStore) evictLocked(now time.Time) {
	for id, j := range st.jobs {
		j.mu.Lock()
		expired := j.status != jobRunning && now.Sub(j.finished) > st.cfg.TTL
		j.mu.Unlock()
		if expired {
			delete(st.jobs, id)
			st.evicted.Add(1)
			st.durable.recordEvict(id)
		}
	}
	for len(st.jobs) >= st.cfg.MaxJobs {
		oldestID := ""
		var oldest time.Time
		for id, j := range st.jobs {
			j.mu.Lock()
			fin, running := j.finished, j.status == jobRunning
			j.mu.Unlock()
			if running {
				continue
			}
			if oldestID == "" || fin.Before(oldest) {
				oldestID, oldest = id, fin
			}
		}
		if oldestID == "" {
			return // every slot is running; submit will reject
		}
		delete(st.jobs, oldestID)
		st.evicted.Add(1)
		st.durable.recordEvict(oldestID)
	}
}

func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

func (st *jobStore) remove(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if ok {
		delete(st.jobs, id)
		st.durable.recordEvict(id)
	}
	return j, ok
}

func (st *jobStore) list() []*job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*job, 0, len(st.jobs))
	for _, j := range st.jobs {
		out = append(out, j)
	}
	// Deterministic listing order: newest first, id as tiebreak.
	sort.Slice(out, func(a, b int) bool {
		if !out[a].created.Equal(out[b].created) {
			return out[a].created.After(out[b].created)
		}
		return out[a].id < out[b].id
	})
	return out
}

// Entropy hooks for newJobID: randRead is swappable in tests, and
// jobIDCounter backs the fallback ids.
var (
	randRead     = rand.Read
	jobIDCounter atomic.Uint64
)

// newJobID returns a 16-hex-char random id. An entropy read failure is
// retried once; if the source stays broken, a process-unique monotonic id
// keeps submits working instead of surfacing a transient 500.
func newJobID() string {
	var b [8]byte
	for try := 0; try < 2; try++ {
		if _, err := randRead(b[:]); err == nil {
			return hex.EncodeToString(b[:])
		}
	}
	return fmt.Sprintf("j%x-%d", time.Now().UnixNano(), jobIDCounter.Add(1))
}

// --- HTTP layer ---

// jobRequest is the POST /v2/jobs body: a scenario document plus an error
// policy.
type jobRequest struct {
	Scenario json.RawMessage `json:"scenario"`

	// ErrorPolicy is "fail_fast" (default) or "collect_partial".
	ErrorPolicy string `json:"error_policy,omitempty"`
}

// jobSummary is the status shape of one job.
type jobSummary struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	Status   string `json:"status"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Error    string `json:"error,omitempty"`
	Created  string `json:"created"`
	Finished string `json:"finished,omitempty"`

	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
}

// jobResponse is the GET /v2/jobs/{id} answer: the summary plus results.
type jobResponse struct {
	jobSummary
	Results []pointResult `json:"results"`
}

func (j *job) summary() jobSummary {
	// One lock acquisition, so a poll racing completion can't observe a
	// mixed status/finished pair.
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.summaryLocked()
}

func (j *job) summaryLocked() jobSummary {
	s := jobSummary{
		ID: j.id, Name: j.name, Status: string(j.status),
		Done: len(j.results), Total: j.total, Error: j.errMsg,
		Created:   j.created.UTC().Format(time.RFC3339),
		StatusURL: "/v2/jobs/" + j.id,
		EventsURL: "/v2/jobs/" + j.id + "/events",
	}
	if !j.finished.IsZero() {
		s.Finished = j.finished.UTC().Format(time.RFC3339)
	}
	return s
}

// response snapshots the summary and the results consistently.
func (j *job) response() jobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobResponse{
		jobSummary: j.summaryLocked(),
		Results:    append([]pointResult(nil), j.results...),
	}
}

// handleJobSubmit answers POST /v2/jobs: decode + expand the scenario
// synchronously (so malformed sweeps 400 immediately), then run it in the
// background and answer 202 with the job's URLs.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, bodyErrStatus(err), fmt.Errorf("parsing request: %w", err))
		return
	}
	if len(req.Scenario) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing scenario"))
		return
	}
	var policy delta.StreamErrorPolicy
	switch req.ErrorPolicy {
	case "", "fail_fast":
		policy = delta.StreamFailFast
	case "collect_partial":
		policy = delta.StreamCollectPartial
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown error_policy %q (want fail_fast or collect_partial)", req.ErrorPolicy))
		return
	}
	sc, err := spec.ReadScenario(bytes.NewReader(req.Scenario))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Reserve the store slot before spawning stream workers, so a full
	// store rejects without burning any evaluation work.
	ctx, cancel := context.WithCancelCause(s.jobs.base)
	j, err := s.jobs.submit(sc.Name, sc.Size(), cancel)
	if err != nil {
		cancel(nil)
		status := http.StatusServiceUnavailable
		if !errors.Is(err, errStoreFull) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	policyName := req.ErrorPolicy
	if policyName == "" {
		policyName = "fail_fast"
	}
	s.jobs.durable.recordSubmit(j, req.Scenario, policyName)
	if s.coord != nil {
		// Coordinator mode: shard the sweep across the worker fleet. The
		// raw scenario document travels to workers verbatim; expansion
		// errors already 400'd via ReadScenario above.
		s.jobs.runners.Add(1)
		go s.runClusterJob(ctx, j, req.Scenario, sc, 0, policy)
		writeJSON(w, http.StatusAccepted, j.summary())
		return
	}
	ch, err := s.p.Stream(ctx, sc, delta.WithStreamErrorPolicy(policy))
	if err != nil {
		// Expansion errors normally surface from ReadScenario above; if
		// one slips through, release the slot (finish first, so the
		// store's running count is balanced) and report it. remove also
		// truncates the durable record just written.
		cancel(nil)
		j.finish(jobFailed, err.Error(), s.jobs.cfg.now())
		s.jobs.remove(j.id)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.jobs.runners.Add(1)
	go s.runJob(ctx, j, ch, policy)
	writeJSON(w, http.StatusAccepted, j.summary())
}

// runJob drains the stream into the job record. The terminal status is
// classified from the cancellation cause, not the update count: a DELETE
// (or shutdown) that lands after the final stream update would otherwise
// be misreported as "done" — the client asked for cancellation and must
// see it reflected, however late it raced in.
func (s *server) runJob(ctx context.Context, j *job, ch <-chan delta.StreamUpdate, policy delta.StreamErrorPolicy) {
	defer s.jobs.runners.Done()
	defer j.cancel(nil)
	var firstErr error
	for upd := range ch {
		pr := renderPoint(upd)
		seq := j.append(pr)
		s.jobs.durable.recordResult(j.id, seq, pr)
		if upd.Err != nil && firstErr == nil {
			firstErr = upd.Err
		}
	}
	now := s.jobs.cfg.now()
	switch {
	case ctx.Err() != nil:
		cause := context.Cause(ctx)
		j.finish(jobCancelled, cause.Error(), now)
		// A shutdown cancellation is deliberately NOT a durable terminal
		// state: the job stays "running" on disk so the next process
		// resumes the sweep from the results persisted above.
		if !errors.Is(cause, errServerShutdown) {
			s.jobs.durable.recordFinish(j.id, jobCancelled, cause.Error(), now)
		}
	case firstErr != nil && policy == delta.StreamFailFast:
		j.finish(jobFailed, firstErr.Error(), now)
		s.jobs.durable.recordFinish(j.id, jobFailed, firstErr.Error(), now)
	default:
		j.finish(jobDone, "", now)
		s.jobs.durable.recordFinish(j.id, jobDone, "", now)
	}
}

// renderPoint converts a streamed update to its JSON shape.
func renderPoint(upd delta.StreamUpdate) pointResult {
	p := upd.Point
	out := pointResult{
		Index: p.Index, Workload: p.Workload, Device: p.Device.Name,
		Batch: p.Batch, Model: p.Model, Pass: p.Pass,
		Kind: "analytic", Done: upd.Done, Total: upd.Total,
	}
	if p.Sim != nil {
		out.Kind = "sim"
	}
	if upd.Err != nil {
		out.Error = upd.Err.Error()
		return out
	}
	if p.Sim != nil {
		for _, r := range upd.Sim {
			out.Sim = append(out.Sim, simLayerResponse{
				Name: r.Layer.Name, L1Bytes: r.L1Bytes, L2Bytes: r.L2Bytes,
				DRAMBytes: r.DRAMBytes, DRAMWriteBytes: r.DRAMWriteBytes,
				L1Requests:    r.L1Requests,
				SimulatedCTAs: r.SimulatedCTAs, TotalCTAs: r.TotalCTAs,
			})
		}
		return out
	}
	resp := renderNetwork(upd.Network, p.Net.Counts)
	out.Result = &resp
	return out
}

// handleJobList answers GET /v2/jobs with every live job's summary.
func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	out := make([]jobSummary, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.summary())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// routeJob dispatches /v2/jobs/{id} and /v2/jobs/{id}/events.
func (s *server) routeJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v2/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeError(w, http.StatusNotFound, errors.New("missing job id"))
		return
	}
	switch sub {
	case "":
		methods{
			http.MethodGet:    func(w http.ResponseWriter, r *http.Request) { s.handleJobGet(w, r, id) },
			http.MethodDelete: func(w http.ResponseWriter, r *http.Request) { s.handleJobDelete(w, r, id) },
		}.dispatch(w, r)
	case "events":
		methods{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) { s.handleJobEvents(w, r, id) },
		}.dispatch(w, r)
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job resource %q", sub))
	}
}

// handleJobGet answers GET /v2/jobs/{id}: status, progress, and the
// results streamed so far.
func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request, id string) {
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, j.response())
}

// handleJobDelete cancels a running job (or discards a finished one).
func (s *server) handleJobDelete(w http.ResponseWriter, r *http.Request, id string) {
	j, ok := s.jobs.remove(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	j.cancel(errJobDeleted)
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "deleted"})
}

// handleJobEvents answers GET /v2/jobs/{id}/events: a Server-Sent-Events
// stream replaying the results so far, then following the sweep live. Each
// result is one `event: result` frame carrying an `id:` line (the count of
// results delivered through that frame); a terminal `event: done` frame
// carries the final status. A reconnecting client sends the standard
// Last-Event-ID header to skip the results it already has — including
// across a server restart, since the replayed durable results occupy the
// same dense positions.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	// Tell buffering reverse proxies (nginx and friends) to pass frames
	// through as they arrive instead of batching the stream.
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// Idle streams emit periodic comment frames so proxies and load
	// balancers with idle-connection timeouts do not reap a healthy
	// stream that is simply waiting on a slow sweep.
	keepAlive := time.NewTicker(s.keepAlive)
	defer keepAlive.Stop()

	offset := 0
	if lei := strings.TrimSpace(r.Header.Get("Last-Event-ID")); lei != "" {
		// Ignore ids we did not mint (non-numeric or negative): the
		// stream falls back to a full replay, which is always safe.
		if n, err := strconv.Atoi(lei); err == nil && n > 0 {
			offset = n
		}
	}
	for {
		status, errMsg, results, done, more := j.snapshot(offset)
		for i, res := range results {
			if err := writeSSE(w, offset+i+1, "result", res); err != nil {
				return
			}
		}
		offset = done
		flusher.Flush()
		if status != jobRunning {
			_ = writeSSE(w, done, "done", map[string]any{
				"status": string(status), "done": done, "total": j.total, "error": errMsg,
			})
			flusher.Flush()
			return
		}
		select {
		case <-more:
		case <-keepAlive.C:
			if _, err := io.WriteString(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one Server-Sent-Events frame with a JSON payload. id > 0
// adds an `id:` line so reconnecting clients can resume via Last-Event-ID.
func writeSSE(w http.ResponseWriter, id int, event string, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if id > 0 {
		_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, buf)
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, buf)
	return err
}
