package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"delta"
)

// jobTestServer wires a server with a controllable job store.
func jobTestServer(t *testing.T, cfg jobStoreConfig) (*httptest.Server, *jobStore) {
	t.Helper()
	st := newJobStore(cfg)
	t.Cleanup(st.Close)
	ts := httptest.NewServer(newServerWithJobs(delta.NewPipeline(), st))
	t.Cleanup(ts.Close)
	return ts, st
}

// submitJob posts a scenario and decodes the 202 summary.
func submitJob(t *testing.T, ts *httptest.Server, body string) jobSummary {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v2/jobs", body, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var sum jobSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

// pollJob polls until the job leaves the running state.
func pollJob(t *testing.T, ts *httptest.Server, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var jr jobResponse
		resp := postGet(t, ts.URL+"/v2/jobs/"+id, &jr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d", resp.StatusCode)
		}
		if jr.Status != string(jobRunning) {
			return jr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return jobResponse{}
}

func postGet(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

const multiAxisJob = `{"scenario": {
  "name": "acceptance",
  "workloads": [{"network": "alexnet"}, {"network": "googlenet"}],
  "devices": [{"name": "TITAN Xp"}, {"name": "V100"}],
  "batches": [16],
  "models": ["delta", "prior"]
}}`

// TestJobLifecycle submits the acceptance-criteria scenario (2 networks ×
// 2 devices × 2 models), polls to completion, and checks ordering,
// progress, and result contents.
func TestJobLifecycle(t *testing.T) {
	ts, _ := jobTestServer(t, jobStoreConfig{})
	sum := submitJob(t, ts, multiAxisJob)
	if sum.ID == "" || sum.Total != 8 || sum.Status != string(jobRunning) {
		t.Fatalf("summary = %+v", sum)
	}
	jr := pollJob(t, ts, sum.ID)
	if jr.Status != string(jobDone) {
		t.Fatalf("status = %s (err %q)", jr.Status, jr.Error)
	}
	if jr.Done != 8 || len(jr.Results) != 8 {
		t.Fatalf("done = %d, results = %d", jr.Done, len(jr.Results))
	}
	for i, res := range jr.Results {
		if res.Index != i {
			t.Errorf("result %d has index %d (out of order)", i, res.Index)
		}
		if res.Done != i+1 || res.Total != 8 {
			t.Errorf("result %d progress = %d/%d", i, res.Done, res.Total)
		}
		if res.Error != "" || res.Result == nil || res.Result.TotalSeconds <= 0 {
			t.Errorf("result %d missing payload: %+v", i, res)
		}
	}
	// Spot-check v1/v2 parity: the (alexnet, delta, TITAN Xp) point must
	// match the synchronous /v1/network answer field for field.
	var v1 estimateResponse
	resp := postJSON(t, ts.URL+"/v1/network", `{"network": "alexnet", "batch": 16, "device": "TITAN Xp"}`, &v1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 status = %d", resp.StatusCode)
	}
	v2 := jr.Results[0].Result
	if v2.TotalSeconds != v1.TotalSeconds || len(v2.Layers) != len(v1.Layers) {
		t.Errorf("v2 point diverges from v1: %v vs %v", v2.TotalSeconds, v1.TotalSeconds)
	}
	for i := range v1.Layers {
		if v2.Layers[i] != v1.Layers[i] {
			t.Errorf("layer %d: v2 %+v, v1 %+v", i, v2.Layers[i], v1.Layers[i])
		}
	}

	// A second identical submission memo-hits: same results.
	sum2 := submitJob(t, ts, multiAxisJob)
	jr2 := pollJob(t, ts, sum2.ID)
	if jr2.Status != string(jobDone) || len(jr2.Results) != 8 {
		t.Fatalf("repeat job = %+v", jr2.jobSummary)
	}
	for i := range jr.Results {
		if jr2.Results[i].Result.TotalSeconds != jr.Results[i].Result.TotalSeconds {
			t.Errorf("repeat job result %d diverged", i)
		}
	}
}

// TestJobEventsSSE streams a job's results over SSE and checks frame
// structure, ordering, and the terminal done event.
func TestJobEventsSSE(t *testing.T) {
	ts, _ := jobTestServer(t, jobStoreConfig{})
	sum := submitJob(t, ts, multiAxisJob)

	resp, err := http.Get(ts.URL + "/v2/jobs/" + sum.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	var (
		events  []string
		datas   []string
		scanner = bufio.NewScanner(resp.Body)
	)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			datas = append(datas, strings.TrimPrefix(line, "data: "))
		}
		if len(events) > 0 && events[len(events)-1] == "done" && len(datas) == len(events) {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 9 { // 8 results + done
		t.Fatalf("events = %v", events)
	}
	for i := 0; i < 8; i++ {
		if events[i] != "result" {
			t.Errorf("event %d = %q", i, events[i])
		}
		var res pointResult
		if err := json.Unmarshal([]byte(datas[i]), &res); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if res.Index != i {
			t.Errorf("frame %d has index %d (out of order)", i, res.Index)
		}
	}
	var done struct {
		Status string `json:"status"`
		Done   int    `json:"done"`
		Total  int    `json:"total"`
	}
	if err := json.Unmarshal([]byte(datas[8]), &done); err != nil {
		t.Fatal(err)
	}
	if done.Status != "done" || done.Done != 8 || done.Total != 8 {
		t.Errorf("done frame = %+v", done)
	}
}

// TestJobCollectPartial: a sweep with one failing point finishes done
// under collect_partial, with the failure recorded per point.
func TestJobCollectPartial(t *testing.T) {
	ts, _ := jobTestServer(t, jobStoreConfig{})
	body := `{"error_policy": "collect_partial", "scenario": {
	  "workloads": [
	    {"name": "bad", "layers": [
	      {"name": "ok", "ci": 8, "hi": 12, "co": 8, "hf": 3, "pad": 1, "b": 4},
	      {"name": "rect", "ci": 8, "hi": 12, "wi": 12, "co": 8, "hf": 3, "wf": 5, "pad": 2, "b": 4}
	    ]},
	    {"network": "alexnet"}
	  ],
	  "batches": [8],
	  "passes": ["training"]
	}}`
	sum := submitJob(t, ts, body)
	jr := pollJob(t, ts, sum.ID)
	if jr.Status != string(jobDone) {
		t.Fatalf("status = %s (%s)", jr.Status, jr.Error)
	}
	if len(jr.Results) != 2 {
		t.Fatalf("results = %d", len(jr.Results))
	}
	if jr.Results[0].Error == "" || jr.Results[1].Error != "" {
		t.Errorf("per-point errors = %q, %q", jr.Results[0].Error, jr.Results[1].Error)
	}
}

// TestJobFailFast: the same sweep under the default policy fails the job.
func TestJobFailFast(t *testing.T) {
	ts, _ := jobTestServer(t, jobStoreConfig{})
	body := `{"scenario": {
	  "workloads": [
	    {"name": "bad", "layers": [
	      {"name": "ok", "ci": 8, "hi": 12, "co": 8, "hf": 3, "pad": 1, "b": 4},
	      {"name": "rect", "ci": 8, "hi": 12, "wi": 12, "co": 8, "hf": 3, "wf": 5, "pad": 2, "b": 4}
	    ]},
	    {"network": "alexnet"}
	  ],
	  "batches": [8],
	  "passes": ["training"]
	}}`
	sum := submitJob(t, ts, body)
	jr := pollJob(t, ts, sum.ID)
	if jr.Status != string(jobFailed) || !strings.Contains(jr.Error, "non-square") {
		t.Fatalf("status = %s, err = %q", jr.Status, jr.Error)
	}
	if len(jr.Results) != 1 {
		t.Errorf("fail-fast stored %d results", len(jr.Results))
	}
}

// TestJobSimScenario runs a simulation sweep through /v2.
func TestJobSimScenario(t *testing.T) {
	ts, _ := jobTestServer(t, jobStoreConfig{})
	body := `{"scenario": {
	  "workloads": [{"name": "mini", "layers": [{"ci": 8, "hi": 8, "co": 16, "hf": 3, "pad": 1, "b": 1}]}],
	  "sim_configs": [{"max_waves": 1}]
	}}`
	sum := submitJob(t, ts, body)
	jr := pollJob(t, ts, sum.ID)
	if jr.Status != string(jobDone) || len(jr.Results) != 1 {
		t.Fatalf("job = %+v", jr.jobSummary)
	}
	res := jr.Results[0]
	if res.Kind != "sim" || len(res.Sim) != 1 || res.Sim[0].DRAMBytes <= 0 {
		t.Errorf("sim result = %+v", res)
	}
}

// TestJobBadRequests covers the submission rejection paths.
func TestJobBadRequests(t *testing.T) {
	ts, _ := jobTestServer(t, jobStoreConfig{})
	cases := []struct{ body, want string }{
		{`{`, "parsing request"},
		{`{}`, "missing scenario"},
		{`{"scenario": {"workloads": []}}`, "no workloads"},
		{`{"scenario": {"workloads": [{"network": "skynet"}]}}`, "skynet"},
		{`{"scenario": {"workloads": [{"network": "alexnet"}]}, "error_policy": "explode"}`, "error_policy"},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v2/jobs", tc.body, nil)
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%q: %v", tc.body, err)
		}
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(e.Error, tc.want) {
			t.Errorf("%q: status %d, err %q (want %q)", tc.body, resp.StatusCode, e.Error, tc.want)
		}
	}
	resp := postGet(t, ts.URL+"/v2/jobs/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET missing job: status %d", resp.StatusCode)
	}
	resp = postGet(t, ts.URL+"/v2/jobs/nope/bogus", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET bogus resource: status %d", resp.StatusCode)
	}
}

// TestJobDeleteCancels: DELETE removes the job and cancels its context.
func TestJobDeleteCancels(t *testing.T) {
	ts, st := jobTestServer(t, jobStoreConfig{})
	sum := submitJob(t, ts, multiAxisJob)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v2/jobs/"+sum.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if _, ok := st.get(sum.ID); ok {
		t.Error("job still stored after delete")
	}
	resp2 := postGet(t, ts.URL+"/v2/jobs/"+sum.ID, nil)
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("deleted job still answers %d", resp2.StatusCode)
	}
}

// TestJobStoreBounds: the store evicts finished jobs past TTL, evicts the
// oldest finished job at capacity, and rejects when every slot is running.
func TestJobStoreBounds(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := jobStoreConfig{MaxJobs: 2, TTL: time.Minute, now: func() time.Time { return now }}
	st := newJobStore(cfg)
	defer st.Close()

	j1, err := st.submit("a", 1, func(error) {})
	if err != nil {
		t.Fatal(err)
	}
	j1.finish(jobDone, "", now)
	j2, err := st.submit("b", 1, func(error) {})
	if err != nil {
		t.Fatal(err)
	}

	// Store full, j1 finished: a third submit evicts j1.
	j3, err := st.submit("c", 1, func(error) {})
	if err != nil {
		t.Fatalf("submit at capacity with evictable job: %v", err)
	}
	if _, ok := st.get(j1.id); ok {
		t.Error("oldest finished job not evicted at capacity")
	}

	// Both running: reject.
	if _, err := st.submit("d", 1, func(error) {}); err == nil {
		t.Error("submit with all slots running should fail")
	}

	// TTL expiry: finish both, advance past TTL, submit sweeps them out.
	j2.finish(jobDone, "", now)
	j3.finish(jobFailed, "boom", now)
	now = now.Add(2 * time.Minute)
	if _, err := st.submit("e", 1, func(error) {}); err != nil {
		t.Fatalf("submit after TTL: %v", err)
	}
	if _, ok := st.get(j2.id); ok {
		t.Error("TTL-expired job still stored")
	}
	if _, ok := st.get(j3.id); ok {
		t.Error("TTL-expired failed job still stored")
	}
}

// TestJobStoreShutdown: closing the store cancels running jobs' contexts.
func TestJobStoreShutdown(t *testing.T) {
	st := newJobStore(jobStoreConfig{})
	ctx, cancel := context.WithCancel(st.base)
	defer cancel()
	st.Close()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Error("store close did not cancel job context")
	}
}

// TestMethodNotAllowed: every endpoint answers wrong methods with a JSON
// 405 naming the allowed set in the Allow header.
func TestMethodNotAllowed(t *testing.T) {
	ts, _ := jobTestServer(t, jobStoreConfig{})
	sum := submitJob(t, ts, multiAxisJob)
	cases := []struct {
		method, path string
		wantAllow    string
	}{
		{http.MethodPost, "/healthz", "GET"},
		{http.MethodDelete, "/healthz", "GET"},
		{http.MethodPost, "/v1/devices", "GET"},
		{http.MethodPost, "/v1/networks", "GET"},
		{http.MethodGet, "/v1/estimate", "POST"},
		{http.MethodPut, "/v1/estimate", "POST"},
		{http.MethodGet, "/v1/network", "POST"},
		{http.MethodGet, "/v1/explore", "POST"},
		{http.MethodDelete, "/v2/jobs", "GET, POST"},
		{http.MethodPost, "/v2/jobs/" + sum.ID, "DELETE, GET"},
		{http.MethodPost, "/v2/jobs/" + sum.ID + "/events", "GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		decErr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
			continue
		}
		if got := resp.Header.Get("Allow"); got != tc.wantAllow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.wantAllow)
		}
		if decErr != nil || e.Error == "" {
			t.Errorf("%s %s: 405 body malformed (%v)", tc.method, tc.path, decErr)
		}
	}
}

// TestOversizeBodyRejected: every body-reading endpoint rejects payloads
// over the request cap with 413 (not a generic 400) instead of buffering
// them.
func TestOversizeBodyRejected(t *testing.T) {
	ts, _ := jobTestServer(t, jobStoreConfig{})
	huge := fmt.Sprintf(`{"network": "alexnet", "batch": 16, "device": %q}`,
		strings.Repeat("x", maxBodyBytes+1024))
	for _, path := range []string{"/v1/estimate", "/v1/network", "/v1/explore", "/v2/jobs"} {
		resp := postJSON(t, ts.URL+path, huge, nil)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s oversize: status %d, want 413", path, resp.StatusCode)
		}
	}
	// A merely malformed (not oversized) body still answers 400.
	resp := postJSON(t, ts.URL+"/v1/network", `{`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

// TestRunJobCancelRace: a cancellation landing after the final stream
// update must classify the job as cancelled (from the cancellation cause),
// not report it "done" because the update count reached the total.
func TestRunJobCancelRace(t *testing.T) {
	st := newJobStore(jobStoreConfig{})
	defer st.Close()
	ctx, cancel := context.WithCancelCause(st.base)
	j, err := st.submit("race", 2, cancel)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan delta.StreamUpdate, 2)
	ch <- delta.StreamUpdate{Done: 1, Total: 2}
	ch <- delta.StreamUpdate{Done: 2, Total: 2}
	cancel(errJobDeleted) // DELETE racing in after the last update
	close(ch)

	s := &server{jobs: st}
	st.runners.Add(1)
	s.runJob(ctx, j, ch, delta.StreamFailFast)
	status, errMsg, _, done, _ := j.snapshot(0)
	if status != jobCancelled {
		t.Errorf("status = %s, want cancelled", status)
	}
	if !strings.Contains(errMsg, "cancelled by client") {
		t.Errorf("error = %q, want the DELETE cause", errMsg)
	}
	if done != 2 {
		t.Errorf("done = %d, want 2 (results kept)", done)
	}
}

// TestJobDeleteDuringRunReportsCancelled: the HTTP-level DELETE-vs-
// completion race. Whatever the timing, the terminal state must be
// consistent: either the runner classified "done" strictly before the
// cancel landed (all results present), or the job reads cancelled with
// the client cause — never "done" with a cancellation observed.
func TestJobDeleteDuringRunReportsCancelled(t *testing.T) {
	ts, st := jobTestServer(t, jobStoreConfig{})
	sum := submitJob(t, ts, multiAxisJob)
	j, ok := st.get(sum.ID)
	if !ok {
		t.Fatal("submitted job not in store")
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v2/jobs/"+sum.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		status, errMsg, _, done, _ := j.snapshot(0)
		if status != jobRunning {
			switch status {
			case jobDone:
				// Legitimate only when the sweep fully completed before
				// the cancel was observed.
				if done != sum.Total {
					t.Errorf("done status with %d/%d results after DELETE", done, sum.Total)
				}
			case jobCancelled:
				if !strings.Contains(errMsg, "cancelled by client") {
					t.Errorf("cancelled with cause %q, want the DELETE cause", errMsg)
				}
			default:
				t.Errorf("status = %s after DELETE", status)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job never left running state after DELETE")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobEventsKeepAlive: an idle SSE stream emits comment frames at the
// configured interval (so proxies see traffic) and the proxy-buffering
// opt-out header.
func TestJobEventsKeepAlive(t *testing.T) {
	st := newJobStore(jobStoreConfig{})
	t.Cleanup(st.Close)
	ts := httptest.NewServer(newServerWith(delta.NewPipeline(), st,
		serverConfig{SSEKeepAlive: 20 * time.Millisecond}))
	t.Cleanup(ts.Close)

	// A registered job that never produces updates: the stream idles.
	ctx, cancel := context.WithCancelCause(st.base)
	defer cancel(nil)
	_ = ctx
	j, err := st.submit("idle", 1, cancel)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v2/jobs/" + j.id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Accel-Buffering"); got != "no" {
		t.Errorf("X-Accel-Buffering = %q, want no", got)
	}
	reader := bufio.NewReader(resp.Body)
	deadline := time.After(5 * time.Second)
	lines := make(chan string, 16)
	go func() {
		for {
			line, err := reader.ReadString('\n')
			if err != nil {
				close(lines)
				return
			}
			lines <- line
		}
	}()
	seen := 0
	for seen < 2 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before keep-alives arrived")
			}
			if strings.HasPrefix(line, ": keep-alive") {
				seen++
			}
		case <-deadline:
			t.Fatalf("saw %d keep-alive frames before timeout, want 2", seen)
		}
	}
	// Finishing the job terminates the stream with a done frame.
	j.finish(jobCancelled, "test over", st.cfg.now())
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed without done frame")
			}
			if strings.HasPrefix(line, "event: done") {
				return
			}
		case <-deadline:
			t.Fatal("no done frame after finish")
		}
	}
}
