// Command delta-server exposes the DeLTA evaluation pipeline as an HTTP
// JSON API — the serving layer for driving the model from other services,
// notebooks, or dashboards. All requests share one concurrent, memoizing
// pipeline, so repeated layers and grid re-evaluations are computed once.
//
// Synchronous endpoints (adapters over the scenario path):
//
//	GET  /healthz      liveness + cache counters
//	GET  /v1/devices   resolvable device names
//	GET  /v1/networks  registered network names
//	POST /v1/estimate  evaluate a JSON layer list (internal/spec format)
//	POST /v1/network   evaluate a registered network by name
//	POST /v1/explore   price + evaluate a design-space grid
//
// Asynchronous scenario jobs (declarative multi-axis sweeps):
//
//	POST   /v2/jobs             submit a scenario; answers 202 + job id
//	GET    /v2/jobs             list jobs
//	GET    /v2/jobs/{id}        status, progress, results so far
//	GET    /v2/jobs/{id}/events stream results via Server-Sent Events
//	DELETE /v2/jobs/{id}        cancel / discard a job
//
// Operations: GET /metrics serves Prometheus text metrics; /healthz is a
// readiness view (503 when saturated). Load shedding (-rate-limit,
// -max-inflight) answers 429/503 with Retry-After, and -auth-token (or
// DELTA_AUTH_TOKEN) puts every data endpoint behind a bearer token while
// /healthz and /metrics stay open.
//
// Example:
//
//	delta-server -addr :8080 &
//	curl -s localhost:8080/v1/network -d '{"network": "resnet152", "device": "V100"}'
//	curl -s localhost:8080/v2/jobs -d '{"scenario": {
//	  "workloads": [{"network": "alexnet"}, {"network": "vgg16"}],
//	  "devices": [{"name": "TITAN Xp"}, {"name": "V100"}],
//	  "models": ["delta", "prior"], "batches": [32]}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"delta"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "pipeline worker pool size (0 = GOMAXPROCS)")
		maxJobs     = flag.Int("max-jobs", 0, "bound on stored /v2 jobs (0 = default)")
		jobTTL      = flag.Duration("job-ttl", 0, "retention of finished /v2 jobs (0 = default)")
		replayParts = flag.Int("replay-partitions", 0,
			"L2 replay partitions per simulation request; bit-identical results (0/1 = serial replay)")

		authToken = flag.String("auth-token", "",
			"bearer token guarding all endpoints but /healthz and /metrics (empty = $DELTA_AUTH_TOKEN, unset = no auth)")
		rateLimit = flag.Float64("rate-limit", 0,
			"sustained per-client requests/second; exceeding answers 429 + Retry-After (0 = unlimited)")
		rateBurst = flag.Float64("rate-burst", 0,
			"per-client token-bucket burst (0 = 2x -rate-limit)")
		maxInflight = flag.Int("max-inflight", 0,
			"global concurrent-request cap; exceeding answers 503 + Retry-After (0 = uncapped)")
	)
	flag.Parse()
	// The env var is read after flag parsing, not wired as the flag
	// default: a default would be echoed by -h and flag-error usage
	// output, leaking the live token into logs.
	if *authToken == "" {
		*authToken = os.Getenv("DELTA_AUTH_TOKEN")
	}

	p := delta.NewPipeline(
		delta.WithPipelineWorkers(*workers),
		delta.WithPipelineReplayPartitions(*replayParts))
	jobs := newJobStore(jobStoreConfig{MaxJobs: *maxJobs, TTL: *jobTTL})
	defer jobs.Close()
	srv := &http.Server{
		Addr: *addr,
		Handler: newServerWith(p, jobs, serverConfig{
			AuthToken:   *authToken,
			RateLimit:   *rateLimit,
			RateBurst:   *rateBurst,
			MaxInFlight: *maxInflight,
			AccessLog:   log.Default(),
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("delta-server listening on %s", *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "delta-server:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Print("delta-server: shutting down")
		// Cancel running jobs first: SSE subscribers blocked on a job's
		// next result are woken by the job finishing as cancelled, so
		// Shutdown's wait for open connections can complete.
		jobs.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "delta-server: shutdown:", err)
			os.Exit(1)
		}
	}
}
