// Command delta-server exposes the DeLTA evaluation pipeline as an HTTP
// JSON API — the serving layer for driving the model from other services,
// notebooks, or dashboards. All requests share one concurrent, memoizing
// pipeline, so repeated layers and grid re-evaluations are computed once.
//
// Synchronous endpoints (adapters over the scenario path):
//
//	GET  /healthz      liveness + cache counters
//	GET  /v1/devices   resolvable device names
//	GET  /v1/networks  registered network names
//	POST /v1/estimate  evaluate a JSON layer list (internal/spec format)
//	POST /v1/network   evaluate a registered network by name
//	POST /v1/explore   price + evaluate a design-space grid
//
// Asynchronous scenario jobs (declarative multi-axis sweeps):
//
//	POST   /v2/jobs             submit a scenario; answers 202 + job id
//	GET    /v2/jobs             list jobs
//	GET    /v2/jobs/{id}        status, progress, results so far
//	GET    /v2/jobs/{id}/events stream results via Server-Sent Events
//	DELETE /v2/jobs/{id}        cancel / discard a job
//
// Operations: GET /metrics serves Prometheus text metrics; /healthz is a
// readiness view (503 when saturated). Load shedding (-rate-limit,
// -max-inflight) answers 429/503 with Retry-After, and -auth-token (or
// DELTA_AUTH_TOKEN) puts every data endpoint behind a bearer token while
// /healthz and /metrics stay open.
//
// Durability: -data-dir enables a WAL-backed job store (internal/durable)
// — restarts re-adopt persisted jobs and resume half-finished sweeps from
// their last completed point — plus outbox-buffered result sinks (-sink)
// and an -fsync policy. Without -data-dir jobs are in-memory and behavior
// is unchanged. See the README's Durability section.
//
// Distributed sweeps: every delta-server also serves POST /v2/shards, the
// worker half of fleet mode — a scenario window streamed back as SSE
// result frames. With -coordinator -peers=<list|@file>, submitted /v2
// jobs are instead sharded across those workers (internal/cluster) and
// merged back in expansion order, byte-identical to a single-node run;
// failed workers' shards are reassigned with bounded retries, chronically
// failing peers are fenced by per-peer circuit breakers, stragglers are
// hedged to healthy peers, and shard deadlines adapt to the fleet's
// observed pace (-breaker-*, -hedge-*, -shard-deadline-floor). See the
// README's "Distributed sweeps" section.
//
// Chaos testing: -chaos arms a seeded deterministic fault injector
// (internal/chaos) on the server's listener — refusals, synthetic 5xx,
// latency, and SSE-frame cut/truncate/corrupt — for resilience drills
// that replay identically from their seed ($DELTA_CHAOS_SEED).
//
// Example:
//
//	delta-server -addr :8080 &
//	curl -s localhost:8080/v1/network -d '{"network": "resnet152", "device": "V100"}'
//	curl -s localhost:8080/v2/jobs -d '{"scenario": {
//	  "workloads": [{"network": "alexnet"}, {"network": "vgg16"}],
//	  "devices": [{"name": "TITAN Xp"}, {"name": "V100"}],
//	  "models": ["delta", "prior"], "batches": [32]}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"delta"
	"delta/internal/chaos"
	"delta/internal/durable"
	"delta/internal/spec"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "pipeline worker pool size (0 = GOMAXPROCS)")
		maxJobs     = flag.Int("max-jobs", 0, "bound on stored /v2 jobs (0 = default)")
		jobTTL      = flag.Duration("job-ttl", 0, "retention of finished /v2 jobs (0 = default)")
		replayParts = flag.Int("replay-partitions", 0,
			"L2 replay partitions per simulation request; bit-identical results (0/1 = serial replay)")

		authToken = flag.String("auth-token", "",
			"bearer token guarding all endpoints but /healthz and /metrics (empty = $DELTA_AUTH_TOKEN, unset = no auth)")
		rateLimit = flag.Float64("rate-limit", 0,
			"sustained per-client requests/second; exceeding answers 429 + Retry-After (0 = unlimited)")
		rateBurst = flag.Float64("rate-burst", 0,
			"per-client token-bucket burst (0 = 2x -rate-limit)")
		maxInflight = flag.Int("max-inflight", 0,
			"global concurrent-request cap; exceeding answers 503 + Retry-After (0 = uncapped)")

		dataDir = flag.String("data-dir", "",
			"durable job state directory: WAL + snapshots + result sinks; restart resumes half-finished sweeps (empty = in-memory only)")
		fsyncMode = flag.String("fsync", "interval",
			"WAL fsync policy with -data-dir: always | interval | never")
		fsyncEvery = flag.Duration("fsync-interval", 0,
			"WAL fsync cadence for -fsync=interval (0 = 100ms default)")
		sinkFlag = flag.String("sink", "",
			`result sink with -data-dir: "jsonl" (default), "none", inline JSON config, or @file`)
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second,
			"shutdown budget for draining running jobs into the durable store")

		coordinator = flag.Bool("coordinator", false,
			"shard /v2 job sweeps across a worker fleet (-peers) instead of evaluating them locally")
		peersFlag = flag.String("peers", "",
			"worker base URLs for -coordinator: comma-separated list, or @file with one per line")
		shardsPerPeer = flag.Int("shards-per-peer", 0,
			"shards per worker when coordinating (0 = default 4)")
		shardAttempts = flag.Int("shard-attempts", 0,
			"dispatch attempts per shard before a coordinated sweep fails (0 = default max(3, peers+1))")
		shardTimeout = flag.Duration("shard-timeout", 0,
			"bound on one shard attempt when coordinating (0 = default 10m)")
		breakerThreshold = flag.Int("breaker-threshold", 0,
			"consecutive failures before a peer's circuit breaker opens (0 = default 3)")
		breakerCooldown = flag.Duration("breaker-cooldown", 0,
			"how long an open peer breaker waits before a half-open probe (0 = default 10s)")
		hedgeMultiplier = flag.Float64("hedge-multiplier", 0,
			"re-dispatch a shard when this many times slower than the fleet's median pace (0 = default 4, negative disables)")
		hedgeInterval = flag.Duration("hedge-interval", 0,
			"straggler-monitor poll period (0 = default 500ms)")
		hedgeFloor = flag.Duration("hedge-floor", 0,
			"minimum shard attempt age before hedging (0 = default 2s)")
		deadlineFloor = flag.Duration("shard-deadline-floor", 0,
			"lower clamp on adaptive shard deadlines (0 = default 30s)")

		chaosFlag = flag.String("chaos", "",
			`fault-injection spec (JSON rules or @file, see internal/chaos): injects connection refusals, 5xx, latency, and SSE-frame cut/truncate/corrupt into accepted connections; seeded by the spec or $DELTA_CHAOS_SEED`)
	)
	flag.Parse()
	// The env var is read after flag parsing, not wired as the flag
	// default: a default would be echoed by -h and flag-error usage
	// output, leaking the live token into logs.
	if *authToken == "" {
		*authToken = os.Getenv("DELTA_AUTH_TOKEN")
	}
	var peers []string
	switch {
	case *coordinator && *peersFlag == "":
		fmt.Fprintln(os.Stderr, "delta-server: -coordinator requires -peers")
		os.Exit(2)
	case !*coordinator && *peersFlag != "":
		fmt.Fprintln(os.Stderr, "delta-server: -peers requires -coordinator")
		os.Exit(2)
	case *coordinator:
		var err error
		if peers, err = parsePeersFlag(*peersFlag); err != nil {
			fmt.Fprintln(os.Stderr, "delta-server: -peers:", err)
			os.Exit(2)
		}
	}

	p := delta.NewPipeline(
		delta.WithPipelineWorkers(*workers),
		delta.WithPipelineReplayPartitions(*replayParts))
	jobs := newJobStore(jobStoreConfig{MaxJobs: *maxJobs, TTL: *jobTTL})
	defer jobs.Close()
	if *dataDir != "" {
		mode, err := durable.ParseFsyncMode(*fsyncMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "delta-server:", err)
			os.Exit(2)
		}
		sinkCfg, err := parseSinkFlag(*sinkFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "delta-server: -sink:", err)
			os.Exit(2)
		}
		dur, err := openDurability(*dataDir,
			durable.StoreOptions{Fsync: mode, FsyncInterval: *fsyncEvery}, sinkCfg, log.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "delta-server: opening durable store:", err)
			os.Exit(1)
		}
		jobs.durable = dur
		log.Printf("delta-server: durable jobs in %s (fsync=%s)", *dataDir, *fsyncMode)
	}
	handler, sv, err := buildServer(p, jobs, serverConfig{
		AuthToken:     *authToken,
		RateLimit:     *rateLimit,
		RateBurst:     *rateBurst,
		MaxInFlight:   *maxInflight,
		AccessLog:     log.Default(),
		Peers:            peers,
		ShardsPerPeer:    *shardsPerPeer,
		ShardAttempts:    *shardAttempts,
		ShardTimeout:     *shardTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		HedgeMultiplier:  *hedgeMultiplier,
		HedgeInterval:    *hedgeInterval,
		HedgeFloor:       *hedgeFloor,
		DeadlineFloor:    *deadlineFloor,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "delta-server:", err)
		os.Exit(2)
	}
	if len(peers) > 0 {
		log.Printf("delta-server: coordinator mode, %d worker(s)", len(peers))
	}
	sv.resumeJobs()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "delta-server:", err)
		os.Exit(1)
	}
	if *chaosFlag != "" {
		cspec, err := chaos.ParseSpec(*chaosFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "delta-server: -chaos:", err)
			os.Exit(2)
		}
		inj, err := chaos.New(cspec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "delta-server: -chaos:", err)
			os.Exit(2)
		}
		// Injections land in the server log, so a failed chaos drill shows
		// exactly which faults fired in what order — and the seed to replay
		// them.
		inj.Logf(log.Printf)
		ln = inj.Listener(ln)
		log.Printf("delta-server: CHAOS fault injection armed: %d rule(s), seed %d", len(cspec.Rules), chaos.Seed(cspec.Seed))
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("delta-server listening on %s", *addr)

	// closeDurable drains running jobs into the WAL and compacts the store
	// to a clean snapshot; a job interrupted mid-sweep stays "running" on
	// disk and resumes at the next start.
	closeDurable := func() {
		if jobs.durable == nil {
			return
		}
		jobs.Close()
		if !jobs.drain(*drainTimeout) {
			log.Printf("delta-server: drain timed out after %s; snapshotting what was flushed", *drainTimeout)
		}
		closeCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		jobs.durable.close(closeCtx)
	}

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			closeDurable()
			fmt.Fprintln(os.Stderr, "delta-server:", err)
			os.Exit(1)
		}
		closeDurable()
	case <-ctx.Done():
		log.Print("delta-server: shutting down")
		// Cancel running jobs first: SSE subscribers blocked on a job's
		// next result are woken by the job finishing as cancelled, so
		// Shutdown's wait for open connections can complete.
		jobs.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "delta-server: shutdown:", err)
			os.Exit(1)
		}
		closeDurable()
	}
}

// parseSinkFlag resolves the -sink value: the "jsonl"/"none" shorthands,
// an inline JSON config, or @file indirection (see internal/spec.ReadSink
// for the document shape). Empty means the jsonl default — results land in
// <data-dir>/results.jsonl.
func parseSinkFlag(v string) (durable.SinkConfig, error) {
	switch strings.TrimSpace(v) {
	case "", "jsonl":
		return durable.SinkConfig{Kind: "jsonl"}, nil
	case "none":
		return durable.SinkConfig{Kind: "none"}, nil
	}
	if name, ok := strings.CutPrefix(v, "@"); ok {
		f, err := os.Open(name)
		if err != nil {
			return durable.SinkConfig{}, err
		}
		defer f.Close()
		return spec.ReadSink(f)
	}
	if strings.HasPrefix(strings.TrimSpace(v), "{") {
		return spec.ReadSink(strings.NewReader(v))
	}
	return durable.SinkConfig{}, fmt.Errorf("unrecognized sink %q (want jsonl, none, inline JSON, or @file)", v)
}
