// The delta-server middleware stack: request-ID injection, access logging,
// per-route metrics, panic recovery, load shedding (per-client token
// buckets + a global in-flight gate), and optional bearer-token auth.
// Every middleware is a plain func(http.Handler) http.Handler so the chain
// reads top to bottom in newServerWith and each layer is testable alone.
package main

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"delta"
	"delta/internal/obs"
	"delta/internal/ratelimit"
)

// middleware wraps a handler; chain applies a stack outermost-first.
type middleware func(http.Handler) http.Handler

func chain(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// openPaths are reachable without auth and exempt from load shedding, so
// health probes and scrapes keep working while the server sheds traffic —
// exactly when their answers matter most.
func openPath(path string) bool {
	return path == "/healthz" || path == "/metrics"
}

// routeLabel collapses request paths onto a fixed route set so metric
// cardinality stays bounded no matter what paths clients probe.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/metrics", "/v1/devices", "/v1/networks",
		"/v1/estimate", "/v1/network", "/v1/explore", "/v2/jobs", "/v2/shards":
		return path
	}
	if rest, ok := strings.CutPrefix(path, "/v2/jobs/"); ok {
		if _, sub, _ := strings.Cut(rest, "/"); sub == "events" {
			return "/v2/jobs/{id}/events"
		}
		return "/v2/jobs/{id}"
	}
	return "other"
}

// Metric names are package-level constants by house rule (enforced by
// delta-vet's metrichygiene analyzer): one block to grep for the whole
// delta_ namespace, collision-proof at review time, and every name pinned
// to the delta_[a-z_]+ contract the dashboards and e2e scripts rely on.
const (
	metricHTTPRequests       = "delta_http_requests_total"
	metricHTTPDuration       = "delta_http_request_duration_seconds"
	metricHTTPInFlight       = "delta_http_in_flight_requests"
	metricHTTPPanics         = "delta_http_panics_total"
	metricHTTPShed           = "delta_http_shed_total"
	metricHTTPAuthFailures   = "delta_http_auth_failures_total"
	metricPipelineCacheHits  = "delta_pipeline_cache_hits_total"
	metricPipelineCacheMiss  = "delta_pipeline_cache_misses_total"
	metricPipelineEntries    = "delta_pipeline_cache_entries"
	metricScenarioPoints     = "delta_scenario_points_total"
	metricStreamCacheHits    = "delta_stream_cache_hits_total"
	metricStreamCacheMisses  = "delta_stream_cache_misses_total"
	metricStreamCacheEntries = "delta_stream_cache_entries"
	metricReplayPartitions   = "delta_replay_partitions"
	metricJobsStored         = "delta_jobs_stored"
	metricJobsRunning        = "delta_jobs_running"
	metricJobsCapacity       = "delta_jobs_capacity"
	metricJobsEvicted        = "delta_jobs_evicted_total"
	metricRatelimitClients   = "delta_ratelimit_clients"
	metricInflightInUse      = "delta_inflight_in_use"
	metricInflightCapacity   = "delta_inflight_capacity"
	metricOutboxDepth        = "delta_outbox_depth"
	metricOutboxCapacity     = "delta_outbox_capacity"
	metricOutboxPublished    = "delta_outbox_published_total"
	metricOutboxFlushed      = "delta_outbox_flushed_total"
	metricOutboxRetries      = "delta_outbox_retries_total"
	metricOutboxDeadLetters  = "delta_outbox_dead_letters_total"
	metricOutboxOverflow     = "delta_outbox_overflow_total"
	metricWALRecords         = "delta_wal_records_total"
	metricWALCompactions     = "delta_wal_compactions_total"
	metricWALReplayedJobs    = "delta_wal_replayed_jobs"
	metricWALTornBytes       = "delta_wal_torn_bytes"
	metricClusterPeers       = "delta_cluster_peers"
)

// serverMetrics is the delta-server metric set, registered once per server
// on a private obs.Registry (scraped at GET /metrics).
type serverMetrics struct {
	reg      *obs.Registry
	requests *obs.CounterVec   // route, method, code
	latency  *obs.HistogramVec // route
	inFlight *obs.Gauge
	panics   *obs.Counter
	shed     *obs.CounterVec // reason: rate | inflight
	authFail *obs.Counter
}

// newServerMetrics registers the request-level metrics plus the func-backed
// views over the pipeline, the job store, and the shedding primitives.
func newServerMetrics(p *delta.Pipeline, jobs *jobStore, lim *ratelimit.Limiter, gate *ratelimit.Gate) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec(metricHTTPRequests,
			"HTTP requests by route, method, and status code.",
			"route", "method", "code"),
		latency: reg.HistogramVec(metricHTTPDuration,
			"HTTP request latency by route.", obs.DefBuckets, "route"),
		inFlight: reg.Gauge(metricHTTPInFlight,
			"HTTP requests currently being served."),
		panics: reg.Counter(metricHTTPPanics,
			"Handler panics recovered into JSON 500 responses."),
		shed: reg.CounterVec(metricHTTPShed,
			"Requests shed by load limiting, by reason (rate, inflight).",
			"reason"),
		authFail: reg.Counter(metricHTTPAuthFailures,
			"Requests rejected with 401 by bearer-token auth."),
	}
	reg.CounterFunc(metricPipelineCacheHits,
		"Pipeline memo cache hits.",
		func() float64 { return float64(p.Stats().Hits) })
	reg.CounterFunc(metricPipelineCacheMiss,
		"Pipeline memo cache misses.",
		func() float64 { return float64(p.Stats().Misses) })
	reg.GaugeFunc(metricPipelineEntries,
		"Pipeline memo cache occupancy (entries).",
		func() float64 { return float64(p.Stats().Entries) })
	reg.CounterFunc(metricScenarioPoints,
		"Scenario points evaluated by the pipeline (memo hits included).",
		func() float64 { return float64(p.Stats().ScenarioPoints) })
	reg.CounterFunc(metricStreamCacheHits,
		"Shared stream-cache tier hits (coalesced tile streams reused).",
		func() float64 { return float64(p.Stats().StreamHits) })
	reg.CounterFunc(metricStreamCacheMisses,
		"Shared stream-cache tier misses (streams generated and published).",
		func() float64 { return float64(p.Stats().StreamMisses) })
	reg.GaugeFunc(metricStreamCacheEntries,
		"Shared stream-cache tier occupancy (published streams).",
		func() float64 { return float64(p.Stats().StreamEntries) })
	reg.GaugeFunc(metricReplayPartitions,
		"L2 replay partitions the pipeline applies to simulation requests.",
		func() float64 { return float64(p.Stats().ReplayPartitions) })
	reg.GaugeFunc(metricJobsStored,
		"Jobs held in the /v2 job store.",
		func() float64 { stored, _ := jobs.occupancy(); return float64(stored) })
	reg.GaugeFunc(metricJobsRunning,
		"Jobs in the /v2 store still running.",
		func() float64 { _, running := jobs.occupancy(); return float64(running) })
	reg.GaugeFunc(metricJobsCapacity,
		"Configured /v2 job store capacity.",
		func() float64 { return float64(jobs.cfg.MaxJobs) })
	reg.CounterFunc(metricJobsEvicted,
		"Finished jobs evicted from the /v2 store (TTL or capacity).",
		func() float64 { return float64(jobs.evictions()) })
	if lim != nil {
		reg.GaugeFunc(metricRatelimitClients,
			"Client buckets tracked by the rate limiter.",
			func() float64 { return float64(lim.Clients()) })
	}
	if gate != nil {
		reg.GaugeFunc(metricInflightInUse,
			"Global in-flight gate slots in use.",
			func() float64 { return float64(gate.InFlight()) })
		reg.GaugeFunc(metricInflightCapacity,
			"Global in-flight gate capacity.",
			func() float64 { return float64(gate.Cap()) })
	}
	if d := jobs.durable; d != nil {
		// Durable-mode metrics (-data-dir): the outbox set reads zero when
		// no sink is configured, keeping the scrape shape stable.
		reg.GaugeFunc(metricOutboxDepth,
			"Result-sink outbox occupancy (events queued for flush).",
			func() float64 { return float64(d.outboxStats().Depth) })
		reg.GaugeFunc(metricOutboxCapacity,
			"Result-sink outbox queue capacity.",
			func() float64 { return float64(d.outboxStats().Capacity) })
		reg.CounterFunc(metricOutboxPublished,
			"Events accepted into the result-sink outbox.",
			func() float64 { return float64(d.outboxStats().Published) })
		reg.CounterFunc(metricOutboxFlushed,
			"Events successfully flushed to the result sink.",
			func() float64 { return float64(d.outboxStats().Flushed) })
		reg.CounterFunc(metricOutboxRetries,
			"Result-sink flush attempts that failed and were retried.",
			func() float64 { return float64(d.outboxStats().Retries) })
		reg.CounterFunc(metricOutboxDeadLetters,
			"Events spilled to the dead-letter file after exhausting retries.",
			func() float64 { return float64(d.outboxStats().DeadLetters) })
		reg.CounterFunc(metricOutboxOverflow,
			"Events dead-lettered immediately because the outbox was full.",
			func() float64 { return float64(d.outboxStats().Overflow) })
		reg.CounterFunc(metricWALRecords,
			"Records appended to the durable job WAL.",
			func() float64 { return float64(d.storeStats().Records) })
		reg.CounterFunc(metricWALCompactions,
			"Durable-store snapshot compactions.",
			func() float64 { return float64(d.storeStats().Compactions) })
		reg.GaugeFunc(metricWALReplayedJobs,
			"Jobs recovered from the durable store at startup.",
			func() float64 { return float64(d.storeStats().ReplayedJobs) })
		reg.GaugeFunc(metricWALTornBytes,
			"Bytes dropped from the WAL's torn/corrupt tail at startup.",
			func() float64 { return float64(d.storeStats().TornBytes) })
	}
	return m
}

// statusWriter records the response status for logging and metrics while
// passing Flush through, so the SSE handler keeps streaming through the
// middleware stack.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withRequestID tags every request with an X-Request-ID (the client's, or
// a fresh one), echoed on the response and carried on the request headers
// for the access log.
func withRequestID() middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get("X-Request-ID")
			if id == "" || len(id) > 128 {
				var b [8]byte
				if _, err := rand.Read(b[:]); err == nil {
					id = hex.EncodeToString(b[:])
				} else {
					id = "unknown"
				}
				r.Header.Set("X-Request-ID", id)
			}
			w.Header().Set("X-Request-ID", id)
			next.ServeHTTP(w, r)
		})
	}
}

// withAccessLog writes one line per request: method, path, status,
// duration, request id, client. A nil logger disables logging (tests).
func withAccessLog(logger *log.Logger) middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			logger.Printf("%s %s %d %s id=%s client=%s",
				r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond),
				r.Header.Get("X-Request-ID"), clientIP(r))
		})
	}
}

// methodLabel collapses the request method onto the known set so the
// method label stays bounded: Go's server accepts any token as a method,
// and a client sending junk methods must not mint unbounded label values.
func methodLabel(method string) string {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodPost, http.MethodPut,
		http.MethodPatch, http.MethodDelete, http.MethodConnect,
		http.MethodOptions, http.MethodTrace:
		return method
	}
	return "other"
}

// withMetrics records per-route request counts, latencies, and the
// in-flight gauge. It sits outside recovery and shedding so 500s and 429s
// are counted like every other response.
func withMetrics(m *serverMetrics) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			route := routeLabel(r.URL.Path)
			method := methodLabel(r.Method)
			m.inFlight.Inc()
			start := time.Now()
			defer func() {
				m.inFlight.Dec()
				if sw.status == 0 {
					sw.status = http.StatusOK
				}
				m.latency.With(route).Observe(time.Since(start).Seconds())
				m.requests.With(route, method, strconv.Itoa(sw.status)).Inc()
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// withRecover converts a handler panic into a JSON 500 (instead of a
// dropped connection) and counts it. http.ErrAbortHandler keeps its
// contract: the connection is torn down without a reply.
func withRecover(m *serverMetrics, logger *log.Logger) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
					panic(rec)
				}
				m.panics.Inc()
				if logger != nil {
					logger.Printf("panic serving %s %s id=%s: %v\n%s",
						r.Method, r.URL.Path, r.Header.Get("X-Request-ID"), rec, debug.Stack())
				}
				// Headers may already be gone mid-stream; then the bare
				// 500 status line is all that can still be salvaged.
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError,
						fmt.Errorf("internal error (request %s)", r.Header.Get("X-Request-ID")))
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// withShedding enforces the per-client token buckets (429 + Retry-After)
// and the global in-flight gate (503 + Retry-After). /healthz and /metrics
// stay open so probes and scrapes survive overload.
func withShedding(m *serverMetrics, lim *ratelimit.Limiter, gate *ratelimit.Gate) middleware {
	return func(next http.Handler) http.Handler {
		if lim == nil && gate == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if openPath(r.URL.Path) {
				next.ServeHTTP(w, r)
				return
			}
			if lim != nil {
				if ok, retry := lim.Allow(clientIP(r)); !ok {
					m.shed.With("rate").Inc()
					w.Header().Set("Retry-After", retryAfterSeconds(retry))
					writeError(w, http.StatusTooManyRequests,
						errors.New("rate limit exceeded; retry later"))
					return
				}
			}
			// SSE streams — job event subscriptions and shard result
			// streams — live as long as their work and would pin gate
			// slots indefinitely (a handful of idle subscribers must not
			// 503 the whole server); they are rate-limited above but
			// exempt from the in-flight cap, which guards compute-bound
			// request handling.
			if route := routeLabel(r.URL.Path); route == "/v2/jobs/{id}/events" || route == "/v2/shards" {
				next.ServeHTTP(w, r)
				return
			}
			if !gate.TryAcquire() {
				m.shed.With("inflight").Inc()
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable,
					errors.New("server at concurrent-request capacity; retry later"))
				return
			}
			defer gate.Release()
			next.ServeHTTP(w, r)
		})
	}
}

// withAuth enforces a static bearer token when one is configured; the open
// paths stay reachable for probes and scrapes.
func withAuth(m *serverMetrics, token string) middleware {
	return func(next http.Handler) http.Handler {
		if token == "" {
			return next
		}
		want := []byte(token)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if openPath(r.URL.Path) {
				next.ServeHTTP(w, r)
				return
			}
			got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(got), want) != 1 {
				m.authFail.Inc()
				w.Header().Set("WWW-Authenticate", `Bearer realm="delta-server"`)
				writeError(w, http.StatusUnauthorized, errors.New("missing or invalid bearer token"))
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// clientIP is the rate-limit key: the connection's remote IP (the port
// would make every request a distinct client).
func clientIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders a Retry-After value, rounding up so clients
// never retry before a token is actually available.
func retryAfterSeconds(d time.Duration) string {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}
