package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"delta"
	"delta/internal/ratelimit"
)

// hardenedServer wires a full server with the given hardening config.
func hardenedServer(t *testing.T, cfg serverConfig) *httptest.Server {
	t.Helper()
	st := newJobStore(jobStoreConfig{})
	t.Cleanup(st.Close)
	ts := httptest.NewServer(newServerWith(delta.NewPipeline(), st, cfg))
	t.Cleanup(ts.Close)
	return ts
}

func testMetrics(t *testing.T) *serverMetrics {
	t.Helper()
	st := newJobStore(jobStoreConfig{})
	t.Cleanup(st.Close)
	return newServerMetrics(delta.NewPipeline(), st, nil, nil)
}

// TestPanicRecovery: a panicking handler answers a JSON 500 (instead of a
// dropped connection), increments the panic counter, and is recorded as a
// 500 by the metrics middleware.
func TestPanicRecovery(t *testing.T) {
	m := testMetrics(t)
	h := chain(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}), withMetrics(m), withRecover(m, nil))
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/network")
	if err != nil {
		t.Fatalf("connection dropped instead of a 500: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("500 body not JSON: %v", err)
	}
	if strings.Contains(e.Error, "kaboom") {
		t.Error("panic value leaked to the client")
	}
	if got := m.panics.Value(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
	if got := m.requests.With("/v1/network", "GET", "500").Value(); got != 1 {
		t.Errorf("requests{500} = %d, want 1", got)
	}
}

// TestPanicMidStream: a panic after the handler already started writing
// cannot send a JSON 500, but must still be counted and not kill the
// server for later requests.
func TestPanicMidStream(t *testing.T) {
	m := testMetrics(t)
	h := chain(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("partial"))
		panic("late")
	}), withMetrics(m), withRecover(m, nil))
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if m.panics.Value() != 1 {
		t.Errorf("panics counter = %d, want 1", m.panics.Value())
	}
}

// TestRateLimit429: past the per-client burst the server answers 429 with
// a Retry-After header; /healthz and /metrics stay exempt.
func TestRateLimit429(t *testing.T) {
	ts := hardenedServer(t, serverConfig{RateLimit: 0.5, RateBurst: 2})

	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/devices")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/devices")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive value", ra)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("429 body not JSON: %v", err)
	}
	// Probes and scrapes survive a rate-limited client.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s while rate limited: status %d", path, resp.StatusCode)
		}
	}
}

// TestInflightShed: a saturated in-flight gate answers 503 + Retry-After
// instead of queueing or dropping.
func TestInflightShed(t *testing.T) {
	m := testMetrics(t)
	gate := ratelimit.NewGate(1)
	h := chain(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), withShedding(m, nil, gate))
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	if !gate.TryAcquire() {
		t.Fatal("gate refused first slot")
	}
	resp, err := http.Get(ts.URL + "/v1/devices")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if m.shed.With("inflight").Value() != 1 {
		t.Errorf("shed{inflight} = %d, want 1", m.shed.With("inflight").Value())
	}
	gate.Release()
	resp2, err := http.Get(ts.URL + "/v1/devices")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-release status = %d, want 200", resp2.StatusCode)
	}
}

// TestAuthToken: with -auth-token set, data endpoints demand the bearer
// token (constant-time compared) while /healthz and /metrics stay open.
func TestAuthToken(t *testing.T) {
	ts := hardenedServer(t, serverConfig{AuthToken: "s3cret"})

	get := func(path, token string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := get("/v1/devices", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("missing token: status %d, want 401", resp.StatusCode)
	} else if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 without WWW-Authenticate")
	}
	if resp := get("/v1/devices", "wrong"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("wrong token: status %d, want 401", resp.StatusCode)
	}
	if resp := get("/v1/devices", "s3cret"); resp.StatusCode != http.StatusOK {
		t.Errorf("right token: status %d, want 200", resp.StatusCode)
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		if resp := get(path, ""); resp.StatusCode != http.StatusOK {
			t.Errorf("%s without token: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestMetricsEndpoint: /metrics renders the per-route counters, latency
// histograms, and the pipeline / job-store views after live traffic.
func TestMetricsEndpoint(t *testing.T) {
	ts := hardenedServer(t, serverConfig{})
	postJSON(t, ts.URL+"/v1/network", `{"network": "alexnet", "batch": 16}`, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`delta_http_requests_total{route="/v1/network",method="POST",code="200"} 1`,
		`delta_http_request_duration_seconds_bucket{route="/v1/network",le="+Inf"} 1`,
		"delta_http_in_flight_requests",
		"delta_pipeline_cache_misses_total",
		"delta_pipeline_cache_entries",
		"delta_scenario_points_total 1",
		"delta_jobs_stored 0",
		"delta_jobs_capacity 64",
		"delta_jobs_evicted_total 0",
		"# TYPE delta_http_request_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHealthReadiness: /healthz reports job-store occupancy and answers
// 503 when every slot is running.
func TestHealthReadiness(t *testing.T) {
	st := newJobStore(jobStoreConfig{MaxJobs: 1})
	t.Cleanup(st.Close)
	ts := httptest.NewServer(newServerWith(delta.NewPipeline(), st, serverConfig{}))
	t.Cleanup(ts.Close)

	var health struct {
		Status string `json:"status"`
		Jobs   struct {
			Stored, Running, Capacity int
		} `json:"jobs"`
	}
	resp := postGet(t, ts.URL+"/healthz", &health)
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("idle health = %d %+v", resp.StatusCode, health)
	}
	if health.Jobs.Capacity != 1 {
		t.Errorf("capacity = %d, want 1", health.Jobs.Capacity)
	}

	// Fill the single slot with a running job: the server is no longer
	// ready for new work and must say so.
	if _, err := st.submit("hog", 1, func(error) {}); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("saturated health status = %d, want 503 (%s)", resp2.StatusCode, body)
	}
	if !strings.Contains(string(body), `"degraded"`) {
		t.Errorf("saturated health body = %s", body)
	}
}

// TestRequestID: responses carry an X-Request-ID; a client-supplied one is
// echoed back.
func TestRequestID(t *testing.T) {
	ts := hardenedServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no generated X-Request-ID")
	}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "client-chosen")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "client-chosen" {
		t.Errorf("X-Request-ID = %q, want the client's", got)
	}
}

// TestRouteLabel pins the cardinality-bounding path collapse.
func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/healthz":            "/healthz",
		"/metrics":            "/metrics",
		"/v1/network":         "/v1/network",
		"/v2/jobs":            "/v2/jobs",
		"/v2/jobs/abc123":     "/v2/jobs/{id}",
		"/v2/jobs/abc/events": "/v2/jobs/{id}/events",
		"/v2/jobs/abc/bogus":  "/v2/jobs/{id}",
		"/nonsense":           "other",
		"/v1/bogus":           "other",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestSSEThroughMiddleware: the middleware stack must not break SSE
// streaming (statusWriter has to pass Flush through).
func TestSSEThroughMiddleware(t *testing.T) {
	ts := hardenedServer(t, serverConfig{SSEKeepAlive: time.Hour})
	sum := submitJob(t, ts, multiAxisJob)
	resp, err := http.Get(ts.URL + "/v2/jobs/" + sum.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(body), "event: result"); got != 8 {
		t.Errorf("streamed %d results through the middleware stack, want 8", got)
	}
}
