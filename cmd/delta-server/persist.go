// Durability glue: wires the /v2 job store to internal/durable. With
// -data-dir set, every job lifecycle edge (submit, point result, terminal
// status, eviction) is appended to a write-ahead log and mirrored into an
// outbox-buffered result sink; at startup, persisted jobs are reloaded and
// half-finished sweeps resume from their last completed point. Without
// -data-dir the durability pointer stays nil and every hook below is a
// no-op, so the in-memory behavior (and its responses) are untouched.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"path/filepath"
	"time"

	"delta"
	"delta/internal/durable"
	"delta/internal/spec"
)

// durability bundles the WAL-backed store with the optional result
// outbox. All record methods are nil-receiver-safe: a nil *durability is
// the in-memory configuration.
type durability struct {
	store  *durable.Store
	outbox *durable.Outbox
	log    *log.Logger
}

// openDurability opens the job store in dir and, when the sink config
// names a backend, starts the retry outbox in front of it.
func openDurability(dir string, storeOpts durable.StoreOptions, sinkCfg durable.SinkConfig, logger *log.Logger) (*durability, error) {
	if logger == nil {
		logger = log.Default()
	}
	storeOpts.Log = logger
	st, err := durable.Open(dir, storeOpts)
	if err != nil {
		return nil, err
	}
	d := &durability{store: st, log: logger}
	sink, err := durable.BuildSink(sinkCfg, dir)
	if err != nil {
		st.Close()
		return nil, err
	}
	if sink != nil {
		obCfg := sinkCfg.OutboxSettings()
		obCfg.Log = logger
		if obCfg.DeadLetterPath == "" {
			obCfg.DeadLetterPath = filepath.Join(dir, "dead-letter.jsonl")
		}
		d.outbox = durable.NewOutbox(sink, obCfg)
		logger.Printf("delta-server: result sink %s (outbox queue %d)", sink.Name(), d.outbox.Stats().Capacity)
	}
	return d, nil
}

// recordSubmit persists a newly accepted job (called with the raw
// scenario document so a restart can re-expand it).
func (d *durability) recordSubmit(j *job, scenario json.RawMessage, policy string) {
	if d == nil {
		return
	}
	if err := d.store.RecordSubmit(j.id, j.name, j.total, j.created, scenario, policy); err != nil {
		d.log.Printf("delta-server: persisting job %s submit: %v", j.id, err)
	}
	if d.outbox != nil {
		d.outbox.Publish(durable.Event{Job: j.id, Kind: "submitted", Payload: scenario})
	}
}

// recordResult persists one streamed point result at its dense position
// and feeds the sink. The rendered payload is marshaled once and shared
// between the WAL and the outbox.
func (d *durability) recordResult(id string, seq int, pr pointResult) {
	if d == nil {
		return
	}
	payload, err := json.Marshal(pr)
	if err != nil {
		d.log.Printf("delta-server: encoding job %s result %d: %v", id, seq, err)
		return
	}
	if err := d.store.RecordResult(id, seq, payload); err != nil {
		d.log.Printf("delta-server: persisting job %s result %d: %v", id, seq, err)
	}
	if d.outbox != nil {
		d.outbox.Publish(durable.Event{Job: id, Kind: "result", Seq: seq, Payload: payload})
	}
}

// recordFinish persists a job's terminal transition. Shutdown
// cancellations never reach here: the job must stay "running" durably so
// the next process resumes it (see runJob).
func (d *durability) recordFinish(id string, status jobStatus, errMsg string, at time.Time) {
	if d == nil {
		return
	}
	if err := d.store.RecordFinish(id, string(status), errMsg, at); err != nil {
		d.log.Printf("delta-server: persisting job %s finish: %v", id, err)
	}
	if d.outbox != nil {
		payload, _ := json.Marshal(map[string]string{"status": string(status), "error": errMsg})
		d.outbox.Publish(durable.Event{Job: id, Kind: "finished", Payload: payload})
	}
}

// RecordShard persists one distributed-shard lifecycle transition
// (dispatched / done / failed, with the peer and attempt number). It
// implements cluster.Recorder, so coordinator mode audits every shard
// hand-off in the job WAL. Exported shape aside, it is nil-safe like the
// other hooks: in-memory coordinators simply skip recording.
func (d *durability) RecordShard(job string, shard, offset, count int, peer string, attempt int, status string) error {
	if d == nil {
		return nil
	}
	return d.store.RecordShard(job, shard, offset, count, peer, attempt, status)
}

// recordEvict truncates a job's durable state (TTL/capacity eviction or a
// client DELETE discarding it).
func (d *durability) recordEvict(id string) {
	if d == nil {
		return
	}
	if err := d.store.RecordEvict(id); err != nil {
		d.log.Printf("delta-server: evicting job %s from durable store: %v", id, err)
	}
}

// outboxStats is the nil-safe metrics view.
func (d *durability) outboxStats() durable.OutboxStats {
	if d == nil || d.outbox == nil {
		return durable.OutboxStats{}
	}
	return d.outbox.Stats()
}

// storeStats is the nil-safe metrics view.
func (d *durability) storeStats() durable.StoreStats {
	if d == nil || d.store == nil {
		return durable.StoreStats{}
	}
	return d.store.Stats()
}

// saturated reports outbox backpressure for /healthz.
func (d *durability) saturated() bool {
	return d != nil && d.outbox != nil && d.outbox.Saturated()
}

// close drains the outbox (one final flush attempt, then dead-letter) and
// compacts the store into a clean snapshot. ctx bounds the outbox drain.
func (d *durability) close(ctx context.Context) {
	if d == nil {
		return
	}
	if d.outbox != nil {
		if err := d.outbox.Close(ctx); err != nil {
			d.log.Printf("delta-server: closing outbox: %v", err)
		}
	}
	if err := d.store.Close(); err != nil {
		d.log.Printf("delta-server: closing durable store: %v", err)
	}
}

// resumeJobs reloads persisted jobs into the in-memory store and
// relaunches half-finished sweeps from their last completed point.
// Finished jobs are restored as-is (TTL eviction applies from their
// original finish time); running jobs re-expand their scenario — the
// deterministic scenario.Expand order is the contract that makes
// "skip the first len(results) points" resume exactly where the previous
// process stopped. It returns the restored and resumed counts.
func (s *server) resumeJobs() (restored, resumed int) {
	d := s.jobs.durable
	if d == nil {
		return 0, 0
	}
	for _, js := range d.store.Jobs() {
		results, dropped := decodeResults(js.Results)
		if dropped > 0 {
			d.log.Printf("delta-server: job %s: dropping %d undecodable persisted result(s); the sweep re-evaluates them", js.ID, dropped)
		}
		j := &job{
			id: js.ID, name: js.Name, total: js.Total, created: js.Created,
			notify:  make(chan struct{}),
			results: results,
			cancel:  func(error) {},
		}
		if js.Status != durable.StatusRunning {
			j.status, j.errMsg, j.finished = jobStatus(js.Status), js.Error, js.Finished
			s.jobs.adopt(j)
			restored++
			continue
		}

		// A half-finished sweep: adopt it as running, then either finish
		// it from the recovered state or resume the stream.
		policy := delta.StreamFailFast
		if js.Policy == "collect_partial" {
			policy = delta.StreamCollectPartial
		}
		ctx, cancel := context.WithCancelCause(s.jobs.base)
		j.status, j.cancel = jobRunning, cancel
		j.onFinish = func() { s.jobs.running.Add(-1) }
		s.jobs.adopt(j)

		finishNow := func(status jobStatus, msg string) {
			now := s.jobs.cfg.now()
			j.finish(status, msg, now)
			d.recordFinish(j.id, status, msg, now)
			cancel(nil)
		}
		// A fail-fast sweep whose last persisted result errored was
		// crashing between that append and its finish record: classify it
		// now instead of re-running anything.
		if policy == delta.StreamFailFast {
			if msg := firstResultError(results); msg != "" {
				finishNow(jobFailed, msg)
				continue
			}
		}
		if len(results) >= js.Total {
			// Crashed after the last point, before the finish record.
			finishNow(jobDone, "")
			continue
		}
		sc, err := spec.ReadScenario(bytes.NewReader(js.Scenario))
		if err != nil {
			finishNow(jobFailed, fmt.Sprintf("resume: re-expanding scenario: %v", err))
			continue
		}
		if got := sc.Size(); got != js.Total {
			// The registries changed shape across the restart; resuming
			// by offset would mislabel points. Refuse loudly.
			finishNow(jobFailed, fmt.Sprintf("resume: scenario now expands to %d points, job recorded %d", got, js.Total))
			continue
		}
		if s.coord != nil {
			// Coordinator mode resumes like single-node: only the points
			// past the merged prefix are re-dispatched (Sweep.Offset), so
			// a restart never recomputes or duplicates merged results.
			s.jobs.runners.Add(1)
			go s.runClusterJob(ctx, j, js.Scenario, sc, len(results), policy)
			resumed++
			continue
		}
		ch, err := s.p.Stream(ctx, sc,
			delta.WithStreamErrorPolicy(policy), delta.WithStreamOffset(len(results)))
		if err != nil {
			finishNow(jobFailed, fmt.Sprintf("resume: %v", err))
			continue
		}
		s.jobs.runners.Add(1)
		go s.runJob(ctx, j, ch, policy)
		resumed++
	}
	if restored+resumed > 0 {
		d.log.Printf("delta-server: durable store: restored %d finished job(s), resumed %d running job(s)", restored, resumed)
	}
	return restored, resumed
}

// decodeResults rebuilds the in-memory result list from persisted
// payloads, truncating at the first undecodable entry so the dense
// resume-offset contract holds (later points simply re-evaluate).
func decodeResults(raw []json.RawMessage) (out []pointResult, dropped int) {
	out = make([]pointResult, 0, len(raw))
	for i, buf := range raw {
		var pr pointResult
		if err := json.Unmarshal(buf, &pr); err != nil {
			return out, len(raw) - i
		}
		out = append(out, pr)
	}
	return out, 0
}

// firstResultError returns the first per-point error in the recovered
// results (the fail-fast classification input).
func firstResultError(results []pointResult) string {
	for _, r := range results {
		if r.Error != "" {
			return r.Error
		}
	}
	return ""
}
