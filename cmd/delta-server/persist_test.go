// Tests for the durable-jobs wiring: crash-recovery resume with
// byte-identical results, persistence-aware eviction racing job
// completion, the entropy-failure job-id fallback, SSE Last-Event-ID
// resume, and engine liveness against a failing result sink.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"delta"
	"delta/internal/durable"
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// durableTestServer wires a server whose job store records into d.
func durableTestServer(t *testing.T, d *durability, cfg jobStoreConfig) (*httptest.Server, *jobStore, *server) {
	t.Helper()
	st := newJobStore(cfg)
	st.durable = d
	handler, sv, err := buildServer(delta.NewPipeline(), st, serverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	t.Cleanup(st.Close)
	return ts, st, sv
}

func openTestDurability(t *testing.T, dir string, sink durable.SinkConfig) *durability {
	t.Helper()
	d, err := openDurability(dir, durable.StoreOptions{Fsync: durable.FsyncNever}, sink, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func findDurableJob(t *testing.T, d *durability, id string) *durable.JobState {
	t.Helper()
	for _, js := range d.store.Jobs() {
		if js.ID == id {
			return js
		}
	}
	t.Fatalf("job %s not in durable store", id)
	return nil
}

// TestCrashRecoveryResume is the Go-level half of the resume acceptance
// criterion: a durable state interrupted mid-sweep (submit + a prefix of
// results, no finish record — what a kill -9 leaves behind) must resume
// on the next start and converge to results byte-identical to an
// uninterrupted run.
func TestCrashRecoveryResume(t *testing.T) {
	// Reference: an uninterrupted run with durability on.
	durA := openTestDurability(t, t.TempDir(), durable.SinkConfig{Kind: "none"})
	defer durA.close(context.Background())
	tsA, _, _ := durableTestServer(t, durA, jobStoreConfig{})
	sumA := submitJob(t, tsA, multiAxisJob)
	want := pollJob(t, tsA, sumA.ID)
	if want.Status != string(jobDone) || len(want.Results) != 8 {
		t.Fatalf("reference run = %+v", want.jobSummary)
	}
	jsA := findDurableJob(t, durA, sumA.ID)
	if jsA.Status != durable.StatusDone || len(jsA.Results) != 8 {
		t.Fatalf("reference durable state: status %s, %d results", jsA.Status, len(jsA.Results))
	}

	// Fabricate the crashed state: same scenario, first 3 result payloads,
	// status still running.
	var req jobRequest
	if err := json.Unmarshal([]byte(multiAxisJob), &req); err != nil {
		t.Fatal(err)
	}
	dirB := t.TempDir()
	stB, err := durable.Open(dirB, durable.StoreOptions{Fsync: durable.FsyncNever, Log: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	const resumeID = "resume01"
	created := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	if err := stB.RecordSubmit(resumeID, jsA.Name, jsA.Total, created, req.Scenario, "fail_fast"); err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 3; seq++ {
		if err := stB.RecordResult(resumeID, seq, jsA.Results[seq]); err != nil {
			t.Fatal(err)
		}
	}
	if err := stB.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the new process must adopt and resume the sweep.
	durB := openTestDurability(t, dirB, durable.SinkConfig{Kind: "none"})
	defer durB.close(context.Background())
	tsB, _, svB := durableTestServer(t, durB, jobStoreConfig{})
	restored, resumed := svB.resumeJobs()
	if restored != 0 || resumed != 1 {
		t.Fatalf("resumeJobs = (%d restored, %d resumed), want (0, 1)", restored, resumed)
	}
	got := pollJob(t, tsB, resumeID)
	if got.Status != string(jobDone) || got.Error != "" {
		t.Fatalf("resumed job = %+v", got.jobSummary)
	}
	if got.Created != created.UTC().Format(time.RFC3339) {
		t.Errorf("resumed job created = %s, want the original %s", got.Created, created.UTC().Format(time.RFC3339))
	}

	// The full result set — recovered prefix + re-evaluated tail — must be
	// byte-identical to the uninterrupted run.
	wantBuf, _ := json.Marshal(want.Results)
	gotBuf, _ := json.Marshal(got.Results)
	if string(wantBuf) != string(gotBuf) {
		t.Fatalf("resumed results diverge from uninterrupted run:\nwant %s\ngot  %s", wantBuf, gotBuf)
	}

	// And the durable state must have converged too: done, with the same
	// persisted payloads as the reference run.
	jsB := findDurableJob(t, durB, resumeID)
	if jsB.Status != durable.StatusDone || len(jsB.Results) != 8 {
		t.Fatalf("durable state after resume: status %s, %d results", jsB.Status, len(jsB.Results))
	}
	for i := range jsB.Results {
		if string(jsB.Results[i]) != string(jsA.Results[i]) {
			t.Errorf("persisted result %d diverges:\nwant %s\ngot  %s", i, jsA.Results[i], jsB.Results[i])
		}
	}

	// SSE reconnect across the restart: Last-Event-ID from the old process
	// replays from that offset against the recovered results.
	reqSSE, err := http.NewRequest(http.MethodGet, tsB.URL+"/v2/jobs/"+resumeID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	reqSSE.Header.Set("Last-Event-ID", "3")
	ids, results := readSSEResults(t, reqSSE)
	if len(results) != 5 {
		t.Fatalf("SSE after Last-Event-ID 3 replayed %d results, want 5", len(results))
	}
	if ids[0] != 4 || results[0].Index != 3 {
		t.Errorf("first replayed frame: id %d index %d, want id 4 index 3", ids[0], results[0].Index)
	}
}

// readSSEResults consumes an SSE stream until the done frame, returning
// the result frames' ids and payloads.
func readSSEResults(t *testing.T, req *http.Request) (ids []int, results []pointResult) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status = %d", resp.StatusCode)
	}
	var (
		lastID  int
		event   string
		scanner = bufio.NewScanner(resp.Body)
	)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			if _, err := json.Number(strings.TrimPrefix(line, "id: ")).Int64(); err != nil {
				t.Fatalf("bad id line %q", line)
			}
			n, _ := json.Number(strings.TrimPrefix(line, "id: ")).Int64()
			lastID = int(n)
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event == "done" {
				return ids, results
			}
			var res pointResult
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &res); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, lastID)
			results = append(results, res)
		}
	}
	t.Fatal("stream ended without a done frame")
	return nil, nil
}

// TestJobEventsLastEventID: a plain (in-memory) reconnect with
// Last-Event-ID skips the frames the client already has; bogus ids fall
// back to a full replay.
func TestJobEventsLastEventID(t *testing.T) {
	ts, _ := jobTestServer(t, jobStoreConfig{})
	sum := submitJob(t, ts, multiAxisJob)
	if jr := pollJob(t, ts, sum.ID); jr.Status != string(jobDone) {
		t.Fatalf("job = %+v", jr.jobSummary)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v2/jobs/"+sum.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "5")
	ids, results := readSSEResults(t, req)
	if len(results) != 3 {
		t.Fatalf("replayed %d results after id 5, want 3", len(results))
	}
	for i, res := range results {
		if ids[i] != 6+i || res.Index != 5+i {
			t.Errorf("frame %d: id %d index %d, want id %d index %d", i, ids[i], res.Index, 6+i, 5+i)
		}
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v2/jobs/"+sum.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	if _, results := readSSEResults(t, req); len(results) != 8 {
		t.Errorf("bogus Last-Event-ID replayed %d results, want full 8", len(results))
	}
}

// TestEvictionFinishRaceDurable races runJob's terminal transition
// against TTL eviction under a durable store: the finish hook must fire
// exactly once, and the durable state must match the winning outcome —
// eventually evicted, never left "running" on disk.
func TestEvictionFinishRaceDurable(t *testing.T) {
	dur := openTestDurability(t, t.TempDir(), durable.SinkConfig{Kind: "none"})
	defer dur.close(context.Background())

	var clock atomic.Int64
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	clock.Store(t0.UnixNano())
	st := newJobStore(jobStoreConfig{
		MaxJobs: 8, TTL: time.Nanosecond,
		now: func() time.Time { return time.Unix(0, clock.Load()).UTC() },
	})
	defer st.Close()
	st.durable = dur
	s := &server{jobs: st}

	ctx, cancel := context.WithCancelCause(st.base)
	j, err := st.submit("race", 1, cancel)
	if err != nil {
		t.Fatal(err)
	}
	dur.recordSubmit(j, json.RawMessage(`{"workloads":[{"network":"alexnet"}]}`), "fail_fast")

	var finishes atomic.Int32
	prevFinish := j.onFinish
	j.onFinish = func() { finishes.Add(1); prevFinish() }

	ch := make(chan delta.StreamUpdate, 1)
	ch <- delta.StreamUpdate{Done: 1, Total: 1}
	close(ch)

	var wg sync.WaitGroup
	wg.Add(2)
	st.runners.Add(1)
	go func() {
		defer wg.Done()
		s.runJob(ctx, j, ch, delta.StreamFailFast)
	}()
	go func() {
		defer wg.Done()
		// Concurrent TTL sweeps: every submit runs the evictor, and the
		// 1ns TTL with an advancing clock makes the job evictable the
		// moment it finishes.
		for i := 0; i < 50; i++ {
			clock.Add(int64(time.Millisecond))
			_, cancelF := context.WithCancelCause(st.base)
			if f, err := st.submit("filler", 1, cancelF); err == nil {
				f.finish(jobDone, "", st.cfg.now())
			}
		}
	}()
	wg.Wait()

	if got := finishes.Load(); got != 1 {
		t.Fatalf("onFinish fired %d times, want exactly 1", got)
	}
	// Whatever interleaving happened, the durable state is never stuck
	// "running": either the finish record landed (status done) or eviction
	// already truncated it.
	for _, js := range dur.store.Jobs() {
		if js.ID == j.id && js.Status == durable.StatusRunning {
			t.Fatalf("durable state still running after finish/evict race: %+v", js)
		}
	}
	// A final sweep must settle on eviction: the job is gone from memory
	// and from the durable store.
	clock.Add(int64(time.Hour))
	_, cancelF := context.WithCancelCause(st.base)
	if _, err := st.submit("sweep", 1, cancelF); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.get(j.id); ok {
		t.Error("job survived TTL eviction")
	}
	for _, js := range dur.store.Jobs() {
		if js.ID == j.id {
			t.Errorf("durable state survived eviction: %+v", js)
		}
	}
}

// TestNewJobIDFallback: an entropy failure is retried once, then falls
// back to unique monotonic ids instead of failing the submit.
func TestNewJobIDFallback(t *testing.T) {
	orig := randRead
	defer func() { randRead = orig }()

	var calls atomic.Int32
	randRead = func([]byte) (int, error) { calls.Add(1); return 0, errors.New("entropy source down") }
	id1, id2 := newJobID(), newJobID()
	if calls.Load() != 4 {
		t.Errorf("entropy reads = %d, want 4 (one retry per id)", calls.Load())
	}
	if !strings.HasPrefix(id1, "j") || id1 == id2 {
		t.Errorf("fallback ids = %q, %q (want distinct j-prefixed)", id1, id2)
	}

	// A transient failure recovers on the retry: still a random id.
	failOnce := true
	randRead = func(b []byte) (int, error) {
		if failOnce {
			failOnce = false
			return 0, errors.New("transient")
		}
		return orig(b)
	}
	if id := newJobID(); len(id) != 16 {
		t.Errorf("retried id = %q, want 16 hex chars", id)
	}

	// End to end: submits keep answering 202 with entropy down.
	randRead = func([]byte) (int, error) { return 0, errors.New("entropy source down") }
	ts, _ := jobTestServer(t, jobStoreConfig{})
	sum := submitJob(t, ts, multiAxisJob)
	if jr := pollJob(t, ts, sum.ID); jr.Status != string(jobDone) {
		t.Errorf("job under entropy failure = %+v", jr.jobSummary)
	}
}

// TestFailingSinkDoesNotStallJobs pins the backpressure guarantee: a sink
// that never succeeds (tiny queue, so the outbox saturates immediately)
// must not block the engine hot path — the sweep completes promptly, the
// overflow spills to the dead-letter file, and the durable metrics and
// healthz surface the backpressure.
func TestFailingSinkDoesNotStallJobs(t *testing.T) {
	dir := t.TempDir()
	stD, err := durable.Open(dir, durable.StoreOptions{Fsync: durable.FsyncNever, Log: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	sink := &durable.FlakySink{FailFirst: 1 << 30} // never succeeds
	ob := durable.NewOutbox(sink, durable.OutboxConfig{
		Queue: 2, Batch: 1, MaxAttempts: 2,
		BaseBackoff: 250 * time.Millisecond, MaxBackoff: time.Second,
		DeadLetterPath: filepath.Join(dir, "dead-letter.jsonl"),
		Log:            quietLogger(),
	})
	dur := &durability{store: stD, outbox: ob, log: quietLogger()}
	ts, _, _ := durableTestServer(t, dur, jobStoreConfig{})

	start := time.Now()
	sum := submitJob(t, ts, multiAxisJob)
	jr := pollJob(t, ts, sum.ID)
	if jr.Status != string(jobDone) || len(jr.Results) != 8 {
		t.Fatalf("job against dead sink = %+v", jr.jobSummary)
	}
	// The slow, failing sink (250ms+ backoff per attempt, 10 events) must
	// not set the sweep's pace. The bound is loose to stay robust on slow
	// CI, but far below what serialized flush attempts would take.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("sweep took %s against a dead sink (engine stalled?)", elapsed)
	}

	stats := dur.outboxStats()
	if stats.Published != 10 { // submitted + 8 results + finished
		t.Errorf("published = %d, want 10", stats.Published)
	}
	if stats.Overflow == 0 {
		t.Errorf("tiny queue against a dead sink never overflowed: %+v", stats)
	}

	// /metrics carries the outbox set; /healthz reports saturation.
	var metrics strings.Builder
	resp := postGet(t, ts.URL+"/metrics", nil)
	buf, _ := io.ReadAll(resp.Body)
	metrics.Write(buf)
	for _, name := range []string{
		"delta_outbox_depth", "delta_outbox_retries_total",
		"delta_outbox_dead_letters_total", "delta_wal_records_total",
	} {
		if !strings.Contains(metrics.String(), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	var health struct {
		Durable struct {
			WALRecords int `json:"wal_records"`
			Outbox     struct {
				Capacity int `json:"capacity"`
			} `json:"outbox"`
		} `json:"durable"`
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Durable.WALRecords == 0 || health.Durable.Outbox.Capacity != 2 {
		t.Errorf("healthz durable section = %+v", health.Durable)
	}

	// Close drains what it can and dead-letters the rest: every published
	// event is accounted for.
	closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	dur.close(closeCtx)
	// Overflow spills count as dead letters too, so flushed + dead-lettered
	// covers everything published.
	if got := ob.Stats(); got.Flushed+got.DeadLetters != got.Published {
		t.Errorf("events unaccounted for after close: %+v", got)
	}
}

// TestParseSinkFlag covers the -sink value forms.
func TestParseSinkFlag(t *testing.T) {
	for _, v := range []string{"", "jsonl"} {
		cfg, err := parseSinkFlag(v)
		if err != nil || cfg.Kind != "jsonl" {
			t.Errorf("parseSinkFlag(%q) = %+v, %v", v, cfg, err)
		}
	}
	if cfg, err := parseSinkFlag("none"); err != nil || cfg.Kind != "none" {
		t.Errorf("none = %+v, %v", cfg, err)
	}
	cfg, err := parseSinkFlag(`{"kind": "http", "url": "http://x/ingest"}`)
	if err != nil || cfg.Kind != "http" || cfg.URL != "http://x/ingest" {
		t.Errorf("inline = %+v, %v", cfg, err)
	}
	if _, err := parseSinkFlag("kafka"); err == nil {
		t.Error("unknown sink shorthand accepted")
	}
	if _, err := parseSinkFlag("@/no/such/file"); err == nil {
		t.Error("missing @file accepted")
	}
}
