// HTTP handlers: a thin JSON codec layer over the shared evaluation
// pipeline, reusing internal/spec for layer-list and device payloads.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"delta"
	"delta/internal/spec"
)

// maxBodyBytes bounds request bodies; layer lists are small.
const maxBodyBytes = 1 << 20

// server routes requests into one shared pipeline, so concurrent clients
// share the worker pool and the memo cache.
type server struct {
	p *delta.Pipeline
}

// newServer returns the delta-server HTTP handler.
func newServer(p *delta.Pipeline) http.Handler {
	s := &server{p: p}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/devices", s.handleDevices)
	mux.HandleFunc("/v1/networks", s.handleNetworks)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	mux.HandleFunc("/v1/network", s.handleNetwork)
	mux.HandleFunc("/v1/explore", s.handleExplore)
	return mux
}

// estimateRequest is the JSON shape of /v1/estimate and /v1/network.
// Layers reuses the internal/spec layer-list codec verbatim; DeviceSpec
// the spec device codec (inheriting unset fields from a base device).
type estimateRequest struct {
	// Network names a registered CNN (/v1/network); Layers carries an
	// explicit spec layer list (/v1/estimate).
	Network string          `json:"network,omitempty"`
	Batch   int             `json:"batch,omitempty"`
	Layers  json.RawMessage `json:"layers,omitempty"`

	Device     string          `json:"device,omitempty"`
	DeviceSpec json.RawMessage `json:"device_spec,omitempty"`

	Model    string         `json:"model,omitempty"`
	Pass     string         `json:"pass,omitempty"`
	MissRate float64        `json:"miss_rate,omitempty"`
	Options  trafficOptions `json:"options,omitempty"`
}

// trafficOptions mirrors delta.TrafficOptions for JSON.
type trafficOptions struct {
	PaperMLIFilter    bool `json:"paper_mli_filter,omitempty"`
	CapacityAwareDRAM bool `json:"capacity_aware_dram,omitempty"`
	TileOverride      int  `json:"tile_override,omitempty"`
}

func (o trafficOptions) toModel() delta.TrafficOptions {
	return delta.TrafficOptions{
		PaperMLIFilter:    o.PaperMLIFilter,
		CapacityAwareDRAM: o.CapacityAwareDRAM,
		TileOverride:      o.TileOverride,
	}
}

// layerResponse is one per-layer prediction row.
type layerResponse struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	Seconds float64 `json:"seconds"`

	// Inference (delta/prior) fields.
	Cycles      float64 `json:"cycles,omitempty"`
	Bottleneck  string  `json:"bottleneck,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`
	L1Bytes     float64 `json:"l1_bytes,omitempty"`
	L2Bytes     float64 `json:"l2_bytes,omitempty"`
	DRAMBytes   float64 `json:"dram_bytes,omitempty"`

	// Training-pass breakdown.
	FpropSeconds float64 `json:"fprop_seconds,omitempty"`
	DgradSeconds float64 `json:"dgrad_seconds,omitempty"`
	WgradSeconds float64 `json:"wgrad_seconds,omitempty"`

	// Roofline fields.
	Bound     string  `json:"bound,omitempty"`
	Intensity float64 `json:"intensity,omitempty"`
}

// estimateResponse is the JSON answer of /v1/estimate and /v1/network.
type estimateResponse struct {
	Network      string          `json:"network"`
	Device       string          `json:"device"`
	Model        string          `json:"model"`
	Pass         string          `json:"pass"`
	Layers       []layerResponse `json:"layers"`
	TotalSeconds float64         `json:"total_seconds"`
	Bottlenecks  map[string]int  `json:"bottlenecks,omitempty"`
}

// exploreRequest is the JSON shape of /v1/explore.
type exploreRequest struct {
	estimateRequest

	// Axes overrides the default exploration grid; empty axes mean "1x".
	Axes *exploreAxes `json:"axes,omitempty"`

	// Target asks for the cheapest candidate reaching this speedup.
	Target float64 `json:"target,omitempty"`
}

type exploreAxes struct {
	NumSM    []float64 `json:"num_sm,omitempty"`
	MACPerSM []float64 `json:"mac_per_sm,omitempty"`
	MemBW    []float64 `json:"mem_bw,omitempty"`
	SMLocal  []float64 `json:"sm_local,omitempty"`
}

// candidateResponse is one priced design point.
type candidateResponse struct {
	NumSM      float64 `json:"num_sm"`
	MACPerSM   float64 `json:"mac_per_sm"`
	MemBW      float64 `json:"mem_bw"`
	SMLocal    float64 `json:"sm_local"`
	Cost       float64 `json:"cost"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

type exploreResponse struct {
	Network    string              `json:"network"`
	Device     string              `json:"device"`
	Candidates []candidateResponse `json:"candidates"`
	Pareto     []candidateResponse `json:"pareto"`
	Cheapest   *candidateResponse  `json:"cheapest,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeBody strictly parses a bounded JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// resolveDevice picks the request's device: an inline spec wins over a
// registry name; the default is the TITAN Xp baseline.
func resolveDevice(req estimateRequest) (delta.GPU, error) {
	if len(req.DeviceSpec) > 0 {
		return spec.ReadDevice(bytes.NewReader(req.DeviceSpec))
	}
	if req.Device != "" {
		return delta.DeviceByName(req.Device)
	}
	return delta.TitanXp(), nil
}

// resolveNetwork picks the request's workload: an inline spec layer list or
// a registered network name.
func resolveNetwork(req estimateRequest) (delta.Network, error) {
	switch {
	case len(req.Layers) > 0 && req.Network != "":
		return delta.Network{}, errors.New("specify either layers or network, not both")
	case len(req.Layers) > 0:
		return spec.ReadNetwork("request", bytes.NewReader(req.Layers))
	case req.Network != "":
		return delta.NetworkByName(req.Network, req.Batch)
	default:
		return delta.Network{}, errors.New("missing layers or network")
	}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	stats := s.p.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"cache_hits":   stats.Hits,
		"cache_misses": stats.Misses,
	})
}

func (s *server) handleDevices(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"devices": delta.DeviceNames()})
}

func (s *server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"networks": delta.NetworkNames()})
}

// handleEstimate answers POST /v1/estimate: an explicit spec layer list.
func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.estimate(w, r, false)
}

// handleNetwork answers POST /v1/network: a registered network by name.
func (s *server) handleNetwork(w http.ResponseWriter, r *http.Request) {
	s.estimate(w, r, true)
}

func (s *server) estimate(w http.ResponseWriter, r *http.Request, named bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req estimateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return
	}
	if named && req.Network == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing network name"))
		return
	}
	if !named && len(req.Layers) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing layers"))
		return
	}
	dev, err := resolveDevice(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	net, err := resolveNetwork(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	nr, err := s.p.Network(r.Context(), delta.NetworkEvalRequest{
		Net: net, Device: dev, Options: req.Options.toModel(),
		Model: delta.EvalModel(req.Model), Pass: delta.EvalPass(req.Pass),
		MissRate: req.MissRate,
	})
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}

	resp := estimateResponse{
		Network: net.Name, Device: dev.Name,
		Model: string(nr.Model), Pass: string(nr.Pass),
		TotalSeconds: nr.Seconds,
	}
	for i, res := range nr.Results {
		row := layerResponse{Name: res.Layer.Name, Count: net.Counts[i], Seconds: res.Seconds}
		switch {
		case res.Pass == delta.PassTraining:
			row.FpropSeconds = res.Training.Fprop.Seconds
			if !res.Training.SkipDgrad {
				row.DgradSeconds = res.Training.Dgrad.Seconds
			}
			row.WgradSeconds = res.Training.Wgrad.Seconds
			row.Bottleneck = res.Training.Fprop.Bottleneck.String()
		case res.Model == delta.ModelRoofline:
			row.Bound = res.Roofline.Bound.String()
			row.Intensity = res.Roofline.Intensity
		default:
			row.Cycles = res.Perf.Cycles
			row.Bottleneck = res.Perf.Bottleneck.String()
			row.Utilization = res.Perf.Utilization
			row.L1Bytes = res.Traffic.L1Bytes
			row.L2Bytes = res.Traffic.L2Bytes
			row.DRAMBytes = res.Traffic.DRAMBytes
		}
		resp.Layers = append(resp.Layers, row)
	}
	if nr.Bottlenecks != nil {
		resp.Bottlenecks = make(map[string]int, len(nr.Bottlenecks))
		for b, c := range nr.Bottlenecks {
			resp.Bottlenecks[b.String()] = c
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExplore answers POST /v1/explore: a priced design-space sweep.
func (s *server) handleExplore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req exploreRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return
	}
	// The sweep always runs the delta model's inference pass; reject the
	// estimateRequest fields it would otherwise silently ignore.
	if req.Model != "" || req.Pass != "" || req.MissRate != 0 {
		writeError(w, http.StatusBadRequest,
			errors.New("explore always runs delta-model inference; model, pass, and miss_rate are not supported"))
		return
	}
	dev, err := resolveDevice(req.estimateRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	net, err := resolveNetwork(req.estimateRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	axes := delta.DefaultExploreAxes()
	if req.Axes != nil {
		axes = delta.ExploreAxes{
			NumSM: req.Axes.NumSM, MACPerSM: req.Axes.MACPerSM,
			MemBW: req.Axes.MemBW, SMLocal: req.Axes.SMLocal,
		}
	}
	cands, err := s.p.Explore(r.Context(),
		delta.ExploreWorkload{Net: net, Opt: req.Options.toModel()},
		dev, axes.Enumerate(), delta.DefaultCostModel())
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}

	toResp := func(cs []delta.ExploreCandidate) []candidateResponse {
		out := make([]candidateResponse, len(cs))
		for i, c := range cs {
			out[i] = candidateResponse{
				NumSM: orOne(c.Scale.NumSM), MACPerSM: orOne(c.Scale.MACPerSM),
				MemBW: orOne(c.Scale.DRAMBW), SMLocal: orOne(c.Scale.RegPerSM),
				Cost: c.Cost, Speedup: c.Speedup, Efficiency: c.Efficiency(),
			}
		}
		return out
	}
	resp := exploreResponse{
		Network: net.Name, Device: dev.Name,
		Candidates: toResp(cands),
		Pareto:     toResp(delta.ParetoFront(cands)),
	}
	if req.Target > 0 {
		if best, ok := delta.CheapestAtLeast(cands, req.Target); ok {
			c := toResp([]delta.ExploreCandidate{best})[0]
			resp.Cheapest = &c
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusFor maps evaluation failures: client-side cancellations surface as
// request timeouts, everything else is a bad request (the model rejects
// inputs, it does not fail internally).
func statusFor(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusRequestTimeout
	}
	return http.StatusBadRequest
}

func orOne(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}
