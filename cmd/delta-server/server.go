// HTTP handlers: a thin JSON codec layer over the shared evaluation
// pipeline, reusing internal/spec for layer-list, device, and scenario
// payloads. The /v1 endpoints are synchronous adapters over the scenario
// path (one-point scenarios streamed to completion); /v2 exposes the full
// declarative sweep shape as asynchronous jobs (see jobs.go).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"time"

	"delta"
	"delta/internal/cluster"
	"delta/internal/ratelimit"
	"delta/internal/spec"
)

// maxBodyBytes bounds request bodies; layer lists and scenarios are small.
const maxBodyBytes = 1 << 20

// defaultSSEKeepAlive paces the comment frames idle SSE streams emit so
// proxies and load balancers do not reap them as dead connections.
const defaultSSEKeepAlive = 15 * time.Second

// serverConfig is the production-hardening knob set of newServerWith;
// the zero value serves unauthenticated with no load shedding (the
// pre-hardening behavior, which the unit tests rely on).
type serverConfig struct {
	// AuthToken guards every endpoint but /healthz and /metrics when set.
	AuthToken string

	// RateLimit is the sustained per-client allowance in requests/second
	// (0 disables rate limiting); RateBurst is the token-bucket capacity
	// (0 means 2×RateLimit, min 1).
	RateLimit float64
	RateBurst float64

	// MaxInFlight caps globally concurrent requests (0 = uncapped);
	// excess answers 503 + Retry-After instead of queueing.
	MaxInFlight int

	// SSEKeepAlive overrides the idle-stream keep-alive interval
	// (0 means defaultSSEKeepAlive).
	SSEKeepAlive time.Duration

	// AccessLog receives one line per request; nil disables logging.
	AccessLog *log.Logger

	// Peers enables coordinator mode: /v2 job sweeps are sharded across
	// these delta-server workers (their /v2/shards endpoints) and merged
	// back in expansion order instead of evaluated locally. The /v1
	// endpoints still answer from the local pipeline. Workers are assumed
	// to share AuthToken; empty Peers is single-node mode.
	Peers []string

	// ShardsPerPeer / ShardAttempts / ShardTimeout tune coordinator
	// sharding (0 takes the cluster defaults: 4, max(3, peers+1), 10m).
	ShardsPerPeer int
	ShardAttempts int
	ShardTimeout  time.Duration

	// ShardRetryBackoff overrides the reassignment and reconnect backoff
	// base (0 = cluster defaults); tests shrink it.
	ShardRetryBackoff time.Duration

	// Resilience tuning for the coordinator (0 = cluster defaults):
	// breakers open after BreakerThreshold consecutive peer failures and
	// half-open after BreakerCooldown; straggling shards re-dispatch when
	// HedgeMultiplier× behind the fleet's median pace (negative disables
	// hedging), polled every HedgeInterval once older than HedgeFloor; and
	// adaptive shard deadlines clamp no lower than DeadlineFloor.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	HedgeMultiplier  float64
	HedgeInterval    time.Duration
	HedgeFloor       time.Duration
	DeadlineFloor    time.Duration
}

// server routes requests into one shared pipeline, so concurrent clients
// share the worker pool and the memo cache.
type server struct {
	p         *delta.Pipeline
	jobs      *jobStore
	metrics   *serverMetrics
	limiter   *ratelimit.Limiter
	gate      *ratelimit.Gate
	keepAlive time.Duration

	// coord is non-nil in coordinator mode (serverConfig.Peers): /v2 job
	// sweeps fan out across the fleet instead of the local pipeline.
	coord *cluster.Coordinator
}

// newServer returns the delta-server HTTP handler with default hardening
// (no auth, no shedding).
func newServer(p *delta.Pipeline) http.Handler {
	return newServerWithJobs(p, newJobStore(jobStoreConfig{}))
}

func newServerWithJobs(p *delta.Pipeline, jobs *jobStore) http.Handler {
	return newServerWith(p, jobs, serverConfig{})
}

// newServerWith assembles the handler: the route mux behind the
// middleware chain (request ID → access log → metrics → recovery →
// shedding → auth), with /metrics scraping the per-server registry.
func newServerWith(p *delta.Pipeline, jobs *jobStore, cfg serverConfig) http.Handler {
	h, _, err := buildServer(p, jobs, cfg)
	if err != nil {
		// Only a malformed Peers list errors; callers without one (every
		// in-package test and the single-node path) cannot reach this.
		panic(err)
	}
	return h
}

// buildServer is newServerWith exposing the *server too, for callers that
// need the durable-restart hook (resumeJobs) after assembly. It errors
// only on a malformed coordinator config (bad Peers entry).
func buildServer(p *delta.Pipeline, jobs *jobStore, cfg serverConfig) (http.Handler, *server, error) {
	var lim *ratelimit.Limiter
	if cfg.RateLimit > 0 {
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = 2 * cfg.RateLimit
		}
		lim = ratelimit.New(ratelimit.Config{Rate: cfg.RateLimit, Burst: burst})
	}
	var gate *ratelimit.Gate
	if cfg.MaxInFlight > 0 {
		gate = ratelimit.NewGate(cfg.MaxInFlight)
	}
	s := &server{
		p: p, jobs: jobs,
		metrics:   newServerMetrics(p, jobs, lim, gate),
		limiter:   lim,
		gate:      gate,
		keepAlive: cfg.SSEKeepAlive,
	}
	if s.keepAlive <= 0 {
		s.keepAlive = defaultSSEKeepAlive
	}
	if len(cfg.Peers) > 0 {
		var rec cluster.Recorder
		if jobs.durable != nil {
			rec = jobs.durable
		}
		coord, err := cluster.New(cluster.Config{
			Peers:            cfg.Peers,
			ShardsPerPeer:    cfg.ShardsPerPeer,
			MaxAttempts:      cfg.ShardAttempts,
			ShardTimeout:     cfg.ShardTimeout,
			RetryBackoff:     cfg.ShardRetryBackoff,
			ClientBackoff:    cfg.ShardRetryBackoff,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
			HedgeMultiplier:  cfg.HedgeMultiplier,
			HedgeInterval:    cfg.HedgeInterval,
			HedgeFloor:       cfg.HedgeFloor,
			DeadlineFloor:    cfg.DeadlineFloor,
			Token:            cfg.AuthToken,
			Metrics:          cluster.NewMetrics(s.metrics.reg),
			Recorder:         rec,
			Log:              cfg.AccessLog,
		})
		if err != nil {
			return nil, nil, err
		}
		s.coord = coord
		s.metrics.reg.GaugeFunc(metricClusterPeers,
			"Workers in the coordinator's configured fleet.",
			func() float64 { return float64(len(coord.Peers())) })
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", methods{http.MethodGet: s.handleHealth}.dispatch)
	mux.HandleFunc("/metrics", methods{
		http.MethodGet: s.metrics.reg.Handler().ServeHTTP,
	}.dispatch)
	mux.HandleFunc("/v1/devices", methods{http.MethodGet: s.handleDevices}.dispatch)
	mux.HandleFunc("/v1/networks", methods{http.MethodGet: s.handleNetworks}.dispatch)
	mux.HandleFunc("/v1/estimate", methods{http.MethodPost: s.handleEstimate}.dispatch)
	mux.HandleFunc("/v1/network", methods{http.MethodPost: s.handleNetwork}.dispatch)
	mux.HandleFunc("/v1/explore", methods{http.MethodPost: s.handleExplore}.dispatch)
	mux.HandleFunc("/v2/jobs", methods{
		http.MethodPost: s.handleJobSubmit,
		http.MethodGet:  s.handleJobList,
	}.dispatch)
	mux.HandleFunc("/v2/jobs/", s.routeJob)
	// Every delta-server is a capable fleet worker: /v2/shards streams a
	// scenario window as SSE result frames (see internal/cluster). The
	// handler renders points exactly like the job store, so coordinated
	// sweeps merge to byte-identical results.
	mux.Handle("/v2/shards", &cluster.ShardHandler{
		Eval: p, Render: shardPayload, KeepAlive: s.keepAlive, MaxBody: maxBodyBytes,
	})
	return chain(mux,
		withRequestID(),
		withAccessLog(cfg.AccessLog),
		withMetrics(s.metrics),
		withRecover(s.metrics, cfg.AccessLog),
		withShedding(s.metrics, lim, gate),
		withAuth(s.metrics, cfg.AuthToken),
	), s, nil
}

// shardPayload renders one stream update for the /v2/shards protocol —
// the same renderPoint shape /v2 jobs store, which is what makes
// distributed job results byte-identical to single-node ones.
func shardPayload(upd delta.StreamUpdate) (json.RawMessage, error) {
	return json.Marshal(renderPoint(upd))
}

// methods dispatches one route by HTTP method, answering every unlisted
// method with a JSON 405 that names the allowed set in the Allow header
// (the consistent rejection shape every endpoint shares).
type methods map[string]http.HandlerFunc

func (m methods) dispatch(w http.ResponseWriter, r *http.Request) {
	if h, ok := m[r.Method]; ok {
		h(w, r)
		return
	}
	allowed := make([]string, 0, len(m))
	for meth := range m {
		allowed = append(allowed, meth)
	}
	sort.Strings(allowed)
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	writeError(w, http.StatusMethodNotAllowed,
		fmt.Errorf("method %s not allowed (allow: %s)", r.Method, strings.Join(allowed, ", ")))
}

// estimateRequest is the JSON shape of /v1/estimate and /v1/network.
// Layers reuses the internal/spec layer-list codec verbatim; DeviceSpec
// the spec device codec (inheriting unset fields from a base device).
type estimateRequest struct {
	// Network names a registered CNN (/v1/network); Layers carries an
	// explicit spec layer list (/v1/estimate).
	Network string          `json:"network,omitempty"`
	Batch   int             `json:"batch,omitempty"`
	Layers  json.RawMessage `json:"layers,omitempty"`

	Device     string          `json:"device,omitempty"`
	DeviceSpec json.RawMessage `json:"device_spec,omitempty"`

	Model    string         `json:"model,omitempty"`
	Pass     string         `json:"pass,omitempty"`
	MissRate float64        `json:"miss_rate,omitempty"`
	Options  trafficOptions `json:"options,omitempty"`
}

// trafficOptions mirrors delta.TrafficOptions for JSON.
type trafficOptions struct {
	PaperMLIFilter    bool `json:"paper_mli_filter,omitempty"`
	CapacityAwareDRAM bool `json:"capacity_aware_dram,omitempty"`
	TileOverride      int  `json:"tile_override,omitempty"`
}

func (o trafficOptions) toModel() delta.TrafficOptions {
	return delta.TrafficOptions{
		PaperMLIFilter:    o.PaperMLIFilter,
		CapacityAwareDRAM: o.CapacityAwareDRAM,
		TileOverride:      o.TileOverride,
	}
}

// layerResponse is one per-layer prediction row.
type layerResponse struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	Seconds float64 `json:"seconds"`

	// Inference (delta/prior) fields.
	Cycles      float64 `json:"cycles,omitempty"`
	Bottleneck  string  `json:"bottleneck,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`
	L1Bytes     float64 `json:"l1_bytes,omitempty"`
	L2Bytes     float64 `json:"l2_bytes,omitempty"`
	DRAMBytes   float64 `json:"dram_bytes,omitempty"`

	// Training-pass breakdown.
	FpropSeconds float64 `json:"fprop_seconds,omitempty"`
	DgradSeconds float64 `json:"dgrad_seconds,omitempty"`
	WgradSeconds float64 `json:"wgrad_seconds,omitempty"`

	// Roofline fields.
	Bound     string  `json:"bound,omitempty"`
	Intensity float64 `json:"intensity,omitempty"`
}

// estimateResponse is the JSON answer of /v1/estimate and /v1/network.
type estimateResponse struct {
	Network      string          `json:"network"`
	Device       string          `json:"device"`
	Model        string          `json:"model"`
	Pass         string          `json:"pass"`
	Layers       []layerResponse `json:"layers"`
	TotalSeconds float64         `json:"total_seconds"`
	Bottlenecks  map[string]int  `json:"bottlenecks,omitempty"`
}

// exploreRequest is the JSON shape of /v1/explore.
type exploreRequest struct {
	estimateRequest

	// Axes overrides the default exploration grid; empty axes mean "1x".
	Axes *exploreAxes `json:"axes,omitempty"`

	// Target asks for the cheapest candidate reaching this speedup.
	Target float64 `json:"target,omitempty"`
}

type exploreAxes struct {
	NumSM    []float64 `json:"num_sm,omitempty"`
	MACPerSM []float64 `json:"mac_per_sm,omitempty"`
	MemBW    []float64 `json:"mem_bw,omitempty"`
	SMLocal  []float64 `json:"sm_local,omitempty"`
}

// candidateResponse is one priced design point.
type candidateResponse struct {
	NumSM      float64 `json:"num_sm"`
	MACPerSM   float64 `json:"mac_per_sm"`
	MemBW      float64 `json:"mem_bw"`
	SMLocal    float64 `json:"sm_local"`
	Cost       float64 `json:"cost"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

type exploreResponse struct {
	Network    string              `json:"network"`
	Device     string              `json:"device"`
	Candidates []candidateResponse `json:"candidates"`
	Pareto     []candidateResponse `json:"pareto"`
	Cheapest   *candidateResponse  `json:"cheapest,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeBody strictly parses a bounded JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// bodyErrStatus maps a decodeBody failure to its status: a body past the
// request cap is 413 (the client sent too much, not something malformed),
// everything else is a plain 400.
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// resolveDevice picks the request's device: an inline spec wins over a
// registry name; the default is the TITAN Xp baseline.
func resolveDevice(req estimateRequest) (delta.GPU, error) {
	if len(req.DeviceSpec) > 0 {
		return spec.ReadDevice(bytes.NewReader(req.DeviceSpec))
	}
	if req.Device != "" {
		return delta.DeviceByName(req.Device)
	}
	return delta.TitanXp(), nil
}

// resolveNetwork picks the request's workload: an inline spec layer list or
// a registered network name.
func resolveNetwork(req estimateRequest) (delta.Network, error) {
	switch {
	case len(req.Layers) > 0 && req.Network != "":
		return delta.Network{}, errors.New("specify either layers or network, not both")
	case len(req.Layers) > 0:
		return spec.ReadNetwork("request", bytes.NewReader(req.Layers))
	case req.Network != "":
		return delta.NetworkByName(req.Network, req.Batch)
	default:
		return delta.Network{}, errors.New("missing layers or network")
	}
}

// handleHealth is the readiness view: pipeline cache counters, job-store
// occupancy, and shedding saturation. A server whose job store is full of
// running jobs or whose in-flight gate is saturated answers 503 so load
// balancers drain it; the body carries the same detail either way.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	stats := s.p.Stats()
	stored, running := s.jobs.occupancy()
	jobsFull := running >= s.jobs.cfg.MaxJobs
	gateFull := s.gate.Cap() > 0 && s.gate.InFlight() >= s.gate.Cap()

	body := map[string]any{
		"status":       "ok",
		"cache_hits":   stats.Hits,
		"cache_misses": stats.Misses,
		"jobs": map[string]any{
			"stored":   stored,
			"running":  running,
			"capacity": s.jobs.cfg.MaxJobs,
			"evicted":  s.jobs.evictions(),
		},
	}
	if s.limiter != nil {
		body["rate_limit_clients"] = s.limiter.Clients()
	}
	if s.gate != nil {
		body["in_flight"] = s.gate.InFlight()
		body["max_in_flight"] = s.gate.Cap()
	}
	// With -data-dir, surface WAL and outbox health. A saturated outbox
	// (sink down long enough that new results spill to the dead-letter
	// file) degrades readiness: the engine is fine, but results are being
	// shed and an operator should know before the sink data matters.
	outboxSaturated := false
	if d := s.jobs.durable; d != nil {
		ss := d.storeStats()
		durableBody := map[string]any{
			"wal_records":   ss.Records,
			"compactions":   ss.Compactions,
			"replayed_jobs": ss.ReplayedJobs,
			"torn_bytes":    ss.TornBytes,
		}
		if d.outbox != nil {
			ob := d.outboxStats()
			outboxSaturated = d.saturated()
			durableBody["outbox"] = map[string]any{
				"depth":        ob.Depth,
				"capacity":     ob.Capacity,
				"retries":      ob.Retries,
				"dead_letters": ob.DeadLetters,
				"overflow":     ob.Overflow,
				"saturated":    outboxSaturated,
			}
		}
		body["durable"] = durableBody
	}
	// In coordinator mode, probe the fleet: losing quorum (a majority of
	// workers unreachable or degraded) flips readiness so load balancers
	// stop routing sweeps to a coordinator that cannot spread them.
	quorumLost := false
	if s.coord != nil {
		sts := s.coord.PeerHealth(r.Context())
		quorumLost = !cluster.Quorum(sts)
		body["fleet"] = map[string]any{
			"peers":  sts,
			"quorum": !quorumLost,
		}
	}
	status := http.StatusOK
	if jobsFull || gateFull || outboxSaturated || quorumLost {
		body["status"] = "degraded"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (s *server) handleDevices(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"devices": delta.DeviceNames()})
}

func (s *server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"networks": delta.NetworkNames()})
}

// handleEstimate answers POST /v1/estimate: an explicit spec layer list.
func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.estimate(w, r, false)
}

// handleNetwork answers POST /v1/network: a registered network by name.
func (s *server) handleNetwork(w http.ResponseWriter, r *http.Request) {
	s.estimate(w, r, true)
}

// estimate answers the synchronous /v1 shapes by wrapping the request as a
// one-point scenario and streaming it to completion — the same path /v2
// jobs take, so the two APIs cannot drift. Responses are byte-identical to
// the pre-scenario implementation (asserted by the golden-parity tests).
func (s *server) estimate(w http.ResponseWriter, r *http.Request, named bool) {
	var req estimateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, bodyErrStatus(err), fmt.Errorf("parsing request: %w", err))
		return
	}
	if named && req.Network == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing network name"))
		return
	}
	if !named && len(req.Layers) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing layers"))
		return
	}
	dev, err := resolveDevice(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	net, err := resolveNetwork(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	model := orDefault(req.Model, delta.ScenarioModelDelta)
	// Mirror the pre-scenario pipeline semantics: miss_rate only
	// parameterizes the prior model and is ignored (not validated)
	// otherwise.
	missRate := 0.0
	if model == delta.ScenarioModelPrior {
		missRate = req.MissRate
	}
	sc := delta.Scenario{
		Name:      net.Name,
		Workloads: []delta.ScenarioWorkload{{Net: net}},
		Devices:   []delta.GPU{dev},
		Models:    []string{model},
		Passes:    []string{orDefault(req.Pass, delta.ScenarioPassInference)},
		MissRate:  missRate,
		Options:   []delta.TrafficOptions{req.Options.toModel()},
	}
	upds, err := s.p.RunScenario(r.Context(), sc)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, renderNetwork(upds[0].Network, net.Counts))
}

// renderNetwork converts a whole-network result into the /v1 (and /v2
// per-point) response shape. A nil counts vector means all ones.
func renderNetwork(nr delta.NetworkEvalResult, counts []int) estimateResponse {
	resp := estimateResponse{
		Network: nr.Net, Device: nr.Device,
		Model: string(nr.Model), Pass: string(nr.Pass),
		TotalSeconds: nr.Seconds,
	}
	for i, res := range nr.Results {
		count := 1
		if counts != nil {
			count = counts[i]
		}
		row := layerResponse{Name: res.Layer.Name, Count: count, Seconds: res.Seconds}
		switch {
		case res.Pass == delta.PassTraining:
			row.FpropSeconds = res.Training.Fprop.Seconds
			if !res.Training.SkipDgrad {
				row.DgradSeconds = res.Training.Dgrad.Seconds
			}
			row.WgradSeconds = res.Training.Wgrad.Seconds
			row.Bottleneck = res.Training.Fprop.Bottleneck.String()
		case res.Model == delta.ModelRoofline:
			row.Bound = res.Roofline.Bound.String()
			row.Intensity = res.Roofline.Intensity
		default:
			row.Cycles = res.Perf.Cycles
			row.Bottleneck = res.Perf.Bottleneck.String()
			row.Utilization = res.Perf.Utilization
			row.L1Bytes = res.Traffic.L1Bytes
			row.L2Bytes = res.Traffic.L2Bytes
			row.DRAMBytes = res.Traffic.DRAMBytes
		}
		resp.Layers = append(resp.Layers, row)
	}
	if nr.Bottlenecks != nil {
		resp.Bottlenecks = make(map[string]int, len(nr.Bottlenecks))
		for b, c := range nr.Bottlenecks {
			resp.Bottlenecks[b.String()] = c
		}
	}
	return resp
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// handleExplore answers POST /v1/explore: a priced design-space sweep.
// The pipeline's Explore is itself a scenario adapter (one workload across
// the base + scaled device axis), so this endpoint rides the same path.
func (s *server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req exploreRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, bodyErrStatus(err), fmt.Errorf("parsing request: %w", err))
		return
	}
	// The sweep always runs the delta model's inference pass; reject the
	// estimateRequest fields it would otherwise silently ignore.
	if req.Model != "" || req.Pass != "" || req.MissRate != 0 {
		writeError(w, http.StatusBadRequest,
			errors.New("explore always runs delta-model inference; model, pass, and miss_rate are not supported"))
		return
	}
	dev, err := resolveDevice(req.estimateRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	net, err := resolveNetwork(req.estimateRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	axes := delta.DefaultExploreAxes()
	if req.Axes != nil {
		axes = delta.ExploreAxes{
			NumSM: req.Axes.NumSM, MACPerSM: req.Axes.MACPerSM,
			MemBW: req.Axes.MemBW, SMLocal: req.Axes.SMLocal,
		}
	}
	cands, err := s.p.Explore(r.Context(),
		delta.ExploreWorkload{Net: net, Opt: req.Options.toModel()},
		dev, axes.Enumerate(), delta.DefaultCostModel())
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}

	toResp := func(cs []delta.ExploreCandidate) []candidateResponse {
		out := make([]candidateResponse, len(cs))
		for i, c := range cs {
			out[i] = candidateResponse{
				NumSM: orOne(c.Scale.NumSM), MACPerSM: orOne(c.Scale.MACPerSM),
				MemBW: orOne(c.Scale.DRAMBW), SMLocal: orOne(c.Scale.RegPerSM),
				Cost: c.Cost, Speedup: c.Speedup, Efficiency: c.Efficiency(),
			}
		}
		return out
	}
	resp := exploreResponse{
		Network: net.Name, Device: dev.Name,
		Candidates: toResp(cands),
		Pareto:     toResp(delta.ParetoFront(cands)),
	}
	if req.Target > 0 {
		if best, ok := delta.CheapestAtLeast(cands, req.Target); ok {
			c := toResp([]delta.ExploreCandidate{best})[0]
			resp.Cheapest = &c
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusFor maps evaluation failures: client-side cancellations surface as
// request timeouts, everything else is a bad request (the model rejects
// inputs, it does not fail internally).
func statusFor(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusRequestTimeout
	}
	return http.StatusBadRequest
}

func orOne(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}
