package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"delta"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(delta.NewPipeline()))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

// TestEstimateRoundTrip posts a spec JSON layer list and checks the
// response against the facade evaluated directly: same layer, same device,
// bit-identical seconds.
func TestEstimateRoundTrip(t *testing.T) {
	ts := testServer(t)
	body := `{
	  "device": "TITAN Xp",
	  "layers": [
	    {"name": "conv2", "b": 32, "ci": 96, "hi": 27, "co": 256, "hf": 5, "stride": 1, "pad": 2},
	    {"name": "conv3", "b": 32, "ci": 256, "hi": 13, "co": 384, "hf": 3, "stride": 1, "pad": 1, "count": 2}
	  ]
	}`
	var got estimateResponse
	resp := postJSON(t, ts.URL+"/v1/estimate", body, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got.Model != "delta" || got.Pass != "inference" || got.Device != "TITAN Xp" {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Layers) != 2 {
		t.Fatalf("layers = %d", len(got.Layers))
	}

	l2 := delta.Conv{Name: "conv2", B: 32, Ci: 96, Hi: 27, Wi: 27, Co: 256, Hf: 5, Wf: 5, Stride: 1, Pad: 2}
	l3 := delta.Conv{Name: "conv3", B: 32, Ci: 256, Hi: 13, Wi: 13, Co: 384, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	want2, err := delta.Estimate(l2, delta.TitanXp(), delta.TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want3, err := delta.Estimate(l3, delta.TitanXp(), delta.TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Layers[0].Seconds != want2.Seconds || got.Layers[0].Bottleneck != want2.Bottleneck.String() {
		t.Errorf("conv2: got %v/%s, want %v/%v",
			got.Layers[0].Seconds, got.Layers[0].Bottleneck, want2.Seconds, want2.Bottleneck)
	}
	if got.Layers[1].Seconds != want3.Seconds {
		t.Errorf("conv3 seconds mismatch")
	}
	if got.Layers[1].Count != 2 {
		t.Errorf("conv3 count = %d, want 2", got.Layers[1].Count)
	}
	if want := want2.Seconds + 2*want3.Seconds; got.TotalSeconds != want {
		t.Errorf("total = %v, want %v", got.TotalSeconds, want)
	}
	if got.Layers[0].L1Bytes <= 0 || got.Layers[0].DRAMBytes <= 0 {
		t.Error("traffic fields missing")
	}
}

// TestNetworkEndpoint resolves a registered network by name on a named
// device and cross-checks the weighted total.
func TestNetworkEndpoint(t *testing.T) {
	ts := testServer(t)
	var got estimateResponse
	resp := postJSON(t, ts.URL+"/v1/network", `{"network": "alexnet", "batch": 32, "device": "v100"}`, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	net, err := delta.NetworkByName("alexnet", 32)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := delta.EstimateAll(net.Layers, delta.V100(), delta.TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := delta.NetworkTime(rs, net.Counts); got.TotalSeconds != want {
		t.Errorf("total = %v, want %v", got.TotalSeconds, want)
	}
	if got.Device != "V100" {
		t.Errorf("device = %q (forgiving name lookup failed)", got.Device)
	}
	total := 0
	for _, c := range got.Bottlenecks {
		total += c
	}
	if total != len(net.Layers) {
		t.Errorf("bottleneck histogram covers %d layers, want %d", total, len(net.Layers))
	}
}

// TestNetworkTrainingPass exercises pass=training end to end.
func TestNetworkTrainingPass(t *testing.T) {
	ts := testServer(t)
	var got estimateResponse
	resp := postJSON(t, ts.URL+"/v1/network", `{"network": "alexnet", "batch": 16, "pass": "training"}`, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got.Pass != "training" {
		t.Fatalf("pass = %q", got.Pass)
	}
	if got.Layers[0].DgradSeconds != 0 {
		t.Error("first layer should skip dgrad")
	}
	if got.Layers[1].DgradSeconds <= 0 || got.Layers[1].WgradSeconds <= 0 {
		t.Error("training breakdown missing")
	}
	net, _ := delta.NetworkByName("alexnet", 16)
	_, want, err := delta.EstimateNetworkTraining(net, delta.TitanXp(), delta.TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalSeconds != want {
		t.Errorf("training total = %v, want %v", got.TotalSeconds, want)
	}
}

// TestDeviceSpecOverride inherits a custom device from a base via the spec
// codec.
func TestDeviceSpecOverride(t *testing.T) {
	ts := testServer(t)
	var got estimateResponse
	body := `{
	  "network": "alexnet", "batch": 16,
	  "device_spec": {"base": "TITAN Xp", "name": "hypothetical", "dram_bw_gbs": 900}
	}`
	resp := postJSON(t, ts.URL+"/v1/network", body, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got.Device != "hypothetical" {
		t.Errorf("device = %q", got.Device)
	}
}

// TestExploreEndpoint sweeps a small grid and cross-checks against the
// serial facade exploration.
func TestExploreEndpoint(t *testing.T) {
	ts := testServer(t)
	body := `{
	  "network": "alexnet", "batch": 16,
	  "axes": {"mac_per_sm": [1, 2], "mem_bw": [1, 2]},
	  "target": 1.5
	}`
	var got exploreResponse
	resp := postJSON(t, ts.URL+"/v1/explore", body, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(got.Candidates) != 4 {
		t.Fatalf("candidates = %d, want 4", len(got.Candidates))
	}
	net, _ := delta.NetworkByName("alexnet", 16)
	want, err := delta.Explore(net, delta.TitanXp(),
		delta.ExploreAxes{MACPerSM: []float64{1, 2}, MemBW: []float64{1, 2}},
		delta.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got.Candidates[i].Speedup != want[i].Speedup || got.Candidates[i].Cost != want[i].Cost {
			t.Errorf("candidate %d: got (%v, %v), want (%v, %v)", i,
				got.Candidates[i].Cost, got.Candidates[i].Speedup, want[i].Cost, want[i].Speedup)
		}
	}
	if len(got.Pareto) == 0 {
		t.Error("empty pareto front")
	}
	if got.Cheapest == nil || got.Cheapest.Speedup < 1.5 {
		t.Errorf("cheapest-at-1.5x missing or wrong: %+v", got.Cheapest)
	}
}

// TestListingAndHealth covers the GET endpoints.
func TestListingAndHealth(t *testing.T) {
	ts := testServer(t)
	for _, tc := range []struct {
		path string
		want string
	}{
		{"/healthz", `"status": "ok"`},
		{"/v1/devices", "TITAN Xp"},
		{"/v1/networks", "resnet152"},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: status %d, body %q", tc.path, resp.StatusCode, body)
		}
	}
}

// TestBadRequests: malformed inputs come back as 400s with JSON errors,
// wrong methods as 405s.
func TestBadRequests(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		path, body string
		status     int
	}{
		{"/v1/estimate", `{`, http.StatusBadRequest},
		{"/v1/estimate", `{"layers": []}`, http.StatusBadRequest},
		{"/v1/estimate", `{"bogus_field": 1}`, http.StatusBadRequest},
		{"/v1/network", `{"network": "skynet"}`, http.StatusBadRequest},
		{"/v1/network", `{}`, http.StatusBadRequest},
		{"/v1/network", `{"network": "alexnet", "device": "TPU"}`, http.StatusBadRequest},
		{"/v1/network", `{"network": "alexnet", "model": "magic"}`, http.StatusBadRequest},
		{"/v1/network", `{"network": "alexnet", "layers": [{"ci": 3}]}`, http.StatusBadRequest},
		{"/v1/explore", `{"network": "alexnet", "batch": -1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+tc.path, tc.body, nil)
		if resp.StatusCode != tc.status {
			t.Errorf("POST %s %q: status %d, want %d", tc.path, tc.body, resp.StatusCode, tc.status)
		}
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Errorf("POST %s: error body malformed (%v)", tc.path, err)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/estimate: status %d, want 405", resp.StatusCode)
	}
}

// TestMissRateIgnoredForNonPrior pins the pre-scenario /v1 semantics: the
// miss_rate field only parameterizes the prior model and is ignored (not
// validated) for every other model.
func TestMissRateIgnoredForNonPrior(t *testing.T) {
	ts := testServer(t)
	var got estimateResponse
	resp := postJSON(t, ts.URL+"/v1/network", `{"network": "alexnet", "batch": 16, "miss_rate": 2.0}`, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta-model request with out-of-range miss_rate: status %d, want 200", resp.StatusCode)
	}
	var want estimateResponse
	postJSON(t, ts.URL+"/v1/network", `{"network": "alexnet", "batch": 16}`, &want)
	if got.TotalSeconds != want.TotalSeconds {
		t.Errorf("miss_rate changed a delta-model answer: %v vs %v", got.TotalSeconds, want.TotalSeconds)
	}
	resp = postJSON(t, ts.URL+"/v1/network", `{"network": "alexnet", "batch": 16, "model": "prior", "miss_rate": 2.0}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("prior-model request with out-of-range miss_rate: status %d, want 400", resp.StatusCode)
	}
}

// TestExploreRejectsModelFields: /v1/explore cannot honor model/pass/
// miss_rate, so it must refuse them instead of silently running delta.
func TestExploreRejectsModelFields(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{"network": "alexnet", "model": "prior"}`,
		`{"network": "alexnet", "pass": "training"}`,
		`{"network": "alexnet", "miss_rate": 0.5}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/explore", body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST /v1/explore %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}
