// delta-vet runs the repo-specific static-analysis suite (internal/lint)
// over the module: analyzers that machine-check the determinism, context,
// concurrency, metrics, and SSE contracts the test suite can only
// spot-check. CI runs it as a blocking job next to go vet.
//
// Usage:
//
//	delta-vet [-rules determinism,ctxflow,...] [-json] [-list] [./...|dir ...]
//
// With no arguments (or "./...") the whole module is checked. Findings
// print as `file:line: [rule] message` (or one JSON object per line with
// -json, for machine consumers like the CI annotation formatter). Exit
// status: 0 clean, 1 findings, 2 usage or load failure.
//
// Suppress a single finding with a same- or previous-line comment:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; reasonless ignores are themselves reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"delta/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	rules := flag.String("rules", "", "comma-separated rule subset (default: all)")
	asJSON := flag.Bool("json", false, "emit one JSON object per finding")
	list := flag.Bool("list", false, "list rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: delta-vet [-rules r1,r2] [-json] [-list] [./...|dir ...]\nrules: %s\n", lint.RuleNames())
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "delta-vet:", err)
		return 2
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "delta-vet:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "delta-vet:", err)
		return 2
	}
	if dirs := explicitDirs(flag.Args()); dirs != nil {
		pkgs = filterByDir(pkgs, dirs)
		if len(pkgs) == 0 {
			fmt.Fprintln(os.Stderr, "delta-vet: no packages match", strings.Join(flag.Args(), " "))
			return 2
		}
	}

	enc := json.NewEncoder(os.Stdout)
	findings := 0
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			// Type errors degrade analysis to best-effort; `go build`
			// owns compilation failures, so they warn rather than fail.
			fmt.Fprintf(os.Stderr, "delta-vet: type error (analysis may be partial): %v\n", e)
		}
		for _, d := range lint.Run(p, analyzers) {
			findings++
			if *asJSON {
				_ = enc.Encode(finding{
					File: relPath(loader.Root, d.Pos.Filename), Line: d.Pos.Line,
					Col: d.Pos.Column, Rule: d.Rule, Message: d.Message,
				})
				continue
			}
			fmt.Printf("%s:%d: [%s] %s\n",
				relPath(loader.Root, d.Pos.Filename), d.Pos.Line, d.Rule, d.Message)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "delta-vet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// finding is the -json wire shape; the CI formatter depends on this exact
// field order, so keep it stable.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// explicitDirs maps CLI package args to directory filters; nil means the
// whole module ("./...", ".", or no args).
func explicitDirs(args []string) []string {
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "." || a == "all" {
			return nil
		}
		dirs = append(dirs, strings.TrimSuffix(strings.TrimSuffix(a, "/..."), "/"))
	}
	return dirs
}

func filterByDir(pkgs []*lint.Package, dirs []string) []*lint.Package {
	var out []*lint.Package
	for _, p := range pkgs {
		for _, d := range dirs {
			abs, err := filepath.Abs(d)
			if err != nil {
				continue
			}
			if p.Dir == abs || strings.HasPrefix(p.Dir, abs+string(filepath.Separator)) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
