// Command delta predicts the memory traffic, execution time, and bottleneck
// of a convolution layer (or a whole CNN) on a modeled GPU using the DeLTA
// analytical model. Evaluation goes through the shared concurrent pipeline,
// so whole networks fan out across every core.
//
// Examples:
//
//	delta -gpu "TITAN Xp" -b 256 -ci 256 -hw 13 -co 384 -f 3 -s 1 -p 1
//	delta -gpu V100 -net resnet152
//	delta -net vgg16 -model prior -missrate 1.0
//	delta -scenario sweep.json
//
// A -scenario file is a declarative multi-axis sweep (see internal/spec):
// workloads × devices × batches × models × passes stream through the
// pipeline, one result row per point as each completes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"delta"
	"delta/internal/report"
	"delta/internal/spec"
)

func main() {
	var (
		gpuName  = flag.String("gpu", "TITAN Xp", "device: 'TITAN Xp', 'P100', or 'V100'")
		netName  = flag.String("net", "", "predict a whole network: alexnet, vgg16, googlenet, resnet50, resnet152, resnet152full")
		layersIn = flag.String("layers", "", "JSON layer-list file to model instead of -net (see internal/spec)")
		devIn    = flag.String("device", "", "JSON device file overriding -gpu (see internal/spec)")
		scenIn   = flag.String("scenario", "", "JSON scenario file: stream a declarative multi-axis sweep (see internal/spec)")
		batch    = flag.Int("b", 256, "mini-batch size")
		ci       = flag.Int("ci", 256, "input channels")
		hw       = flag.Int("hw", 13, "input feature height/width")
		co       = flag.Int("co", 384, "output channels")
		f        = flag.Int("f", 3, "filter height/width")
		stride   = flag.Int("s", 1, "stride")
		pad      = flag.Int("p", 1, "zero padding")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		train    = flag.Bool("train", false, "model the full training step (fprop + dgrad + wgrad)")
		model    = flag.String("model", "delta", "model variant: delta, prior, roofline")
		missRate = flag.Float64("missrate", 1.0, "fixed miss rate for -model prior")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *scenIn != "" {
		runScenario(ctx, *scenIn, *csv)
		return
	}

	dev, err := delta.DeviceByName(*gpuName)
	if err != nil {
		fatal(err)
	}
	if *devIn != "" {
		f, err := os.Open(*devIn)
		if err != nil {
			fatal(err)
		}
		dev, err = spec.ReadDevice(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	var net delta.Network
	if *layersIn != "" {
		f, err := os.Open(*layersIn)
		if err != nil {
			fatal(err)
		}
		net, err = spec.ReadNetwork(*layersIn, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else if *netName != "" {
		net, err = delta.NetworkByName(*netName, *batch)
		if err != nil {
			fatal(err)
		}
	} else {
		l := delta.Conv{Name: "layer", B: *batch, Ci: *ci, Hi: *hw, Wi: *hw,
			Co: *co, Hf: *f, Wf: *f, Stride: *stride, Pad: *pad}
		net = delta.Network{Name: "custom", Layers: []delta.Conv{l}, Counts: []int{1}}
	}

	if *train {
		if *model != "delta" {
			fatal(fmt.Errorf("-train models the delta training step; it cannot combine with -model %s", *model))
		}
		renderTraining(ctx, net, dev, *batch, *csv)
		return
	}

	nr, err := delta.DefaultPipeline().Network(ctx, delta.NetworkEvalRequest{
		Net: net, Device: dev,
		Model: delta.EvalModel(*model), MissRate: *missRate,
	})
	if err != nil {
		fatal(err)
	}

	t := report.NewTable(
		fmt.Sprintf("%s predictions, %s on %s (B=%d)", nr.Model, net.Name, dev.Name, *batch),
		"layer", "L1", "L2", "DRAM", "ms", "bottleneck", "MAC util")
	var totalMs float64
	for _, r := range nr.Results {
		totalMs += r.Seconds * 1e3
		if r.Model == delta.ModelRoofline {
			t.AddRow(r.Layer.Name, "-", "-", "-", r.Seconds*1e3, r.Roofline.Bound.String(), "-")
			continue
		}
		t.AddRow(r.Layer.Name,
			report.Bytes(r.Traffic.L1Bytes), report.Bytes(r.Traffic.L2Bytes), report.Bytes(r.Traffic.DRAMBytes),
			r.Seconds*1e3, r.Perf.Bottleneck.String(), report.Pct(r.Perf.Utilization))
	}
	t.AddRow("== total", "", "", "", totalMs, "", "")

	if *csv {
		err = t.RenderCSV(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

// runScenario streams a declarative sweep file, printing one row per
// point as results arrive (progress on stderr, the table on stdout).
func runScenario(ctx context.Context, path string, csv bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	sc, err := spec.ReadScenario(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	ch, err := delta.Stream(ctx, sc, delta.WithStreamErrorPolicy(delta.StreamCollectPartial))
	if err != nil {
		fatal(err)
	}
	name := sc.Name
	if name == "" {
		name = path
	}
	t := report.NewTable(
		fmt.Sprintf("scenario %s (%d points)", name, sc.Size()),
		"workload", "device", "batch", "model", "pass", "ms", "status")
	failed := 0
	for upd := range ch {
		p := upd.Point
		fmt.Fprintf(os.Stderr, "delta: [%d/%d] %s\n", upd.Done, upd.Total, p)
		model, pass := p.Model, p.Pass
		if p.Sim != nil {
			model, pass = "sim", "-"
		}
		batch := fmt.Sprintf("%d", p.Batch)
		if p.Batch == 0 {
			batch = "-" // explicit layer lists carry their own mini-batch
		}
		switch {
		case upd.Err != nil:
			failed++
			t.AddRow(p.Workload, p.Device.Name, batch, model, pass, "-", upd.Err.Error())
		case p.Sim != nil:
			var dram float64
			for _, r := range upd.Sim {
				dram += r.DRAMBytes
			}
			t.AddRow(p.Workload, p.Device.Name, batch, model, pass,
				report.Bytes(dram)+" DRAM", "ok")
		default:
			t.AddRow(p.Workload, p.Device.Name, batch, model, pass,
				upd.Network.Seconds*1e3, "ok")
		}
	}
	if err := ctx.Err(); err != nil {
		fatal(err)
	}
	if csv {
		err = t.RenderCSV(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d scenario points failed", failed, sc.Size()))
	}
}

// renderTraining prints the training-step breakdown: forward, data-gradient
// and weight-gradient times per layer with their bottlenecks.
func renderTraining(ctx context.Context, net delta.Network, dev delta.GPU, batch int, csv bool) {
	steps, total, err := delta.DefaultPipeline().Training(ctx, net, dev, delta.TrafficOptions{})
	if err != nil {
		fatal(err)
	}
	t := report.NewTable(
		fmt.Sprintf("DeLTA training-step predictions, %s on %s (B=%d)", net.Name, dev.Name, batch),
		"layer", "fprop ms", "dgrad ms", "wgrad ms", "step ms", "bwd/fwd", "fprop bottleneck")
	for _, s := range steps {
		dg := "-"
		if !s.SkipDgrad {
			dg = fmt.Sprintf("%.4g", s.Dgrad.Seconds*1e3)
		}
		t.AddRow(s.Layer.Name,
			s.Fprop.Seconds*1e3, dg, s.Wgrad.Seconds*1e3,
			s.Seconds()*1e3, s.BackwardOverForward(), s.Fprop.Bottleneck.String())
	}
	t.AddRow("== total (weighted)", "", "", "", total*1e3, "", "")
	if csv {
		err = t.RenderCSV(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "delta:", err)
	os.Exit(1)
}
