// Command delta predicts the memory traffic, execution time, and bottleneck
// of a convolution layer (or a whole CNN) on a modeled GPU using the DeLTA
// analytical model.
//
// Examples:
//
//	delta -gpu "TITAN Xp" -b 256 -ci 256 -hw 13 -co 384 -f 3 -s 1 -p 1
//	delta -gpu V100 -net resnet152
package main

import (
	"flag"
	"fmt"
	"os"

	"delta"
	"delta/internal/report"
	"delta/internal/spec"
)

func main() {
	var (
		gpuName  = flag.String("gpu", "TITAN Xp", "device: 'TITAN Xp', 'P100', or 'V100'")
		netName  = flag.String("net", "", "predict a whole network: alexnet, vgg16, googlenet, resnet50, resnet152")
		layersIn = flag.String("layers", "", "JSON layer-list file to model instead of -net (see internal/spec)")
		devIn    = flag.String("device", "", "JSON device file overriding -gpu (see internal/spec)")
		batch    = flag.Int("b", 256, "mini-batch size")
		ci       = flag.Int("ci", 256, "input channels")
		hw       = flag.Int("hw", 13, "input feature height/width")
		co       = flag.Int("co", 384, "output channels")
		f        = flag.Int("f", 3, "filter height/width")
		stride   = flag.Int("s", 1, "stride")
		pad      = flag.Int("p", 1, "zero padding")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		train    = flag.Bool("train", false, "model the full training step (fprop + dgrad + wgrad)")
	)
	flag.Parse()

	dev, err := delta.DeviceByName(*gpuName)
	if err != nil {
		fatal(err)
	}
	if *devIn != "" {
		f, err := os.Open(*devIn)
		if err != nil {
			fatal(err)
		}
		dev, err = spec.ReadDevice(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	var net delta.Network
	if *layersIn != "" {
		f, err := os.Open(*layersIn)
		if err != nil {
			fatal(err)
		}
		net, err = spec.ReadNetwork(*layersIn, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else if *netName != "" {
		switch *netName {
		case "alexnet":
			net = delta.AlexNet(*batch)
		case "vgg16":
			net = delta.VGG16(*batch)
		case "googlenet":
			net = delta.GoogLeNet(*batch)
		case "resnet50":
			net = delta.ResNet50(*batch)
		case "resnet152":
			net = delta.ResNet152(*batch)
		default:
			fatal(fmt.Errorf("unknown network %q", *netName))
		}
	} else {
		l := delta.Conv{Name: "layer", B: *batch, Ci: *ci, Hi: *hw, Wi: *hw,
			Co: *co, Hf: *f, Wf: *f, Stride: *stride, Pad: *pad}
		net = delta.Network{Name: "custom", Layers: []delta.Conv{l}, Counts: []int{1}}
	}

	if *train {
		renderTraining(net, dev, *batch, *csv)
		return
	}

	t := report.NewTable(
		fmt.Sprintf("DeLTA predictions, %s on %s (B=%d)", net.Name, dev.Name, *batch),
		"layer", "L1", "L2", "DRAM", "ms", "bottleneck", "MAC util")
	var totalMs float64
	for _, l := range net.Layers {
		est, err := delta.EstimateTraffic(l, dev, delta.TrafficOptions{})
		if err != nil {
			fatal(err)
		}
		res, err := delta.EstimatePerformance(est, dev)
		if err != nil {
			fatal(err)
		}
		totalMs += res.Seconds * 1e3
		t.AddRow(l.Name,
			report.Bytes(est.L1Bytes), report.Bytes(est.L2Bytes), report.Bytes(est.DRAMBytes),
			res.Seconds*1e3, res.Bottleneck.String(), report.Pct(res.Utilization))
	}
	t.AddRow("== total", "", "", "", totalMs, "", "")

	if *csv {
		err = t.RenderCSV(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

// renderTraining prints the training-step breakdown: forward, data-gradient
// and weight-gradient times per layer with their bottlenecks.
func renderTraining(net delta.Network, dev delta.GPU, batch int, csv bool) {
	steps, total, err := delta.EstimateNetworkTraining(net, dev, delta.TrafficOptions{})
	if err != nil {
		fatal(err)
	}
	t := report.NewTable(
		fmt.Sprintf("DeLTA training-step predictions, %s on %s (B=%d)", net.Name, dev.Name, batch),
		"layer", "fprop ms", "dgrad ms", "wgrad ms", "step ms", "bwd/fwd", "fprop bottleneck")
	for _, s := range steps {
		dg := "-"
		if !s.SkipDgrad {
			dg = fmt.Sprintf("%.4g", s.Dgrad.Seconds*1e3)
		}
		t.AddRow(s.Layer.Name,
			s.Fprop.Seconds*1e3, dg, s.Wgrad.Seconds*1e3,
			s.Seconds()*1e3, s.BackwardOverForward(), s.Fprop.Bottleneck.String())
	}
	t.AddRow("== total (weighted)", "", "", "", total*1e3, "", "")
	if csv {
		err = t.RenderCSV(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "delta:", err)
	os.Exit(1)
}
