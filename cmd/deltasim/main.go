// Command deltasim runs the trace-driven memory-hierarchy simulator on a
// convolution layer and compares its "measured" traffic against the DeLTA
// analytical model — a single-layer slice of the Fig. 11 validation.
//
// Example:
//
//	deltasim -gpu "TITAN Xp" -b 4 -ci 192 -hw 28 -co 96 -f 3 -s 1 -p 1
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"delta"
	"delta/internal/report"
)

func main() {
	var (
		gpuName = flag.String("gpu", "TITAN Xp", "device: 'TITAN Xp', 'P100', or 'V100'")
		batch   = flag.Int("b", 4, "mini-batch size (simulation cost is linear in B)")
		ci      = flag.Int("ci", 192, "input channels")
		hw      = flag.Int("hw", 28, "input feature height/width")
		co      = flag.Int("co", 96, "output channels")
		f       = flag.Int("f", 3, "filter height/width")
		stride  = flag.Int("s", 1, "stride")
		pad     = flag.Int("p", 1, "zero padding")
		skipPad = flag.Bool("skippad", false, "predicate off zero-padding loads")
		timing  = flag.Bool("timing", false, "also run the event-driven timing simulator")
		workers = flag.Int("workers", 0, "engine worker goroutines (0 = GOMAXPROCS, 1 = serial reference engine)")
		parts   = flag.Int("partitions", 0, "L2 replay partitions (0/1 = serial replay; results are bit-identical at any count)")
		rowMaj  = flag.Bool("rowmajor", false, "row-major CTA scheduling ablation (paper assumes column-wise)")
		maxWav  = flag.Int("maxwaves", 0, "truncate after N CTA waves (0 = simulate everything; counters are not scaled)")
		verify  = flag.Bool("verify", false, "also run the serial reference engine and check the parallel result is bit-identical")
	)
	flag.Parse()

	dev, err := delta.DeviceByName(*gpuName)
	if err != nil {
		fatal(err)
	}
	l := delta.Conv{Name: "layer", B: *batch, Ci: *ci, Hi: *hw, Wi: *hw,
		Co: *co, Hf: *f, Wf: *f, Stride: *stride, Pad: *pad}
	cfg := delta.SimConfig{Device: dev, SkipPadding: *skipPad,
		RowMajorScheduling: *rowMaj, MaxWaves: *maxWav, Workers: *workers,
		ReplayPartitions: *parts}

	est, err := delta.EstimateTraffic(l, dev, delta.TrafficOptions{})
	if err != nil {
		fatal(err)
	}
	sim, err := delta.Simulate(l, cfg)
	if err != nil {
		fatal(err)
	}
	if *verify {
		eff := *workers
		if eff < 1 {
			eff = runtime.GOMAXPROCS(0)
		}
		if eff <= 1 && *parts <= 1 {
			fmt.Println("verify: skipped — the engine resolved to the serial reference path" +
				" (use -workers >= 2 or -partitions >= 2 to exercise the parallel engine)")
		} else {
			ref := cfg
			ref.Workers = 1
			ref.ReplayPartitions = 1
			serial, err := delta.Simulate(l, ref)
			if err != nil {
				fatal(err)
			}
			if serial != sim {
				fatal(fmt.Errorf("parallel engine diverged from serial reference:\n%+v\n%+v", sim, serial))
			}
			fmt.Println("verify: parallel engine bit-identical to serial reference")
		}
	}

	t := report.NewTable(
		fmt.Sprintf("Simulator vs DeLTA model: %s on %s", l, dev.Name),
		"level", "model", "simulated", "model/sim")
	t.AddRow("L1", report.Bytes(est.L1Bytes), report.Bytes(sim.L1Bytes), est.L1Bytes/sim.L1Bytes)
	t.AddRow("L2", report.Bytes(est.L2Bytes), report.Bytes(sim.L2Bytes), est.L2Bytes/sim.L2Bytes)
	t.AddRow("DRAM", report.Bytes(est.DRAMBytes), report.Bytes(sim.DRAMBytes), est.DRAMBytes/sim.DRAMBytes)
	t.AddRow("L1 miss rate", report.Pct(est.MissRateL1()), report.Pct(sim.MissRateL1()), "")
	t.AddRow("L2 miss rate", report.Pct(est.MissRateL2()), report.Pct(sim.MissRateL2()), "")
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\nCTAs: %d (%s tile, %d main loops each)\n",
		sim.TotalCTAs, sim.Grid.Tile, sim.Grid.MainLoops())

	if *timing {
		res, err := delta.EstimatePerformance(est, dev)
		if err != nil {
			fatal(err)
		}
		ts, err := delta.SimulateTiming(est, dev)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nExecution time: model %.3f ms (%s), timing sim %.3f ms, ratio %.3f\n",
			res.Seconds*1e3, res.Bottleneck, ts.Seconds*1e3, res.Cycles/ts.Cycles)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deltasim:", err)
	os.Exit(1)
}
