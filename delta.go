// Package delta is a Go implementation of DeLTA ("DeLTA: GPU Performance
// Model for Deep Learning Applications with In-depth Memory System Traffic
// Analysis", Lym et al., ISPASS 2019): an analytical model of the memory
// traffic and execution time of convolution layers executed on a GPU with
// the im2col/implicit-GEMM algorithm.
//
// The package is a facade over the implementation packages:
//
//   - EstimateTraffic evaluates the Section IV traffic model (L1, L2, DRAM
//     bytes) for a layer on a device.
//   - EstimatePerformance evaluates the Section V performance model on top
//     of a traffic estimate, returning cycles, seconds, and the bottleneck
//     resource.
//   - Simulate runs the trace-driven memory-hierarchy simulator that stands
//     in for the paper's hardware measurements.
//   - SimulateTiming runs the event-driven execution-time simulator.
//   - AlexNet/VGG16/GoogLeNet/ResNet152 provide the paper's benchmark
//     layer configurations; TitanXp/P100/V100 its Table I devices.
//
// A minimal use:
//
//	layer := delta.Conv{Name: "conv", B: 256, Ci: 256, Hi: 13, Wi: 13,
//	    Co: 384, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
//	est, err := delta.EstimateTraffic(layer, delta.TitanXp(), delta.TrafficOptions{})
//	...
//	res, err := delta.EstimatePerformance(est, delta.TitanXp())
//	fmt.Println(res.Seconds, res.Bottleneck)
package delta

import (
	"context"

	"delta/internal/backprop"
	"delta/internal/cnn"
	"delta/internal/explore"
	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/microbench"
	"delta/internal/perf"
	"delta/internal/pipeline"
	"delta/internal/prior"
	"delta/internal/roofline"
	"delta/internal/scenario"
	"delta/internal/sim/engine"
	"delta/internal/sim/timing"
	"delta/internal/tiling"
	"delta/internal/traffic"
)

// Core model types.
type (
	// Conv describes one convolution (or fully-connected) layer.
	Conv = layers.Conv

	// GPU is a parameterized device (Table I plus latencies).
	GPU = gpu.Device

	// GPUScale scales independent GPU resources (Fig. 16a design options).
	GPUScale = gpu.Scale

	// DesignOption is one column of the Fig. 16a scaling-study table.
	DesignOption = gpu.DesignOption

	// TrafficOptions tunes traffic-model variants; the zero value
	// reproduces the paper.
	TrafficOptions = traffic.Options

	// TrafficEstimate is the per-level traffic prediction for one layer.
	TrafficEstimate = traffic.Estimate

	// PerfResult is the execution-time prediction with its bottleneck.
	PerfResult = perf.Result

	// Bottleneck names the resource limiting a layer (MAC_BW, SMEM_BW,
	// L1_BW, L2_BW, DRAM_BW, DRAM_LAT).
	Bottleneck = perf.Bottleneck

	// Network is a named list of unique conv layers with instance counts.
	Network = cnn.Network

	// Tile is a CTA tile configuration of the blocked GEMM.
	Tile = tiling.Tile

	// SimConfig configures the trace-driven memory-hierarchy simulator.
	SimConfig = engine.Config

	// SimResult is the simulated ("measured") traffic of one layer.
	SimResult = engine.Result

	// TimingResult is the event-driven simulated execution time.
	TimingResult = timing.Result

	// MicrobenchPoint is one sample of the DRAM latency/bandwidth curve.
	MicrobenchPoint = microbench.Point
)

// Bottleneck values, re-exported for switch statements.
const (
	MACBW   = perf.MACBW
	SMEMBW  = perf.SMEMBW
	L1BW    = perf.L1BW
	L2BW    = perf.L2BW
	DRAMBW  = perf.DRAMBW
	DRAMLAT = perf.DRAMLAT
)

// DefaultBatch is the paper's evaluation mini-batch size.
const DefaultBatch = cnn.DefaultBatch

// Devices.

// TitanXp returns the Pascal TITAN Xp of Table I.
func TitanXp() GPU { return gpu.TitanXp() }

// P100 returns the Pascal Tesla P100 of Table I.
func P100() GPU { return gpu.P100() }

// V100 returns the Volta Tesla V100 of Table I.
func V100() GPU { return gpu.V100() }

// Devices returns all Table I devices.
func Devices() []GPU { return gpu.All() }

// DeviceByName looks a device up by name: the Table I devices (with
// forgiving spelling, e.g. "titanxp") plus anything added via
// RegisterDevice.
func DeviceByName(name string) (GPU, error) { return gpu.ByName(name) }

// RegisterDevice adds a device to the by-name registry so later
// DeviceByName lookups (CLI flags, server requests) resolve it.
func RegisterDevice(d GPU) error { return gpu.Register(d) }

// DeviceNames returns every resolvable device name.
func DeviceNames() []string { return gpu.Names() }

// NetworkByName builds a registered network ("alexnet", "vgg16",
// "googlenet", "resnet50", "resnet152", "resnet152full") at mini-batch b
// (0 means DefaultBatch).
func NetworkByName(name string, b int) (Network, error) { return cnn.ByName(name, b) }

// NetworkNames returns the registered network names.
func NetworkNames() []string { return cnn.Names() }

// DesignOptions returns the nine Fig. 16a scaling-study design options.
func DesignOptions() []DesignOption { return gpu.DesignOptions() }

// Models.

// EstimateTraffic evaluates the DeLTA memory-traffic model (Eq. 2-10).
func EstimateTraffic(l Conv, d GPU, opt TrafficOptions) (TrafficEstimate, error) {
	return traffic.Model(l, d, opt)
}

// EstimatePerformance evaluates the DeLTA performance model (Eq. 11-18) on
// a traffic estimate produced for the same device.
func EstimatePerformance(e TrafficEstimate, d GPU) (PerfResult, error) {
	return perf.Model(e, d)
}

// Estimate runs both models in sequence: the common entry point.
func Estimate(l Conv, d GPU, opt TrafficOptions) (PerfResult, error) {
	return perf.ModelLayer(l, d, opt)
}

// EstimateAllContext evaluates a layer list through the shared pipeline as
// a one-point scenario: layers fan out across the worker pool and repeated
// configurations are served from the memo cache. Results are index-aligned
// with the layers and identical to the serial path.
func EstimateAllContext(ctx context.Context, ls []Conv, d GPU, opt TrafficOptions) ([]PerfResult, error) {
	if len(ls) == 0 {
		return nil, ctx.Err()
	}
	net := Network{Name: "batch", Layers: ls}
	upds, err := DefaultPipeline().RunScenario(ctx, scenario.Single(net, d, opt, "", "", 0))
	if err != nil {
		return nil, err
	}
	rs := upds[0].Network.Results
	out := make([]PerfResult, len(rs))
	for i, r := range rs {
		out[i] = r.Perf
	}
	return out, nil
}

// EstimateAll evaluates a layer list through the shared pipeline.
//
// Deprecated: use EstimateAllContext, which honors cancellation.
func EstimateAll(ls []Conv, d GPU, opt TrafficOptions) ([]PerfResult, error) {
	//lint:ignore ctxflow deprecated compat shim; callers are pointed at the Context variant
	return EstimateAllContext(context.Background(), ls, d, opt)
}

// NetworkTime sums layer times weighted by instance counts (nil = all 1).
func NetworkTime(rs []PerfResult, counts []int) float64 {
	return perf.NetworkTime(rs, counts)
}

// BottleneckHistogram counts layers per bottleneck, weighted by counts.
func BottleneckHistogram(rs []PerfResult, counts []int) map[Bottleneck]int {
	return perf.BottleneckHistogram(rs, counts)
}

// PriorEstimate applies the fixed-miss-rate prior-model baseline
// (Section III; mr = 1.0 is the setting prior work advocates).
func PriorEstimate(l Conv, d GPU, missRate float64) (PerfResult, error) {
	return prior.Model(l, d, missRate)
}

// Simulators.

// Simulate runs the trace-driven memory-hierarchy simulator — the stand-in
// for the paper's nvprof traffic measurements. By default the engine fans
// per-SM L1 simulation across GOMAXPROCS workers and replays L1 misses
// through the shared L2 in serial order, so counters are bit-identical to
// the serial reference engine (SimConfig.Workers = 1) at any width.
func Simulate(l Conv, cfg SimConfig) (SimResult, error) {
	return engine.Run(l, cfg)
}

// SimRequest names one trace-driven simulation for SimulateAll: a layer
// under an engine configuration.
type SimRequest = pipeline.SimRequest

// SimulateAllContext runs a batch of simulations through the shared
// pipeline: per-layer runs fan out across the worker pool and repeated
// (layer, device, config) simulations are served from the memo cache.
// Results are index-aligned with the requests and bit-identical to serial
// engine runs. (Heterogeneous per-request configs do not form a
// cross-product, so this is the one batch helper that bypasses the
// scenario expansion and feeds the pipeline directly.)
func SimulateAllContext(ctx context.Context, reqs []SimRequest) ([]SimResult, error) {
	return DefaultPipeline().SimulateAll(ctx, reqs)
}

// SimulateAll runs a batch of simulations through the shared pipeline.
//
// Deprecated: use SimulateAllContext, which honors cancellation.
func SimulateAll(reqs []SimRequest) ([]SimResult, error) {
	//lint:ignore ctxflow deprecated compat shim; callers are pointed at the Context variant
	return SimulateAllContext(context.Background(), reqs)
}

// SimulateLayersContext simulates each layer under one shared config as a
// one-point scenario through the shared pipeline — the common
// experiment-driver shape.
func SimulateLayersContext(ctx context.Context, ls []Conv, cfg SimConfig) ([]SimResult, error) {
	if len(ls) == 0 {
		return nil, ctx.Err()
	}
	upds, err := DefaultPipeline().RunScenario(ctx, scenario.SingleSim(ls, cfg))
	if err != nil {
		return nil, err
	}
	return upds[0].Sim, nil
}

// SimulateLayers simulates each layer under one shared config.
//
// Deprecated: use SimulateLayersContext, which honors cancellation.
func SimulateLayers(ls []Conv, cfg SimConfig) ([]SimResult, error) {
	//lint:ignore ctxflow deprecated compat shim; callers are pointed at the Context variant
	return SimulateLayersContext(context.Background(), ls, cfg)
}

// SimulateTiming runs the event-driven execution-time simulator on a
// traffic estimate.
func SimulateTiming(e TrafficEstimate, d GPU) (TimingResult, error) {
	return timing.Run(e, d)
}

// DRAMMicrobench sweeps the DRAM channel model across offered loads,
// reproducing the Fig. 18 latency/bandwidth curve.
func DRAMMicrobench(d GPU, fractions []float64, requests int) ([]MicrobenchPoint, error) {
	return microbench.Sweep(d, fractions, requests)
}

// Networks.

// AlexNet returns AlexNet's conv layers at mini-batch b.
func AlexNet(b int) Network { return cnn.AlexNet(b) }

// VGG16 returns VGG16's unique conv layers at mini-batch b.
func VGG16(b int) Network { return cnn.VGG16(b) }

// GoogLeNet returns GoogLeNet's unique conv layers at mini-batch b.
func GoogLeNet(b int) Network { return cnn.GoogLeNet(b) }

// ResNet50 returns every conv instance of ResNet50 with counts (not part of
// the paper's evaluation; provided for library users).
func ResNet50(b int) Network { return cnn.ResNet50(b) }

// ResNet152 returns ResNet152's unique conv layers at mini-batch b.
func ResNet152(b int) Network { return cnn.ResNet152(b) }

// ResNet152Full returns every conv instance of ResNet152 with counts, the
// Fig. 16 scaling-study workload.
func ResNet152Full(b int) Network { return cnn.ResNet152Full(b) }

// PaperSuite returns the four evaluated CNNs at mini-batch b.
func PaperSuite(b int) []Network { return cnn.PaperSuite(b) }

// FC constructs a fully-connected layer as a 1x1 convolution.
func FC(name string, batch, in, out int) Conv { return layers.FC(name, batch, in, out) }

// SelectTile returns the CTA tile cuDNN would pick for an output channel
// count (the Fig. 6 lookup).
func SelectTile(co int) Tile { return tiling.Select(co) }

// Training extension (see internal/backprop): the data-gradient and
// weight-gradient GEMMs of the backward pass, and whole-network training
// step times.
type TrainingStep = backprop.Step

// DgradLayer returns the convolution computing the data gradient of l.
func DgradLayer(l Conv) (Conv, error) { return backprop.DgradLayer(l) }

// WgradLayer returns the GEMM-shaped layer of l's weight gradient.
func WgradLayer(l Conv) (Conv, error) { return backprop.WgradLayer(l) }

// EstimateTrainingStep models fprop + dgrad + wgrad for one layer.
func EstimateTrainingStep(l Conv, d GPU, opt TrafficOptions, skipDgrad bool) (TrainingStep, error) {
	return backprop.ModelStep(l, d, opt, skipDgrad)
}

// EstimateNetworkTrainingContext models a whole network's training-step
// time as a one-point training-pass scenario, evaluating layers
// concurrently through the shared pipeline.
func EstimateNetworkTrainingContext(ctx context.Context, n Network, d GPU, opt TrafficOptions) ([]TrainingStep, float64, error) {
	upds, err := DefaultPipeline().RunScenario(ctx,
		scenario.Single(n, d, opt, scenario.ModelDelta, scenario.PassTraining, 0))
	if err != nil {
		return nil, 0, err
	}
	nr := upds[0].Network
	steps := make([]TrainingStep, len(nr.Results))
	for i, r := range nr.Results {
		steps[i] = r.Training
	}
	return steps, nr.Seconds, nil
}

// EstimateNetworkTraining models a whole network's training-step time.
//
// Deprecated: use EstimateNetworkTrainingContext, which honors
// cancellation.
func EstimateNetworkTraining(n Network, d GPU, opt TrafficOptions) ([]TrainingStep, float64, error) {
	//lint:ignore ctxflow deprecated compat shim; callers are pointed at the Context variant
	return EstimateNetworkTrainingContext(context.Background(), n, d, opt)
}

// Design-space exploration (see internal/explore): cost-priced resource
// grids, Pareto frontiers, and target-speedup search.
type (
	// ExploreAxes defines the resource-scaling grid to enumerate.
	ExploreAxes = explore.Axes

	// ExploreCandidate is one priced, evaluated design point.
	ExploreCandidate = explore.Candidate

	// CostModel prices scaled devices relative to the baseline.
	CostModel = explore.CostModel

	// ExploreWorkload is the network (plus traffic options) whose
	// predicted time drives an exploration.
	ExploreWorkload = explore.Workload
)

// DefaultCostModel returns a coarse Pascal-class silicon cost split.
func DefaultCostModel() CostModel { return explore.DefaultCostModel() }

// DefaultExploreAxes spans the neighborhood of the Fig. 16a options.
func DefaultExploreAxes() ExploreAxes { return explore.DefaultAxes() }

// ExploreContext prices and evaluates every scale in the grid on the
// workload. The grid is expressed as a scenario (one workload × the base +
// scaled device axis) streamed through the shared pipeline's worker pool;
// candidates are identical to the serial evaluation.
func ExploreContext(ctx context.Context, n Network, base GPU, axes ExploreAxes, cm CostModel) ([]ExploreCandidate, error) {
	return DefaultPipeline().Explore(ctx, explore.Workload{Net: n}, base, axes.Enumerate(), cm)
}

// Explore prices and evaluates every scale in the grid on the workload.
//
// Deprecated: use ExploreContext, which honors cancellation.
func Explore(n Network, base GPU, axes ExploreAxes, cm CostModel) ([]ExploreCandidate, error) {
	//lint:ignore ctxflow deprecated compat shim; callers are pointed at the Context variant
	return ExploreContext(context.Background(), n, base, axes, cm)
}

// ParetoFront extracts the undominated (cost, speedup) candidates.
func ParetoFront(cands []ExploreCandidate) []ExploreCandidate {
	return explore.ParetoFront(cands)
}

// CheapestAtLeast returns the lowest-cost candidate hitting the target
// speedup.
func CheapestAtLeast(cands []ExploreCandidate, target float64) (ExploreCandidate, bool) {
	return explore.CheapestAtLeast(cands, target)
}

// RooflineResult is a classical roofline prediction (baseline; see
// internal/roofline).
type RooflineResult = roofline.Result

// Roofline evaluates the classical roofline model for one layer: the larger
// of the arithmetic time and the compulsory-traffic memory time.
func Roofline(l Conv, d GPU) (RooflineResult, error) { return roofline.Model(l, d) }

// Unified evaluation pipeline (see internal/pipeline): the concurrent
// Request/Result path every batch consumer — EstimateAll, Explore,
// EstimateNetworkTraining, the CLIs, and cmd/delta-server — goes through.
type (
	// Pipeline is a concurrent, memoizing evaluator of model requests.
	Pipeline = pipeline.Evaluator

	// PipelineOption configures NewPipeline.
	PipelineOption = pipeline.Option

	// EvalRequest names one layer evaluation: layer, device, model
	// variant (delta | prior | roofline), and pass (inference | training).
	EvalRequest = pipeline.Request

	// EvalResult is the unified answer to an EvalRequest.
	EvalResult = pipeline.Result

	// NetworkEvalRequest names a whole-network evaluation.
	NetworkEvalRequest = pipeline.NetworkRequest

	// NetworkEvalResult aggregates per-layer results with the
	// count-weighted network time and bottleneck histogram.
	NetworkEvalResult = pipeline.NetworkResult

	// EvalModel selects the analytical model variant of an EvalRequest.
	EvalModel = pipeline.Model

	// EvalPass selects forward-only or full training-step evaluation.
	EvalPass = pipeline.Pass
)

// Pipeline model and pass selectors.
const (
	ModelDelta    = pipeline.ModelDelta
	ModelPrior    = pipeline.ModelPrior
	ModelRoofline = pipeline.ModelRoofline

	PassInference = pipeline.PassInference
	PassTraining  = pipeline.PassTraining
)

// Declarative scenarios (see internal/scenario): the one request shape
// every sweep — grids of workloads × devices × batches × models × passes ×
// traffic options, plus optional simulator configs — expands from. Build a
// Scenario in Go (or decode one from JSON via internal/spec / the
// delta-server /v2 jobs API) and stream it through the pipeline.
type (
	// Scenario is a declarative cross-product evaluation sweep.
	Scenario = scenario.Scenario

	// ScenarioWorkload names one workload-axis entry: a registered
	// network name or an explicit layer list.
	ScenarioWorkload = scenario.Workload

	// ScenarioPoint is one expanded evaluation of a scenario.
	ScenarioPoint = scenario.Point

	// StreamUpdate is one incremental result of a scenario stream, with
	// progress counts (Done/Total) and the point's result or error.
	StreamUpdate = pipeline.StreamUpdate

	// StreamOption configures Stream / RunScenario calls.
	StreamOption = pipeline.StreamOption

	// StreamErrorPolicy selects fail-fast or collect-partial sweeps.
	StreamErrorPolicy = pipeline.ErrorPolicy
)

// Scenario model/pass axis values and stream error policies.
const (
	ScenarioModelDelta    = scenario.ModelDelta
	ScenarioModelPrior    = scenario.ModelPrior
	ScenarioModelRoofline = scenario.ModelRoofline

	ScenarioPassInference = scenario.PassInference
	ScenarioPassTraining  = scenario.PassTraining

	StreamFailFast       = pipeline.FailFast
	StreamCollectPartial = pipeline.CollectPartial
)

// WithStreamErrorPolicy selects a stream's error policy (default
// StreamFailFast).
func WithStreamErrorPolicy(p StreamErrorPolicy) StreamOption {
	return pipeline.WithErrorPolicy(p)
}

// WithStreamOffset resumes a stream partway through the expansion order:
// the first n points are skipped without evaluation and updates continue
// from Done == n+1 with indices and Total unchanged. Because expansion
// order is deterministic, a resumed sweep's updates are bit-identical to
// the tail of an uninterrupted run — this is how delta-server resumes
// half-finished durable jobs after a restart.
func WithStreamOffset(n int) StreamOption {
	return pipeline.WithOffset(n)
}

// WithStreamLimit bounds how many points a stream emits after the
// offset: the sweep stops once n updates are sent, with Done/Total and
// point indices still global. An offset+limit window is therefore
// bit-identical to the same slice of an unbounded run, which is what
// lets distributed sweeps shard a scenario's index space across workers
// and merge the pieces back losslessly. Negative means unlimited.
func WithStreamLimit(n int) StreamOption {
	return pipeline.WithLimit(n)
}

// Stream expands a scenario and evaluates its points through the shared
// pipeline — each point's layers fan out across the worker pool — emitting
// one update per point in expansion order with progress counts. Cancel ctx
// to abandon the stream early.
func Stream(ctx context.Context, sc Scenario, opts ...StreamOption) (<-chan StreamUpdate, error) {
	return DefaultPipeline().Stream(ctx, sc, opts...)
}

// RunScenario streams a scenario to completion and collects the ordered
// updates.
func RunScenario(ctx context.Context, sc Scenario, opts ...StreamOption) ([]StreamUpdate, error) {
	return DefaultPipeline().RunScenario(ctx, sc, opts...)
}

// NewPipeline constructs a private evaluation pipeline. Most callers can
// use DefaultPipeline; construct your own to bound the worker pool
// (WithPipelineWorkers) or disable memoization (WithoutPipelineCache).
func NewPipeline(opts ...PipelineOption) *Pipeline { return pipeline.New(opts...) }

// DefaultPipeline returns the process-wide shared pipeline, so independent
// callers share one memo cache.
func DefaultPipeline() *Pipeline { return pipeline.Default() }

// WithPipelineWorkers caps a new pipeline's worker pool.
func WithPipelineWorkers(n int) PipelineOption { return pipeline.WithWorkers(n) }

// WithoutPipelineCache disables a new pipeline's memo cache.
func WithoutPipelineCache() PipelineOption { return pipeline.WithoutCache() }

// WithPipelineReplayPartitions makes simulations run through the pipeline
// split their shared-L2 replay into n set partitions, each replayed by its
// own goroutine. Counters stay bit-identical to serial replay at any
// partition count; n < 2 leaves replay serial. Requests that set
// SimConfig.ReplayPartitions themselves are not overridden.
func WithPipelineReplayPartitions(n int) PipelineOption {
	return pipeline.WithReplayPartitions(n)
}

// WithoutPipelineStreamSharing disables the shared stream tier that lets
// simulations of the same layer geometry reuse coalesced tile streams
// across runs and sweep points.
func WithoutPipelineStreamSharing() PipelineOption {
	return pipeline.WithoutStreamSharing()
}
