package delta

import (
	"testing"
)

// TestFacadeEndToEnd exercises the full public path: layer -> traffic ->
// performance -> bottleneck, plus the simulator cross-check.
func TestFacadeEndToEnd(t *testing.T) {
	layer := Conv{Name: "quick", B: 8, Ci: 64, Hi: 14, Wi: 14, Co: 128,
		Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	d := TitanXp()

	est, err := EstimateTraffic(layer, d, TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if est.L1Bytes <= 0 || est.DRAMBytes > est.L2Bytes {
		t.Errorf("estimate malformed: %+v", est)
	}

	res, err := EstimatePerformance(est, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 {
		t.Errorf("seconds = %v", res.Seconds)
	}

	// One-call path agrees with the two-call path.
	res2, err := Estimate(layer, d, TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles != res.Cycles || res2.Bottleneck != res.Bottleneck {
		t.Error("Estimate disagrees with EstimateTraffic+EstimatePerformance")
	}

	sim, err := Simulate(layer, SimConfig{Device: d})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := est.L1Bytes / sim.L1Bytes; ratio < 0.3 || ratio > 3 {
		t.Errorf("model/sim L1 = %v", ratio)
	}

	ts, err := SimulateTiming(est, d)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Cycles <= 0 {
		t.Errorf("timing cycles = %v", ts.Cycles)
	}
}

// TestFacadeSimulateAll: the pipelined batch simulation path returns
// results bit-identical to direct Simulate calls, for both the SimRequest
// and the shared-config layer-list shapes.
func TestFacadeSimulateAll(t *testing.T) {
	d := TitanXp()
	ls := []Conv{
		{Name: "s1", B: 2, Ci: 32, Hi: 14, Wi: 14, Co: 64, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
		{Name: "s2", B: 2, Ci: 64, Hi: 14, Wi: 14, Co: 32, Hf: 1, Wf: 1, Stride: 1},
	}
	cfg := SimConfig{Device: d}
	want := make([]SimResult, len(ls))
	for i, l := range ls {
		r, err := Simulate(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	batch, err := SimulateLayers(ls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]SimRequest, len(ls))
	for i, l := range ls {
		reqs[i] = SimRequest{Layer: l, Config: cfg}
	}
	batch2, err := SimulateAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ls {
		if batch[i] != want[i] || batch2[i] != want[i] {
			t.Errorf("layer %s: batch simulation differs from direct Simulate", ls[i].Name)
		}
	}
}

func TestFacadeNetworksAndDevices(t *testing.T) {
	if len(Devices()) != 3 {
		t.Error("Devices() != 3")
	}
	if _, err := DeviceByName("V100"); err != nil {
		t.Error(err)
	}
	suite := PaperSuite(DefaultBatch)
	if len(suite) != 4 {
		t.Error("PaperSuite != 4 networks")
	}
	if ResNet152Full(32).TotalInstances() != 155 {
		t.Error("ResNet152Full instance count drift")
	}
	if len(DesignOptions()) != 9 {
		t.Error("DesignOptions != 9")
	}
	if SelectTile(384).BlkN != 128 {
		t.Error("SelectTile lookup drift")
	}
	if fc := FC("fc6", 4, 4096, 1000); fc.Validate() != nil || !fc.IsPointwise() {
		t.Error("FC constructor broken")
	}
}

func TestFacadeAggregation(t *testing.T) {
	net := AlexNet(8)
	rs, err := EstimateAll(net.Layers, TitanXp(), TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := NetworkTime(rs, net.Counts)
	if total <= 0 {
		t.Errorf("network time = %v", total)
	}
	h := BottleneckHistogram(rs, net.Counts)
	sum := 0
	for _, c := range h {
		sum += c
	}
	if sum != net.TotalInstances() {
		t.Errorf("histogram sum %d != instances %d", sum, net.TotalInstances())
	}
}

func TestFacadePriorAndMicrobench(t *testing.T) {
	layer := Conv{Name: "p", B: 8, Ci: 96, Hi: 28, Wi: 28, Co: 128,
		Hf: 5, Wf: 5, Stride: 1, Pad: 2}
	d := TitanXp()
	delta, err := Estimate(layer, d, TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PriorEstimate(layer, d, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Cycles < delta.Cycles {
		t.Errorf("prior model (MR=1) predicted faster than DeLTA on a 5x5 layer")
	}
	pts, err := DRAMMicrobench(d, []float64{0.1, 1.2}, 2000)
	if err != nil || len(pts) != 2 {
		t.Fatalf("microbench: %v, %d points", err, len(pts))
	}
	if pts[1].LatencyClk <= pts[0].LatencyClk {
		t.Error("overload latency not above light-load latency")
	}
}
