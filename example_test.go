package delta_test

import (
	"fmt"
	"log"

	"delta"
)

// Example demonstrates the common path: traffic estimate, performance
// estimate, bottleneck.
func Example() {
	layer := delta.Conv{
		Name: "conv", B: 256,
		Ci: 256, Hi: 13, Wi: 13,
		Co: 384, Hf: 3, Wf: 3,
		Stride: 1, Pad: 1,
	}
	res, err := delta.Estimate(layer, delta.TitanXp(), delta.TrafficOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bottleneck: %s\n", res.Bottleneck)
	// Output: bottleneck: MAC_BW
}

// ExampleEstimateTraffic shows the per-level traffic breakdown and the
// modeled miss rates.
func ExampleEstimateTraffic() {
	layer := delta.Conv{Name: "pw", B: 256, Ci: 512, Hi: 14, Wi: 14,
		Co: 128, Hf: 1, Wf: 1, Stride: 1}
	est, err := delta.EstimateTraffic(layer, delta.TitanXp(), delta.TrafficOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tile %s, L1 miss rate %.0f%%\n", est.Grid.Tile, est.MissRateL1()*100)
	// Output: tile (128x128)x8, L1 miss rate 40%
}

// ExampleSelectTile shows the Fig. 6 CTA tile lookup.
func ExampleSelectTile() {
	for _, co := range []int{16, 48, 96} {
		fmt.Println(co, delta.SelectTile(co))
	}
	// Output:
	// 16 (128x32)x4
	// 48 (128x64)x4
	// 96 (128x128)x8
}

// ExampleDgradLayer shows how a stride-1 convolution's data-gradient pass
// is itself a convolution with swapped channels and full padding.
func ExampleDgradLayer() {
	fwd := delta.Conv{Name: "conv", B: 32, Ci: 64, Hi: 28, Wi: 28,
		Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	bwd, err := delta.DgradLayer(fwd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d->%d channels, output %dx%d\n", bwd.Ci, bwd.Co, bwd.Ho(), bwd.Wo())
	// Output: 128->64 channels, output 28x28
}

// ExampleBottleneckHistogram tallies what limits each layer of a network.
func ExampleBottleneckHistogram() {
	net := delta.AlexNet(256)
	rs, err := delta.EstimateAll(net.Layers, delta.TitanXp(), delta.TrafficOptions{})
	if err != nil {
		log.Fatal(err)
	}
	h := delta.BottleneckHistogram(rs, nil)
	fmt.Printf("MAC-bound layers: %d/%d\n", h[delta.MACBW], len(rs))
	// Output: MAC-bound layers: 5/5
}
