// Bottleneck analysis: run the DeLTA performance model over every unique
// conv layer of the four paper CNNs on all three GPUs through the unified
// pipeline and report which resource limits each network — the Fig. 13/14
// analysis as a library user would consume it.
package main

import (
	"context"
	"fmt"
	"log"

	"delta"
)

func main() {
	ctx := context.Background()
	p := delta.DefaultPipeline()
	for _, dev := range delta.Devices() {
		fmt.Printf("=== %s ===\n", dev.Name)
		for _, net := range delta.PaperSuite(delta.DefaultBatch) {
			// The paper's unique-subset figures weight every layer once.
			net.Counts = nil
			nr, err := p.Network(ctx, delta.NetworkEvalRequest{Net: net, Device: dev})
			if err != nil {
				log.Fatal(err)
			}

			// Slowest layer and its limiter.
			worst := nr.Results[0]
			for _, r := range nr.Results {
				if r.Seconds > worst.Seconds {
					worst = r
				}
			}

			fmt.Printf("%-10s  %7.1f ms over %2d unique layers;", net.Name, nr.Seconds*1e3, len(nr.Results))
			macBound := nr.Bottlenecks[delta.MACBW]
			fmt.Printf("  %d/%d MAC-bound;", macBound, len(nr.Results))
			fmt.Printf("  slowest %s (%.1f ms, %s)\n",
				worst.Layer.Name, worst.Seconds*1e3, worst.Perf.Bottleneck)

			for b, c := range nr.Bottlenecks {
				if b != delta.MACBW && c > 0 {
					fmt.Printf("             %2d layer(s) limited by %s\n", c, b)
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("Note: the paper observes ~90% of layers are MAC-bound on TITAN Xp,")
	fmt.Println("with DRAM bandwidth/latency limiting several GoogLeNet layers.")
}
