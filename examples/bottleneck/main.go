// Bottleneck analysis: run the DeLTA performance model over every unique
// conv layer of the four paper CNNs on all three GPUs and report which
// resource limits each network — the Fig. 13/14 analysis as a library user
// would consume it.
package main

import (
	"fmt"
	"log"

	"delta"
)

func main() {
	for _, dev := range delta.Devices() {
		fmt.Printf("=== %s ===\n", dev.Name)
		for _, net := range delta.PaperSuite(delta.DefaultBatch) {
			rs, err := delta.EstimateAll(net.Layers, dev, delta.TrafficOptions{})
			if err != nil {
				log.Fatal(err)
			}
			hist := delta.BottleneckHistogram(rs, nil)
			total := delta.NetworkTime(rs, nil)

			// Slowest layer and its limiter.
			worst := rs[0]
			for _, r := range rs {
				if r.Seconds > worst.Seconds {
					worst = r
				}
			}

			fmt.Printf("%-10s  %7.1f ms over %2d unique layers;", net.Name, total*1e3, len(rs))
			macBound := hist[delta.MACBW]
			fmt.Printf("  %d/%d MAC-bound;", macBound, len(rs))
			fmt.Printf("  slowest %s (%.1f ms, %s)\n",
				worst.Layer.Name, worst.Seconds*1e3, worst.Bottleneck)

			for b, c := range hist {
				if b != delta.MACBW && c > 0 {
					fmt.Printf("             %2d layer(s) limited by %s\n", c, b)
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("Note: the paper observes ~90% of layers are MAC-bound on TITAN Xp,")
	fmt.Println("with DRAM bandwidth/latency limiting several GoogLeNet layers.")
}
