// Quickstart: model one convolution layer on a TITAN Xp — traffic at every
// memory level, predicted execution time, and the bottleneck resource —
// through the unified evaluation pipeline, then cross-check the traffic
// against the trace-driven simulator.
package main

import (
	"context"
	"fmt"
	"log"

	"delta"
)

func main() {
	// A mid-network 3x3 convolution (the paper's Appendix A base shape).
	layer := delta.Conv{
		Name: "conv", B: 256,
		Ci: 256, Hi: 13, Wi: 13,
		Co: 384, Hf: 3, Wf: 3,
		Stride: 1, Pad: 1,
	}
	dev := delta.TitanXp()

	// 1. One pipeline request answers with the Section IV traffic estimate
	// and the Section V performance prediction together.
	res, err := delta.DefaultPipeline().Evaluate(context.Background(),
		delta.EvalRequest{Layer: layer, Device: dev})
	if err != nil {
		log.Fatal(err)
	}
	est := res.Traffic
	fmt.Printf("%s on %s\n", layer, dev.Name)
	fmt.Printf("  GEMM tile       %s, %d CTAs, %d main loops\n",
		est.Grid.Tile, est.Grid.NumCTA(), est.Grid.MainLoops())
	fmt.Printf("  L1 traffic      %10.1f MiB  (MLI ifmap %.2f, filter %.2f)\n",
		est.L1Bytes/(1<<20), est.MLIIFmap, est.MLIFilter)
	fmt.Printf("  L2 traffic      %10.1f MiB  (L1 miss rate %.1f%%)\n",
		est.L2Bytes/(1<<20), est.MissRateL1()*100)
	fmt.Printf("  DRAM traffic    %10.1f MiB  (L2 miss rate %.1f%%)\n",
		est.DRAMBytes/(1<<20), est.MissRateL2()*100)
	fmt.Printf("  execution time  %10.3f ms  (%.1f Mcycles)\n",
		res.Seconds*1e3, res.Perf.Cycles/1e6)
	fmt.Printf("  bottleneck      %s, MAC utilization %.0f%%\n",
		res.Perf.Bottleneck, res.Perf.Utilization*100)

	// 2. The baselines DeLTA is compared against, through the same API.
	for _, model := range []delta.EvalModel{delta.ModelPrior, delta.ModelRoofline} {
		b, err := delta.DefaultPipeline().Evaluate(context.Background(),
			delta.EvalRequest{Layer: layer, Device: dev, Model: model})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s model  %10.3f ms\n", model, b.Seconds*1e3)
	}

	// 3. Cross-check the model against the simulator at a reduced batch
	// (traffic is batch-linear; the ratio is what matters).
	small := layer.WithBatch(4)
	sim, err := delta.Simulate(small, delta.SimConfig{Device: dev})
	if err != nil {
		log.Fatal(err)
	}
	smallEst, err := delta.EstimateTraffic(small, dev, delta.TrafficOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel / simulator (B=4): L1 %.2f   L2 %.2f   DRAM %.2f\n",
		smallEst.L1Bytes/sim.L1Bytes,
		smallEst.L2Bytes/sim.L2Bytes,
		smallEst.DRAMBytes/sim.DRAMBytes)
}
