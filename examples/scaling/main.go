// Scaling exploration: use DeLTA to evaluate future-GPU design options on
// full ResNet152 training-forward time (the Fig. 16 study), then search a
// small design space for the cheapest configuration hitting a target
// speedup — the "design-space exploration" use case of Section VII-C.
package main

import (
	"context"
	"fmt"
	"log"

	"delta"
)

func evalNet(net delta.Network, dev delta.GPU, tileDim int) (float64, map[delta.Bottleneck]int) {
	nr, err := delta.DefaultPipeline().Network(context.Background(), delta.NetworkEvalRequest{
		Net: net, Device: dev,
		Options: delta.TrafficOptions{TileOverride: tileDim},
	})
	if err != nil {
		log.Fatal(err)
	}
	return nr.Seconds, nr.Bottlenecks
}

func main() {
	net := delta.ResNet152Full(delta.DefaultBatch)
	base := delta.TitanXp()
	baseTime, _ := evalNet(net, base, 0)
	fmt.Printf("Baseline %s: ResNet152 forward %.1f ms (%d conv instances)\n\n",
		base.Name, baseTime*1e3, net.TotalInstances())

	// Part 1: the paper's nine design options.
	fmt.Println("Design options (Fig. 16):")
	for _, opt := range delta.DesignOptions() {
		dev := opt.Scale.Apply(base)
		tm, hist := evalNet(net, dev, opt.Scale.CTATileDim)
		top, topCount := delta.MACBW, 0
		for b, c := range hist {
			if c > topCount {
				top, topCount = b, c
			}
		}
		fmt.Printf("  option %d: %5.2fx speedup, dominant bottleneck %-8s  (%s)\n",
			opt.ID, baseTime/tm, top, opt.Label)
	}

	// Part 2: a simple exploration — how much MAC scaling is worth buying
	// at each DRAM bandwidth level before memory walls it off.
	fmt.Println("\nSpeedup by (MAC x, DRAM BW x) — diminishing returns past the wall:")
	fmt.Printf("%8s", "")
	for _, dramX := range []float64{1, 1.5, 2, 3} {
		fmt.Printf("  DRAM x%-4.1f", dramX)
	}
	fmt.Println()
	for _, macX := range []float64{1, 2, 4, 8} {
		fmt.Printf("MAC x%-3.0f", macX)
		for _, dramX := range []float64{1, 1.5, 2, 3} {
			s := delta.GPUScale{MACPerSM: macX, DRAMBW: dramX, L2BW: dramX,
				RegPerSM: 2, SMEMPerSM: 2, SMEMBW: 2, L1BW: 2}
			tm, _ := evalNet(net, s.Apply(base), 0)
			fmt.Printf("  %8.2fx", baseTime/tm)
		}
		fmt.Println()
	}
	fmt.Println("\nReading: moving right (more DRAM BW) matters only once MAC")
	fmt.Println("throughput has outgrown the memory system — DeLTA locates the crossover.")
}
