// Sensitivity: sweep one convolution parameter at a time around the
// Appendix A base configuration and watch how traffic and the bottleneck
// move — and validate each point against the trace-driven simulator
// (the Fig. 17 methodology).
package main

import (
	"fmt"
	"log"

	"delta"
)

const simBatch = 2 // simulation cost is batch-linear; ratios are batch-invariant

func base() delta.Conv {
	return delta.Conv{Name: "base", B: simBatch,
		Ci: 256, Hi: 13, Wi: 13, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
}

func point(l delta.Conv, dev delta.GPU) (mdl delta.TrafficEstimate, sim delta.SimResult) {
	mdl, err := delta.EstimateTraffic(l, dev, delta.TrafficOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sim, err = delta.Simulate(l, delta.SimConfig{Device: dev})
	if err != nil {
		log.Fatal(err)
	}
	return mdl, sim
}

func header(title string) {
	fmt.Printf("\n%s\n%10s  %10s %10s %10s\n", title, "point", "L1 m/s", "L2 m/s", "DRAM m/s")
}

func row(label string, mdl delta.TrafficEstimate, sim delta.SimResult) {
	fmt.Printf("%10s  %10.2f %10.2f %10.2f\n", label,
		mdl.L1Bytes/sim.L1Bytes, mdl.L2Bytes/sim.L2Bytes, mdl.DRAMBytes/sim.DRAMBytes)
}

func main() {
	dev := delta.TitanXp()
	fmt.Println("Model/simulator traffic ratios around the Appendix A base layer")
	fmt.Println("(256ci x 13x13 x 128co, 3x3 filter, stride 1, TITAN Xp).")

	header("Output channels (tile width changes at 32/64/128 — Fig. 17a):")
	for _, co := range []int{16, 32, 64, 128, 256, 384} {
		l := base()
		l.Co = co
		m, s := point(l, dev)
		row(fmt.Sprintf("Co=%d", co), m, s)
	}

	header("Input channels (Fig. 17b):")
	for _, ci := range []int{32, 128, 256, 512} {
		l := base()
		l.Ci = ci
		m, s := point(l, dev)
		row(fmt.Sprintf("Ci=%d", ci), m, s)
	}

	header("Feature size (small IFmaps over-predict — Fig. 17c):")
	for _, hw := range []int{8, 13, 28, 56} {
		l := base()
		l.Hi, l.Wi = hw, hw
		m, s := point(l, dev)
		row(fmt.Sprintf("%dx%d", hw, hw), m, s)
	}

	header("Mini-batch (traffic ratios are batch-stable — Fig. 17d):")
	for _, b := range []int{1, 2, 4, 8} {
		m, s := point(base().WithBatch(b), dev)
		row(fmt.Sprintf("B=%d", b), m, s)
	}
}
