package delta

import (
	"math"
	"testing"
)

// TestFacadeTraining exercises the training-step surface end to end.
func TestFacadeTraining(t *testing.T) {
	l := Conv{Name: "tr", B: 32, Ci: 64, Hi: 28, Wi: 28, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	d := TitanXp()

	dg, err := DgradLayer(l)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Ci != l.Co || dg.Co != l.Ci {
		t.Errorf("dgrad channels not swapped: %+v", dg)
	}
	wg, err := WgradLayer(l)
	if err != nil {
		t.Fatal(err)
	}
	if m, _, _ := wg.GEMM(); m != l.Co {
		t.Errorf("wgrad M = %d, want %d", m, l.Co)
	}

	st, err := EstimateTrainingStep(l, d, TrafficOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seconds() <= st.Fprop.Seconds {
		t.Error("training step not above forward time")
	}

	net := AlexNet(32)
	steps, total, err := EstimateNetworkTraining(net, d, TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(net.Layers) || total <= 0 {
		t.Errorf("network training: %d steps, %v s", len(steps), total)
	}
}

// TestFacadeExplore exercises the design-space surface end to end.
func TestFacadeExplore(t *testing.T) {
	net := AlexNet(16)
	axes := ExploreAxes{MACPerSM: []float64{1, 2}, MemBW: []float64{1, 2}}
	cands, err := Explore(net, TitanXp(), axes, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 4 {
		t.Fatalf("candidates = %d", len(cands))
	}
	front := ParetoFront(cands)
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	if c, ok := CheapestAtLeast(cands, 1.0); !ok || c.Speedup < 1 {
		t.Errorf("CheapestAtLeast(1.0) = %v, %v", c, ok)
	}
	if _, ok := CheapestAtLeast(cands, 1000); ok {
		t.Error("impossible target satisfied")
	}
	if len(DefaultExploreAxes().Enumerate()) == 0 {
		t.Error("default axes empty")
	}
}

// TestFacadeRoofline checks the roofline baseline re-export.
func TestFacadeRoofline(t *testing.T) {
	l := Conv{Name: "rf", B: 64, Ci: 256, Hi: 13, Wi: 13, Co: 384, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	r, err := Roofline(l, TitanXp())
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds <= 0 || math.IsNaN(r.Intensity) {
		t.Errorf("roofline malformed: %+v", r)
	}
	dl, err := Estimate(l, TitanXp(), TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ArithmeticSeconds > dl.Seconds {
		t.Error("arithmetic roof above the DeLTA prediction")
	}
}

// TestFacadeResNet50 checks the extra network.
func TestFacadeResNet50(t *testing.T) {
	n := ResNet50(64)
	if n.TotalInstances() != 53 {
		t.Errorf("ResNet50 instances = %d", n.TotalInstances())
	}
	rs, err := EstimateAll(n.Layers, V100(), TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if NetworkTime(rs, n.Counts) <= 0 {
		t.Error("non-positive network time")
	}
}
