// Package backprop extends DeLTA from forward convolution to the full
// training step. The paper models the forward (fprop) GEMM of each conv
// layer; training also runs two more GEMMs per layer, and both reduce to
// convolution-shaped GEMMs that the existing traffic and performance models
// evaluate directly:
//
//   - dgrad (data gradient): dX = dY (*) rot180(W). For a stride-1 layer
//     this is exactly a convolution of the Ho x Wo output gradient with
//     Co -> Ci transposed filters and "full" padding (Hf-1-Pad). Strided
//     layers convolve the zero-upsampled gradient ((Ho-1)*Stride+1 wide) at
//     stride 1 — the standard transposed-convolution formulation.
//   - wgrad (weight gradient): dW = dY^T x im2col(X), a GEMM with
//     M = Co, N = Ci*Hf*Wf, K = B*Ho*Wo. Expressed as a pointwise layer
//     whose GEMM dimensions are exactly (M, N, K); the im2col duplication
//     of X makes this a conservative (upper-bound) traffic estimate, which
//     matches cuDNN's low-locality wgrad kernels.
//
// This is the "future work" direction the paper's introduction motivates
// (training throughput, not just single-kernel inference); DESIGN.md lists
// it as an extension.
package backprop

import (
	"fmt"

	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/perf"
	"delta/internal/traffic"
)

// DgradLayer returns the convolution whose forward pass computes the data
// gradient of l. The returned layer's IFmap is the (possibly zero-upsampled)
// output gradient and its output is the input gradient.
func DgradLayer(l layers.Conv) (layers.Conv, error) {
	if err := l.Validate(); err != nil {
		return layers.Conv{}, err
	}
	pad := l.Hf - 1 - l.Pad
	if l.Wf-1-l.Pad != pad {
		// Square filters only (all modeled CNNs): Hf == Wf is enforced by
		// the Conv shapes used here.
		return layers.Conv{}, fmt.Errorf("backprop: non-square filter in %s", l.Name)
	}
	if pad < 0 {
		// Padding larger than filter-1 never appears in the modeled CNNs;
		// clamp to a valid convolution.
		pad = 0
	}
	up := func(o int) int { return (o-1)*l.Stride + 1 }
	d := layers.Conv{
		Name: l.Name + "/dgrad",
		B:    l.B,
		Ci:   l.Co,
		Hi:   up(l.Ho()),
		Wi:   up(l.Wo()),
		Co:   l.Ci,
		Hf:   l.Hf,
		Wf:   l.Wf,
		// Transposed convolution runs at stride 1 over the upsampled grid.
		Stride: 1,
		Pad:    pad,
	}
	if err := d.Validate(); err != nil {
		return layers.Conv{}, fmt.Errorf("backprop: dgrad of %s: %w", l.Name, err)
	}
	return d, nil
}

// WgradLayer returns a GEMM-shaped layer whose forward pass has exactly the
// weight-gradient GEMM dimensions: M = Co, N = Ci*Hf*Wf, K = B*Ho*Wo.
func WgradLayer(l layers.Conv) (layers.Conv, error) {
	if err := l.Validate(); err != nil {
		return layers.Conv{}, err
	}
	w := layers.Conv{
		Name:   l.Name + "/wgrad",
		B:      l.Co,
		Ci:     l.B * l.Ho() * l.Wo(),
		Hi:     1,
		Wi:     1,
		Co:     l.Ci * l.Hf * l.Wf,
		Hf:     1,
		Wf:     1,
		Stride: 1,
	}
	if err := w.Validate(); err != nil {
		return layers.Conv{}, fmt.Errorf("backprop: wgrad of %s: %w", l.Name, err)
	}
	return w, nil
}

// Step holds the three per-layer training GEMM predictions.
type Step struct {
	Layer layers.Conv

	Fprop perf.Result
	Dgrad perf.Result
	Wgrad perf.Result

	// WgradSplitK is the K-split factor the wgrad model chose. cuDNN's
	// wgrad kernels split the huge K = B*Ho*Wo dimension across CTAs when
	// the M x N grid alone cannot fill the GPU; the model evaluates the
	// candidate splits and keeps the fastest (Wgrad reflects it, including
	// the partial-sum reduction pass).
	WgradSplitK int

	// SkipDgrad marks the network's first conv layer, which needs no data
	// gradient (there is no upstream layer to feed).
	SkipDgrad bool
}

// Seconds returns the layer's total training-step GEMM time.
func (s Step) Seconds() float64 {
	t := s.Fprop.Seconds + s.Wgrad.Seconds
	if !s.SkipDgrad {
		t += s.Dgrad.Seconds
	}
	return t
}

// BackwardOverForward returns the backward/forward time ratio, the headline
// statistic of training-vs-inference cost (~2x for most CNNs).
func (s Step) BackwardOverForward() float64 {
	b := s.Wgrad.Seconds
	if !s.SkipDgrad {
		b += s.Dgrad.Seconds
	}
	return b / s.Fprop.Seconds
}

// ModelStep evaluates fprop, dgrad, and wgrad for one layer.
func ModelStep(l layers.Conv, d gpu.Device, opt traffic.Options, skipDgrad bool) (Step, error) {
	s := Step{Layer: l, SkipDgrad: skipDgrad}
	var err error
	if s.Fprop, err = perf.ModelLayer(l, d, opt); err != nil {
		return Step{}, err
	}
	if !skipDgrad {
		dg, err := DgradLayer(l)
		if err != nil {
			return Step{}, err
		}
		if s.Dgrad, err = perf.ModelLayer(dg, d, opt); err != nil {
			return Step{}, err
		}
	}
	if s.Wgrad, s.WgradSplitK, err = modelWgrad(l, d, opt); err != nil {
		return Step{}, err
	}
	return s, nil
}

// modelWgrad evaluates the weight-gradient GEMM over candidate split-K
// factors and returns the fastest. With split s, the K dimension is divided
// into s ranges computed by s concurrent CTA groups (each effectively owning
// 1/s of the SMs and memory bandwidth), followed by a DRAM-bound reduction
// of the s partial dW buffers.
func modelWgrad(l layers.Conv, d gpu.Device, opt traffic.Options) (perf.Result, int, error) {
	w, err := WgradLayer(l)
	if err != nil {
		return perf.Result{}, 0, err
	}
	var best perf.Result
	bestSplit := 0
	m, n, k := w.GEMM()
	for _, split := range []int{1, 2, 4, 8, 16, 32} {
		if split > 1 && k/split < 64 {
			break // too little accumulation left per group
		}
		group := w
		group.Ci = (k + split - 1) / split
		dev := d
		if split > 1 {
			inv := 1 / float64(split)
			dev = (gpu.Scale{NumSM: inv, L2BW: inv, DRAMBW: inv}).Apply(d)
		}
		r, err := perf.ModelLayer(group, dev, opt)
		if err != nil {
			return perf.Result{}, 0, err
		}
		if split > 1 {
			// Reduction pass: read s partial buffers, write the final dW.
			redBytes := float64(split+1) * float64(m) * float64(n) * layers.ElemBytes
			redCycles := redBytes/d.DRAMBytesPerClk() + d.LatDRAMClk
			r.Cycles += redCycles
			r.Seconds = d.CyclesToSeconds(r.Cycles)
		}
		if bestSplit == 0 || r.Seconds < best.Seconds {
			best, bestSplit = r, split
		}
	}
	return best, bestSplit, nil
}

// NetworkStep models the whole network's training step. Layers are taken in
// order; the first layer skips dgrad. Counts follow the network definition
// (nil = all ones).
func NetworkStep(ls []layers.Conv, counts []int, d gpu.Device, opt traffic.Options) ([]Step, float64, error) {
	if counts != nil && len(counts) != len(ls) {
		return nil, 0, fmt.Errorf("backprop: counts/layers mismatch")
	}
	steps := make([]Step, 0, len(ls))
	var total float64
	for i, l := range ls {
		st, err := ModelStep(l, d, opt, i == 0)
		if err != nil {
			return nil, 0, err
		}
		steps = append(steps, st)
		c := 1
		if counts != nil {
			c = counts[i]
		}
		total += st.Seconds() * float64(c)
	}
	return steps, total, nil
}
