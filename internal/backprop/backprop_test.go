package backprop

import (
	"math"
	"testing"
	"testing/quick"

	"delta/internal/cnn"
	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/traffic"
)

var xp = gpu.TitanXp()

var stride1 = layers.Conv{
	Name: "s1", B: 32, Ci: 128, Hi: 28, Wi: 28, Co: 256, Hf: 3, Wf: 3, Stride: 1, Pad: 1,
}

var stride2 = layers.Conv{
	Name: "s2", B: 32, Ci: 3, Hi: 224, Wi: 224, Co: 64, Hf: 7, Wf: 7, Stride: 2, Pad: 3,
}

func TestDgradGeometryStride1(t *testing.T) {
	d, err := DgradLayer(stride1)
	if err != nil {
		t.Fatal(err)
	}
	// Channel roles swap; the gradient conv reproduces the input extent.
	if d.Ci != stride1.Co || d.Co != stride1.Ci {
		t.Errorf("channels not swapped: %v", d)
	}
	if d.Ho() != stride1.Hi || d.Wo() != stride1.Wi {
		t.Errorf("dgrad output %dx%d, want input extent %dx%d",
			d.Ho(), d.Wo(), stride1.Hi, stride1.Wi)
	}
	// Same MAC count as the forward pass (stride 1, shape-preserving).
	if math.Abs(d.MACs()/stride1.MACs()-1) > 1e-9 {
		t.Errorf("dgrad MACs %v != fprop MACs %v", d.MACs(), stride1.MACs())
	}
}

func TestDgradGeometryStrided(t *testing.T) {
	d, err := DgradLayer(stride2)
	if err != nil {
		t.Fatal(err)
	}
	// Transposed conv over the zero-upsampled gradient recovers the input
	// extent up to the trailing row the stride-2 forward pass never read
	// (224+6-7 is odd, so one border row has no gradient).
	if d.Ho() != stride2.Hi-1 || d.Wo() != stride2.Wi-1 {
		t.Errorf("dgrad output %dx%d, want %dx%d", d.Ho(), d.Wo(), stride2.Hi-1, stride2.Wi-1)
	}
	if d.Stride != 1 {
		t.Errorf("dgrad stride = %d, want 1", d.Stride)
	}
}

func TestWgradGEMMDims(t *testing.T) {
	w, err := WgradLayer(stride1)
	if err != nil {
		t.Fatal(err)
	}
	m, n, k := w.GEMM()
	if m != stride1.Co {
		t.Errorf("wgrad M = %d, want Co = %d", m, stride1.Co)
	}
	if n != stride1.Ci*stride1.Hf*stride1.Wf {
		t.Errorf("wgrad N = %d, want Ci*Hf*Wf = %d", n, stride1.Ci*9)
	}
	if k != stride1.B*stride1.Ho()*stride1.Wo() {
		t.Errorf("wgrad K = %d, want B*Ho*Wo", k)
	}
	// Same MAC count as the forward GEMM (it is the same triple product).
	if math.Abs(w.MACs()/stride1.MACs()-1) > 1e-9 {
		t.Errorf("wgrad MACs %v != fprop MACs %v", w.MACs(), stride1.MACs())
	}
}

func TestModelStep(t *testing.T) {
	st, err := ModelStep(stride1, xp, traffic.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fprop.Seconds <= 0 || st.Dgrad.Seconds <= 0 || st.Wgrad.Seconds <= 0 {
		t.Fatalf("non-positive pass times: %+v", st)
	}
	if st.Seconds() <= st.Fprop.Seconds {
		t.Error("step time does not include backward passes")
	}
	// Training a conv layer costs roughly 2-3x its forward pass.
	r := st.Seconds() / st.Fprop.Seconds
	if r < 1.5 || r > 6 {
		t.Errorf("step/fprop = %v, want ~3", r)
	}
	if bf := st.BackwardOverForward(); bf < 0.5 || bf > 5 {
		t.Errorf("backward/forward = %v", bf)
	}
}

func TestModelStepSkipDgrad(t *testing.T) {
	st, err := ModelStep(stride2, xp, traffic.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !st.SkipDgrad {
		t.Fatal("SkipDgrad not set")
	}
	if st.Seconds() != st.Fprop.Seconds+st.Wgrad.Seconds {
		t.Error("skipped dgrad still counted")
	}
}

func TestNetworkStepAlexNet(t *testing.T) {
	net := cnn.AlexNet(32)
	steps, total, err := NetworkStep(net.Layers, net.Counts, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(net.Layers) {
		t.Fatalf("steps = %d", len(steps))
	}
	if !steps[0].SkipDgrad {
		t.Error("first layer should skip dgrad")
	}
	for _, s := range steps[1:] {
		if s.SkipDgrad {
			t.Error("non-first layer skipped dgrad")
		}
	}
	var fwd float64
	for _, s := range steps {
		fwd += s.Fprop.Seconds
	}
	if total <= fwd {
		t.Errorf("training step %v not above forward-only %v", total, fwd)
	}
	if total > fwd*6 {
		t.Errorf("training step %vx forward time; expected ~3x", total/fwd)
	}
}

func TestWgradSplitK(t *testing.T) {
	// AlexNet conv1's wgrad grid is 1x3 CTAs: split-K must kick in.
	conv1 := layers.Conv{Name: "a1", B: 256, Ci: 3, Hi: 227, Wi: 227, Co: 96, Hf: 11, Wf: 11, Stride: 4}
	st, err := ModelStep(conv1, xp, traffic.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.WgradSplitK <= 1 {
		t.Errorf("conv1 wgrad split = %d, want > 1 (3-CTA grid cannot fill 30 SMs)", st.WgradSplitK)
	}
	// Split-K must not cost more than the unsplit evaluation.
	w, err := WgradLayer(conv1)
	if err != nil {
		t.Fatal(err)
	}
	unsplit, err := traffic.Model(w, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = unsplit
	if st.Wgrad.Seconds > st.Fprop.Seconds*10 {
		t.Errorf("split-K wgrad still pathological: %v vs fprop %v",
			st.Wgrad.Seconds, st.Fprop.Seconds)
	}

	// A wide layer whose wgrad grid already fills the GPU gains little from
	// splitting: a small split may win on CTA-rounding margins, but large
	// splits must not (reduction overhead with no occupancy to recover).
	wide := layers.Conv{Name: "wide", B: 256, Ci: 512, Hi: 14, Wi: 14, Co: 512, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	st2, err := ModelStep(wide, xp, traffic.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if st2.WgradSplitK > 4 {
		t.Errorf("wide wgrad split = %d, want <= 4 (grid already fills the GPU)", st2.WgradSplitK)
	}
	if r := st2.Wgrad.Seconds / st2.Fprop.Seconds; r < 0.5 || r > 2.5 {
		t.Errorf("wide wgrad/fprop = %v, want ~1 (same GEMM volume)", r)
	}
}

func TestNetworkStepCountsMismatch(t *testing.T) {
	if _, _, err := NetworkStep([]layers.Conv{stride1}, []int{1, 2}, xp, traffic.Options{}); err == nil {
		t.Error("counts mismatch accepted")
	}
}

func TestInvalidLayerRejected(t *testing.T) {
	if _, err := DgradLayer(layers.Conv{Name: "bad"}); err == nil {
		t.Error("DgradLayer accepted invalid layer")
	}
	if _, err := WgradLayer(layers.Conv{Name: "bad"}); err == nil {
		t.Error("WgradLayer accepted invalid layer")
	}
}

// TestQuickDgradRoundTrip: for every valid layer, the dgrad conv reproduces
// the forward layer's input extent and its MACs match fprop's when the
// forward output tiles the input exactly.
func TestQuickDgradRoundTrip(t *testing.T) {
	f := func(ci, hw, co, fs, s uint8) bool {
		fsz := 1 + 2*(int(fs)%3)
		l := layers.Conv{
			Name: "q", B: 4, Ci: 1 + int(ci)%64,
			Hi: 8 + int(hw)%48, Wi: 8 + int(hw)%48,
			Co: 1 + int(co)%64, Hf: fsz, Wf: fsz,
			Stride: 1 + int(s)%2, Pad: fsz / 2,
		}
		if l.Validate() != nil {
			return true
		}
		d, err := DgradLayer(l)
		if err != nil {
			return false
		}
		if d.Ci != l.Co || d.Co != l.Ci {
			return false
		}
		// When the stride tiles the padded extent exactly, the gradient
		// conv recovers the full input; otherwise the forward pass ignored
		// up to Stride-1 trailing rows/cols and dgrad recovers the rest.
		if (l.Hi+2*l.Pad-l.Hf)%l.Stride == 0 {
			return d.Ho() == l.Hi && d.Wo() == l.Wi
		}
		return d.Ho() > l.Hi-l.Stride && d.Ho() <= l.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickStepAlwaysCostsMore: the training step strictly dominates the
// forward pass for every layer.
func TestQuickStepAlwaysCostsMore(t *testing.T) {
	f := func(ci, hw, co uint8) bool {
		l := layers.Conv{
			Name: "q", B: 8, Ci: 1 + int(ci)%128,
			Hi: 8 + int(hw)%32, Wi: 8 + int(hw)%32,
			Co: 1 + int(co)%128, Hf: 3, Wf: 3, Stride: 1, Pad: 1,
		}
		if l.Validate() != nil {
			return true
		}
		st, err := ModelStep(l, xp, traffic.Options{}, false)
		if err != nil {
			return false
		}
		return st.Seconds() > st.Fprop.Seconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
