// Package benchkit hosts the canonical serial-vs-parallel simulator
// benchmark bodies, shared by the `go test -bench` harness (bench_test.go)
// and the benchmark-trajectory tool (cmd/delta-bench) so both measure
// exactly the same workloads. The pairs establish the repo's recorded perf
// baseline (BENCH_sim.json):
//
//   - Engine pair: one mid-size layer through the serial reference engine
//     vs the two-phase parallel engine — the intra-layer speedup.
//   - Suite pair: a whole network's layers simulated back to back serially
//     vs fanned across the pipeline worker pool — the experiment-driver
//     speedup (Fig. 4/11/12/17/20 and the ablations all have this shape).
package benchkit

import (
	"context"
	"testing"

	"delta/internal/cnn"
	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/pipeline"
	"delta/internal/scenario"
	"delta/internal/sim/engine"
)

// EngineLayer is the single-layer workload of the engine-level pair: a
// mid-size GoogLeNet-class layer, heavy enough that the wave phases
// dominate per-run setup, small enough for -benchtime runs.
var EngineLayer = layers.Conv{
	Name: "bench", B: 4, Ci: 192, Hi: 28, Wi: 28, Co: 96, Hf: 3, Wf: 3, Stride: 1, Pad: 1,
}

// SuiteBatch is the mini-batch of the suite-level pair (the experiment
// drivers' simulation batch).
const SuiteBatch = 2

// SuiteLayers returns the multi-layer workload of the suite-level pair:
// GoogLeNet's unique conv layers at SuiteBatch, the Fig. 4 corpus.
func SuiteLayers() []layers.Conv {
	return cnn.GoogLeNet(SuiteBatch).Layers
}

// EngineRun is the body of the engine-level pair: one simulation of
// EngineLayer at the given worker count (1 = serial reference, 0 =
// GOMAXPROCS parallel).
func EngineRun(b *testing.B, workers int) {
	EngineRunParts(b, workers, 0)
}

// EngineRunParts is EngineRun with an explicit L2 replay-partition count
// (0/1 = serial replay): the scaling body behind the delta-bench workers
// sweep and the partitioned-replay speedup measurement.
func EngineRunParts(b *testing.B, workers, parts int) {
	b.ReportAllocs()
	d := gpu.TitanXp()
	var sectors uint64
	for i := 0; i < b.N; i++ {
		r, err := engine.Run(EngineLayer, engine.Config{Device: d, Workers: workers, ReplayPartitions: parts})
		if err != nil {
			b.Fatal(err)
		}
		sectors += r.L1Stats.SectorAccesses
	}
	b.ReportMetric(float64(sectors)/float64(b.Elapsed().Nanoseconds())*1e3, "Msectors/s")
}

// SuiteSerial is the body of the suite-level serial baseline: every layer
// simulated back to back on one goroutine (the pre-pipeline experiment
// driver shape).
func SuiteSerial(b *testing.B) {
	b.ReportAllocs()
	d := gpu.TitanXp()
	ls := SuiteLayers()
	for i := 0; i < b.N; i++ {
		for _, l := range ls {
			if _, err := engine.Run(l, engine.Config{Device: d, Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(SuiteLayers())), "layers")
}

// ScenarioSweep returns the canonical scenario-throughput workload: a
// multi-axis analytical sweep (2 networks × 2 devices × 3 models at B=32,
// 12 whole-network points) — the declarative-API shape the /v2 jobs server
// streams.
func ScenarioSweep() scenario.Scenario {
	return scenario.Scenario{
		Name:      "bench",
		Workloads: []scenario.Workload{{Name: "alexnet"}, {Name: "googlenet"}},
		Devices:   []gpu.Device{gpu.TitanXp(), gpu.V100()},
		Batches:   []int{32},
		Models:    []string{scenario.ModelDelta, scenario.ModelPrior, scenario.ModelRoofline},
	}
}

// scenarioStream is the shared body of the scenario-throughput pair: it
// streams ScenarioSweep through the given pipeline per iteration and
// reports end-to-end points/s, the Scenario-API overhead metric recorded
// in BENCH_sim.json.
func scenarioStream(b *testing.B, p *pipeline.Evaluator) {
	b.ReportAllocs()
	sc := ScenarioSweep()
	points := 0
	for i := 0; i < b.N; i++ {
		//lint:ignore ctxflow benchmark harness: *testing.B owns the run lifecycle
		upds, err := p.RunScenario(context.Background(), sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(upds) != sc.Size() {
			b.Fatalf("streamed %d points, want %d", len(upds), sc.Size())
		}
		points += len(upds)
	}
	b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
}

// ScenarioStream measures the cold path: a cacheless pipeline, so every
// point's layers are really evaluated.
func ScenarioStream(b *testing.B) {
	scenarioStream(b, pipeline.New(pipeline.WithoutCache()))
}

// ScenarioStreamCached measures the steady-state serving shape: a warm
// shared evaluator answering every point from the memo cache, isolating
// pure expansion + ordering + streaming overhead.
func ScenarioStreamCached(b *testing.B) {
	p := pipeline.New()
	//lint:ignore ctxflow benchmark harness: *testing.B owns the run lifecycle
	if _, err := p.RunScenario(context.Background(), ScenarioSweep()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	scenarioStream(b, p)
}

// SuiteParallel is the body of the suite-level parallel run: the same
// layers fanned across a cacheless pipeline (every layer really simulates,
// isolating the worker-pool fan-out; stream sharing is disabled so the
// pair measures fan-out alone — the stream tier has its own pair below).
func SuiteParallel(b *testing.B) {
	b.ReportAllocs()
	cfg := engine.Config{Device: gpu.TitanXp()}
	ls := SuiteLayers()
	p := pipeline.New(pipeline.WithoutCache(), pipeline.WithoutStreamSharing())
	for i := 0; i < b.N; i++ {
		//lint:ignore ctxflow benchmark harness: *testing.B owns the run lifecycle
		if _, err := p.SimulateLayers(context.Background(), ls, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ls)), "layers")
}

// StreamSweepPoints is the number of adjacent sweep points in the
// stream-sharing pair: same layers and coalescing geometry, different L2
// capacity — the shape where the shared stream tier should serve every
// stream after the first point generates it.
const StreamSweepPoints = 3

// streamSweep is the shared body of the stream-sharing pair: one L2
// capacity sweep (StreamSweepPoints adjacent points over the suite layers)
// through a fresh cacheless pipeline per iteration, so the tier starts
// cold each sweep and the measurement includes its fill cost.
func streamSweep(b *testing.B, share bool) {
	b.ReportAllocs()
	ls := SuiteLayers()
	opts := []pipeline.Option{pipeline.WithoutCache()}
	if !share {
		opts = append(opts, pipeline.WithoutStreamSharing())
	}
	for i := 0; i < b.N; i++ {
		p := pipeline.New(opts...)
		for pt := 0; pt < StreamSweepPoints; pt++ {
			d := gpu.TitanXp()
			d.L2SizeMB += float64(pt) // capacity varies, geometry doesn't
			cfg := engine.Config{Device: d}
			//lint:ignore ctxflow benchmark harness: *testing.B owns the run lifecycle
			if _, err := p.SimulateLayers(context.Background(), ls, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(StreamSweepPoints, "points")
}

// StreamSweepPrivate measures the capacity sweep with per-run private
// stream generation (the pre-tier behaviour).
func StreamSweepPrivate(b *testing.B) { streamSweep(b, false) }

// StreamSweepShared measures the same sweep with the shared stream tier:
// the stream_shared_vs_private ratio in BENCH_sim.json is Private ns over
// Shared ns.
func StreamSweepShared(b *testing.B) { streamSweep(b, true) }
