// Fleet-vs-single benchmark body: the distributed shape of the
// scenario-throughput benchmark. ScenarioSweep is sharded over in-process
// HTTP workers (cluster.ShardHandler over a cacheless pipeline each, the
// same evaluator shape ScenarioStream measures) and merged back by a
// coordinator, so the BENCH_sim.json fleet_vs_single ratio records what
// the HTTP + SSE + merge overhead costs — or what fleet parallelism pays —
// relative to a single node on the identical workload.
package benchkit

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"testing"

	"delta/internal/cluster"
	"delta/internal/pipeline"
	"delta/internal/spec"
)

// FleetWorkers is the in-process worker count of the fleet-vs-single pair.
const FleetWorkers = 2

// fleetScenarioDoc is ScenarioSweep spelled as the spec document workers
// decode (kept in sync with ScenarioSweep's axes).
const fleetScenarioDoc = `{
  "name": "bench",
  "workloads": [{"network": "alexnet"}, {"network": "googlenet"}],
  "devices": [{"name": "TITAN Xp"}, {"name": "V100"}],
  "batches": [32],
  "models": ["delta", "prior", "roofline"]
}`

// FleetSweep streams the canonical multi-axis sweep through a coordinator
// fronting FleetWorkers shard-serving workers, reporting merged end-to-end
// points/s.
func FleetSweep(b *testing.B) {
	b.ReportAllocs()
	sc, err := spec.ReadScenario(strings.NewReader(fleetScenarioDoc))
	if err != nil {
		b.Fatal(err)
	}
	peers := make([]string, FleetWorkers)
	for i := range peers {
		ts := httptest.NewServer(&cluster.ShardHandler{
			Eval: pipeline.New(pipeline.WithoutCache()),
		})
		defer ts.Close()
		peers[i] = ts.URL
	}
	coord, err := cluster.New(cluster.Config{
		Peers: peers,
		Log:   log.New(io.Discard, "", 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	doc := json.RawMessage(fleetScenarioDoc)
	points := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		//lint:ignore ctxflow benchmark harness: *testing.B owns the run lifecycle
		err := coord.Run(context.Background(), cluster.Sweep{
			Doc: doc, Scenario: sc, Policy: pipeline.CollectPartial,
		}, func(cluster.Update) error { n++; return nil })
		if err != nil {
			b.Fatal(err)
		}
		if n != sc.Size() {
			b.Fatalf("merged %d points, want %d", n, sc.Size())
		}
		points += n
	}
	b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
}
