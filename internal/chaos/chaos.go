// Package chaos is a seeded, deterministic fault-injection layer for the
// fleet's network paths — the transport-level counterpart of the storage
// faults in internal/durable (FlakySink, CorruptWAL). An Injector holds a
// rule set and a PRNG seeded once at construction; every potential
// injection consults the same PRNG under one lock, so the same seed over
// the same request sequence injects the same fault sequence — a failed
// chaos run replays identically from its seed.
//
// Two surfaces share the rule engine:
//
//   - Transport wraps an http.RoundTripper (client side — wrap the
//     coordinator's HTTP client in tests) and can refuse connections,
//     answer synthetic 5xx, delay the dial / first byte / every SSE
//     frame, cut the response body mid-stream, and truncate or corrupt
//     individual SSE frames.
//
//   - Listener wraps a net.Listener (server side — the delta-server
//     -chaos flag) and injects the same faults into accepted
//     connections: refusal (immediate close), raw 5xx answers, read/write
//     latency, and frame-level cut/truncate/corrupt on the outbound
//     stream.
//
// Rules match on peer (host substring) and path (prefix) and are
// scheduled by matching-request count (AfterRequests/ForRequests), by
// elapsed time since the injector started (AfterMS/ForMS), bounded by a
// total injection Count, and gated by Prob through the seeded PRNG.
// Every injection is appended to an event log (Events) so tests can
// assert that two runs with one seed provoked the identical sequence.
package chaos

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"math/rand"
)

// SeedEnv is the environment variable every chaos-style fault injector in
// this repo honors for deterministic replay: internal/chaos specs whose
// seed is 0, and internal/durable.FlakySink's probabilistic mode. Set it
// to an integer to replay a failed run's exact fault sequence.
const SeedEnv = "DELTA_CHAOS_SEED"

// Seed resolves the effective PRNG seed: an explicit non-zero seed wins,
// then a parseable SeedEnv value, then the fallback 1 — never wall-clock
// time, so an unconfigured run is still reproducible.
func Seed(explicit int64) int64 {
	if explicit != 0 {
		return explicit
	}
	if v := os.Getenv(SeedEnv); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n != 0 {
			return n
		}
	}
	return 1
}

// Fault names the injected failure modes.
const (
	// FaultRefuse refuses the connection: the transport errors without
	// issuing the request; the listener closes the accepted conn before a
	// byte is exchanged.
	FaultRefuse = "refuse"

	// FaultStatus answers a synthetic HTTP error (Rule.Status, default
	// 503) instead of the real response.
	FaultStatus = "status"

	// FaultLatency delays the request at Rule.Where: "dial" (before the
	// request / first read), "first_byte" (before the response body's
	// first byte), or "frame" (before every SSE frame).
	FaultLatency = "latency"

	// FaultCut drops the stream after Rule.AfterFrames complete frames —
	// a mid-stream connection loss with whole frames on the wire.
	FaultCut = "cut"

	// FaultTruncate drops the stream partway through frame
	// Rule.AfterFrames — a torn frame, the SSE analogue of a torn WAL
	// append.
	FaultTruncate = "truncate"

	// FaultCorrupt flips a byte near the tail of frame Rule.AfterFrames
	// (the JSON payload's closing bytes) and lets the stream continue.
	FaultCorrupt = "corrupt"
)

// Rule is one fault-injection rule. The zero scheduling fields mean
// "always armed, unlimited, probability 1".
type Rule struct {
	// Fault is one of the Fault* constants; required.
	Fault string `json:"fault"`

	// Peer restricts the rule to requests whose host contains this
	// substring (transport only; listener rules see no peer).
	Peer string `json:"peer,omitempty"`

	// Path restricts the rule to request paths with this prefix. On the
	// listener, path-matched rules apply to stream faults and latency
	// (the request line is sniffed from the inbound bytes); accept-time
	// faults (refuse, status) fire only from rules with no Path.
	Path string `json:"path,omitempty"`

	// AfterRequests arms the rule after this many matching requests have
	// been seen (the fault starts on request AfterRequests+1).
	AfterRequests int `json:"after_requests,omitempty"`

	// ForRequests disarms the rule after this many further matching
	// requests (0 = stays armed).
	ForRequests int `json:"for_requests,omitempty"`

	// AfterMS arms the rule this many milliseconds after the injector
	// started; ForMS disarms it that many milliseconds later (0 = stays
	// armed).
	AfterMS int `json:"after_ms,omitempty"`
	ForMS   int `json:"for_ms,omitempty"`

	// Count bounds total injections from this rule (0 = unlimited).
	Count int `json:"count,omitempty"`

	// Prob is the injection probability once armed, drawn from the
	// injector's seeded PRNG (0 means 1.0 — deterministic rules need no
	// dice).
	Prob float64 `json:"prob,omitempty"`

	// Status is the synthetic response code for FaultStatus (default 503).
	Status int `json:"status,omitempty"`

	// LatencyMS is the injected delay for FaultLatency.
	LatencyMS int `json:"latency_ms,omitempty"`

	// Where sites the latency: "dial", "first_byte" (default), "frame".
	Where string `json:"where,omitempty"`

	// AfterFrames is the 0-based frame index FaultCut/Truncate/Corrupt
	// target (cut: after this many complete frames; truncate/corrupt:
	// within frame AfterFrames). Frames are wire frames — keep-alive
	// comments count.
	AfterFrames int `json:"after_frames,omitempty"`
}

func (r Rule) validate() error {
	switch r.Fault {
	case FaultRefuse, FaultStatus, FaultCut, FaultTruncate, FaultCorrupt:
	case FaultLatency:
		if r.LatencyMS <= 0 {
			return fmt.Errorf("chaos: latency rule needs latency_ms > 0")
		}
		switch r.Where {
		case "", "dial", "first_byte", "frame":
		default:
			return fmt.Errorf("chaos: unknown latency site %q (want dial, first_byte, or frame)", r.Where)
		}
	case "":
		return fmt.Errorf("chaos: rule missing fault")
	default:
		return fmt.Errorf("chaos: unknown fault %q", r.Fault)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("chaos: prob %v out of [0, 1]", r.Prob)
	}
	return nil
}

// Spec is the JSON document behind the delta-server -chaos flag.
type Spec struct {
	// Seed drives the injector PRNG; 0 falls back to $DELTA_CHAOS_SEED,
	// then 1 (see Seed).
	Seed int64 `json:"seed,omitempty"`

	// Rules are applied independently; several may fire on one request.
	Rules []Rule `json:"rules"`
}

// ruleState is one rule plus its scheduling counters.
type ruleState struct {
	Rule
	matched  int // matching requests seen
	injected int // injections fired
}

// fault is one planned injection for a single request/connection.
type fault struct {
	Rule
	seq int
}

// Injector owns the rule set, the seeded PRNG, and the event log. One
// Injector serves any number of Transports and Listeners; all share the
// same deterministic schedule.
type Injector struct {
	mu     sync.Mutex
	rules  []*ruleState
	rng    *rand.Rand
	start  time.Time
	seq    int
	events []string

	// log receives one line per injection; nil disables. Set via Logf.
	log func(format string, args ...any)

	// now/sleep are test seams; real time when sleep is nil. A non-nil
	// sleep is honored verbatim (tests capture exact durations), bypassing
	// the context-aware early wake of pause.
	now   func() time.Time
	sleep func(time.Duration)
}

// doSleep waits d through the seam or real time (server-side paths with no
// request context).
func (inj *Injector) doSleep(d time.Duration) {
	if inj.sleep != nil {
		inj.sleep(d)
		return
	}
	time.Sleep(d)
}

// pause waits d but wakes early when ctx ends: injected latency must delay
// a live request, not hold a cancelled one hostage.
func (inj *Injector) pause(ctx context.Context, d time.Duration) {
	if inj.sleep != nil {
		inj.sleep(d)
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}

// New builds an Injector from a validated spec.
func New(spec Spec) (*Injector, error) {
	for i, r := range spec.Rules {
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("%w (rule %d)", err, i)
		}
	}
	inj := &Injector{
		rng: rand.New(rand.NewSource(Seed(spec.Seed))),
		now: time.Now,
	}
	inj.start = inj.now()
	for _, r := range spec.Rules {
		inj.rules = append(inj.rules, &ruleState{Rule: r})
	}
	return inj, nil
}

// MustNew is New for specs known valid at compile time (tests).
func MustNew(spec Spec) *Injector {
	inj, err := New(spec)
	if err != nil {
		panic(err)
	}
	return inj
}

// Logf directs a copy of every injection event to printf (e.g.
// log.Printf), so server logs show the injected sequence.
func (inj *Injector) Logf(printf func(format string, args ...any)) {
	inj.mu.Lock()
	inj.log = printf
	inj.mu.Unlock()
}

// Events returns the injected-fault log so far: one line per injection in
// order, identical across runs with the same seed and request sequence.
func (inj *Injector) Events() []string {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]string(nil), inj.events...)
}

// plan decides which faults fire for one request/connection against peer
// and path ("" matches only rules without the corresponding selector for
// path — see Rule.Path; an empty peer matches every Peer selector-free
// rule). All counter movement and PRNG draws happen here, under one lock,
// in rule order — the determinism contract.
func (inj *Injector) plan(peer, path string, sniffed bool) []fault {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	elapsed := inj.now().Sub(inj.start)
	var out []fault
	for _, rs := range inj.rules {
		if rs.Peer != "" && !containsStr(peer, rs.Peer) {
			continue
		}
		if rs.Path != "" && (path == "" || !hasPrefixStr(path, rs.Path)) {
			continue
		}
		if rs.Path == "" && sniffed {
			// Path-free rules were already given their chance at accept
			// time; do not double-count them on the sniff pass.
			continue
		}
		rs.matched++
		if rs.matched <= rs.AfterRequests {
			continue
		}
		if rs.ForRequests > 0 && rs.matched > rs.AfterRequests+rs.ForRequests {
			continue
		}
		if ms := int(elapsed / time.Millisecond); ms < rs.AfterMS ||
			(rs.ForMS > 0 && ms >= rs.AfterMS+rs.ForMS) {
			continue
		}
		if rs.Count > 0 && rs.injected >= rs.Count {
			continue
		}
		if rs.Prob > 0 && rs.Prob < 1 && inj.rng.Float64() >= rs.Prob {
			continue
		}
		rs.injected++
		inj.seq++
		f := fault{Rule: rs.Rule, seq: inj.seq}
		ev := fmt.Sprintf("#%d %s peer=%s path=%s", f.seq, describeRule(rs.Rule), peer, path)
		inj.events = append(inj.events, ev)
		if inj.log != nil {
			inj.log("chaos: inject %s", ev)
		}
		out = append(out, f)
	}
	return out
}

func describeRule(r Rule) string {
	switch r.Fault {
	case FaultStatus:
		return fmt.Sprintf("status=%d", statusOf(r))
	case FaultLatency:
		where := r.Where
		if where == "" {
			where = "first_byte"
		}
		return fmt.Sprintf("latency=%dms@%s", r.LatencyMS, where)
	case FaultCut, FaultTruncate, FaultCorrupt:
		return fmt.Sprintf("%s@frame%d", r.Fault, r.AfterFrames)
	default:
		return r.Fault
	}
}

func statusOf(r Rule) int {
	if r.Status >= 400 {
		return r.Status
	}
	return 503
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func hasPrefixStr(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
