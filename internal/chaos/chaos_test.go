package chaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseBody writes n SSE result frames plus a done frame, the wire shape
// internal/cluster's worker produces.
func sseBody(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "event: result\nid: %d\ndata: {\"index\": %d, \"payload\": \"p%d\"}\n\n", i, i, i)
	}
	fmt.Fprintf(&b, "event: done\ndata: {\"count\": %d}\n\n", n)
	return b.String()
}

func sseServer(t *testing.T, frames int) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		body := sseBody(frames)
		for _, frame := range strings.SplitAfter(body, "\n\n") {
			if frame == "" {
				continue
			}
			io.WriteString(w, frame)
			fl.Flush()
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, cl *http.Client, url string) (int, string, error) {
	t.Helper()
	res, err := cl.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	return res.StatusCode, string(b), err
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec(`{"seed": 7, "rules": [{"fault": "refuse", "count": 2}]}`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 7 || len(spec.Rules) != 1 || spec.Rules[0].Fault != FaultRefuse {
		t.Fatalf("parsed %+v", spec)
	}

	// Bare rule-list shorthand.
	spec, err = ParseSpec(`[{"fault": "latency", "latency_ms": 5}]`)
	if err != nil || len(spec.Rules) != 1 {
		t.Fatalf("shorthand: %v %+v", err, spec)
	}

	// @file spelling.
	f := t.TempDir() + "/spec.json"
	os.WriteFile(f, []byte(`{"rules": [{"fault": "cut", "path": "/v2/shards"}]}`), 0o644)
	spec, err = ParseSpec("@" + f)
	if err != nil || spec.Rules[0].Path != "/v2/shards" {
		t.Fatalf("@file: %v %+v", err, spec)
	}

	for _, bad := range []string{
		`{"rules": []}`,
		`{"rules": [{"fault": "nope"}]}`,
		`{"rules": [{"fault": "latency"}]}`,
		`{"rules": [{"fault": "refuse", "prob": 1.5}]}`,
		`@/does/not/exist`,
		`{broken`,
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSeedResolution(t *testing.T) {
	if got := Seed(42); got != 42 {
		t.Fatalf("explicit seed: %d", got)
	}
	t.Setenv(SeedEnv, "99")
	if got := Seed(0); got != 99 {
		t.Fatalf("env seed: %d", got)
	}
	if got := Seed(42); got != 42 {
		t.Fatalf("explicit beats env: %d", got)
	}
	t.Setenv(SeedEnv, "not-a-number")
	if got := Seed(0); got != 1 {
		t.Fatalf("fallback seed: %d", got)
	}
}

func TestTransportRefuseAndStatus(t *testing.T) {
	srv := sseServer(t, 2)
	inj := MustNew(Spec{Rules: []Rule{
		{Fault: FaultRefuse, Count: 1},
		{Fault: FaultStatus, AfterRequests: 1, Count: 1, Status: 502},
	}})
	cl := &http.Client{Transport: inj.Transport(nil)}

	if _, _, err := get(t, cl, srv.URL); err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("want refusal, got %v", err)
	}
	code, body, err := get(t, cl, srv.URL)
	if err != nil || code != 502 {
		t.Fatalf("want synthetic 502, got %d %v", code, err)
	}
	if !strings.Contains(body, "chaos") {
		t.Fatalf("synthetic body %q", body)
	}
	if code, _, err := get(t, cl, srv.URL); err != nil || code != 200 {
		t.Fatalf("rules exhausted, want clean 200, got %d %v", code, err)
	}
	ev := inj.Events()
	if len(ev) != 2 || !strings.Contains(ev[0], "refuse") || !strings.Contains(ev[1], "status=502") {
		t.Fatalf("events %v", ev)
	}
}

func TestTransportCut(t *testing.T) {
	srv := sseServer(t, 4)
	inj := MustNew(Spec{Rules: []Rule{{Fault: FaultCut, AfterFrames: 2}}})
	cl := &http.Client{Transport: inj.Transport(nil)}

	res, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != io.ErrUnexpectedEOF && !strings.Contains(fmt.Sprint(err), "unexpected EOF") {
		t.Fatalf("want unexpected EOF, got %v", err)
	}
	got := string(b)
	if n := strings.Count(got, "\n\n"); n != 2 {
		t.Fatalf("want 2 complete frames before cut, got %d:\n%s", n, got)
	}
}

func TestTransportTruncate(t *testing.T) {
	srv := sseServer(t, 3)
	inj := MustNew(Spec{Rules: []Rule{{Fault: FaultTruncate, AfterFrames: 1}}})
	cl := &http.Client{Transport: inj.Transport(nil)}

	res, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("truncate should read as clean EOF, got %v", err)
	}
	got := string(b)
	if n := strings.Count(got, "\n\n"); n != 1 {
		t.Fatalf("want 1 complete frame then torn tail, got %d:\n%s", n, got)
	}
	if strings.HasSuffix(got, "\n\n") {
		t.Fatalf("tail not torn:\n%s", got)
	}
}

func TestTransportCorrupt(t *testing.T) {
	srv := sseServer(t, 3)
	inj := MustNew(Spec{Rules: []Rule{{Fault: FaultCorrupt, AfterFrames: 1}}})
	cl := &http.Client{Transport: inj.Transport(nil)}

	_, got, err := get(t, cl, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	clean := sseBody(3)
	if got == clean {
		t.Fatal("stream passed through uncorrupted")
	}
	if len(got) != len(clean) {
		t.Fatalf("corruption changed length: %d != %d", len(got), len(clean))
	}
	frames := strings.SplitAfter(got, "\n\n")
	if frames[0] != strings.SplitAfter(clean, "\n\n")[0] {
		t.Fatal("frame 0 touched")
	}
	if frames[1] == strings.SplitAfter(clean, "\n\n")[1] {
		t.Fatal("frame 1 not corrupted")
	}
}

func TestTransportLatencySites(t *testing.T) {
	srv := sseServer(t, 2)
	inj := MustNew(Spec{Rules: []Rule{
		{Fault: FaultLatency, Where: "dial", LatencyMS: 7, Count: 1},
		{Fault: FaultLatency, Where: "frame", LatencyMS: 3, AfterRequests: 1},
	}})
	var mu sync.Mutex
	var slept []time.Duration
	inj.sleep = func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	}
	cl := &http.Client{Transport: inj.Transport(nil)}

	if _, _, err := get(t, cl, srv.URL); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 7*time.Millisecond {
		t.Fatalf("dial latency slept %v", slept)
	}
	slept = nil
	if _, _, err := get(t, cl, srv.URL); err != nil {
		t.Fatal(err)
	}
	// 2 result frames + 1 done frame, each delayed.
	if len(slept) != 3 || slept[0] != 3*time.Millisecond {
		t.Fatalf("frame latency slept %v", slept)
	}
}

func TestSchedulingWindows(t *testing.T) {
	inj := MustNew(Spec{Rules: []Rule{
		{Fault: FaultRefuse, AfterRequests: 2, ForRequests: 2},
	}})
	var fired []bool
	for i := 0; i < 6; i++ {
		fired = append(fired, len(inj.plan("w1", "/x", false)) > 0)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("request %d: fired=%v want %v (%v)", i, fired[i], want[i], fired)
		}
	}

	// Elapsed-time window via the now seam.
	inj = MustNew(Spec{Rules: []Rule{{Fault: FaultRefuse, AfterMS: 100, ForMS: 100}}})
	base := time.Unix(0, 0)
	inj.start = base
	for i, tc := range []struct {
		at   time.Duration
		want bool
	}{{0, false}, {50 * time.Millisecond, false}, {150 * time.Millisecond, true}, {250 * time.Millisecond, false}} {
		inj.now = func() time.Time { return base.Add(tc.at) }
		if got := len(inj.plan("", "", false)) > 0; got != tc.want {
			t.Fatalf("probe %d at %v: fired=%v want %v", i, tc.at, got, tc.want)
		}
	}
}

func TestSelectorMatching(t *testing.T) {
	inj := MustNew(Spec{Rules: []Rule{
		{Fault: FaultRefuse, Peer: "18091", Path: "/v2/shards"},
	}})
	if len(inj.plan("127.0.0.1:18092", "/v2/shards", false)) != 0 {
		t.Fatal("wrong peer matched")
	}
	if len(inj.plan("127.0.0.1:18091", "/healthz", false)) != 0 {
		t.Fatal("wrong path matched")
	}
	if len(inj.plan("127.0.0.1:18091", "/v2/shards", false)) != 1 {
		t.Fatal("exact match missed")
	}
}

func TestSeededReplayIdentical(t *testing.T) {
	run := func() []string {
		inj := MustNew(Spec{Seed: 1234, Rules: []Rule{
			{Fault: FaultRefuse, Prob: 0.5},
			{Fault: FaultStatus, Prob: 0.3},
		}})
		for i := 0; i < 40; i++ {
			inj.plan("w1", "/v2/shards", false)
		}
		return inj.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no events fired at all")
	}
	if len(a) != len(b) {
		t.Fatalf("replay lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}

	// A different seed must yield a different schedule.
	inj := MustNew(Spec{Seed: 4321, Rules: []Rule{
		{Fault: FaultRefuse, Prob: 0.5},
		{Fault: FaultStatus, Prob: 0.3},
	}})
	for i := 0; i < 40; i++ {
		inj.plan("w1", "/v2/shards", false)
	}
	c := inj.Events()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestListenerFaults(t *testing.T) {
	inj := MustNew(Spec{Rules: []Rule{
		{Fault: FaultRefuse, Count: 1},
		{Fault: FaultStatus, AfterRequests: 1, Count: 1},
		{Fault: FaultCut, Path: "/stream", AfterFrames: 1, Count: 1},
	}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/stream" {
			io.WriteString(w, "ok")
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		for _, frame := range strings.SplitAfter(sseBody(4), "\n\n") {
			if frame == "" {
				continue
			}
			io.WriteString(w, frame)
			fl.Flush()
		}
	})}
	go srv.Serve(inj.Listener(ln))
	t.Cleanup(func() { srv.Close() })
	base := "http://" + ln.Addr().String()

	// Disable keep-alive so each request opens a fresh connection and
	// the accept-level rules see them in order.
	cl := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	// Request 1: accept-level refusal — the conn dies before HTTP.
	if _, _, err := get(t, cl, base+"/plain"); err == nil {
		t.Fatal("refused accept still answered")
	}
	// Request 2: raw synthetic 503.
	code, body, err := get(t, cl, base+"/plain")
	if err != nil || code != 503 || !strings.Contains(body, "chaos") {
		t.Fatalf("want raw 503, got %d %q %v", code, body, err)
	}
	// Request 3: clean — rule budget spent, path rule doesn't match.
	if code, body, err := get(t, cl, base+"/plain"); err != nil || code != 200 || body != "ok" {
		t.Fatalf("want clean 200, got %d %q %v", code, body, err)
	}
	// Request 4: stream cut after 1 frame on the matched path.
	res, err := cl.Get(base + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	b, rerr := io.ReadAll(res.Body)
	res.Body.Close()
	if rerr == nil {
		t.Fatalf("cut stream read cleanly: %q", b)
	}
	if n := strings.Count(string(b), "\n\n"); n > 1 {
		t.Fatalf("want at most 1 frame before cut, got %d", n)
	}
}

func TestFrameFilterAcrossChunks(t *testing.T) {
	// Frames arriving byte by byte must still be counted and corrupted
	// exactly once.
	ff := &frameFilter{plan: streamPlan{cutAfter: -1, truncAt: -1, corruptAt: 1}, sleep: func(time.Duration) {}}
	in := sseBody(3)
	var out []byte
	for i := 0; i < len(in); i++ {
		o, err := ff.process([]byte{in[i]}, i == len(in)-1)
		if err != nil {
			t.Fatalf("unexpected filter error %v", err)
		}
		out = append(out, o...)
	}
	if string(out) == in {
		t.Fatal("no corruption applied")
	}
	if len(out) != len(in) {
		t.Fatalf("length changed %d -> %d", len(in), len(out))
	}
}
