package chaos

import (
	"net"
	"time"
)

// Listener wraps base so accepted connections pass through the
// injector's rules — the server-side surface behind delta-server's
// -chaos flag. Rules without a Path are evaluated once per accepted
// connection (refuse closes it immediately; status answers a raw HTTP
// error and closes; latency and stream faults attach to the
// connection). Rules with a Path are evaluated per HTTP request: the
// request line is sniffed from the inbound bytes — including follow-up
// requests on a kept-alive connection — so faults can target /v2/shards
// without touching /healthz probes.
func (inj *Injector) Listener(base net.Listener) net.Listener {
	return &listener{inj: inj, base: base}
}

type listener struct {
	inj  *Injector
	base net.Listener
}

func (l *listener) Addr() net.Addr { return l.base.Addr() }
func (l *listener) Close() error   { return l.base.Close() }

func (l *listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.base.Accept()
		if err != nil {
			return nil, err
		}
		plan := splitFaults(l.inj.plan("", "", false))
		if plan.refuse {
			conn.Close()
			continue
		}
		// A synthetic status is answered from Read once the request
		// arrives — writing before the client speaks would look like an
		// unsolicited response on an idle connection.
		return &chaosConn{Conn: conn, inj: l.inj, accept: plan, plan: plan}, nil
	}
}

func writeRawStatus(conn net.Conn, status int) {
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	body := "chaos injected\n"
	head := "HTTP/1.1 " + itoa(status) + " Service Unavailable\r\n" +
		"Content-Type: text/plain\r\n" +
		"Content-Length: " + itoa(len(body)) + "\r\n" +
		"Connection: close\r\n\r\n"
	conn.Write([]byte(head + body))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// chaosConn applies stream plans to one accepted connection. Each
// sniffed HTTP request line starts a fresh exchange: path-matched rules
// are planned for it and merged over the accept-time plan, and the
// write-side frame filter restarts so frame indices are per-response.
type chaosConn struct {
	net.Conn
	inj    *Injector
	accept streamPlan // connection-level plan from accept time
	plan   streamPlan // current exchange's plan

	responded bool // first write of the current exchange already seen
	filter    *frameFilter
}

func (c *chaosConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && looksLikeRequest(p[:n]) {
		c.plan = c.accept
		c.responded = false
		c.filter = nil
		if path := sniffPath(p[:n]); path != "" {
			more := splitFaults(c.inj.plan("", path, true))
			if more.refuse {
				c.Conn.Close()
				return 0, net.ErrClosed
			}
			c.plan = mergePlans(c.plan, more)
		}
		if c.plan.refuse {
			c.Conn.Close()
			return 0, net.ErrClosed
		}
		if c.plan.status != 0 {
			writeRawStatus(c.Conn, c.plan.status)
			c.Conn.Close()
			return 0, net.ErrClosed
		}
		if c.plan.dial > 0 {
			c.inj.doSleep(c.plan.dial)
		}
	}
	return n, err
}

func (c *chaosConn) Write(p []byte) (int, error) {
	if !c.responded {
		c.responded = true
		if c.plan.firstByte > 0 {
			c.inj.doSleep(c.plan.firstByte)
		}
		c.filter = c.plan.filter(c.inj.doSleep)
	}
	if c.filter == nil {
		return c.Conn.Write(p)
	}
	out, ferr := c.filter.process(p, false)
	if len(out) > 0 {
		if _, werr := c.Conn.Write(out); werr != nil {
			return 0, werr
		}
	}
	if ferr != nil {
		// Cut or torn frame: drop the connection under the server's
		// feet. Report p as written so the handler fails on a later
		// write, like a real half-broken socket.
		c.Conn.Close()
	}
	return len(p), nil
}

// looksLikeRequest reports whether a read chunk begins with an HTTP
// request line — how each new exchange on a (possibly kept-alive)
// connection announces itself.
func looksLikeRequest(b []byte) bool {
	for _, m := range [...]string{"GET ", "POST ", "PUT ", "HEAD ", "DELETE ", "PATCH ", "OPTIONS "} {
		if len(b) >= len(m) && string(b[:len(m)]) == m {
			return true
		}
	}
	return false
}

// sniffPath extracts the request path from an HTTP/1.x request line
// ("POST /v2/shards HTTP/1.1\r\n...") when the whole line sits in the
// first read; returns "" otherwise.
func sniffPath(b []byte) string {
	sp1 := -1
	for i, c := range b {
		if c == '\r' || c == '\n' {
			return ""
		}
		if c != ' ' {
			continue
		}
		if sp1 < 0 {
			sp1 = i
			continue
		}
		if b[sp1+1] != '/' {
			return ""
		}
		return string(b[sp1+1 : i])
	}
	return ""
}

func mergePlans(a, b streamPlan) streamPlan {
	a.refuse = a.refuse || b.refuse
	if b.status != 0 {
		a.status = b.status
	}
	a.dial += b.dial
	a.firstByte += b.firstByte
	a.frameLat += b.frameLat
	if b.cutAfter >= 0 {
		a.cutAfter = b.cutAfter
	}
	if b.truncAt >= 0 {
		a.truncAt = b.truncAt
	}
	if b.corruptAt >= 0 {
		a.corruptAt = b.corruptAt
	}
	return a
}
