package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ParseSpec parses the -chaos flag value: inline JSON (`{"rules": [...]}`)
// or `@path/to/spec.json`. A bare rule list (`[{"fault": ...}]`) is also
// accepted as shorthand for a spec with only rules.
func ParseSpec(s string) (Spec, error) {
	raw := strings.TrimSpace(s)
	if strings.HasPrefix(raw, "@") {
		b, err := os.ReadFile(raw[1:])
		if err != nil {
			return Spec{}, fmt.Errorf("chaos: read spec: %w", err)
		}
		raw = strings.TrimSpace(string(b))
	}
	var spec Spec
	if strings.HasPrefix(raw, "[") {
		if err := json.Unmarshal([]byte(raw), &spec.Rules); err != nil {
			return Spec{}, fmt.Errorf("chaos: parse rules: %w", err)
		}
	} else if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		return Spec{}, fmt.Errorf("chaos: parse spec: %w", err)
	}
	if len(spec.Rules) == 0 {
		return Spec{}, fmt.Errorf("chaos: spec has no rules")
	}
	for i, r := range spec.Rules {
		if err := r.validate(); err != nil {
			return Spec{}, fmt.Errorf("%w (rule %d)", err, i)
		}
	}
	return spec, nil
}
