package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport wraps base (nil = http.DefaultTransport) so every request
// consults the injector's rules. Wrap an http.Client's Transport with it
// to inject faults from the client side — the in-process fleet tests wrap
// the coordinator's client.
func (inj *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{inj: inj, base: base}
}

type transport struct {
	inj  *Injector
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	faults := t.inj.plan(req.URL.Host, req.URL.Path, false)
	plan := splitFaults(faults)

	if plan.refuse {
		return nil, fmt.Errorf("chaos: connection refused (%s)", req.URL.Host)
	}
	// All client-side waits watch the request context: injected latency
	// delays a live request but releases a cancelled one immediately.
	sleep := func(d time.Duration) { t.inj.pause(req.Context(), d) }
	if plan.dial > 0 {
		sleep(plan.dial)
	}
	if plan.status != 0 {
		return &http.Response{
			Status:     fmt.Sprintf("%d chaos", plan.status),
			StatusCode: plan.status,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("chaos injected\n")),
			Request:    req,
		}, nil
	}

	res, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if plan.firstByte > 0 {
		sleep(plan.firstByte)
	}
	if f := plan.filter(sleep); f != nil {
		res.Body = &filterReadCloser{src: res.Body, f: f}
	}
	return res, nil
}

// streamPlan is the per-request resolution of all fired faults into one
// action set, applied in precedence order: refuse > status > latency >
// stream surgery.
type streamPlan struct {
	refuse    bool
	status    int
	dial      time.Duration
	firstByte time.Duration
	frameLat  time.Duration
	cutAfter  int // complete frames delivered before the cut; -1 = off
	truncAt   int // frame index delivered torn; -1 = off
	corruptAt int // frame index with a flipped payload byte; -1 = off
}

func splitFaults(faults []fault) streamPlan {
	p := streamPlan{cutAfter: -1, truncAt: -1, corruptAt: -1}
	for _, f := range faults {
		switch f.Fault {
		case FaultRefuse:
			p.refuse = true
		case FaultStatus:
			p.status = statusOf(f.Rule)
		case FaultLatency:
			d := time.Duration(f.LatencyMS) * time.Millisecond
			switch f.Where {
			case "dial":
				p.dial += d
			case "frame":
				p.frameLat += d
			default: // "", "first_byte"
				p.firstByte += d
			}
		case FaultCut:
			p.cutAfter = f.AfterFrames
		case FaultTruncate:
			p.truncAt = f.AfterFrames
		case FaultCorrupt:
			p.corruptAt = f.AfterFrames
		}
	}
	return p
}

// filter builds the SSE-frame surgeon for this plan, or nil when the plan
// needs none.
func (p streamPlan) filter(sleep func(time.Duration)) *frameFilter {
	if p.frameLat == 0 && p.cutAfter < 0 && p.truncAt < 0 && p.corruptAt < 0 {
		return nil
	}
	return &frameFilter{plan: p, sleep: sleep}
}

// Sentinel errors a frameFilter raises when it terminates a stream. The
// read side maps them onto connection-loss errors; the write side closes
// the connection.
var (
	errCut      = fmt.Errorf("chaos: stream cut")
	errTruncate = fmt.Errorf("chaos: stream truncated")
)

// frameFilter performs frame surgery on a byte stream carrying SSE
// frames. It buffers bytes until a frame terminator ("\n\n") completes a
// frame, then releases the frame — possibly delayed, corrupted, torn, or
// followed by a cut. HTTP response headers pass through untouched: their
// "\r\n\r\n" terminator contains no "\n\n", so the first detected frame
// boundary is the first SSE frame's.
type frameFilter struct {
	plan  streamPlan
	sleep func(time.Duration)

	buf    []byte // bytes of the (incomplete) current frame
	frames int    // complete frames released so far
	err    error  // terminal condition already reached
}

// process pushes bytes through the filter and returns what may go out.
// After a terminating fault (cut/truncate), out holds the final bytes and
// err the sentinel; further calls return the same err.
func (ff *frameFilter) process(in []byte, eof bool) (out []byte, err error) {
	if ff.err != nil {
		return nil, ff.err
	}
	ff.buf = append(ff.buf, in...)
	for {
		i := indexFrameEnd(ff.buf)
		if i < 0 {
			break
		}
		frame := ff.buf[:i]
		ff.buf = ff.buf[i:]
		if ff.frames == ff.plan.cutAfter {
			ff.err = errCut
			return out, ff.err
		}
		if ff.plan.frameLat > 0 {
			ff.sleep(ff.plan.frameLat)
		}
		if ff.frames == ff.plan.truncAt {
			ff.err = errTruncate
			return append(out, frame[:len(frame)/2]...), ff.err
		}
		if ff.frames == ff.plan.corruptAt && len(frame) >= 6 {
			// Flip a byte just inside the payload tail (before the
			// "\n\n" terminator), leaving the frame grammar intact but
			// the JSON inside it broken.
			frame = append([]byte(nil), frame...)
			frame[len(frame)-4] ^= 0x20
		}
		out = append(out, frame...)
		ff.frames++
	}
	if eof {
		out = append(out, ff.buf...)
		ff.buf = nil
	}
	return out, nil
}

// indexFrameEnd returns the index just past the first "\n\n" in b, or -1.
func indexFrameEnd(b []byte) int {
	for i := 0; i+1 < len(b); i++ {
		if b[i] == '\n' && b[i+1] == '\n' {
			return i + 2
		}
	}
	return -1
}

// filterReadCloser runs a response body through a frameFilter (client
// side). Filter-terminated streams surface io.ErrUnexpectedEOF (cut) or a
// bare EOF after a torn frame (truncate) — exactly what a dropped
// connection looks like to the SSE client.
type filterReadCloser struct {
	src     io.ReadCloser
	f       *frameFilter
	pending []byte
	err     error
}

func (rc *filterReadCloser) Read(p []byte) (int, error) {
	for len(rc.pending) == 0 && rc.err == nil {
		chunk := make([]byte, 4096)
		n, rerr := rc.src.Read(chunk)
		out, ferr := rc.f.process(chunk[:n], rerr != nil)
		rc.pending = append(rc.pending, out...)
		switch {
		case ferr == errCut:
			rc.err = io.ErrUnexpectedEOF
		case ferr == errTruncate:
			rc.err = io.EOF
		case rerr != nil:
			rc.err = rerr
		}
	}
	if len(rc.pending) == 0 {
		return 0, rc.err
	}
	n := copy(p, rc.pending)
	rc.pending = rc.pending[n:]
	return n, nil
}

func (rc *filterReadCloser) Close() error { return rc.src.Close() }
