// Shared retry backoff: exponential with a shift-overflow guard and ±50%
// jitter. Used by both the coordinator's shard reassignment and the SSE
// client's reconnects — the former's uncapped `base << (attempt-1)` used
// to overflow into huge or negative delays once attempt counts grew past
// the width of a Duration.
package cluster

import (
	"math/rand" //lint:ignore determinism retry jitter only; never touches replayed counters
	"time"
)

// backoffFor returns the jittered delay before retry n (1-based): base
// doubled n-1 times, clamped to max before the shift can overflow, then
// jittered to [d/2, 3d/2). Safe for arbitrarily large n.
func backoffFor(base, max time.Duration, n int) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	d := max
	// base << shift overflows (or exceeds max) once shift reaches
	// log2(max/base); comparing base against max>>shift asks the same
	// question without ever shifting left.
	if shift := uint(n - 1); n >= 1 && shift < 63 && base <= max>>shift {
		d = base << shift
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	if d < 1 {
		d = 1
	}
	return d
}
