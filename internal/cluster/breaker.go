// Per-peer circuit breakers: a peer that keeps failing stops receiving
// dispatches until a cooldown passes and a single half-open probe
// succeeds. Breakers live on the Coordinator (one per peer, shared
// across sweeps and with the health prober), so a flapping worker is
// remembered between jobs instead of burning every sweep's attempt
// budget rediscovering it.
package cluster

import (
	"sync"
	"time"
)

// BreakerState is a breaker's position in the closed → open → half-open
// cycle. The numeric values are exported as the
// delta_cluster_breaker_state{peer} gauge.
type BreakerState int

const (
	// BreakerClosed admits traffic; consecutive failures are counted.
	BreakerClosed BreakerState = 0

	// BreakerHalfOpen admits exactly one probe; its outcome closes or
	// reopens the breaker.
	BreakerHalfOpen BreakerState = 1

	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen BreakerState = 2
)

func (s BreakerState) String() string {
	switch s {
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// Breaker is one peer's circuit breaker. The zero value is unusable; use
// newBreaker.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     BreakerState
	fails     int // consecutive failures while closed
	openedAt  time.Time
	probing   bool // the half-open probe slot is taken
	onChange  func(BreakerState)
	now       func() time.Time
}

// newBreaker builds a closed breaker that opens after threshold
// consecutive failures and retries after cooldown. onChange (optional)
// observes every state transition, including the initial closed state —
// so a metrics gauge exists from construction.
func newBreaker(threshold int, cooldown time.Duration, onChange func(BreakerState)) *Breaker {
	b := &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		onChange:  onChange,
		now:       time.Now, //lint:ignore determinism clock injection seam; tests substitute a fake clock
	}
	if onChange != nil {
		onChange(BreakerClosed)
	}
	return b
}

// State reports the current state, promoting an expired open breaker to
// half-open so callers reading state (health reports, routing) see the
// same view Allow would grant.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.set(BreakerHalfOpen)
	}
	return b.state
}

// Allow reports whether a dispatch may proceed. Closed always admits;
// open admits nothing until the cooldown elapses, then converts to
// half-open and admits exactly one probe; further half-open requests are
// rejected until the probe resolves via Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.set(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful exchange: the breaker closes from any
// state and the failure streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	b.set(BreakerClosed)
}

// Failure records a failed exchange. A closed breaker opens once the
// consecutive-failure streak reaches the threshold; a half-open probe
// failure reopens immediately; failures while open (forced traffic when
// every peer's breaker is open) refresh the cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.openedAt = b.now()
			b.set(BreakerOpen)
		}
	default: // half-open probe failed, or already open
		b.probing = false
		b.openedAt = b.now()
		b.set(BreakerOpen)
	}
}

// set transitions state and notifies; callers hold b.mu.
func (b *Breaker) set(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	if b.onChange != nil {
		b.onChange(s)
	}
}
