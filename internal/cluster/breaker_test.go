package cluster

import (
	"testing"
	"time"
)

// TestBreakerLifecycle walks the full closed → open → half-open cycle on
// a fake clock and pins every transition the onChange observer sees.
func TestBreakerLifecycle(t *testing.T) {
	var states []BreakerState
	now := time.Unix(0, 0)
	b := newBreaker(3, 10*time.Second, func(s BreakerState) { states = append(states, s) })
	b.now = func() time.Time { return now }

	if len(states) != 1 || states[0] != BreakerClosed {
		t.Fatalf("construction transitions = %v, want initial closed", states)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected traffic")
	}

	// Two failures stay under the threshold; a success resets the streak.
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v", b.State())
	}
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the failure streak")
	}

	// The third consecutive failure opens the breaker.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	now = now.Add(10 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker rejected the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent half-open probe admitted")
	}

	// Probe failure reopens with a fresh cooldown.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not reopen the breaker")
	}

	// Next probe succeeds: closed again, admitting freely.
	now = now.Add(10 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}

	want := []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(states) != len(want) {
		t.Fatalf("transitions = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v (%v)", i, states[i], want[i], states)
		}
	}
}

// TestBreakerStatePromotesExpiredOpen: State() alone reports half-open
// once the cooldown has passed, matching what Allow would grant.
func TestBreakerStatePromotesExpiredOpen(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(1, time.Second, nil)
	b.now = func() time.Time { return now }
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v", b.State())
	}
	now = now.Add(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("expired open breaker reports %v, want half-open", b.State())
	}
}

// TestBackoffForNoOverflow pins the satellite fix: the former
// `base << (attempt-1)` overflowed into huge or negative delays once the
// attempt count outgrew the Duration width. backoffFor must stay positive
// and capped (max + 50% jitter) for arbitrarily high attempts.
func TestBackoffForNoOverflow(t *testing.T) {
	base, max := 250*time.Millisecond, 5*time.Second
	ceiling := max + max/2
	for n := 1; n <= 200; n++ {
		for trial := 0; trial < 8; trial++ {
			d := backoffFor(base, max, n)
			if d <= 0 {
				t.Fatalf("attempt %d: non-positive backoff %v", n, d)
			}
			if d > ceiling {
				t.Fatalf("attempt %d: backoff %v above jittered cap %v", n, d, ceiling)
			}
		}
	}
	// Early attempts still grow exponentially: attempt 1 jitters around
	// base, attempt 3 around 4*base.
	for trial := 0; trial < 8; trial++ {
		if d := backoffFor(base, max, 1); d < base/2 || d > base+base/2 {
			t.Fatalf("attempt 1: backoff %v outside [%v, %v]", d, base/2, base+base/2)
		}
		if d := backoffFor(base, max, 3); d < 2*base || d > 6*base {
			t.Fatalf("attempt 3: backoff %v outside [%v, %v]", d, 2*base, 6*base)
		}
	}
	// The exact shift widths where the old code overflowed.
	for _, n := range []int{62, 63, 64, 65, 100} {
		if d := backoffFor(time.Second, 5*time.Second, n); d <= 0 || d > 5*time.Second+5*time.Second/2 {
			t.Fatalf("attempt %d: backoff %v (overflow regression)", n, d)
		}
	}
}
