// Chaos-harness integration tests: drive real coordinator sweeps through
// internal/chaos's fault-injecting transport and assert the tentpole
// invariant — the merged fleet result stays byte-identical to a
// single-node run under every injected failure mode — plus the breaker,
// hedging, and seeded-replay behaviors the harness exists to provoke.
package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"delta/internal/chaos"
	"delta/internal/obs"
	"delta/internal/pipeline"
	"delta/internal/scenario"
	"delta/internal/spec"
)

// oneAxisDoc has a single workload × device, so memo-key affinity routes
// every shard to one deterministic peer — the tests can aim faults at
// exactly the busy worker.
const oneAxisDoc = `{
  "workloads": [{"network": "alexnet"}],
  "devices": [{"name": "TITAN Xp"}],
  "batches": [8, 16],
  "models": ["delta", "prior"]
}`

func oneAxisScenario(t *testing.T) scenario.Scenario {
	t.Helper()
	sc, err := spec.ReadScenario(strings.NewReader(oneAxisDoc))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// healthWorker is newWorker plus a 200 /healthz, for tests that exercise
// the breaker-integrated health prober.
func healthWorker(t *testing.T) *httptest.Server {
	t.Helper()
	shards := &ShardHandler{Eval: pipeline.New(), Render: testRender}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	mux.Handle("/", shards)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func hostOf(srvURL string) string { return strings.TrimPrefix(srvURL, "http://") }

// busyPeerIndex computes which of two peers affinity routes oneAxisDoc's
// shards to, using a throwaway coordinator (affinity depends only on the
// peer count and order).
func busyPeerIndex(t *testing.T, peers []string, sc scenario.Scenario) int {
	t.Helper()
	c, err := New(Config{Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	points, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return c.affinity(points[0])
}

// TestChaosMidStreamCutResume: repeated mid-stream cuts on the shard path
// are survived by Last-Event-ID resume inside the attempt; the merged
// result stays byte-identical.
func TestChaosMidStreamCutResume(t *testing.T) {
	inj := chaos.MustNew(chaos.Spec{Rules: []chaos.Rule{
		{Fault: chaos.FaultCut, Path: "/v2/shards", AfterFrames: 2, Count: 3},
	}})
	w := newWorker(t)
	sc := testScenario(t)
	c, err := New(Config{
		Peers: []string{w.URL}, ShardsPerPeer: 1,
		HTTP:         &http.Client{Transport: inj.Transport(nil)},
		RetryBackoff: time.Millisecond, ClientBackoff: time.Millisecond,
		ClientRetries: 10, Log: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	upds := runSweep(t, c, Sweep{Doc: json.RawMessage(testDoc), Scenario: sc, Policy: pipeline.CollectPartial})
	checkMerged(t, upds, singleNodeRef(t, sc))
	if ev := inj.Events(); len(ev) != 3 {
		t.Fatalf("chaos injected %d cuts, want 3: %v", len(ev), ev)
	}
}

// TestChaosCorruptFrameRetryable pins the satellite: a corrupted SSE frame
// is a retryable stream error — the client reconnects with Last-Event-ID
// at the last good frame and the worker re-serves a clean copy — not a
// terminal failure, and not a silently skipped point.
func TestChaosCorruptFrameRetryable(t *testing.T) {
	inj := chaos.MustNew(chaos.Spec{Rules: []chaos.Rule{
		{Fault: chaos.FaultCorrupt, Path: "/v2/shards", AfterFrames: 3, Count: 1},
	}})
	w := newWorker(t)
	sc := testScenario(t)
	reg := obs.NewRegistry()
	mt := NewMetrics(reg)
	c, err := New(Config{
		Peers: []string{w.URL}, ShardsPerPeer: 1,
		HTTP:         &http.Client{Transport: inj.Transport(nil)},
		RetryBackoff: time.Millisecond, ClientBackoff: time.Millisecond,
		Metrics: mt, Log: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	upds := runSweep(t, c, Sweep{Doc: json.RawMessage(testDoc), Scenario: sc, Policy: pipeline.CollectPartial})
	checkMerged(t, upds, singleNodeRef(t, sc))
	if ev := inj.Events(); len(ev) != 1 || !strings.Contains(ev[0], "corrupt") {
		t.Fatalf("chaos events = %v, want one corrupt injection", ev)
	}
	// The reconnect happened inside the SSE client: no shard attempt was
	// charged, so the shard-retry counter must not move.
	if mt.Retries.Value() != 0 {
		t.Errorf("corrupt frame burned a shard attempt (retries=%d); want in-stream reconnect", mt.Retries.Value())
	}
}

// TestChaosTruncatedFrameResume: a torn frame (stream ends mid-frame) is
// survived the same way — resume from the last complete frame.
func TestChaosTruncatedFrameResume(t *testing.T) {
	inj := chaos.MustNew(chaos.Spec{Rules: []chaos.Rule{
		{Fault: chaos.FaultTruncate, Path: "/v2/shards", AfterFrames: 4, Count: 1},
	}})
	w := newWorker(t)
	sc := testScenario(t)
	c, err := New(Config{
		Peers: []string{w.URL}, ShardsPerPeer: 1,
		HTTP:         &http.Client{Transport: inj.Transport(nil)},
		RetryBackoff: time.Millisecond, ClientBackoff: time.Millisecond, Log: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	upds := runSweep(t, c, Sweep{Doc: json.RawMessage(testDoc), Scenario: sc, Policy: pipeline.CollectPartial})
	checkMerged(t, upds, singleNodeRef(t, sc))
}

// TestChaosPartialProgressReassign: an attempt that merges a few points
// and then dies (cut, then refused reconnects) is reassigned — and the
// retry attempt requests only the remainder, whose done-frame count is the
// remainder's size, not the whole shard's. Pins the short-shard
// false-positive that would otherwise burn the budget after any partial
// attempt.
func TestChaosPartialProgressReassign(t *testing.T) {
	inj := chaos.MustNew(chaos.Spec{Rules: []chaos.Rule{
		{Fault: chaos.FaultCut, Path: "/v2/shards", AfterFrames: 2, Count: 1},
		{Fault: chaos.FaultRefuse, Path: "/v2/shards", AfterRequests: 1, Count: 2},
	}})
	w := newWorker(t)
	sc := testScenario(t)
	reg := obs.NewRegistry()
	mt := NewMetrics(reg)
	rec := &fakeRecorder{}
	c, err := New(Config{
		Peers: []string{w.URL}, ShardsPerPeer: 1,
		HTTP:         &http.Client{Transport: inj.Transport(nil)},
		RetryBackoff: time.Millisecond, ClientBackoff: time.Millisecond,
		ClientRetries: 2, Metrics: mt, Recorder: rec, Log: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	upds := runSweep(t, c, Sweep{
		JobID: "chaos-partial", Doc: json.RawMessage(testDoc), Scenario: sc,
		Policy: pipeline.CollectPartial,
	})
	checkMerged(t, upds, singleNodeRef(t, sc))
	if mt.Retries.Value() != 1 {
		t.Errorf("retries = %d, want exactly 1 (one partial attempt, one clean resume)", mt.Retries.Value())
	}
	var failed, done bool
	for _, r := range rec.all() {
		if strings.HasPrefix(r, "failed") {
			failed = true
		}
		if strings.HasPrefix(r, "done") {
			done = true
		}
	}
	if !failed || !done {
		t.Errorf("records missing failed+done sequence:\n%v", rec.all())
	}
}

// TestChaosFlappingPeerBreaker: a peer refusing every shard connection
// accumulates consecutive failures until its breaker opens; later shards
// hop to the healthy peer without burning attempt budget; the merged
// result stays byte-identical; and once the fault clears, a health probe
// walks the breaker half-open → closed.
func TestChaosFlappingPeerBreaker(t *testing.T) {
	wa, wb := healthWorker(t), healthWorker(t)
	peers := []string{wa.URL, wb.URL}
	sc := oneAxisScenario(t)
	busy := busyPeerIndex(t, peers, sc)
	inj := chaos.MustNew(chaos.Spec{Rules: []chaos.Rule{
		{Fault: chaos.FaultRefuse, Peer: hostOf(peers[busy]), Path: "/v2/shards"},
	}})
	reg := obs.NewRegistry()
	mt := NewMetrics(reg)
	c, err := New(Config{
		Peers: peers, ShardsPerPeer: 2,
		HTTP:             &http.Client{Transport: inj.Transport(nil)},
		RetryBackoff:     time.Millisecond, ClientBackoff: time.Millisecond,
		ClientRetries:    1, RerouteDelay: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 10 * time.Second,
		Metrics: mt, Log: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	upds := runSweep(t, c, Sweep{Doc: json.RawMessage(oneAxisDoc), Scenario: sc, Policy: pipeline.CollectPartial})
	checkMerged(t, upds, singleNodeRef(t, sc))

	if got := c.breakers[busy].State(); got != BreakerOpen {
		t.Fatalf("busy peer breaker = %v, want open", got)
	}
	// Exactly BreakerThreshold attempts burned on the refusing peer; the
	// remaining shards rerouted through the open-breaker hop instead.
	if mt.Retries.Value() != 2 {
		t.Errorf("retries = %d, want 2 (threshold) before the breaker opened", mt.Retries.Value())
	}
	if got := obsGaugeVec(t, reg, "delta_cluster_breaker_state", hostOf(peers[busy])); got != int64(BreakerOpen) {
		t.Errorf("breaker gauge = %d, want %d", got, BreakerOpen)
	}

	// Fault cleared (path rules never matched /healthz): once the cooldown
	// elapses — simulated by advancing the breaker's clock — the health
	// prober's probe walks the breaker half-open → closed.
	c.breakers[busy].now = func() time.Time { return time.Now().Add(11 * time.Second) }
	sts := c.PeerHealth(context.Background())
	if !sts[busy].OK || sts[busy].Breaker != "closed" {
		t.Fatalf("post-cooldown probe: %+v, want ok+closed", sts[busy])
	}
	if !Quorum(sts) {
		t.Error("recovered fleet not at quorum")
	}
}

// TestChaosSlowPeerHedge: a peer that turns slow mid-service (per-frame
// latency far above the fleet's learned pace) gets its shards hedged to
// the healthy peer; the hedge wins, the sweep completes fast, and the
// merged result — despite two attempts streaming the same window — stays
// byte-identical. Also exercises the adaptive deadline (pace is known, so
// the gauge moves).
func TestChaosSlowPeerHedge(t *testing.T) {
	wa, wb := healthWorker(t), healthWorker(t)
	peers := []string{wa.URL, wb.URL}
	sc := oneAxisScenario(t)
	busy := busyPeerIndex(t, peers, sc)
	// Warm-up runs 2 shard requests clean to seed the pace EWMA; the
	// latency arms afterwards and slows every frame by 300ms.
	inj := chaos.MustNew(chaos.Spec{Rules: []chaos.Rule{
		{Fault: chaos.FaultLatency, Where: "frame", LatencyMS: 300,
			Peer: hostOf(peers[busy]), Path: "/v2/shards", AfterRequests: 2},
	}})
	reg := obs.NewRegistry()
	mt := NewMetrics(reg)
	c, err := New(Config{
		Peers: peers, ShardsPerPeer: 1,
		HTTP:         &http.Client{Transport: inj.Transport(nil)},
		RetryBackoff: time.Millisecond, ClientBackoff: time.Millisecond,
		HedgeMultiplier: 2, HedgeInterval: 20 * time.Millisecond, HedgeFloor: 50 * time.Millisecond,
		DeadlineFloor: time.Second,
		Metrics:       mt, Log: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := Sweep{Doc: json.RawMessage(oneAxisDoc), Scenario: sc, Policy: pipeline.CollectPartial}
	ref := singleNodeRef(t, sc)

	// Warm-up sweep: clean, seeds the busy peer's EWMA.
	checkMerged(t, runSweep(t, c, sw), ref)
	if med := c.rates.median(); med <= 0 {
		t.Fatal("warm-up sweep did not seed the pace EWMA")
	}

	// Slowed sweep: the hedge monitor must fire and win.
	start := time.Now()
	checkMerged(t, runSweep(t, c, sw), ref)
	elapsed := time.Since(start)

	if mt.Hedged.Value() == 0 {
		t.Fatal("no hedge fired against the slow peer")
	}
	if mt.HedgeWins.Value() == 0 {
		t.Fatal("hedges fired but none won")
	}
	if mt.Deadline.Value() <= 0 {
		t.Error("adaptive deadline gauge never set despite a known pace")
	}
	// 4 points × 300ms/frame ≈ 1.5s+ unhedged; the winning hedges should
	// finish far sooner.
	if elapsed > 1200*time.Millisecond {
		t.Errorf("hedged sweep took %v; hedging did not rescue the stragglers", elapsed)
	}
}

// TestChaosSeededReplay: two sweeps with the same chaos seed inject the
// identical fault sequence and drive the identical shard
// dispatch/failure/done record log — the reproducibility contract.
func TestChaosSeededReplay(t *testing.T) {
	w := newWorker(t) // shared across runs so peer labels match
	sc := testScenario(t)
	run := func() ([]string, []string) {
		inj := chaos.MustNew(chaos.Spec{Seed: 2, Rules: []chaos.Rule{
			{Fault: chaos.FaultRefuse, Path: "/v2/shards", Prob: 0.4, Count: 4},
		}})
		rec := &fakeRecorder{}
		c, err := New(Config{
			Peers: []string{w.URL}, ShardsPerPeer: 2,
			HTTP:         &http.Client{Transport: inj.Transport(nil)},
			RetryBackoff: time.Millisecond, ClientBackoff: time.Millisecond,
			ClientRetries: 10, Recorder: rec, Log: quietLog(),
		})
		if err != nil {
			t.Fatal(err)
		}
		upds := runSweep(t, c, Sweep{
			JobID: "replay", Doc: json.RawMessage(testDoc), Scenario: sc,
			Policy: pipeline.CollectPartial,
		})
		checkMerged(t, upds, singleNodeRef(t, sc))
		return inj.Events(), rec.all()
	}
	ev1, rec1 := run()
	ev2, rec2 := run()
	if len(ev1) == 0 {
		t.Fatal("seeded rules never fired; replay test is vacuous")
	}
	if strings.Join(ev1, "|") != strings.Join(ev2, "|") {
		t.Fatalf("same seed, different fault sequences:\n%v\n%v", ev1, ev2)
	}
	if strings.Join(rec1, "|") != strings.Join(rec2, "|") {
		t.Fatalf("same seed, different shard record logs:\n%v\n%v", rec1, rec2)
	}
}

// obsGaugeVec scrapes one labeled gauge value out of the registry's text
// exposition (obs has no per-label read API).
func obsGaugeVec(t *testing.T, reg *obs.Registry, name, peer string) int64 {
	t.Helper()
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+"{") && strings.Contains(line, `"`+peer+`"`) {
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s{peer=%q} not found", name, peer)
	return 0
}
