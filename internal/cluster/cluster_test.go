package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"delta/internal/durable"
	"delta/internal/obs"
	"delta/internal/pipeline"
	"delta/internal/scenario"
	"delta/internal/spec"
)

// testDoc is the sweep document the coordinator forwards to workers:
// 2 workloads × 2 devices × 2 batches × 2 models = 16 points.
const testDoc = `{
  "name": "fleet",
  "workloads": [{"network": "alexnet"}, {"network": "googlenet"}],
  "devices": [{"name": "TITAN Xp"}, {"name": "V100"}],
  "batches": [8, 16],
  "models": ["delta", "prior"]
}`

func testScenario(t *testing.T) scenario.Scenario {
	t.Helper()
	sc, err := spec.ReadScenario(strings.NewReader(testDoc))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// testRender is the shared payload renderer: enough structure to make
// byte-identity meaningful without dragging in the server's full shape.
func testRender(u pipeline.StreamUpdate) (json.RawMessage, error) {
	return json.Marshal(map[string]any{
		"index":   u.Point.Index,
		"done":    u.Done,
		"total":   u.Total,
		"device":  u.Point.Device.Name,
		"seconds": u.Network.Seconds,
	})
}

func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(&ShardHandler{Eval: pipeline.New(), Render: testRender})
	t.Cleanup(srv.Close)
	return srv
}

// singleNodeRef renders the whole scenario through one evaluator — the
// byte-identity reference for every distributed test.
func singleNodeRef(t *testing.T, sc scenario.Scenario) []json.RawMessage {
	t.Helper()
	upds, err := pipeline.New().RunScenario(context.Background(), sc,
		pipeline.WithErrorPolicy(pipeline.CollectPartial))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]json.RawMessage, len(upds))
	for i, u := range upds {
		buf, err := testRender(u)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = buf
	}
	return out
}

func quietLog() *log.Logger { return log.New(os.Stderr, "", 0) }

// dropAfter aborts the connection before writing the (n+1)-th result
// frame, simulating a mid-shard connection loss with whole frames on the
// wire (writeFrame emits one frame per Write call).
type dropAfter struct {
	http.ResponseWriter
	remaining *int
}

func (d *dropAfter) Write(p []byte) (int, error) {
	if bytes.Contains(p, []byte("event: result")) {
		*d.remaining--
		if *d.remaining < 0 {
			panic(http.ErrAbortHandler)
		}
	}
	return d.ResponseWriter.Write(p)
}

func (d *dropAfter) Flush() {
	if f, ok := d.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// droppingWorker serves shards but aborts each connection after perConn
// result frames; requests counts connections served.
func droppingWorker(t *testing.T, perConn int, requests *atomic.Int64) *httptest.Server {
	t.Helper()
	h := &ShardHandler{Eval: pipeline.New(), Render: testRender}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		budget := perConn
		h.ServeHTTP(&dropAfter{w, &budget}, r)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestShardHandlerWindow: the worker streams exactly the requested window
// in order, with per-shard ids and a terminal done frame.
func TestShardHandlerWindow(t *testing.T) {
	srv := newWorker(t)
	body := fmt.Sprintf(`{"scenario": %s, "offset": 5, "limit": 4}`, testDoc)
	resp, err := http.Post(srv.URL, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var results []wireResult
	var ids []int
	var done *wireDone
	if err := parseSSE(resp.Body, func(ev Event) error {
		switch ev.Type {
		case "result":
			var r wireResult
			if err := json.Unmarshal(ev.Data, &r); err != nil {
				return err
			}
			results = append(results, r)
			ids = append(ids, ev.ID)
		case "done":
			done = &wireDone{}
			if err := json.Unmarshal(ev.Data, done); err != nil {
				return err
			}
			return errStreamEnd
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results, want 4", len(results))
	}
	for i, r := range results {
		if r.Index != 5+i || ids[i] != i+1 {
			t.Errorf("frame %d: index %d id %d, want index %d id %d", i, r.Index, ids[i], 5+i, i+1)
		}
		if r.Error != "" || len(r.Payload) == 0 {
			t.Errorf("frame %d: err %q payload %d bytes", i, r.Error, len(r.Payload))
		}
	}
	if done == nil || done.Count != 4 || done.Error != "" {
		t.Errorf("done = %+v", done)
	}
}

// TestShardHandlerRejects pins the pre-stream error statuses.
func TestShardHandlerRejects(t *testing.T) {
	srv := newWorker(t)
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"window past end", fmt.Sprintf(`{"scenario": %s, "offset": 10, "limit": 10}`, testDoc), http.StatusBadRequest},
		{"missing scenario", `{"offset": 0, "limit": 1}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
}

// TestClientReconnect drives the SSE client against the real shard handler
// through repeatedly dropped connections: every result arrives exactly
// once via Last-Event-ID resume, and the worker sees multiple connections.
func TestClientReconnect(t *testing.T) {
	var requests atomic.Int64
	srv := droppingWorker(t, 5, &requests)
	body := fmt.Sprintf(`{"scenario": %s, "offset": 0, "limit": 16}`, testDoc)
	cli := &Client{Retries: 10, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	var got []wireResult
	err := cli.Stream(context.Background(), srv.URL, []byte(body), func(ev Event) error {
		if ev.Type == "result" {
			var r wireResult
			if err := json.Unmarshal(ev.Data, &r); err != nil {
				return err
			}
			got = append(got, r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Fatalf("%d results, want 16", len(got))
	}
	for i, r := range got {
		if r.Index != i {
			t.Errorf("result %d: index %d (duplicate or gap)", i, r.Index)
		}
	}
	if n := requests.Load(); n < 3 {
		t.Errorf("worker saw %d connection(s); drops did not force reconnects", n)
	}
}

// TestClientTerminalStatus: 4xx answers are not retried.
func TestClientTerminalStatus(t *testing.T) {
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		http.Error(w, "bad shard", http.StatusBadRequest)
	}))
	defer srv.Close()
	cli := &Client{Retries: 5, Backoff: time.Millisecond}
	err := cli.Stream(context.Background(), srv.URL, []byte(`{}`), func(Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "status 400") {
		t.Fatalf("err = %v", err)
	}
	if requests.Load() != 1 {
		t.Errorf("4xx retried %d times", requests.Load()-1)
	}
}

// TestParseSSE pins the frame grammar: comments, multi-line data, default
// event type, id tracking.
func TestParseSSE(t *testing.T) {
	in := ": keep-alive\n\nid: 3\nevent: result\ndata: {\"a\":1}\n\ndata: x\ndata: y\n\n"
	var evs []Event
	if err := parseSSE(strings.NewReader(in), func(ev Event) error {
		evs = append(evs, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2", len(evs))
	}
	if evs[0].ID != 3 || evs[0].Type != "result" || string(evs[0].Data) != `{"a":1}` {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Type != "message" || string(evs[1].Data) != "x\ny" {
		t.Errorf("event 1 = %+v", evs[1])
	}
}

// fakeRecorder captures shard lifecycle records.
type fakeRecorder struct {
	mu   sync.Mutex
	recs []string
}

func (f *fakeRecorder) RecordShard(job string, shard, offset, count int, peer string, attempt int, status string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recs = append(f.recs, fmt.Sprintf("%s/%d@%d+%d a%d %s", status, shard, offset, count, attempt, peer))
	return nil
}

func (f *fakeRecorder) all() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.recs...)
}

// runSweep runs a coordinator sweep and collects the merged updates.
func runSweep(t *testing.T, c *Coordinator, sw Sweep) []Update {
	t.Helper()
	var upds []Update
	if err := c.Run(context.Background(), sw, func(u Update) error {
		upds = append(upds, u)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return upds
}

// checkMerged asserts the merged updates are the dense [0, len(ref))
// prefix with payloads byte-identical to the single-node reference.
func checkMerged(t *testing.T, upds []Update, ref []json.RawMessage) {
	t.Helper()
	if len(upds) != len(ref) {
		t.Fatalf("%d merged updates, want %d", len(upds), len(ref))
	}
	for i, u := range upds {
		if u.Index != i {
			t.Fatalf("update %d: index %d (duplicate, gap, or disorder)", i, u.Index)
		}
		if u.Err != "" {
			t.Errorf("point %d failed: %s", i, u.Err)
		}
		if !bytes.Equal(u.Payload, ref[i]) {
			t.Errorf("point %d payload diverged from single-node run:\n fleet: %s\nsingle: %s", i, u.Payload, ref[i])
		}
	}
}

// TestCoordinatorBitIdentical: a 2-worker sweep merges byte-identical to a
// single-node run, and the fleet metrics move.
func TestCoordinatorBitIdentical(t *testing.T) {
	a, b := newWorker(t), newWorker(t)
	sc := testScenario(t)
	reg := obs.NewRegistry()
	mt := NewMetrics(reg)
	rec := &fakeRecorder{}
	c, err := New(Config{
		Peers: []string{a.URL, b.URL}, ShardsPerPeer: 3,
		RetryBackoff: time.Millisecond, ClientBackoff: time.Millisecond,
		Metrics: mt, Recorder: rec, Log: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	upds := runSweep(t, c, Sweep{
		JobID: "j1", Doc: json.RawMessage(testDoc), Scenario: sc,
		Policy: pipeline.CollectPartial,
	})
	checkMerged(t, upds, singleNodeRef(t, sc))
	if got := mt.Merged.Value(); got != 16 {
		t.Errorf("points merged metric = %d, want 16", got)
	}
	if got := mt.InFlight.Value(); got != 0 {
		t.Errorf("in-flight gauge = %d after sweep", got)
	}
	dispatched, done := 0, 0
	for _, r := range rec.all() {
		if strings.HasPrefix(r, durable.ShardDispatched) {
			dispatched++
		}
		if strings.HasPrefix(r, durable.ShardDone) {
			done++
		}
	}
	if dispatched != 6 || done != 6 {
		t.Errorf("shard records: %d dispatched, %d done, want 6/6\n%v", dispatched, done, rec.all())
	}
}

// TestCoordinatorResumeAcrossDrops: one worker keeps dropping connections
// mid-shard; Last-Event-ID resume still yields every point exactly once,
// byte-identical.
func TestCoordinatorResumeAcrossDrops(t *testing.T) {
	var requests atomic.Int64
	a := newWorker(t)
	b := droppingWorker(t, 1, &requests)
	sc := testScenario(t)
	c, err := New(Config{
		Peers: []string{a.URL, b.URL}, ShardsPerPeer: 2,
		RetryBackoff: time.Millisecond, ClientBackoff: time.Millisecond,
		ClientRetries: 20, Log: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	upds := runSweep(t, c, Sweep{Doc: json.RawMessage(testDoc), Scenario: sc, Policy: pipeline.CollectPartial})
	checkMerged(t, upds, singleNodeRef(t, sc))
	if requests.Load() < 2 {
		t.Error("dropping worker saw a single connection; resume path untested")
	}
}

// TestCoordinatorReassignsDeadPeer: a peer that refuses every connection
// loses its shards to the surviving peer — the sweep completes with no
// duplicated or missing points and the retry counter moves.
func TestCoordinatorReassignsDeadPeer(t *testing.T) {
	a := newWorker(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connections now refused
	sc := testScenario(t)
	reg := obs.NewRegistry()
	mt := NewMetrics(reg)
	rec := &fakeRecorder{}
	c, err := New(Config{
		Peers: []string{a.URL, dead.URL}, ShardsPerPeer: 2,
		RetryBackoff: time.Millisecond, ClientBackoff: time.Millisecond,
		ClientRetries: 1, Metrics: mt, Recorder: rec, Log: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	upds := runSweep(t, c, Sweep{
		JobID: "j2", Doc: json.RawMessage(testDoc), Scenario: sc,
		Policy: pipeline.CollectPartial,
	})
	checkMerged(t, upds, singleNodeRef(t, sc))
	if mt.Retries.Value() == 0 {
		t.Error("retry counter did not move despite a dead peer")
	}
	failed := false
	for _, r := range rec.all() {
		if strings.HasPrefix(r, durable.ShardFailed) {
			failed = true
		}
	}
	if !failed {
		t.Errorf("no failed shard record for the dead peer:\n%v", rec.all())
	}
}

// TestCoordinatorExhaustsRetries: with every peer dead, Run fails with the
// shard's attempt budget spent instead of hanging.
func TestCoordinatorExhaustsRetries(t *testing.T) {
	d1 := httptest.NewServer(http.NotFoundHandler())
	d1.Close()
	d2 := httptest.NewServer(http.NotFoundHandler())
	d2.Close()
	c, err := New(Config{
		Peers: []string{d1.URL, d2.URL}, ShardsPerPeer: 1, MaxAttempts: 2,
		RetryBackoff: time.Millisecond, ClientBackoff: time.Millisecond,
		ClientRetries: 1, Log: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(context.Background(), Sweep{
		Doc: json.RawMessage(testDoc), Scenario: testScenario(t),
		Policy: pipeline.CollectPartial,
	}, func(Update) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "failed after") {
		t.Fatalf("err = %v, want exhausted-attempts error", err)
	}
}

// failDoc puts a training-invalid explicit workload first: its point fails
// at evaluation (non-square dgrad filter) while later alexnet points
// succeed — the fail-fast prefix shape.
const failDoc = `{
  "workloads": [
    {"name": "badtrain", "layers": [
      {"b": 4, "ci": 8, "hi": 12, "wi": 12, "co": 8, "hf": 3, "wf": 3, "stride": 1, "pad": 1},
      {"b": 4, "ci": 8, "hi": 12, "wi": 12, "co": 8, "hf": 3, "wf": 5, "stride": 1, "pad": 2}
    ]},
    {"network": "alexnet"}
  ],
  "devices": [{"name": "TITAN Xp"}, {"name": "V100"}],
  "batches": [8],
  "passes": ["training"]
}`

// TestCoordinatorFailFastPrefix: under FailFast the merged stream stops
// exactly where a single-node fail-fast sweep stops, and Run returns nil
// (the point error rides in the last update).
func TestCoordinatorFailFastPrefix(t *testing.T) {
	sc, err := spec.ReadScenario(strings.NewReader(failDoc))
	if err != nil {
		t.Fatal(err)
	}
	ref, rerr := pipeline.New().RunScenario(context.Background(), sc)
	if rerr == nil {
		t.Fatal("reference fail-fast run did not fail")
	}
	a, b := newWorker(t), newWorker(t)
	c, err := New(Config{
		Peers: []string{a.URL, b.URL}, ShardsPerPeer: 2,
		RetryBackoff: time.Millisecond, ClientBackoff: time.Millisecond, Log: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	upds := runSweep(t, c, Sweep{Doc: json.RawMessage(failDoc), Scenario: sc, Policy: pipeline.FailFast})
	if len(upds) != len(ref) {
		t.Fatalf("fail-fast merged %d updates, single-node emitted %d", len(upds), len(ref))
	}
	last := upds[len(upds)-1]
	if last.Err == "" || !strings.Contains(last.Err, "non-square") {
		t.Errorf("last update error = %q, want the non-square filter error", last.Err)
	}
	for i, u := range upds {
		if u.Index != ref[i].Point.Index {
			t.Errorf("update %d: index %d, want %d", i, u.Index, ref[i].Point.Index)
		}
	}
}

// TestCoordinatorResumeOffset: a sweep resumed at offset k dispatches only
// [k, size) and merges it identically to the tail of the reference.
func TestCoordinatorResumeOffset(t *testing.T) {
	a := newWorker(t)
	sc := testScenario(t)
	c, err := New(Config{Peers: []string{a.URL}, ShardsPerPeer: 2, Log: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	upds := runSweep(t, c, Sweep{
		Doc: json.RawMessage(testDoc), Scenario: sc, Offset: 11,
		Policy: pipeline.CollectPartial,
	})
	ref := singleNodeRef(t, sc)[11:]
	if len(upds) != len(ref) {
		t.Fatalf("%d updates, want %d", len(upds), len(ref))
	}
	for i, u := range upds {
		if u.Index != 11+i || !bytes.Equal(u.Payload, ref[i]) {
			t.Errorf("update %d (index %d) diverged from single-node tail", i, u.Index)
		}
	}
	// An offset at or past the end is a no-op sweep.
	if got := runSweep(t, c, Sweep{Doc: json.RawMessage(testDoc), Scenario: sc, Offset: 16}); len(got) != 0 {
		t.Errorf("full-offset sweep emitted %d updates", len(got))
	}
}

// TestAffinityStable: the same workload/device coordinates always route to
// the same peer, across coordinators with identical peer lists.
func TestAffinityStable(t *testing.T) {
	sc := testScenario(t)
	points, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Coordinator {
		c, err := New(Config{Peers: []string{"h1:1", "h2:1", "h3:1"}})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2 := mk(), mk()
	byAxis := map[string]int{}
	for _, p := range points {
		key := p.Workload + "/" + p.Device.Name
		got := c1.affinity(p)
		if got != c2.affinity(p) {
			t.Fatalf("affinity unstable for %s", key)
		}
		if prev, ok := byAxis[key]; ok && prev != got {
			t.Errorf("axis %s routed to peers %d and %d", key, prev, got)
		}
		byAxis[key] = got
	}
}

// TestPeerHealthQuorum probes a mixed fleet and pins the quorum rule.
func TestPeerHealthQuorum(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer up.Close()
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close()

	c, err := New(Config{Peers: []string{up.URL, down.URL}, HealthTimeout: time.Second, Log: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	sts := c.PeerHealth(context.Background())
	if len(sts) != 2 || !sts[0].OK || sts[1].OK {
		t.Fatalf("statuses = %+v", sts)
	}
	if Quorum(sts) {
		t.Error("1 of 2 peers up reported as quorum (majority of 2 is 2)")
	}

	c3, err := New(Config{Peers: []string{up.URL, up.URL, down.URL}, HealthTimeout: time.Second, Log: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	if !Quorum(c3.PeerHealth(context.Background())) {
		t.Error("2 of 3 peers up not a quorum")
	}
}
