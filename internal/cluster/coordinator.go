// Coordinator side of distributed sweeps: expand the scenario once, split
// the point index space into shards, route each shard to a worker by
// memo-key affinity (hash of the shard's leading workload/device axes, so
// repeated sweeps keep each worker's pipeline memo and stream caches hot),
// stream the shard results back over SSE, and merge them into exact
// scenario.Expand order.
//
// Failure handling is layered. Failed or timed-out shards are reassigned
// to the next peer with capped, jittered exponential backoff under a
// bounded attempt budget; the per-shard resume offset advances past
// results already merged, so retries never recompute or duplicate points.
// Per-peer circuit breakers (breaker.go) take chronically failing peers
// out of the rotation; a hedge monitor (hedge.go) re-sends straggling
// shards to a healthy peer with first-completion-wins semantics; and
// shard deadlines adapt to the fleet's observed pace instead of the
// worst-case ShardTimeout.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"delta/internal/durable"
	"delta/internal/obs"
	"delta/internal/pipeline"
	"delta/internal/scenario"
)

// Fleet metric names, package-level constants by house rule (delta-vet's
// metrichygiene analyzer): one greppable block for the whole
// delta_cluster_ namespace.
const (
	metricShards       = "delta_cluster_shards_total"
	metricRetries      = "delta_cluster_shard_retries_total"
	metricInFlight     = "delta_cluster_shards_in_flight"
	metricMerged       = "delta_cluster_points_merged_total"
	metricMergeLag     = "delta_cluster_merge_lag"
	metricPeerUp       = "delta_cluster_peer_up"
	metricBreakerState = "delta_cluster_breaker_state"
	metricHedged       = "delta_cluster_hedged_shards_total"
	metricHedgeWins    = "delta_cluster_hedge_wins_total"
	metricDeadline     = "delta_cluster_adaptive_deadline_seconds"
)

// Metrics is the fleet's instrumentation; register with NewMetrics and
// share one instance across sweeps. A nil *Metrics disables recording.
type Metrics struct {
	Shards       *obs.CounterVec // metricShards{peer,status}
	Retries      *obs.Counter    // metricRetries
	InFlight     *obs.Gauge      // metricInFlight
	Merged       *obs.Counter    // metricMerged
	MergeLag     *obs.Gauge      // metricMergeLag
	PeerUp       *obs.GaugeVec   // metricPeerUp{peer}
	BreakerState *obs.GaugeVec   // metricBreakerState{peer}
	Hedged       *obs.Counter    // metricHedged
	HedgeWins    *obs.Counter    // metricHedgeWins
	Deadline     *obs.Gauge      // metricDeadline
}

// NewMetrics registers the fleet series on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Shards:       r.CounterVec(metricShards, "Finished shard attempts by peer and outcome.", "peer", "status"),
		Retries:      r.Counter(metricRetries, "Shard attempts retried on another peer after a failure."),
		InFlight:     r.Gauge(metricInFlight, "Shard attempts currently streaming from peers."),
		Merged:       r.Counter(metricMerged, "Scenario points merged into coordinator results."),
		MergeLag:     r.Gauge(metricMergeLag, "Points received out of order, buffered awaiting the in-order merge."),
		PeerUp:       r.GaugeVec(metricPeerUp, "Last observed peer reachability (1 ready, 0 unreachable or degraded).", "peer"),
		BreakerState: r.GaugeVec(metricBreakerState, "Per-peer circuit breaker state (0 closed, 1 half-open, 2 open).", "peer"),
		Hedged:       r.Counter(metricHedged, "Straggling shard attempts speculatively re-dispatched to another peer."),
		HedgeWins:    r.Counter(metricHedgeWins, "Hedged re-dispatches that finished before the original attempt."),
		Deadline:     r.Gauge(metricDeadline, "Most recent adaptive shard deadline derived from the fleet's pace."),
	}
}

// Recorder persists shard lifecycle transitions (the durable store's
// RecordShard). Recording failures are logged, never fatal to the sweep.
type Recorder interface {
	RecordShard(job string, shard, offset, count int, peer string, attempt int, status string) error
}

// Config wires a Coordinator; Peers is required, everything else defaults.
type Config struct {
	// Peers are the workers' base URLs (e.g. http://host:8080).
	Peers []string

	// ShardsPerPeer scales the shard count: the sweep splits into
	// len(Peers)*ShardsPerPeer shards (capped at the point count), small
	// enough for memo affinity to matter, large enough that losing a
	// worker reassigns fractions of the sweep, not halves. Default 4.
	ShardsPerPeer int

	// MaxAttempts bounds failed dispatch attempts per shard; default
	// max(3, len(Peers)+1) so a single dead peer can never exhaust a
	// shard's budget before every other peer has had a turn.
	MaxAttempts int

	// ShardTimeout is the hard ceiling on one shard attempt end to end
	// (default 10m). Once the fleet's pace is known, attempts run under
	// the tighter adaptive deadline instead (see DeadlineSafety).
	ShardTimeout time.Duration

	// RetryBackoff is the initial reassignment delay (default 250ms),
	// doubled per attempt up to MaxBackoff (default 5s), jittered ±50%.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration

	// HealthTimeout bounds one peer /healthz probe (default 2s).
	HealthTimeout time.Duration

	// BreakerThreshold opens a peer's circuit breaker after this many
	// consecutive failures (default 3); BreakerCooldown is how long it
	// stays open before a half-open probe (default 10s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// HedgeMultiplier calls an in-flight attempt a straggler when its
	// elapsed time exceeds HedgeMultiplier × the fleet's median pace for
	// the points it should have delivered (default 4; negative disables
	// hedging). HedgeInterval is the monitor's poll period (default
	// 500ms); HedgeFloor is the minimum age before any attempt may be
	// hedged (default 2s), keeping short shards un-hedged no matter the
	// multiplier.
	HedgeMultiplier float64
	HedgeInterval   time.Duration
	HedgeFloor      time.Duration

	// DeadlineFloor and DeadlineSafety shape adaptive shard deadlines:
	// expected points × median seconds-per-point × DeadlineSafety,
	// clamped to [DeadlineFloor, ShardTimeout] (defaults 30s and 4).
	DeadlineFloor  time.Duration
	DeadlineSafety float64

	// RerouteDelay spaces out queue hops when a peer's breaker rejects a
	// dispatch (default 100ms) so a fully-open fleet doesn't spin.
	RerouteDelay time.Duration

	// Token authenticates against the workers' bearer-auth middleware.
	Token string

	// HTTP issues shard and health requests; nil means a default client
	// (no client-level timeout — shard streams are long-lived).
	HTTP *http.Client

	// Client tunes the per-attempt SSE reconnect policy; zero values take
	// the Client defaults.
	ClientRetries int
	ClientBackoff time.Duration

	Metrics  *Metrics
	Recorder Recorder
	Log      *log.Logger
}

// Coordinator fans a scenario sweep out across a worker fleet. Breakers
// and the pace EWMA persist across sweeps: the coordinator remembers
// which peers are broken and how fast the fleet runs.
type Coordinator struct {
	cfg      Config
	breakers []*Breaker
	rates    *peerRates
}

// New validates the config and applies defaults.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: no peers")
	}
	peers := make([]string, len(cfg.Peers))
	for i, p := range cfg.Peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer %d", i)
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		peers[i] = p
	}
	cfg.Peers = peers
	if cfg.ShardsPerPeer <= 0 {
		cfg.ShardsPerPeer = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = len(peers) + 1
		if cfg.MaxAttempts < 3 {
			cfg.MaxAttempts = 3
		}
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 10 * time.Minute
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 2 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	if cfg.HedgeMultiplier == 0 {
		cfg.HedgeMultiplier = 4
	}
	if cfg.HedgeInterval <= 0 {
		cfg.HedgeInterval = 500 * time.Millisecond
	}
	if cfg.HedgeFloor <= 0 {
		cfg.HedgeFloor = 2 * time.Second
	}
	if cfg.DeadlineFloor <= 0 {
		cfg.DeadlineFloor = 30 * time.Second
	}
	if cfg.DeadlineSafety <= 0 {
		cfg.DeadlineSafety = 4
	}
	if cfg.RerouteDelay <= 0 {
		cfg.RerouteDelay = 100 * time.Millisecond
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{}
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	c := &Coordinator{cfg: cfg, rates: newPeerRates(len(peers))}
	c.breakers = make([]*Breaker, len(peers))
	for i, p := range peers {
		var onChange func(BreakerState)
		if cfg.Metrics != nil && cfg.Metrics.BreakerState != nil {
			gauge, label := cfg.Metrics.BreakerState, peerLabel(p)
			onChange = func(s BreakerState) { gauge.With(label).Set(int64(s)) }
		}
		c.breakers[i] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, onChange)
	}
	return c, nil
}

// Peers returns the normalized peer URLs.
func (c *Coordinator) Peers() []string { return append([]string(nil), c.cfg.Peers...) }

// Update is one merged per-point result, delivered in expansion order.
type Update struct {
	// Index is the point's position in expansion order (dense from the
	// sweep's offset).
	Index int

	// Err is the point's evaluation error ("" on success).
	Err string

	// Payload is the worker-rendered result, byte-identical to what the
	// same point renders single-node.
	Payload json.RawMessage
}

// Sweep describes one distributed run.
type Sweep struct {
	// JobID labels durable shard records (empty skips recording).
	JobID string

	// Doc is the scenario document forwarded verbatim to workers.
	Doc json.RawMessage

	// Scenario is the same document resolved locally — the coordinator
	// expands it once for totals and affinity routing, and trusts workers
	// to expand identically (scenario.Expand is deterministic).
	Scenario scenario.Scenario

	// Offset resumes a sweep: points before it are already merged
	// (len of the durable results), so only [Offset, Size()) is dispatched.
	Offset int

	// Policy is applied to the merged in-order stream: FailFast stops
	// emitting at the first erroring point exactly like a single-node
	// fail-fast sweep; CollectPartial delivers every point.
	Policy pipeline.ErrorPolicy
}

// Sentinel cancellation causes for the run context.
var (
	errSweepDone    = errors.New("cluster: sweep complete")
	errSweepStopped = errors.New("cluster: sweep stopped at failing point")
)

// shardTask is one shard's mutable dispatch state. With hedging, a shard
// can have several attempts in flight at once, so state moves under mu.
type shardTask struct {
	idx int
	rng scenario.Range

	mu         sync.Mutex
	got        int // high-water of points merged from this shard (monotone)
	attempts   int // failed attempts, charged against MaxAttempts
	dispatches int // total dispatches (including hedges): attempt numbering
	done       bool
	inflight   []*shardAttempt
}

// liftGot raises the shard's merged high-water mark; concurrent hedged
// attempts only ever push it forward.
func (t *shardTask) liftGot(n int) {
	t.mu.Lock()
	if n > t.got {
		t.got = n
	}
	t.mu.Unlock()
}

// dispatch is one queue entry: a shard bound for a peer's runner. hops
// counts breaker-rejected reroutes, so a fully-open fleet eventually
// forces the dispatch through instead of circulating it forever.
type dispatch struct {
	t     *shardTask
	hedge bool
	hops  int
}

// sweepState is one Run's shared machinery: the queues, the merger, the
// live-attempt set the hedge monitor watches, and the completion counter.
type sweepState struct {
	c         *Coordinator
	sw        Sweep
	m         *merger
	queues    []chan dispatch
	runCtx    context.Context
	cancel    context.CancelCauseFunc
	wg        *sync.WaitGroup
	remaining atomic.Int64

	mu   sync.Mutex
	live map[*shardAttempt]struct{}
}

func (st *sweepState) track(att *shardAttempt) {
	st.mu.Lock()
	st.live[att] = struct{}{}
	st.mu.Unlock()
}

func (st *sweepState) untrack(att *shardAttempt) {
	st.mu.Lock()
	delete(st.live, att)
	st.mu.Unlock()
}

// attempts snapshots the live set for the hedge monitor. The set is a
// map, so the snapshot is sorted (shard index, then originals before
// hedges) to keep the monitor's scan order — and therefore hedge pacing —
// independent of map iteration order.
func (st *sweepState) attempts() []*shardAttempt {
	st.mu.Lock()
	out := make([]*shardAttempt, 0, len(st.live))
	for att := range st.live {
		out = append(out, att)
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].t.idx != out[j].t.idx {
			return out[i].t.idx < out[j].t.idx
		}
		return !out[i].hedge && out[j].hedge
	})
	return out
}

// enqueue hands a dispatch to a peer's queue from a goroutine, optionally
// after a delay, giving up when the sweep ends — so no send ever blocks a
// runner or leaks past Run.
func (st *sweepState) enqueue(peer int, d dispatch, delay time.Duration) {
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-st.runCtx.Done():
				return
			}
		}
		select {
		case st.queues[peer] <- d:
		case <-st.runCtx.Done():
		}
	}()
}

// Run executes the sweep, delivering merged updates in expansion order via
// emit (called serially). It returns nil when the sweep completes or stops
// at a failing point under FailFast — point errors ride in the updates —
// and an error only for coordination failures: context cancellation, an
// emit error, or a shard exhausting its attempt budget.
func (c *Coordinator) Run(ctx context.Context, sw Sweep, emit func(Update) error) error {
	points, err := sw.Scenario.Expand()
	if err != nil {
		return err
	}
	size := len(points)
	offset := sw.Offset
	if offset < 0 {
		offset = 0
	}
	if offset >= size {
		return nil
	}
	peers := c.cfg.Peers
	ranges := scenario.SplitSpan(offset, size-offset, len(peers)*c.cfg.ShardsPerPeer)
	tasks := make([]*shardTask, len(ranges))
	for i, r := range ranges {
		tasks[i] = &shardTask{idx: i, rng: r}
	}

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	m := &merger{
		next: offset, total: size, buf: make(map[int]Update),
		emit: emit, failFast: sw.Policy == pipeline.FailFast,
		stop: func() { cancel(errSweepStopped) }, metrics: c.cfg.Metrics,
	}
	var wg sync.WaitGroup
	st := &sweepState{
		c: c, sw: sw, m: m, runCtx: runCtx, cancel: cancel, wg: &wg,
		live: make(map[*shardAttempt]struct{}),
	}
	st.remaining.Store(int64(len(tasks)))
	st.queues = make([]chan dispatch, len(peers))
	for i := range st.queues {
		st.queues[i] = make(chan dispatch, len(tasks))
	}
	for _, t := range tasks {
		st.queues[c.affinity(points[t.rng.Offset])] <- dispatch{t: t}
	}

	for i := range peers {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			for {
				select {
				case <-runCtx.Done():
					return
				case d := <-st.queues[peer]:
					if !c.breakers[peer].Allow() && d.hops < len(peers) {
						// Breaker open: pass the shard along instead of
						// burning an attempt on a peer known broken. After a
						// full loop of rejections it runs anyway — the
						// attempt budget, not the breakers, decides when a
						// sweep with no healthy peers dies.
						d.hops++
						st.enqueue((peer+1)%len(peers), d, c.cfg.RerouteDelay)
						continue
					}
					c.runShard(st, peer, d)
				}
			}
		}(i)
	}
	if c.cfg.HedgeMultiplier > 0 && len(peers) > 1 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.hedgeLoop()
		}()
	}
	<-runCtx.Done()
	wg.Wait()

	cause := context.Cause(runCtx)
	switch {
	case errors.Is(cause, errSweepDone), errors.Is(cause, errSweepStopped):
		return nil
	case ctx.Err() != nil:
		return ctx.Err()
	default:
		return cause
	}
}

// runShard runs one dispatch attempt and handles its outcome: completion
// (first finisher wins, cancelling hedge siblings), reassignment with
// backoff, or sweep failure when the budget is spent.
func (c *Coordinator) runShard(st *sweepState, peer int, d dispatch) {
	t := d.t
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.dispatches++
	attemptNo := t.dispatches
	startGot := t.got
	//lint:ignore determinism attempt start times pace hedging/backoff only; merged results are ordered by shard index, never by wall clock
	att := &shardAttempt{t: t, peer: peer, hedge: d.hedge, start: time.Now()}
	t.inflight = append(t.inflight, att)
	t.mu.Unlock()

	peerURL := c.cfg.Peers[peer]
	c.record(st.sw.JobID, t, peerURL, attemptNo, durable.ShardDispatched)
	if mt := c.cfg.Metrics; mt != nil {
		mt.InFlight.Inc()
	}
	actx, acancel := context.WithCancel(st.runCtx)
	att.cancel = acancel
	st.track(att)
	err := c.streamShard(actx, st.sw, peer, att, st.m, startGot)
	acancel()
	st.untrack(att)
	if mt := c.cfg.Metrics; mt != nil {
		mt.InFlight.Dec()
	}

	t.mu.Lock()
	for i, a := range t.inflight {
		if a == att {
			t.inflight = append(t.inflight[:i], t.inflight[i+1:]...)
			break
		}
	}
	if t.done || st.runCtx.Err() != nil {
		// A hedge sibling already finished this shard, or the sweep ended
		// (done, stopped, cancelled, or failed elsewhere) while this
		// attempt was in flight; its outcome no longer matters.
		t.mu.Unlock()
		return
	}
	if err == nil {
		t.done = true
		losers := append([]*shardAttempt(nil), t.inflight...)
		t.mu.Unlock()
		for _, l := range losers {
			l.cancel()
		}
		c.breakers[peer].Success()
		c.record(st.sw.JobID, t, peerURL, attemptNo, durable.ShardDone)
		if mt := c.cfg.Metrics; mt != nil {
			mt.Shards.With(peerLabel(peerURL), durable.ShardDone).Inc()
			mt.PeerUp.With(peerLabel(peerURL)).Set(1)
			if att.hedge {
				mt.HedgeWins.Inc()
			}
		}
		if st.remaining.Add(-1) == 0 {
			st.cancel(errSweepDone)
		}
		return
	}

	t.attempts++
	fails := t.attempts
	siblings := len(t.inflight)
	t.mu.Unlock()

	c.breakers[peer].Failure()
	c.record(st.sw.JobID, t, peerURL, attemptNo, durable.ShardFailed)
	if mt := c.cfg.Metrics; mt != nil {
		mt.Shards.With(peerLabel(peerURL), durable.ShardFailed).Inc()
		mt.PeerUp.With(peerLabel(peerURL)).Set(0)
	}
	var ee errEmit
	if errors.As(err, &ee) {
		st.cancel(fmt.Errorf("cluster: merging shard %d: %w", t.idx, ee.err))
		return
	}
	if siblings > 0 {
		// A hedge (or the original) is still streaming this shard; it
		// inherits sole responsibility for the next move.
		return
	}
	if fails >= c.cfg.MaxAttempts {
		st.cancel(fmt.Errorf("cluster: shard %d [%d,+%d) failed after %d attempt(s), last on %s: %w",
			t.idx, t.rng.Offset, t.rng.Count, fails, peerURL, err))
		return
	}
	if mt := c.cfg.Metrics; mt != nil {
		mt.Retries.Inc()
	}
	c.cfg.Log.Printf("cluster: shard %d attempt %d on %s failed (%v); reassigning", t.idx, attemptNo, peerURL, err)
	st.enqueue((peer+1)%len(st.queues), dispatch{t: t},
		backoffFor(c.cfg.RetryBackoff, c.cfg.MaxBackoff, fails))
}

// streamShard runs one SSE attempt against a peer, merging results and
// advancing the shard's resume high-water as in-order frames arrive. The
// request window starts at the shard's merged high-water when the attempt
// began, so retries after partial progress re-request only the remainder.
func (c *Coordinator) streamShard(actx context.Context, sw Sweep, peer int, att *shardAttempt, m *merger, startGot int) error {
	t := att.t
	window := t.rng.Count - startGot
	body, err := json.Marshal(struct {
		Scenario json.RawMessage `json:"scenario"`
		Offset   int             `json:"offset"`
		Limit    int             `json:"limit"`
	}{sw.Doc, t.rng.Offset + startGot, window})
	if err != nil {
		return errEmit{err} // malformed sweep doc: retrying cannot help
	}
	sctx, scancel := context.WithTimeout(actx, c.shardDeadline(window))
	defer scancel()
	cli := &Client{
		HTTP: c.cfg.HTTP, Token: c.cfg.Token,
		Retries: c.cfg.ClientRetries, Backoff: c.cfg.ClientBackoff,
	}
	expected := t.rng.Offset + startGot
	end := t.rng.Offset + t.rng.Count
	var doneCount int
	last := att.start
	err = cli.Stream(sctx, c.cfg.Peers[peer]+"/v2/shards", body, func(ev Event) error {
		switch ev.Type {
		case "result":
			var res wireResult
			if uerr := json.Unmarshal(ev.Data, &res); uerr != nil {
				return BadFrameError{fmt.Errorf("cluster: bad result frame: %w", uerr)}
			}
			if res.Index != expected {
				return BadFrameError{fmt.Errorf("cluster: shard %d: point %d out of order (want %d)", t.idx, res.Index, expected)}
			}
			if merr := m.deliver(Update{Index: res.Index, Err: res.Error, Payload: res.Payload}); merr != nil {
				return merr
			}
			expected++
			att.delivered.Add(1)
			//lint:ignore determinism inter-frame pacing feeds the hedge EWMA, not the merged result stream
			now := time.Now()
			c.rates.observe(peer, now.Sub(last).Seconds())
			last = now
			t.liftGot(expected - t.rng.Offset)
		case "done":
			var d wireDone
			if uerr := json.Unmarshal(ev.Data, &d); uerr != nil {
				return BadFrameError{fmt.Errorf("cluster: bad done frame: %w", uerr)}
			}
			if d.Error != "" {
				return fmt.Errorf("cluster: worker failed shard: %s", d.Error)
			}
			doneCount = d.Count
		}
		return nil
	})
	if err != nil {
		return err
	}
	// The worker's done frame counts this attempt's request window, not
	// the whole shard — an attempt resuming after partial progress
	// streams only the remainder.
	if expected != end || doneCount != window {
		return fmt.Errorf("cluster: shard %d short: got %d of %d point(s) (done frame said %d of %d)",
			t.idx, expected-t.rng.Offset, t.rng.Count, doneCount, window)
	}
	return nil
}

// record persists one shard transition, logging (not failing) on error.
func (c *Coordinator) record(job string, t *shardTask, peerURL string, attempt int, status string) {
	if c.cfg.Recorder == nil || job == "" {
		return
	}
	if err := c.cfg.Recorder.RecordShard(job, t.idx, t.rng.Offset, t.rng.Count, peerLabel(peerURL), attempt, status); err != nil {
		c.cfg.Log.Printf("cluster: recording shard %d %s: %v", t.idx, status, err)
	}
}

// affinity routes a shard (by its leading point) to a peer: a stable hash
// of the workload/device axes, so re-runs and related sweeps land the same
// axis combinations on the same workers and their pipeline memo,
// StreamCache, and shared-stream tiers stay hot.
func (c *Coordinator) affinity(p scenario.Point) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(p.Workload))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(p.Device.Name))
	return int(h.Sum32() % uint32(len(c.cfg.Peers)))
}

// peerLabel is the metric/WAL label for a peer URL (scheme stripped to
// bound label churn across config styles).
func peerLabel(u string) string {
	if _, rest, ok := strings.Cut(u, "://"); ok {
		return rest
	}
	return u
}

// merger folds concurrent shard results back into expansion order: updates
// buffer until their index is next, then emit in order. Stale duplicates
// (reconnect replays racing an advanced resume offset, or a hedge pair
// covering the same window) are dropped; under FailFast the first erroring
// in-order point stops the sweep exactly where a single-node fail-fast
// stream would.
type merger struct {
	mu       sync.Mutex
	next     int
	total    int
	buf      map[int]Update
	emit     func(Update) error
	failFast bool
	stopped  bool
	stop     func()
	metrics  *Metrics
}

func (m *merger) deliver(u Update) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped || u.Index < m.next {
		return nil
	}
	if _, dup := m.buf[u.Index]; dup {
		return nil
	}
	m.buf[u.Index] = u
	for {
		nu, ok := m.buf[m.next]
		if !ok {
			break
		}
		delete(m.buf, m.next)
		if err := m.emit(nu); err != nil {
			m.stopped = true
			return errEmit{err}
		}
		m.next++
		if m.metrics != nil {
			m.metrics.Merged.Inc()
		}
		if nu.Err != "" && m.failFast {
			m.stopped = true
			m.stop()
			break
		}
	}
	if m.metrics != nil {
		m.metrics.MergeLag.Set(int64(len(m.buf)))
	}
	return nil
}

// PeerStatus is one peer's probed health.
type PeerStatus struct {
	Peer    string `json:"peer"`
	OK      bool   `json:"ok"`
	Err     string `json:"error,omitempty"`
	Breaker string `json:"breaker,omitempty"`
}

// PeerHealth probes every peer's /healthz concurrently (bounded by
// HealthTimeout) and updates the per-peer reachability gauge. A peer is OK
// only on HTTP 200 — reachable-but-degraded workers count against quorum.
// Probes ride the same circuit breakers as shard traffic: an open breaker
// skips the HTTP probe entirely (reporting the peer down with "breaker
// open"), and probe outcomes feed the breaker, so /healthz polling is what
// walks a recovering peer through half-open back to closed.
func (c *Coordinator) PeerHealth(ctx context.Context) []PeerStatus {
	out := make([]PeerStatus, len(c.cfg.Peers))
	var wg sync.WaitGroup
	for i, p := range c.cfg.Peers {
		wg.Add(1)
		go func(i int, peerURL string) {
			defer wg.Done()
			br := c.breakers[i]
			st := PeerStatus{Peer: peerLabel(peerURL)}
			if !br.Allow() {
				st.Err = "breaker open"
				st.Breaker = br.State().String()
				if mt := c.cfg.Metrics; mt != nil {
					mt.PeerUp.With(st.Peer).Set(0)
				}
				out[i] = st
				return
			}
			pctx, cancel := context.WithTimeout(ctx, c.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, peerURL+"/healthz", nil)
			if err == nil {
				var resp *http.Response
				resp, err = c.cfg.HTTP.Do(req)
				if err == nil {
					if resp.StatusCode == http.StatusOK {
						st.OK = true
					} else {
						st.Err = fmt.Sprintf("status %d", resp.StatusCode)
					}
					resp.Body.Close()
				}
			}
			if err != nil {
				st.Err = err.Error()
			}
			if st.OK {
				br.Success()
			} else {
				br.Failure()
			}
			st.Breaker = br.State().String()
			if mt := c.cfg.Metrics; mt != nil {
				up := int64(0)
				if st.OK {
					up = 1
				}
				mt.PeerUp.With(st.Peer).Set(up)
			}
			out[i] = st
		}(i, p)
	}
	wg.Wait()
	return out
}

// Quorum reports whether a majority (n/2+1) of probed peers are OK.
func Quorum(sts []PeerStatus) bool {
	up := 0
	for _, st := range sts {
		if st.OK {
			up++
		}
	}
	return up >= len(sts)/2+1
}
