// Coordinator side of distributed sweeps: expand the scenario once, split
// the point index space into shards, route each shard to a worker by
// memo-key affinity (hash of the shard's leading workload/device axes, so
// repeated sweeps keep each worker's pipeline memo and stream caches hot),
// stream the shard results back over SSE, and merge them into exact
// scenario.Expand order. Failed or timed-out shards are reassigned to the
// next peer with jittered exponential backoff and a bounded attempt
// budget; the per-shard resume offset advances past results already
// merged, so retries never recompute or duplicate points.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"delta/internal/durable"
	"delta/internal/obs"
	"delta/internal/pipeline"
	"delta/internal/scenario"
)

// Metrics is the fleet's instrumentation; register with NewMetrics and
// share one instance across sweeps. A nil *Metrics disables recording.
type Metrics struct {
	Shards   *obs.CounterVec // delta_cluster_shards_total{peer,status}
	Retries  *obs.Counter    // delta_cluster_shard_retries_total
	InFlight *obs.Gauge      // delta_cluster_shards_in_flight
	Merged   *obs.Counter    // delta_cluster_points_merged_total
	MergeLag *obs.Gauge      // delta_cluster_merge_lag
	PeerUp   *obs.GaugeVec   // delta_cluster_peer_up{peer}
}

// NewMetrics registers the fleet series on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Shards:   r.CounterVec("delta_cluster_shards_total", "Finished shard attempts by peer and outcome.", "peer", "status"),
		Retries:  r.Counter("delta_cluster_shard_retries_total", "Shard attempts retried on another peer after a failure."),
		InFlight: r.Gauge("delta_cluster_shards_in_flight", "Shard attempts currently streaming from peers."),
		Merged:   r.Counter("delta_cluster_points_merged_total", "Scenario points merged into coordinator results."),
		MergeLag: r.Gauge("delta_cluster_merge_lag", "Points received out of order, buffered awaiting the in-order merge."),
		PeerUp:   r.GaugeVec("delta_cluster_peer_up", "Last observed peer reachability (1 ready, 0 unreachable or degraded).", "peer"),
	}
}

// Recorder persists shard lifecycle transitions (the durable store's
// RecordShard). Recording failures are logged, never fatal to the sweep.
type Recorder interface {
	RecordShard(job string, shard, offset, count int, peer string, attempt int, status string) error
}

// Config wires a Coordinator; Peers is required, everything else defaults.
type Config struct {
	// Peers are the workers' base URLs (e.g. http://host:8080).
	Peers []string

	// ShardsPerPeer scales the shard count: the sweep splits into
	// len(Peers)*ShardsPerPeer shards (capped at the point count), small
	// enough for memo affinity to matter, large enough that losing a
	// worker reassigns fractions of the sweep, not halves. Default 4.
	ShardsPerPeer int

	// MaxAttempts bounds dispatch attempts per shard; default
	// max(3, len(Peers)+1) so a single dead peer can never exhaust a
	// shard's budget before every other peer has had a turn.
	MaxAttempts int

	// ShardTimeout bounds one shard attempt end to end (default 10m).
	ShardTimeout time.Duration

	// RetryBackoff is the initial reassignment delay (default 250ms),
	// doubled per attempt up to MaxBackoff (default 5s), jittered ±50%.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration

	// HealthTimeout bounds one peer /healthz probe (default 2s).
	HealthTimeout time.Duration

	// Token authenticates against the workers' bearer-auth middleware.
	Token string

	// HTTP issues shard and health requests; nil means a default client
	// (no client-level timeout — shard streams are long-lived).
	HTTP *http.Client

	// Client tunes the per-attempt SSE reconnect policy; zero values take
	// the Client defaults.
	ClientRetries int
	ClientBackoff time.Duration

	Metrics  *Metrics
	Recorder Recorder
	Log      *log.Logger
}

// Coordinator fans a scenario sweep out across a worker fleet.
type Coordinator struct {
	cfg Config
}

// New validates the config and applies defaults.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: no peers")
	}
	peers := make([]string, len(cfg.Peers))
	for i, p := range cfg.Peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer %d", i)
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		peers[i] = p
	}
	cfg.Peers = peers
	if cfg.ShardsPerPeer <= 0 {
		cfg.ShardsPerPeer = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = len(peers) + 1
		if cfg.MaxAttempts < 3 {
			cfg.MaxAttempts = 3
		}
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 10 * time.Minute
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 2 * time.Second
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{}
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	return &Coordinator{cfg: cfg}, nil
}

// Peers returns the normalized peer URLs.
func (c *Coordinator) Peers() []string { return append([]string(nil), c.cfg.Peers...) }

// Update is one merged per-point result, delivered in expansion order.
type Update struct {
	// Index is the point's position in expansion order (dense from the
	// sweep's offset).
	Index int

	// Err is the point's evaluation error ("" on success).
	Err string

	// Payload is the worker-rendered result, byte-identical to what the
	// same point renders single-node.
	Payload json.RawMessage
}

// Sweep describes one distributed run.
type Sweep struct {
	// JobID labels durable shard records (empty skips recording).
	JobID string

	// Doc is the scenario document forwarded verbatim to workers.
	Doc json.RawMessage

	// Scenario is the same document resolved locally — the coordinator
	// expands it once for totals and affinity routing, and trusts workers
	// to expand identically (scenario.Expand is deterministic).
	Scenario scenario.Scenario

	// Offset resumes a sweep: points before it are already merged
	// (len of the durable results), so only [Offset, Size()) is dispatched.
	Offset int

	// Policy is applied to the merged in-order stream: FailFast stops
	// emitting at the first erroring point exactly like a single-node
	// fail-fast sweep; CollectPartial delivers every point.
	Policy pipeline.ErrorPolicy
}

// Sentinel cancellation causes for the run context.
var (
	errSweepDone    = errors.New("cluster: sweep complete")
	errSweepStopped = errors.New("cluster: sweep stopped at failing point")
)

// shardTask is one shard's mutable dispatch state. It is owned by exactly
// one runner goroutine at a time (handed off through channels), so no lock.
type shardTask struct {
	idx      int
	rng      scenario.Range
	got      int // points already merged from this shard (monotone)
	attempts int // finished attempts
}

// Run executes the sweep, delivering merged updates in expansion order via
// emit (called serially). It returns nil when the sweep completes or stops
// at a failing point under FailFast — point errors ride in the updates —
// and an error only for coordination failures: context cancellation, an
// emit error, or a shard exhausting its attempt budget.
func (c *Coordinator) Run(ctx context.Context, sw Sweep, emit func(Update) error) error {
	points, err := sw.Scenario.Expand()
	if err != nil {
		return err
	}
	size := len(points)
	offset := sw.Offset
	if offset < 0 {
		offset = 0
	}
	if offset >= size {
		return nil
	}
	peers := c.cfg.Peers
	ranges := scenario.SplitSpan(offset, size-offset, len(peers)*c.cfg.ShardsPerPeer)
	tasks := make([]*shardTask, len(ranges))
	for i, r := range ranges {
		tasks[i] = &shardTask{idx: i, rng: r}
	}

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	m := &merger{
		next: offset, total: size, buf: make(map[int]Update),
		emit: emit, failFast: sw.Policy == pipeline.FailFast,
		stop: func() { cancel(errSweepStopped) }, metrics: c.cfg.Metrics,
	}
	var remaining atomic.Int64
	remaining.Store(int64(len(tasks)))

	// Per-peer queues sized so every possible enqueue (each shard at most
	// MaxAttempts times) fits without blocking: reassignment never
	// deadlocks against a stuck runner.
	queues := make([]chan *shardTask, len(peers))
	for i := range queues {
		queues[i] = make(chan *shardTask, len(tasks)*c.cfg.MaxAttempts)
	}
	for _, t := range tasks {
		queues[c.affinity(points[t.rng.Offset])] <- t
	}

	var wg sync.WaitGroup
	for i := range peers {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			for {
				select {
				case <-runCtx.Done():
					return
				case t := <-queues[peer]:
					c.runShard(runCtx, cancel, sw, peer, t, m, &remaining, queues, &wg)
				}
			}
		}(i)
	}
	<-runCtx.Done()
	wg.Wait()

	cause := context.Cause(runCtx)
	switch {
	case errors.Is(cause, errSweepDone), errors.Is(cause, errSweepStopped):
		return nil
	case ctx.Err() != nil:
		return ctx.Err()
	default:
		return cause
	}
}

// runShard runs one dispatch attempt and handles its outcome: completion,
// reassignment with backoff, or sweep failure when the budget is spent.
func (c *Coordinator) runShard(runCtx context.Context, cancel context.CancelCauseFunc, sw Sweep, peer int, t *shardTask, m *merger, remaining *atomic.Int64, queues []chan *shardTask, wg *sync.WaitGroup) {
	peerURL := c.cfg.Peers[peer]
	attempt := t.attempts + 1
	c.record(sw.JobID, t, peerURL, attempt, durable.ShardDispatched)
	if mt := c.cfg.Metrics; mt != nil {
		mt.InFlight.Inc()
	}
	err := c.streamShard(runCtx, sw, peerURL, t, m)
	if mt := c.cfg.Metrics; mt != nil {
		mt.InFlight.Dec()
	}
	if runCtx.Err() != nil {
		// The sweep ended (done, stopped, cancelled, or failed elsewhere)
		// while this attempt was in flight; its outcome no longer matters.
		return
	}
	if err == nil {
		c.record(sw.JobID, t, peerURL, attempt, durable.ShardDone)
		if mt := c.cfg.Metrics; mt != nil {
			mt.Shards.With(peerLabel(peerURL), durable.ShardDone).Inc()
			mt.PeerUp.With(peerLabel(peerURL)).Set(1)
		}
		if remaining.Add(-1) == 0 {
			cancel(errSweepDone)
		}
		return
	}

	t.attempts = attempt
	c.record(sw.JobID, t, peerURL, attempt, durable.ShardFailed)
	if mt := c.cfg.Metrics; mt != nil {
		mt.Shards.With(peerLabel(peerURL), durable.ShardFailed).Inc()
		mt.PeerUp.With(peerLabel(peerURL)).Set(0)
	}
	var ee errEmit
	if errors.As(err, &ee) {
		cancel(fmt.Errorf("cluster: merging shard %d: %w", t.idx, ee.err))
		return
	}
	if attempt >= c.cfg.MaxAttempts {
		cancel(fmt.Errorf("cluster: shard %d [%d,+%d) failed after %d attempt(s), last on %s: %w",
			t.idx, t.rng.Offset, t.rng.Count, attempt, peerURL, err))
		return
	}
	if mt := c.cfg.Metrics; mt != nil {
		mt.Retries.Inc()
	}
	c.cfg.Log.Printf("cluster: shard %d attempt %d on %s failed (%v); reassigning", t.idx, attempt, peerURL, err)
	next := (peer + 1) % len(queues)
	d := c.cfg.RetryBackoff << (attempt - 1)
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-time.After(d):
			queues[next] <- t // buffered for the worst case; never blocks
		case <-runCtx.Done():
		}
	}()
}

// streamShard runs one SSE attempt against a peer, advancing the shard's
// resume offset as in-order results arrive.
func (c *Coordinator) streamShard(runCtx context.Context, sw Sweep, peerURL string, t *shardTask, m *merger) error {
	body, err := json.Marshal(struct {
		Scenario json.RawMessage `json:"scenario"`
		Offset   int             `json:"offset"`
		Limit    int             `json:"limit"`
	}{sw.Doc, t.rng.Offset + t.got, t.rng.Count - t.got})
	if err != nil {
		return errEmit{err} // malformed sweep doc: retrying cannot help
	}
	actx, acancel := context.WithTimeout(runCtx, c.cfg.ShardTimeout)
	defer acancel()
	cli := &Client{
		HTTP: c.cfg.HTTP, Token: c.cfg.Token,
		Retries: c.cfg.ClientRetries, Backoff: c.cfg.ClientBackoff,
	}
	expected := t.rng.Offset + t.got
	var doneCount int
	err = cli.Stream(actx, peerURL+"/v2/shards", body, func(ev Event) error {
		switch ev.Type {
		case "result":
			var res wireResult
			if uerr := json.Unmarshal(ev.Data, &res); uerr != nil {
				return fmt.Errorf("cluster: bad result frame: %w", uerr)
			}
			if res.Index != expected {
				return fmt.Errorf("cluster: shard %d: point %d out of order (want %d)", t.idx, res.Index, expected)
			}
			if merr := m.deliver(Update{Index: res.Index, Err: res.Error, Payload: res.Payload}); merr != nil {
				return merr
			}
			t.got++
			expected++
		case "done":
			var d wireDone
			if uerr := json.Unmarshal(ev.Data, &d); uerr != nil {
				return fmt.Errorf("cluster: bad done frame: %w", uerr)
			}
			if d.Error != "" {
				return fmt.Errorf("cluster: worker failed shard: %s", d.Error)
			}
			doneCount = d.Count
		}
		return nil
	})
	if err != nil {
		return err
	}
	if t.got != t.rng.Count || doneCount != t.rng.Count {
		return fmt.Errorf("cluster: shard %d short: got %d of %d point(s) (done frame said %d)",
			t.idx, t.got, t.rng.Count, doneCount)
	}
	return nil
}

// record persists one shard transition, logging (not failing) on error.
func (c *Coordinator) record(job string, t *shardTask, peerURL string, attempt int, status string) {
	if c.cfg.Recorder == nil || job == "" {
		return
	}
	if err := c.cfg.Recorder.RecordShard(job, t.idx, t.rng.Offset, t.rng.Count, peerLabel(peerURL), attempt, status); err != nil {
		c.cfg.Log.Printf("cluster: recording shard %d %s: %v", t.idx, status, err)
	}
}

// affinity routes a shard (by its leading point) to a peer: a stable hash
// of the workload/device axes, so re-runs and related sweeps land the same
// axis combinations on the same workers and their pipeline memo,
// StreamCache, and shared-stream tiers stay hot.
func (c *Coordinator) affinity(p scenario.Point) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(p.Workload))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(p.Device.Name))
	return int(h.Sum32() % uint32(len(c.cfg.Peers)))
}

// peerLabel is the metric/WAL label for a peer URL (scheme stripped to
// bound label churn across config styles).
func peerLabel(u string) string {
	if _, rest, ok := strings.Cut(u, "://"); ok {
		return rest
	}
	return u
}

// merger folds concurrent shard results back into expansion order: updates
// buffer until their index is next, then emit in order. Stale duplicates
// (reconnect replays racing an advanced resume offset) are dropped; under
// FailFast the first erroring in-order point stops the sweep exactly where
// a single-node fail-fast stream would.
type merger struct {
	mu       sync.Mutex
	next     int
	total    int
	buf      map[int]Update
	emit     func(Update) error
	failFast bool
	stopped  bool
	stop     func()
	metrics  *Metrics
}

func (m *merger) deliver(u Update) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped || u.Index < m.next {
		return nil
	}
	if _, dup := m.buf[u.Index]; dup {
		return nil
	}
	m.buf[u.Index] = u
	for {
		nu, ok := m.buf[m.next]
		if !ok {
			break
		}
		delete(m.buf, m.next)
		if err := m.emit(nu); err != nil {
			m.stopped = true
			return errEmit{err}
		}
		m.next++
		if m.metrics != nil {
			m.metrics.Merged.Inc()
		}
		if nu.Err != "" && m.failFast {
			m.stopped = true
			m.stop()
			break
		}
	}
	if m.metrics != nil {
		m.metrics.MergeLag.Set(int64(len(m.buf)))
	}
	return nil
}

// PeerStatus is one peer's probed health.
type PeerStatus struct {
	Peer string `json:"peer"`
	OK   bool   `json:"ok"`
	Err  string `json:"error,omitempty"`
}

// PeerHealth probes every peer's /healthz concurrently (bounded by
// HealthTimeout) and updates the per-peer reachability gauge. A peer is OK
// only on HTTP 200 — reachable-but-degraded workers count against quorum.
func (c *Coordinator) PeerHealth(ctx context.Context) []PeerStatus {
	out := make([]PeerStatus, len(c.cfg.Peers))
	var wg sync.WaitGroup
	for i, p := range c.cfg.Peers {
		wg.Add(1)
		go func(i int, peerURL string) {
			defer wg.Done()
			st := PeerStatus{Peer: peerLabel(peerURL)}
			pctx, cancel := context.WithTimeout(ctx, c.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, peerURL+"/healthz", nil)
			if err == nil {
				var resp *http.Response
				resp, err = c.cfg.HTTP.Do(req)
				if err == nil {
					if resp.StatusCode == http.StatusOK {
						st.OK = true
					} else {
						st.Err = fmt.Sprintf("status %d", resp.StatusCode)
					}
					resp.Body.Close()
				}
			}
			if err != nil {
				st.Err = err.Error()
			}
			if mt := c.cfg.Metrics; mt != nil {
				up := int64(0)
				if st.OK {
					up = 1
				}
				mt.PeerUp.With(st.Peer).Set(up)
			}
			out[i] = st
		}(i, p)
	}
	wg.Wait()
	return out
}

// Quorum reports whether a majority (n/2+1) of probed peers are OK.
func Quorum(sts []PeerStatus) bool {
	up := 0
	for _, st := range sts {
		if st.OK {
			up++
		}
	}
	return up >= len(sts)/2+1
}
