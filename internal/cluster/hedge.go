// Straggler handling: the coordinator keeps a per-peer EWMA of observed
// seconds-per-point (fed by the merge path as result frames arrive) and a
// hedge monitor that watches in-flight shard attempts. An attempt lagging
// HedgeMultiplier× behind the fleet median pace is speculatively re-sent
// to the healthiest other peer; the first completion wins, the loser is
// cancelled, and the merger's index dedupe keeps the overlap invisible.
// The same EWMA drives adaptive shard deadlines — expected points ×
// median pace × safety factor — replacing the one-size ShardTimeout.
package cluster

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// peerRates tracks one EWMA of seconds-per-point per peer. It lives on
// the Coordinator, persisting across sweeps, so a follow-up sweep starts
// with a calibrated pace instead of re-learning the fleet.
type peerRates struct {
	mu   sync.Mutex
	ewma []float64 // seconds per point; 0 = never observed
}

// ewmaAlpha weights new observations ~30%: noisy single frames don't whip
// the pace around, but a genuinely slowed peer shows within a few points.
const ewmaAlpha = 0.3

func newPeerRates(n int) *peerRates { return &peerRates{ewma: make([]float64, n)} }

// observe folds one inter-result gap into the peer's pace.
func (r *peerRates) observe(peer int, secPerPoint float64) {
	if secPerPoint < 0 || math.IsNaN(secPerPoint) || math.IsInf(secPerPoint, 0) {
		return
	}
	r.mu.Lock()
	if cur := r.ewma[peer]; cur == 0 {
		r.ewma[peer] = secPerPoint
	} else {
		r.ewma[peer] = ewmaAlpha*secPerPoint + (1-ewmaAlpha)*cur
	}
	r.mu.Unlock()
}

// rate returns the peer's pace (0 = unknown).
func (r *peerRates) rate(peer int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ewma[peer]
}

// median returns the fleet's median pace over peers with observations —
// the LOWER median, deliberately optimistic: when half the fleet is slow,
// the healthy half defines "on pace" and the slow half reads as lagging.
// Returns 0 until any peer has been observed.
func (r *peerRates) median() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var known []float64
	for _, v := range r.ewma {
		if v > 0 {
			known = append(known, v)
		}
	}
	if len(known) == 0 {
		return 0
	}
	sort.Float64s(known)
	return known[(len(known)-1)/2]
}

// shardAttempt is one live dispatch of a shard to a peer, visible to the
// hedge monitor while streaming.
type shardAttempt struct {
	t     *shardTask
	peer  int
	hedge bool
	start time.Time

	cancel func()

	// delivered counts result frames merged by this attempt.
	delivered atomic.Int64

	// hedged marks that the monitor already issued a hedge for this
	// attempt (set under t.mu).
	hedged bool
}

// shardDeadline derives one attempt's deadline from the fleet pace:
// expected points × median seconds-per-point × DeadlineSafety, clamped to
// [DeadlineFloor, ShardTimeout]. With no pace observed yet (first shards
// of a cold coordinator) the full ShardTimeout applies.
func (c *Coordinator) shardDeadline(points int) time.Duration {
	med := c.rates.median()
	if med <= 0 || points <= 0 {
		return c.cfg.ShardTimeout
	}
	d := time.Duration(float64(points) * med * c.cfg.DeadlineSafety * float64(time.Second))
	if d < c.cfg.DeadlineFloor {
		d = c.cfg.DeadlineFloor
	}
	if d > c.cfg.ShardTimeout {
		d = c.cfg.ShardTimeout
	}
	if mt := c.cfg.Metrics; mt != nil {
		mt.Deadline.Set(int64(math.Ceil(d.Seconds())))
	}
	return d
}

// hedgeLoop watches in-flight attempts every HedgeInterval and re-sends
// stragglers. It exits when the sweep's context ends.
func (st *sweepState) hedgeLoop() {
	tick := time.NewTicker(st.c.cfg.HedgeInterval)
	defer tick.Stop()
	for {
		select {
		case <-st.runCtx.Done():
			return
		case <-tick.C:
		}
		med := st.c.rates.median()
		if med <= 0 {
			// No pace observed yet: nothing to call a straggler against.
			continue
		}
		for _, att := range st.attempts() {
			st.maybeHedge(att, med)
		}
	}
}

// maybeHedge hedges one attempt if it is a straggler: elapsed time beyond
// HedgeFloor and beyond HedgeMultiplier× the median time the fleet would
// need for the progress it should have made (delivered+1 points — the +1
// keeps a zero-progress attempt measurable).
func (st *sweepState) maybeHedge(att *shardAttempt, med float64) {
	c := st.c
	if att.hedge {
		return // hedges are not themselves hedged
	}
	elapsed := time.Since(att.start) //lint:ignore determinism straggler elapsed time paces hedging only, never merged results
	if elapsed < c.cfg.HedgeFloor {
		return
	}
	expect := med * float64(att.delivered.Load()+1) * c.cfg.HedgeMultiplier
	if elapsed.Seconds() <= expect {
		return
	}
	t := att.t
	t.mu.Lock()
	if t.done || att.hedged || len(t.inflight) > 1 {
		t.mu.Unlock()
		return
	}
	att.hedged = true
	t.mu.Unlock()

	target, ok := st.hedgeTarget(att.peer)
	if !ok {
		return
	}
	if mt := c.cfg.Metrics; mt != nil {
		mt.Hedged.Inc()
	}
	c.cfg.Log.Printf("cluster: shard %d lagging on %s (%.1fs elapsed, fleet median %.3fs/point); hedging to %s",
		t.idx, peerLabel(c.cfg.Peers[att.peer]), elapsed.Seconds(), med, peerLabel(c.cfg.Peers[target]))
	st.enqueue(target, dispatch{t: t, hedge: true}, 0)
}

// hedgeTarget picks the fastest other peer whose breaker admits traffic;
// peers with no observed pace count as median-paced.
func (st *sweepState) hedgeTarget(not int) (int, bool) {
	c := st.c
	med := c.rates.median()
	best, bestRate, found := 0, math.Inf(1), false
	for i := range c.cfg.Peers {
		if i == not || c.breakers[i].State() == BreakerOpen {
			continue
		}
		r := c.rates.rate(i)
		if r == 0 {
			r = med
		}
		if r < bestRate {
			best, bestRate, found = i, r, true
		}
	}
	return best, found
}
