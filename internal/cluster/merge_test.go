// Adversarial completion-order tests for the merger: whatever order
// shards (and hedged duplicates of shards) finish in, the emitted stream
// is the dense in-order point sequence, each point exactly once.
package cluster

import (
	"encoding/json"
	"fmt"
	"testing"
)

func mergeHarness(total int) (*merger, *[]Update, *bool) {
	var out []Update
	stopped := false
	m := &merger{
		next: 0, total: total, buf: make(map[int]Update),
		emit: func(u Update) error { out = append(out, u); return nil },
		stop: func() { stopped = true },
	}
	return m, &out, &stopped
}

func upd(i int) Update {
	return Update{Index: i, Payload: json.RawMessage(fmt.Sprintf(`{"p":%d}`, i))}
}

func checkDense(t *testing.T, out []Update, total int) {
	t.Helper()
	if len(out) != total {
		t.Fatalf("emitted %d updates, want %d", len(out), total)
	}
	for i, u := range out {
		if u.Index != i {
			t.Fatalf("emitted index %d at position %d (disorder, duplicate, or gap)", u.Index, i)
		}
		if string(u.Payload) != fmt.Sprintf(`{"p":%d}`, i) {
			t.Fatalf("point %d payload rewritten: %s", i, u.Payload)
		}
	}
}

// TestMergerReversedCompletion: every point arrives in strictly reverse
// order — nothing emits until the first point lands, then everything
// flushes in order.
func TestMergerReversedCompletion(t *testing.T) {
	m, out, _ := mergeHarness(16)
	for i := 15; i >= 1; i-- {
		if err := m.deliver(upd(i)); err != nil {
			t.Fatal(err)
		}
		if len(*out) != 0 {
			t.Fatalf("emitted %d updates before index 0 arrived", len(*out))
		}
	}
	if err := m.deliver(upd(0)); err != nil {
		t.Fatal(err)
	}
	checkDense(t, *out, 16)
}

// TestMergerInterleavedShards: three shards' points interleave arbitrarily.
func TestMergerInterleavedShards(t *testing.T) {
	m, out, _ := mergeHarness(12)
	// Shards [0,4) [4,8) [8,12) delivering round-robin from the back of
	// each window, then the fronts.
	order := []int{3, 7, 11, 2, 6, 10, 1, 5, 9, 8, 4, 0}
	for _, i := range order {
		if err := m.deliver(upd(i)); err != nil {
			t.Fatal(err)
		}
	}
	checkDense(t, *out, 12)
}

// TestMergerHedgedDuplicates: a hedged shard's window arrives twice —
// once from the straggling original, once from the hedge — partially
// interleaved and racing the merge cursor. Every duplicate is dropped,
// whether it is still buffered (same index waiting) or already emitted
// (index below the cursor).
func TestMergerHedgedDuplicates(t *testing.T) {
	m, out, _ := mergeHarness(8)
	// Original attempt of shard [4,8) delivers 4,5 out of order.
	for _, i := range []int{5, 4} {
		if err := m.deliver(upd(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Shard [0,4) completes: cursor sweeps through the buffered 4,5.
	for _, i := range []int{0, 1, 2, 3} {
		if err := m.deliver(upd(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The hedge re-delivers the whole window [4,8): 4,5 are stale
	// (below the cursor), 6,7 are fresh.
	for _, i := range []int{4, 5, 6, 7} {
		if err := m.deliver(upd(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The original straggler limps in with 6,7 after the hedge won: both
	// already emitted.
	for _, i := range []int{6, 7} {
		if err := m.deliver(upd(i)); err != nil {
			t.Fatal(err)
		}
	}
	checkDense(t, *out, 8)
}

// TestMergerBufferedDuplicate: duplicates of a point still waiting in the
// out-of-order buffer are dropped (first delivery wins).
func TestMergerBufferedDuplicate(t *testing.T) {
	m, out, _ := mergeHarness(3)
	if err := m.deliver(upd(2)); err != nil {
		t.Fatal(err)
	}
	dup := upd(2)
	dup.Payload = json.RawMessage(`{"p":"impostor"}`)
	if err := m.deliver(dup); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 0} {
		if err := m.deliver(upd(i)); err != nil {
			t.Fatal(err)
		}
	}
	checkDense(t, *out, 3)
}

// TestMergerFailFastAdversarial: under FailFast an erroring point stops
// the stream at exactly that point even when later points arrived first —
// and deliveries after the stop are swallowed.
func TestMergerFailFastAdversarial(t *testing.T) {
	m, out, stopped := mergeHarness(8)
	m.failFast = true
	// Later points (beyond the failure) arrive before the failing point.
	for _, i := range []int{7, 6, 5, 4, 3} {
		if err := m.deliver(upd(i)); err != nil {
			t.Fatal(err)
		}
	}
	bad := upd(2)
	bad.Err = "boom"
	for _, i := range []int{0, 1} {
		if err := m.deliver(upd(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.deliver(bad); err != nil {
		t.Fatal(err)
	}
	if !*stopped {
		t.Fatal("fail-fast stop not invoked")
	}
	if len(*out) != 3 || (*out)[2].Err != "boom" {
		t.Fatalf("emitted %d updates, want exactly [0,1,2] with the error on 2", len(*out))
	}
	// A hedge duplicate of the failing point and fresh later points after
	// the stop change nothing.
	if err := m.deliver(bad); err != nil {
		t.Fatal(err)
	}
	if err := m.deliver(upd(3)); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 3 {
		t.Fatalf("post-stop deliveries emitted; %d updates", len(*out))
	}
}
