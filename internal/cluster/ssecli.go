// SSE client: the coordinator's half of the shard stream protocol. One
// Stream call POSTs a shard request and delivers parsed Server-Sent-Events
// frames in order, transparently reconnecting dropped connections with the
// standard Last-Event-ID header (the worker skips the results already
// delivered, so the caller sees every frame exactly once). Reconnects use
// jittered exponential backoff and give up after a bounded number of
// consecutive failures without progress.
package cluster

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Event is one parsed SSE frame.
type Event struct {
	// ID is the frame's `id:` value (0 when the frame carried none); the
	// client replays the last non-zero ID as Last-Event-ID on reconnect.
	ID int

	// Type is the frame's `event:` value ("message" when absent).
	Type string

	// Data is the frame's payload (multiple `data:` lines joined by \n).
	Data []byte
}

// Client streams SSE responses with automatic resume. The zero value is
// usable; fields tune the reconnect policy.
type Client struct {
	// HTTP issues the requests; nil means a default client. Do not set a
	// client-level timeout — streams are long-lived; bound attempts with
	// the Stream context instead.
	HTTP *http.Client

	// Token, when set, is sent as a bearer Authorization header.
	Token string

	// Retries caps consecutive failed attempts without progress (an
	// attempt that delivers at least one frame resets the count).
	// Default 4.
	Retries int

	// Backoff is the initial reconnect delay (default 100ms), doubled per
	// consecutive failure up to MaxBackoff (default 2s), with ±50% jitter.
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// errEmit marks an abort requested by the caller's emit function: terminal,
// never retried, unwrapped before returning.
type errEmit struct{ err error }

func (e errEmit) Error() string { return e.err.Error() }

// BadFrameError marks a frame whose payload failed validation —
// unparseable JSON, an out-of-order index — the stream analogue of a
// corrupt WAL record. Returned from an emit callback, it is treated as a
// connection-level fault rather than a caller abort: the client drops the
// connection and reconnects with Last-Event-ID pointing at the last GOOD
// frame (a corrupt frame never advances the resume id), so the worker
// re-serves a clean copy. Persistent corruption with no progress in
// between exhausts Retries like any other connection failure.
type BadFrameError struct{ Err error }

func (e BadFrameError) Error() string { return e.Err.Error() }
func (e BadFrameError) Unwrap() error { return e.Err }

// Stream POSTs body (application/json) to url and delivers each SSE frame
// to emit, in order, each exactly once across reconnects. It returns nil
// after emitting a frame whose Type is "done" (the protocol's terminal
// frame), and an error when the context ends, emit fails, the server
// answers a non-retryable status, or reconnect attempts are exhausted.
func (c *Client) Stream(ctx context.Context, url string, body []byte, emit func(Event) error) error {
	httpc := c.HTTP
	if httpc == nil {
		httpc = &http.Client{}
	}
	retries := c.Retries
	if retries <= 0 {
		retries = 4
	}
	base := c.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxB := c.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Second
	}

	lastID, fails := 0, 0
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		progressed, done, err := c.attempt(ctx, httpc, url, body, lastID, &lastID, emit)
		if done {
			return nil
		}
		var ee errEmit
		if errors.As(err, &ee) {
			return ee.err
		}
		if progressed {
			fails = 0
		}
		fails++
		lastErr = err
		var te terminalErr
		if errors.As(err, &te) {
			return fmt.Errorf("cluster: sse: %s: %w", url, err)
		}
		if fails > retries {
			return fmt.Errorf("cluster: sse: %s: giving up after %d attempt(s): %w", url, fails, lastErr)
		}
		// Capped, jittered exponential backoff; the jitter keeps a fleet
		// of coordinators from thundering back in lockstep after a shared
		// outage.
		d := backoffFor(base, maxB, fails)
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// terminalErr marks a server answer that retrying cannot improve (4xx
// other than timeout/too-many-requests).
type terminalErr struct{ msg string }

func (e terminalErr) Error() string { return e.msg }

// attempt runs one connection: POST, parse frames, track the resume id.
func (c *Client) attempt(ctx context.Context, httpc *http.Client, url string, body []byte, resumeID int, lastID *int, emit func(Event) error) (progressed, done bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	if resumeID > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(resumeID))
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 &&
			resp.StatusCode != http.StatusRequestTimeout && resp.StatusCode != http.StatusTooManyRequests {
			return false, false, terminalErr{err.Error()}
		}
		return false, false, err
	}
	perr := parseSSE(resp.Body, func(ev Event) error {
		// Emit first: the resume id and progress advance only past frames
		// the caller accepted, so a frame rejected as corrupt is re-served
		// on reconnect instead of silently skipped.
		if err := emit(ev); err != nil {
			var bf BadFrameError
			if errors.As(err, &bf) {
				return err // reconnect and resume from the last good frame
			}
			return errEmit{err}
		}
		if ev.ID > 0 {
			*lastID = ev.ID
		}
		progressed = true
		if ev.Type == "done" {
			done = true
			return errStreamEnd
		}
		return nil
	})
	if done {
		return progressed, true, nil
	}
	if perr == nil {
		// Clean EOF without a done frame: the server (or a proxy) closed
		// the stream mid-shard; reconnect and resume.
		perr = errors.New("stream ended before done frame")
	}
	return progressed, false, perr
}

// errStreamEnd stops parseSSE after the terminal frame without reading to
// connection close.
var errStreamEnd = errors.New("stream end")

// parseSSE reads Server-Sent-Events frames from r and hands each complete
// frame to emit. Comment lines (leading ':') are skipped; a blank line
// dispatches the accumulated frame. Returns nil on EOF, emit's error when
// it aborts (errStreamEnd is swallowed), or the read error otherwise.
func parseSSE(r io.Reader, emit func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var (
		ev      Event
		data    []string
		hasData bool
	)
	flush := func() error {
		if !hasData {
			ev = Event{}
			return nil
		}
		if ev.Type == "" {
			ev.Type = "message"
		}
		ev.Data = []byte(strings.Join(data, "\n"))
		err := emit(ev)
		ev, data, hasData = Event{}, nil, false
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				if errors.Is(err, errStreamEnd) {
					return nil
				}
				return err
			}
		case strings.HasPrefix(line, ":"):
			// comment / keep-alive
		default:
			field, value, _ := strings.Cut(line, ":")
			value = strings.TrimPrefix(value, " ")
			switch field {
			case "id":
				if n, err := strconv.Atoi(value); err == nil && n > 0 {
					ev.ID = n
				}
			case "event":
				ev.Type = value
			case "data":
				data = append(data, value)
				hasData = true
			}
		}
	}
	return sc.Err()
}
