// Worker side of the shard protocol: an http.Handler for POST /v2/shards.
// The request body is a spec shard document ({scenario, offset, limit});
// the response is an SSE stream of `event: result` frames — one per point
// of the window, in expansion order, each carrying an `id:` line counting
// results delivered within the shard — closed by a terminal `event: done`
// frame. A reconnecting coordinator sends Last-Event-ID to skip the
// results it already holds; because the evaluator's offset+limit window is
// bit-identical to the same slice of a full run, resumed shards never
// recompute or diverge.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"delta/internal/pipeline"
	"delta/internal/spec"
)

// wireResult is the data payload of one `event: result` frame.
type wireResult struct {
	// Index is the point's global position in expansion order.
	Index int `json:"index"`

	// Error is the point's evaluation error ("" on success). Workers
	// always sweep collect-partial; the coordinator applies the job's
	// error policy at merge time so the merged stream matches a
	// single-node run of either policy.
	Error string `json:"error,omitempty"`

	// Payload is the rendered point result (the handler's Render output),
	// opaque to the protocol.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// wireDone is the data payload of the terminal `event: done` frame.
type wireDone struct {
	// Count is the number of results delivered for the shard window,
	// Last-Event-ID skips included.
	Count int `json:"count"`

	// Error reports a worker-side infrastructure failure (not a point
	// evaluation error); the coordinator fails the attempt and retries.
	Error string `json:"error,omitempty"`
}

// ShardHandler serves the worker half of distributed sweeps. Wire it at
// POST /v2/shards behind the server's usual auth/rate-limit middleware.
type ShardHandler struct {
	// Eval runs the shard's points; required.
	Eval *pipeline.Evaluator

	// Render turns one stream update into the result frame's payload.
	// delta-server passes its job-result renderer so distributed job
	// results are byte-identical to single-node ones; nil omits payloads
	// (index/error only — enough for throughput benchmarks).
	Render func(pipeline.StreamUpdate) (json.RawMessage, error)

	// KeepAlive is the idle comment-frame interval (default 15s).
	KeepAlive time.Duration

	// MaxBody bounds the request body (default 1 MiB).
	MaxBody int64
}

func (h *ShardHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		shardError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	maxBody := h.MaxBody
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	sh, err := spec.ReadShard(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		shardError(w, http.StatusBadRequest, err)
		return
	}
	skip := 0
	if lei := strings.TrimSpace(r.Header.Get("Last-Event-ID")); lei != "" {
		// Ignore ids we did not mint; a full replay is always safe.
		if n, aerr := strconv.Atoi(lei); aerr == nil && n > 0 {
			skip = n
			if skip > sh.Limit {
				skip = sh.Limit
			}
		}
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		shardError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	// Always collect-partial: the coordinator owns the error policy and
	// applies it to the merged in-order stream, so a fail-fast sweep still
	// matches single-node output even when the failing point's shard runs
	// on a different worker than later points.
	ch, err := h.Eval.Stream(r.Context(), sh.Scenario,
		pipeline.WithOffset(sh.Offset+skip),
		pipeline.WithLimit(sh.Limit-skip),
		pipeline.WithErrorPolicy(pipeline.CollectPartial))
	if err != nil {
		shardError(w, http.StatusBadRequest, err)
		return
	}

	hd := w.Header()
	hd.Set("Content-Type", "text/event-stream")
	hd.Set("Cache-Control", "no-cache")
	hd.Set("Connection", "keep-alive")
	hd.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	keepAlive := h.KeepAlive
	if keepAlive <= 0 {
		keepAlive = 15 * time.Second
	}
	ticker := time.NewTicker(keepAlive)
	defer ticker.Stop()

	count := skip
	for {
		select {
		case upd, open := <-ch:
			if !open {
				if r.Context().Err() != nil {
					return // client gone; no terminal frame
				}
				_ = writeFrame(w, 0, "done", wireDone{Count: count})
				flusher.Flush()
				return
			}
			res := wireResult{Index: upd.Point.Index}
			if upd.Err != nil {
				res.Error = upd.Err.Error()
			}
			if h.Render != nil {
				payload, rerr := h.Render(upd)
				if rerr != nil {
					// Rendering is infrastructure, not evaluation: report
					// through the done frame so the coordinator retries
					// the attempt instead of recording a bogus point.
					_ = writeFrame(w, 0, "done", wireDone{Count: count, Error: rerr.Error()})
					flusher.Flush()
					return
				}
				res.Payload = payload
			}
			count++
			if err := writeFrame(w, count, "result", res); err != nil {
				return
			}
			flusher.Flush()
		case <-ticker.C:
			if _, err := io.WriteString(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeFrame emits one SSE frame with a JSON payload; id > 0 adds an `id:`
// line for Last-Event-ID resume.
func writeFrame(w io.Writer, id int, event string, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if id > 0 {
		_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, buf)
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, buf)
	return err
}

// shardError answers a pre-stream failure in the server's JSON error shape.
func shardError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
