// Package cnn defines the convolution-layer configurations of the four CNNs
// the paper evaluates (Section VI): AlexNet, VGG16, GoogLeNet, and
// ResNet152, trained on ImageNet at mini-batch 256.
//
// Layer names follow the x-axis labels of Fig. 11/13/14 exactly, and each
// network exposes the paper's "unique subset" (layers sharing a
// configuration appear once). ResNet152Full additionally replicates every
// conv instance of the real network for the Fig. 16 scaling study.
package cnn

import (
	"fmt"
	"sort"
	"strings"

	"delta/internal/layers"
	"delta/internal/naming"
)

// DefaultBatch is the mini-batch size used throughout the paper's
// evaluation (Section VI).
const DefaultBatch = 256

// Network is a named list of unique conv layers with per-layer replication
// counts (how many instances of each configuration the real network runs).
type Network struct {
	Name   string
	Layers []layers.Conv
	Counts []int
}

// TotalInstances returns the number of conv-layer instances in the network.
func (n Network) TotalInstances() int {
	total := 0
	for _, c := range n.Counts {
		total += c
	}
	return total
}

// Validate checks every layer and the counts vector.
func (n Network) Validate() error {
	for _, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	if len(n.Counts) != len(n.Layers) {
		panic("cnn: counts/layers length mismatch in " + n.Name)
	}
	return nil
}

func conv(name string, b, ci, hw, co, f, stride, pad int) layers.Conv {
	return layers.Conv{Name: name, B: b, Ci: ci, Hi: hw, Wi: hw, Co: co,
		Hf: f, Wf: f, Stride: stride, Pad: pad}
}

func ones(n int) []int {
	c := make([]int, n)
	for i := range c {
		c[i] = 1
	}
	return c
}

// AlexNet returns the five conv layers of AlexNet (Krizhevsky et al. 2012,
// single-tower formulation) at mini-batch b.
func AlexNet(b int) Network {
	ls := []layers.Conv{
		conv("conv1", b, 3, 227, 96, 11, 4, 0),
		conv("conv2", b, 96, 27, 256, 5, 1, 2),
		conv("conv3", b, 256, 13, 384, 3, 1, 1),
		conv("conv4", b, 384, 13, 384, 3, 1, 1),
		conv("conv5", b, 384, 13, 256, 3, 1, 1),
	}
	return Network{Name: "AlexNet", Layers: ls, Counts: ones(len(ls))}
}

// VGG16 returns the unique conv configurations of VGG16 (configuration D)
// using the paper's layer numbering: conv7 duplicates conv6, conv9/10
// duplicate each other and conv12/13 duplicate conv11, so the paper plots
// conv1-6, conv8, and conv11.
func VGG16(b int) Network {
	ls := []layers.Conv{
		conv("conv1", b, 3, 224, 64, 3, 1, 1),
		conv("conv2", b, 64, 224, 64, 3, 1, 1),
		conv("conv3", b, 64, 112, 128, 3, 1, 1),
		conv("conv4", b, 128, 112, 128, 3, 1, 1),
		conv("conv5", b, 128, 56, 256, 3, 1, 1),
		conv("conv6", b, 256, 56, 256, 3, 1, 1),
		conv("conv8", b, 256, 28, 512, 3, 1, 1),
		conv("conv11", b, 512, 14, 512, 3, 1, 1),
	}
	// Instance counts in the full 13-layer network: conv6 runs twice
	// (conv6+conv7), conv8's stage has two 512->512 28x28 follow-ups that
	// share conv11's channel shape but not its feature size; they are
	// counted under conv8's stage here for the unique-subset view.
	counts := []int{1, 1, 1, 1, 1, 2, 3, 3}
	return Network{Name: "VGG16", Layers: ls, Counts: counts}
}

// googLeNetModule emits the five conv branches of one inception module with
// the paper's naming scheme (<mod>_1x1, <mod>_3x3red, <mod>_3x3,
// <mod>_5x5red, <mod>_5x5).
func googLeNetModule(b int, mod string, in, hw, c1, c3r, c3, c5r, c5 int) []layers.Conv {
	return []layers.Conv{
		conv(mod+"_1x1", b, in, hw, c1, 1, 1, 0),
		conv(mod+"_3x3", b, c3r, hw, c3, 3, 1, 1),
		conv(mod+"_3x3red", b, in, hw, c3r, 1, 1, 0),
		conv(mod+"_5x5", b, c5r, hw, c5, 5, 1, 2),
		conv(mod+"_5x5red", b, in, hw, c5r, 1, 1, 0),
	}
}

// GoogLeNet returns the unique conv configurations of GoogLeNet (Szegedy et
// al. 2015) that the paper evaluates: the stem plus the 3a, 4b, 4e, and 5a
// inception modules (the other modules repeat these shapes).
func GoogLeNet(b int) Network {
	ls := []layers.Conv{
		conv("conv1", b, 3, 224, 64, 7, 2, 3),
		conv("conv2_3x3", b, 64, 56, 192, 3, 1, 1),
		conv("conv2_3x3r", b, 64, 56, 64, 1, 1, 0),
	}
	ls = append(ls, googLeNetModule(b, "3a", 192, 28, 64, 96, 128, 16, 32)...)
	ls = append(ls, googLeNetModule(b, "4b", 512, 14, 160, 112, 224, 24, 64)...)
	ls = append(ls, googLeNetModule(b, "4e", 528, 14, 256, 160, 320, 32, 128)...)
	ls = append(ls, googLeNetModule(b, "5a", 832, 7, 256, 160, 320, 32, 128)...)
	return Network{Name: "GoogLeNet", Layers: ls, Counts: ones(len(ls))}
}

// ResNet152 returns the unique conv configurations of ResNet152 (He et al.
// 2016, bottleneck blocks) using the paper's labels: conv<stage>_<block>_<a|b|c>
// where a/b/c are the 1x1-reduce / 3x3 / 1x1-expand convs of a bottleneck.
// Stage entry blocks downsample with stride 2 on their first 1x1.
func ResNet152(b int) Network {
	ls := []layers.Conv{
		conv("conv1", b, 3, 224, 64, 7, 2, 3),

		// Stage 2 (56x56). Block 1 sees the 64-channel pooled stem; later
		// blocks see the 256-channel block output.
		conv("conv2_1_a", b, 64, 56, 64, 1, 1, 0),
		conv("conv2_1_b", b, 64, 56, 64, 3, 1, 1),
		conv("conv2_1_c", b, 64, 56, 256, 1, 1, 0),
		conv("conv2_2_a", b, 256, 56, 64, 1, 1, 0),
		conv("conv2_2_b", b, 64, 56, 64, 3, 1, 1),
		conv("conv2_2_c", b, 64, 56, 256, 1, 1, 0),
		conv("conv2_3_a", b, 256, 56, 64, 1, 1, 0),
		conv("conv2_3_b", b, 64, 56, 64, 3, 1, 1),
		conv("conv2_3_c", b, 64, 56, 256, 1, 1, 0),

		// Stage 3 (28x28 after the stride-2 entry).
		conv("conv3_1_a", b, 256, 56, 128, 1, 2, 0),
		conv("conv3_1_b", b, 128, 28, 128, 3, 1, 1),
		conv("conv3_1_c", b, 128, 28, 512, 1, 1, 0),
		conv("conv3_2_a", b, 512, 28, 128, 1, 1, 0),

		// Stage 4 (14x14).
		conv("conv4_1_a", b, 512, 28, 256, 1, 2, 0),
		conv("conv4_1_b", b, 256, 14, 256, 3, 1, 1),
		conv("conv4_1_c", b, 256, 14, 1024, 1, 1, 0),
		conv("conv4_2_a", b, 1024, 14, 256, 1, 1, 0),

		// Stage 5 (7x7).
		conv("conv5_1_a", b, 1024, 14, 512, 1, 2, 0),
		conv("conv5_1_b", b, 512, 7, 512, 3, 1, 1),
		conv("conv5_1_c", b, 512, 7, 2048, 1, 1, 0),
		conv("conv5_2_a", b, 2048, 7, 512, 1, 1, 0),
		conv("conv5_2_b", b, 512, 7, 512, 3, 1, 1),
		conv("conv5_2_c", b, 512, 7, 2048, 1, 1, 0),
	}
	return Network{Name: "ResNet152", Layers: ls, Counts: ones(len(ls))}
}

// ResNet152Full returns every conv instance of ResNet152 with replication
// counts, including the four projection-shortcut convs. Block structure is
// [3, 8, 36, 3] bottlenecks per stage; the Fig. 16 scaling study runs this
// whole network.
func ResNet152Full(b int) Network {
	type entry struct {
		l layers.Conv
		n int
	}
	es := []entry{
		{conv("conv1", b, 3, 224, 64, 7, 2, 3), 1},

		// Stage 2: 3 blocks at 56x56.
		{conv("conv2_1_a", b, 64, 56, 64, 1, 1, 0), 1},
		{conv("conv2_x_b", b, 64, 56, 64, 3, 1, 1), 3},
		{conv("conv2_x_c", b, 64, 56, 256, 1, 1, 0), 3},
		{conv("conv2_x_a", b, 256, 56, 64, 1, 1, 0), 2},
		{conv("conv2_proj", b, 64, 56, 256, 1, 1, 0), 1},

		// Stage 3: 8 blocks at 28x28.
		{conv("conv3_1_a", b, 256, 56, 128, 1, 2, 0), 1},
		{conv("conv3_x_b", b, 128, 28, 128, 3, 1, 1), 8},
		{conv("conv3_x_c", b, 128, 28, 512, 1, 1, 0), 8},
		{conv("conv3_x_a", b, 512, 28, 128, 1, 1, 0), 7},
		{conv("conv3_proj", b, 256, 56, 512, 1, 2, 0), 1},

		// Stage 4: 36 blocks at 14x14.
		{conv("conv4_1_a", b, 512, 28, 256, 1, 2, 0), 1},
		{conv("conv4_x_b", b, 256, 14, 256, 3, 1, 1), 36},
		{conv("conv4_x_c", b, 256, 14, 1024, 1, 1, 0), 36},
		{conv("conv4_x_a", b, 1024, 14, 256, 1, 1, 0), 35},
		{conv("conv4_proj", b, 512, 28, 1024, 1, 2, 0), 1},

		// Stage 5: 3 blocks at 7x7.
		{conv("conv5_1_a", b, 1024, 14, 512, 1, 2, 0), 1},
		{conv("conv5_x_b", b, 512, 7, 512, 3, 1, 1), 3},
		{conv("conv5_x_c", b, 512, 7, 2048, 1, 1, 0), 3},
		{conv("conv5_x_a", b, 2048, 7, 512, 1, 1, 0), 2},
		{conv("conv5_proj", b, 1024, 14, 2048, 1, 2, 0), 1},
	}
	n := Network{Name: "ResNet152-full"}
	for _, e := range es {
		n.Layers = append(n.Layers, e.l)
		n.Counts = append(n.Counts, e.n)
	}
	return n
}

// ResNet50 returns every conv instance of ResNet50 with replication counts.
// It shares ResNet152's bottleneck shapes with block structure [3, 4, 6, 3];
// not part of the paper's evaluation, provided for library users.
func ResNet50(b int) Network {
	type entry struct {
		l layers.Conv
		n int
	}
	es := []entry{
		{conv("conv1", b, 3, 224, 64, 7, 2, 3), 1},

		{conv("conv2_1_a", b, 64, 56, 64, 1, 1, 0), 1},
		{conv("conv2_x_b", b, 64, 56, 64, 3, 1, 1), 3},
		{conv("conv2_x_c", b, 64, 56, 256, 1, 1, 0), 3},
		{conv("conv2_x_a", b, 256, 56, 64, 1, 1, 0), 2},
		{conv("conv2_proj", b, 64, 56, 256, 1, 1, 0), 1},

		{conv("conv3_1_a", b, 256, 56, 128, 1, 2, 0), 1},
		{conv("conv3_x_b", b, 128, 28, 128, 3, 1, 1), 4},
		{conv("conv3_x_c", b, 128, 28, 512, 1, 1, 0), 4},
		{conv("conv3_x_a", b, 512, 28, 128, 1, 1, 0), 3},
		{conv("conv3_proj", b, 256, 56, 512, 1, 2, 0), 1},

		{conv("conv4_1_a", b, 512, 28, 256, 1, 2, 0), 1},
		{conv("conv4_x_b", b, 256, 14, 256, 3, 1, 1), 6},
		{conv("conv4_x_c", b, 256, 14, 1024, 1, 1, 0), 6},
		{conv("conv4_x_a", b, 1024, 14, 256, 1, 1, 0), 5},
		{conv("conv4_proj", b, 512, 28, 1024, 1, 2, 0), 1},

		{conv("conv5_1_a", b, 1024, 14, 512, 1, 2, 0), 1},
		{conv("conv5_x_b", b, 512, 7, 512, 3, 1, 1), 3},
		{conv("conv5_x_c", b, 512, 7, 2048, 1, 1, 0), 3},
		{conv("conv5_x_a", b, 2048, 7, 512, 1, 1, 0), 2},
		{conv("conv5_proj", b, 1024, 14, 2048, 1, 2, 0), 1},
	}
	n := Network{Name: "ResNet50"}
	for _, e := range es {
		n.Layers = append(n.Layers, e.l)
		n.Counts = append(n.Counts, e.n)
	}
	return n
}

// PaperSuite returns the four networks' unique subsets at mini-batch b, in
// the order every evaluation figure plots them.
func PaperSuite(b int) []Network {
	return []Network{AlexNet(b), VGG16(b), GoogLeNet(b), ResNet152(b)}
}

// builders is the string-keyed network registry. Keys are canonicalized by
// normalizeName, so "ResNet-152" and "resnet152" resolve the same entry.
var builders = map[string]func(int) Network{
	"alexnet":       AlexNet,
	"vgg16":         VGG16,
	"googlenet":     GoogLeNet,
	"resnet50":      ResNet50,
	"resnet152":     ResNet152,
	"resnet152full": ResNet152Full,
}

// Names returns the registered network names in sorted order.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName builds the named network at mini-batch b (0 means DefaultBatch).
func ByName(name string, b int) (Network, error) {
	if b == 0 {
		b = DefaultBatch
	}
	if b < 0 {
		return Network{}, fmt.Errorf("cnn: negative mini-batch %d", b)
	}
	build, ok := builders[naming.Normalize(name)]
	if !ok {
		return Network{}, fmt.Errorf("cnn: unknown network %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return build(b), nil
}

// AllUniqueLayers flattens the paper suite into one labeled layer list with
// network-qualified names ("VGG16/conv2").
func AllUniqueLayers(b int) []layers.Conv {
	var out []layers.Conv
	for _, n := range PaperSuite(b) {
		for _, l := range n.Layers {
			l.Name = n.Name + "/" + l.Name
			out = append(out, l)
		}
	}
	return out
}

// SensitivityBase returns the Appendix A base configuration: 256 input
// channels, a 13x13 IFmap, 128 output channels, a 3x3 filter, stride 1.
func SensitivityBase(b int) layers.Conv {
	return conv("sens-base", b, 256, 13, 128, 3, 1, 1)
}
