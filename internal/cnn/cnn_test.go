package cnn

import (
	"strings"
	"testing"

	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/traffic"
)

func TestAllNetworksValidate(t *testing.T) {
	nets := append(PaperSuite(DefaultBatch), ResNet152Full(DefaultBatch))
	for _, n := range nets {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
		if len(n.Layers) == 0 {
			t.Errorf("%s: no layers", n.Name)
		}
	}
}

func TestLayerCountsMatchPaperFigures(t *testing.T) {
	// The Fig. 11/13 x-axis: 5 AlexNet + 8 VGG + 23 GoogLeNet + 24 ResNet.
	counts := map[string]int{
		"AlexNet": 5, "VGG16": 8, "GoogLeNet": 23, "ResNet152": 24,
	}
	for _, n := range PaperSuite(DefaultBatch) {
		if got := len(n.Layers); got != counts[n.Name] {
			t.Errorf("%s: %d unique layers, want %d", n.Name, got, counts[n.Name])
		}
	}
}

func TestAlexNetGeometryChains(t *testing.T) {
	n := AlexNet(DefaultBatch)
	// conv1: 227 -> 55 (11x11 stride 4), pooled to 27 for conv2.
	if ho := n.Layers[0].Ho(); ho != 55 {
		t.Errorf("conv1 Ho = %d, want 55", ho)
	}
	// conv3-5 run at 13x13.
	for _, l := range n.Layers[2:] {
		if l.Hi != 13 {
			t.Errorf("%s: Hi = %d, want 13", l.Name, l.Hi)
		}
	}
}

func TestVGG16SpatialHalving(t *testing.T) {
	n := VGG16(DefaultBatch)
	sizes := map[string]int{"conv1": 224, "conv3": 112, "conv5": 56, "conv8": 28, "conv11": 14}
	for _, l := range n.Layers {
		if want, ok := sizes[l.Name]; ok && l.Hi != want {
			t.Errorf("%s: Hi = %d, want %d", l.Name, l.Hi, want)
		}
		// All VGG convs preserve spatial dims (3x3, s1, p1).
		if l.Ho() != l.Hi {
			t.Errorf("%s: not shape-preserving", l.Name)
		}
	}
}

func TestGoogLeNetModuleWiring(t *testing.T) {
	n := GoogLeNet(DefaultBatch)
	byName := make(map[string]layers.Conv)
	for _, l := range n.Layers {
		byName[l.Name] = l
	}
	// The 3x3 conv consumes the 3x3red output channels.
	for _, mod := range []string{"3a", "4b", "4e", "5a"} {
		red, ok := byName[mod+"_3x3red"]
		if !ok {
			t.Fatalf("missing %s_3x3red", mod)
		}
		main := byName[mod+"_3x3"]
		if main.Ci != red.Co {
			t.Errorf("%s: 3x3 Ci %d != 3x3red Co %d", mod, main.Ci, red.Co)
		}
		red5 := byName[mod+"_5x5red"]
		main5 := byName[mod+"_5x5"]
		if main5.Ci != red5.Co {
			t.Errorf("%s: 5x5 Ci %d != 5x5red Co %d", mod, main5.Ci, red5.Co)
		}
	}
	// 5a runs on 7x7 features.
	if byName["5a_1x1"].Hi != 7 {
		t.Errorf("5a feature size = %d, want 7", byName["5a_1x1"].Hi)
	}
}

func TestResNetBottleneckWiring(t *testing.T) {
	n := ResNet152(DefaultBatch)
	byName := make(map[string]layers.Conv)
	for _, l := range n.Layers {
		byName[l.Name] = l
	}
	// a -> b -> c channel chaining inside a bottleneck.
	if byName["conv3_1_b"].Ci != byName["conv3_1_a"].Co {
		t.Error("conv3_1: b does not consume a's output")
	}
	if byName["conv3_1_c"].Ci != byName["conv3_1_b"].Co {
		t.Error("conv3_1: c does not consume b's output")
	}
	// Stage entries downsample: conv4_1_a is stride 2 and halves 28 -> 14.
	l := byName["conv4_1_a"]
	if l.Stride != 2 || l.Ho() != 14 {
		t.Errorf("conv4_1_a: stride %d Ho %d, want 2/14", l.Stride, l.Ho())
	}
	// Expansion factor 4 on every c conv.
	for _, name := range []string{"conv2_1_c", "conv3_1_c", "conv4_1_c", "conv5_1_c"} {
		c := byName[name]
		if c.Co != 4*c.Ci {
			t.Errorf("%s: Co %d != 4*Ci %d", name, c.Co, c.Ci)
		}
	}
}

func TestResNet152FullInstanceCount(t *testing.T) {
	n := ResNet152Full(DefaultBatch)
	// 1 stem + 3*3 + 8*3 + 36*3 + 3*3 bottleneck convs + 4 projections = 155.
	if got := n.TotalInstances(); got != 155 {
		t.Errorf("total instances = %d, want 155", got)
	}
	// Stage 4 carries the bulk: 36 b and c convs.
	for _, l := range n.Layers {
		if l.Name == "conv4_x_b" {
			if idx := indexOf(n, l.Name); n.Counts[idx] != 36 {
				t.Errorf("conv4_x_b count = %d, want 36", n.Counts[idx])
			}
		}
	}
}

func indexOf(n Network, name string) int {
	for i, l := range n.Layers {
		if l.Name == name {
			return i
		}
	}
	return -1
}

func TestResNet50InstanceCount(t *testing.T) {
	n := ResNet50(DefaultBatch)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 stem + (3+4+6+3)*3 bottleneck convs + 4 projections = 53.
	if got := n.TotalInstances(); got != 53 {
		t.Errorf("total instances = %d, want 53", got)
	}
	// ResNet50's compute is a strict subset of ResNet152's.
	big := ResNet152Full(DefaultBatch)
	var macs50, macs152 float64
	for i, l := range n.Layers {
		macs50 += l.MACs() * float64(n.Counts[i])
	}
	for i, l := range big.Layers {
		macs152 += l.MACs() * float64(big.Counts[i])
	}
	if macs50 >= macs152 {
		t.Errorf("ResNet50 MACs %v not below ResNet152's %v", macs50, macs152)
	}
}

func TestAllUniqueLayersQualifiedNames(t *testing.T) {
	ls := AllUniqueLayers(64)
	if len(ls) != 5+8+23+24 {
		t.Fatalf("flattened count = %d", len(ls))
	}
	for _, l := range ls {
		if !strings.Contains(l.Name, "/") {
			t.Errorf("layer %q lacks network qualifier", l.Name)
		}
		if l.B != 64 {
			t.Errorf("layer %q batch = %d, want 64", l.Name, l.B)
		}
	}
}

func TestSensitivityBase(t *testing.T) {
	l := SensitivityBase(DefaultBatch)
	if l.Ci != 256 || l.Hi != 13 || l.Co != 128 || l.Hf != 3 || l.Stride != 1 {
		t.Errorf("sensitivity base drifted: %v", l)
	}
}

// TestWholeSuiteModels runs the full traffic model over every paper layer on
// every device: an integration smoke test that no configuration breaks the
// pipeline.
func TestWholeSuiteModels(t *testing.T) {
	ls := AllUniqueLayers(DefaultBatch)
	for _, d := range gpu.All() {
		if _, err := traffic.ModelAll(ls, d, traffic.Options{}); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}
