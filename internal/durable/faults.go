package durable

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"delta/internal/chaos"
)

// Fault-injection helpers for pinning the durability layer's failure
// behavior: a sink that refuses its first N flushes (retry/backoff and
// dead-letter paths) and a WAL corruptor (torn-tail recovery). They live
// in the package proper, not a _test file, so the delta-server tests and
// fault drills can reuse them.

// FlakySink fails its first FailFirst Flush calls and, optionally, a
// seeded random fraction of the rest, then delegates to Next (or swallows
// events when Next is nil). Safe for concurrent use.
type FlakySink struct {
	// FailFirst is how many leading Flush calls fail deterministically.
	FailFirst int

	// FailProb, when > 0, fails each later Flush with this probability,
	// drawn from a PRNG seeded by the fleet's shared chaos convention:
	// Seed when non-zero, else the DELTA_CHAOS_SEED environment variable,
	// else 1 (see chaos.Seed). A failed flaky-sink drill therefore replays
	// its exact failure pattern from the logged seed, the same way a
	// network chaos run replays from its injector seed.
	FailProb float64
	Seed     int64

	// Next receives batches once the sink recovers; nil discards them.
	Next Sink

	mu      sync.Mutex
	rng     *rand.Rand
	calls   int
	flushed []Event
}

func (s *FlakySink) Name() string { return "flaky" }

func (s *FlakySink) Flush(ctx context.Context, events []Event) error {
	s.mu.Lock()
	s.calls++
	call := s.calls
	fail := call <= s.FailFirst
	seeded := false
	if !fail && s.FailProb > 0 {
		if s.rng == nil {
			s.rng = rand.New(rand.NewSource(chaos.Seed(s.Seed)))
		}
		fail = s.rng.Float64() < s.FailProb
		seeded = fail
	}
	if !fail && s.Next == nil {
		s.flushed = append(s.flushed, events...)
	}
	s.mu.Unlock()
	if seeded {
		return fmt.Errorf("durable: flaky sink: seeded failure (call %d, p=%.2f)", call, s.FailProb)
	}
	if fail {
		return fmt.Errorf("durable: flaky sink: injected failure %d/%d", call, s.FailFirst)
	}
	if s.Next != nil {
		return s.Next.Flush(ctx, events)
	}
	return nil
}

func (s *FlakySink) Close() error {
	if s.Next != nil {
		return s.Next.Close()
	}
	return nil
}

// Calls reports how many Flush attempts the sink has seen.
func (s *FlakySink) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// Flushed returns the events accepted so far (nil-Next mode only).
func (s *FlakySink) Flushed() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.flushed...)
}

// CorruptMode selects how CorruptWAL damages the target record.
type CorruptMode int

const (
	// CorruptTruncate cuts the file mid-record (a torn append).
	CorruptTruncate CorruptMode = iota

	// CorruptFlip flips one payload byte, leaving the stored CRC stale.
	CorruptFlip
)

// CorruptWAL damages the WAL at path: record is the 0-based frame index to
// hit. Truncation cuts the file partway into that record; flipping inverts
// a payload byte so the CRC check fails. Both leave every earlier record
// intact, which is exactly the prefix recovery must keep.
func CorruptWAL(path string, record int, mode CorruptMode) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("durable: opening WAL to corrupt: %w", err)
	}
	defer f.Close()

	// Walk frames to the target record's offset and length.
	var offset int64
	var hdr [frameHeaderLen]byte
	for i := 0; ; i++ {
		if _, err := f.ReadAt(hdr[:], offset); err != nil {
			return fmt.Errorf("durable: WAL has no record %d (walked %d)", record, i)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if i == record {
			if n == 0 {
				return fmt.Errorf("durable: record %d has empty payload; nothing to corrupt", record)
			}
			switch mode {
			case CorruptTruncate:
				// Keep the header and half the payload: a classic torn
				// append.
				return f.Truncate(offset + frameHeaderLen + n/2)
			case CorruptFlip:
				var b [1]byte
				at := offset + frameHeaderLen + n/2
				if _, err := f.ReadAt(b[:], at); err != nil {
					return fmt.Errorf("durable: reading byte to flip: %w", err)
				}
				b[0] ^= 0xFF
				if _, err := f.WriteAt(b[:], at); err != nil {
					return fmt.Errorf("durable: flipping WAL byte: %w", err)
				}
				return nil
			}
			return fmt.Errorf("durable: unknown corrupt mode %d", mode)
		}
		offset += frameHeaderLen + n
	}
}
