package durable

import (
	"context"
	"testing"

	"delta/internal/chaos"
)

// failPattern runs n flushes through a fresh sink and records which fail.
func failPattern(t *testing.T, s *FlakySink, n int) []bool {
	t.Helper()
	out := make([]bool, n)
	for i := range out {
		out[i] = s.Flush(context.Background(), []Event{{Kind: "result"}}) != nil
	}
	return out
}

// TestFlakySinkSeededPattern: FailProb draws from the chaos seed
// convention, so the same seed replays the identical failure pattern and
// the DELTA_CHAOS_SEED env var stands in for an unset Seed field.
func TestFlakySinkSeededPattern(t *testing.T) {
	const n = 64
	a := failPattern(t, &FlakySink{FailProb: 0.3, Seed: 7}, n)
	b := failPattern(t, &FlakySink{FailProb: 0.3, Seed: 7}, n)
	var fails int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at flush %d: %v vs %v", i, a, b)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == n {
		t.Fatalf("seeded pattern degenerate: %d/%d failures", fails, n)
	}

	c := failPattern(t, &FlakySink{FailProb: 0.3, Seed: 8}, n)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical pattern")
	}

	// Seed 0 defers to the environment convention shared with the network
	// chaos injector.
	t.Setenv(chaos.SeedEnv, "7")
	d := failPattern(t, &FlakySink{FailProb: 0.3}, n)
	for i := range a {
		if a[i] != d[i] {
			t.Fatalf("env-seeded pattern diverged from explicit seed at flush %d", i)
		}
	}
}

// TestFlakySinkFailFirstThenSeeded: the deterministic FailFirst window
// composes with the seeded tail, and a recovered sink still records events.
func TestFlakySinkFailFirstThenSeeded(t *testing.T) {
	s := &FlakySink{FailFirst: 2, FailProb: 0.5, Seed: 3}
	pat := failPattern(t, s, 32)
	if !pat[0] || !pat[1] {
		t.Fatalf("FailFirst window not honored: %v", pat)
	}
	var ok int
	for _, f := range pat {
		if !f {
			ok++
		}
	}
	if got := len(s.Flushed()); got != ok {
		t.Fatalf("recorded %d events, want %d (one per successful flush)", got, ok)
	}
	if s.Calls() != 32 {
		t.Fatalf("calls = %d", s.Calls())
	}
}
