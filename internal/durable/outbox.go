package durable

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// OutboxConfig tunes the retry buffer; zero values take the defaults.
type OutboxConfig struct {
	// Queue bounds the in-memory buffer (default 1024). When it is full —
	// a slow or down sink under a fast sweep — Publish spills straight to
	// the dead-letter file instead of blocking the engine hot path; the
	// saturation is visible in Stats (and from there /healthz, /metrics).
	Queue int

	// Batch caps events per sink flush (default 64).
	Batch int

	// MaxAttempts bounds flush retries per batch before the batch is
	// dead-lettered (default 5).
	MaxAttempts int

	// BaseBackoff is the first retry delay, doubling per attempt with
	// ±50% jitter, capped at MaxBackoff (defaults 50ms, 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// DeadLetterPath is the JSONL spill file for exhausted batches and
	// overflow events (default dead-letter.jsonl next to nothing — set it;
	// the server defaults it into the data dir).
	DeadLetterPath string

	// Log receives retry/dead-letter notices; nil means log.Default().
	Log *log.Logger
}

func (c OutboxConfig) withDefaults() OutboxConfig {
	if c.Queue <= 0 {
		c.Queue = 1024
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.DeadLetterPath == "" {
		c.DeadLetterPath = "dead-letter.jsonl"
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// OutboxStats is a point-in-time view of the outbox counters.
type OutboxStats struct {
	Depth       int    // events queued, not yet flushed
	Capacity    int    // queue bound
	Published   uint64 // events accepted by Publish
	Flushed     uint64 // events the sink acknowledged
	Retries     uint64 // failed flush attempts that were retried
	DeadLetters uint64 // events spilled after exhausting retries
	Overflow    uint64 // events spilled because the queue was full
}

// Outbox decouples the engine hot path from result sinks: Publish is a
// non-blocking enqueue, and one background goroutine drains the queue in
// batches through the sink with exponential backoff + jitter on failure.
// Batches that exhaust their retries — and events that arrive while the
// queue is full — spill to a dead-letter JSONL file so nothing is silently
// lost and nothing ever stalls a sweep.
type Outbox struct {
	sink Sink
	cfg  OutboxConfig

	ch     chan Event
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	published   atomic.Uint64
	flushed     atomic.Uint64
	retries     atomic.Uint64
	deadLetters atomic.Uint64
	overflow    atomic.Uint64

	deadMu   sync.Mutex
	deadFile *os.File
}

// NewOutbox starts the drain goroutine over the given sink.
func NewOutbox(sink Sink, cfg OutboxConfig) *Outbox { //lint:ignore ctxflow the Outbox owns its drain lifecycle; Close is the cancellation edge
	cfg = cfg.withDefaults()
	//lint:ignore ctxflow detached on purpose: the drain outlives any one caller; Close cancels it
	ctx, cancel := context.WithCancel(context.Background())
	o := &Outbox{
		sink: sink, cfg: cfg,
		ch: make(chan Event, cfg.Queue), ctx: ctx, cancel: cancel,
		done: make(chan struct{}),
	}
	go o.drain()
	return o
}

// Publish enqueues one event without ever blocking: a full queue spills
// the event to the dead-letter file and counts the overflow.
func (o *Outbox) Publish(ev Event) {
	o.published.Add(1)
	select {
	case o.ch <- ev:
	default:
		o.overflow.Add(1)
		o.spill([]Event{ev}, "queue full")
	}
}

// drain is the background flusher: collect a batch, flush with retries,
// dead-letter on exhaustion, repeat.
func (o *Outbox) drain() {
	defer close(o.done)
	for {
		var first Event
		select {
		case first = <-o.ch:
		case <-o.ctx.Done():
			o.drainRemaining()
			return
		}
		batch := append(make([]Event, 0, o.cfg.Batch), first)
		for len(batch) < o.cfg.Batch {
			select {
			case ev := <-o.ch:
				batch = append(batch, ev)
			default:
				goto flush
			}
		}
	flush:
		o.flushBatch(batch)
	}
}

// flushBatch pushes one batch through the sink, retrying with exponential
// backoff + jitter, spilling to the dead-letter file after MaxAttempts.
func (o *Outbox) flushBatch(batch []Event) {
	backoff := o.cfg.BaseBackoff
	for attempt := 1; ; attempt++ {
		err := o.sink.Flush(o.ctx, batch)
		if err == nil {
			o.flushed.Add(uint64(len(batch)))
			return
		}
		if attempt >= o.cfg.MaxAttempts {
			o.cfg.Log.Printf("durable: outbox: %s failed %d attempts (%v); dead-lettering %d event(s)",
				o.sink.Name(), attempt, err, len(batch))
			o.spill(batch, err.Error())
			return
		}
		o.retries.Add(1)
		// ±50% jitter decorrelates retry storms across instances.
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		select {
		case <-time.After(sleep):
		case <-o.ctx.Done():
			// Shutting down mid-retry: one final immediate attempt, then
			// spill rather than wait out the backoff schedule.
			//lint:ignore ctxflow post-cancel final flush: the batch must be delivered or spilled, not abandoned
			if ferr := o.sink.Flush(context.Background(), batch); ferr == nil {
				o.flushed.Add(uint64(len(batch)))
			} else {
				o.spill(batch, ferr.Error())
			}
			return
		}
		if backoff *= 2; backoff > o.cfg.MaxBackoff {
			backoff = o.cfg.MaxBackoff
		}
	}
}

// drainRemaining gives queued events one last flush attempt at close,
// spilling whatever the sink still refuses.
func (o *Outbox) drainRemaining() {
	for {
		var batch []Event
		for len(batch) < o.cfg.Batch {
			select {
			case ev := <-o.ch:
				batch = append(batch, ev)
			default:
				goto out
			}
		}
	out:
		if len(batch) == 0 {
			return
		}
		//lint:ignore ctxflow shutdown drain runs after ctx is canceled; queued events still need flushing or spilling
		if err := o.sink.Flush(context.Background(), batch); err == nil {
			o.flushed.Add(uint64(len(batch)))
		} else {
			o.spill(batch, err.Error())
		}
	}
}

// spill appends events to the dead-letter JSONL file. Spill errors can
// only be logged — the dead-letter file is the last resort.
func (o *Outbox) spill(batch []Event, reason string) {
	o.deadMu.Lock()
	defer o.deadMu.Unlock()
	if o.deadFile == nil {
		f, err := os.OpenFile(o.cfg.DeadLetterPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			o.cfg.Log.Printf("durable: outbox: cannot open dead-letter file: %v (%d event(s) lost)",
				err, len(batch))
			o.deadLetters.Add(uint64(len(batch)))
			return
		}
		o.deadFile = f
	}
	for _, ev := range batch {
		line, err := json.Marshal(struct {
			Event
			Reason string `json:"dead_letter_reason"`
		}{ev, reason})
		if err != nil {
			line = []byte(fmt.Sprintf(`{"dead_letter_reason":%q}`, "encoding failed: "+err.Error()))
		}
		line = append(line, '\n')
		if _, err := o.deadFile.Write(line); err != nil {
			o.cfg.Log.Printf("durable: outbox: dead-letter write failed: %v", err)
		}
	}
	o.deadLetters.Add(uint64(len(batch)))
}

// Stats returns the outbox counters.
func (o *Outbox) Stats() OutboxStats {
	return OutboxStats{
		Depth:       len(o.ch),
		Capacity:    o.cfg.Queue,
		Published:   o.published.Load(),
		Flushed:     o.flushed.Load(),
		Retries:     o.retries.Load(),
		DeadLetters: o.deadLetters.Load(),
		Overflow:    o.overflow.Load(),
	}
}

// Saturated reports whether the queue is full — the backpressure signal
// /healthz surfaces.
func (o *Outbox) Saturated() bool { return len(o.ch) >= o.cfg.Queue }

// Close stops the drain goroutine, gives buffered events one final flush
// attempt (spilling the rest), and closes the sink and dead-letter file.
// ctx bounds the wait for the drain to finish.
func (o *Outbox) Close(ctx context.Context) error {
	o.cancel()
	select {
	case <-o.done:
	case <-ctx.Done():
		return fmt.Errorf("durable: outbox drain timed out: %w", ctx.Err())
	}
	o.deadMu.Lock()
	if o.deadFile != nil {
		o.deadFile.Close()
		o.deadFile = nil
	}
	o.deadMu.Unlock()
	return o.sink.Close()
}
