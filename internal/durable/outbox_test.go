package durable

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func quietLog() *log.Logger { return log.New(io.Discard, "", 0) }

func ev(job string, seq int) Event {
	return Event{Job: job, Kind: "result", Seq: seq,
		Payload: json.RawMessage(fmt.Sprintf(`{"seq":%d}`, seq))}
}

// waitFor polls cond until true or the deadline fails the test.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestOutboxRetriesThenFlushes: a sink failing its first flushes is
// retried with backoff until it recovers; nothing is lost.
func TestOutboxRetriesThenFlushes(t *testing.T) {
	sink := &FlakySink{FailFirst: 3}
	o := NewOutbox(sink, OutboxConfig{
		BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
		MaxAttempts:    10,
		DeadLetterPath: filepath.Join(t.TempDir(), "dead.jsonl"),
		Log:            quietLog(),
	})
	for i := 0; i < 5; i++ {
		o.Publish(ev("r", i))
	}
	waitFor(t, "flush after retries", func() bool { return o.Stats().Flushed == 5 })
	st := o.Stats()
	if st.Retries < 3 {
		t.Errorf("retries = %d, want >= 3", st.Retries)
	}
	if st.DeadLetters != 0 || st.Overflow != 0 {
		t.Errorf("stats = %+v, want no dead letters", st)
	}
	if err := o.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Flushed()); got != 5 {
		t.Errorf("sink saw %d events, want 5", got)
	}
}

// TestOutboxDeadLetters: a sink that never recovers dead-letters the
// batch after MaxAttempts, spilling it to the JSONL file with the reason.
func TestOutboxDeadLetters(t *testing.T) {
	dead := filepath.Join(t.TempDir(), "dead.jsonl")
	sink := &FlakySink{FailFirst: 1 << 30}
	o := NewOutbox(sink, OutboxConfig{
		BaseBackoff: time.Microsecond, MaxAttempts: 3,
		DeadLetterPath: dead, Log: quietLog(),
	})
	o.Publish(ev("d", 0))
	o.Publish(ev("d", 1))
	waitFor(t, "dead letters", func() bool { return o.Stats().DeadLetters >= 2 })
	if err := o.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Flushed != 0 {
		t.Errorf("flushed = %d through a dead sink", st.Flushed)
	}

	f, err := os.Open(dead)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var rec struct {
			Job    string `json:"job"`
			Reason string `json:"dead_letter_reason"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("dead-letter line %d: %v", lines, err)
		}
		if rec.Job != "d" || rec.Reason == "" {
			t.Errorf("dead-letter line %d = %+v", lines, rec)
		}
	}
	if lines != 2 {
		t.Errorf("dead-letter lines = %d, want 2", lines)
	}
}

// TestOutboxOverflowNeverBlocks: with the sink wedged and the queue full,
// Publish returns immediately and overflow events spill to the
// dead-letter file — the engine hot path must never stall on a sink.
func TestOutboxOverflowNeverBlocks(t *testing.T) {
	dead := filepath.Join(t.TempDir(), "dead.jsonl")
	sink := &FlakySink{FailFirst: 1 << 30}
	o := NewOutbox(sink, OutboxConfig{
		Queue: 4, Batch: 2,
		BaseBackoff: time.Hour, // wedge the drain in its first backoff
		MaxAttempts: 100, DeadLetterPath: dead, Log: quietLog(),
	})
	start := time.Now()
	for i := 0; i < 100; i++ {
		o.Publish(ev("o", i))
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("100 publishes against a wedged sink took %v", d)
	}
	st := o.Stats()
	if st.Overflow == 0 {
		t.Error("no overflow recorded with a full queue")
	}
	if st.Published != 100 {
		t.Errorf("published = %d", st.Published)
	}
	if !o.Saturated() {
		t.Error("saturated queue not reported")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := o.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Every event is accounted for: flushed (close's final attempt still
	// fails here) or dead-lettered.
	st = o.Stats()
	if st.Flushed+st.DeadLetters != 100 {
		t.Errorf("flushed %d + dead %d != 100", st.Flushed, st.DeadLetters)
	}
}

// TestOutboxConcurrentPublish exercises Publish from many goroutines
// under -race.
func TestOutboxConcurrentPublish(t *testing.T) {
	sink := &FlakySink{FailFirst: 2}
	o := NewOutbox(sink, OutboxConfig{
		Queue: 256, BaseBackoff: time.Microsecond,
		DeadLetterPath: filepath.Join(t.TempDir(), "dead.jsonl"), Log: quietLog(),
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				o.Publish(ev(fmt.Sprintf("g%d", g), i))
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := o.Close(ctx); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Published != 400 || st.Flushed+st.DeadLetters+st.Overflow < 400 {
		t.Errorf("stats = %+v", st)
	}
}

// TestHTTPSink: batches POST as JSON arrays; non-2xx answers are errors.
func TestHTTPSink(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	fail := true
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if fail {
			http.Error(w, "backend down", http.StatusServiceUnavailable)
			return
		}
		var batch []Event
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		got = append(got, batch...)
	}))
	defer ts.Close()

	sink := NewHTTPSink(ts.URL, time.Second)
	if err := sink.Flush(context.Background(), []Event{ev("h", 0)}); err == nil {
		t.Fatal("503 flush did not error")
	}
	mu.Lock()
	fail = false
	mu.Unlock()
	if err := sink.Flush(context.Background(), []Event{ev("h", 0), ev("h", 1)}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[1].Seq != 1 {
		t.Errorf("server received %+v", got)
	}
}

// TestJSONLSink: events land one per line and survive reopening.
func TestJSONLSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out", "results.jsonl")
	s, err := NewJSONLSink(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(context.Background(), []Event{ev("j", 0), ev("j", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := NewJSONLSink(path) // append mode
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush(context.Background(), []Event{ev("j", 2)}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf))
	var seqs []int
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, e.Seq)
	}
	if len(seqs) != 3 || seqs[2] != 2 {
		t.Errorf("seqs = %v", seqs)
	}
}

// TestBuildSink covers the config dispatch.
func TestBuildSink(t *testing.T) {
	dir := t.TempDir()
	if s, err := BuildSink(SinkConfig{}, dir); s != nil || err != nil {
		t.Errorf("empty config = %v, %v", s, err)
	}
	s, err := BuildSink(SinkConfig{Kind: "jsonl"}, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, "results.jsonl")); err != nil {
		t.Errorf("default jsonl path not in data dir: %v", err)
	}
	if _, err := BuildSink(SinkConfig{Kind: "http"}, dir); err == nil {
		t.Error("http sink without url accepted")
	}
	if _, err := BuildSink(SinkConfig{Kind: "kafka"}, dir); err == nil {
		t.Error("unknown sink kind accepted")
	}
	h, err := BuildSink(SinkConfig{Kind: "http", URL: "http://localhost:1/x"}, dir)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
}
