package durable

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"
)

// Event is one result-sink item: a job lifecycle edge or one point
// result, rendered as it was served. Events carry their own ordering
// (Job, Seq) so downstream consumers can reassemble sweeps regardless of
// batching.
type Event struct {
	Job  string `json:"job"`
	Kind string `json:"kind"` // "submitted" | "result" | "finished"

	// Seq is the result's expansion-order position (Kind "result").
	Seq int `json:"seq,omitempty"`

	// Payload is the rendered point result ("result"), the scenario
	// document ("submitted"), or the terminal summary ("finished").
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Sink receives batches of events from the outbox. Flush must be
// all-or-nothing per batch as far as it can manage: a returned error means
// the outbox retries (and eventually dead-letters) the whole batch.
type Sink interface {
	Name() string
	Flush(ctx context.Context, events []Event) error
	Close() error
}

// SinkConfig is the declarative sink + outbox shape (decoded from JSON by
// internal/spec, or built directly).
type SinkConfig struct {
	// Kind selects the backend: "jsonl" (append to a local file), "http"
	// (POST JSON batches to a bulk endpoint), or "none".
	Kind string `json:"kind"`

	// Path is the JSONL output file ("jsonl"; default results.jsonl in
	// the data dir).
	Path string `json:"path,omitempty"`

	// URL is the bulk endpoint ("http").
	URL string `json:"url,omitempty"`

	// TimeoutMS bounds one HTTP flush (default 10s).
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// Outbox tuning; zero values take the OutboxConfig defaults.
	Queue         int `json:"queue,omitempty"`
	Batch         int `json:"batch,omitempty"`
	MaxAttempts   int `json:"max_attempts,omitempty"`
	BaseBackoffMS int `json:"base_backoff_ms,omitempty"`
	MaxBackoffMS  int `json:"max_backoff_ms,omitempty"`
}

// BuildSink constructs the configured sink; dataDir anchors relative (and
// default) JSONL paths. Kind "none" or empty returns (nil, nil).
func BuildSink(cfg SinkConfig, dataDir string) (Sink, error) {
	switch cfg.Kind {
	case "", "none":
		return nil, nil
	case "jsonl":
		path := cfg.Path
		if path == "" {
			path = "results.jsonl"
		}
		if !filepath.IsAbs(path) {
			path = filepath.Join(dataDir, path)
		}
		return NewJSONLSink(path)
	case "http":
		if cfg.URL == "" {
			return nil, fmt.Errorf("durable: http sink needs a url")
		}
		timeout := time.Duration(cfg.TimeoutMS) * time.Millisecond
		if timeout <= 0 {
			timeout = 10 * time.Second
		}
		return NewHTTPSink(cfg.URL, timeout), nil
	}
	return nil, fmt.Errorf("durable: unknown sink kind %q (want jsonl, http, or none)", cfg.Kind)
}

// OutboxSettings extracts the outbox tuning from a sink config.
func (c SinkConfig) OutboxSettings() OutboxConfig {
	return OutboxConfig{
		Queue:       c.Queue,
		Batch:       c.Batch,
		MaxAttempts: c.MaxAttempts,
		BaseBackoff: time.Duration(c.BaseBackoffMS) * time.Millisecond,
		MaxBackoff:  time.Duration(c.MaxBackoffMS) * time.Millisecond,
	}
}

// JSONLSink appends events to a local file, one JSON object per line —
// the simplest durable result stream, tail-able and trivially ingestable.
type JSONLSink struct {
	path string
	f    *os.File
}

// NewJSONLSink opens (creating if needed) the output file for appending.
func NewJSONLSink(path string) (*JSONLSink, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating sink dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: opening JSONL sink: %w", err)
	}
	return &JSONLSink{path: path, f: f}, nil
}

func (s *JSONLSink) Name() string { return "jsonl:" + s.path }

// Flush appends the batch as JSONL lines in one write, so a crash cannot
// interleave partial batches from concurrent processes.
func (s *JSONLSink) Flush(ctx context.Context, events []Event) error {
	var buf bytes.Buffer
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("durable: encoding sink event: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if _, err := s.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("durable: appending to JSONL sink: %w", err)
	}
	return nil
}

func (s *JSONLSink) Close() error { return s.f.Close() }

// HTTPSink POSTs each batch as a JSON array to a bulk endpoint
// (ClickHouse/Elasticsearch-shaped ingest services). Any non-2xx answer
// is an error, so the outbox's retry/backoff policy applies.
type HTTPSink struct {
	url    string
	client *http.Client
}

// NewHTTPSink builds a bulk HTTP sink with the given per-flush timeout.
func NewHTTPSink(url string, timeout time.Duration) *HTTPSink {
	return &HTTPSink{url: url, client: &http.Client{Timeout: timeout}}
}

func (s *HTTPSink) Name() string { return "http:" + s.url }

func (s *HTTPSink) Flush(ctx context.Context, events []Event) error {
	body, err := json.Marshal(events)
	if err != nil {
		return fmt.Errorf("durable: encoding sink batch: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("durable: building sink request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("durable: posting sink batch: %w", err)
	}
	defer resp.Body.Close()
	// Drain so the connection is reusable, but never buffer an abusive
	// error body.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("durable: sink answered %s", resp.Status)
	}
	return nil
}

func (s *HTTPSink) Close() error {
	s.client.CloseIdleConnections()
	return nil
}
