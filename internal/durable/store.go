package durable

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Job statuses as persisted. They mirror the server's job states; the
// store keeps its own strings so it stays importable without a cycle.
const (
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// Shard statuses as persisted: a shard is dispatched to a peer, completes,
// or fails (and is then re-dispatched, bumping the attempt count).
const (
	ShardDispatched = "dispatched"
	ShardDone       = "done"
	ShardFailed     = "failed"
)

// FsyncMode selects how eagerly WAL appends reach stable storage.
type FsyncMode int

const (
	// FsyncInterval syncs on a background ticker (the default): a crash
	// loses at most one interval of appended records, and the append hot
	// path never waits on the disk.
	FsyncInterval FsyncMode = iota

	// FsyncAlways syncs after every append: nothing acknowledged is ever
	// lost, at the cost of one fsync per lifecycle record.
	FsyncAlways

	// FsyncNever leaves flushing to the OS page cache.
	FsyncNever
)

// ParseFsyncMode maps the -fsync flag values.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync mode %q (want always, interval, or never)", s)
}

// JobState is one job's persisted state: the submit-time identity (enough
// to re-expand and resume the sweep), the results appended so far in
// expansion order, and the terminal status once reached.
type JobState struct {
	ID       string          `json:"id"`
	Name     string          `json:"name,omitempty"`
	Total    int             `json:"total"`
	Created  time.Time       `json:"created"`
	Scenario json.RawMessage `json:"scenario,omitempty"`
	Policy   string          `json:"policy,omitempty"`

	Status   string    `json:"status"`
	Error    string    `json:"error,omitempty"`
	Finished time.Time `json:"finished,omitempty"`

	// Results holds the rendered point payloads, dense in expansion
	// order: len(Results) is the resume offset.
	Results []json.RawMessage `json:"results,omitempty"`

	// Shards records the coordinator's fan-out bookkeeping for a
	// distributed sweep, keyed by shard index. Single-node jobs leave it
	// nil. The merged Results remain the resume source of truth; shard
	// records exist so an operator (and the resumed coordinator) can see
	// which windows were dispatched where and how often they were retried.
	Shards map[int]*ShardState `json:"shards,omitempty"`
}

// ShardState is one shard's latest persisted lifecycle state.
type ShardState struct {
	Offset   int    `json:"offset"`
	Count    int    `json:"count"`
	Peer     string `json:"peer,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Status   string `json:"status"`
}

// StoreOptions configures Open; zero values take the defaults.
type StoreOptions struct {
	Fsync         FsyncMode
	FsyncInterval time.Duration // default 100ms (FsyncInterval mode only)

	// CompactEvery triggers a snapshot + WAL truncation after this many
	// appended records (default 4096; <0 disables auto-compaction).
	CompactEvery int

	// Log receives replay and compaction notices; nil means log.Default().
	Log *log.Logger
}

// StoreStats is a point-in-time view of the store's activity counters.
type StoreStats struct {
	Records      uint64 // records appended this process
	Compactions  uint64 // snapshots written
	ReplayedJobs int    // jobs recovered at Open
	TornBytes    int64  // bytes dropped from the WAL tail at Open
}

// Store is the WAL-backed job store: an in-memory state map kept in sync
// with an append-only log, compacted into an atomic snapshot file. All
// methods are safe for concurrent use.
type Store struct {
	dir  string
	opts StoreOptions
	log  *log.Logger

	mu       sync.Mutex
	jobs     map[string]*JobState
	wal      *os.File
	walSize  int64
	sinceCmp int // records since last compaction
	closed   bool

	records     atomic.Uint64
	compactions atomic.Uint64
	replayed    int
	tornBytes   int64

	stopSync chan struct{}
	syncDone chan struct{}
}

const (
	walName      = "wal.log"
	snapshotName = "snapshot.json"
)

// Open loads (or initializes) the durable job store in dir: the snapshot
// is read first, the WAL replayed on top, and a torn or corrupt WAL tail
// is truncated away with a logged notice. The directory is created if
// missing.
func Open(dir string, opts StoreOptions) (*Store, error) { //lint:ignore ctxflow the Store owns its fsync loop; Close stops it
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 4096
	}
	logger := opts.Log
	if logger == nil {
		logger = log.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating data dir: %w", err)
	}
	s := &Store{
		dir: dir, opts: opts, log: logger,
		jobs:     make(map[string]*JobState),
		stopSync: make(chan struct{}),
		syncDone: make(chan struct{}),
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayAndOpenWAL(); err != nil {
		return nil, err
	}
	s.replayed = len(s.jobs)
	if opts.Fsync == FsyncInterval {
		go s.syncLoop()
	} else {
		close(s.syncDone)
	}
	return s, nil
}

// loadSnapshot reads snapshot.json if present. A corrupt snapshot is a
// hard error: the WAL after it was truncated at the last compaction, so
// silently starting empty would discard every job. The operator can move
// the file aside to accept the loss explicitly.
func (s *Store) loadSnapshot() error {
	buf, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("durable: reading snapshot: %w", err)
	}
	var snap struct {
		Jobs []*JobState `json:"jobs"`
	}
	if err := json.Unmarshal(buf, &snap); err != nil {
		return fmt.Errorf("durable: corrupt snapshot %s (move it aside to start empty): %w",
			filepath.Join(s.dir, snapshotName), err)
	}
	for _, js := range snap.Jobs {
		s.jobs[js.ID] = js
	}
	return nil
}

// replayAndOpenWAL applies the log over the snapshot state, truncates any
// torn tail, and leaves the file open for appending.
func (s *Store) replayAndOpenWAL() error {
	path := filepath.Join(s.dir, walName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("durable: opening WAL: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("durable: stat WAL: %w", err)
	}
	valid, dropped, err := replayWAL(f, info.Size(), s.apply)
	if err != nil {
		f.Close()
		return err
	}
	if dropped > 0 {
		s.log.Printf("durable: dropping %d torn/corrupt byte(s) from WAL tail (keeping %d-byte valid prefix)",
			dropped, valid)
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return fmt.Errorf("durable: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return fmt.Errorf("durable: seeking WAL: %w", err)
	}
	s.wal, s.walSize, s.tornBytes = f, valid, dropped
	return nil
}

// apply folds one replayed record into the state map. Records referencing
// unknown jobs (evicted before the crash, or written after a racing
// delete) are skipped, not errors — the log is allowed to be ahead of the
// state it reaches.
func (s *Store) apply(rec walRecord) error {
	switch rec.T {
	case recSubmit:
		s.jobs[rec.Job] = &JobState{
			ID: rec.Job, Name: rec.Name, Total: rec.Total,
			Created:  time.Unix(0, rec.CreatedUnix).UTC(),
			Scenario: rec.Scenario, Policy: rec.Policy,
			Status: StatusRunning,
		}
	case recResult:
		js, ok := s.jobs[rec.Job]
		if !ok {
			return nil
		}
		switch {
		case rec.Seq == len(js.Results):
			js.Results = append(js.Results, rec.Payload)
		case rec.Seq < len(js.Results):
			// Duplicate append (a crash between WAL write and ack): the
			// first copy wins, results stay dense.
		default:
			// A gap would break the resume-offset contract; keep the
			// prefix and let re-evaluation fill the rest.
			s.log.Printf("durable: job %s result seq %d after %d results; ignoring gap",
				rec.Job, rec.Seq, len(js.Results))
		}
	case recFinish:
		js, ok := s.jobs[rec.Job]
		if !ok {
			return nil
		}
		if js.Status == StatusRunning {
			js.Status, js.Error = rec.Status, rec.Error
			js.Finished = time.Unix(0, rec.FinishedUnix).UTC()
		}
	case recShard:
		js, ok := s.jobs[rec.Job]
		if !ok {
			return nil
		}
		if js.Shards == nil {
			js.Shards = make(map[int]*ShardState)
		}
		js.Shards[rec.Shard] = &ShardState{
			Offset: rec.Offset, Count: rec.Count,
			Peer: rec.Peer, Attempts: rec.Attempt, Status: rec.Status,
		}
	case recEvict:
		delete(s.jobs, rec.Job)
	default:
		// Unknown record types from a newer writer are skipped so a
		// downgraded binary can still read its predecessor's log.
		s.log.Printf("durable: skipping unknown WAL record type %q", rec.T)
	}
	return nil
}

// Jobs returns the persisted jobs sorted by creation time (oldest first),
// each a deep-enough copy that callers can hold them across appends.
func (s *Store) Jobs() []*JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobState, 0, len(s.jobs))
	for _, js := range s.jobs {
		c := *js
		c.Results = append([]json.RawMessage(nil), js.Results...)
		if js.Shards != nil {
			c.Shards = make(map[int]*ShardState, len(js.Shards))
			for i, sh := range js.Shards {
				cp := *sh
				c.Shards[i] = &cp
			}
		}
		out = append(out, &c)
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Created.Equal(out[b].Created) {
			return out[a].Created.Before(out[b].Created)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// append writes one record to the WAL (and mirrors it into the in-memory
// state) under the store lock.
func (s *Store) append(rec walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("durable: encoding WAL record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	frame := appendFrame(nil, payload)
	if _, err := s.wal.Write(frame); err != nil {
		return fmt.Errorf("durable: appending WAL record: %w", err)
	}
	s.walSize += int64(len(frame))
	if s.opts.Fsync == FsyncAlways {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("durable: fsync WAL: %w", err)
		}
	}
	if err := s.apply(rec); err != nil {
		return err
	}
	s.records.Add(1)
	s.sinceCmp++
	if s.opts.CompactEvery > 0 && s.sinceCmp >= s.opts.CompactEvery {
		if err := s.compactLocked(); err != nil {
			// Compaction failure is not fatal to the append — the WAL
			// already holds the record — but is worth a loud notice.
			s.log.Printf("durable: auto-compaction failed: %v", err)
		}
	}
	return nil
}

// RecordSubmit persists a newly accepted job.
func (s *Store) RecordSubmit(id, name string, total int, created time.Time, scenario json.RawMessage, policy string) error {
	return s.append(walRecord{
		T: recSubmit, Job: id, Name: name, Total: total,
		CreatedUnix: created.UnixNano(), Scenario: scenario, Policy: policy,
	})
}

// RecordResult persists one streamed point result. Seq must be the
// result's dense position (the job's current result count).
func (s *Store) RecordResult(id string, seq int, payload json.RawMessage) error {
	return s.append(walRecord{T: recResult, Job: id, Seq: seq, Payload: payload})
}

// RecordFinish persists a job's terminal transition.
func (s *Store) RecordFinish(id, status, errMsg string, at time.Time) error {
	return s.append(walRecord{
		T: recFinish, Job: id, Status: status, Error: errMsg,
		FinishedUnix: at.UnixNano(),
	})
}

// RecordShard persists one shard lifecycle transition of a distributed
// sweep: shard (index) covering [offset, offset+count) was dispatched to
// peer on the attempt-th try, or reached done/failed there. The latest
// record per shard index wins on replay.
func (s *Store) RecordShard(id string, shard, offset, count int, peer string, attempt int, status string) error {
	return s.append(walRecord{
		T: recShard, Job: id, Shard: shard, Offset: offset, Count: count,
		Peer: peer, Attempt: attempt, Status: status,
	})
}

// RecordEvict removes a job's durable state (TTL/capacity eviction or a
// client DELETE); compaction then drops it from the snapshot too.
func (s *Store) RecordEvict(id string) error {
	return s.append(walRecord{T: recEvict, Job: id})
}

// Compact writes an atomic snapshot of the current state and truncates
// the WAL, bounding replay time and disk use.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	jobs := make([]*JobState, 0, len(s.jobs))
	for _, js := range s.jobs {
		jobs = append(jobs, js)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	buf, err := json.Marshal(struct {
		Jobs []*JobState `json:"jobs"`
	}{jobs})
	if err != nil {
		return fmt.Errorf("durable: encoding snapshot: %w", err)
	}
	final := filepath.Join(s.dir, snapshotName)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: writing snapshot: %w", err)
	}
	_, werr := f.Write(buf)
	if werr == nil && s.opts.Fsync != FsyncNever {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: writing snapshot: %w", werr)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: publishing snapshot: %w", err)
	}
	// The WAL shrinks only after the snapshot is durably in place: a
	// crash between the two replays a WAL whose records are already in
	// the snapshot, which apply tolerates (duplicates are no-ops).
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("durable: truncating WAL after snapshot: %w", err)
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("durable: seeking WAL after snapshot: %w", err)
	}
	s.walSize, s.sinceCmp = 0, 0
	s.compactions.Add(1)
	return nil
}

// syncLoop is the FsyncInterval flusher.
func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				_ = s.wal.Sync()
			}
			s.mu.Unlock()
		case <-s.stopSync:
			return
		}
	}
}

// Close compacts one final time (the clean-shutdown snapshot) and closes
// the WAL. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.compactLocked()
	s.closed = true
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.mu.Unlock()
	close(s.stopSync)
	<-s.syncDone
	return err
}

// Stats returns the store's activity counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Records:      s.records.Load(),
		Compactions:  s.compactions.Load(),
		ReplayedJobs: s.replayed,
		TornBytes:    s.tornBytes,
	}
}
