package durable

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testStore(t *testing.T, dir string, opts StoreOptions) *Store {
	t.Helper()
	if opts.Log == nil {
		opts.Log = log.New(os.Stderr, "", 0)
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func payload(i int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"index":%d,"value":"point-%d"}`, i, i))
}

// writeJob records a submit plus n results for job id.
func writeJob(t *testing.T, s *Store, id string, total, results int) {
	t.Helper()
	if err := s.RecordSubmit(id, "job-"+id, total, time.Unix(1000, 0), json.RawMessage(`{"workloads":[]}`), "fail_fast"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < results; i++ {
		if err := s.RecordResult(id, i, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreRoundTrip: submit/result/finish records survive a close and
// reopen byte-for-byte, through both the WAL and the compacted snapshot.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, dir, StoreOptions{})
	writeJob(t, s, "a", 4, 2)
	if err := s.RecordFinish("b-missing", StatusDone, "", time.Unix(2000, 0)); err != nil {
		t.Fatal(err) // unknown job: accepted and ignored
	}
	writeJob(t, s, "b", 3, 3)
	if err := s.RecordFinish("b", StatusDone, "", time.Unix(2000, 0)); err != nil {
		t.Fatal(err)
	}

	check := func(s *Store, phase string) {
		t.Helper()
		jobs := s.Jobs()
		if len(jobs) != 2 {
			t.Fatalf("%s: %d jobs, want 2", phase, len(jobs))
		}
		byID := map[string]*JobState{}
		for _, js := range jobs {
			byID[js.ID] = js
		}
		a, b := byID["a"], byID["b"]
		if a == nil || b == nil {
			t.Fatalf("%s: jobs = %+v", phase, jobs)
		}
		if a.Status != StatusRunning || a.Total != 4 || len(a.Results) != 2 {
			t.Errorf("%s: job a = %+v", phase, a)
		}
		if string(a.Results[1]) != string(payload(1)) {
			t.Errorf("%s: job a result 1 = %s", phase, a.Results[1])
		}
		if b.Status != StatusDone || len(b.Results) != 3 {
			t.Errorf("%s: job b = %+v", phase, b)
		}
		if b.Finished.UnixNano() != time.Unix(2000, 0).UnixNano() {
			t.Errorf("%s: job b finished = %v", phase, b.Finished)
		}
	}
	check(s, "live")

	// Reopen without a clean close: pure WAL replay (the copy simulates a
	// crash — no final snapshot was written).
	s.mu.Lock()
	s.wal.Sync()
	s.mu.Unlock()
	replay := testStore(t, copyDir(t, dir), StoreOptions{})
	check(replay, "wal-replay")
	if replay.Stats().ReplayedJobs != 2 {
		t.Errorf("replayed jobs = %d", replay.Stats().ReplayedJobs)
	}

	// Clean close writes a snapshot; reopening replays from it.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := testStore(t, dir, StoreOptions{})
	check(reopened, "snapshot")
}

// copyDir clones a store directory so a live store's files can be
// replayed independently (simulating a crash: no Close, no final
// snapshot).
func copyDir(t *testing.T, dir string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestStoreEvict: evicted jobs disappear from replayed state and from the
// next snapshot.
func TestStoreEvict(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, dir, StoreOptions{})
	writeJob(t, s, "gone", 2, 2)
	writeJob(t, s, "kept", 2, 1)
	if err := s.RecordEvict("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := testStore(t, dir, StoreOptions{})
	jobs := s2.Jobs()
	if len(jobs) != 1 || jobs[0].ID != "kept" {
		t.Fatalf("jobs after evict = %+v", jobs)
	}
}

// TestStoreTornTail: a WAL truncated mid-record (kill -9 during append)
// replays the valid prefix, reports the dropped bytes, and the reopened
// store keeps appending cleanly.
func TestStoreTornTail(t *testing.T) {
	for _, mode := range []CorruptMode{CorruptTruncate, CorruptFlip} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			dir := t.TempDir()
			s := testStore(t, dir, StoreOptions{Fsync: FsyncAlways})
			writeJob(t, s, "j", 5, 3) // records 0..3: submit + 3 results
			// Simulate the crash: no Close (no snapshot), corrupt the last
			// record (index 3 = result seq 2).
			s.mu.Lock()
			s.wal.Close()
			s.closed = true
			s.mu.Unlock()
			if err := CorruptWAL(filepath.Join(dir, walName), 3, mode); err != nil {
				t.Fatal(err)
			}

			var logged strings.Builder
			s2 := testStore(t, dir, StoreOptions{Log: log.New(&logged, "", 0)})
			jobs := s2.Jobs()
			if len(jobs) != 1 || jobs[0].Status != StatusRunning {
				t.Fatalf("jobs = %+v", jobs)
			}
			if len(jobs[0].Results) != 2 {
				t.Fatalf("results after torn tail = %d, want 2 (prefix)", len(jobs[0].Results))
			}
			if s2.Stats().TornBytes <= 0 {
				t.Error("torn bytes not reported")
			}
			if !strings.Contains(logged.String(), "torn/corrupt") {
				t.Errorf("torn tail not logged: %q", logged.String())
			}
			// The store keeps working: the lost record's slot is refillable
			// at the same seq (resume re-evaluates from the prefix).
			if err := s2.RecordResult("j", 2, payload(2)); err != nil {
				t.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3 := testStore(t, dir, StoreOptions{})
			if got := len(s3.Jobs()[0].Results); got != 3 {
				t.Errorf("results after refill = %d, want 3", got)
			}
		})
	}
}

// TestStoreCompaction: auto-compaction truncates the WAL, and replay
// from snapshot+empty WAL matches the pre-compaction state.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, dir, StoreOptions{CompactEvery: 5})
	writeJob(t, s, "c", 10, 8) // 9 records: compacts at 5
	if s.Stats().Compactions == 0 {
		t.Fatal("no auto-compaction after CompactEvery records")
	}
	// The WAL holds only the records appended since the last compaction.
	s.mu.Lock()
	walSize := s.walSize
	s.mu.Unlock()
	if walSize == 0 || walSize > 4*1024 {
		t.Errorf("post-compaction WAL size = %d, want small non-zero tail", walSize)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := testStore(t, dir, StoreOptions{})
	jobs := s2.Jobs()
	if len(jobs) != 1 || len(jobs[0].Results) != 8 {
		t.Fatalf("post-compaction state = %+v", jobs)
	}
}

// TestStoreDuplicateAndGapSeqs: duplicate result seqs are no-ops and
// gapped seqs are dropped, so Results stays dense (the resume contract).
func TestStoreDuplicateAndGapSeqs(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, dir, StoreOptions{})
	writeJob(t, s, "d", 5, 2)
	if err := s.RecordResult("d", 1, json.RawMessage(`{"dup":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordResult("d", 4, json.RawMessage(`{"gap":true}`)); err != nil {
		t.Fatal(err)
	}
	js := s.Jobs()[0]
	if len(js.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(js.Results))
	}
	if string(js.Results[1]) != string(payload(1)) {
		t.Errorf("duplicate overwrote result: %s", js.Results[1])
	}
}

// TestParseFsyncMode covers the flag mapping.
func TestParseFsyncMode(t *testing.T) {
	for in, want := range map[string]FsyncMode{
		"": FsyncInterval, "interval": FsyncInterval,
		"always": FsyncAlways, "never": FsyncNever,
	} {
		got, err := ParseFsyncMode(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Error("bad mode accepted")
	}
}

// TestStoreShardLifecycle: shard dispatch/retry/done records survive both
// WAL replay and snapshot round-trips, latest record per shard index wins,
// and shard records for unknown jobs are ignored.
func TestStoreShardLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, dir, StoreOptions{})
	writeJob(t, s, "fleet", 8, 0)
	if err := s.RecordShard("fleet", 0, 0, 4, "w1:8080", 1, ShardDispatched); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordShard("fleet", 1, 4, 4, "w2:8080", 1, ShardDispatched); err != nil {
		t.Fatal(err)
	}
	// Shard 1 fails on w2 and is re-dispatched to w1; the latest record
	// per index wins.
	if err := s.RecordShard("fleet", 1, 4, 4, "w2:8080", 1, ShardFailed); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordShard("fleet", 1, 4, 4, "w1:8080", 2, ShardDispatched); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordShard("fleet", 0, 0, 4, "w1:8080", 1, ShardDone); err != nil {
		t.Fatal(err)
	}
	// Unknown job: accepted and ignored, like the other record types.
	if err := s.RecordShard("ghost", 0, 0, 1, "w1:8080", 1, ShardDispatched); err != nil {
		t.Fatal(err)
	}

	check := func(s *Store, phase string) {
		t.Helper()
		jobs := s.Jobs()
		if len(jobs) != 1 {
			t.Fatalf("%s: %d jobs, want 1", phase, len(jobs))
		}
		js := jobs[0]
		if len(js.Shards) != 2 {
			t.Fatalf("%s: shards = %+v", phase, js.Shards)
		}
		s0, s1 := js.Shards[0], js.Shards[1]
		if s0 == nil || s0.Status != ShardDone || s0.Peer != "w1:8080" || s0.Offset != 0 || s0.Count != 4 {
			t.Errorf("%s: shard 0 = %+v", phase, s0)
		}
		if s1 == nil || s1.Status != ShardDispatched || s1.Peer != "w1:8080" || s1.Attempts != 2 ||
			s1.Offset != 4 || s1.Count != 4 {
			t.Errorf("%s: shard 1 = %+v", phase, s1)
		}
	}
	check(s, "live")

	// Crash-style reopen: pure WAL replay.
	s.mu.Lock()
	s.wal.Sync()
	s.mu.Unlock()
	check(testStore(t, copyDir(t, dir), StoreOptions{}), "wal-replay")

	// Clean close writes a snapshot; reopen replays from it.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	check(testStore(t, dir, StoreOptions{}), "snapshot")
}
