// Package durable is the persistence layer under the delta-server /v2
// jobs API: a write-ahead log of job lifecycle records with periodic
// compacted snapshots (store.go), and a bounded retry outbox feeding
// pluggable result sinks (outbox.go, sink.go).
//
// The WAL is a single append-only file of length-prefixed, CRC-checked
// frames. Each frame carries one JSON-encoded lifecycle record: a job was
// submitted, produced one point result, reached a terminal status, or was
// evicted. Replay applies the records over the last snapshot; a torn or
// corrupt tail (the crash case) is tolerated by keeping the longest valid
// prefix and truncating the rest, never by refusing to start.
package durable

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout: u32 little-endian payload length, u32 CRC-32 (IEEE) of the
// payload, then the payload bytes.
const frameHeaderLen = 8

// maxRecordLen bounds one frame payload. A record holds one rendered point
// result or one scenario document, both far below this; anything larger in
// the length field means the log is corrupt, not that a giant record needs
// reading.
const maxRecordLen = 16 << 20

// Record types.
const (
	recSubmit = "submit"
	recResult = "result"
	recFinish = "finish"
	recEvict  = "evict"
	recShard  = "shard"
)

// walRecord is the JSON payload of one WAL frame. One struct covers every
// record type; unused fields stay empty and cost nothing encoded.
type walRecord struct {
	T   string `json:"t"`
	Job string `json:"job"`

	// recSubmit fields.
	Name        string          `json:"name,omitempty"`
	Total       int             `json:"total,omitempty"`
	CreatedUnix int64           `json:"created,omitempty"` // UnixNano
	Scenario    json.RawMessage `json:"scenario,omitempty"`
	Policy      string          `json:"policy,omitempty"`

	// recResult fields: Seq is the result's position in expansion order
	// (0-based, dense — the resume contract), Payload the rendered point.
	Seq     int             `json:"seq,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`

	// recFinish fields. Status doubles as the shard status on recShard.
	Status       string `json:"status,omitempty"`
	Error        string `json:"error,omitempty"`
	FinishedUnix int64  `json:"finished,omitempty"` // UnixNano

	// recShard fields: one shard lifecycle transition of a distributed
	// sweep (the coordinator's fan-out bookkeeping). Shard is the shard
	// index; Offset/Count its point window in expansion order; Peer the
	// worker it was last routed to; Attempt the 1-based dispatch count.
	Shard   int    `json:"shard,omitempty"`
	Offset  int    `json:"offset,omitempty"`
	Count   int    `json:"count,omitempty"`
	Peer    string `json:"peer,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
}

// appendFrame encodes one frame into buf and returns the extended slice.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// errTornTail marks a frame that cannot be trusted: short header, short
// payload, an insane length, or a CRC mismatch. Replay stops there and the
// writer truncates the file to the last good offset.
var errTornTail = errors.New("durable: torn or corrupt WAL tail")

// readFrame reads one frame from r. It returns errTornTail for any damage
// that is consistent with a crash mid-append; io.EOF cleanly ends a log.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, errTornTail // partial header: torn append
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxRecordLen {
		return nil, errTornTail
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTornTail // partial payload: torn append
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, errTornTail
	}
	return payload, nil
}

// replayWAL streams records from r, calling apply for each valid one, and
// returns the byte offset of the end of the last valid frame plus how many
// bytes after it were dropped as torn/corrupt. Damage after a valid prefix
// is tolerated; only apply itself can fail the replay.
func replayWAL(r io.Reader, size int64, apply func(walRecord) error) (valid int64, dropped int64, err error) {
	for {
		payload, rerr := readFrame(r)
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return valid, 0, nil
			}
			return valid, size - valid, nil // torn tail: keep the prefix
		}
		var rec walRecord
		if uerr := json.Unmarshal(payload, &rec); uerr != nil {
			// The CRC matched but the JSON does not parse: the record was
			// written corrupt, which no amount of replay can fix. Treat it
			// like a torn tail so the server still starts.
			return valid, size - valid, nil
		}
		if aerr := apply(rec); aerr != nil {
			return valid, 0, fmt.Errorf("durable: applying WAL record: %w", aerr)
		}
		valid += frameHeaderLen + int64(len(payload))
	}
}
