// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII and the appendices). Each driver returns one or
// more report tables printing the same rows/series the paper plots; the
// "measured" side of every comparison comes from the trace-driven simulator
// (see DESIGN.md, Substitutions).
package experiments

import (
	"context"
	"fmt"
	"sort"

	"delta/internal/report"
)

// Config scopes an experiment run.
type Config struct {
	// Batch is the mini-batch for analytical-model evaluations
	// (the paper uses 256).
	Batch int

	// SimBatch is the mini-batch for trace-driven simulations. Traffic per
	// im2col geometry is batch-linear, so a reduced batch preserves the
	// model-vs-measured ratios while keeping traces tractable (DESIGN.md).
	SimBatch int

	// TimingBatch is the mini-batch for event-driven timing simulations.
	TimingBatch int

	// Quick trims sweeps to a handful of points (used by unit tests).
	Quick bool
}

// DefaultConfig returns the configuration the shipped EXPERIMENTS.md was
// produced with.
func DefaultConfig() Config {
	return Config{Batch: 256, SimBatch: 4, TimingBatch: 32}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Batch == 0 {
		c.Batch = d.Batch
	}
	if c.SimBatch == 0 {
		c.SimBatch = d.SimBatch
	}
	if c.TimingBatch == 0 {
		c.TimingBatch = d.TimingBatch
	}
	return c
}

// Driver regenerates one paper artifact. Run honors ctx cancellation:
// sweeps and simulations stop early when the caller is interrupted.
type Driver struct {
	ID    string // "fig11", "tab1", ...
	Title string
	Run   func(context.Context, Config) ([]*report.Table, error)
}

var registry []Driver

func register(id, title string, run func(context.Context, Config) ([]*report.Table, error)) {
	registry = append(registry, Driver{ID: id, Title: title, Run: run})
}

// Drivers returns all registered experiment drivers in paper order.
func Drivers() []Driver {
	out := append([]Driver(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

func order(id string) int {
	for i, want := range []string{
		"tab1", "fig4", "fig6", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"train", "explore",
	} {
		if id == want {
			return i
		}
	}
	return 1 << 20
}

// ByID returns the named driver.
func ByID(id string) (Driver, error) {
	for _, d := range registry {
		if d.ID == id {
			return d, nil
		}
	}
	return Driver{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
