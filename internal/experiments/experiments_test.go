package experiments

import (
	"context"
	"strings"
	"testing"
)

var quickCfg = Config{Batch: 16, SimBatch: 2, TimingBatch: 4, Quick: true}

func TestRegistryComplete(t *testing.T) {
	want := []string{"tab1", "fig4", "fig6", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "train", "explore"}
	ds := Drivers()
	if len(ds) != len(want) {
		t.Fatalf("registered %d drivers, want %d", len(ds), len(want))
	}
	for i, id := range want {
		if ds[i].ID != id {
			t.Errorf("driver %d = %s, want %s (paper order)", i, ds[i].ID, id)
		}
	}
}

func TestByID(t *testing.T) {
	d, err := ByID("fig16")
	if err != nil || d.ID != "fig16" {
		t.Errorf("ByID(fig16) = %v, %v", d.ID, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

// TestAllDriversRunQuick executes every experiment in quick mode: the full
// integration path (model + simulator + stats + rendering) must succeed and
// produce non-empty tables.
func TestAllDriversRunQuick(t *testing.T) {
	for _, d := range Drivers() {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			tables, err := d.Run(context.Background(), quickCfg)
			if err != nil {
				t.Fatalf("%s: %v", d.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", d.ID)
			}
			for _, tb := range tables {
				if tb.Len() == 0 {
					t.Errorf("%s: empty table %q", d.ID, tb.Title)
				}
				if out := tb.String(); !strings.Contains(out, "\n") {
					t.Errorf("%s: table failed to render", d.ID)
				}
			}
		})
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.Batch != 256 || c.SimBatch == 0 || c.TimingBatch == 0 {
		t.Errorf("default config = %+v", c)
	}
	var zero Config
	filled := zero.withDefaults()
	if filled.Batch != 256 {
		t.Errorf("withDefaults = %+v", filled)
	}
}

func TestFig16SpeedupsSane(t *testing.T) {
	tables, err := ByIDMust("fig16").Run(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	// The conventional 4x-SM option (option 2) must show a speedup > 1.
	if !strings.Contains(out, "4x SM") {
		t.Errorf("fig16 table missing option labels:\n%s", out)
	}
}

// ByIDMust is a test helper.
func ByIDMust(id string) Driver {
	d, err := ByID(id)
	if err != nil {
		panic(err)
	}
	return d
}
