package experiments

// Extension experiments beyond the paper's figures (DESIGN.md §4 /
// EXPERIMENTS.md "Extensions"): the training-step model and the
// design-space search. They run after the paper artifacts in `-run all`.

import (
	"context"
	"fmt"

	"delta/internal/cnn"
	"delta/internal/explore"
	"delta/internal/gpu"
	"delta/internal/pipeline"
	"delta/internal/report"
	"delta/internal/traffic"
)

func init() {
	register("train", "Training-step model: fprop + dgrad + split-K wgrad (extension)", extTrain)
	register("explore", "Design-space Pareto frontier on ResNet152 (extension)", extExplore)
}

func extTrain(ctx context.Context, cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	d := gpu.TitanXp()
	var tables []*report.Table
	nets := cnn.PaperSuite(cfg.Batch)
	if cfg.Quick {
		nets = nets[:1]
	}
	summary := report.NewTable("Training vs forward time per network (TITAN Xp, DeLTA predictions)",
		"network", "forward ms", "training-step ms", "bwd/fwd")
	for _, net := range nets {
		steps, total, err := pipeline.Default().Training(ctx, net, d, traffic.Options{})
		if err != nil {
			return nil, err
		}
		t := report.NewTable(
			fmt.Sprintf("Training step, %s (B=%d)", net.Name, cfg.Batch),
			"layer", "fprop ms", "dgrad ms", "wgrad ms", "splitK", "bwd/fwd")
		var fwd, trainTotal float64
		for i, s := range steps {
			dg := "-"
			if !s.SkipDgrad {
				dg = fmt.Sprintf("%.4g", s.Dgrad.Seconds*1e3)
			}
			t.AddRow(s.Layer.Name, s.Fprop.Seconds*1e3, dg, s.Wgrad.Seconds*1e3,
				s.WgradSplitK, s.BackwardOverForward())
			c := float64(net.Counts[i])
			fwd += s.Fprop.Seconds * c
			trainTotal += s.Seconds() * c
		}
		_ = total
		tables = append(tables, t)
		summary.AddRow(net.Name, fwd*1e3, trainTotal*1e3, trainTotal/fwd)
	}
	return append(tables, summary), nil
}

func extExplore(ctx context.Context, cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	batch := cfg.Batch
	if cfg.Quick {
		batch = 32
	}
	w := explore.Workload{Net: cnn.ResNet152Full(batch)}
	axes := explore.DefaultAxes()
	if cfg.Quick {
		axes = explore.Axes{MACPerSM: []float64{1, 2}, MemBW: []float64{1, 2}}
	}
	cands, err := pipeline.Default().Explore(ctx,
		w, gpu.TitanXp(), axes.Enumerate(), explore.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	front := explore.ParetoFront(cands)
	t := report.NewTable(
		fmt.Sprintf("Design-space Pareto frontier, ResNet152 on scaled TITAN Xp (%d candidates)", len(cands)),
		"cost", "speedup", "speedup/cost", "SMs", "MAC/SM", "mem BW", "SM-local")
	one := func(x float64) string {
		if x == 0 {
			x = 1
		}
		return fmt.Sprintf("%.1fx", x)
	}
	for _, c := range front {
		t.AddRow(c.Cost, c.Speedup, c.Efficiency(),
			one(c.Scale.NumSM), one(c.Scale.MACPerSM), one(c.Scale.DRAMBW), one(c.Scale.RegPerSM))
	}
	if best, ok := explore.MostEfficient(cands); ok {
		t.AddRow("== most efficient", best.Speedup, best.Efficiency(), one(best.Scale.NumSM),
			one(best.Scale.MACPerSM), one(best.Scale.DRAMBW), one(best.Scale.RegPerSM))
	}
	return []*report.Table{t}, nil
}
