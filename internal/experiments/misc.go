package experiments

import (
	"context"
	"fmt"

	"delta/internal/gpu"
	"delta/internal/microbench"
	"delta/internal/report"
)

func init() {
	register("tab1", "GPU device specifications (Table I)", tab1)
	register("fig6", "Profiled CTA tile width by output channel count", func(context.Context, Config) ([]*report.Table, error) {
		return []*report.Table{fig6Table()}, nil
	})
	register("fig18", "DRAM latency vs effective bandwidth micro-benchmark", fig18)
}

func tab1(context.Context, Config) ([]*report.Table, error) {
	t := report.NewTable("Table I — GPU device specifications",
		"spec", "TITAN Xp", "P100", "V100")
	devs := gpu.All()
	row := func(name string, f func(gpu.Device) interface{}) {
		t.AddRow(name, f(devs[0]), f(devs[1]), f(devs[2]))
	}
	row("NumSM", func(d gpu.Device) interface{} { return d.NumSM })
	row("Core clock (GHz)", func(d gpu.Device) interface{} { return d.ClockGHz })
	row("BW_MAC FP32 (GFLOPS)", func(d gpu.Device) interface{} { return d.MACGFLOPS })
	row("Size_REG (KB/SM)", func(d gpu.Device) interface{} { return d.RegKBPerSM })
	row("Size_SMEM (KB/SM)", func(d gpu.Device) interface{} { return d.SMEMKBPerSM })
	row("BW_L1 (GB/s/SM)", func(d gpu.Device) interface{} { return d.L1BWGBsPerSM })
	row("BW_L2 (GB/s)", func(d gpu.Device) interface{} { return d.L2BWGBs })
	row("BW_DRAM eff. (GB/s)", func(d gpu.Device) interface{} { return d.DRAMBWGBs })
	row("Size_L2 (MB)", func(d gpu.Device) interface{} { return d.L2SizeMB })
	row("L1 request (B)", func(d gpu.Device) interface{} { return d.L1ReqBytes })
	row("DRAM latency (clk)", func(d gpu.Device) interface{} { return d.LatDRAMClk })
	return []*report.Table{t}, nil
}

func fig18(ctx context.Context, cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	requests := 20000
	if cfg.Quick {
		requests = 2000
	}
	var tables []*report.Table
	for _, d := range gpu.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pts, err := microbench.Sweep(d, microbench.DefaultFractions(), requests)
		if err != nil {
			return nil, err
		}
		t := report.NewTable(
			fmt.Sprintf("Fig. 18 — DRAM latency vs bandwidth, %s", d.Name),
			"offered GB/s", "achieved GB/s", "latency clk")
		for _, p := range pts {
			t.AddRow(p.OfferedGBs, p.AchievedGBs, p.LatencyClk)
		}
		knee, err := microbench.KneePoint(pts, d)
		if err != nil {
			return nil, err
		}
		t.AddRow("== knee (eff. BW)", knee, "")
		tables = append(tables, t)
	}
	return tables, nil
}
