package experiments

import (
	"context"
	"fmt"

	"delta/internal/cnn"
	"delta/internal/gpu"
	"delta/internal/perf"
	"delta/internal/prior"
	"delta/internal/report"
	"delta/internal/sim/timing"
	"delta/internal/stats"
	"delta/internal/traffic"
)

func init() {
	register("fig13", "Conv-layer execution time and bottlenecks, TITAN Xp", func(ctx context.Context, c Config) ([]*report.Table, error) {
		return perfFigure(ctx, c, gpu.TitanXp(), "Fig. 13")
	})
	register("fig14", "Conv-layer execution time and bottlenecks, V100", func(ctx context.Context, c Config) ([]*report.Table, error) {
		return perfFigure(ctx, c, gpu.V100(), "Fig. 14")
	})
	register("fig15", "Execution-time estimate distributions: devices and prior models", fig15)
	register("fig19", "Absolute execution cycles per CNN, TITAN Xp", fig19)
}

// perfPair holds one layer's model prediction and timing-simulated
// measurement at the same mini-batch.
type perfPair struct {
	name  string
	model perf.Result
	sim   timing.Result
}

func runPerfPairs(ctx context.Context, cfg Config, d gpu.Device) ([]perfPair, error) {
	ls := cnn.AllUniqueLayers(cfg.TimingBatch)
	if cfg.Quick {
		ls = ls[:6]
	}
	out := make([]perfPair, 0, len(ls))
	for _, l := range ls {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e, err := traffic.Model(l, d, traffic.Options{})
		if err != nil {
			return nil, err
		}
		m, err := perf.Model(e, d)
		if err != nil {
			return nil, err
		}
		s, err := timing.Run(e, d)
		if err != nil {
			return nil, err
		}
		out = append(out, perfPair{name: l.Name, model: m, sim: s})
	}
	return out, nil
}

// perfFigure reproduces Fig. 13/14: per-layer model/simulated time ratios
// and the model's named bottleneck.
func perfFigure(ctx context.Context, cfg Config, d gpu.Device, figName string) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	pairs, err := runPerfPairs(ctx, cfg, d)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("%s — execution time model/simulator and bottleneck, %s (B=%d)", figName, d.Name, cfg.TimingBatch),
		"layer", "model Mcycles", "sim Mcycles", "ratio", "bottleneck")
	var ratios []float64
	bnCount := map[perf.Bottleneck]int{}
	for _, p := range pairs {
		r := p.model.Cycles / p.sim.Cycles
		t.AddRow(p.name, p.model.Cycles/1e6, p.sim.Cycles/1e6, r, p.model.Bottleneck.String())
		ratios = append(ratios, r)
		bnCount[p.model.Bottleneck]++
	}
	g, _ := stats.GMAE(ratios)
	sd, _ := stats.StdDev(ratios)
	t.AddRow("== GMAE / stdev", report.Pct(g), report.Pct(sd), "", "")

	bt := report.NewTable(figName+" — bottleneck distribution", "bottleneck", "layers", "share")
	total := len(pairs)
	for _, b := range perf.Bottlenecks() {
		if c := bnCount[b]; c > 0 {
			bt.AddRow(b.String(), c, report.Pct(float64(c)/float64(total)))
		}
	}
	return []*report.Table{t, bt}, nil
}

// fig15 summarizes estimate distributions: (a) DeLTA across the three GPUs,
// (b) DeLTA vs the fixed-miss-rate prior models on TITAN Xp.
func fig15(ctx context.Context, cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()

	ta := report.NewTable("Fig. 15a — model/simulator execution-time distribution per device",
		"device", "min", "median", "max", "geomean", "stdev")
	for _, d := range gpu.All() {
		pairs, err := runPerfPairs(ctx, cfg, d)
		if err != nil {
			return nil, err
		}
		var ratios []float64
		for _, p := range pairs {
			ratios = append(ratios, p.model.Cycles/p.sim.Cycles)
		}
		s, err := stats.Summarize(ratios)
		if err != nil {
			return nil, err
		}
		ta.AddRow(d.Name, s.Min, s.Median, s.Max, s.GeoMean, s.StdDev)
	}

	d := gpu.TitanXp()
	pairs, err := runPerfPairs(ctx, cfg, d)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Fig. 15b — DeLTA vs fixed-miss-rate models, normalized to simulator, TITAN Xp",
		"model", "min", "median", "max", "mean")
	var deltaRatios []float64
	for _, p := range pairs {
		deltaRatios = append(deltaRatios, p.model.Cycles/p.sim.Cycles)
	}
	s, _ := stats.Summarize(deltaRatios)
	tb.AddRow("DeLTA", s.Min, s.Median, s.Max, s.Mean)

	ls := cnn.AllUniqueLayers(cfg.TimingBatch)
	if cfg.Quick {
		ls = ls[:6]
	}
	for _, mr := range prior.MissRates() {
		var ratios []float64
		for i, l := range ls {
			pm, err := prior.Model(l, d, mr)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, pm.Cycles/pairs[i].sim.Cycles)
		}
		s, _ := stats.Summarize(ratios)
		tb.AddRow(fmt.Sprintf("MR %.1f", mr), s.Min, s.Median, s.Max, s.Mean)
	}
	return []*report.Table{ta, tb}, nil
}

// fig19 reports absolute execution cycles per network, model vs simulator.
func fig19(ctx context.Context, cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	d := gpu.TitanXp()
	var tables []*report.Table
	nets := cnn.PaperSuite(cfg.TimingBatch)
	if cfg.Quick {
		nets = nets[:1]
	}
	for _, net := range nets {
		t := report.NewTable(
			fmt.Sprintf("Fig. 19 — execution cycles, %s, TITAN Xp (B=%d)", net.Name, cfg.TimingBatch),
			"layer", "model Mcycles", "sim Mcycles", "ratio")
		ls := net.Layers
		if cfg.Quick && len(ls) > 4 {
			ls = ls[:4]
		}
		for _, l := range ls {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			e, err := traffic.Model(l, d, traffic.Options{})
			if err != nil {
				return nil, err
			}
			m, err := perf.Model(e, d)
			if err != nil {
				return nil, err
			}
			s, err := timing.Run(e, d)
			if err != nil {
				return nil, err
			}
			t.AddRow(l.Name, m.Cycles/1e6, s.Cycles/1e6, m.Cycles/s.Cycles)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
