package experiments

import (
	"context"
	"fmt"

	"delta/internal/cnn"
	"delta/internal/gpu"
	"delta/internal/perf"
	"delta/internal/pipeline"
	"delta/internal/report"
	"delta/internal/traffic"
)

func init() {
	register("fig16", "GPU resource scaling study on full ResNet152", fig16)
}

// resnetTime evaluates the full ResNet152 forward time and bottleneck
// distribution on one device, with an optional CTA-tile override. Layers
// run concurrently through the shared pipeline.
func resnetTime(ctx context.Context, net cnn.Network, d gpu.Device, tileDim int) (float64, map[perf.Bottleneck]int, error) {
	nr, err := pipeline.Default().Network(ctx, pipeline.NetworkRequest{
		Net: net, Device: d, Options: traffic.Options{TileOverride: tileDim},
	})
	if err != nil {
		return 0, nil, err
	}
	return nr.Seconds, nr.Bottlenecks, nil
}

// fig16 reproduces the scaling study: the nine design options of Fig. 16a
// applied to the TITAN Xp baseline, with speedups (Fig. 16b) and
// bottleneck distributions (Fig. 16c) over all conv layers of ResNet152.
func fig16(ctx context.Context, cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	batch := cfg.Batch
	if cfg.Quick {
		batch = 32
	}
	net := cnn.ResNet152Full(batch)
	base := gpu.TitanXp()

	baseTime, baseHist, err := resnetTime(ctx, net, base, 0)
	if err != nil {
		return nil, err
	}

	tb := report.NewTable(
		fmt.Sprintf("Fig. 16b — ResNet152 forward speedup over TITAN Xp (B=%d, DeLTA predictions)", batch),
		"option", "configuration", "speedup")
	tc := report.NewTable("Fig. 16c — bottleneck distribution per design option (layer instances)",
		"option", "MAC_BW", "SMEM_BW", "L1_BW", "L2_BW", "DRAM_BW", "DRAM_LAT")

	addHist := func(label string, h map[perf.Bottleneck]int) {
		total := 0
		for _, c := range h {
			total += c
		}
		row := []interface{}{label}
		for _, b := range perf.Bottlenecks() {
			row = append(row, report.Pct(float64(h[b])/float64(total)))
		}
		tc.AddRow(row...)
	}

	tb.AddRow("base", "TITAN Xp", 1.0)
	addHist("base", baseHist)

	for _, opt := range gpu.DesignOptions() {
		d := opt.Scale.Apply(base)
		t, h, err := resnetTime(ctx, net, d, opt.Scale.CTATileDim)
		if err != nil {
			return nil, err
		}
		tb.AddRow(opt.ID, opt.Label, baseTime/t)
		addHist(fmt.Sprintf("%d", opt.ID), h)
	}
	return []*report.Table{tb, tc}, nil
}
