package experiments

import (
	"context"
	"testing"

	"delta/internal/cnn"
	"delta/internal/gpu"
	"delta/internal/perf"
)

// TestFig16ShapeMatchesPaper locks in the scaling study's qualitative
// results against the paper's Fig. 16b/16c. Absolute speedups need not
// match the paper's testbed, but the orderings and bottleneck shifts the
// paper highlights must hold:
//
//   - conventional scaling (options 1, 2) is near-linear in SM count;
//   - compute-only scaling (options 3, 4) saturates around 2x;
//   - balanced scaling (option 5) rivals option 2 with far fewer SMs;
//   - option 6 runs into the L2/memory system;
//   - the enlarged-tile options (7-9) top the chart.
func TestFig16ShapeMatchesPaper(t *testing.T) {
	net := cnn.ResNet152Full(256)
	base := gpu.TitanXp()
	baseTime, baseHist, err := resnetTime(context.Background(), net, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: almost all ResNet layers are MAC-bound on the baseline.
	total := 0
	for _, c := range baseHist {
		total += c
	}
	if frac := float64(baseHist[perf.MACBW]) / float64(total); frac < 0.9 {
		t.Errorf("baseline MAC-bound fraction = %v, paper reports ~all", frac)
	}

	speedup := make(map[int]float64)
	hists := make(map[int]map[perf.Bottleneck]int)
	for _, opt := range gpu.DesignOptions() {
		tm, h, err := resnetTime(context.Background(), net, opt.Scale.Apply(base), opt.Scale.CTATileDim)
		if err != nil {
			t.Fatal(err)
		}
		speedup[opt.ID] = baseTime / tm
		hists[opt.ID] = h
	}

	paper := map[int]float64{1: 1.9, 2: 3.4, 3: 1.8, 4: 2.0, 5: 3.3, 6: 4.3, 7: 5.6, 8: 5.4, 9: 6.4}
	for id, want := range paper {
		got := speedup[id]
		if got < want*0.7 || got > want*1.3 {
			t.Errorf("option %d speedup = %.2f, paper %.1f (allowing 30%%)", id, got, want)
		}
	}

	// Orderings the paper's narrative depends on.
	if !(speedup[2] > speedup[1]) {
		t.Error("4x SM should beat 2x SM")
	}
	if speedup[4] > 2.6 {
		t.Errorf("compute-only scaling should saturate ~2x, got %.2f", speedup[4])
	}
	if speedup[5] < speedup[2]*0.8 {
		t.Errorf("balanced option 5 (%.2f) should rival option 2 (%.2f)", speedup[5], speedup[2])
	}
	for _, id := range []int{7, 8, 9} {
		if speedup[id] < speedup[6] {
			t.Errorf("enlarged-tile option %d (%.2f) should top option 6 (%.2f)",
				id, speedup[id], speedup[6])
		}
	}

	// Option 6: the paper says L2 BW becomes the limiter.
	h6 := hists[6]
	if h6[perf.L2BW] == 0 {
		t.Errorf("option 6 shows no L2_BW-bound layers: %v", h6)
	}
	// Options 3/4 (compute-only): memory must limit most layers.
	h4 := hists[4]
	if h4[perf.MACBW] > total/10 {
		t.Errorf("option 4 still largely MAC-bound: %v", h4)
	}
}
