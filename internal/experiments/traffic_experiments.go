package experiments

import (
	"context"
	"fmt"

	"delta/internal/cnn"
	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/pipeline"
	"delta/internal/prior"
	"delta/internal/report"
	"delta/internal/sim/engine"
	"delta/internal/stats"
	"delta/internal/tiling"
	"delta/internal/traffic"
)

func init() {
	register("fig4", "L1/L2 miss rates of GoogLeNet conv layers (simulated)", fig4)
	register("fig11", "L1/L2/DRAM traffic: DeLTA normalized to simulator, 3 GPUs", fig11)
	register("fig12", "L2/DRAM traffic: DeLTA vs fixed-miss-rate prior models", fig12)
	register("fig17", "Traffic sensitivity sweeps (Co, Ci, feature size, batch)", fig17)
	register("fig20", "Absolute L1/L2/DRAM traffic, model vs simulator, TITAN Xp", fig20)
}

// trafficPair holds one layer's model estimate and simulated measurement at
// the same mini-batch.
type trafficPair struct {
	name  string
	model traffic.Estimate
	sim   engine.Result
}

func runTrafficPairs(ctx context.Context, ls []layers.Conv, d gpu.Device, batch int) ([]trafficPair, error) {
	withB := make([]layers.Conv, len(ls))
	for i, l := range ls {
		withB[i] = l.WithBatch(batch)
	}
	return pairLayers(ctx, withB, d)
}

// pairLayers evaluates the analytical model and the trace-driven simulator
// for every layer through the shared pipeline: per-layer simulations fan
// out across the worker pool, and repeated (layer, device, config) runs —
// common across figures — are served from the memo cache.
func pairLayers(ctx context.Context, ls []layers.Conv, d gpu.Device) ([]trafficPair, error) {
	p := pipeline.Default()
	ereqs := make([]pipeline.Request, len(ls))
	for i, l := range ls {
		ereqs[i] = pipeline.Request{Layer: l, Device: d}
	}
	ests, err := p.EvaluateAll(ctx, ereqs)
	if err != nil {
		return nil, err
	}
	sims, err := p.SimulateLayers(ctx, ls, engine.Config{Device: d})
	if err != nil {
		return nil, err
	}
	out := make([]trafficPair, len(ls))
	for i := range ls {
		out[i] = trafficPair{name: ls[i].Name, model: ests[i].Traffic, sim: sims[i]}
	}
	return out, nil
}

// fig4 simulates the GoogLeNet conv layers and reports their L1 and L2 miss
// rates, reproducing the 13-50% / 8-90% spread that motivates the paper.
func fig4(ctx context.Context, cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	net := cnn.GoogLeNet(cfg.SimBatch)
	ls := net.Layers
	if cfg.Quick {
		ls = ls[:5]
	}
	t := report.NewTable("Fig. 4 — GoogLeNet conv-layer cache miss rates (simulated, TITAN Xp geometry)",
		"layer", "L1 miss rate", "L2 miss rate")
	rs, err := pipeline.Default().SimulateLayers(ctx, ls,
		engine.Config{Device: gpu.TitanXp()})
	if err != nil {
		return nil, err
	}
	var l1s, l2s []float64
	for i, r := range rs {
		t.AddRow(ls[i].Name, report.Pct(r.MissRateL1()), report.Pct(r.MissRateL2()))
		l1s = append(l1s, r.MissRateL1())
		l2s = append(l2s, r.MissRateL2())
	}
	s1, _ := stats.Summarize(l1s)
	s2, _ := stats.Summarize(l2s)
	t.AddRow("min..max", report.Pct(s1.Min)+".."+report.Pct(s1.Max), report.Pct(s2.Min)+".."+report.Pct(s2.Max))
	return []*report.Table{t}, nil
}

// fig11 is the headline traffic validation: model estimates normalized to
// simulated measurements at every hierarchy level, for all unique layers of
// the four CNNs, on all three GPUs, with GMAE and stdev summaries.
func fig11(ctx context.Context, cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	ls := cnn.AllUniqueLayers(cfg.SimBatch)
	if cfg.Quick {
		ls = ls[:6]
	}
	var tables []*report.Table
	for _, d := range gpu.All() {
		pairs, err := runTrafficPairs(ctx, ls, d, cfg.SimBatch)
		if err != nil {
			return nil, err
		}
		t := report.NewTable(
			fmt.Sprintf("Fig. 11 — traffic model / simulator, %s (B=%d)", d.Name, cfg.SimBatch),
			"layer", "L1 ratio", "L2 ratio", "DRAM ratio")
		var r1, r2, rd []float64
		for _, p := range pairs {
			a := p.model.L1Bytes / p.sim.L1Bytes
			b := p.model.L2Bytes / p.sim.L2Bytes
			c := p.model.DRAMBytes / p.sim.DRAMBytes
			t.AddRow(p.name, a, b, c)
			r1, r2, rd = append(r1, a), append(r2, b), append(rd, c)
		}
		addRatioSummary(t, "L1", r1)
		addRatioSummary(t, "L2", r2)
		addRatioSummary(t, "DRAM", rd)
		tables = append(tables, t)
	}
	return tables, nil
}

func addRatioSummary(t *report.Table, level string, ratios []float64) {
	kept, dropped := stats.FilterOutliers(ratios, 2.0)
	if len(kept) == 0 {
		kept = ratios
	}
	g, _ := stats.GMAE(kept)
	sd, _ := stats.StdDev(kept)
	t.AddRow("== "+level+" GMAE / stdev",
		report.Pct(g), report.Pct(sd), fmt.Sprintf("(outliers>2x: %d)", dropped))
}

// fig12 compares DeLTA's L2/DRAM traffic against the prior models'
// miss-rate-1.0 assumption, both normalized to the simulator.
func fig12(ctx context.Context, cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	ls := cnn.AllUniqueLayers(cfg.SimBatch)
	if cfg.Quick {
		ls = ls[:6]
	}
	d := gpu.TitanXp()
	pairs, err := runTrafficPairs(ctx, ls, d, cfg.SimBatch)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig. 12 — L2/DRAM traffic normalized to simulator: DeLTA vs prior (miss rate 1.0), TITAN Xp",
		"layer", "filter", "DeLTA L2", "prior L2", "DeLTA DRAM", "prior DRAM")
	var maxPriorDRAM float64
	var deltaDRAM, priorDRAM []float64
	for i, p := range pairs {
		pr := prior.FixMissRate(p.model, 1.0)
		dl2 := p.model.L2Bytes / p.sim.L2Bytes
		pl2 := pr.L2Bytes / p.sim.L2Bytes
		ddr := p.model.DRAMBytes / p.sim.DRAMBytes
		pdr := pr.DRAMBytes / p.sim.DRAMBytes
		t.AddRow(p.name, fmt.Sprintf("%dx%d", ls[i].Hf, ls[i].Wf), dl2, pl2, ddr, pdr)
		if pdr > maxPriorDRAM {
			maxPriorDRAM = pdr
		}
		deltaDRAM = append(deltaDRAM, ddr)
		priorDRAM = append(priorDRAM, pdr)
	}
	gd, _ := stats.GeoMean(deltaDRAM)
	gp, _ := stats.GeoMean(priorDRAM)
	t.AddRow("== geomean DRAM ratio", "", "", "", gd, gp)
	t.AddRow("== max prior DRAM ratio", "", "", "", "", maxPriorDRAM)
	return []*report.Table{t}, nil
}

// fig17 sweeps the Appendix A artificial layer along each axis and reports
// model/simulator traffic ratios per level.
func fig17(ctx context.Context, cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	base := cnn.SensitivityBase(cfg.SimBatch)
	d := gpu.TitanXp()

	sweep := func(title string, ls []layers.Conv) (*report.Table, error) {
		t := report.NewTable(title, "point", "L1 ratio", "L2 ratio", "DRAM ratio")
		pairs, err := pairLayers(ctx, ls, d)
		if err != nil {
			return nil, err
		}
		var r1, r2, rd []float64
		for _, p := range pairs {
			a := p.model.L1Bytes / p.sim.L1Bytes
			b := p.model.L2Bytes / p.sim.L2Bytes
			c := p.model.DRAMBytes / p.sim.DRAMBytes
			t.AddRow(p.name, a, b, c)
			r1, r2, rd = append(r1, a), append(r2, b), append(rd, c)
		}
		addRatioSummary(t, "L1", r1)
		addRatioSummary(t, "L2", r2)
		addRatioSummary(t, "DRAM", rd)
		return t, nil
	}

	coPoints := []int{32, 64, 96, 128, 192, 256, 384, 512}
	ciPoints := []int{16, 64, 128, 256, 384, 512}
	hwPoints := []int{8, 13, 20, 28, 40, 56, 92}
	bPoints := []int{2, 4, 8, 16}
	if cfg.Quick {
		coPoints, ciPoints, hwPoints, bPoints = coPoints[:3], ciPoints[:3], hwPoints[:3], bPoints[:2]
	}

	var tables []*report.Table
	var ls []layers.Conv
	for _, co := range coPoints {
		l := base
		l.Co = co
		l.Name = fmt.Sprintf("Co=%d", co)
		ls = append(ls, l)
	}
	t, err := sweep("Fig. 17a — sensitivity to output channel count", ls)
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)

	ls = nil
	for _, ci := range ciPoints {
		l := base
		l.Ci = ci
		l.Name = fmt.Sprintf("Ci=%d", ci)
		ls = append(ls, l)
	}
	if t, err = sweep("Fig. 17b — sensitivity to input channel count", ls); err != nil {
		return nil, err
	}
	tables = append(tables, t)

	ls = nil
	for _, hw := range hwPoints {
		l := base
		l.Hi, l.Wi = hw, hw
		l.Name = fmt.Sprintf("HW=%d", hw)
		ls = append(ls, l)
	}
	if t, err = sweep("Fig. 17c — sensitivity to IFmap size", ls); err != nil {
		return nil, err
	}
	tables = append(tables, t)

	ls = nil
	for _, b := range bPoints {
		l := base.WithBatch(b)
		l.Name = fmt.Sprintf("B=%d", b)
		ls = append(ls, l)
	}
	if t, err = sweep("Fig. 17d — sensitivity to mini-batch size", ls); err != nil {
		return nil, err
	}
	tables = append(tables, t)
	return tables, nil
}

// fig20 reports absolute traffic volumes side by side, model vs simulator.
func fig20(ctx context.Context, cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	ls := cnn.AllUniqueLayers(cfg.SimBatch)
	if cfg.Quick {
		ls = ls[:6]
	}
	pairs, err := runTrafficPairs(ctx, ls, gpu.TitanXp(), cfg.SimBatch)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Fig. 20 — absolute traffic, model vs simulator, TITAN Xp (B=%d)", cfg.SimBatch),
		"layer", "L1 model", "L1 sim", "L2 model", "L2 sim", "DRAM model", "DRAM sim")
	for _, p := range pairs {
		t.AddRow(p.name,
			report.Bytes(p.model.L1Bytes), report.Bytes(p.sim.L1Bytes),
			report.Bytes(p.model.L2Bytes), report.Bytes(p.sim.L2Bytes),
			report.Bytes(p.model.DRAMBytes), report.Bytes(p.sim.DRAMBytes))
	}
	return []*report.Table{t}, nil
}

// fig6Table is shared with the misc drivers; declared here to keep tiling
// imports together.
func fig6Table() *report.Table {
	t := report.NewTable("Fig. 6 — profiled CTA tile width by output channel count",
		"Co range", "CTA tile", "blkK")
	widths := tiling.ProfileTileWidth(384)
	start := 1
	for co := 2; co <= len(widths)+1; co++ {
		if co == len(widths)+1 || widths[co-1] != widths[start-1] {
			tile := tiling.Select(start)
			t.AddRow(fmt.Sprintf("%d..%d", start, co-1),
				fmt.Sprintf("%dx%d", tile.BlkM, tile.BlkN), tile.BlkK)
			start = co
		}
	}
	return t
}
