// Package explore turns DeLTA into the design-space exploration tool the
// paper's conclusion describes: "using DeLTA and a model of hardware
// resource costs, optimizing a future GPU for CNNs becomes a convex
// optimization problem."
//
// It enumerates grids of independent resource scalings (gpu.Scale), prices
// each candidate with a simple silicon cost model, evaluates a workload's
// predicted speedup with the analytical model, and extracts the Pareto
// frontier of (cost, speedup).
package explore

import (
	"fmt"
	"sort"

	"delta/internal/cnn"
	"delta/internal/gpu"
	"delta/internal/perf"
	"delta/internal/traffic"
)

// CostModel prices a scaled device relative to the baseline (baseline cost
// is 1.0 by construction). Weights express the fraction of the baseline's
// silicon/power budget each resource class represents; scaling a resource
// by x multiplies its share by x. Weights should sum to ~1.
type CostModel struct {
	SMWeight   float64 // per-SM logic (MACs, scheduler, LSU)
	RegWeight  float64 // register files
	SMEMWeight float64 // shared memory arrays + datapath
	L1Weight   float64 // L1 caches
	L2Weight   float64 // L2 arrays + bandwidth wiring
	DRAMWeight float64 // memory PHY + devices
}

// DefaultCostModel returns a coarse area/power split for a Pascal-class
// GPU: compute-heavy die, significant RF, memory system around a quarter.
func DefaultCostModel() CostModel {
	return CostModel{
		SMWeight:   0.40,
		RegWeight:  0.15,
		SMEMWeight: 0.08,
		L1Weight:   0.07,
		L2Weight:   0.12,
		DRAMWeight: 0.18,
	}
}

func orOne(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}

// Cost returns the relative hardware cost of a scaled device. NumSM scaling
// multiplies every per-SM resource; MAC/REG/SMEM/L1 scalings are per-SM.
func (c CostModel) Cost(s gpu.Scale) float64 {
	sm := orOne(s.NumSM)
	perSM := c.SMWeight*orOne(s.MACPerSM) +
		c.RegWeight*orOne(s.RegPerSM) +
		c.SMEMWeight*orOne(s.SMEMPerSM)*orOne(s.SMEMBW) +
		c.L1Weight*orOne(s.L1BW)
	return sm*perSM + c.L2Weight*orOne(s.L2BW) + c.DRAMWeight*orOne(s.DRAMBW)
}

// Candidate is one evaluated design point.
type Candidate struct {
	Scale   gpu.Scale
	Cost    float64 // relative to baseline (1.0)
	Speedup float64 // workload speedup over baseline
}

// Efficiency returns speedup per unit cost.
func (c Candidate) Efficiency() float64 { return c.Speedup / c.Cost }

func (c Candidate) String() string {
	return fmt.Sprintf("cost %.2f, speedup %.2fx (%.2fx/cost)", c.Cost, c.Speedup, c.Efficiency())
}

// Axes defines the grid of scalings to enumerate. Empty axes mean "1x only".
type Axes struct {
	NumSM    []float64
	MACPerSM []float64
	MemBW    []float64 // applied to L2 and DRAM bandwidth together
	SMLocal  []float64 // applied to REG, SMEM (size+BW), and L1 BW together
}

// DefaultAxes spans the neighborhood of the paper's design options.
func DefaultAxes() Axes {
	return Axes{
		NumSM:    []float64{1, 2},
		MACPerSM: []float64{1, 2, 4, 8},
		MemBW:    []float64{1, 1.5, 2, 3},
		SMLocal:  []float64{1, 2, 3},
	}
}

func orDefault(xs []float64) []float64 {
	if len(xs) == 0 {
		return []float64{1}
	}
	return xs
}

// Enumerate expands the axes into the full scale grid.
func (a Axes) Enumerate() []gpu.Scale {
	var out []gpu.Scale
	for _, sm := range orDefault(a.NumSM) {
		for _, mac := range orDefault(a.MACPerSM) {
			for _, mem := range orDefault(a.MemBW) {
				for _, loc := range orDefault(a.SMLocal) {
					out = append(out, gpu.Scale{
						NumSM: sm, MACPerSM: mac,
						L2BW: mem, DRAMBW: mem,
						RegPerSM: loc, SMEMPerSM: loc, SMEMBW: loc, L1BW: loc,
					})
				}
			}
		}
	}
	return out
}

// Workload is the network whose predicted time drives the exploration.
type Workload struct {
	Net cnn.Network
	Opt traffic.Options
}

// time evaluates the workload on a device.
func (w Workload) time(d gpu.Device) (float64, error) {
	rs, err := perf.ModelAll(w.Net.Layers, d, w.Opt)
	if err != nil {
		return 0, err
	}
	return perf.NetworkTime(rs, w.Net.Counts), nil
}

// Evaluate prices and times every scale against the baseline device.
func Evaluate(w Workload, base gpu.Device, scales []gpu.Scale, cm CostModel) ([]Candidate, error) {
	baseTime, err := w.time(base)
	if err != nil {
		return nil, err
	}
	out := make([]Candidate, 0, len(scales))
	for _, s := range scales {
		t, err := w.time(s.Apply(base))
		if err != nil {
			return nil, err
		}
		out = append(out, Candidate{Scale: s, Cost: cm.Cost(s), Speedup: baseTime / t})
	}
	return out, nil
}

// ParetoFront returns the candidates not dominated in (lower cost, higher
// speedup), sorted by cost ascending.
func ParetoFront(cands []Candidate) []Candidate {
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Cost != sorted[j].Cost {
			return sorted[i].Cost < sorted[j].Cost
		}
		return sorted[i].Speedup > sorted[j].Speedup
	})
	var front []Candidate
	best := 0.0
	for _, c := range sorted {
		if c.Speedup > best {
			front = append(front, c)
			best = c.Speedup
		}
	}
	return front
}

// CheapestAtLeast returns the lowest-cost candidate reaching the target
// speedup, and whether one exists.
func CheapestAtLeast(cands []Candidate, target float64) (Candidate, bool) {
	var best Candidate
	found := false
	for _, c := range cands {
		if c.Speedup < target {
			continue
		}
		if !found || c.Cost < best.Cost {
			best, found = c, true
		}
	}
	return best, found
}

// MostEfficient returns the candidate with the highest speedup per cost.
func MostEfficient(cands []Candidate) (Candidate, bool) {
	var best Candidate
	found := false
	for _, c := range cands {
		if !found || c.Efficiency() > best.Efficiency() {
			best, found = c, true
		}
	}
	return best, found
}
