package explore

import (
	"testing"
	"testing/quick"

	"delta/internal/cnn"
	"delta/internal/gpu"
	"delta/internal/traffic"
)

func smallWorkload() Workload {
	return Workload{Net: cnn.AlexNet(32), Opt: traffic.Options{}}
}

func TestCostModelBaseline(t *testing.T) {
	cm := DefaultCostModel()
	// The identity scale costs exactly the sum of the weights (~1).
	c := cm.Cost(gpu.Scale{})
	sum := cm.SMWeight + cm.RegWeight + cm.SMEMWeight + cm.L1Weight + cm.L2Weight + cm.DRAMWeight
	if c != sum {
		t.Errorf("baseline cost = %v, want %v", c, sum)
	}
	// Doubling SMs doubles every per-SM share but not L2/DRAM.
	d := cm.Cost(gpu.Scale{NumSM: 2})
	wantD := 2*(cm.SMWeight+cm.RegWeight+cm.SMEMWeight+cm.L1Weight) + cm.L2Weight + cm.DRAMWeight
	if d != wantD {
		t.Errorf("2x SM cost = %v, want %v", d, wantD)
	}
	if d <= c {
		t.Error("bigger device not costlier")
	}
}

func TestEnumerate(t *testing.T) {
	a := Axes{NumSM: []float64{1, 2}, MACPerSM: []float64{1, 4}}
	scales := a.Enumerate()
	if len(scales) != 4 {
		t.Fatalf("enumerated %d, want 4", len(scales))
	}
	if len((Axes{}).Enumerate()) != 1 {
		t.Error("empty axes should yield the identity point")
	}
}

func TestEvaluateAndPareto(t *testing.T) {
	w := smallWorkload()
	scales := Axes{MACPerSM: []float64{1, 2, 4}, MemBW: []float64{1, 2}}.Enumerate()
	cands, err := Evaluate(w, gpu.TitanXp(), scales, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 6 {
		t.Fatalf("candidates = %d", len(cands))
	}
	// The identity point has speedup ~1 at cost ~1.
	var identity *Candidate
	for i := range cands {
		if cands[i].Scale == (gpu.Scale{NumSM: 1, MACPerSM: 1, L2BW: 1, DRAMBW: 1,
			RegPerSM: 1, SMEMPerSM: 1, SMEMBW: 1, L1BW: 1}) {
			identity = &cands[i]
		}
	}
	if identity == nil {
		t.Fatal("identity point missing")
	}
	if identity.Speedup < 0.999 || identity.Speedup > 1.001 {
		t.Errorf("identity speedup = %v", identity.Speedup)
	}

	front := ParetoFront(cands)
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	// Front is sorted by cost and strictly improving in speedup.
	for i := 1; i < len(front); i++ {
		if front[i].Cost < front[i-1].Cost {
			t.Error("front not cost-sorted")
		}
		if front[i].Speedup <= front[i-1].Speedup {
			t.Error("front not speedup-increasing")
		}
	}
	// Every candidate is dominated by or on the front.
	for _, c := range cands {
		dominated := false
		for _, f := range front {
			if f.Cost <= c.Cost && f.Speedup >= c.Speedup {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("candidate %v escapes the front", c)
		}
	}
}

func TestCheapestAtLeastAndMostEfficient(t *testing.T) {
	cands := []Candidate{
		{Cost: 1.0, Speedup: 1.0},
		{Cost: 1.5, Speedup: 2.0},
		{Cost: 2.0, Speedup: 2.1},
		{Cost: 3.0, Speedup: 4.0},
	}
	c, ok := CheapestAtLeast(cands, 2.0)
	if !ok || c.Cost != 1.5 {
		t.Errorf("CheapestAtLeast = %v, %v", c, ok)
	}
	if _, ok := CheapestAtLeast(cands, 10); ok {
		t.Error("unreachable target satisfied")
	}
	e, ok := MostEfficient(cands)
	if !ok || e.Cost != 1.5 {
		t.Errorf("MostEfficient = %v", e)
	}
	if _, ok := MostEfficient(nil); ok {
		t.Error("empty MostEfficient succeeded")
	}
}

// TestQuickMoreResourcesNeverSlower: along any single axis, adding resources
// never reduces the predicted speedup (the monotonicity the "convex
// optimization" claim rests on).
func TestQuickMoreResourcesNeverSlower(t *testing.T) {
	w := smallWorkload()
	base := gpu.TitanXp()
	cm := DefaultCostModel()
	f := func(axis, mag uint8) bool {
		lo := 1 + float64(mag%3) // 1..3
		hi := lo + 1
		mk := func(x float64) gpu.Scale {
			switch axis % 4 {
			case 0:
				return gpu.Scale{MACPerSM: x}
			case 1:
				return gpu.Scale{L2BW: x, DRAMBW: x}
			case 2:
				return gpu.Scale{NumSM: x, L2BW: x, DRAMBW: x}
			default:
				return gpu.Scale{RegPerSM: x, SMEMPerSM: x, SMEMBW: x, L1BW: x}
			}
		}
		cands, err := Evaluate(w, base, []gpu.Scale{mk(lo), mk(hi)}, cm)
		if err != nil {
			return false
		}
		return cands[1].Speedup >= cands[0].Speedup*0.999 &&
			cands[1].Cost >= cands[0].Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
