// Package gpu defines the parameterized GPU device model used by DeLTA.
//
// Each Device carries the Table I specifications of the paper plus the
// micro-benchmarked latencies of Fig. 18 and the shared-memory datapath
// widths that the paper profiles but does not tabulate. All bandwidths are
// convertible to bytes per core clock, which is the unit the performance
// model computes in.
package gpu

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"delta/internal/naming"
)

// Device is a parameterized GPU. The zero value is not usable; construct
// devices with the factory functions or by scaling an existing device.
type Device struct {
	Name string

	NumSM    int     // streaming multiprocessors
	ClockGHz float64 // core clock

	MACGFLOPS float64 // FP32 throughput (2 FLOPs per MAC), whole chip

	RegKBPerSM    float64 // register file per SM
	SMEMKBPerSM   float64 // shared memory per SM
	L2SizeMB      float64 // shared L2 capacity
	L1SizeKBPerSM float64 // L1 data cache per SM (approximate; used by the simulator)

	L1BWGBsPerSM float64 // L1 load bandwidth, per SM
	L2BWGBs      float64 // L2 bandwidth, whole chip
	DRAMBWGBs    float64 // effective DRAM bandwidth (Fig. 18 knee), whole chip

	// SMEM datapath widths in bytes per clock per SM. The paper profiles
	// these rather than quoting vendor numbers; 32 banks x 4B = 128 B/clk
	// is the architectural width for both generations.
	SMEMLoadBPerClk  float64
	SMEMStoreBPerClk float64

	// Pipeline (unloaded) latencies in core clocks, per Fig. 18 and the
	// microbenchmark literature the paper cites.
	LatL1Clk   float64
	LatL2Clk   float64
	LatDRAMClk float64
	LatSMEMClk float64

	// L1ReqBytes is the L1 request coalescing granularity: 128 B on Pascal,
	// 32 B on Volta (Section VII-A).
	L1ReqBytes int

	// SectorBytes is the minimum memory transaction granularity (one sector
	// of a 128 B line). 32 B on all modeled devices.
	SectorBytes int

	// LineBytes is the cache line size at L1 and L2.
	LineBytes int

	// MaxCTAPerSM is the hardware scheduler limit on concurrently resident
	// CTAs per SM.
	MaxCTAPerSM int
}

// Validate reports whether every field needed by the models is populated.
func (d Device) Validate() error {
	switch {
	case d.NumSM <= 0:
		return fmt.Errorf("gpu: %s: NumSM %d", d.Name, d.NumSM)
	case d.ClockGHz <= 0:
		return fmt.Errorf("gpu: %s: clock %v", d.Name, d.ClockGHz)
	case d.MACGFLOPS <= 0:
		return fmt.Errorf("gpu: %s: MAC throughput %v", d.Name, d.MACGFLOPS)
	case d.L1BWGBsPerSM <= 0 || d.L2BWGBs <= 0 || d.DRAMBWGBs <= 0:
		return fmt.Errorf("gpu: %s: memory bandwidth unset", d.Name)
	case d.SMEMLoadBPerClk <= 0 || d.SMEMStoreBPerClk <= 0:
		return fmt.Errorf("gpu: %s: SMEM bandwidth unset", d.Name)
	case d.L1ReqBytes <= 0 || d.SectorBytes <= 0 || d.LineBytes <= 0:
		return fmt.Errorf("gpu: %s: transaction granularities unset", d.Name)
	case d.LineBytes&(d.LineBytes-1) != 0 || d.SectorBytes&(d.SectorBytes-1) != 0 || d.L1ReqBytes&(d.L1ReqBytes-1) != 0:
		// The simulator's cache and coalescer decompose addresses with
		// shifts and masks; no real GPU uses non-power-of-two transaction
		// granularities, so reject them here rather than panic downstream.
		return fmt.Errorf("gpu: %s: transaction granularities (line %dB, sector %dB, req %dB) must be powers of two",
			d.Name, d.LineBytes, d.SectorBytes, d.L1ReqBytes)
	case d.LineBytes%d.SectorBytes != 0:
		return fmt.Errorf("gpu: %s: line %dB not a multiple of sector %dB", d.Name, d.LineBytes, d.SectorBytes)
	case d.RegKBPerSM <= 0 || d.SMEMKBPerSM <= 0 || d.L2SizeMB <= 0:
		return fmt.Errorf("gpu: %s: storage sizes unset", d.Name)
	case d.MaxCTAPerSM <= 0:
		return fmt.Errorf("gpu: %s: MaxCTAPerSM unset", d.Name)
	}
	return nil
}

// MACPerClkPerSM returns FP32 MAC operations per clock per SM.
func (d Device) MACPerClkPerSM() float64 {
	return d.MACGFLOPS / 2 / float64(d.NumSM) / d.ClockGHz
}

// gbPerSecToBytesPerClk converts a GB/s figure to bytes per core clock.
func (d Device) gbPerSecToBytesPerClk(gbs float64) float64 {
	return gbs / d.ClockGHz // GB/s / (Gclk/s) = bytes/clk
}

// L1BytesPerClkPerSM returns per-SM L1 load bandwidth in bytes/clk.
func (d Device) L1BytesPerClkPerSM() float64 { return d.gbPerSecToBytesPerClk(d.L1BWGBsPerSM) }

// L2BytesPerClk returns whole-chip L2 bandwidth in bytes/clk.
func (d Device) L2BytesPerClk() float64 { return d.gbPerSecToBytesPerClk(d.L2BWGBs) }

// DRAMBytesPerClk returns whole-chip DRAM bandwidth in bytes/clk.
func (d Device) DRAMBytesPerClk() float64 { return d.gbPerSecToBytesPerClk(d.DRAMBWGBs) }

// L2BytesPerClkPerSM returns the per-SM fair share of L2 bandwidth.
func (d Device) L2BytesPerClkPerSM() float64 { return d.L2BytesPerClk() / float64(d.NumSM) }

// DRAMBytesPerClkPerSM returns the per-SM fair share of DRAM bandwidth.
func (d Device) DRAMBytesPerClkPerSM() float64 { return d.DRAMBytesPerClk() / float64(d.NumSM) }

// CyclesToSeconds converts core clocks to seconds.
func (d Device) CyclesToSeconds(cycles float64) float64 {
	return cycles / (d.ClockGHz * 1e9)
}

// SecondsToCycles converts seconds to core clocks.
func (d Device) SecondsToCycles(s float64) float64 {
	return s * d.ClockGHz * 1e9
}

// L2SizeBytes returns the L2 capacity in bytes.
func (d Device) L2SizeBytes() float64 { return d.L2SizeMB * (1 << 20) }

// RegBytesPerSM returns the register file size in bytes.
func (d Device) RegBytesPerSM() float64 { return d.RegKBPerSM * (1 << 10) }

// SMEMBytesPerSM returns the shared-memory size in bytes.
func (d Device) SMEMBytesPerSM() float64 { return d.SMEMKBPerSM * (1 << 10) }

// TitanXp returns the Pascal TITAN Xp configuration of Table I.
func TitanXp() Device {
	return Device{
		Name:             "TITAN Xp",
		NumSM:            30,
		ClockGHz:         1.58,
		MACGFLOPS:        12134,
		RegKBPerSM:       256,
		SMEMKBPerSM:      96,
		L1SizeKBPerSM:    48,
		L2SizeMB:         3,
		L1BWGBsPerSM:     92,
		L2BWGBs:          1051,
		DRAMBWGBs:        430, // effective (Fig. 18a); theoretical 450
		SMEMLoadBPerClk:  128,
		SMEMStoreBPerClk: 128,
		LatL1Clk:         32,
		LatL2Clk:         220,
		LatDRAMClk:       500, // Fig. 18a
		LatSMEMClk:       24,
		L1ReqBytes:       128,
		SectorBytes:      32,
		LineBytes:        128,
		MaxCTAPerSM:      32,
	}
}

// P100 returns the Pascal Tesla P100 configuration of Table I.
func P100() Device {
	return Device{
		Name:             "P100",
		NumSM:            56,
		ClockGHz:         1.2,
		MACGFLOPS:        8602,
		RegKBPerSM:       256,
		SMEMKBPerSM:      64,
		L1SizeKBPerSM:    24,
		L2SizeMB:         4,
		L1BWGBsPerSM:     38.1,
		L2BWGBs:          1382,
		DRAMBWGBs:        550, // effective (Fig. 18b)
		SMEMLoadBPerClk:  128,
		SMEMStoreBPerClk: 128,
		LatL1Clk:         32,
		LatL2Clk:         234,
		LatDRAMClk:       580, // Fig. 18b
		LatSMEMClk:       24,
		L1ReqBytes:       128,
		SectorBytes:      32,
		LineBytes:        128,
		MaxCTAPerSM:      32,
	}
}

// V100 returns the Volta Tesla V100 configuration of Table I. The paper
// found 32 B L1 request granularity matched Volta measurements best.
func V100() Device {
	return Device{
		Name:             "V100",
		NumSM:            84,
		ClockGHz:         1.38,
		MACGFLOPS:        14837,
		RegKBPerSM:       256,
		SMEMKBPerSM:      94, // unified L1/SMEM, up to 94 KB as SMEM
		L1SizeKBPerSM:    32,
		L2SizeMB:         6,
		L1BWGBsPerSM:     94.1,
		L2BWGBs:          2167,
		DRAMBWGBs:        850, // effective (Fig. 18c)
		SMEMLoadBPerClk:  128,
		SMEMStoreBPerClk: 128,
		LatL1Clk:         28,
		LatL2Clk:         193,
		LatDRAMClk:       500, // Fig. 18c
		LatSMEMClk:       19,
		L1ReqBytes:       32,
		SectorBytes:      32,
		LineBytes:        128,
		MaxCTAPerSM:      32,
	}
}

// All returns the three devices the paper evaluates, in Table I order.
func All() []Device { return []Device{TitanXp(), P100(), V100()} }

// registered holds devices added at runtime with Register, keyed by
// normalized name. Built-in Table I devices always win a lookup.
var (
	regMu      sync.RWMutex
	registered = map[string]Device{}
)

// Register adds a device to the by-name registry (e.g. a hypothetical GPU
// loaded from a spec file that later lookups should resolve). The device
// must validate and must not shadow a built-in Table I name.
func Register(d Device) error {
	if err := d.Validate(); err != nil {
		return err
	}
	key := naming.Normalize(d.Name)
	for _, b := range All() {
		if naming.Normalize(b.Name) == key {
			return fmt.Errorf("gpu: cannot shadow built-in device %q", b.Name)
		}
	}
	regMu.Lock()
	registered[key] = d
	regMu.Unlock()
	return nil
}

// Names returns the resolvable device names: Table I order first, then
// registered devices sorted by name.
func Names() []string {
	var out []string
	for _, d := range All() {
		out = append(out, d.Name)
	}
	regMu.RLock()
	extra := make([]string, 0, len(registered))
	for _, d := range registered {
		extra = append(extra, d.Name)
	}
	regMu.RUnlock()
	sort.Strings(extra)
	return append(out, extra...)
}

// ByName returns the named device — a Table I device (exact or normalized
// name) or one previously added with Register — or an error.
func ByName(name string) (Device, error) {
	key := naming.Normalize(name)
	for _, d := range All() {
		if d.Name == name || naming.Normalize(d.Name) == key {
			return d, nil
		}
	}
	regMu.RLock()
	d, ok := registered[key]
	regMu.RUnlock()
	if ok {
		return d, nil
	}
	return Device{}, fmt.Errorf("gpu: unknown device %q", name)
}

// Scale describes multiplicative scaling of independent GPU resources, as in
// the design-option table of Fig. 16a. The zero value of a field means "x1".
type Scale struct {
	NumSM      float64 // number of SMs (also scales aggregate L1/SMEM/REG)
	MACPerSM   float64 // per-SM MAC throughput
	RegPerSM   float64 // per-SM register file size
	SMEMPerSM  float64 // per-SM shared-memory size
	SMEMBW     float64 // per-SM shared-memory bandwidth
	L1BW       float64 // per-SM L1 bandwidth
	L2BW       float64 // whole-chip L2 bandwidth
	DRAMBW     float64 // whole-chip DRAM bandwidth
	CTATileDim int     // CTA tile height/width override (0 keeps the default 128)
}

func orOne(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}

// Apply returns a copy of d with the scaling factors applied. The whole-chip
// MAC throughput scales with both NumSM and MACPerSM. Fractional SM scaling
// rounds to the nearest integer (at least 1).
func (s Scale) Apply(d Device) Device {
	out := d
	smScale := orOne(s.NumSM)
	out.NumSM = int(math.Max(1, math.Round(float64(d.NumSM)*smScale)))
	out.MACGFLOPS = d.MACGFLOPS * smScale * orOne(s.MACPerSM)
	out.RegKBPerSM = d.RegKBPerSM * orOne(s.RegPerSM)
	out.SMEMKBPerSM = d.SMEMKBPerSM * orOne(s.SMEMPerSM)
	out.SMEMLoadBPerClk = d.SMEMLoadBPerClk * orOne(s.SMEMBW)
	out.SMEMStoreBPerClk = d.SMEMStoreBPerClk * orOne(s.SMEMBW)
	out.L1BWGBsPerSM = d.L1BWGBsPerSM * orOne(s.L1BW)
	out.L2BWGBs = d.L2BWGBs * orOne(s.L2BW)
	out.DRAMBWGBs = d.DRAMBWGBs * orOne(s.DRAMBW)
	return out
}

// DesignOption is one column of the Fig. 16a design-option table.
type DesignOption struct {
	ID    int
	Label string
	Scale Scale
}

// DesignOptions returns the nine GPU design options of Fig. 16a, to be
// applied to the TITAN Xp baseline.
func DesignOptions() []DesignOption {
	return []DesignOption{
		{1, "2x SM, 1.5x L2/DRAM BW", Scale{NumSM: 2, L2BW: 1.5, DRAMBW: 1.5}},
		{2, "4x SM, 2x L2/DRAM BW", Scale{NumSM: 4, L2BW: 2, DRAMBW: 2}},
		{3, "2x MAC", Scale{MACPerSM: 2}},
		{4, "4x MAC", Scale{MACPerSM: 4}},
		{5, "4x MAC, 2x REG/SMEM, 1.5x L1/L2/DRAM BW",
			Scale{MACPerSM: 4, RegPerSM: 2, SMEMPerSM: 2, SMEMBW: 2, L1BW: 1.5, L2BW: 1.5, DRAMBW: 1.5}},
		{6, "6x MAC, 2x REG/SMEM/L1, 1.5x L2, 2x DRAM",
			Scale{MACPerSM: 6, RegPerSM: 2, SMEMPerSM: 2, SMEMBW: 2, L1BW: 2, L2BW: 1.5, DRAMBW: 2}},
		{7, "8x MAC, 3x REG/SMEM, 2x L1/L2/DRAM, 256 tile",
			Scale{MACPerSM: 8, RegPerSM: 3, SMEMPerSM: 3, SMEMBW: 3, L1BW: 2, L2BW: 2, DRAMBW: 2, CTATileDim: 256}},
		{8, "2x SM, 4x MAC, 2x REG/SMEM/L1/L2/DRAM, 256 tile",
			Scale{NumSM: 2, MACPerSM: 4, RegPerSM: 2, SMEMPerSM: 2, SMEMBW: 2, L1BW: 2, L2BW: 2, DRAMBW: 2, CTATileDim: 256}},
		{9, "8x MAC, 3x REG/SMEM, 2x L1/L2, 3x DRAM, 256 tile",
			Scale{MACPerSM: 8, RegPerSM: 3, SMEMPerSM: 3, SMEMBW: 3, L1BW: 2, L2BW: 2, DRAMBW: 3, CTATileDim: 256}},
	}
}
