package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllDevicesValidate(t *testing.T) {
	for _, d := range All() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestTableISpecs(t *testing.T) {
	// Spot-check Table I values survive the constructors.
	xp := TitanXp()
	if xp.NumSM != 30 || xp.MACGFLOPS != 12134 || xp.L2SizeMB != 3 {
		t.Errorf("TITAN Xp spec drift: %+v", xp)
	}
	p := P100()
	if p.NumSM != 56 || p.L2BWGBs != 1382 || p.SMEMKBPerSM != 64 {
		t.Errorf("P100 spec drift: %+v", p)
	}
	v := V100()
	if v.NumSM != 84 || v.L1ReqBytes != 32 || v.L2SizeMB != 6 {
		t.Errorf("V100 spec drift: %+v", v)
	}
}

func TestMACPerClkPerSM(t *testing.T) {
	// TITAN Xp: 12134 GFLOPS / 2 / 30 SM / 1.58 GHz = 128 MAC/clk/SM.
	got := TitanXp().MACPerClkPerSM()
	if math.Abs(got-128) > 0.5 {
		t.Errorf("TITAN Xp MAC/clk/SM = %v, want ~128", got)
	}
}

func TestBandwidthConversions(t *testing.T) {
	d := TitanXp()
	// 430 GB/s at 1.58 GHz = 272.15 B/clk.
	if got := d.DRAMBytesPerClk(); math.Abs(got-430/1.58) > 1e-9 {
		t.Errorf("DRAMBytesPerClk = %v", got)
	}
	if got := d.L2BytesPerClkPerSM() * float64(d.NumSM); math.Abs(got-d.L2BytesPerClk()) > 1e-9 {
		t.Errorf("per-SM L2 share does not sum to total: %v", got)
	}
}

func TestCyclesSecondsRoundTrip(t *testing.T) {
	d := V100()
	s := d.CyclesToSeconds(1.38e9)
	if math.Abs(s-1.0) > 1e-12 {
		t.Errorf("1.38e9 cycles = %v s, want 1", s)
	}
	if got := d.SecondsToCycles(s); math.Abs(got-1.38e9) > 1e-3 {
		t.Errorf("round trip = %v", got)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("P100"); err != nil {
		t.Errorf("ByName(P100): %v", err)
	}
	if _, err := ByName("K80"); err == nil {
		t.Error("ByName(K80) should fail")
	}
}

func TestScaleIdentity(t *testing.T) {
	d := TitanXp()
	got := (Scale{}).Apply(d)
	if got != d {
		t.Errorf("zero Scale changed device:\n got %+v\nwant %+v", got, d)
	}
}

func TestScaleApply(t *testing.T) {
	d := TitanXp()
	s := Scale{NumSM: 2, MACPerSM: 3, L2BW: 1.5, DRAMBW: 2, RegPerSM: 2, SMEMPerSM: 2, SMEMBW: 2, L1BW: 1.5}
	got := s.Apply(d)
	if got.NumSM != 60 {
		t.Errorf("NumSM = %d, want 60", got.NumSM)
	}
	if want := d.MACGFLOPS * 6; got.MACGFLOPS != want {
		t.Errorf("MACGFLOPS = %v, want %v", got.MACGFLOPS, want)
	}
	if got.L2BWGBs != d.L2BWGBs*1.5 || got.DRAMBWGBs != d.DRAMBWGBs*2 {
		t.Errorf("BW scaling wrong: %+v", got)
	}
	if got.RegKBPerSM != 512 || got.SMEMKBPerSM != 192 {
		t.Errorf("storage scaling wrong: %+v", got)
	}
	if got.SMEMLoadBPerClk != 256 || got.L1BWGBsPerSM != 138 {
		t.Errorf("SM-local BW scaling wrong: %+v", got)
	}
	// Per-SM MAC rate tripled: NumSM doubling alone must not change it.
	if r := got.MACPerClkPerSM() / d.MACPerClkPerSM(); math.Abs(r-3) > 1e-9 {
		t.Errorf("per-SM MAC ratio = %v, want 3", r)
	}
}

func TestDesignOptionsTable(t *testing.T) {
	opts := DesignOptions()
	if len(opts) != 9 {
		t.Fatalf("want 9 design options, got %d", len(opts))
	}
	for i, o := range opts {
		if o.ID != i+1 {
			t.Errorf("option %d has ID %d", i, o.ID)
		}
		d := o.Scale.Apply(TitanXp())
		if err := d.Validate(); err != nil {
			t.Errorf("option %d scales to invalid device: %v", o.ID, err)
		}
	}
	// Option 2: 4x SM with 2x memory BW (the "conventional" scaling).
	d2 := opts[1].Scale.Apply(TitanXp())
	if d2.NumSM != 120 || d2.DRAMBWGBs != 860 {
		t.Errorf("option 2 mis-scaled: %+v", d2)
	}
	// Options 7-9 enlarge the CTA tile.
	for _, id := range []int{7, 8, 9} {
		if opts[id-1].Scale.CTATileDim != 256 {
			t.Errorf("option %d should set 256 CTA tile", id)
		}
	}
}

func TestQuickScaleMonotone(t *testing.T) {
	// Scaling any single resource up never reduces any derived bandwidth.
	f := func(which uint8, mag uint8) bool {
		factor := 1 + float64(mag%8)/2 // 1 .. 4.5
		var s Scale
		switch which % 6 {
		case 0:
			s.NumSM = factor
		case 1:
			s.MACPerSM = factor
		case 2:
			s.L1BW = factor
		case 3:
			s.L2BW = factor
		case 4:
			s.DRAMBW = factor
		case 5:
			s.SMEMBW = factor
		}
		base := TitanXp()
		d := s.Apply(base)
		return d.MACGFLOPS >= base.MACGFLOPS &&
			d.L2BytesPerClk() >= base.L2BytesPerClk() &&
			d.DRAMBytesPerClk() >= base.DRAMBytesPerClk() &&
			d.SMEMLoadBPerClk >= base.SMEMLoadBPerClk &&
			d.NumSM >= base.NumSM
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
