// Package im2col implements the address algebra of the image-to-column
// convolution algorithm (Section II-C of the paper).
//
// The im2col transform recasts a convolution as a GEMM whose IFmap matrix is
// a *virtual* replication of the input tensor: element (m, k) of the M x K
// IFmap matrix aliases one element of the padded BCHW input tensor. Package
// im2col maps matrix coordinates to physical element addresses; both the
// analytical traffic model and the trace-driven simulator are built on this
// mapping, so a single tested implementation keeps them consistent.
package im2col

import (
	"delta/internal/layers"
)

// Matrix is the virtual im2col IFmap matrix of one convolution layer.
type Matrix struct {
	L layers.Conv

	// cached geometry
	ho, wo, hiP, wiP int
	m, n, k          int
}

// New builds the im2col matrix view for a layer. The layer must validate.
func New(l layers.Conv) Matrix {
	m, n, k := l.GEMM()
	return Matrix{
		L:   l,
		ho:  l.Ho(),
		wo:  l.Wo(),
		hiP: l.HiPad(),
		wiP: l.WiPad(),
		m:   m,
		n:   n,
		k:   k,
	}
}

// Dims returns the GEMM dimensions (M, N, K).
func (mt Matrix) Dims() (m, n, k int) { return mt.m, mt.n, mt.k }

// Coord is a decoded position in the padded BCHW input tensor.
type Coord struct {
	B, C int // sample and channel
	Y, X int // padded row and column
}

// Decode splits matrix coordinates (row, col) into tensor coordinates.
// Row indexes the output position (b, y, x); col indexes the filter tap
// (c, r, s). The returned coordinate is in the padded frame.
func (mt Matrix) Decode(row, col int) Coord {
	b := row / (mt.ho * mt.wo)
	rem := row % (mt.ho * mt.wo)
	oy := rem / mt.wo
	ox := rem % mt.wo

	c := col / (mt.L.Hf * mt.L.Wf)
	rem2 := col % (mt.L.Hf * mt.L.Wf)
	r := rem2 / mt.L.Wf
	s := rem2 % mt.L.Wf

	return Coord{B: b, C: c, Y: oy*mt.L.Stride + r, X: ox*mt.L.Stride + s}
}

// Address returns the element index of matrix position (row, col) within the
// padded BCHW tensor laid out contiguously (the address space the paper's
// Fig. 5a numbers enumerate). Multiply by layers.ElemBytes for a byte
// address.
func (mt Matrix) Address(row, col int) int64 {
	co := mt.Decode(row, col)
	return ((int64(co.B)*int64(mt.L.Ci)+int64(co.C))*int64(mt.hiP)+int64(co.Y))*int64(mt.wiP) + int64(co.X)
}

// IsPad reports whether matrix position (row, col) falls in the zero-padding
// halo rather than on a real input element.
func (mt Matrix) IsPad(row, col int) bool {
	co := mt.Decode(row, col)
	return co.Y < mt.L.Pad || co.Y >= mt.L.Pad+mt.L.Hi ||
		co.X < mt.L.Pad || co.X >= mt.L.Pad+mt.L.Wi
}

// PaddedElems returns the number of elements in the padded input tensor,
// i.e. the extent of the Address space.
func (mt Matrix) PaddedElems() int64 {
	return int64(mt.L.B) * int64(mt.L.Ci) * int64(mt.hiP) * int64(mt.wiP)
}

// ColumnAddresses fills dst with the addresses of rows [row0, row0+len(dst))
// of matrix column col. It is the access pattern of one warp loading a slice
// of an IFmap-matrix column (Fig. 5a) and is the simulator's hot path.
func (mt Matrix) ColumnAddresses(col, row0 int, dst []int64) {
	it := mt.ColumnIter(col, row0)
	for i := range dst {
		dst[i] = it.Addr()
		it.Advance()
	}
}

// ColumnIter walks one im2col-matrix column down the M (row) direction in
// O(1) per step: within a run of Wo consecutive rows the address advances by
// Stride, and the iterator carries the precomputed jumps across output-row
// and sample boundaries. It replaces a full Decode (four div/mods) per
// element in the trace generator's inner loops with two compares and an add.
//
// The iterator yields rows row0, row0+1, ... of the fixed column; advancing
// past the last matrix row is harmless (the out-of-range address is simply
// never read).
type ColumnIter struct {
	addr int64 // element address of the current row

	ox, oy int // output-pixel coordinate of the current row
	wo, ho int // output feature-map extents (run lengths)

	// Address deltas: one output pixel to the right; additional jump when
	// the output row wraps; additional jump when the sample wraps.
	stepX, stepRow, stepSample int64

	// Padding-halo test state: (y, x) is the padded input coordinate of the
	// current row, stepped alongside addr; the halo is everything outside
	// [padLo, padHiY) x [padLo, padHiX).
	x, y                  int
	r, s                  int // filter-tap offsets of this column
	stride                int
	padLo, padHiY, padHiX int
}

// ColumnIter positions an iterator at (row0, col). The one-off cost is a
// single Decode; every subsequent row costs O(1).
func (mt Matrix) ColumnIter(col, row0 int) ColumnIter {
	co := mt.Decode(row0, col)
	rem := col % (mt.L.Hf * mt.L.Wf)
	r, s := rem/mt.L.Wf, rem%mt.L.Wf

	stride := int64(mt.L.Stride)
	wiP := int64(mt.wiP)
	sample := int64(mt.L.Ci) * int64(mt.hiP) * wiP
	rem2 := row0 % (mt.ho * mt.wo)
	return ColumnIter{
		addr:       mt.Address(row0, col),
		ox:         rem2 % mt.wo,
		oy:         rem2 / mt.wo,
		wo:         mt.wo,
		ho:         mt.ho,
		stepX:      stride,
		stepRow:    stride*wiP - int64(mt.wo)*stride,
		stepSample: sample - int64(mt.ho)*stride*wiP,
		x:          co.X,
		y:          co.Y,
		r:          r,
		s:          s,
		stride:     mt.L.Stride,
		padLo:      mt.L.Pad,
		padHiY:     mt.L.Pad + mt.L.Hi,
		padHiX:     mt.L.Pad + mt.L.Wi,
	}
}

// Addr returns the element address of the current row (multiply by
// layers.ElemBytes for a byte address).
func (it *ColumnIter) Addr() int64 { return it.addr }

// IsPad reports whether the current row falls in the zero-padding halo.
func (it *ColumnIter) IsPad() bool {
	return it.y < it.padLo || it.y >= it.padHiY || it.x < it.padLo || it.x >= it.padHiX
}

// RunLen returns the number of rows (current row included) until the next
// output-row wrap: within a run, consecutive rows advance the address by a
// fixed Stride elements, so a caller can treat the whole run as one
// arithmetic segment instead of stepping element by element.
func (it *ColumnIter) RunLen() int { return it.wo - it.ox }

// AdvanceRun steps the iterator n rows at once. n must not exceed RunLen():
// the address advances linearly within a run, and the (single possible)
// output-row wrap — plus sample wrap — is applied exactly as n repeated
// Advance calls would.
func (it *ColumnIter) AdvanceRun(n int) {
	it.addr += int64(n) * it.stepX
	it.x += n * it.stride
	it.ox += n
	if it.ox == it.wo {
		it.ox = 0
		it.x = it.s
		it.addr += it.stepRow
		it.y += it.stride
		it.oy++
		if it.oy == it.ho {
			it.oy = 0
			it.y = it.r
			it.addr += it.stepSample
		}
	}
}

// Advance steps the iterator one matrix row down the column.
func (it *ColumnIter) Advance() {
	it.addr += it.stepX
	it.x += it.stride
	it.ox++
	if it.ox == it.wo {
		it.ox = 0
		it.x = it.s
		it.addr += it.stepRow
		it.y += it.stride
		it.oy++
		if it.oy == it.ho {
			it.oy = 0
			it.y = it.r
			it.addr += it.stepSample
		}
	}
}

// FilterMatrix is the K x N weight matrix of the im2col GEMM. Unlike the
// IFmap matrix it is materialized: addresses are contiguous down each column
// (the K direction), and columns are K elements apart (Fig. 5b/5c).
type FilterMatrix struct {
	K, N int
}

// NewFilter builds the filter matrix view for a layer.
func NewFilter(l layers.Conv) FilterMatrix {
	_, n, k := l.GEMM()
	return FilterMatrix{K: k, N: n}
}

// Address returns the element index of filter matrix position (k, n) in the
// weight tensor. Filter addresses live in their own address space, disjoint
// from IFmap addresses; callers offset them when mixing streams.
func (f FilterMatrix) Address(k, n int) int64 {
	return int64(n)*int64(f.K) + int64(k)
}

// Elems returns the number of weight elements.
func (f FilterMatrix) Elems() int64 { return int64(f.K) * int64(f.N) }

// RequestRatio returns the paper's Eq. 2: the ratio of elements spanned to
// elements used when a warp walks one IFmap-matrix column, caused by the
// Wf-1 skipped elements at each output-row boundary and by the stride.
//
//	(Wi + 2*Pad) * Stride / (Wi + 2*Pad - Wf + 1)
//
// For a 1x1 stride-1 layer this is exactly 1 (perfectly dense columns).
func RequestRatio(l layers.Conv) float64 {
	den := float64(l.Wi + 2*l.Pad - l.Wf + 1)
	return float64(l.Wi+2*l.Pad) * float64(l.Stride) / den
}
