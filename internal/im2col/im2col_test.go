package im2col

import (
	"math"
	"testing"
	"testing/quick"

	"delta/internal/layers"
)

// fig5 is the paper's worked example: 4x4 IFmap, pad 1 (6x6 padded), 3x3
// filter, stride 1. Fig. 5a numbers the padded elements 0..35 row-major and
// shows column 0 of the IFmap matrix as 0,1,2,3, 6,7,8,9, 12,13,14,15, 18...
var fig5 = layers.Conv{
	Name: "fig5", B: 1, Ci: 1, Hi: 4, Wi: 4, Co: 1, Hf: 3, Wf: 3, Stride: 1, Pad: 1,
}

func TestFig5ColumnZero(t *testing.T) {
	mt := New(fig5)
	want := []int64{0, 1, 2, 3, 6, 7, 8, 9, 12, 13, 14, 15, 18}
	got := make([]int64, len(want))
	mt.ColumnAddresses(0, 0, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("column 0 addresses = %v, want %v", got, want)
		}
	}
}

func TestFig5AdjacentColumnDistance(t *testing.T) {
	mt := New(fig5)
	// Paper Section IV-B: distance between two adjacent columns in the same
	// Wf range is 1 (they are traversals of adjacent filter taps)...
	if d := mt.Address(0, 1) - mt.Address(0, 0); d != 1 {
		t.Errorf("intra-Wf column distance = %d, want 1", d)
	}
	// ...and the distance between columns in different Wf ranges is
	// Wi + 2*Pad - Wf + 1 = 4.
	if d := mt.Address(0, 3) - mt.Address(0, 2); d != 4 {
		t.Errorf("inter-Wf column distance = %d, want 4", d)
	}
}

func TestFig5RowSkipPattern(t *testing.T) {
	mt := New(fig5)
	// Walking down a column, Wf-1 = 2 elements are skipped every
	// Wi + 2*Pad - Wf + 1 = 4 elements (Fig. 5a).
	for i := 0; i < 3; i++ {
		if d := mt.Address(i+1, 0) - mt.Address(i, 0); d != 1 {
			t.Errorf("row %d step = %d, want 1", i, d)
		}
	}
	if d := mt.Address(4, 0) - mt.Address(3, 0); d != 3 {
		t.Errorf("output-row boundary step = %d, want 3 (skip Wf-1=2)", d)
	}
}

func TestDecodePadDetection(t *testing.T) {
	mt := New(fig5)
	// (row 0, col 0) is the top-left padded corner -> pad element.
	if !mt.IsPad(0, 0) {
		t.Error("(0,0) should be padding")
	}
	// Center tap of the filter at output (1,1) is input (2,2) -> real.
	// row = y*Wo + x = 1*4+1 = 5; col = r*Wf+s = 1*3+1 = 4.
	if mt.IsPad(5, 4) {
		t.Error("(5,4) should be a real element")
	}
}

func TestAddressBounds(t *testing.T) {
	l := layers.Conv{Name: "b", B: 3, Ci: 5, Hi: 9, Wi: 11, Co: 7, Hf: 3, Wf: 3, Stride: 2, Pad: 1}
	mt := New(l)
	m, _, k := mt.Dims()
	max := mt.PaddedElems()
	for row := 0; row < m; row += 7 {
		for col := 0; col < k; col += 3 {
			a := mt.Address(row, col)
			if a < 0 || a >= max {
				t.Fatalf("address %d out of [0,%d) at (%d,%d)", a, max, row, col)
			}
		}
	}
}

func TestStrideTwoSampling(t *testing.T) {
	// 1x1 stride-2 conv: consecutive rows within one output row are 2 apart.
	l := layers.Conv{Name: "s2", B: 1, Ci: 1, Hi: 8, Wi: 8, Co: 1, Hf: 1, Wf: 1, Stride: 2, Pad: 0}
	mt := New(l)
	if d := mt.Address(1, 0) - mt.Address(0, 0); d != 2 {
		t.Errorf("stride-2 step = %d, want 2", d)
	}
	// Crossing an output row jumps a full input row pair: from (0, 6) to (2, 0).
	wo := l.Wo()
	if d := mt.Address(wo, 0) - mt.Address(wo-1, 0); d != 2*8-6 {
		t.Errorf("row-crossing step = %d, want %d", d, 2*8-6)
	}
}

func TestFilterMatrixLayout(t *testing.T) {
	l := layers.Conv{Name: "f", B: 1, Ci: 4, Hi: 8, Wi: 8, Co: 16, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	f := NewFilter(l)
	if f.K != 36 || f.N != 16 {
		t.Fatalf("filter dims = (%d,%d), want (36,16)", f.K, f.N)
	}
	// Contiguous down a column...
	if d := f.Address(1, 0) - f.Address(0, 0); d != 1 {
		t.Errorf("K-direction step = %d, want 1", d)
	}
	// ...columns K elements apart.
	if d := f.Address(0, 1) - f.Address(0, 0); d != 36 {
		t.Errorf("N-direction step = %d, want 36", d)
	}
	if f.Elems() != 36*16 {
		t.Errorf("Elems = %d", f.Elems())
	}
}

func TestRequestRatio(t *testing.T) {
	cases := []struct {
		l    layers.Conv
		want float64
	}{
		{fig5, 6.0 / 4.0},
		// 1x1 stride 1: perfectly coalesced.
		{layers.Conv{B: 1, Ci: 1, Hi: 14, Wi: 14, Co: 1, Hf: 1, Wf: 1, Stride: 1}, 1},
		// 1x1 stride 2: half the elements skipped.
		{layers.Conv{B: 1, Ci: 1, Hi: 14, Wi: 14, Co: 1, Hf: 1, Wf: 1, Stride: 2}, 2},
		// Large feature, 3x3 pad 1: ratio just over 1.
		{layers.Conv{B: 1, Ci: 1, Hi: 224, Wi: 224, Co: 1, Hf: 3, Wf: 3, Stride: 1, Pad: 1}, 226.0 / 224.0},
	}
	for _, tc := range cases {
		if got := RequestRatio(tc.l); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("RequestRatio(%v) = %v, want %v", tc.l, got, tc.want)
		}
	}
}

func randLayer(b, ci, hw, co, fs, s, p uint8) layers.Conv {
	l := layers.Conv{
		Name: "q", B: 1 + int(b)%4, Ci: 1 + int(ci)%8,
		Hi: 3 + int(hw)%30, Wi: 3 + int(hw)%30,
		Co: 1 + int(co)%8, Hf: 1 + int(fs)%3, Wf: 1 + int(fs)%3,
		Stride: 1 + int(s)%2, Pad: int(p) % 2,
	}
	return l
}

// TestQuickAddressMatchesNaive cross-checks the closed-form Address against
// a from-scratch recomputation through Decode.
func TestQuickAddressMatchesNaive(t *testing.T) {
	f := func(b, ci, hw, co, fs, s, p uint8, rowSeed, colSeed uint16) bool {
		l := randLayer(b, ci, hw, co, fs, s, p)
		if l.Validate() != nil {
			return true
		}
		mt := New(l)
		m, _, k := mt.Dims()
		row := int(rowSeed) % m
		col := int(colSeed) % k
		c := mt.Decode(row, col)
		naive := ((int64(c.B)*int64(l.Ci)+int64(c.C))*int64(l.HiPad())+int64(c.Y))*int64(l.WiPad()) + int64(c.X)
		return mt.Address(row, col) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickColumnMonotone: addresses strictly increase down any column
// (the property DIST_V estimation relies on).
func TestQuickColumnMonotone(t *testing.T) {
	f := func(b, ci, hw, co, fs, s, p uint8, colSeed uint16) bool {
		l := randLayer(b, ci, hw, co, fs, s, p)
		if l.Validate() != nil {
			return true
		}
		mt := New(l)
		m, _, k := mt.Dims()
		col := int(colSeed) % k
		prev := mt.Address(0, col)
		for row := 1; row < m; row++ {
			a := mt.Address(row, col)
			if a <= prev {
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickPadFraction: every pad coordinate decoded as pad lies outside the
// real image, and a stride-1 layer with no padding never reports pad.
func TestQuickNoPadWithoutPadding(t *testing.T) {
	f := func(b, ci, hw, co, fs uint8, rowSeed, colSeed uint16) bool {
		l := randLayer(b, ci, hw, co, fs, 0, 0)
		l.Pad = 0
		if l.Validate() != nil {
			return true
		}
		mt := New(l)
		m, _, k := mt.Dims()
		return !mt.IsPad(int(rowSeed)%m, int(colSeed)%k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickColumnIterMatchesAddress: the incremental iterator reproduces the
// closed-form Address and IsPad at every row of any column, from any start.
func TestQuickColumnIterMatchesAddress(t *testing.T) {
	f := func(b, ci, hw, co, fs, s, p uint8, rowSeed, colSeed uint16) bool {
		l := randLayer(b, ci, hw, co, fs, s, p)
		if l.Validate() != nil {
			return true
		}
		mt := New(l)
		m, _, k := mt.Dims()
		col := int(colSeed) % k
		row0 := int(rowSeed) % m
		it := mt.ColumnIter(col, row0)
		for row := row0; row < m; row++ {
			if it.Addr() != mt.Address(row, col) {
				t.Logf("%s: addr(%d,%d) = %d, want %d", l.Name, row, col, it.Addr(), mt.Address(row, col))
				return false
			}
			if it.IsPad() != mt.IsPad(row, col) {
				t.Logf("%s: pad(%d,%d) = %v, want %v", l.Name, row, col, it.IsPad(), mt.IsPad(row, col))
				return false
			}
			it.Advance()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestColumnIterStrideTwoWithPad(t *testing.T) {
	// Deterministic spot check on a geometry that exercises every wrap: 3x3
	// stride-2 filter with padding over a batch of 2.
	l := layers.Conv{Name: "s2p", B: 2, Ci: 3, Hi: 9, Wi: 7, Co: 4, Hf: 3, Wf: 3, Stride: 2, Pad: 1}
	mt := New(l)
	m, _, k := mt.Dims()
	for col := 0; col < k; col++ {
		it := mt.ColumnIter(col, 0)
		for row := 0; row < m; row++ {
			if it.Addr() != mt.Address(row, col) || it.IsPad() != mt.IsPad(row, col) {
				t.Fatalf("iter diverged at (%d,%d): addr %d/%d pad %v/%v",
					row, col, it.Addr(), mt.Address(row, col), it.IsPad(), mt.IsPad(row, col))
			}
			it.Advance()
		}
	}
}

func BenchmarkAddress(b *testing.B) {
	mt := New(layers.Conv{Name: "bench", B: 256, Ci: 256, Hi: 13, Wi: 13, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1})
	m, _, k := mt.Dims()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += mt.Address(i%m, i%k)
	}
	_ = sink
}

func BenchmarkColumnAddresses(b *testing.B) {
	mt := New(layers.Conv{Name: "bench", B: 256, Ci: 256, Hi: 13, Wi: 13, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1})
	m, _, _ := mt.Dims()
	dst := make([]int64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.ColumnAddresses(0, (i*32)%(m-32), dst)
	}
}

// TestAdvanceRunMatchesAdvance: stepping a column run by run (the fused
// trace-generation path) must visit exactly the states that element-wise
// Advance does at the same rows — address and padding test alike.
func TestAdvanceRunMatchesAdvance(t *testing.T) {
	cases := []layers.Conv{
		{Name: "s1", B: 2, Ci: 4, Hi: 12, Wi: 12, Co: 48, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
		{Name: "s2", B: 2, Ci: 3, Hi: 27, Wi: 27, Co: 32, Hf: 5, Wf: 5, Stride: 2, Pad: 2},
		{Name: "nopad", B: 1, Ci: 2, Hi: 9, Wi: 9, Co: 8, Hf: 3, Wf: 3, Stride: 1},
		{Name: "pw", B: 3, Ci: 6, Hi: 7, Wi: 7, Co: 16, Hf: 1, Wf: 1, Stride: 1},
	}
	for _, l := range cases {
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
		mt := New(l)
		m, _, k := mt.Dims()
		for _, col := range []int{0, k / 2, k - 1} {
			ref := mt.ColumnIter(col, 0)
			fast := mt.ColumnIter(col, 0)
			row := 0
			for row < m {
				run := fast.RunLen()
				if run < 1 {
					t.Fatalf("%s col %d row %d: RunLen %d", l.Name, col, row, run)
				}
				if row+run > m {
					run = m - row
				}
				// Check every element of the run against the reference,
				// then jump the fast iterator over it in one step.
				probe := fast
				for j := 0; j < run; j++ {
					if probe.Addr() != ref.Addr() || probe.IsPad() != ref.IsPad() {
						t.Fatalf("%s col %d row %d+%d: fast (%d,%v) vs ref (%d,%v)",
							l.Name, col, row, j, probe.Addr(), probe.IsPad(), ref.Addr(), ref.IsPad())
					}
					probe.Advance()
					ref.Advance()
				}
				fast.AdvanceRun(run)
				if fast.Addr() != ref.Addr() || fast.IsPad() != ref.IsPad() {
					t.Fatalf("%s col %d after run at row %d: fast (%d,%v) vs ref (%d,%v)",
						l.Name, col, row, fast.Addr(), fast.IsPad(), ref.Addr(), ref.IsPad())
				}
				row += run
			}
		}
	}
}
