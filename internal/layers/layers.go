// Package layers defines convolution-layer geometry: tensor dimensions,
// output feature-map sizes, the im2col GEMM dimensions, and the derived
// arithmetic and footprint quantities the DeLTA model consumes.
//
// All tensors use the BCHW ordering with 32-bit floating point elements,
// matching the paper's baseline (Section IV).
package layers

import (
	"errors"
	"fmt"
)

// ElemBytes is the size of one tensor element. The paper models FP32
// training, so every feature and weight element is four bytes.
const ElemBytes = 4

// Conv describes one convolution (or fully-connected) layer instance.
//
// A fully-connected layer is expressed as a 1x1 convolution over a 1x1
// feature map with Ci equal to the input neuron count and Co the output
// neuron count.
type Conv struct {
	Name string // label used in figures, e.g. "3a_5x5red"

	B  int // mini-batch size
	Ci int // input channels
	Hi int // input feature-map height (without padding)
	Wi int // input feature-map width (without padding)
	Co int // output channels
	Hf int // filter height
	Wf int // filter width

	Stride int // convolution stride (same in both dimensions)
	Pad    int // zero padding added on every border
}

// Validate reports whether the configuration is internally consistent and
// produces a non-empty output feature map.
func (c Conv) Validate() error {
	switch {
	case c.B <= 0:
		return fmt.Errorf("layers: %s: mini-batch %d must be positive", c.Name, c.B)
	case c.Ci <= 0 || c.Co <= 0:
		return fmt.Errorf("layers: %s: channel counts (%d,%d) must be positive", c.Name, c.Ci, c.Co)
	case c.Hi <= 0 || c.Wi <= 0:
		return fmt.Errorf("layers: %s: input dims %dx%d must be positive", c.Name, c.Hi, c.Wi)
	case c.Hf <= 0 || c.Wf <= 0:
		return fmt.Errorf("layers: %s: filter dims %dx%d must be positive", c.Name, c.Hf, c.Wf)
	case c.Stride <= 0:
		return fmt.Errorf("layers: %s: stride %d must be positive", c.Name, c.Stride)
	case c.Pad < 0:
		return fmt.Errorf("layers: %s: pad %d must be non-negative", c.Name, c.Pad)
	case c.Hf > c.Hi+2*c.Pad || c.Wf > c.Wi+2*c.Pad:
		return fmt.Errorf("layers: %s: filter %dx%d larger than padded input %dx%d",
			c.Name, c.Hf, c.Wf, c.Hi+2*c.Pad, c.Wi+2*c.Pad)
	}
	if c.Ho() <= 0 || c.Wo() <= 0 {
		return errors.New("layers: " + c.Name + ": empty output feature map")
	}
	return nil
}

// Ho returns the output feature-map height.
func (c Conv) Ho() int { return (c.Hi+2*c.Pad-c.Hf)/c.Stride + 1 }

// Wo returns the output feature-map width.
func (c Conv) Wo() int { return (c.Wi+2*c.Pad-c.Wf)/c.Stride + 1 }

// HiPad returns the padded input height.
func (c Conv) HiPad() int { return c.Hi + 2*c.Pad }

// WiPad returns the padded input width.
func (c Conv) WiPad() int { return c.Wi + 2*c.Pad }

// IsPointwise reports whether the layer is a 1x1 convolution (which includes
// fully-connected layers). Pointwise layers have no intra-tile data reuse in
// the im2col IFmap matrix (paper Section IV-B).
func (c Conv) IsPointwise() bool { return c.Hf == 1 && c.Wf == 1 }

// GEMM returns the im2col GEMM dimensions (M, N, K):
//
//	M = B * Ho * Wo   (OFmap matrix height)
//	N = Co            (OFmap matrix width)
//	K = Ci * Hf * Wf  (accumulation depth)
func (c Conv) GEMM() (m, n, k int) {
	return c.B * c.Ho() * c.Wo(), c.Co, c.Ci * c.Hf * c.Wf
}

// MACs returns the multiply-accumulate count for the layer: M*N*K.
func (c Conv) MACs() float64 {
	m, n, k := c.GEMM()
	return float64(m) * float64(n) * float64(k)
}

// FLOPs returns 2*MACs, the conventional floating-point operation count.
func (c Conv) FLOPs() float64 { return 2 * c.MACs() }

// IFmapBytes returns the un-padded input feature-map footprint in bytes.
func (c Conv) IFmapBytes() float64 {
	return float64(c.B) * float64(c.Ci) * float64(c.Hi) * float64(c.Wi) * ElemBytes
}

// IFmapPaddedBytes returns the zero-padded input footprint in bytes. The
// paper's DRAM model (Eq. 10) accounts for the padded extent because the
// im2col access stream walks padded coordinates.
func (c Conv) IFmapPaddedBytes() float64 {
	return float64(c.B) * float64(c.Ci) * float64(c.HiPad()) * float64(c.WiPad()) * ElemBytes
}

// FilterBytes returns the weight footprint in bytes: Ci*Hf*Wf*Co elements.
func (c Conv) FilterBytes() float64 {
	return float64(c.Ci) * float64(c.Hf) * float64(c.Wf) * float64(c.Co) * ElemBytes
}

// OFmapBytes returns the output feature-map footprint in bytes: M*N elements.
func (c Conv) OFmapBytes() float64 {
	m, n, _ := c.GEMM()
	return float64(m) * float64(n) * ElemBytes
}

// FootprintBytes returns the total working set (inputs + weights + outputs).
func (c Conv) FootprintBytes() float64 {
	return c.IFmapPaddedBytes() + c.FilterBytes() + c.OFmapBytes()
}

// ArithmeticIntensity returns FLOPs per byte of compulsory traffic
// (inputs + weights read once, outputs written once). It is a coarse
// roofline-style indicator, not part of the DeLTA equations.
func (c Conv) ArithmeticIntensity() float64 {
	return c.FLOPs() / (c.IFmapBytes() + c.FilterBytes() + c.OFmapBytes())
}

// WithBatch returns a copy of the layer with the mini-batch replaced.
func (c Conv) WithBatch(b int) Conv {
	c.B = b
	return c
}

// String returns a compact human-readable description.
func (c Conv) String() string {
	return fmt.Sprintf("%s[B=%d %dx%dx%d -> %d, %dx%d s%d p%d]",
		c.Name, c.B, c.Ci, c.Hi, c.Wi, c.Co, c.Hf, c.Wf, c.Stride, c.Pad)
}

// FC constructs a fully-connected layer expressed as a 1x1 convolution.
func FC(name string, batch, in, out int) Conv {
	return Conv{Name: name, B: batch, Ci: in, Hi: 1, Wi: 1, Co: out,
		Hf: 1, Wf: 1, Stride: 1, Pad: 0}
}
