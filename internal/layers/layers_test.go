package layers

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// paperExample is the worked example of Fig. 5/7: a 4x4 IFmap with pad 1 and
// a 3x3 filter, stride 1.
var paperExample = Conv{
	Name: "fig5", B: 1, Ci: 1, Hi: 4, Wi: 4, Co: 1, Hf: 3, Wf: 3, Stride: 1, Pad: 1,
}

func TestOutputDimsPaperExample(t *testing.T) {
	if got := paperExample.Ho(); got != 4 {
		t.Errorf("Ho = %d, want 4", got)
	}
	if got := paperExample.Wo(); got != 4 {
		t.Errorf("Wo = %d, want 4", got)
	}
	if got := paperExample.HiPad(); got != 6 {
		t.Errorf("HiPad = %d, want 6", got)
	}
}

func TestGEMMDims(t *testing.T) {
	cases := []struct {
		c       Conv
		m, n, k int
	}{
		{paperExample, 16, 1, 9},
		{Conv{Name: "vgg-conv1", B: 256, Ci: 3, Hi: 224, Wi: 224, Co: 64, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
			256 * 224 * 224, 64, 27},
		{Conv{Name: "resnet-5_1_a", B: 256, Ci: 1024, Hi: 14, Wi: 14, Co: 512, Hf: 1, Wf: 1, Stride: 2, Pad: 0},
			256 * 7 * 7, 512, 1024},
		{FC("fc6", 256, 4096, 1000), 256, 1000, 4096},
	}
	for _, tc := range cases {
		m, n, k := tc.c.GEMM()
		if m != tc.m || n != tc.n || k != tc.k {
			t.Errorf("%s: GEMM = (%d,%d,%d), want (%d,%d,%d)", tc.c.Name, m, n, k, tc.m, tc.n, tc.k)
		}
	}
}

func TestValidate(t *testing.T) {
	good := paperExample
	if err := good.Validate(); err != nil {
		t.Fatalf("valid layer rejected: %v", err)
	}
	bad := []Conv{
		{Name: "b0", B: 0, Ci: 1, Hi: 4, Wi: 4, Co: 1, Hf: 1, Wf: 1, Stride: 1},
		{Name: "b1", B: 1, Ci: 0, Hi: 4, Wi: 4, Co: 1, Hf: 1, Wf: 1, Stride: 1},
		{Name: "b2", B: 1, Ci: 1, Hi: 0, Wi: 4, Co: 1, Hf: 1, Wf: 1, Stride: 1},
		{Name: "b3", B: 1, Ci: 1, Hi: 4, Wi: 4, Co: 1, Hf: 0, Wf: 1, Stride: 1},
		{Name: "b4", B: 1, Ci: 1, Hi: 4, Wi: 4, Co: 1, Hf: 1, Wf: 1, Stride: 0},
		{Name: "b5", B: 1, Ci: 1, Hi: 4, Wi: 4, Co: 1, Hf: 1, Wf: 1, Stride: 1, Pad: -1},
		{Name: "b6", B: 1, Ci: 1, Hi: 2, Wi: 2, Co: 1, Hf: 5, Wf: 5, Stride: 1, Pad: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid layer accepted", c.Name)
		}
	}
}

func TestFootprints(t *testing.T) {
	c := Conv{Name: "t", B: 2, Ci: 3, Hi: 5, Wi: 5, Co: 4, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	if got, want := c.IFmapBytes(), float64(2*3*5*5*4); got != want {
		t.Errorf("IFmapBytes = %v, want %v", got, want)
	}
	if got, want := c.IFmapPaddedBytes(), float64(2*3*7*7*4); got != want {
		t.Errorf("IFmapPaddedBytes = %v, want %v", got, want)
	}
	if got, want := c.FilterBytes(), float64(3*3*3*4*4); got != want {
		t.Errorf("FilterBytes = %v, want %v", got, want)
	}
	if got, want := c.OFmapBytes(), float64(2*5*5*4*4); got != want {
		t.Errorf("OFmapBytes = %v, want %v", got, want)
	}
	sum := c.IFmapPaddedBytes() + c.FilterBytes() + c.OFmapBytes()
	if got := c.FootprintBytes(); got != sum {
		t.Errorf("FootprintBytes = %v, want %v", got, sum)
	}
}

func TestMACsAndFLOPs(t *testing.T) {
	m, n, k := paperExample.GEMM()
	want := float64(m) * float64(n) * float64(k)
	if got := paperExample.MACs(); got != want {
		t.Errorf("MACs = %v, want %v", got, want)
	}
	if got := paperExample.FLOPs(); got != 2*want {
		t.Errorf("FLOPs = %v, want %v", got, 2*want)
	}
}

func TestIsPointwise(t *testing.T) {
	if paperExample.IsPointwise() {
		t.Error("3x3 layer reported pointwise")
	}
	if !FC("fc", 1, 8, 8).IsPointwise() {
		t.Error("FC layer not reported pointwise")
	}
}

func TestWithBatch(t *testing.T) {
	c := paperExample.WithBatch(64)
	if c.B != 64 {
		t.Errorf("B = %d, want 64", c.B)
	}
	if paperExample.B != 1 {
		t.Error("WithBatch mutated the receiver")
	}
}

func TestStringContainsName(t *testing.T) {
	if s := paperExample.String(); !strings.Contains(s, "fig5") {
		t.Errorf("String() = %q lacks layer name", s)
	}
}

// clampConv builds an always-valid Conv from arbitrary fuzz inputs.
func clampConv(b, ci, hw, co, f, s, p uint8) Conv {
	c := Conv{
		Name:   "fuzz",
		B:      1 + int(b)%64,
		Ci:     1 + int(ci)%512,
		Hi:     1 + int(hw)%224,
		Wi:     1 + int(hw)%224,
		Co:     1 + int(co)%512,
		Hf:     1 + int(f)%7,
		Wf:     1 + int(f)%7,
		Stride: 1 + int(s)%4,
		Pad:    int(p) % 4,
	}
	if c.Hf > c.Hi+2*c.Pad {
		c.Hf = c.Hi
		c.Wf = c.Wi
	}
	return c
}

func TestQuickGEMMConsistency(t *testing.T) {
	f := func(b, ci, hw, co, fs, s, p uint8) bool {
		c := clampConv(b, ci, hw, co, fs, s, p)
		if c.Validate() != nil {
			return true // skip rare degenerate configs
		}
		m, n, k := c.GEMM()
		if m <= 0 || n <= 0 || k <= 0 {
			return false
		}
		// Output dims reconstructed from M must match Ho*Wo.
		if m != c.B*c.Ho()*c.Wo() {
			return false
		}
		// MACs must equal the triple product and be finite.
		macs := c.MACs()
		return macs == float64(m)*float64(n)*float64(k) && !math.IsInf(macs, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFootprintPositive(t *testing.T) {
	f := func(b, ci, hw, co, fs, s, p uint8) bool {
		c := clampConv(b, ci, hw, co, fs, s, p)
		if c.Validate() != nil {
			return true
		}
		return c.IFmapBytes() > 0 &&
			c.IFmapPaddedBytes() >= c.IFmapBytes() &&
			c.FilterBytes() > 0 &&
			c.OFmapBytes() > 0 &&
			c.ArithmeticIntensity() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBatchLinearity(t *testing.T) {
	f := func(b, ci, hw, co, fs, s, p uint8) bool {
		c := clampConv(b, ci, hw, co, fs, s, p)
		if c.Validate() != nil {
			return true
		}
		d := c.WithBatch(c.B * 2)
		// Doubling the batch doubles M, IFmap bytes, OFmap bytes and MACs,
		// and leaves the filter footprint unchanged.
		m1, _, _ := c.GEMM()
		m2, _, _ := d.GEMM()
		return m2 == 2*m1 &&
			d.IFmapBytes() == 2*c.IFmapBytes() &&
			d.OFmapBytes() == 2*c.OFmapBytes() &&
			d.MACs() == 2*c.MACs() &&
			d.FilterBytes() == c.FilterBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
