package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context threading: everything that can block — network
// I/O, goroutine fan-out, scenario streaming — must be cancelable from the
// caller, and nobody below main gets to mint a fresh root context (that
// silently detaches the work from the request that asked for it, the exact
// bug class behind the cancel-vs-done races PR 5 fixed).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "exported internal/ functions that spawn goroutines, do network " +
		"I/O, or call context-taking APIs must accept a context.Context; " +
		"context.Background()/TODO() are reserved for package main",
	Run: runCtxFlow,
}

func runCtxFlow(p *Package) []Diagnostic {
	var diags []Diagnostic

	// Rule 1: no fresh root contexts outside package main. A library
	// function calling context.Background() severs the cancellation chain
	// its caller thought it had.
	if p.Name != "main" {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := p.callee(call)
				if isPkgObj(obj, "context", "Background", "TODO") {
					diags = append(diags, p.diag("ctxflow", call,
						"context.%s() outside package main: this detaches the call tree from its caller's cancellation; accept and thread a ctx", obj.Name()))
				}
				return true
			})
		}
	}

	// Rule 2: exported functions under internal/ with blocking bodies
	// must take a context. Handlers (receive *http.Request) and test/bench
	// harness entry points (receive *testing.T/*testing.B) already carry a
	// lifecycle and are exempt.
	if !underPrefixes(p.Path, "delta/internal") {
		return diags
	}
	p.eachFunc(func(fd *ast.FuncDecl) {
		if !fd.Name.IsExported() {
			return
		}
		obj := p.Info.ObjectOf(fd.Name)
		fn, ok := obj.(*types.Func)
		if !ok {
			return
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || hasParamType(sig, isContextType) {
			return
		}
		if hasParamType(sig, func(t types.Type) bool {
			return isNamedType(t, "net/http", "Request") ||
				isNamedType(t, "testing", "T") || isNamedType(t, "testing", "B")
		}) {
			return
		}
		if why := p.blockingReason(fd.Body); why != "" {
			diags = append(diags, p.diag("ctxflow", fd.Name,
				"exported %s %s but takes no context.Context; accept one and thread it so callers can cancel", fd.Name.Name, why))
		}
	})
	return diags
}

// blockingReason returns a prose description of the first body construct
// that demands cancelability, or "" when the function never blocks.
func (p *Package) blockingReason(body *ast.BlockStmt) string {
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			why = "spawns a goroutine"
		case *ast.CallExpr:
			fn, ok := p.callee(n).(*types.Func)
			if !ok {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil {
				return true
			}
			// Only package-level functions count as "initiates network
			// I/O": methods on an existing conn/listener are interface
			// implementations that cannot grow a ctx parameter.
			if sig.Recv() == nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "net/http", "net":
					why = "performs network I/O (" + fn.Pkg().Name() + "." + fn.Name() + ")"
					return false
				}
			}
			if firstParamIsContext(sig) {
				why = "calls context-taking " + fn.Name()
				return false
			}
		}
		return true
	})
	return why
}
