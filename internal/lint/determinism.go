package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// determinismScope names the subtrees whose results must be bit-identical
// at any worker/partition/fleet configuration: the simulator, the scenario
// expansion, the pipeline, and the cluster merge paths.
var determinismScope = []string{
	"delta/internal/sim",
	"delta/internal/scenario",
	"delta/internal/pipeline",
	"delta/internal/cluster",
}

// Determinism enforces the repo's headline contract: simulation results
// are a pure function of the scenario, so nothing on an evaluation or
// merge path may read the wall clock, draw randomness, or let Go's
// randomized map iteration order leak into an output sequence.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/time.Since/math/rand and order-sensitive map " +
		"ranges in the deterministic-replay packages " +
		"(internal/{sim,scenario,pipeline,cluster})",
	Run: runDeterminism,
}

func runDeterminism(p *Package) []Diagnostic {
	if !underPrefixes(p.Path, determinismScope...) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				diags = append(diags, p.diag("determinism", imp,
					"import of %s: randomness in a replay package breaks bit-identical results; inject a seeded source through config instead", path))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				obj := p.Info.ObjectOf(sel.Sel)
				if isPkgObj(obj, "time", "Now", "Since") {
					diags = append(diags, p.diag("determinism", sel,
						"time.%s in a replay package: wall-clock reads make reruns diverge; take timestamps at the serving edge or inject a clock", obj.Name()))
				}
			}
			return true
		})
	}
	diags = append(diags, p.mapRangeDiags()...)
	return diags
}

// mapRangeDiags walks every statement list looking for `range` over a map
// whose body performs an order-sensitive write: appending to a slice,
// accumulating into a variable declared outside the loop, or writing
// output. The one blessed shape is the sorted-keys idiom — append exactly
// the key variable, then sort the slice in a following statement.
func (p *Package) mapRangeDiags() []Diagnostic {
	var diags []Diagnostic
	p.eachFunc(func(fd *ast.FuncDecl) {
		p.walkStmtLists(fd.Body.List, func(list []ast.Stmt, i int) {
			rs, ok := list[i].(*ast.RangeStmt)
			if !ok || !p.isMapType(rs.X) {
				return
			}
			if d, flagged := p.checkMapRange(rs, list[i+1:]); flagged {
				diags = append(diags, d)
			}
		})
	})
	return diags
}

// walkStmtLists visits every statement list in the tree (function bodies,
// blocks, if/else arms, loop bodies, case clauses), calling visit for each
// (list, index) pair before recursing.
func (p *Package) walkStmtLists(list []ast.Stmt, visit func(list []ast.Stmt, i int)) {
	for i, s := range list {
		visit(list, i)
		switch s := s.(type) {
		case *ast.BlockStmt:
			p.walkStmtLists(s.List, visit)
		case *ast.IfStmt:
			p.walkStmtLists(s.Body.List, visit)
			switch el := s.Else.(type) {
			case *ast.BlockStmt:
				p.walkStmtLists(el.List, visit)
			case *ast.IfStmt:
				p.walkStmtLists([]ast.Stmt{el}, visit)
			}
		case *ast.ForStmt:
			p.walkStmtLists(s.Body.List, visit)
		case *ast.RangeStmt:
			p.walkStmtLists(s.Body.List, visit)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					p.walkStmtLists(cc.Body, visit)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					p.walkStmtLists(cc.Body, visit)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					p.walkStmtLists(cc.Body, visit)
				}
			}
		case *ast.LabeledStmt:
			p.walkStmtLists([]ast.Stmt{s.Stmt}, visit)
		}
	}
}

// checkMapRange classifies one map-range statement. tail is the statement
// list following the range in its enclosing block (where the sorting half
// of the sorted-keys idiom must live).
func (p *Package) checkMapRange(rs *ast.RangeStmt, tail []ast.Stmt) (Diagnostic, bool) {
	keyObj := types.Object(nil)
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyObj = p.Info.ObjectOf(id)
	}

	var offense string // first order-sensitive write found, as prose
	var offenseAt ast.Node
	keyOnlyAppends := true           // every write is `append(s, key)`
	var appendTargets []types.Object // slices appended to

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // deferred/spawned bodies run outside the loop
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(p, n) {
				if offense == "" {
					offense, offenseAt = "an append", n
				}
				if len(n.Args) == 2 && keyObj != nil {
					if arg, ok := ast.Unparen(n.Args[1]).(*ast.Ident); ok && p.Info.ObjectOf(arg) == keyObj {
						if t := appendTarget(p, n); t != nil {
							appendTargets = append(appendTargets, t)
							return true
						}
					}
				}
				keyOnlyAppends = false
				return true
			}
			if p.isOutputCall(n) {
				if offense == "" {
					offense, offenseAt = "an output write", n
				}
				keyOnlyAppends = false
			}
		case *ast.AssignStmt:
			if n.Tok.IsOperator() && n.Tok.String() != "=" && n.Tok.String() != ":=" {
				if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok && !p.declaredWithin(id, rs, rs) {
					if offense == "" {
						offense, offenseAt = "accumulation into "+id.Name, n
					}
					keyOnlyAppends = false
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && !p.declaredWithin(id, rs, rs) {
				if offense == "" {
					offense, offenseAt = "accumulation into "+id.Name, n
				}
				keyOnlyAppends = false
			}
		}
		return true
	})

	if offense == "" {
		return Diagnostic{}, false
	}
	if keyOnlyAppends && len(appendTargets) > 0 && p.tailSorts(tail, appendTargets) {
		return Diagnostic{}, false // the sorted-keys idiom: collect, then sort
	}
	return p.diag("determinism", offenseAt,
		"map iteration order feeds %s: map ranges are randomized per run; collect the keys, sort them, then index (sorted-keys idiom)", offense), true
}

// isBuiltinAppend resolves whether a call is the append builtin (the
// identifier resolves to the universe-scope builtin, or — with partial
// type info — is literally named append with no local shadow).
func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := p.Info.ObjectOf(id)
	_, isBuiltin := obj.(*types.Builtin)
	return obj == nil || isBuiltin
}

// appendTarget returns the object the append result is assigned to when
// the call is the canonical `s = append(s, ...)` shape.
func appendTarget(p *Package, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		return p.Info.ObjectOf(id)
	}
	return nil
}

// isOutputCall matches writes whose order is the output order: fmt
// printing to a writer, io.WriteString, and writer-shaped methods.
func (p *Package) isOutputCall(call *ast.CallExpr) bool {
	obj := p.callee(call)
	if isPkgObj(obj, "fmt", "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println") {
		return true
	}
	if isPkgObj(obj, "io", "WriteString", "Copy") {
		return true
	}
	switch selectionMethodName(call) {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		// Only writer methods, not e.g. a map write helper: require the
		// receiver to be a named type with a Write-family method from a
		// real package (best-effort; partial type info stays quiet).
		sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if sel != nil {
			if s, ok := p.Info.Selections[sel]; ok && s.Obj() != nil {
				return true
			}
		}
	}
	return false
}

// tailSorts reports whether a statement in tail sorts one of the given
// slices (sort.* or slices.Sort* mentioning the object).
func (p *Package) tailSorts(tail []ast.Stmt, targets []types.Object) bool {
	for _, s := range tail {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return true
			}
			obj := p.callee(call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if pkg := obj.Pkg().Path(); pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok {
						for _, t := range targets {
							if p.Info.ObjectOf(id) == t {
								found = true
							}
						}
					}
					return true
				})
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
