// Package lint is delta's repo-specific static-analysis suite: a set of
// analyzers that machine-check the house contracts the test suite can only
// spot-check — bit-identical simulation results at any worker/partition/
// fleet configuration, context threading through everything that blocks,
// lock discipline on the SSE-broadcast paths, bounded metric cardinality,
// and the SSE resume contract.
//
// The suite is built on the stdlib toolchain only (go/parser, go/types,
// go/ast via the loader in load.go) so it inherits the module's
// zero-dependency stance. cmd/delta-vet runs every analyzer over ./... and
// exits non-zero on findings; CI runs it as a blocking job.
//
// Findings render as `file:line: [rule] message`. A finding can be
// suppressed — when the code is right and the rule's approximation is
// wrong — with a comment on the flagged line or the line directly above:
//
//	//lint:ignore rule reason
//
// where rule is one analyzer name (or a comma-separated list) and reason
// is mandatory prose explaining why the contract holds anyway. An ignore
// without a reason is itself reported and suppresses nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// message phrased as "what breaks and how to fix it".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical text form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one named check run over a loaded, type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// All is the full suite in stable order.
var All = []*Analyzer{
	Determinism,
	CtxFlow,
	LockDiscipline,
	MetricHygiene,
	SSEContract,
}

// ByName resolves a comma-separated rule selection ("determinism,ctxflow")
// against the suite; unknown names error so CI typos fail loudly.
func ByName(selection string) ([]*Analyzer, error) {
	if strings.TrimSpace(selection) == "" {
		return All, nil
	}
	byName := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(selection, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have: %s)", name, RuleNames())
		}
		out = append(out, a)
	}
	return out, nil
}

// RuleNames lists the suite's rule names, comma-separated.
func RuleNames() string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return strings.Join(names, ",")
}

// Run executes the given analyzers over one package, applies //lint:ignore
// suppressions, and returns the surviving findings sorted by position.
func Run(p *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		diags = append(diags, a.Run(p)...)
	}
	diags = append(diags, filterIgnored(p, &diags)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return diags
}

// ignoreRe matches `//lint:ignore rule[,rule...] reason`; the reason group
// is optional so malformed ignores can be reported rather than silently
// doing nothing.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+([\w,-]+)(?:\s+(.*))?$`)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int
	rules  map[string]bool
	reason string
	pos    token.Position
}

// filterIgnored drops diagnostics covered by a well-formed ignore on the
// same line or the line directly above, rewriting *diags in place. It
// returns extra diagnostics for malformed ignores (missing reason).
func filterIgnored(p *Package, diags *[]Diagnostic) []Diagnostic {
	var directives []ignoreDirective
	var malformed []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.End())
				if strings.TrimSpace(m[2]) == "" {
					malformed = append(malformed, Diagnostic{
						Pos:  pos,
						Rule: "suppress",
						Message: "lint:ignore needs a reason: " +
							"//lint:ignore <rule> <why the contract holds anyway>",
					})
					continue
				}
				rules := make(map[string]bool)
				for _, r := range strings.Split(m[1], ",") {
					rules[strings.TrimSpace(r)] = true
				}
				directives = append(directives, ignoreDirective{
					file: pos.Filename, line: pos.Line, rules: rules,
					reason: strings.TrimSpace(m[2]), pos: pos,
				})
			}
		}
	}
	kept := (*diags)[:0]
	for _, d := range *diags {
		suppressed := false
		for _, dir := range directives {
			if dir.file != d.Pos.Filename || !dir.rules[d.Rule] {
				continue
			}
			if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	*diags = kept
	return malformed
}

// diag builds a Diagnostic at an AST node's position.
func (p *Package) diag(rule string, at ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(at.Pos()),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}
