package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
)

// goldenCases is the analyzer corpus: each testdata/src/<dir> package is
// mounted at a synthetic import path — scoped analyzers key on the path
// prefix, so e.g. the determinism corpus lives under delta/internal/sim —
// and run through exactly one rule selection. Expected findings are stated
// in the sources as `// want `regex“ comments (several backquoted
// patterns per comment for multiple findings on one line; `want(-1)`
// shifts the expectation to a neighboring line, for diagnostics anchored
// on comments).
var goldenCases = []struct {
	dir   string // under testdata/src
	rules string // ByName selection to run
	path  string // synthetic import path the corpus is mounted at
}{
	{"determinism", "determinism", "delta/internal/sim/goldendet"},
	{"ctxflow", "ctxflow", "delta/internal/goldenctx"},
	{"lockdiscipline", "lockdiscipline", "delta/internal/goldenlock"},
	{"metrichygiene", "metrichygiene", "delta/internal/goldenmetric"},
	{"ssecontract", "ssecontract", "delta/internal/goldensse"},
	{"suppress", "determinism", "delta/internal/sim/goldensup"},
}

// One loader for the whole test binary: the source importer type-checks
// stdlib dependencies (net/http and friends) once, not per subtest.
var (
	loaderOnce   sync.Once
	sharedLoader *Loader
	loaderErr    error
)

func goldenLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedLoader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedLoader
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.dir, func(t *testing.T) {
			l := goldenLoader(t)
			p, err := l.LoadDir(filepath.Join("testdata", "src", tc.dir), tc.path)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			for _, e := range p.TypeErrors {
				t.Errorf("golden package must type-check cleanly: %v", e)
			}
			analyzers, err := ByName(tc.rules)
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, p)
			for _, d := range Run(p, analyzers) {
				rendered := fmt.Sprintf("[%s] %s", d.Rule, d.Message)
				if !wants.match(d.Pos.Filename, d.Pos.Line, rendered) {
					t.Errorf("unexpected finding at %s:%d: %s",
						filepath.Base(d.Pos.Filename), d.Pos.Line, rendered)
				}
			}
			wants.reportUnmatched(t)
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("unknown rule name must error so CI typos fail loudly")
	}
	as, err := ByName(" determinism , ssecontract ")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "determinism" || as[1].Name != "ssecontract" {
		t.Fatalf("selection resolved to %v", as)
	}
	all, err := ByName("")
	if err != nil || len(all) != len(All) {
		t.Fatalf("empty selection must mean the full suite, got %d, %v", len(all), err)
	}
}

// wantExpect is one expected-finding pattern pinned to a file:line.
type wantExpect struct {
	re      *regexp.Regexp
	file    string
	line    int
	matched bool
}

type wantSet struct {
	byLine map[string][]*wantExpect
}

var (
	wantRe    = regexp.MustCompile("want(?:\\((-?\\d+)\\))?((?:\\s+`[^`]*`)+)")
	wantPatRe = regexp.MustCompile("`([^`]*)`")
)

func collectWants(t *testing.T, p *Package) *wantSet {
	t.Helper()
	ws := &wantSet{byLine: map[string][]*wantExpect{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, _ := strconv.Atoi(m[1])
					line += off
				}
				for _, pm := range wantPatRe.FindAllStringSubmatch(m[2], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pm[1], err)
					}
					key := posKey(pos.Filename, line)
					ws.byLine[key] = append(ws.byLine[key],
						&wantExpect{re: re, file: pos.Filename, line: line})
				}
			}
		}
	}
	return ws
}

// match consumes the first unmatched expectation on the finding's line
// whose pattern matches the rendered diagnostic.
func (ws *wantSet) match(file string, line int, rendered string) bool {
	for _, w := range ws.byLine[posKey(file, line)] {
		if !w.matched && w.re.MatchString(rendered) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, list := range ws.byLine {
		for _, w := range list {
			if !w.matched {
				t.Errorf("expected finding at %s:%d matching %q never fired",
					filepath.Base(w.file), w.line, w.re)
			}
		}
	}
}

func posKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}
