package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package: the unit every
// analyzer consumes. Test files (*_test.go) are never loaded — the suite's
// contracts are about production code, and excluding them keeps the
// type-checking closed over ordinary import edges.
type Package struct {
	// Path is the import path ("delta/internal/sim/engine"); scoped
	// analyzers match on its prefix.
	Path string
	// Name is the package name ("main" exempts a package from rules that
	// only bind library code).
	Name string
	// Dir is the absolute directory the files came from.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File

	// Types and Info may be partial when type-checking reported errors
	// (collected in TypeErrors); analyzers must tolerate missing entries.
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Loader parses and type-checks the module's packages using only the
// stdlib toolchain: module-local imports resolve from the tree itself,
// standard-library imports through go/importer's source importer (which
// type-checks GOROOT sources — no compiled export data or network deps
// needed). Anything else is an error: the module is dependency-free by
// policy, and the loader enforces it as a side effect.
type Loader struct {
	Root    string // module root (directory containing go.mod)
	Module  string // module path from go.mod
	Fset    *token.FileSet
	std     types.Importer
	loaded  map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader locates the module root at or above dir and prepares a loader.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  module,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// LoadAll walks the module tree and loads every package, skipping testdata
// and hidden directories. Results come back sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir, l.importPathFor(dir))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// LoadDir parses and type-checks one directory as the package with the
// given import path. The path matters for scoped analyzers (and for the
// golden tests, which load testdata packages under synthetic in-scope
// paths); repeated loads of the same path are served from cache.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.loaded[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	name := ""
	for _, e := range ents {
		if !isSourceFile(e) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = f.Name.Name
		}
		if f.Name.Name != name {
			return nil, fmt.Errorf("mixed package names %s and %s in %s", name, f.Name.Name, dir)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	p := &Package{Path: importPath, Name: name, Dir: dir, Fset: l.Fset}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Types, _ = conf.Check(importPath, l.Fset, files, p.Info)
	p.Files = files
	l.loaded[importPath] = p
	return p, nil
}

// loaderImporter resolves imports during type-checking: module-local paths
// recurse into the loader, "unsafe" is built in, everything else must be
// standard library (served by the source importer).
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		p, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("type-checking %s failed", path)
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
