package lint

import (
	"go/ast"
	"go/types"
)

// LockDiscipline flags blocking operations performed while a sync.Mutex or
// RWMutex is held: channel sends/receives, select statements, Flush calls
// (the SSE-broadcast shape), and time.Sleep. A blocked goroutine holding a
// lock turns one slow SSE client into a store-wide stall — the copy-then-
// unlock-then-send idiom is the house rule, and this analyzer enforces it.
//
// The analysis is lexical and intra-procedural: it tracks Lock/Unlock
// pairs in statement order (defer Unlock holds to function end) and copies
// held-state into branches, so `if cond { mu.Unlock(); return }` is
// understood. Locks passed across function boundaries are not tracked.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "no channel operations, select, Flush, or sleeps while holding a " +
		"sync.Mutex/RWMutex; copy under the lock, release, then block",
	Run: runLockDiscipline,
}

func runLockDiscipline(p *Package) []Diagnostic {
	var diags []Diagnostic
	visit := func(body *ast.BlockStmt) {
		diags = append(diags, p.scanLocked(body.List, map[string]bool{})...)
	}
	p.eachFunc(func(fd *ast.FuncDecl) { visit(fd.Body) })
	// Function literals are their own execution contexts: scan each with
	// fresh held-state (a lit may run on another goroutine, so the outer
	// lock is not known to be held inside it).
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				diags = append(diags, p.scanLocked(fl.Body.List, map[string]bool{})...)
			}
			return true
		})
	}
	return diags
}

// scanLocked walks one statement list with the set of mutex expressions
// currently held (keyed by their source rendering, e.g. "s.mu").
func (p *Package) scanLocked(list []ast.Stmt, held map[string]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(at ast.Node, what string) {
		for m := range held {
			diags = append(diags, p.diag("lockdiscipline", at,
				"%s while %s is held: a blocked goroutine holding the lock stalls every other path through it; copy state, unlock, then block", what, m))
			return // one finding per site, naming one held lock
		}
	}
	copyHeld := func() map[string]bool {
		c := make(map[string]bool, len(held))
		for k, v := range held {
			c[k] = v
		}
		return c
	}
	for _, s := range list {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if recv, op, ok := p.lockOp(s.X); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = true
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				continue
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held through everything
			// that follows — which is exactly the state we are tracking,
			// so nothing to do; other defers run after the scan's scope.
			continue
		case *ast.BlockStmt:
			diags = append(diags, p.scanLocked(s.List, held)...)
			continue
		case *ast.IfStmt:
			if len(held) > 0 {
				p.violationsIn(s.Cond, report)
			}
			diags = append(diags, p.scanLocked(s.Body.List, copyHeld())...)
			switch el := s.Else.(type) {
			case *ast.BlockStmt:
				diags = append(diags, p.scanLocked(el.List, copyHeld())...)
			case *ast.IfStmt:
				diags = append(diags, p.scanLocked([]ast.Stmt{el}, copyHeld())...)
			}
			continue
		case *ast.ForStmt:
			diags = append(diags, p.scanLocked(s.Body.List, copyHeld())...)
			continue
		case *ast.RangeStmt:
			if len(held) > 0 {
				// Receiving from a ranged channel blocks like any receive.
				if t := p.typeOf(s.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						report(s, "channel-range receive")
					}
				}
			}
			diags = append(diags, p.scanLocked(s.Body.List, copyHeld())...)
			continue
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					diags = append(diags, p.scanLocked(cc.Body, copyHeld())...)
				}
			}
			continue
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					diags = append(diags, p.scanLocked(cc.Body, copyHeld())...)
				}
			}
			continue
		case *ast.SelectStmt:
			if len(held) > 0 {
				report(s, "select")
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					diags = append(diags, p.scanLocked(cc.Body, copyHeld())...)
				}
			}
			continue
		case *ast.LabeledStmt:
			diags = append(diags, p.scanLocked([]ast.Stmt{s.Stmt}, held)...)
			continue
		}
		if len(held) > 0 {
			p.violationsIn(s, report)
		}
	}
	return diags
}

// violationsIn inspects one statement (not recursing into function
// literals) for blocking operations, reporting each through report.
func (p *Package) violationsIn(n ast.Node, report func(ast.Node, string)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later / elsewhere; scanned separately
		case *ast.SendStmt:
			report(n, "channel send")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				report(n, "channel receive")
			}
		case *ast.SelectStmt:
			report(n, "select")
		case *ast.CallExpr:
			if selectionMethodName(n) == "Flush" && len(n.Args) == 0 {
				report(n, "Flush")
			}
			if isPkgObj(p.callee(n), "time", "Sleep") {
				report(n, "time.Sleep")
			}
		}
		return true
	})
}

// lockOp matches `x.Lock()` / `x.RLock()` / `x.Unlock()` / `x.RUnlock()`
// where the method is sync's (covers embedded mutexes too), returning the
// receiver's source rendering and the method name.
func (p *Package) lockOp(e ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	obj := p.Info.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), name, true
}
