package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// obsPath is the module's metrics registry package.
const obsPath = "delta/internal/obs"

// metricNameRe is the house naming contract: every series this repo
// exports is delta_-prefixed lower_snake_case, so dashboards and the e2e
// scripts can grep one stable namespace.
var metricNameRe = regexp.MustCompile(`^delta_[a-z_]+$`)

// registerFuncs are the obs.Registry entry points whose first argument is
// the metric name.
var registerFuncs = map[string]bool{
	"Counter": true, "CounterVec": true, "CounterFunc": true,
	"Gauge": true, "GaugeVec": true, "GaugeFunc": true,
	"Histogram": true, "HistogramVec": true,
}

// MetricHygiene enforces the observability contracts: metric names are
// package-level constants matching delta_[a-z_]+ (greppable, collision-
// checked at compile review rather than scrape time), and label values
// never come straight off a request (raw paths/headers/addresses as label
// values are an unbounded-cardinality memory leak — PR 5's bounded route
// labels exist precisely to prevent this).
var MetricHygiene = &Analyzer{
	Name: "metrichygiene",
	Doc: "obs metric names must be package-level delta_[a-z_]+ constants; " +
		"label values must not be raw request-derived strings",
	Run: runMetricHygiene,
}

func runMetricHygiene(p *Package) []Diagnostic {
	if p.Path == obsPath {
		return nil // the registry itself passes names through variables
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := p.callee(call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != obsPath {
				return true
			}
			if registerFuncs[obj.Name()] && len(call.Args) > 0 {
				diags = append(diags, p.checkMetricName(call.Args[0])...)
			}
			if obj.Name() == "With" {
				for _, arg := range call.Args {
					if from := p.requestDerived(arg); from != "" {
						diags = append(diags, p.diag("metrichygiene", arg,
							"label value derived from %s: request-derived strings are unbounded cardinality (one series per distinct value); map to a bounded label set first", from))
					}
				}
			}
			return true
		})
	}
	return diags
}

// checkMetricName requires the name argument to be a package-level
// constant whose value matches the naming contract.
func (p *Package) checkMetricName(arg ast.Expr) []Diagnostic {
	obj := p.objectOf(arg)
	c, isConst := obj.(*types.Const)
	if !isConst || c.Parent() != pkgScopeOf(c) {
		return []Diagnostic{p.diag("metrichygiene", arg,
			"metric name must be a package-level constant (got %s): constants keep the delta_ namespace greppable and typo-proof", describeExpr(arg))}
	}
	if c.Val().Kind() == constant.String {
		if name := constant.StringVal(c.Val()); !metricNameRe.MatchString(name) {
			return []Diagnostic{p.diag("metrichygiene", arg,
				"metric name %q does not match delta_[a-z_]+: every exported series lives in the delta_ lower_snake_case namespace", name)}
		}
	}
	return nil
}

// pkgScopeOf returns the package scope owning obj, nil when unknown.
func pkgScopeOf(obj types.Object) *types.Scope {
	if obj.Pkg() == nil {
		return nil
	}
	return obj.Pkg().Scope()
}

// requestDerived reports (as prose) whether the expression reads from an
// *http.Request — r.URL..., r.Header..., r.RemoteAddr, and friends.
func (p *Package) requestDerived(arg ast.Expr) string {
	from := ""
	ast.Inspect(arg, func(n ast.Node) bool {
		if from != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if t := p.typeOf(id); t != nil && isNamedType(t, "net/http", "Request") {
				from = "the request (" + id.Name + ")"
			}
		}
		return true
	})
	return from
}

// describeExpr names an expression's shape for diagnostics.
func describeExpr(e ast.Expr) string {
	switch ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return "a string literal"
	case *ast.BinaryExpr:
		return "a concatenation"
	case *ast.CallExpr:
		return "a call result"
	case *ast.Ident, *ast.SelectorExpr:
		return "a non-constant or local value"
	}
	return "a dynamic expression"
}
