package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// SSEContract checks every handler that serves `text/event-stream`
// against the resume-and-liveness contract the jobs API and shard
// streaming rely on:
//
//   - frames carry `id:` lines, so reconnecting clients (and the fleet's
//     SSE client) can resume via Last-Event-ID instead of replaying or —
//     worse — double-merging results;
//   - the handler calls Flush, so frames actually leave the process
//     instead of sitting in the response buffer until the sweep ends;
//   - the handler selects on the request context's Done channel, so an
//     abandoned client releases its stream goroutine instead of leaking.
//
// A handler is any function that sets the Content-Type header to
// text/event-stream (setting Accept on an outgoing client request does
// not count). The id: emission may live in a same-package helper called
// directly from the handler (the writeSSE/writeFrame shape).
var SSEContract = &Analyzer{
	Name: "ssecontract",
	Doc: "text/event-stream handlers must emit id: frames, call Flush, " +
		"and select on ctx.Done()",
	Run: runSSEContract,
}

func runSSEContract(p *Package) []Diagnostic {
	var diags []Diagnostic
	decls := p.funcDeclIndex()
	p.eachFunc(func(fd *ast.FuncDecl) {
		if !p.setsEventStreamContentType(fd.Body) {
			return
		}
		if !p.callsFlush(fd.Body) {
			diags = append(diags, p.diag("ssecontract", fd.Name,
				"SSE handler %s never calls Flush: frames sit in the response buffer and clients see nothing until the stream ends", fd.Name.Name))
		}
		if !p.selectsOnDone(fd.Body) {
			diags = append(diags, p.diag("ssecontract", fd.Name,
				"SSE handler %s never waits on ctx.Done(): an abandoned client leaks the stream goroutine for the life of the sweep", fd.Name.Name))
		}
		if !p.emitsIDFrames(fd, decls) {
			diags = append(diags, p.diag("ssecontract", fd.Name,
				"SSE handler %s emits no id: lines: clients cannot resume via Last-Event-ID and will replay or double-merge results on reconnect", fd.Name.Name))
		}
	})
	return diags
}

// setsEventStreamContentType matches `h.Set("Content-Type",
// "text/event-stream")` (and Add) — the serving side of the contract.
func (p *Package) setsEventStreamContentType(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return true
		}
		switch selectionMethodName(call) {
		case "Set", "Add":
		default:
			return true
		}
		if len(call.Args) != 2 {
			return true
		}
		key, okKey := literalString(call.Args[0])
		val, okVal := literalString(call.Args[1])
		if okKey && okVal && strings.EqualFold(key, "Content-Type") &&
			strings.HasPrefix(val, "text/event-stream") {
			found = true
		}
		return true
	})
	return found
}

func literalString(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	return s, err == nil
}

func (p *Package) callsFlush(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok &&
			selectionMethodName(call) == "Flush" && len(call.Args) == 0 {
			found = true
		}
		return !found
	})
	return found
}

// selectsOnDone looks for a receive from a context's Done() channel —
// `<-ctx.Done()` or `case <-r.Context().Done():` — resolved through type
// info when available, by method name otherwise.
func (p *Package) selectsOnDone(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		un, ok := n.(*ast.UnaryExpr)
		if !ok || un.Op.String() != "<-" {
			return !found
		}
		call, ok := ast.Unparen(un.X).(*ast.CallExpr)
		if !ok || selectionMethodName(call) != "Done" || len(call.Args) != 0 {
			return !found
		}
		obj := p.callee(call)
		if obj == nil || isPkgObj(obj, "context", "Done") {
			found = true
		}
		return !found
	})
	return found
}

// emitsIDFrames accepts an `id:`-bearing string literal in the handler
// itself or in a same-package function it calls directly.
func (p *Package) emitsIDFrames(fd *ast.FuncDecl, decls map[string]*ast.FuncDecl) bool {
	if containsIDLiteral(fd.Body) {
		return true
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return true
		}
		obj := p.callee(call)
		if obj == nil || obj.Pkg() == nil || obj.Pkg() != p.Types {
			return true
		}
		if callee, ok := decls[obj.Name()]; ok && containsIDLiteral(callee.Body) {
			found = true
		}
		return true
	})
	return found
}

func containsIDLiteral(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := literalStringNode(n); ok && strings.Contains(s, "id:") {
			found = true
		}
		return !found
	})
	return found
}

func literalStringNode(n ast.Node) (string, bool) {
	e, ok := n.(ast.Expr)
	if !ok {
		return "", false
	}
	return literalString(e)
}

// funcDeclIndex maps top-level function and method names to declarations
// (methods keyed by bare name — good enough for one-hop helper lookup).
func (p *Package) funcDeclIndex() map[string]*ast.FuncDecl {
	idx := make(map[string]*ast.FuncDecl)
	p.eachFunc(func(fd *ast.FuncDecl) { idx[fd.Name.Name] = fd })
	return idx
}
