// Package goldenctx is the ctxflow analyzer's golden corpus, mounted at
// delta/internal/goldenctx so the exported-function rule binds.
package goldenctx

import (
	"context"
	"net"
	"net/http"
	"testing"
)

// Detach mints a root context below main, severing the caller's
// cancellation chain.
func Detach() {
	ctx := context.Background() // want `context\.Background\(\) outside package main`
	_ = ctx
}

// Todo is the same bug in TODO clothing.
func Todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) outside package main`
}

// Spawn fans out a goroutine its caller has no way to cancel.
func Spawn(done chan struct{}) { // want `exported Spawn spawns a goroutine`
	go func() { close(done) }()
}

// Fetch initiates network I/O with no deadline or cancellation.
func Fetch(url string) (*http.Response, error) { // want `exported Fetch performs network I/O`
	return http.Get(url)
}

// Delegate calls a context-taking helper without threading one through.
func Delegate() { // want `exported Delegate calls context-taking helper`
	helper(nil)
}

func helper(ctx context.Context) { _ = ctx }

// FetchCtx threads a context through the same I/O: quiet.
func FetchCtx(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}

// Handle carries its lifecycle in the request: handlers are exempt.
func Handle(w http.ResponseWriter, r *http.Request) {
	go func() { <-r.Context().Done() }()
}

// Bench receives the harness lifecycle through *testing.B: exempt.
func Bench(b *testing.B, done chan struct{}) {
	go func() { close(done) }()
}

// spawn is unexported: internal helpers inherit their caller's contract.
func spawn(done chan struct{}) {
	go func() { close(done) }()
}

// conn wraps a net.Conn. Read is an interface implementation that cannot
// grow a context parameter, and a method call on an existing conn is not
// I/O initiation: quiet.
type conn struct{ inner net.Conn }

func (c conn) Read(p []byte) (int, error) { return c.inner.Read(p) }
