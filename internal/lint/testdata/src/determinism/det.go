// Package goldendet is the determinism analyzer's golden corpus. The test
// harness mounts it at delta/internal/sim/goldendet — inside the replay
// scope — so every construct below is judged against the bit-identical-
// results contract.
package goldendet

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Stamp reads the wall clock on a replay path: the headline offense.
func Stamp() time.Time {
	return time.Now() // want `\[determinism\] time\.Now in a replay package`
}

// clock smuggles the same read in as a value reference.
var clock = time.Now // want `\[determinism\] time\.Now in a replay package`

// Elapsed measures real elapsed time, which differs every run.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `\[determinism\] time\.Since in a replay package`
}

// Epoch builds a fixed instant: time is fine, reading the clock is not.
func Epoch() time.Time {
	return time.Unix(0, 0)
}

// LeakOrder feeds map iteration order straight into an output slice.
func LeakOrder(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `map iteration order feeds an append`
	}
	return out
}

// Total accumulates floats in map order; float addition is not
// associative, so the sum depends on iteration order.
func Total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `map iteration order feeds accumulation into sum`
	}
	return sum
}

// Dump writes frames in map order: the output sequence is the offense.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration order feeds an output write`
	}
}

// Keys is the one blessed shape — the sorted-keys idiom: collect exactly
// the keys, then sort before anything order-sensitive happens.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Max only compares and assigns: no order-sensitive write, no finding.
func Max(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Invert writes into another map: map-to-map transfer is order-free.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
