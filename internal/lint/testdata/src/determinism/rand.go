package goldendet

import "math/rand" // want `\[determinism\] import of math/rand`

// Jitter draws randomness on a replay path; the import itself is the
// finding, before any call site.
func Jitter() int {
	return rand.Int()
}
