// Package goldenlock is the lockdiscipline analyzer's golden corpus: the
// SSE-broadcast shapes, both the stalls and the house copy-then-unlock
// idiom that avoids them.
package goldenlock

import (
	"net/http"
	"sync"
	"time"
)

// Broadcaster is the subscriber-fanout shape the analyzer polices.
type Broadcaster struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	subs []chan int
	last int
}

// BadSend sends to subscribers while the lock is held: one slow receiver
// stalls every other path through b.mu.
func (b *Broadcaster) BadSend(v int) {
	b.mu.Lock()
	b.last = v
	for _, ch := range b.subs {
		ch <- v // want `channel send while b\.mu is held`
	}
	b.mu.Unlock()
}

// BadFlush defers the unlock, so the lock is held through the Flush.
func (b *Broadcaster) BadFlush(f http.Flusher) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f.Flush() // want `Flush while b\.mu is held`
}

// BadSleep backs off while holding the read lock.
func (b *Broadcaster) BadSleep() {
	b.rw.RLock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while b\.rw is held`
	b.rw.RUnlock()
}

// BadSelect parks on a select with the lock held.
func (b *Broadcaster) BadSelect(stop chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `select while b\.mu is held`
	case <-stop:
	default:
	}
}

// GoodSend is the house idiom: copy under the lock, release, then block.
func (b *Broadcaster) GoodSend(v int) {
	b.mu.Lock()
	subs := make([]chan int, len(b.subs))
	copy(subs, b.subs)
	b.mu.Unlock()
	for _, ch := range subs {
		ch <- v
	}
}

// GoodBranch releases on the early-exit arm before returning and on the
// main path before sending; the branch-aware scan follows both.
func (b *Broadcaster) GoodBranch(v int, ready bool) {
	b.mu.Lock()
	if !ready {
		b.mu.Unlock()
		return
	}
	sub := b.subs[0]
	b.mu.Unlock()
	sub <- v
}

// GoodAsync hands the send to another goroutine: the literal is its own
// execution context, where the outer lock is not known to be held.
func (b *Broadcaster) GoodAsync(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := b.subs[0]
	go func() { ch <- v }()
}
