// Package goldenmetric is the metrichygiene analyzer's golden corpus: it
// registers against the real delta/internal/obs registry, so the call
// shapes below are exactly what production code writes.
package goldenmetric

import (
	"net/http"
	"strconv"

	"delta/internal/obs"
)

// Package-level constants in the blessed namespace, plus one that is
// package-level but breaks the casing contract.
const (
	metricRequests = "delta_golden_requests_total"
	metricLatency  = "delta_golden_latency_seconds"
	badCase        = "DeltaGoldenBad"
)

// Register exercises the naming contract: only a package-level constant
// in the delta_ lower_snake_case namespace passes.
func Register(reg *obs.Registry) *obs.CounterVec {
	reg.Counter("delta_literal_total", "inline literal") // want `metric name must be a package-level constant \(got a string literal\)`
	reg.Gauge(metricRequests+"_x", "concatenation")      // want `metric name must be a package-level constant \(got a concatenation\)`
	local := "delta_local_total"
	reg.Counter(local, "local variable") // want `metric name must be a package-level constant \(got a non-constant or local value\)`
	const inner = "delta_inner_total"
	reg.Counter(inner, "function-local constant") // want `metric name must be a package-level constant`
	reg.Gauge(badCase, "bad casing")              // want `"DeltaGoldenBad" does not match delta_\[a-z_\]\+`
	reg.Histogram(metricLatency, "latency", nil)
	return reg.CounterVec(metricRequests, "requests", "route", "status")
}

// Observe exercises the label-cardinality contract: raw request-derived
// strings are one series per distinct value.
func Observe(v *obs.CounterVec, r *http.Request, status int) {
	v.With(r.URL.Path, strconv.Itoa(status)).Inc() // want `label value derived from the request \(r\)`
	route := boundedRoute(r)
	v.With(route, strconv.Itoa(status)).Inc()
}

// boundedRoute maps arbitrary request paths onto a fixed label set — the
// named-mapping idiom the analyzer wants to see.
func boundedRoute(r *http.Request) string {
	switch r.URL.Path {
	case "/jobs":
		return "jobs"
	default:
		return "other"
	}
}
