// Package goldensse is the ssecontract analyzer's golden corpus: serving
// handlers that violate each clause of the resume-and-liveness contract,
// one that honors all three, and the client shape that must not count as
// a handler at all.
package goldensse

import (
	"fmt"
	"net/http"
)

// StreamBad sets up an event stream and then violates all three clauses:
// no Flush, no ctx.Done, anonymous frames.
func StreamBad(w http.ResponseWriter, r *http.Request) { // want `StreamBad never calls Flush` `StreamBad never waits on ctx\.Done` `StreamBad emits no id: lines`
	w.Header().Set("Content-Type", "text/event-stream")
	fmt.Fprintf(w, "data: %s\n\n", "hello")
}

// StreamNoID flushes and cancels correctly but emits anonymous frames, so
// reconnecting clients cannot resume via Last-Event-ID.
func StreamNoID(w http.ResponseWriter, r *http.Request) { // want `StreamNoID emits no id: lines`
	w.Header().Set("Content-Type", "text/event-stream")
	f, _ := w.(http.Flusher)
	select {
	case <-r.Context().Done():
		return
	default:
	}
	fmt.Fprint(w, "data: tick\n\n")
	if f != nil {
		f.Flush()
	}
}

// StreamGood honors the whole contract; the id: emission lives one hop
// away in writeFrame, the writeSSE shape the analyzer accepts.
func StreamGood(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/event-stream")
	f, _ := w.(http.Flusher)
	ctx := r.Context()
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return
		default:
		}
		writeFrame(w, i)
		if f != nil {
			f.Flush()
		}
	}
}

// writeFrame carries the id: line for StreamGood.
func writeFrame(w http.ResponseWriter, id int) {
	fmt.Fprintf(w, "id: %d\ndata: tick\n\n", id)
}

// Subscribe is the client side: setting Accept on an outgoing request
// does not make this function a handler, so no clause applies.
func Subscribe(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	return http.DefaultClient.Do(req)
}
