// Package goldensup exercises the suppression machinery itself, mounted
// inside the determinism scope so the findings to suppress are real: a
// reasoned ignore silences exactly its rule on its line, a reasonless one
// is reported and silences nothing, and a wrong-rule ignore is inert.
package goldensup

import "time"

// Stamp is wrong but argued: a well-formed ignore on the line above the
// offense suppresses the finding.
func Stamp() time.Time {
	//lint:ignore determinism golden corpus: proves a reasoned ignore suppresses
	return time.Now()
}

// Since uses the same-line trailing form.
func Since(t0 time.Time) time.Duration {
	return time.Since(t0) //lint:ignore determinism golden corpus: same-line form
}

// A reasonless ignore is itself a finding and suppresses nothing: both
// the suppress report and the underlying determinism finding fire.
var T = time.Now() //lint:ignore determinism
// want(-1) `\[suppress\] lint:ignore needs a reason` `\[determinism\] time\.Now`

// An ignore naming the wrong rule leaves the real finding standing.
//
//lint:ignore ctxflow wrong rule: determinism still fires on the next line
var U = time.Now() // want `\[determinism\] time\.Now`
