package lint

import (
	"go/ast"
	"go/types"
)

// objectOf resolves an identifier or selector to its types.Object, nil
// when type info is missing (analyzers degrade to silence, not panics).
func (p *Package) objectOf(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.Info.ObjectOf(e)
	case *ast.SelectorExpr:
		return p.Info.ObjectOf(e.Sel)
	}
	return nil
}

// callee resolves the function object a call invokes.
func (p *Package) callee(call *ast.CallExpr) types.Object {
	return p.objectOf(call.Fun)
}

// isPkgObj reports whether obj is one of the named top-level objects of
// the package with the given import path.
func isPkgObj(obj types.Object, pkgPath string, names ...string) bool {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// typeOf returns the type of an expression, nil when unknown.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// isMapType reports whether the expression's underlying type is a map.
func (p *Package) isMapType(e ast.Expr) bool {
	t := p.typeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isNamedType reports whether t (or the pointee, through one pointer) is
// the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// hasParamType reports whether any parameter of the function type has a
// type matching pred.
func hasParamType(sig *types.Signature, pred func(types.Type) bool) bool {
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if pred(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType matches context.Context.
func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

// firstParamIsContext reports whether a signature's leading parameter is a
// context.Context — the module convention for cancelable entry points.
func firstParamIsContext(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

// declaredWithin reports whether the identifier's object is declared
// inside the half-open position range [lo, hi] — used to tell loop-local
// variables from outer accumulators.
func (p *Package) declaredWithin(id *ast.Ident, lo, hi ast.Node) bool {
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= lo.Pos() && obj.Pos() <= hi.End()
}

// selectionMethodName returns the method name of a call through a
// selector ("x.Flush()" -> "Flush"), or "" for other call shapes.
func selectionMethodName(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return sel.Sel.Name
}

// eachFunc visits every function declaration in the package with its body
// (skipping bodyless declarations).
func (p *Package) eachFunc(visit func(fd *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}

// underPrefixes reports whether the package path sits at or under one of
// the given import-path prefixes.
func underPrefixes(path string, prefixes ...string) bool {
	for _, pre := range prefixes {
		if path == pre || len(path) > len(pre) && path[:len(pre)] == pre && path[len(pre)] == '/' {
			return true
		}
	}
	return false
}
