// Package microbench reproduces the paper's DRAM micro-benchmark
// (Appendix B, Fig. 18): a stream of DRAM traffic with increasing volume
// per time unit, recording the turnaround latency and the effective
// delivered bandwidth at each offered load.
//
// Under light load the turnaround is the pipeline latency; as offered load
// approaches the channel's capacity the queue grows and latency rises
// steeply, while delivered bandwidth saturates at the effective peak.
package microbench

import (
	"fmt"

	"delta/internal/gpu"
	"delta/internal/sim/dram"
)

// Point is one sample of the Fig. 18 curve.
type Point struct {
	OfferedGBs  float64 // offered load
	AchievedGBs float64 // delivered bandwidth
	LatencyClk  float64 // mean turnaround latency
	Saturated   bool    // queue grew without bound at this load
}

// Sweep runs the micro-benchmark on a device's DRAM channel: for each
// offered load (fractions of peak), issue fixed-size requests at the
// matching rate and measure turnaround and delivered bandwidth.
func Sweep(d gpu.Device, fractions []float64, requests int) ([]Point, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if requests <= 0 {
		return nil, fmt.Errorf("microbench: requests must be positive")
	}
	peak := d.DRAMBytesPerClk()
	const reqBytes = 128.0

	out := make([]Point, 0, len(fractions))
	for _, f := range fractions {
		if f <= 0 {
			return nil, fmt.Errorf("microbench: non-positive load fraction %v", f)
		}
		ch, err := dram.NewChannel(peak, d.LatDRAMClk)
		if err != nil {
			return nil, err
		}
		offered := peak * f       // bytes per clock
		gap := reqBytes / offered // clocks between requests
		var lastDone float64
		for i := 0; i < requests; i++ {
			now := float64(i) * gap
			done := ch.Read(now, reqBytes)
			if done > lastDone {
				lastDone = done
			}
		}
		elapsed := lastDone
		delivered := reqBytes * float64(requests) / elapsed // bytes per clock
		st := ch.Stats()
		out = append(out, Point{
			OfferedGBs:  offered * d.ClockGHz,
			AchievedGBs: delivered * d.ClockGHz,
			LatencyClk:  st.MeanTurnaroundClk,
			Saturated:   f >= 1,
		})
	}
	return out, nil
}

// DefaultFractions is the offered-load sweep used by the Fig. 18
// experiment: from 5% of peak to 30% beyond it.
func DefaultFractions() []float64 {
	return []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0, 1.1, 1.3}
}

// KneePoint returns the achieved bandwidth (GB/s) where latency first
// exceeds twice the unloaded latency — the paper's "effective bandwidth"
// reading of Fig. 18.
func KneePoint(points []Point, d gpu.Device) (float64, error) {
	if len(points) == 0 {
		return 0, fmt.Errorf("microbench: no points")
	}
	unloaded := points[0].LatencyClk
	for _, p := range points {
		if p.LatencyClk > 2*unloaded {
			return p.AchievedGBs, nil
		}
	}
	// Never saturated within the sweep: the knee is at the last point.
	return points[len(points)-1].AchievedGBs, nil
}
