package microbench

import (
	"testing"

	"delta/internal/gpu"
)

func TestSweepShape(t *testing.T) {
	d := gpu.TitanXp()
	pts, err := Sweep(d, DefaultFractions(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(DefaultFractions()) {
		t.Fatalf("points = %d", len(pts))
	}
	// Light load: latency near the pipeline latency.
	if pts[0].LatencyClk > d.LatDRAMClk*1.1 {
		t.Errorf("light-load latency = %v, want ~%v", pts[0].LatencyClk, d.LatDRAMClk)
	}
	// Overload: latency far above pipeline latency (the hockey stick).
	last := pts[len(pts)-1]
	if last.LatencyClk < d.LatDRAMClk*3 {
		t.Errorf("overload latency = %v, want queue blow-up", last.LatencyClk)
	}
	if !last.Saturated {
		t.Error("final point not marked saturated")
	}
	// Achieved bandwidth never exceeds the device peak.
	for _, p := range pts {
		if p.AchievedGBs > d.DRAMBWGBs*1.01 {
			t.Errorf("achieved %v GB/s above peak %v", p.AchievedGBs, d.DRAMBWGBs)
		}
	}
	// Achieved bandwidth is monotone non-decreasing up to saturation.
	for i := 1; i < len(pts); i++ {
		if pts[i].Saturated {
			break
		}
		if pts[i].AchievedGBs < pts[i-1].AchievedGBs*0.98 {
			t.Errorf("achieved BW dropped before saturation at point %d", i)
		}
	}
}

func TestKneePointNearPeak(t *testing.T) {
	for _, d := range gpu.All() {
		pts, err := Sweep(d, DefaultFractions(), 20000)
		if err != nil {
			t.Fatal(err)
		}
		knee, err := KneePoint(pts, d)
		if err != nil {
			t.Fatal(err)
		}
		// Fig. 18: the knee sits near the effective peak bandwidth.
		if knee < d.DRAMBWGBs*0.75 || knee > d.DRAMBWGBs*1.05 {
			t.Errorf("%s: knee at %v GB/s, peak %v", d.Name, knee, d.DRAMBWGBs)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	d := gpu.TitanXp()
	if _, err := Sweep(gpu.Device{}, DefaultFractions(), 100); err == nil {
		t.Error("invalid device accepted")
	}
	if _, err := Sweep(d, DefaultFractions(), 0); err == nil {
		t.Error("zero requests accepted")
	}
	if _, err := Sweep(d, []float64{0}, 100); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := KneePoint(nil, d); err == nil {
		t.Error("empty knee accepted")
	}
}
