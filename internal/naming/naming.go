// Package naming canonicalizes the string keys of the device and network
// registries, so CLI and HTTP spellings like "TITAN-Xp", "titan xp", or
// "resnet152_full" all resolve the same entry.
package naming

import (
	"strings"
	"unicode"
)

// Normalize lower-cases a registry name and strips separator characters.
func Normalize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch r {
		case ' ', '-', '_', '/':
			continue
		}
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}
