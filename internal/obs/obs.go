// Package obs is a dependency-free metrics registry for the serving layer:
// atomic counters, gauges, func-backed metrics, and bounded-bucket
// histograms, rendered in the Prometheus text exposition format (0.0.4).
//
// It deliberately covers only what delta-server needs — no label
// cardinality explosion guards beyond what callers enforce, no summaries,
// no push — so the server stays free of third-party dependencies while
// still speaking the format every scrape stack understands.
//
// All metric operations are safe for concurrent use and allocation-free on
// the hot path (Counter.Inc, Gauge.Set, Histogram.Observe after the first
// With call per label set; cache the With result at wiring time).
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default latency histogram layout in seconds: sub-ms to
// tens of seconds, matching the spread between a memo-hit /v1 answer and a
// large cold sweep.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-layout bucketed distribution. Bucket bounds are
// upper-inclusive and set at registration; observations past the last
// bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Bucket index: the first bound >= v (upper-inclusive bounds), which
	// is exactly what SearchFloat64s returns; v past every bound lands in
	// the trailing +Inf slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one concrete series (a Counter, Gauge, or Histogram).
type metric any

// family is one registered metric name: its metadata plus the series per
// label-value combination (one unlabeled series when labels is empty).
type family struct {
	name    string
	help    string
	typ     string // "counter" | "gauge" | "histogram"
	labels  []string
	buckets []float64
	fn      func() float64 // func-backed families have no stored series

	mu     sync.Mutex
	series map[string]metric // key: \x00-joined label values
}

// Registry holds named metric families and renders them for scraping.
// Register everything at wiring time; registration panics on invalid or
// duplicate names (programmer errors, like the prometheus client).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string, labels []string, buckets []float64, fn func() float64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRe.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	if typ == "histogram" {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %q needs buckets", name))
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("obs: histogram %q buckets not sorted", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	f := &family{
		name: name, help: help, typ: typ, labels: labels,
		buckets: buckets, fn: fn, series: make(map[string]metric),
	}
	r.families[name] = f
	return f
}

// with resolves (creating on first use) the series for one label-value set.
func (f *family) with(values []string, make func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	if !ok {
		m = make()
		f.series[key] = m
	}
	return m
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil, nil)
	return f.with(nil, func() metric { return new(Counter) }).(*Counter)
}

// CounterVec registers a counter family with the given label names.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", labels, nil, nil)}
}

// With returns the counter for one label-value combination.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.with(values, func() metric { return new(Counter) }).(*Counter)
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil, nil)
	return f.with(nil, func() metric { return new(Gauge) }).(*Gauge)
}

// GaugeVec is a gauge family with label names.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", labels, nil, nil)}
}

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.with(values, func() metric { return new(Gauge) }).(*Gauge)
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotone counters owned elsewhere (e.g. pipeline cache hits).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", nil, nil, fn)
}

// GaugeFunc registers a gauge read from fn at scrape time — for
// level-style values owned elsewhere (job-store depth, limiter occupancy).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, nil, fn)
}

// Histogram registers an unlabeled histogram with the given bucket bounds.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil, buckets, nil)
	return f.with(nil, func() metric { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with label names.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, "histogram", labels, buckets, nil)}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.with(values, func() metric { return newHistogram(v.f.buckets) }).(*Histogram)
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// WritePrometheus renders every family in text exposition format, families
// and series in sorted order so scrapes are diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, fmtFloat(f.fn()))
		return
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		key string
		m   metric
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{k, f.series[k]})
	}
	f.mu.Unlock()

	for _, rw := range rows {
		labels := f.labelPairs(rw.key)
		switch m := rw.m.(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, braced(labels), m.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %d\n", f.name, braced(labels), m.Value())
		case *Histogram:
			var cum uint64
			for i, bound := range m.bounds {
				cum += m.counts[i].Load()
				le := append(append([]string(nil), labels...), `le="`+fmtFloat(bound)+`"`)
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, braced(le), cum)
			}
			cum += m.counts[len(m.bounds)].Load()
			le := append(append([]string(nil), labels...), `le="+Inf"`)
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, braced(le), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, braced(labels), fmtFloat(m.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, braced(labels), cum)
		}
	}
}

// labelPairs renders the family's label names against one series key.
func (f *family) labelPairs(key string) []string {
	if len(f.labels) == 0 {
		return nil
	}
	values := strings.Split(key, "\x00")
	pairs := make([]string, len(f.labels))
	for i, l := range f.labels {
		pairs[i] = l + `="` + escapeLabel(values[i]) + `"`
	}
	return pairs
}

func braced(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// Handler serves the registry as a scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
