package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRenderFormat pins the exposition format for every metric kind.
func TestRenderFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Total requests.")
	c.Add(3)
	cv := r.CounterVec("test_routed_total", "Routed requests.", "route", "code")
	cv.With("/v1/network", "200").Add(2)
	cv.With("/v1/explore", "400").Inc()
	g := r.Gauge("test_in_flight", "In-flight requests.")
	g.Set(5)
	g.Dec()
	r.GaugeFunc("test_depth", "Store depth.", func() float64 { return 7 })
	r.CounterFunc("test_hits_total", "Cache hits.", func() float64 { return 41 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.1) // upper-inclusive: lands in le="0.1"
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Total requests.\n# TYPE test_requests_total counter\ntest_requests_total 3\n",
		`test_routed_total{route="/v1/network",code="200"} 2`,
		`test_routed_total{route="/v1/explore",code="400"} 1`,
		"# TYPE test_in_flight gauge\ntest_in_flight 4\n",
		"test_depth 7\n",
		"test_hits_total 41\n",
		`test_latency_seconds_bucket{le="0.1"} 2`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="+Inf"} 4`,
		"test_latency_seconds_sum 3.65\n",
		"test_latency_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render in sorted name order.
	if strings.Index(out, "test_depth") > strings.Index(out, "test_requests_total") {
		t.Error("families not sorted by name")
	}
}

// TestHistogramVec covers labeled histograms and Count/Sum accessors.
func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("test_route_latency_seconds", "Per-route latency.", DefBuckets, "route")
	h := hv.With("/v2/jobs")
	h.Observe(0.002)
	h.Observe(0.002)
	if h.Count() != 2 {
		t.Errorf("Count = %d, want 2", h.Count())
	}
	if h.Sum() != 0.004 {
		t.Errorf("Sum = %v, want 0.004", h.Sum())
	}
	if hv.With("/v2/jobs") != h {
		t.Error("With not cached per label set")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `test_route_latency_seconds_bucket{route="/v2/jobs",le="0.0025"} 2`) {
		t.Errorf("labeled histogram render wrong:\n%s", b.String())
	}
}

// TestGaugeVec covers labeled gauges: per-label series, With caching, and
// render format.
func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("test_peer_up", "Peer reachability.", "peer")
	gv.With("w1:8080").Set(1)
	gv.With("w2:8080").Set(0)
	gv.With("w1:8080").Add(1)
	if gv.With("w1:8080").Value() != 2 {
		t.Errorf("gauge = %d, want 2", gv.With("w1:8080").Value())
	}
	if gv.With("w1:8080") != gv.With("w1:8080") {
		t.Error("With not cached per label set")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_peer_up gauge\n",
		`test_peer_up{peer="w1:8080"} 2`,
		`test_peer_up{peer="w2:8080"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLabelEscaping: quotes, backslashes, and newlines in label values
// must not corrupt the exposition stream.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_esc_total", "Escapes.", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `test_esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

// TestRegistrationPanics: invalid and duplicate registrations are
// programmer errors and panic at wiring time.
func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"bad name", func(r *Registry) { r.Counter("0bad", "x") }},
		{"bad label", func(r *Registry) { r.CounterVec("ok_total", "x", "0bad") }},
		{"dup", func(r *Registry) { r.Counter("dup_total", "x"); r.Gauge("dup_total", "x") }},
		{"unsorted buckets", func(r *Registry) { r.Histogram("h", "x", []float64{1, 0.5}) }},
		{"no buckets", func(r *Registry) { r.Histogram("h", "x", nil) }},
		{"label arity", func(r *Registry) { r.CounterVec("v_total", "x", "a").With("1", "2") }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		}()
	}
}

// TestConcurrency hammers one registry from many goroutines under -race.
func TestConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "x")
	g := r.Gauge("test_g", "x")
	h := r.Histogram("test_h_seconds", "x", DefBuckets)
	cv := r.CounterVec("test_cv_total", "x", "i")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 1000)
				cv.With(string(rune('a' + w%4))).Inc()
				var b strings.Builder
				if i%100 == 0 {
					_ = r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

// TestHandler serves the scrape endpoint with the right content type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}
