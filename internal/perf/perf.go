// Package perf implements DeLTA's performance model (Section V): it turns
// the per-main-loop traffic volumes of the traffic model into a conv-layer
// execution-time estimate and names the bottleneck resource.
//
// The software-pipelined GEMM main loop runs three streams concurrently
// (Fig. 9): the global load stream (GLS) fetching the next input tiles, the
// shared-memory access stream (SAS) moving tiles between SMEM and registers,
// and the compute stream (CS) performing MACs. With multiple CTAs
// interleaved per SM, four bottleneck regimes arise (Fig. 10); the model
// evaluates all candidate execution times (Eq. 16-18) and the largest one is
// the per-SM execution time, its origin the bottleneck.
package perf

import (
	"fmt"
	"math"

	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/traffic"
)

// Bottleneck identifies the resource limiting a layer's execution
// (the legend of Fig. 13/14).
type Bottleneck int

const (
	MACBW   Bottleneck = iota // compute throughput (Eq. 13 path)
	SMEMBW                    // shared-memory datapath (Eq. 12 path)
	L1BW                      // L1 bandwidth (Eq. 18 path)
	L2BW                      // L2 bandwidth (Eq. 18 path)
	DRAMBW                    // DRAM bandwidth (Eq. 18 path)
	DRAMLAT                   // global-load latency exposure (Eq. 17 path)
)

var bottleneckNames = [...]string{"MAC_BW", "SMEM_BW", "L1_BW", "L2_BW", "DRAM_BW", "DRAM_LAT"}

func (b Bottleneck) String() string {
	if b < 0 || int(b) >= len(bottleneckNames) {
		return fmt.Sprintf("Bottleneck(%d)", int(b))
	}
	return bottleneckNames[b]
}

// Bottlenecks lists all bottleneck kinds in display order.
func Bottlenecks() []Bottleneck {
	return []Bottleneck{MACBW, SMEMBW, L1BW, L2BW, DRAMBW, DRAMLAT}
}

// Result is the execution-time prediction for one layer on one device.
type Result struct {
	Layer  layers.Conv
	Device string

	Cycles  float64 // per-SM execution cycles of the busiest SM
	Seconds float64

	Bottleneck Bottleneck

	// Per-main-loop stream times in cycles (Eq. 11-13).
	TCS  float64 // compute stream
	TSAS float64 // shared-memory access stream
	TGLS float64 // global load stream (latency + transfer, max over levels)

	// Per-main-loop bandwidth-only transfer times per level (Eq. 18 inputs).
	TL1BW, TL2BW, TDRAMBW float64

	TPrologue float64 // Eq. 14
	TEpilogue float64 // Eq. 15 (DRAM path)

	// Candidate per-SM times (Eq. 16, 17, 18); Cycles is their max.
	TMACPath float64
	TLATPath float64
	TBWPath  float64

	ActiveCTAs  int
	CTAsPerSM   int // on the busiest SM
	MainLoops   int
	Utilization float64 // achieved MAC throughput / peak
}

// Model predicts execution time from a traffic estimate. The estimate must
// have been produced for the same device.
func Model(e traffic.Estimate, d gpu.Device) (Result, error) {
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	if e.Device != d.Name {
		return Result{}, fmt.Errorf("perf: estimate for %q evaluated on %q", e.Device, d.Name)
	}
	g := e.Grid
	tile := g.Tile
	const eb = layers.ElemBytes

	r := Result{Layer: e.Layer, Device: d.Name}
	r.MainLoops = g.MainLoops()
	r.ActiveCTAs = g.ActiveCTAs(d)
	r.CTAsPerSM = g.CTAsOnBusiestSM(d)

	// --- Eq. 13: compute stream. blkM*blkN*blkK MACs per loop per CTA.
	macPerClk := d.MACPerClkPerSM()
	r.TCS = float64(tile.BlkM) * float64(tile.BlkN) * float64(tile.BlkK) / macPerClk

	// --- Eq. 12: shared-memory access stream. Stores of both input tiles
	// plus every warp's loads share the SMEM datapath.
	smemStoreBytes := float64(tile.BlkM+tile.BlkN) * float64(tile.BlkK) * eb
	smemLoadBytes := float64(tile.WarpM+tile.WarpN) * float64(tile.BlkK) * eb * float64(tile.Warps())
	r.TSAS = smemStoreBytes/d.SMEMStoreBPerClk + smemLoadBytes/d.SMEMLoadBPerClk

	// --- Eq. 11: global load stream. Load latency plus transfer time at
	// each level; the slowest level paces the stream. L2/DRAM bandwidth is
	// shared by all SMs.
	r.TL1BW = e.PerLoopL1Bytes / d.L1BytesPerClkPerSM()
	r.TL2BW = e.PerLoopL2Bytes / d.L2BytesPerClkPerSM()
	r.TDRAMBW = e.PerLoopDRAMBytes / d.DRAMBytesPerClkPerSM()
	r.TGLS = math.Max(d.LatL1Clk+r.TL1BW,
		math.Max(d.LatL2Clk+r.TL2BW, d.LatDRAMClk+r.TDRAMBW))

	// --- Eq. 14: prologue. Only the first CTA's prologue is exposed; it
	// loads both input tiles from DRAM, stores them to SMEM, and primes the
	// first warp loads.
	prologueBytes := float64(tile.BlkM+tile.BlkN) * float64(tile.BlkK) * eb
	r.TPrologue = (d.LatDRAMClk + prologueBytes/d.DRAMBytesPerClkPerSM()) +
		(d.LatSMEMClk + prologueBytes/d.SMEMStoreBPerClk) +
		smemLoadBytes/d.SMEMLoadBPerClk

	// --- Eq. 15: epilogue. Every CTA writes its blkM x blkN accumulators
	// to DRAM.
	epiBytes := float64(tile.BlkM) * float64(tile.BlkN) * eb
	r.TEpilogue = epiBytes / d.DRAMBytesPerClk()

	loops := float64(r.MainLoops)
	perSM := float64(r.CTAsPerSM)

	// --- Eq. 16: compute/SMEM-paced execution (Fig. 10 cases 1 and 3).
	inner := math.Max(r.TCS, r.TSAS)
	r.TMACPath = r.TPrologue + (inner*loops+r.TEpilogue)*perSM

	// --- Eq. 17: latency-exposed execution (Fig. 10 case 2). The SM lacks
	// CTAs to hide tGLS, so each interleave group of ActiveCTAs advances
	// one loop per tGLS; the computation itself hides inside the load
	// window except for a 1/blkK pipeline tail (the paper's tCS/blkK term).
	tail := inner / float64(tile.BlkK)
	r.TLATPath = r.TPrologue + ((r.TGLS+tail)*loops+r.TEpilogue)*perSM/float64(r.ActiveCTAs)

	// --- Eq. 18: bandwidth-saturated execution (Fig. 10 case 4). Transfer
	// time at the saturated level paces every loop of every CTA.
	bwLoop := math.Max(r.TL1BW, math.Max(r.TL2BW, r.TDRAMBW))
	epiBW := r.epilogueAtBottleneck(d, epiBytes)
	r.TBWPath = r.TPrologue + (bwLoop*loops+epiBW)*perSM

	// The largest candidate is the execution time; its origin the bottleneck.
	r.Cycles = math.Max(r.TMACPath, math.Max(r.TLATPath, r.TBWPath))
	switch r.Cycles {
	case r.TBWPath:
		switch bwLoop {
		case r.TL1BW:
			r.Bottleneck = L1BW
		case r.TL2BW:
			r.Bottleneck = L2BW
		default:
			r.Bottleneck = DRAMBW
		}
	case r.TLATPath:
		r.Bottleneck = DRAMLAT
	default:
		if r.TCS >= r.TSAS {
			r.Bottleneck = MACBW
		} else {
			r.Bottleneck = SMEMBW
		}
	}
	r.Seconds = d.CyclesToSeconds(r.Cycles)
	r.Utilization = e.Layer.MACs() / (r.Cycles * macPerClk * float64(d.NumSM))
	if r.Utilization > 1 {
		r.Utilization = 1
	}
	return r, nil
}

// epilogueAtBottleneck returns Eq. 15's bottleneck variant: the epilogue
// write time charged against the saturated memory level. Like the per-loop
// terms it is per-CTA work charged against the SM's fair share of the
// level's bandwidth (the whole path is later multiplied by CTAs per SM);
// mixing whole-chip bandwidth in here made the Eq. 18 path drop
// discontinuously when rising traffic moved the bottleneck from L1 to L2.
func (r Result) epilogueAtBottleneck(d gpu.Device, epiBytes float64) float64 {
	switch {
	case r.TL1BW >= r.TL2BW && r.TL1BW >= r.TDRAMBW:
		return epiBytes / d.L1BytesPerClkPerSM()
	case r.TL2BW >= r.TDRAMBW:
		return epiBytes / d.L2BytesPerClkPerSM()
	default:
		return epiBytes / d.DRAMBytesPerClkPerSM()
	}
}

// ModelLayer is a convenience wrapper: traffic model then performance model.
func ModelLayer(l layers.Conv, d gpu.Device, opt traffic.Options) (Result, error) {
	e, err := traffic.Model(l, d, opt)
	if err != nil {
		return Result{}, err
	}
	return Model(e, d)
}

// ModelAll evaluates a layer list, failing fast on the first error.
func ModelAll(ls []layers.Conv, d gpu.Device, opt traffic.Options) ([]Result, error) {
	out := make([]Result, 0, len(ls))
	for _, l := range ls {
		r, err := ModelLayer(l, d, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// NetworkTime sums layer execution times weighted by per-layer replication
// counts (counts may be nil for all-ones). Used by the scaling study, where
// a network's forward time is the sum over all conv-layer instances.
func NetworkTime(rs []Result, counts []int) float64 {
	var total float64
	for i, r := range rs {
		c := 1
		if counts != nil {
			c = counts[i]
		}
		total += r.Seconds * float64(c)
	}
	return total
}

// BottleneckHistogram counts layers per bottleneck, weighted by counts
// (nil for all-ones). It reproduces Fig. 16c's distributions.
func BottleneckHistogram(rs []Result, counts []int) map[Bottleneck]int {
	h := make(map[Bottleneck]int)
	for i, r := range rs {
		c := 1
		if counts != nil {
			c = counts[i]
		}
		h[r.Bottleneck] += c
	}
	return h
}
