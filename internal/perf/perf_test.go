package perf

import (
	"math"
	"testing"
	"testing/quick"

	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/traffic"
)

var xp = gpu.TitanXp()

func mustResult(t *testing.T, l layers.Conv, d gpu.Device) Result {
	t.Helper()
	r, err := ModelLayer(l, d, traffic.Options{})
	if err != nil {
		t.Fatalf("ModelLayer(%s): %v", l.Name, err)
	}
	return r
}

func TestBottleneckString(t *testing.T) {
	want := []string{"MAC_BW", "SMEM_BW", "L1_BW", "L2_BW", "DRAM_BW", "DRAM_LAT"}
	for i, b := range Bottlenecks() {
		if b.String() != want[i] {
			t.Errorf("bottleneck %d = %q, want %q", i, b.String(), want[i])
		}
	}
	if s := Bottleneck(99).String(); s != "Bottleneck(99)" {
		t.Errorf("out-of-range String = %q", s)
	}
}

func TestComputeBoundLayer(t *testing.T) {
	// A deep 3x3 conv with a modest feature map is the canonical
	// compute-bound case (90% of the paper's layers are MAC-bound).
	l := layers.Conv{Name: "cb", B: 256, Ci: 256, Hi: 13, Wi: 13, Co: 384, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	r := mustResult(t, l, xp)
	if r.Bottleneck != MACBW {
		t.Errorf("bottleneck = %v, want MAC_BW (tCS=%.0f tSAS=%.0f tGLS=%.0f)",
			r.Bottleneck, r.TCS, r.TSAS, r.TGLS)
	}
	// Lower bound: pure-MAC time = MACs / (peak MACs/clk).
	ideal := l.MACs() / (xp.MACPerClkPerSM() * float64(xp.NumSM))
	if r.Cycles < ideal {
		t.Errorf("cycles %v below the arithmetic lower bound %v", r.Cycles, ideal)
	}
	if r.Cycles > ideal*3 {
		t.Errorf("compute-bound layer %vx off the arithmetic bound", r.Cycles/ideal)
	}
	if r.Utilization < 0.3 || r.Utilization > 1 {
		t.Errorf("utilization = %v", r.Utilization)
	}
}

func TestTCSMatchesEq13(t *testing.T) {
	l := layers.Conv{Name: "eq13", B: 256, Ci: 64, Hi: 56, Wi: 56, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	r := mustResult(t, l, xp)
	// (128*128*8) MACs / 128 MAC/clk = 1024 clk.
	want := 128.0 * 128 * 8 / xp.MACPerClkPerSM()
	if math.Abs(r.TCS-want) > 1e-9 {
		t.Errorf("TCS = %v, want %v", r.TCS, want)
	}
}

func TestTSASMatchesEq12(t *testing.T) {
	l := layers.Conv{Name: "eq12", B: 256, Ci: 64, Hi: 56, Wi: 56, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	r := mustResult(t, l, xp)
	// Stores: (128+128)*8*4 = 8192 B at 128 B/clk = 64 clk.
	// Loads: (64+32)*8*4*8 warps = 24576 B at 128 B/clk = 192 clk.
	if want := 64.0 + 192.0; math.Abs(r.TSAS-want) > 1e-9 {
		t.Errorf("TSAS = %v, want %v", r.TSAS, want)
	}
}

func TestGLSIncludesLatencyFloor(t *testing.T) {
	l := layers.Conv{Name: "gls", B: 256, Ci: 64, Hi: 56, Wi: 56, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	r := mustResult(t, l, xp)
	if r.TGLS < xp.LatDRAMClk {
		t.Errorf("TGLS = %v below DRAM pipeline latency %v", r.TGLS, xp.LatDRAMClk)
	}
}

func TestMemoryBoundWhenComputeScaled(t *testing.T) {
	// Scaling MAC throughput 8x with unchanged memory must shift the
	// bottleneck off MAC_BW for a large-feature layer (the premise of the
	// scaling study).
	l := layers.Conv{Name: "mb", B: 256, Ci: 64, Hi: 112, Wi: 112, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	fast := (gpu.Scale{MACPerSM: 8}).Apply(xp)
	r, err := ModelLayer(l, fast, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Bottleneck == MACBW {
		t.Errorf("8x-MAC device still MAC-bound (tCS=%v tGLS=%v tBW=%v)", r.TCS, r.TGLS, r.TBWPath)
	}
}

func TestLatencyBoundTinyLayer(t *testing.T) {
	// A layer with very few CTAs cannot hide DRAM latency: the Eq. 17 path
	// should dominate or at least exceed the pure-compute path.
	l := layers.Conv{Name: "tiny", B: 1, Ci: 32, Hi: 7, Wi: 7, Co: 64, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	r := mustResult(t, l, xp)
	if r.TLATPath <= r.TMACPath {
		t.Errorf("tiny layer: TLATPath %v should exceed TMACPath %v", r.TLATPath, r.TMACPath)
	}
	if r.Bottleneck != DRAMLAT {
		t.Errorf("bottleneck = %v, want DRAM_LAT", r.Bottleneck)
	}
}

func TestCyclesIsMaxOfCandidates(t *testing.T) {
	l := layers.Conv{Name: "max", B: 64, Ci: 192, Hi: 28, Wi: 28, Co: 96, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	r := mustResult(t, l, xp)
	want := math.Max(r.TMACPath, math.Max(r.TLATPath, r.TBWPath))
	if r.Cycles != want {
		t.Errorf("Cycles = %v, want max of candidates %v", r.Cycles, want)
	}
	if r.Seconds != xp.CyclesToSeconds(r.Cycles) {
		t.Errorf("Seconds inconsistent with Cycles")
	}
}

func TestDeviceMismatchRejected(t *testing.T) {
	l := layers.Conv{Name: "mm", B: 8, Ci: 16, Hi: 14, Wi: 14, Co: 32, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	e, err := traffic.Model(l, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Model(e, gpu.V100()); err == nil {
		t.Error("cross-device estimate accepted")
	}
}

func TestNetworkTimeAndHistogram(t *testing.T) {
	ls := []layers.Conv{
		{Name: "a", B: 64, Ci: 64, Hi: 28, Wi: 28, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
		{Name: "b", B: 64, Ci: 128, Hi: 14, Wi: 14, Co: 256, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
	}
	rs, err := ModelAll(ls, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	unweighted := NetworkTime(rs, nil)
	if unweighted != rs[0].Seconds+rs[1].Seconds {
		t.Error("unweighted NetworkTime mismatch")
	}
	weighted := NetworkTime(rs, []int{3, 2})
	if math.Abs(weighted-(3*rs[0].Seconds+2*rs[1].Seconds)) > 1e-18 {
		t.Error("weighted NetworkTime mismatch")
	}
	h := BottleneckHistogram(rs, []int{3, 2})
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 5 {
		t.Errorf("histogram total = %d, want 5", total)
	}
}

func quickLayer(b, ci, hw, co, fs uint8) layers.Conv {
	f := 1 + 2*(int(fs)%3)
	return layers.Conv{
		Name: "q", B: 1 + int(b)%64, Ci: 1 + int(ci)%512,
		Hi: 4 + int(hw)%64, Wi: 4 + int(hw)%64,
		Co: 1 + int(co)%512, Hf: f, Wf: f,
		Stride: 1, Pad: f / 2,
	}
}

// TestQuickPositiveAndBounded: every prediction is positive, finite, and at
// least the arithmetic lower bound.
func TestQuickPositiveAndBounded(t *testing.T) {
	devs := gpu.All()
	f := func(b, ci, hw, co, fs, di uint8) bool {
		l := quickLayer(b, ci, hw, co, fs)
		if l.Validate() != nil {
			return true
		}
		d := devs[int(di)%len(devs)]
		r, err := ModelLayer(l, d, traffic.Options{})
		if err != nil {
			return false
		}
		ideal := l.MACs() / (d.MACPerClkPerSM() * float64(d.NumSM))
		return r.Cycles > 0 && !math.IsInf(r.Cycles, 0) && !math.IsNaN(r.Cycles) &&
			r.Cycles >= ideal*0.99 &&
			r.Utilization > 0 && r.Utilization <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickMoreComputeNeverSlower: scaling MAC throughput up never increases
// predicted execution time.
func TestQuickMoreComputeNeverSlower(t *testing.T) {
	f := func(b, ci, hw, co, fs uint8) bool {
		l := quickLayer(b, ci, hw, co, fs)
		if l.Validate() != nil {
			return true
		}
		base, err := ModelLayer(l, xp, traffic.Options{})
		if err != nil {
			return false
		}
		fast, err := ModelLayer(l, (gpu.Scale{MACPerSM: 2}).Apply(xp), traffic.Options{})
		if err != nil {
			return false
		}
		return fast.Cycles <= base.Cycles*1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickMoreBandwidthNeverSlower: scaling all memory bandwidths up never
// increases predicted execution time.
func TestQuickMoreBandwidthNeverSlower(t *testing.T) {
	f := func(b, ci, hw, co, fs uint8) bool {
		l := quickLayer(b, ci, hw, co, fs)
		if l.Validate() != nil {
			return true
		}
		base, err := ModelLayer(l, xp, traffic.Options{})
		if err != nil {
			return false
		}
		d := (gpu.Scale{L1BW: 2, L2BW: 2, DRAMBW: 2, SMEMBW: 2}).Apply(xp)
		fast, err := ModelLayer(l, d, traffic.Options{})
		if err != nil {
			return false
		}
		return fast.Cycles <= base.Cycles*1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
