// Whole-network and design-space entry points: the batch shapes every
// consumer needs, built on EvaluateAll so they inherit the worker pool,
// cancellation, and memo cache.

package pipeline

import (
	"context"
	"fmt"

	"delta/internal/backprop"
	"delta/internal/cnn"
	"delta/internal/explore"
	"delta/internal/gpu"
	"delta/internal/perf"
	"delta/internal/scenario"
	"delta/internal/traffic"
)

// NetworkRequest names a whole-network evaluation.
type NetworkRequest struct {
	Net    cnn.Network
	Device gpu.Device

	Options  traffic.Options
	Model    Model
	Pass     Pass
	MissRate float64
}

// NetworkResult aggregates per-layer results the way the serial helpers do.
type NetworkResult struct {
	Net     string
	Device  string
	Model   Model
	Pass    Pass
	Results []Result

	// Seconds is the count-weighted network time (perf.NetworkTime order).
	Seconds float64

	// Bottlenecks is the count-weighted histogram (inference delta/prior
	// requests only; nil otherwise).
	Bottlenecks map[perf.Bottleneck]int
}

// Network evaluates every layer of a network concurrently and aggregates
// exactly like the serial perf.NetworkTime / backprop.NetworkStep paths.
func (e *Evaluator) Network(ctx context.Context, nr NetworkRequest) (NetworkResult, error) {
	// Counts may be nil (all ones, as in perf.NetworkTime); per-layer and
	// device validation happens inside each request.
	if nr.Net.Counts != nil && len(nr.Net.Counts) != len(nr.Net.Layers) {
		return NetworkResult{}, fmt.Errorf("pipeline: network %q: %d counts for %d layers",
			nr.Net.Name, len(nr.Net.Counts), len(nr.Net.Layers))
	}
	reqs := make([]Request, len(nr.Net.Layers))
	for i, l := range nr.Net.Layers {
		reqs[i] = Request{
			Layer: l, Device: nr.Device, Options: nr.Options,
			Model: nr.Model, Pass: nr.Pass, MissRate: nr.MissRate,
			SkipDgrad: nr.Pass == PassTraining && i == 0,
		}
	}
	rs, err := e.EvaluateAll(ctx, reqs)
	if err != nil {
		return NetworkResult{}, err
	}
	out := NetworkResult{Net: nr.Net.Name, Device: nr.Device.Name, Results: rs}
	if len(rs) > 0 {
		out.Model, out.Pass = rs[0].Model, rs[0].Pass
	}
	counts := nr.Net.Counts
	for i, r := range rs {
		c := 1
		if counts != nil {
			c = counts[i]
		}
		out.Seconds += r.Seconds * float64(c)
	}
	if out.Pass == PassInference && out.Model != ModelRoofline {
		out.Bottlenecks = make(map[perf.Bottleneck]int)
		for i, r := range rs {
			c := 1
			if counts != nil {
				c = counts[i]
			}
			out.Bottlenecks[r.Perf.Bottleneck] += c
		}
	}
	return out, nil
}

// Training evaluates a network's full training step layer-concurrently,
// returning the same steps and weighted total as backprop.NetworkStep.
func (e *Evaluator) Training(ctx context.Context, net cnn.Network, d gpu.Device, opt traffic.Options) ([]backprop.Step, float64, error) {
	nr, err := e.Network(ctx, NetworkRequest{Net: net, Device: d, Options: opt, Pass: PassTraining})
	if err != nil {
		return nil, 0, err
	}
	steps := make([]backprop.Step, len(nr.Results))
	for i, r := range nr.Results {
		steps[i] = r.Training
	}
	return steps, nr.Seconds, nil
}

// Explore prices and times every candidate scale against the baseline,
// returning candidates identical to the serial explore.Evaluate. The grid
// is expressed as a scenario — one workload across the base + scaled
// device axis — and streamed through the pipeline, so the scales × layers
// fan-out shares the worker pool and the memo cache collapses the
// duplicate layer configurations design grids re-evaluate.
func (e *Evaluator) Explore(ctx context.Context, w explore.Workload, base gpu.Device, scales []gpu.Scale, cm explore.CostModel) ([]explore.Candidate, error) {
	if len(w.Net.Layers) == 0 {
		return nil, fmt.Errorf("pipeline: explore workload %q has no layers", w.Net.Name)
	}
	devices := make([]gpu.Device, 0, 1+len(scales))
	devices = append(devices, base)
	for _, s := range scales {
		devices = append(devices, s.Apply(base))
	}
	upds, err := e.RunScenario(ctx, scenario.Scenario{
		Name:      "explore:" + w.Net.Name,
		Workloads: []scenario.Workload{{Net: w.Net}},
		Devices:   devices,
		Options:   []traffic.Options{w.Opt},
	})
	if err != nil {
		return nil, err
	}
	// One update per device, in device-axis order; NetworkResult.Seconds
	// is the layer-order weighted sum the serial path computes.
	baseTime := upds[0].Network.Seconds
	out := make([]explore.Candidate, 0, len(scales))
	for si, s := range scales {
		t := upds[si+1].Network.Seconds
		out = append(out, explore.Candidate{Scale: s, Cost: cm.Cost(s), Speedup: baseTime / t})
	}
	return out, nil
}
