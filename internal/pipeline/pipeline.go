// Package pipeline is the unified concurrent evaluation path of the
// repository: every consumer — the facade, the CLIs, the experiment
// drivers, and the HTTP server — funnels layer evaluations through one
// Evaluator instead of wiring traffic/perf/prior/roofline/backprop
// separately.
//
// A Request names what to evaluate (layer, device, model variant, pass);
// the Evaluator answers with a Result. Batch entry points (EvaluateAll,
// Network, Training, Explore) fan the embarrassingly parallel per-layer
// evaluations out across a worker pool sized to GOMAXPROCS, honor
// context.Context cancellation, and memoize per-(layer, device, options)
// results so repeated unique layers and grid re-evaluations are computed
// once. Results are bit-identical to the serial paths they subsume: workers
// only parallelize independent layer evaluations, and aggregation follows
// the exact serial summation order.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"delta/internal/backprop"
	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/perf"
	"delta/internal/prior"
	"delta/internal/roofline"
	"delta/internal/sim/trace"
	"delta/internal/traffic"
)

// Model selects the analytical model variant a Request evaluates.
type Model string

const (
	// ModelDelta is the paper's traffic + performance model (the default).
	ModelDelta Model = "delta"
	// ModelPrior is the fixed-miss-rate baseline (Hong & Kim style).
	ModelPrior Model = "prior"
	// ModelRoofline is the classical roofline baseline.
	ModelRoofline Model = "roofline"
)

// Pass selects forward-only or full training-step evaluation.
type Pass string

const (
	// PassInference evaluates the forward GEMM only (the default).
	PassInference Pass = "inference"
	// PassTraining evaluates fprop + dgrad + wgrad (ModelDelta only).
	PassTraining Pass = "training"
)

// Request names one layer evaluation.
type Request struct {
	Layer   layers.Conv
	Device  gpu.Device
	Options traffic.Options

	Model Model // "" means ModelDelta
	Pass  Pass  // "" means PassInference

	// MissRate parameterizes ModelPrior (0 means 1.0, the setting prior
	// work advocates).
	MissRate float64

	// SkipDgrad marks a training-pass layer as the network's first conv
	// (no upstream layer to feed a data gradient).
	SkipDgrad bool
}

// normalized returns the request with defaults applied.
func (r Request) normalized() Request {
	if r.Model == "" {
		r.Model = ModelDelta
	}
	if r.Pass == "" {
		r.Pass = PassInference
	}
	if r.Model == ModelPrior && r.MissRate == 0 {
		r.MissRate = 1.0
	}
	if r.Model != ModelPrior {
		r.MissRate = 0
	}
	if r.Pass != PassTraining {
		r.SkipDgrad = false
	}
	return r
}

// Validate rejects malformed requests before any model runs.
func (r Request) Validate() error {
	n := r.normalized()
	switch n.Model {
	case ModelDelta, ModelPrior, ModelRoofline:
	default:
		return fmt.Errorf("pipeline: unknown model %q", r.Model)
	}
	switch n.Pass {
	case PassInference:
	case PassTraining:
		if n.Model != ModelDelta {
			return fmt.Errorf("pipeline: training pass requires the delta model, got %q", n.Model)
		}
	default:
		return fmt.Errorf("pipeline: unknown pass %q", r.Pass)
	}
	if n.MissRate < 0 || n.MissRate > 1 {
		return fmt.Errorf("pipeline: miss rate %v outside (0, 1]", n.MissRate)
	}
	if err := n.Layer.Validate(); err != nil {
		return err
	}
	return n.Device.Validate()
}

// Result is the unified answer to a Request. Seconds is always populated;
// the model-specific fields are filled according to Model and Pass.
type Result struct {
	Layer  layers.Conv
	Device string
	Model  Model
	Pass   Pass

	// Seconds is the predicted execution time of the request's unit of
	// work: the forward GEMM for inference, the whole fprop+dgrad+wgrad
	// step for training.
	Seconds float64

	// Traffic holds the per-level traffic estimate behind Perf (the
	// fixed-miss-rate rewrite for ModelPrior). Unset for ModelRoofline.
	Traffic traffic.Estimate

	// Perf is the performance-model prediction for inference requests of
	// ModelDelta and ModelPrior.
	Perf perf.Result

	// Training is the per-GEMM breakdown for PassTraining.
	Training backprop.Step

	// Roofline is the baseline prediction for ModelRoofline.
	Roofline roofline.Result
}

// Stats reports the evaluator's observability counters: cache
// effectiveness, cache occupancy, and scenario-stream progress. The
// serving layer scrapes these into /metrics.
type Stats struct {
	Hits   uint64
	Misses uint64

	// Entries is the memo cache's current entry count (may transiently
	// overshoot the cap by in-flight concurrent inserts).
	Entries uint64

	// ScenarioPoints counts scenario points evaluated by Stream /
	// RunScenario over the evaluator's lifetime (memo-hit points included).
	ScenarioPoints uint64

	// StreamHits / StreamMisses / StreamEntries report the shared
	// stream-cache tier backing the evaluator's engine runs (all zero when
	// stream sharing is disabled): coalesced tile streams served from the
	// tier vs generated, and current tier occupancy.
	StreamHits    uint64
	StreamMisses  uint64
	StreamEntries uint64

	// ReplayPartitions is the L2 replay-partition count the evaluator
	// applies to simulation requests that leave the knob unset (0 = serial
	// replay).
	ReplayPartitions uint64
}

// DefaultCacheLimit caps the memo cache's entry count unless overridden
// with WithCacheLimit. Results are ~1.5 KB each, so the default bounds a
// long-running server (whose cache keys include client-supplied layer and
// device values) to roughly 100 MB of memoized results.
const DefaultCacheLimit = 1 << 16

// Evaluator runs requests through the model stack with a worker pool and a
// memoizing cache. The zero value is not usable; construct with New. An
// Evaluator is safe for concurrent use by multiple goroutines.
//
// The memo cache is two typed maps (analytical requests and simulation
// requests) behind RWMutexes rather than one sync.Map: the keys are large
// structs (layer + device + options, ~500 B), and boxing one into an
// interface on every lookup made a cache hit allocate more than the
// analytical models it was saving — the "warm slower than cold" scenario
// regression. Typed maps hash the key in place; a hit is allocation-free.
type Evaluator struct {
	workers     int
	noCache     bool
	cacheLimit  int
	noStreams   bool
	replayParts int

	// streams is the shared stream-cache tier handed to every engine run
	// (unless the request brings its own): scenario sweeps and repeated
	// simulations regenerate coalesced tile streams once per identity
	// instead of once per run. Sharing never changes counters — streams
	// are pure functions of their identity — so it composes freely with
	// the memo cache.
	streams *trace.SharedStreams

	ana       memoMap[cacheKey]
	sim       memoMap[simKey]
	cacheSize atomic.Int64
	hits      atomic.Uint64
	misses    atomic.Uint64
	points    atomic.Uint64

	// Device interning: gpu.Device is ~200 bytes of the analytical cache
	// key but has tiny cardinality (a sweep uses a handful of devices), so
	// keys store a small id instead and lookups hash ~60% fewer bytes.
	// lastDev short-circuits the intern map for the overwhelmingly common
	// case of consecutive evaluations on one device: a single struct
	// compare instead of a map probe.
	devMu   sync.Mutex
	devIDs  map[gpu.Device]uint32
	lastDev atomic.Pointer[devEntry]
}

type devEntry struct {
	d  gpu.Device
	id uint32
}

// internDevice resolves a device to its small key id, allocating one on
// first sight. ok is false when the intern table is full (the cache limit
// bounds it like everything else); the caller then computes uncached.
func (e *Evaluator) internDevice(d gpu.Device) (id uint32, ok bool) {
	if ent := e.lastDev.Load(); ent != nil && ent.d == d {
		return ent.id, true
	}
	e.devMu.Lock()
	id, ok = e.devIDs[d]
	if !ok {
		if len(e.devIDs) >= e.cacheLimit {
			e.devMu.Unlock()
			return 0, false
		}
		if e.devIDs == nil {
			e.devIDs = make(map[gpu.Device]uint32)
		}
		id = uint32(len(e.devIDs))
		e.devIDs[d] = id
		ok = true
	}
	e.devMu.Unlock()
	e.lastDev.Store(&devEntry{d: d, id: id})
	return id, ok
}

// memoMap is one typed shard of the memo cache.
type memoMap[K comparable] struct {
	mu sync.RWMutex
	m  map[K]*cacheEntry
}

// cacheKey is the comparable identity of a Request after normalization.
// The device rides as an interned id (see internDevice), keeping the
// hashed key small.
type cacheKey struct {
	layer     layers.Conv
	device    uint32
	options   traffic.Options
	model     Model
	pass      Pass
	missRate  float64
	skipDgrad bool
}

// cacheEntry memoizes one computation (an analytical Result or an
// engine.Result); once guarantees a single computation even under
// concurrent first lookups of the same key.
type cacheEntry struct {
	once sync.Once
	res  any
	err  error
}

// Option configures an Evaluator.
type Option func(*Evaluator)

// WithWorkers caps the worker pool (n < 1 restores the GOMAXPROCS default).
func WithWorkers(n int) Option {
	return func(e *Evaluator) { e.workers = n }
}

// WithoutCache disables memoization (every request recomputes).
func WithoutCache() Option {
	return func(e *Evaluator) { e.noCache = true }
}

// WithCacheLimit overrides the memo cache's entry cap (n < 1 restores
// DefaultCacheLimit). Once full, further distinct requests compute without
// being stored; already-cached entries keep serving hits.
func WithCacheLimit(n int) Option {
	return func(e *Evaluator) { e.cacheLimit = n }
}

// WithoutStreamSharing disables the shared stream-cache tier: every engine
// run regenerates its tile streams privately (the pre-tier behaviour).
// Mostly useful for benchmarking the tier itself.
func WithoutStreamSharing() Option {
	return func(e *Evaluator) { e.noStreams = true }
}

// WithReplayPartitions sets the L2 replay-partition count applied to
// simulation requests that leave Config.ReplayPartitions unset (n < 2
// keeps the replay serial). Counters are bit-identical at every setting.
func WithReplayPartitions(n int) Option {
	return func(e *Evaluator) {
		if n < 2 {
			n = 0
		}
		e.replayParts = n
	}
}

// New constructs an Evaluator; by default the pool is GOMAXPROCS wide and
// the cache is enabled with DefaultCacheLimit entries.
func New(opts ...Option) *Evaluator {
	e := &Evaluator{}
	for _, o := range opts {
		o(e)
	}
	if e.cacheLimit < 1 {
		e.cacheLimit = DefaultCacheLimit
	}
	if !e.noStreams {
		e.streams = trace.NewSharedStreams(0)
	}
	return e
}

var (
	defaultOnce sync.Once
	defaultEval *Evaluator
)

// Default returns the process-wide shared Evaluator, so independent callers
// (facade helpers, CLIs, server handlers) share one memo cache.
func Default() *Evaluator {
	defaultOnce.Do(func() { defaultEval = New() })
	return defaultEval
}

// Stats returns the observability counters so far.
func (e *Evaluator) Stats() Stats {
	size := e.cacheSize.Load()
	if size < 0 {
		size = 0
	}
	st := Stats{
		Hits: e.hits.Load(), Misses: e.misses.Load(),
		Entries: uint64(size), ScenarioPoints: e.points.Load(),
		ReplayPartitions: uint64(e.replayParts),
	}
	if e.streams != nil {
		ss := e.streams.Stats()
		st.StreamHits, st.StreamMisses, st.StreamEntries = ss.Hits, ss.Misses, ss.Entries
	}
	return st
}

// width returns the configured worker-pool width (uncapped by batch size).
func (e *Evaluator) width() int {
	w := e.workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (e *Evaluator) poolSize(n int) int {
	w := e.width()
	if w > n {
		w = n
	}
	return w
}

// Evaluate answers one request, consulting the cache first.
func (e *Evaluator) Evaluate(ctx context.Context, req Request) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	req = req.normalized()
	if err := req.Validate(); err != nil {
		return Result{}, err
	}
	if e.noCache {
		return evalOne(req)
	}
	dev, ok := e.internDevice(req.Device)
	if !ok {
		e.misses.Add(1)
		return evalOne(req)
	}
	key := cacheKey{
		layer: req.Layer, device: dev, options: req.Options,
		model: req.Model, pass: req.Pass,
		missRate: req.MissRate, skipDgrad: req.SkipDgrad,
	}
	v, err := memoize(e, &e.ana, key, func() (any, error) { return evalOne(req) })
	if err != nil {
		return Result{}, err
	}
	return v.(Result), nil
}

// memoize answers computations through the capped memo cache: the first
// lookup of a key computes (exactly once, even under concurrent first
// lookups), later lookups are served from the stored entry. The hit path
// is one RLock and one typed map probe — no allocation, so a memo hit is
// always cheaper than recomputing.
func memoize[K comparable](e *Evaluator, mm *memoMap[K], key K, compute func() (any, error)) (any, error) {
	mm.mu.RLock()
	ent, loaded := mm.m[key]
	mm.mu.RUnlock()
	if !loaded {
		// Cap the cache: once full, distinct new requests compute without
		// being stored (existing entries keep serving hits). The counter
		// may overshoot by in-flight concurrent inserts; that slack is
		// bounded by the worker count and harmless.
		if e.cacheSize.Load() >= int64(e.cacheLimit) {
			e.misses.Add(1)
			return compute()
		}
		mm.mu.Lock()
		if mm.m == nil {
			mm.m = make(map[K]*cacheEntry)
		}
		ent, loaded = mm.m[key]
		if !loaded {
			ent = new(cacheEntry)
			mm.m[key] = ent
			e.cacheSize.Add(1)
		}
		mm.mu.Unlock()
	}
	computed := false
	ent.once.Do(func() {
		ent.res, ent.err = compute()
		computed = true
	})
	if computed || !loaded {
		e.misses.Add(1)
	} else {
		e.hits.Add(1)
	}
	return ent.res, ent.err
}

// evalOne dispatches a normalized, validated request to the model stack.
func evalOne(req Request) (Result, error) {
	out := Result{Layer: req.Layer, Device: req.Device.Name, Model: req.Model, Pass: req.Pass}
	switch {
	case req.Pass == PassTraining:
		st, err := backprop.ModelStep(req.Layer, req.Device, req.Options, req.SkipDgrad)
		if err != nil {
			return Result{}, err
		}
		out.Training = st
		out.Perf = st.Fprop
		out.Seconds = st.Seconds()
	case req.Model == ModelRoofline:
		r, err := roofline.Model(req.Layer, req.Device)
		if err != nil {
			return Result{}, err
		}
		out.Roofline = r
		out.Seconds = r.Seconds
	default: // delta or prior inference
		est, err := traffic.Model(req.Layer, req.Device, req.Options)
		if err != nil {
			return Result{}, err
		}
		if req.Model == ModelPrior {
			est = prior.FixMissRate(est, req.MissRate)
		}
		r, err := perf.Model(est, req.Device)
		if err != nil {
			return Result{}, err
		}
		out.Traffic = est
		out.Perf = r
		out.Seconds = r.Seconds
	}
	return out, nil
}

// EvaluateAll answers a batch of requests, fanning out across the worker
// pool. Results are index-aligned with the requests. On error the lowest
// failing index wins (matching serial fail-fast semantics) and in-flight
// work is cancelled.
func (e *Evaluator) EvaluateAll(ctx context.Context, reqs []Request) ([]Result, error) {
	if len(reqs) == 0 {
		return nil, ctx.Err()
	}
	out := make([]Result, len(reqs))
	err := e.forEach(ctx, len(reqs), func(ctx context.Context, i int) error {
		r, err := e.Evaluate(ctx, reqs[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// forEach runs fn(i) for every index in [0, n) across the worker pool,
// honoring context cancellation. On error the lowest failing index wins
// (serial fail-fast semantics) and in-flight work is cancelled. It is the
// fan-out primitive under every batch entry point (analytical evaluations
// and trace-driven simulations alike).
func (e *Evaluator) forEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	workers := e.poolSize(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = -1
		first  error
	)
	isCtxErr := func(err error) bool {
		return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	}
	// fail records the batch error: a real model error always beats the
	// context errors that cancellation then floods the other workers with,
	// and among real errors the lowest index wins (serial fail-fast order).
	fail := func(i int, err error) {
		mu.Lock()
		switch {
		case errIdx == -1,
			isCtxErr(first) && !isCtxErr(err),
			isCtxErr(first) == isCtxErr(err) && i < errIdx:
			errIdx, first = i, err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(i, err)
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if errIdx != -1 {
		return first
	}
	return nil
}
