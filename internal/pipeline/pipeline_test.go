package pipeline

import (
	"context"
	"errors"
	"sync"
	"testing"

	"delta/internal/backprop"
	"delta/internal/cnn"
	"delta/internal/explore"
	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/perf"
	"delta/internal/prior"
	"delta/internal/roofline"
	"delta/internal/traffic"
)

var xp = gpu.TitanXp()

func ctxBg() context.Context { return context.Background() }

// TestParityDeltaInference: pipeline results are identical (==, not just
// approximately equal) to the serial perf.ModelAll path, for every paper
// network on every device and worker-pool width.
func TestParityDeltaInference(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		e := New(WithWorkers(workers))
		for _, d := range gpu.All() {
			for _, net := range cnn.PaperSuite(8) {
				serial, err := perf.ModelAll(net.Layers, d, traffic.Options{})
				if err != nil {
					t.Fatal(err)
				}
				nr, err := e.Network(ctxBg(), NetworkRequest{Net: net, Device: d})
				if err != nil {
					t.Fatal(err)
				}
				if len(nr.Results) != len(serial) {
					t.Fatalf("%s/%s: %d results, want %d", d.Name, net.Name, len(nr.Results), len(serial))
				}
				for i := range serial {
					if nr.Results[i].Perf != serial[i] {
						t.Fatalf("%s/%s layer %d: pipeline != serial\n%+v\n%+v",
							d.Name, net.Name, i, nr.Results[i].Perf, serial[i])
					}
				}
				if want := perf.NetworkTime(serial, net.Counts); nr.Seconds != want {
					t.Fatalf("%s/%s: network time %v, want %v", d.Name, net.Name, nr.Seconds, want)
				}
			}
		}
	}
}

// TestParityPriorAndRoofline: the model-variant dispatch matches the serial
// baseline entry points bit for bit.
func TestParityPriorAndRoofline(t *testing.T) {
	e := New()
	l := layers.Conv{Name: "p", B: 32, Ci: 192, Hi: 28, Wi: 28, Co: 96, Hf: 5, Wf: 5, Stride: 1, Pad: 2}
	for _, mr := range prior.MissRates() {
		want, err := prior.Model(l, xp, mr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Evaluate(ctxBg(), Request{Layer: l, Device: xp, Model: ModelPrior, MissRate: mr})
		if err != nil {
			t.Fatal(err)
		}
		if got.Perf != want {
			t.Fatalf("mr=%v: prior mismatch", mr)
		}
	}
	want, err := roofline.Model(l, xp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Evaluate(ctxBg(), Request{Layer: l, Device: xp, Model: ModelRoofline})
	if err != nil {
		t.Fatal(err)
	}
	if got.Roofline != want || got.Seconds != want.Seconds {
		t.Fatal("roofline mismatch")
	}
}

// TestParityTraining: layer-concurrent training equals backprop.NetworkStep.
func TestParityTraining(t *testing.T) {
	e := New()
	net := cnn.AlexNet(16)
	wantSteps, wantTotal, err := backprop.NetworkStep(net.Layers, net.Counts, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	steps, total, err := e.Training(ctxBg(), net, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal || len(steps) != len(wantSteps) {
		t.Fatalf("total %v (want %v), %d steps (want %d)", total, wantTotal, len(steps), len(wantSteps))
	}
	for i := range steps {
		if steps[i] != wantSteps[i] {
			t.Fatalf("step %d differs", i)
		}
	}
	if !steps[0].SkipDgrad {
		t.Error("first layer should skip dgrad")
	}
}

// TestParityExplore: the concurrent design-space sweep returns candidates
// identical to the serial explore.Evaluate.
func TestParityExplore(t *testing.T) {
	e := New()
	net := cnn.GoogLeNet(8)
	w := explore.Workload{Net: net}
	scales := explore.DefaultAxes().Enumerate()
	cm := explore.DefaultCostModel()
	want, err := explore.Evaluate(w, xp, scales, cm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Explore(ctxBg(), w, xp, scales, cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d candidates, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidate %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestCacheMemoizes: re-evaluating the same requests hits the cache, and
// duplicate layers inside one batch are computed once.
func TestCacheMemoizes(t *testing.T) {
	e := New()
	l := layers.Conv{Name: "c", B: 16, Ci: 64, Hi: 14, Wi: 14, Co: 64, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Layer: l, Device: xp}
	}
	if _, err := e.EvaluateAll(ctxBg(), reqs); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1 (single unique request)", s.Misses)
	}
	if s.Hits != 63 {
		t.Errorf("hits = %d, want 63", s.Hits)
	}
	if _, err := e.Evaluate(ctxBg(), Request{Layer: l, Device: xp}); err != nil {
		t.Fatal(err)
	}
	if s = e.Stats(); s.Hits != 64 {
		t.Errorf("hits after re-evaluate = %d, want 64", s.Hits)
	}
	// A different device is a different key.
	if _, err := e.Evaluate(ctxBg(), Request{Layer: l, Device: gpu.V100()}); err != nil {
		t.Fatal(err)
	}
	if s = e.Stats(); s.Misses != 2 {
		t.Errorf("misses after new device = %d, want 2", s.Misses)
	}
}

// TestCacheLimit: once the entry cap is reached, new distinct requests
// still evaluate correctly but are not stored; cached entries keep hitting.
func TestCacheLimit(t *testing.T) {
	e := New(WithCacheLimit(2))
	mk := func(co int) Request {
		return Request{
			Layer:  layers.Conv{Name: "lim", B: 8, Ci: 32, Hi: 14, Wi: 14, Co: co, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
			Device: xp,
		}
	}
	for _, co := range []int{32, 64, 96, 128} {
		want, err := perf.ModelLayer(mk(co).Layer, xp, traffic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Evaluate(ctxBg(), mk(co))
		if err != nil {
			t.Fatal(err)
		}
		if got.Perf != want {
			t.Fatalf("co=%d: over-limit evaluation diverged", co)
		}
	}
	if s := e.Stats(); s.Misses != 4 {
		t.Errorf("misses = %d, want 4", s.Misses)
	}
	// The first two keys were stored and still serve hits.
	if _, err := e.Evaluate(ctxBg(), mk(32)); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Hits != 1 {
		t.Errorf("hits = %d, want 1", s.Hits)
	}
	// Over-limit keys recompute as misses.
	if _, err := e.Evaluate(ctxBg(), mk(96)); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Misses != 5 {
		t.Errorf("misses = %d, want 5", s.Misses)
	}
}

// TestWithoutCache: disabling the cache recomputes every request.
func TestWithoutCache(t *testing.T) {
	e := New(WithoutCache())
	l := layers.Conv{Name: "nc", B: 8, Ci: 32, Hi: 14, Wi: 14, Co: 32, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	for i := 0; i < 3; i++ {
		if _, err := e.Evaluate(ctxBg(), Request{Layer: l, Device: xp}); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("cacheless evaluator recorded stats: %+v", s)
	}
}

// TestCancelledContextRejected: a pre-cancelled context evaluates nothing.
func TestCancelledContextRejected(t *testing.T) {
	e := New()
	ctx, cancel := context.WithCancel(ctxBg())
	cancel()
	if _, err := e.Evaluate(ctx, Request{Layer: cnn.SensitivityBase(8), Device: xp}); !errors.Is(err, context.Canceled) {
		t.Errorf("Evaluate error = %v, want context.Canceled", err)
	}
	net := cnn.ResNet152Full(8)
	if _, err := e.Network(ctx, NetworkRequest{Net: net, Device: xp}); !errors.Is(err, context.Canceled) {
		t.Errorf("Network error = %v, want context.Canceled", err)
	}
	if s := e.Stats(); s.Misses != 0 {
		t.Errorf("cancelled context still computed %d results", s.Misses)
	}
}

// TestMidFlightCancellation: cancelling while a large batch is in flight
// aborts it with context.Canceled before all requests are evaluated.
func TestMidFlightCancellation(t *testing.T) {
	e := New(WithWorkers(2), WithoutCache())
	ctx, cancel := context.WithCancel(ctxBg())
	net := cnn.ResNet152Full(64)
	var reqs []Request
	for i := 0; i < 50; i++ {
		for _, l := range net.Layers {
			reqs = append(reqs, Request{Layer: l, Device: xp})
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.EvaluateAll(ctx, reqs)
		done <- err
	}()
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("mid-flight cancel error = %v, want context.Canceled or completed nil", err)
	}
}

// TestErrorPropagation: an invalid request fails the whole batch with the
// underlying model error, not a cancellation artifact.
func TestErrorPropagation(t *testing.T) {
	e := New()
	good := cnn.SensitivityBase(8)
	bad := good
	bad.Stride = 0
	reqs := []Request{{Layer: good, Device: xp}, {Layer: bad, Device: xp}, {Layer: good, Device: xp}}
	_, err := e.EvaluateAll(ctxBg(), reqs)
	if err == nil {
		t.Fatal("invalid layer accepted")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("real error masked by cancellation: %v", err)
	}
}

// TestRequestValidation covers the model/pass dispatch guards.
func TestRequestValidation(t *testing.T) {
	e := New()
	l := cnn.SensitivityBase(8)
	cases := []Request{
		{Layer: l, Device: xp, Model: "magic"},
		{Layer: l, Device: xp, Pass: "sideways"},
		{Layer: l, Device: xp, Model: ModelPrior, MissRate: 1.5},
		{Layer: l, Device: xp, Model: ModelRoofline, Pass: PassTraining},
		{Layer: l, Device: gpu.Device{}},
	}
	for i, req := range cases {
		if _, err := e.Evaluate(ctxBg(), req); err == nil {
			t.Errorf("case %d accepted: %+v", i, req)
		}
	}
	// Defaults: empty model/pass mean delta inference; prior defaults to
	// the mr=1.0 the prior literature advocates.
	r, err := e.Evaluate(ctxBg(), Request{Layer: l, Device: xp})
	if err != nil {
		t.Fatal(err)
	}
	if r.Model != ModelDelta || r.Pass != PassInference {
		t.Errorf("defaults not applied: %+v", r)
	}
	p1, err := e.Evaluate(ctxBg(), Request{Layer: l, Device: xp, Model: ModelPrior})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Evaluate(ctxBg(), Request{Layer: l, Device: xp, Model: ModelPrior, MissRate: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Perf != p2.Perf {
		t.Error("prior default miss rate is not 1.0")
	}
}

// TestConcurrentEvaluators exercises one shared Evaluator from many
// goroutines (the delta-server usage pattern); run under -race this is the
// pool/cache data-race check.
func TestConcurrentEvaluators(t *testing.T) {
	e := New()
	net := cnn.ResNet152Full(16)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := gpu.All()[g%3]
			nr, err := e.Network(ctxBg(), NetworkRequest{Net: net, Device: d})
			if err != nil {
				errs <- err
				return
			}
			serial, err := perf.ModelAll(net.Layers, d, traffic.Options{})
			if err != nil {
				errs <- err
				return
			}
			if nr.Seconds != perf.NetworkTime(serial, net.Counts) {
				errs <- errors.New("concurrent result diverged from serial")
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestNetworkBottleneckHistogram: the aggregate matches the serial helper.
func TestNetworkBottleneckHistogram(t *testing.T) {
	e := New()
	net := cnn.VGG16(8)
	nr, err := e.Network(ctxBg(), NetworkRequest{Net: net, Device: xp})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := perf.ModelAll(net.Layers, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := perf.BottleneckHistogram(serial, net.Counts)
	if len(nr.Bottlenecks) != len(want) {
		t.Fatalf("histogram %v, want %v", nr.Bottlenecks, want)
	}
	for b, c := range want {
		if nr.Bottlenecks[b] != c {
			t.Errorf("bottleneck %v: %d, want %d", b, nr.Bottlenecks[b], c)
		}
	}
}
