// Trace-driven simulation requests: the fourth request kind of the unified
// pipeline. Simulations are far heavier than analytical evaluations (they
// replay every warp of every CTA), which makes the worker-pool fan-out and
// the memo cache matter even more here: experiment drivers ask for the same
// (layer, device, config) simulation across figures, and design-space
// sweeps repeat layers verbatim.

package pipeline

import (
	"context"

	"delta/internal/layers"
	"delta/internal/sim/engine"
)

// SimRequest names one trace-driven simulation: a layer under an engine
// configuration (device, cache geometry, scheduling and sampling knobs).
type SimRequest struct {
	Layer  layers.Conv
	Config engine.Config
}

// simKey is the comparable identity of a SimRequest. The engine config is
// normalized (defaults applied; Workers, ReplayPartitions, and Streams
// cleared) because every execution strategy produces bit-identical
// counters — a serial run may legitimately serve a later parallel request,
// and vice versa.
type simKey struct {
	layer layers.Conv
	cfg   engine.Config
}

// withSharedState applies the evaluator's engine execution defaults to a
// request: the shared stream tier (unless the request brings its own) and
// the configured replay-partition count (unless set explicitly). Neither
// affects counters, only how fast the engine produces them.
func (e *Evaluator) withSharedState(cfg engine.Config) engine.Config {
	if cfg.Streams == nil {
		cfg.Streams = e.streams
	}
	if cfg.ReplayPartitions == 0 {
		cfg.ReplayPartitions = e.replayParts
	}
	return cfg
}

// Simulate answers one simulation request, consulting the memo cache first.
func (e *Evaluator) Simulate(ctx context.Context, req SimRequest) (engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return engine.Result{}, err
	}
	req.Config = e.withSharedState(req.Config)
	if e.noCache {
		return engine.Run(req.Layer, req.Config)
	}
	key := simKey{layer: req.Layer, cfg: req.Config.Normalized()}
	v, err := memoize(e, &e.sim, key, func() (any, error) {
		return engine.Run(req.Layer, req.Config)
	})
	if err != nil {
		return engine.Result{}, err
	}
	return v.(engine.Result), nil
}

// SimulateAll answers a batch of simulation requests, fanning the per-layer
// runs out across the worker pool. Results are index-aligned with the
// requests; on error the lowest failing index wins and in-flight work is
// cancelled.
//
// When a request leaves Config.Workers unset, the pool width is split
// across the batch: a batch at least as wide as the pool runs each engine
// on its serial reference path (layer-level fan-out alone saturates the
// pool), while a smaller batch gives each engine the leftover width so
// idle cores still help. Counters are bit-identical at any worker count,
// so the memo cache is shared across all shapes.
func (e *Evaluator) SimulateAll(ctx context.Context, reqs []SimRequest) ([]engine.Result, error) {
	if len(reqs) == 0 {
		return nil, ctx.Err()
	}
	perEngine := e.width() / len(reqs)
	if perEngine < 1 {
		perEngine = 1
	}
	out := make([]engine.Result, len(reqs))
	err := e.forEach(ctx, len(reqs), func(ctx context.Context, i int) error {
		req := reqs[i]
		if req.Config.Workers == 0 {
			req.Config.Workers = perEngine
		}
		r, err := e.Simulate(ctx, req)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SimulateLayers simulates each layer under one shared engine config: the
// shape every experiment driver needs (a layer list on one device).
func (e *Evaluator) SimulateLayers(ctx context.Context, ls []layers.Conv, cfg engine.Config) ([]engine.Result, error) {
	reqs := make([]SimRequest, len(ls))
	for i, l := range ls {
		reqs[i] = SimRequest{Layer: l, Config: cfg}
	}
	return e.SimulateAll(ctx, reqs)
}
