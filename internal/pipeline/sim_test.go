package pipeline

import (
	"testing"

	"delta/internal/layers"
	"delta/internal/sim/engine"
)

var simLayers = []layers.Conv{
	{Name: "s1", B: 2, Ci: 32, Hi: 14, Wi: 14, Co: 64, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
	{Name: "s2", B: 2, Ci: 64, Hi: 14, Wi: 14, Co: 32, Hf: 1, Wf: 1, Stride: 1},
	{Name: "s3", B: 2, Ci: 16, Hi: 28, Wi: 28, Co: 96, Hf: 3, Wf: 3, Stride: 2, Pad: 1},
}

// TestSimParity: SimulateAll results are identical (==) to direct serial
// engine runs, for every worker-pool width, with and without the cache.
func TestSimParity(t *testing.T) {
	cfg := engine.Config{Device: xp}
	want := make([]engine.Result, len(simLayers))
	for i, l := range simLayers {
		r, err := engine.Run(l, engine.Config{Device: xp, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, workers := range []int{1, 4} {
		for _, opts := range [][]Option{nil, {WithoutCache()}} {
			e := New(append([]Option{WithWorkers(workers)}, opts...)...)
			got, err := e.SimulateLayers(ctxBg(), simLayers, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d layer %s: pipeline sim != serial engine\n%+v\n%+v",
						workers, simLayers[i].Name, got[i], want[i])
				}
			}
		}
	}
}

// TestSimCacheMemoizes: a repeated simulation is served from the cache, and
// a request differing only in the Workers knob shares the same entry
// (results are bit-identical across worker counts by construction).
func TestSimCacheMemoizes(t *testing.T) {
	e := New()
	req := SimRequest{Layer: simLayers[0], Config: engine.Config{Device: xp, Workers: 1}}
	r1, err := e.Simulate(ctxBg(), req)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after first run: %+v", s)
	}
	req.Config.Workers = 2
	r2, err := e.Simulate(ctxBg(), req)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("after repeat with different Workers: %+v", s)
	}
	if r1 != r2 {
		t.Fatal("cached result differs")
	}
	// Explicit cache-geometry defaults share the entry with the zero form.
	req.Config.L1Ways, req.Config.L2Ways = 4, 16
	if _, err := e.Simulate(ctxBg(), req); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("after repeat with explicit default ways: %+v", s)
	}
	// A genuinely different geometry is a new entry.
	req.Config.L1Ways = 2
	if _, err := e.Simulate(ctxBg(), req); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Misses != 2 || s.Hits != 2 {
		t.Fatalf("after distinct geometry: %+v", s)
	}
}

// TestSimErrorPropagation: invalid layers and devices fail fast with the
// lowest-index error, matching the analytical batch semantics.
func TestSimErrorPropagation(t *testing.T) {
	e := New()
	reqs := []SimRequest{
		{Layer: simLayers[0], Config: engine.Config{Device: xp}},
		{Layer: layers.Conv{Name: "bad"}, Config: engine.Config{Device: xp}},
	}
	if _, err := e.SimulateAll(ctxBg(), reqs); err == nil {
		t.Fatal("invalid layer accepted")
	}
	if _, err := e.Simulate(ctxBg(), SimRequest{Layer: simLayers[0]}); err == nil {
		t.Fatal("zero device accepted")
	}
}

// TestSimAndEvalShareCache: simulation and analytical entries coexist in
// one evaluator without colliding (distinct key types).
func TestSimAndEvalShareCache(t *testing.T) {
	e := New()
	if _, err := e.Evaluate(ctxBg(), Request{Layer: simLayers[0], Device: xp}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Simulate(ctxBg(), SimRequest{Layer: simLayers[0], Config: engine.Config{Device: xp}}); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Misses != 2 || s.Hits != 0 {
		t.Fatalf("eval+sim should be distinct entries: %+v", s)
	}
	if _, err := e.Simulate(ctxBg(), SimRequest{Layer: simLayers[0], Config: engine.Config{Device: xp}}); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Misses != 2 || s.Hits != 1 {
		t.Fatalf("repeat sim should hit: %+v", s)
	}
}
