// Scenario streaming: the declarative batch entry point of the pipeline.
// A scenario (internal/scenario) expands into an ordered point list;
// Stream walks the points in expansion order — each point's layers fan
// out across the worker pool — and emits results incrementally, each
// update carrying progress counts. Every point funnels through the same
// Network / SimulateLayers paths the synchronous helpers use, so streamed
// results are bit-identical to the serial per-helper paths and repeated
// points memo-hit the cache.

package pipeline

import (
	"context"

	"delta/internal/scenario"
	"delta/internal/sim/engine"
)

// ErrorPolicy selects how Stream reacts to a failing point.
type ErrorPolicy int

const (
	// FailFast cancels the sweep when the first (in expansion order)
	// failing point is reached: its update carries Err, and the stream
	// closes without emitting later points.
	FailFast ErrorPolicy = iota

	// CollectPartial keeps sweeping: failing points emit updates with Err
	// set, and every point is attempted.
	CollectPartial
)

// StreamUpdate is one incremental result of a scenario stream.
type StreamUpdate struct {
	// Point is the evaluated scenario point (Point.Index is its position
	// in expansion order; updates arrive in that order).
	Point scenario.Point

	// Done counts the updates emitted so far, this one included; Total is
	// the scenario's full point count. Done == Total marks the last update
	// of a complete sweep.
	Done, Total int

	// Network carries the whole-network result of an analytical point.
	Network NetworkResult

	// Sim carries the per-layer simulator results of a simulation point,
	// index-aligned with Point.Net.Layers.
	Sim []engine.Result

	// Err is the point's evaluation error (nil on success).
	Err error
}

// StreamOption configures a Stream call.
type StreamOption func(*streamConfig)

type streamConfig struct {
	policy ErrorPolicy
	offset int
	limit  int // < 0 = unlimited
}

// WithErrorPolicy selects the stream's error policy (default FailFast).
func WithErrorPolicy(p ErrorPolicy) StreamOption {
	return func(c *streamConfig) { c.policy = p }
}

// WithOffset resumes a stream partway through the expansion order: the
// first n points are skipped without evaluation, and the first emitted
// update carries Done == n+1. Point indices and the Total count are
// unchanged, so a resumed sweep's updates are bit-identical to the tail
// of an uninterrupted run — the contract the durable job store relies on
// to resume half-finished sweeps after a restart (scenario.Expand order
// is deterministic, so "the first n points" names the same points in
// every process). A negative offset is treated as zero; an offset at or
// past the point count yields an immediately closed stream.
func WithOffset(n int) StreamOption {
	return func(c *streamConfig) { c.offset = n }
}

// WithLimit bounds how many points a stream emits after the offset: the
// sweep stops (and the channel closes) once n updates have been sent, as
// if the expansion ended there. Done/Total and point indices are still
// global, so an offset+limit window's updates are bit-identical to the
// same slice of an unbounded run — the contract the cluster shard
// protocol relies on to evaluate disjoint ranges on different workers
// and merge them back into a single-node-identical result. A negative
// limit means unlimited (the default); zero yields an immediately
// closed stream.
func WithLimit(n int) StreamOption {
	return func(c *streamConfig) { c.limit = n }
}

// newStreamConfig applies the options over the defaults; Stream and
// RunScenario share it so the default policy cannot diverge.
func newStreamConfig(opts []StreamOption) streamConfig {
	cfg := streamConfig{policy: FailFast, limit: -1}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Stream expands a scenario and evaluates its points through the worker
// pool, emitting one update per point in expansion order. The returned
// channel is closed when the sweep completes, fails fast, or ctx is
// cancelled; cancel ctx to abandon a stream early instead of leaking the
// producer. Expansion errors are reported synchronously.
func (e *Evaluator) Stream(ctx context.Context, sc scenario.Scenario, opts ...StreamOption) (<-chan StreamUpdate, error) {
	points, err := sc.Expand()
	if err != nil {
		return nil, err
	}
	out := make(chan StreamUpdate)
	go e.stream(ctx, points, newStreamConfig(opts), out)
	return out, nil
}

// stream is the producer: points are evaluated one at a time, in
// expansion order, so emission needs no reorder buffer — but each point's
// layers fan out across the full worker pool inside Network /
// SimulateLayers, which keeps the hardware saturated while total
// concurrency stays bounded by the pool width (concurrent streams each
// add at most one point's fan-out, not a second multiplicative level).
func (e *Evaluator) stream(ctx context.Context, points []scenario.Point, cfg streamConfig, out chan<- StreamUpdate) {
	defer close(out)
	n := len(points)
	start := cfg.offset
	if start < 0 {
		start = 0
	}
	end := n
	if cfg.limit >= 0 && start+cfg.limit < end {
		end = start + cfg.limit
	}
	for i := start; i < end; i++ {
		p := points[i]
		if ctx.Err() != nil {
			return
		}
		upd := e.evalPoint(ctx, p)
		upd.Done, upd.Total = i+1, n
		select {
		case out <- upd:
		case <-ctx.Done():
			return
		}
		if upd.Err != nil && cfg.policy == FailFast {
			return
		}
	}
}

// evalPoint answers one scenario point through the shared synchronous
// paths, so streamed results are bit-identical to the per-helper ones.
func (e *Evaluator) evalPoint(ctx context.Context, p scenario.Point) StreamUpdate {
	e.points.Add(1)
	upd := StreamUpdate{Point: p}
	if p.Sim != nil {
		upd.Sim, upd.Err = e.SimulateLayers(ctx, p.Net.Layers, *p.Sim)
		return upd
	}
	upd.Network, upd.Err = e.Network(ctx, NetworkRequest{
		Net: p.Net, Device: p.Device, Options: p.Options,
		Model: Model(p.Model), Pass: Pass(p.Pass), MissRate: p.MissRate,
	})
	return upd
}

// RunScenario streams a scenario to completion and collects the ordered
// updates. Under FailFast the first failing point's error is returned
// (with the updates up to and including it); under CollectPartial the
// error return is nil and per-point failures ride in the updates.
func (e *Evaluator) RunScenario(ctx context.Context, sc scenario.Scenario, opts ...StreamOption) ([]StreamUpdate, error) {
	cfg := newStreamConfig(opts)
	ch, err := e.Stream(ctx, sc, opts...)
	if err != nil {
		return nil, err
	}
	var (
		out      []StreamUpdate
		firstErr error
	)
	for upd := range ch {
		out = append(out, upd)
		if upd.Err != nil && firstErr == nil {
			firstErr = upd.Err
		}
	}
	if cfg.policy == CollectPartial {
		firstErr = nil
	}
	if err := ctx.Err(); err != nil && firstErr == nil {
		firstErr = err
	}
	return out, firstErr
}
