package pipeline

import (
	"testing"

	"delta/internal/sim/engine"
	"delta/internal/sim/trace"
)

// TestSimSharedStreamsParity: engine runs backed by the evaluator's shared
// stream tier produce results identical (==) to tier-free runs, and the
// tier actually engages (misses on first contact, hits once warm).
func TestSimSharedStreamsParity(t *testing.T) {
	private := New(WithoutStreamSharing(), WithoutCache())
	shared := New(WithoutCache()) // no memo cache: every run hits the engine

	cfg := engine.Config{Device: xp, Workers: 1}
	want, err := private.SimulateLayers(ctxBg(), simLayers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := private.Stats(); s.StreamMisses != 0 || s.StreamEntries != 0 {
		t.Fatalf("tier-free evaluator reported stream activity: %+v", s)
	}

	got, err := shared.SimulateLayers(ctxBg(), simLayers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("layer %s: shared-stream result != private result\n%+v\n%+v",
				simLayers[i].Name, got[i], want[i])
		}
	}
	cold := shared.Stats()
	if cold.StreamMisses == 0 || cold.StreamEntries == 0 {
		t.Fatalf("tier never engaged: %+v", cold)
	}

	// Same layers, different L2 capacity: the coalescing geometry is
	// unchanged, so every stream is a tier hit.
	bigger := cfg
	bigger.Device.L2SizeMB *= 2
	got2, err := shared.SimulateLayers(ctxBg(), simLayers, bigger)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := private.SimulateLayers(ctxBg(), simLayers, bigger)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatalf("layer %s (bigger L2): shared-stream result diverged", simLayers[i].Name)
		}
	}
	warm := shared.Stats()
	if warm.StreamHits == 0 {
		t.Fatalf("adjacent sweep point generated instead of sharing: %+v", warm)
	}
	if warm.StreamMisses != cold.StreamMisses {
		t.Errorf("adjacent sweep point regenerated %d streams (same geometry should all hit)",
			warm.StreamMisses-cold.StreamMisses)
	}
}

// TestSimReplayPartitionsDefault: the evaluator-level partition knob is
// applied to requests that leave it unset, is reported by Stats, and does
// not change results.
func TestSimReplayPartitionsDefault(t *testing.T) {
	base := New(WithoutCache(), WithoutStreamSharing())
	parted := New(WithoutCache(), WithoutStreamSharing(), WithReplayPartitions(3))
	if got := parted.Stats().ReplayPartitions; got != 3 {
		t.Fatalf("Stats().ReplayPartitions = %d, want 3", got)
	}
	if got := base.Stats().ReplayPartitions; got != 0 {
		t.Fatalf("default Stats().ReplayPartitions = %d, want 0", got)
	}
	cfg := engine.Config{Device: xp, Workers: 2}
	want, err := base.SimulateLayers(ctxBg(), simLayers[:1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parted.SimulateLayers(ctxBg(), simLayers[:1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Fatalf("partitioned replay diverged:\n%+v\n%+v", got[0], want[0])
	}
}

// TestSimCacheKeyIgnoresExecutionKnobs: requests differing only in
// ReplayPartitions or an explicit Streams tier share one memo entry —
// execution strategy is not identity.
func TestSimCacheKeyIgnoresExecutionKnobs(t *testing.T) {
	e := New()
	req := SimRequest{Layer: simLayers[1], Config: engine.Config{Device: xp, Workers: 1}}
	r1, err := e.Simulate(ctxBg(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.Config.ReplayPartitions = 4
	req.Config.Streams = trace.NewSharedStreams(8)
	r2, err := e.Simulate(ctxBg(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("execution knobs changed the memoized result")
	}
	if s := e.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("execution knobs split the memo key: %+v", s)
	}
}
