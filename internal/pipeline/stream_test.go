package pipeline

import (
	"context"
	"strings"
	"testing"

	"delta/internal/cnn"
	"delta/internal/explore"
	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/scenario"
	"delta/internal/sim/engine"
)

// multiAxis is the acceptance-criteria scenario: 2 networks × 2 devices ×
// 2 models.
func multiAxis() scenario.Scenario {
	return scenario.Scenario{
		Name:      "acceptance",
		Workloads: []scenario.Workload{{Name: "alexnet"}, {Name: "googlenet"}},
		Devices:   []gpu.Device{gpu.TitanXp(), gpu.V100()},
		Batches:   []int{16},
		Models:    []string{scenario.ModelDelta, scenario.ModelPrior},
	}
}

// TestStreamOrderedProgress: updates arrive in expansion order with
// correct incremental progress counts.
func TestStreamOrderedProgress(t *testing.T) {
	sc := multiAxis()
	e := New()
	ch, err := e.Stream(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	total := sc.Size()
	if total != 8 {
		t.Fatalf("Size = %d, want 8", total)
	}
	n := 0
	for upd := range ch {
		if upd.Point.Index != n {
			t.Errorf("update %d has point index %d (out of order)", n, upd.Point.Index)
		}
		n++
		if upd.Done != n || upd.Total != total {
			t.Errorf("update %d progress = %d/%d, want %d/%d", n-1, upd.Done, upd.Total, n, total)
		}
		if upd.Err != nil {
			t.Errorf("point %d failed: %v", upd.Point.Index, upd.Err)
		}
		if upd.Network.Seconds <= 0 {
			t.Errorf("point %d has no result", upd.Point.Index)
		}
	}
	if n != total {
		t.Errorf("streamed %d updates, want %d", n, total)
	}
}

// TestStreamBitIdenticalToHelpers: every streamed point matches the
// synchronous per-helper serial path bit for bit.
func TestStreamBitIdenticalToHelpers(t *testing.T) {
	sc := multiAxis()
	upds, err := New().RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	serial := New(WithWorkers(1), WithoutCache())
	for _, upd := range upds {
		p := upd.Point
		want, err := serial.Network(context.Background(), NetworkRequest{
			Net: p.Net, Device: p.Device, Options: p.Options,
			Model: Model(p.Model), Pass: Pass(p.Pass), MissRate: p.MissRate,
		})
		if err != nil {
			t.Fatal(err)
		}
		if upd.Network.Seconds != want.Seconds {
			t.Errorf("%s: streamed %v, serial %v", p, upd.Network.Seconds, want.Seconds)
		}
		for i, r := range upd.Network.Results {
			if r.Seconds != want.Results[i].Seconds {
				t.Errorf("%s layer %d: streamed %v, serial %v", p, i, r.Seconds, want.Results[i].Seconds)
			}
		}
	}
}

// TestStreamMemoHits: re-running a scenario serves every layer evaluation
// from the memo cache.
func TestStreamMemoHits(t *testing.T) {
	sc := multiAxis()
	e := New()
	if _, err := e.RunScenario(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	if _, err := e.RunScenario(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.Hits <= before.Hits {
		t.Errorf("no memo hits on repeat: %+v -> %+v", before, after)
	}
	if after.Misses != before.Misses {
		t.Errorf("repeat recomputed %d evaluations", after.Misses-before.Misses)
	}
}

// TestStatsObservability: Stats exposes the counters the serving layer
// scrapes — scenario points advance per evaluated point (memo hits
// included), and the cache reports its occupancy.
func TestStatsObservability(t *testing.T) {
	sc := multiAxis()
	e := New()
	if s := e.Stats(); s.ScenarioPoints != 0 || s.Entries != 0 {
		t.Fatalf("fresh evaluator stats = %+v", s)
	}
	if _, err := e.RunScenario(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	s1 := e.Stats()
	if want := uint64(sc.Size()); s1.ScenarioPoints != want {
		t.Errorf("ScenarioPoints = %d, want %d", s1.ScenarioPoints, want)
	}
	if s1.Entries == 0 {
		t.Error("cache Entries = 0 after a cold sweep")
	}
	// A repeat sweep memo-hits but still counts its points.
	if _, err := e.RunScenario(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	s2 := e.Stats()
	if want := 2 * uint64(sc.Size()); s2.ScenarioPoints != want {
		t.Errorf("ScenarioPoints after repeat = %d, want %d", s2.ScenarioPoints, want)
	}
	if s2.Entries != s1.Entries {
		t.Errorf("repeat sweep grew the cache: %d -> %d", s1.Entries, s2.Entries)
	}
}

// badTrainingNet has a non-square filter past the first layer: valid for
// inference, rejected by the training pass (dgrad requires square filters)
// — an eval-time error that survives scenario validation.
func badTrainingNet() cnn.Network {
	return cnn.Network{Name: "badtrain", Layers: []layers.Conv{
		{Name: "ok", B: 4, Ci: 8, Hi: 12, Wi: 12, Co: 8, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
		{Name: "rect", B: 4, Ci: 8, Hi: 12, Wi: 12, Co: 8, Hf: 3, Wf: 5, Stride: 1, Pad: 2},
	}, Counts: []int{1, 1}}
}

// TestStreamFailFast stops at the first failing point in order.
func TestStreamFailFast(t *testing.T) {
	sc := scenario.Scenario{
		Workloads: []scenario.Workload{{Net: badTrainingNet()}, {Name: "alexnet"}},
		Devices:   []gpu.Device{gpu.TitanXp()},
		Batches:   []int{8},
		Passes:    []string{scenario.PassTraining},
	}
	upds, err := New().RunScenario(context.Background(), sc)
	if err == nil || !strings.Contains(err.Error(), "non-square") {
		t.Fatalf("err = %v, want non-square filter error", err)
	}
	if len(upds) != 1 {
		t.Fatalf("fail-fast streamed %d updates, want 1", len(upds))
	}
	if upds[0].Err == nil || upds[0].Point.Index != 0 {
		t.Errorf("failing update = %+v", upds[0])
	}
}

// TestStreamOffsetResumesTail: a stream resumed with WithOffset(k) emits
// exactly the tail of the uninterrupted run — same point indices, same
// progress counts, bit-identical results. This is the contract the
// durable job store relies on to resume half-finished sweeps.
func TestStreamOffsetResumesTail(t *testing.T) {
	sc := multiAxis()
	full, err := New().RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 3, 7, 8, 11, -2} {
		// A fresh evaluator per offset: resume must not depend on a warm
		// memo (the restarted-process case).
		tail, err := New().RunScenario(context.Background(), sc, WithOffset(k))
		if err != nil {
			t.Fatalf("offset %d: %v", k, err)
		}
		start := k
		if start < 0 {
			start = 0
		}
		if start > len(full) {
			start = len(full)
		}
		if len(tail) != len(full)-start {
			t.Fatalf("offset %d: %d updates, want %d", k, len(tail), len(full)-start)
		}
		for i, upd := range tail {
			want := full[start+i]
			if upd.Point.Index != want.Point.Index || upd.Done != want.Done || upd.Total != want.Total {
				t.Errorf("offset %d update %d: point %d %d/%d, want point %d %d/%d",
					k, i, upd.Point.Index, upd.Done, upd.Total,
					want.Point.Index, want.Done, want.Total)
			}
			if upd.Network.Seconds != want.Network.Seconds ||
				len(upd.Network.Results) != len(want.Network.Results) {
				t.Errorf("offset %d update %d: result diverged from uninterrupted run", k, i)
			}
		}
	}
}

// TestStreamLimitWindow: WithOffset(k) + WithLimit(n) emits exactly the
// [k, k+n) slice of the uninterrupted run — same point indices, same
// global progress counts, bit-identical results. This is the contract
// the cluster shard protocol relies on to evaluate disjoint windows on
// different workers and merge them into a single-node-identical sweep.
func TestStreamLimitWindow(t *testing.T) {
	sc := multiAxis()
	full, err := New().RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []struct{ off, lim int }{
		{0, 8}, {0, 3}, {3, 2}, {5, 3}, {5, 100}, {8, 0}, {2, 0}, {0, -1}, {4, -1},
	} {
		win, err := New().RunScenario(context.Background(), sc,
			WithOffset(w.off), WithLimit(w.lim))
		if err != nil {
			t.Fatalf("window [%d,+%d): %v", w.off, w.lim, err)
		}
		end := len(full)
		if w.lim >= 0 && w.off+w.lim < end {
			end = w.off + w.lim
		}
		want := full[w.off:end]
		if len(win) != len(want) {
			t.Fatalf("window [%d,+%d): %d updates, want %d", w.off, w.lim, len(win), len(want))
		}
		for i, upd := range win {
			ref := want[i]
			if upd.Point.Index != ref.Point.Index || upd.Done != ref.Done || upd.Total != ref.Total {
				t.Errorf("window [%d,+%d) update %d: point %d %d/%d, want point %d %d/%d",
					w.off, w.lim, i, upd.Point.Index, upd.Done, upd.Total,
					ref.Point.Index, ref.Done, ref.Total)
			}
			if upd.Network.Seconds != ref.Network.Seconds {
				t.Errorf("window [%d,+%d) update %d: result diverged from full run", w.off, w.lim, i)
			}
		}
	}
	// Adjacent windows concatenate into the full run: the no-gap,
	// no-overlap property the coordinator's merge depends on.
	var merged []StreamUpdate
	for _, r := range scenario.SplitSpan(0, len(full), 3) {
		part, err := New().RunScenario(context.Background(), sc,
			WithOffset(r.Offset), WithLimit(r.Count))
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, part...)
	}
	if len(merged) != len(full) {
		t.Fatalf("merged %d updates, want %d", len(merged), len(full))
	}
	for i, upd := range merged {
		if upd.Point.Index != full[i].Point.Index || upd.Network.Seconds != full[i].Network.Seconds {
			t.Errorf("merged update %d diverged from full run", i)
		}
	}
}

// TestStreamCollectPartial keeps sweeping past failures.
func TestStreamCollectPartial(t *testing.T) {
	sc := scenario.Scenario{
		Workloads: []scenario.Workload{{Net: badTrainingNet()}, {Name: "alexnet"}},
		Devices:   []gpu.Device{gpu.TitanXp()},
		Batches:   []int{8},
		Passes:    []string{scenario.PassTraining},
	}
	upds, err := New().RunScenario(context.Background(), sc, WithErrorPolicy(CollectPartial))
	if err != nil {
		t.Fatalf("collect-partial returned sweep error: %v", err)
	}
	if len(upds) != 2 {
		t.Fatalf("streamed %d updates, want 2", len(upds))
	}
	if upds[0].Err == nil {
		t.Error("first point should fail")
	}
	if upds[1].Err != nil || upds[1].Network.Seconds <= 0 {
		t.Errorf("second point should succeed: %+v", upds[1].Err)
	}
	if upds[1].Done != 2 || upds[1].Total != 2 {
		t.Errorf("progress = %d/%d, want 2/2", upds[1].Done, upds[1].Total)
	}
}

// TestStreamCancellation: cancelling the context ends the stream early.
func TestStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	upds, err := New().RunScenario(ctx, multiAxis())
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if len(upds) == int(multiAxis().Size()) {
		t.Error("cancelled sweep completed fully")
	}
}

// TestStreamSimPoints: simulation points stream engine results identical
// to the synchronous SimulateLayers path.
func TestStreamSimPoints(t *testing.T) {
	net := cnn.Network{Name: "mini", Layers: []layers.Conv{
		{Name: "c1", B: 1, Ci: 8, Hi: 8, Wi: 8, Co: 16, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
	}, Counts: []int{1}}
	cfg := engine.Config{MaxWaves: 1}
	sc := scenario.Scenario{
		Workloads:  []scenario.Workload{{Net: net}},
		Devices:    []gpu.Device{gpu.TitanXp()},
		SimConfigs: []engine.Config{cfg},
	}
	e := New()
	upds, err := e.RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(upds) != 1 || len(upds[0].Sim) != 1 {
		t.Fatalf("sim updates = %+v", upds)
	}
	direct, err := engine.Run(net.Layers[0], engine.Config{Device: gpu.TitanXp(), MaxWaves: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if upds[0].Sim[0].DRAMBytes != direct.DRAMBytes {
		t.Errorf("streamed sim DRAM bytes %v, direct %v", upds[0].Sim[0].DRAMBytes, direct.DRAMBytes)
	}
}

// TestStreamEmptyWorkloadError: expansion errors surface synchronously.
func TestStreamEmptyWorkloadError(t *testing.T) {
	if _, err := New().Stream(context.Background(), scenario.Scenario{}); err == nil {
		t.Fatal("empty scenario streamed without error")
	}
}

// TestExploreViaScenario: an explore-shaped scenario (base + scaled
// devices over one workload) reproduces pipeline.Explore's speedups.
func TestExploreViaScenario(t *testing.T) {
	net := cnn.AlexNet(8)
	base := gpu.TitanXp()
	scales := []gpu.Scale{{MACPerSM: 2}, {DRAMBW: 2, L2BW: 2}}
	devices := []gpu.Device{base}
	for _, s := range scales {
		devices = append(devices, s.Apply(base))
	}
	e := New()
	upds, err := e.RunScenario(context.Background(), scenario.Scenario{
		Workloads: []scenario.Workload{{Net: net}},
		Devices:   devices,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(upds) != 3 {
		t.Fatalf("streamed %d updates, want 3", len(upds))
	}
	cands, err := e.Explore(context.Background(),
		explore.Workload{Net: net}, base, scales, explore.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cands {
		if want := upds[0].Network.Seconds / upds[i+1].Network.Seconds; c.Speedup != want {
			t.Errorf("scale %d: explore speedup %v, scenario %v", i, c.Speedup, want)
		}
	}
}
