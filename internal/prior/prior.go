// Package prior implements the fixed-miss-rate baselines DeLTA is compared
// against (Section III and Fig. 12/15b).
//
// Prior GPU analytical models (Hong & Kim 2009; Zhou et al. 2017) expose a
// cache miss-rate parameter but recommend setting it to 1.0 — every L1
// request misses to L2 and every L2 request misses to DRAM. Under im2col's
// heavy reuse this inflates lower-level traffic by up to ~100x. The package
// rewrites a DeLTA traffic estimate with fixed miss rates so the same
// performance machinery produces the prior models' predictions.
package prior

import (
	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/perf"
	"delta/internal/traffic"
)

// FixMissRate returns a copy of a DeLTA traffic estimate with the L2 and
// DRAM levels replaced by fixed miss-rate scalings of the L1 traffic:
//
//	L2   = mr * L1
//	DRAM = mr * L2 = mr^2 * L1
//
// mr = 1.0 is the setting prior work advocates. Per-loop volumes are scaled
// identically so the performance model sees consistent inputs.
func FixMissRate(e traffic.Estimate, mr float64) traffic.Estimate {
	out := e
	out.L2IFmapBytes = e.L1IFmapBytes * mr
	out.L2FilterBytes = e.L1FilterBytes * mr
	out.L2Bytes = out.L2IFmapBytes + out.L2FilterBytes
	out.DRAMIFmapBytes = out.L2IFmapBytes * mr
	out.DRAMFilterBytes = out.L2FilterBytes * mr
	out.DRAMBytes = out.DRAMIFmapBytes + out.DRAMFilterBytes
	out.PerLoopL2Bytes = e.PerLoopL1Bytes * mr
	out.PerLoopDRAMBytes = e.PerLoopL1Bytes * mr * mr
	return out
}

// Model produces the prior-model prediction for one layer: DeLTA's L1
// traffic with fixed miss rate mr applied down the hierarchy, then the
// shared performance model.
func Model(l layers.Conv, d gpu.Device, mr float64) (perf.Result, error) {
	e, err := traffic.Model(l, d, traffic.Options{})
	if err != nil {
		return perf.Result{}, err
	}
	return perf.Model(FixMissRate(e, mr), d)
}

// MissRates returns the sweep Fig. 15b evaluates.
func MissRates() []float64 { return []float64{0.3, 0.5, 0.7, 1.0} }
