package prior

import (
	"math"
	"testing"
	"testing/quick"

	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/traffic"
)

var xp = gpu.TitanXp()

var reuseLayer = layers.Conv{
	Name: "reuse", B: 256, Ci: 192, Hi: 28, Wi: 28, Co: 96, Hf: 5, Wf: 5, Stride: 1, Pad: 2,
}

func TestFixMissRateScaling(t *testing.T) {
	e, err := traffic.Model(reuseLayer, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := FixMissRate(e, 1.0)
	if p.L2Bytes != e.L1Bytes {
		t.Errorf("MR=1: L2 = %v, want L1 = %v", p.L2Bytes, e.L1Bytes)
	}
	if p.DRAMBytes != e.L1Bytes {
		t.Errorf("MR=1: DRAM = %v, want L1 = %v", p.DRAMBytes, e.L1Bytes)
	}
	half := FixMissRate(e, 0.5)
	if math.Abs(half.L2Bytes-e.L1Bytes*0.5) > 1e-6 {
		t.Errorf("MR=0.5: L2 = %v", half.L2Bytes)
	}
	if math.Abs(half.DRAMBytes-e.L1Bytes*0.25) > 1e-6 {
		t.Errorf("MR=0.5: DRAM = %v", half.DRAMBytes)
	}
	// L1 traffic untouched.
	if p.L1Bytes != e.L1Bytes {
		t.Error("FixMissRate changed L1 traffic")
	}
}

func TestPriorOverestimatesReuseHeavyLayers(t *testing.T) {
	// Fig. 12: for large filters the MR=1 model inflates DRAM traffic by
	// orders of magnitude relative to DeLTA.
	e, err := traffic.Model(reuseLayer, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := FixMissRate(e, 1.0)
	if ratio := p.DRAMBytes / e.DRAMBytes; ratio < 10 {
		t.Errorf("MR=1 DRAM inflation = %.1fx, want >= 10x on a 5x5 layer", ratio)
	}
	// 1x1 layers have little reuse, so the deviation is small (Fig. 12).
	pw := layers.Conv{Name: "pw", B: 256, Ci: 512, Hi: 14, Wi: 14, Co: 128, Hf: 1, Wf: 1, Stride: 1}
	epw, err := traffic.Model(pw, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ppw := FixMissRate(epw, 1.0)
	if ratio := ppw.DRAMBytes / epw.DRAMBytes; ratio > 8 {
		t.Errorf("MR=1 DRAM inflation on 1x1 layer = %.1fx, want modest", ratio)
	}
}

func TestPriorPerfSlowerOrEqual(t *testing.T) {
	// Inflated traffic can only increase the predicted execution time.
	delta, err := traffic.Model(reuseLayer, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := Model(reuseLayer, xp, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Model(reuseLayer, xp, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	_ = delta
	if pr.Cycles < dr.Cycles {
		t.Errorf("MR=1 prediction %v faster than MR~0 prediction %v", pr.Cycles, dr.Cycles)
	}
}

func TestMissRatesSweep(t *testing.T) {
	mrs := MissRates()
	if len(mrs) != 4 || mrs[3] != 1.0 || mrs[0] != 0.3 {
		t.Errorf("MissRates() = %v", mrs)
	}
}

// TestMissRateMonotoneDense is the deterministic regression sweep for the
// Eq. 18 epilogue discontinuity: the per-CTA epilogue used to be charged
// against whole-chip L2/DRAM bandwidth but per-SM L1 bandwidth, so raising
// mr past the L1->L2 bottleneck crossover made predictions DROP by up to
// ~45% on low-Ci layers. Higher modeled traffic must never predict faster.
func TestMissRateMonotoneDense(t *testing.T) {
	for ci := 1; ci <= 256; ci += 17 {
		for hw := 7; hw <= 56; hw += 7 {
			for co := 16; co <= 256; co += 24 {
				l := layers.Conv{
					Name: "m", B: 32, Ci: ci, Hi: hw, Wi: hw, Co: co,
					Hf: 3, Wf: 3, Stride: 1, Pad: 1,
				}
				if l.Validate() != nil {
					continue
				}
				prev, prevMr := -1.0, 0.0
				for mr := 0.05; mr <= 1.0001; mr += 0.05 {
					r, err := Model(l, xp, mr)
					if err != nil {
						t.Fatal(err)
					}
					if prev > 0 && r.Cycles < prev*0.9999999 {
						t.Fatalf("ci=%d hw=%d co=%d: mr %.2f->%.2f predicted cycles dropped %.0f->%.0f",
							ci, hw, co, prevMr, mr, prev, r.Cycles)
					}
					prev, prevMr = r.Cycles, mr
				}
			}
		}
	}
}

func TestQuickMissRateMonotone(t *testing.T) {
	// Higher miss rate -> more modeled traffic -> never faster.
	f := func(ci, hw, co uint8, mrSeed uint8) bool {
		l := layers.Conv{
			Name: "q", B: 32, Ci: 1 + int(ci)%256,
			Hi: 7 + int(hw)%50, Wi: 7 + int(hw)%50,
			Co: 1 + int(co)%256, Hf: 3, Wf: 3, Stride: 1, Pad: 1,
		}
		if l.Validate() != nil {
			return true
		}
		lo := 0.1 + float64(mrSeed%8)/10 // 0.1 .. 0.8
		hi := lo + 0.2
		rlo, err := Model(l, xp, lo)
		if err != nil {
			return false
		}
		rhi, err := Model(l, xp, hi)
		if err != nil {
			return false
		}
		return rhi.Cycles >= rlo.Cycles*0.9999999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
