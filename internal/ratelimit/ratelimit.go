// Package ratelimit implements the delta-server load-shedding primitives:
// a per-client token-bucket limiter (answering "try again in N seconds")
// and a global in-flight gate capping concurrent requests. Both are
// dependency-free and safe for concurrent use.
package ratelimit

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxClients bounds the bucket map so a client-IP scan cannot grow
// server memory without bound.
const DefaultMaxClients = 4096

// Config parameterizes a Limiter.
type Config struct {
	// Rate is the sustained allowance in requests per second per client.
	Rate float64

	// Burst is the bucket capacity (instantaneous allowance); values below
	// 1 are raised to 1 so a full bucket always admits a request.
	Burst float64

	// MaxClients bounds the number of tracked buckets (0 means
	// DefaultMaxClients). At the bound, stale buckets are swept first and
	// the oldest-seen bucket is recycled if none are stale.
	MaxClients int

	// Now is the clock (nil means time.Now); a test hook.
	Now func() time.Time
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter hands out tokens per client key (normally the client IP).
type Limiter struct {
	cfg Config

	mu      sync.Mutex
	buckets map[string]*bucket
}

// New returns a limiter; Rate must be > 0 (a zero-rate limiter would only
// ever shed, which callers express by not installing a limiter at all).
func New(cfg Config) *Limiter {
	if cfg.Rate <= 0 {
		panic("ratelimit: Rate must be > 0")
	}
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = DefaultMaxClients
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Limiter{cfg: cfg, buckets: make(map[string]*bucket)}
}

// Allow takes one token from client's bucket. When the bucket is empty it
// returns false and the duration after which a retry will succeed (the
// Retry-After header value, rounded up by the caller).
func (l *Limiter) Allow(client string) (ok bool, retryAfter time.Duration) {
	now := l.cfg.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[client]
	if !found {
		if len(l.buckets) >= l.cfg.MaxClients {
			l.evictLocked(now)
		}
		b = &bucket{tokens: l.cfg.Burst, last: now}
		l.buckets[client] = b
	} else {
		b.tokens = math.Min(l.cfg.Burst, b.tokens+l.cfg.Rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.cfg.Rate * float64(time.Second))
}

// evictLocked frees map slots: buckets idle long enough to have refilled
// completely carry no state worth keeping and are dropped; if none are
// stale, the least-recently-seen bucket is recycled (which at worst grants
// one rotating client a fresh burst — bounded memory wins here).
func (l *Limiter) evictLocked(now time.Time) {
	full := time.Duration(l.cfg.Burst / l.cfg.Rate * float64(time.Second))
	var (
		oldestKey string
		oldest    time.Time
	)
	for k, b := range l.buckets {
		if now.Sub(b.last) >= full {
			delete(l.buckets, k)
			continue
		}
		if oldestKey == "" || b.last.Before(oldest) {
			oldestKey, oldest = k, b.last
		}
	}
	if len(l.buckets) >= l.cfg.MaxClients && oldestKey != "" {
		delete(l.buckets, oldestKey)
	}
}

// Clients reports how many client buckets are tracked (a saturation view
// for /healthz and /metrics).
func (l *Limiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// Gate caps globally concurrent work. A nil *Gate admits everything, so
// callers can wire "no cap configured" without branching.
type Gate struct {
	max int64
	cur atomic.Int64
}

// NewGate returns a gate admitting at most max concurrent holders; max
// must be > 0.
func NewGate(max int) *Gate {
	if max <= 0 {
		panic("ratelimit: gate capacity must be > 0")
	}
	return &Gate{max: int64(max)}
}

// TryAcquire takes a slot, reporting false when the gate is full. Every
// successful acquire must be paired with Release.
func (g *Gate) TryAcquire() bool {
	if g == nil {
		return true
	}
	for {
		c := g.cur.Load()
		if c >= g.max {
			return false
		}
		if g.cur.CompareAndSwap(c, c+1) {
			return true
		}
	}
}

// Release returns a slot.
func (g *Gate) Release() {
	if g != nil {
		g.cur.Add(-1)
	}
}

// InFlight reports the currently held slots.
func (g *Gate) InFlight() int {
	if g == nil {
		return 0
	}
	return int(g.cur.Load())
}

// Cap reports the gate capacity (0 when no gate is configured).
func (g *Gate) Cap() int {
	if g == nil {
		return 0
	}
	return int(g.max)
}
