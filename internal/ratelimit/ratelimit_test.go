package ratelimit

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBurstThenRefill: a fresh client spends its burst, is refused with a
// usable Retry-After, and is admitted again once the bucket refills.
func TestBurstThenRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := New(Config{Rate: 2, Burst: 3, Now: clk.now})

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("request past burst admitted")
	}
	// Empty bucket at 2 tokens/s: the next token is 500ms away.
	if retry != 500*time.Millisecond {
		t.Errorf("retryAfter = %v, want 500ms", retry)
	}

	clk.advance(500 * time.Millisecond)
	if ok, _ := l.Allow("a"); !ok {
		t.Error("request after refill refused")
	}
	// Refill caps at burst: a long idle does not bank extra tokens.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("post-idle burst request %d refused", i)
		}
	}
	if ok, _ := l.Allow("a"); ok {
		t.Error("idle banked more than burst")
	}
}

// TestPerClientIsolation: one client exhausting its bucket does not affect
// another.
func TestPerClientIsolation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := New(Config{Rate: 1, Burst: 1, Now: clk.now})
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("first a refused")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("second a admitted")
	}
	if ok, _ := l.Allow("b"); !ok {
		t.Error("b throttled by a's bucket")
	}
	if l.Clients() != 2 {
		t.Errorf("Clients = %d, want 2", l.Clients())
	}
}

// TestBucketBound: the bucket map stays bounded under a client scan, and
// stale buckets are the first to go.
func TestBucketBound(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := New(Config{Rate: 1, Burst: 1, MaxClients: 8, Now: clk.now})
	for i := 0; i < 100; i++ {
		l.Allow(fmt.Sprint("client-", i))
		clk.advance(10 * time.Second) // each predecessor goes stale
	}
	if got := l.Clients(); got > 8 {
		t.Errorf("Clients = %d, want <= 8", got)
	}
	// Hot buckets (no staleness): the oldest-seen is recycled instead.
	l2 := New(Config{Rate: 1, Burst: 100, MaxClients: 4, Now: clk.now})
	for i := 0; i < 20; i++ {
		l2.Allow(fmt.Sprint("hot-", i))
	}
	if got := l2.Clients(); got > 4 {
		t.Errorf("hot Clients = %d, want <= 4", got)
	}
}

// TestBurstFloor: Burst below 1 is raised so a full bucket admits.
func TestBurstFloor(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := New(Config{Rate: 1, Burst: 0.1, Now: clk.now})
	if ok, _ := l.Allow("a"); !ok {
		t.Error("full bucket with floored burst refused")
	}
}

// TestGate: the in-flight gate admits to capacity, refuses past it, and
// reopens on release; the nil gate admits everything.
func TestGate(t *testing.T) {
	g := NewGate(2)
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("gate refused within capacity")
	}
	if g.TryAcquire() {
		t.Fatal("gate admitted past capacity")
	}
	if g.InFlight() != 2 || g.Cap() != 2 {
		t.Errorf("InFlight/Cap = %d/%d, want 2/2", g.InFlight(), g.Cap())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Error("gate refused after release")
	}

	var nilGate *Gate
	if !nilGate.TryAcquire() {
		t.Error("nil gate refused")
	}
	nilGate.Release()
	if nilGate.InFlight() != 0 || nilGate.Cap() != 0 {
		t.Error("nil gate reports occupancy")
	}
}

// TestGateConcurrent hammers the gate under -race and checks it never
// overshoots.
func TestGateConcurrent(t *testing.T) {
	g := NewGate(4)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if g.TryAcquire() {
					if n := g.InFlight(); n > 4 {
						t.Errorf("in-flight %d > cap", n)
					}
					g.Release()
				}
			}
		}()
	}
	wg.Wait()
	if g.InFlight() != 0 {
		t.Errorf("in-flight = %d after drain", g.InFlight())
	}
}
