// Package report renders experiment results as aligned ASCII tables and CSV,
// shared by the CLIs, the examples, and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w2 := range widths {
		sep[i] = strings.Repeat("-", w2)
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (no quoting; cells must not contain
// commas, which holds for all generated content).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.headers, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string, for tests and logs.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Bytes formats a byte count with a binary unit suffix.
func Bytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
