package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "layer", "bytes", "ratio")
	tb.AddRow("conv1", 1024.0, 1.05)
	tb.AddRow("conv2_long_name", 2048.0, 0.98)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "conv2_long_name") {
		t.Errorf("render missing content:\n%s", out)
	}
	// Header separator present.
	if !strings.Contains(out, "-----") {
		t.Errorf("no separator:\n%s", out)
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
	// Columns aligned: every line has the ratio column at the same offset.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2.5)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "a,b\n1,2.5\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestBytes(t *testing.T) {
	cases := map[float64]string{
		512:     "512 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.123); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
}
