// Package roofline implements the classical roofline model as a second
// baseline alongside the fixed-miss-rate models of package prior: execution
// time is the larger of the arithmetic time (FLOPs over peak throughput)
// and the compulsory-memory time (one read of inputs + weights and one
// write of outputs over DRAM bandwidth).
//
// The roofline ignores every effect DeLTA models — coalescing inefficiency,
// cache-level reuse granularities, CTA scheduling, latency exposure — so it
// bounds how much of DeLTA's accuracy comes from that machinery.
package roofline

import (
	"delta/internal/gpu"
	"delta/internal/layers"
)

// Bound says which roof limits the layer.
type Bound int

const (
	ComputeBound Bound = iota
	MemoryBound
)

func (b Bound) String() string {
	if b == ComputeBound {
		return "compute"
	}
	return "memory"
}

// Result is a roofline prediction.
type Result struct {
	Layer  layers.Conv
	Device string

	Seconds float64
	Bound   Bound

	ArithmeticSeconds float64
	MemorySeconds     float64

	// Intensity is the layer's FLOPs per compulsory byte; Ridge is the
	// device's balance point (FLOPs/s over bytes/s). Intensity above the
	// ridge means compute-bound.
	Intensity float64
	Ridge     float64
}

// Model evaluates the roofline for one layer.
func Model(l layers.Conv, d gpu.Device) (Result, error) {
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	flops := l.FLOPs()
	bytes := l.IFmapBytes() + l.FilterBytes() + l.OFmapBytes()

	peakFLOPS := d.MACGFLOPS * 1e9
	peakBytes := d.DRAMBWGBs * 1e9

	r := Result{
		Layer:             l,
		Device:            d.Name,
		ArithmeticSeconds: flops / peakFLOPS,
		MemorySeconds:     bytes / peakBytes,
		Intensity:         flops / bytes,
		Ridge:             peakFLOPS / peakBytes,
	}
	if r.ArithmeticSeconds >= r.MemorySeconds {
		r.Seconds = r.ArithmeticSeconds
		r.Bound = ComputeBound
	} else {
		r.Seconds = r.MemorySeconds
		r.Bound = MemoryBound
	}
	return r, nil
}
