package roofline

import (
	"testing"

	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/perf"
	"delta/internal/traffic"
)

var xp = gpu.TitanXp()

func TestComputeBoundLayer(t *testing.T) {
	// A deep 3x3 conv has intensity far above the TITAN Xp ridge
	// (~28 FLOPs/B): compute-bound.
	l := layers.Conv{Name: "cb", B: 256, Ci: 256, Hi: 13, Wi: 13, Co: 384, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	r, err := Model(l, xp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound != ComputeBound {
		t.Errorf("bound = %v (intensity %.1f, ridge %.1f)", r.Bound, r.Intensity, r.Ridge)
	}
	if r.Seconds != r.ArithmeticSeconds {
		t.Error("compute-bound time not the arithmetic roof")
	}
	if r.Intensity <= r.Ridge {
		t.Errorf("intensity %v should exceed ridge %v", r.Intensity, r.Ridge)
	}
}

func TestMemoryBoundLayer(t *testing.T) {
	// A 1x1 conv with few channels moves many bytes per FLOP.
	l := layers.Conv{Name: "mb", B: 256, Ci: 16, Hi: 112, Wi: 112, Co: 16, Hf: 1, Wf: 1, Stride: 1}
	r, err := Model(l, xp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound != MemoryBound {
		t.Errorf("bound = %v (intensity %.1f, ridge %.1f)", r.Bound, r.Intensity, r.Ridge)
	}
	if r.Bound.String() != "memory" {
		t.Errorf("Bound.String = %q", r.Bound.String())
	}
}

func TestArithmeticRoofIsLowerBound(t *testing.T) {
	// The arithmetic roof is a hard lower bound on any DeLTA prediction
	// (DeLTA charges real coalescing and reuse inefficiencies on top).
	// The memory roof is NOT comparable: it charges OFmap stores against
	// DRAM bandwidth that the paper's epilogue model overlaps.
	ls := []layers.Conv{
		{Name: "a", B: 64, Ci: 256, Hi: 13, Wi: 13, Co: 384, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
		{Name: "b", B: 64, Ci: 64, Hi: 56, Wi: 56, Co: 64, Hf: 1, Wf: 1, Stride: 1},
		{Name: "c", B: 64, Ci: 96, Hi: 28, Wi: 28, Co: 128, Hf: 5, Wf: 5, Stride: 1, Pad: 2},
	}
	for _, l := range ls {
		rf, err := Model(l, xp)
		if err != nil {
			t.Fatal(err)
		}
		dl, err := perf.ModelLayer(l, xp, traffic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rf.ArithmeticSeconds > dl.Seconds*1.001 {
			t.Errorf("%s: arithmetic roof %v above DeLTA %v", l.Name, rf.ArithmeticSeconds, dl.Seconds)
		}
	}
}

func TestRooflineUnderestimatesInefficientLayers(t *testing.T) {
	// AlexNet conv1 (stride 4, terrible coalescing): the roofline misses
	// the L1 inefficiency entirely and under-predicts DeLTA noticeably —
	// the gap that motivates traffic modeling.
	l := layers.Conv{Name: "a1", B: 256, Ci: 3, Hi: 227, Wi: 227, Co: 96, Hf: 11, Wf: 11, Stride: 4}
	rf, err := Model(l, xp)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := perf.ModelLayer(l, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dl.Seconds < rf.Seconds*1.2 {
		t.Errorf("DeLTA %v should exceed roofline %v by >20%% on conv1", dl.Seconds, rf.Seconds)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Model(layers.Conv{Name: "bad"}, xp); err == nil {
		t.Error("invalid layer accepted")
	}
	l := layers.Conv{Name: "ok", B: 1, Ci: 1, Hi: 4, Wi: 4, Co: 1, Hf: 1, Wf: 1, Stride: 1}
	if _, err := Model(l, gpu.Device{}); err == nil {
		t.Error("invalid device accepted")
	}
}
