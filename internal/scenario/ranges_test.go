package scenario

import (
	"math"
	"math/rand"
	"testing"

	"delta/internal/gpu"
	"delta/internal/sim/engine"
	"delta/internal/traffic"
)

func TestSplitSpanExactCover(t *testing.T) {
	for _, tc := range []struct{ start, count, n int }{
		{0, 1, 1}, {0, 10, 3}, {0, 10, 10}, {5, 7, 2}, {100, 1, 8},
		{0, 64, 16}, {3, 1000, 7},
	} {
		rs := SplitSpan(tc.start, tc.count, tc.n)
		want := tc.n
		if tc.count < want {
			want = tc.count
		}
		if len(rs) != want {
			t.Errorf("SplitSpan(%d,%d,%d): %d ranges, want %d", tc.start, tc.count, tc.n, len(rs), want)
		}
		next := tc.start
		for i, r := range rs {
			if r.Count <= 0 {
				t.Errorf("SplitSpan(%d,%d,%d): range %d empty (%+v)", tc.start, tc.count, tc.n, i, r)
			}
			if r.Offset != next {
				t.Errorf("SplitSpan(%d,%d,%d): range %d starts at %d, want %d (gap or overlap)",
					tc.start, tc.count, tc.n, i, r.Offset, next)
			}
			next = r.End()
		}
		if next != tc.start+tc.count {
			t.Errorf("SplitSpan(%d,%d,%d): cover ends at %d, want %d", tc.start, tc.count, tc.n, next, tc.start+tc.count)
		}
	}
}

func TestSplitSpanDegenerate(t *testing.T) {
	if rs := SplitSpan(0, 0, 4); rs != nil {
		t.Errorf("empty span: got %v, want nil", rs)
	}
	if rs := SplitSpan(7, -3, 4); rs != nil {
		t.Errorf("negative span: got %v, want nil", rs)
	}
	// n < 1 collapses to one range covering the whole span.
	rs := SplitSpan(2, 5, 0)
	if len(rs) != 1 || rs[0] != (Range{Offset: 2, Count: 5}) {
		t.Errorf("n=0: got %v, want one full range", rs)
	}
}

// TestSplitRangesPropertyCover drives randomized scenarios through the
// method form: SplitRanges(n) must be a disjoint exact cover of
// [0, Size()) in expansion order for every n, including n far above the
// point count (no empty shards appear — fewer shards do).
func TestSplitRangesPropertyCover(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		sc := Scenario{
			Name:       "prop",
			Workloads:  make([]Workload, 1+rng.Intn(3)),
			Devices:    make([]gpu.Device, 1+rng.Intn(3)),
			Batches:    make([]int, rng.Intn(4)),
			Models:     []string{ModelDelta, ModelPrior, ModelRoofline}[:1+rng.Intn(3)],
			Passes:     []string{PassInference, PassTraining}[:1+rng.Intn(2)],
			Options:    make([]traffic.Options, rng.Intn(3)),
			SimConfigs: make([]engine.Config, rng.Intn(3)),
		}
		for i := range sc.Workloads {
			sc.Workloads[i] = Workload{Name: "alexnet"}
		}
		size := sc.Size()
		n := 1 + rng.Intn(2*size+4)
		rs, err := sc.SplitRanges(n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if size == 0 {
			if len(rs) != 0 {
				t.Fatalf("trial %d: zero-size scenario split into %v", trial, rs)
			}
			continue
		}
		next := 0
		for i, r := range rs {
			if r.Count <= 0 {
				t.Fatalf("trial %d: empty shard %d of %v (size %d, n %d)", trial, i, rs, size, n)
			}
			if r.Offset != next {
				t.Fatalf("trial %d: shard %d offset %d, want %d (size %d, n %d)", trial, i, r.Offset, next, size, n)
			}
			next = r.End()
		}
		if next != size {
			t.Fatalf("trial %d: cover ends at %d, want %d (n %d)", trial, next, size, n)
		}
		if len(rs) > n {
			t.Fatalf("trial %d: %d shards exceed requested %d", trial, len(rs), n)
		}
	}
}

// TestSizeCheckedOverflow exercises the saturating arithmetic behind
// Size/SizeChecked. A scenario whose cross-product actually overflows int
// would need multi-gigabyte axis slices, so the helpers are checked
// directly and the sentinel behavior at the Size level is pinned through
// them.
func TestSizeCheckedOverflow(t *testing.T) {
	if got := mulCap(math.MaxInt/2, 3); got != math.MaxInt {
		t.Errorf("mulCap overflow: got %d, want MaxInt", got)
	}
	if got := mulCap(math.MaxInt, 1); got != math.MaxInt {
		t.Errorf("mulCap identity at MaxInt: got %d", got)
	}
	if got := mulCap(0, math.MaxInt); got != 0 {
		t.Errorf("mulCap zero: got %d", got)
	}
	if got := mulCap(1<<31, 1<<31); got != 1<<62 {
		t.Errorf("mulCap 2^62 square: got %d, want %d", got, 1<<62)
	}
	if got := mulCap(1<<32, 1<<32); got != math.MaxInt {
		t.Errorf("mulCap 2^64 square: got %d, want MaxInt", got)
	}
	if got := mulCap(1<<20, 1<<20); got != 1<<40 {
		t.Errorf("mulCap in range: got %d, want %d", got, 1<<40)
	}
	if got := addCap(math.MaxInt, 1); got != math.MaxInt {
		t.Errorf("addCap overflow: got %d, want MaxInt", got)
	}
	if got := addCap(40, 2); got != 42 {
		t.Errorf("addCap in range: got %d", got)
	}
}

// TestSizeCheckedMatchesExpand pins SizeChecked against the ground truth
// on a realistic multi-axis scenario.
func TestSizeCheckedMatchesExpand(t *testing.T) {
	sc := Scenario{
		Name:      "sz",
		Workloads: []Workload{{Name: "alexnet"}, {Name: "googlenet"}},
		Devices:   []gpu.Device{gpu.TitanXp(), gpu.V100()},
		Batches:   []int{1, 32},
		Models:    []string{ModelDelta, ModelPrior},
		Passes:    []string{PassInference, PassTraining},
	}
	n, err := sc.SizeChecked()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(pts) || n != sc.Size() {
		t.Fatalf("SizeChecked %d, Size %d, Expand %d", n, sc.Size(), len(pts))
	}
}
