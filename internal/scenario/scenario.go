// Package scenario defines the declarative sweep request that every batch
// consumer of the model shares: a Scenario names a cross-product of
// workloads × devices × batch sizes × model variants × passes × traffic
// options (plus optional trace-driven simulator configurations), and
// Expand flattens it into the ordered list of evaluation points the
// pipeline streams through.
//
// A Scenario is data, not code: it can be built in Go, decoded from JSON
// (internal/spec), posted to the delta-server /v2 jobs API, or handed to
// `delta -scenario file.json`. Expansion is deterministic — the point
// order, the per-point indices, and the total count are fixed by the
// scenario alone — so streamed results can be correlated with progress
// counts and re-runs memo-hit the pipeline cache.
package scenario

import (
	"fmt"
	"math"

	"delta/internal/cnn"
	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/sim/engine"
	"delta/internal/traffic"
)

// Model and pass axis values. They mirror the pipeline selectors (the
// pipeline converts them); scenario keeps its own strings so the package
// stays importable from the pipeline without a cycle.
const (
	ModelDelta    = "delta"
	ModelPrior    = "prior"
	ModelRoofline = "roofline"

	PassInference = "inference"
	PassTraining  = "training"
)

// Workload names one network of the sweep: either a registered network
// (resolved by name at every batch-axis value) or an explicit layer list
// (used verbatim; the batch axis does not apply because each layer carries
// its own mini-batch).
type Workload struct {
	// Name is a registered network name (cnn.ByName) when Net is empty.
	Name string

	// Net is an explicit layer list with counts.
	Net cnn.Network
}

// explicit reports whether the workload carries its own layers.
func (w Workload) explicit() bool { return len(w.Net.Layers) > 0 }

// label returns the display name of the workload.
func (w Workload) label() string {
	if w.explicit() {
		if w.Net.Name != "" {
			return w.Net.Name
		}
		return "custom"
	}
	return w.Name
}

// Scenario is a declarative evaluation sweep. Zero-value axes take the
// documented defaults, so the minimal scenario is one workload plus one
// device.
type Scenario struct {
	// Name labels the scenario in results and job listings.
	Name string

	// Workloads is the network axis (at least one entry).
	Workloads []Workload

	// Devices is the device axis (at least one entry). Entries are fully
	// resolved gpu.Device values; registry names and GPUScale grids are
	// resolved by the codec layer (internal/spec) before expansion.
	Devices []gpu.Device

	// Batches is the mini-batch axis for named workloads; empty means
	// one point at cnn.DefaultBatch (encoded as 0).
	Batches []int

	// Models is the analytical-model axis (ModelDelta, ModelPrior,
	// ModelRoofline). Empty means ModelDelta only — unless SimConfigs is
	// set, in which case an empty Models axis means "simulation only"
	// (list models explicitly to sweep both).
	Models []string

	// Passes is the pass axis (PassInference, PassTraining); empty means
	// PassInference only. Training combines only with ModelDelta;
	// cross-product combinations with other models are skipped, not
	// rejected, so dense grids stay declarative.
	Passes []string

	// MissRate parameterizes ModelPrior points (0 means 1.0).
	MissRate float64

	// Options is the traffic-option axis; empty means one zero-value
	// entry (the paper's configuration).
	Options []traffic.Options

	// SimConfigs optionally extends the sweep with trace-driven simulator
	// points: every workload × batch × device also runs each config
	// through the memory-hierarchy simulator. The config's Device field
	// is overridden by the device axis.
	SimConfigs []engine.Config
}

// Point is one expanded evaluation: a whole-network request on one device
// under one model configuration, or (when Sim is non-nil) one trace-driven
// simulation of the network's layers.
type Point struct {
	// Index is the point's position in the scenario's expansion order.
	Index int

	// Workload / Device / Batch / Model / Pass name the point's axis
	// coordinates. Workload is the display label; Net carries the
	// resolved layers.
	Workload string
	Net      cnn.Network
	Device   gpu.Device
	Batch    int
	Model    string
	Pass     string

	MissRate float64
	Options  traffic.Options

	// Sim marks a trace-driven simulation point (Model and Pass are empty
	// for these).
	Sim *engine.Config
}

// String renders the point's axis coordinates for logs and progress lines.
func (p Point) String() string {
	if p.Sim != nil {
		return fmt.Sprintf("sim %s b%d on %s", p.Workload, p.Batch, p.Device.Name)
	}
	return fmt.Sprintf("%s/%s %s b%d on %s", p.Model, p.Pass, p.Workload, p.Batch, p.Device.Name)
}

func orStrings(xs []string, def string) []string {
	if len(xs) == 0 {
		return []string{def}
	}
	return xs
}

func orInts(xs []int, def int) []int {
	if len(xs) == 0 {
		return []int{def}
	}
	return xs
}

func orOptions(xs []traffic.Options) []traffic.Options {
	if len(xs) == 0 {
		return []traffic.Options{{}}
	}
	return xs
}

// skipped reports whether a (model, pass) combination is dropped from the
// cross-product: training requires the delta model.
func skipped(model, pass string) bool {
	return pass == PassTraining && model != ModelDelta
}

// Validate rejects malformed scenarios before expansion: empty axes,
// unknown model/pass names, unresolvable workloads, invalid devices and
// layers. Validation resolves named workloads, so a valid scenario is
// guaranteed to expand.
func (s Scenario) Validate() error {
	if len(s.Workloads) == 0 {
		return fmt.Errorf("scenario %q: no workloads", s.Name)
	}
	if len(s.Devices) == 0 {
		return fmt.Errorf("scenario %q: no devices", s.Name)
	}
	for _, m := range s.Models {
		switch m {
		case ModelDelta, ModelPrior, ModelRoofline:
		default:
			return fmt.Errorf("scenario %q: unknown model %q", s.Name, m)
		}
	}
	for _, p := range s.Passes {
		switch p {
		case PassInference, PassTraining:
		default:
			return fmt.Errorf("scenario %q: unknown pass %q", s.Name, p)
		}
	}
	if s.MissRate < 0 || s.MissRate > 1 {
		return fmt.Errorf("scenario %q: miss rate %v outside [0, 1]", s.Name, s.MissRate)
	}
	for _, b := range orInts(s.Batches, 0) {
		if b < 0 {
			return fmt.Errorf("scenario %q: negative batch %d", s.Name, b)
		}
	}
	for i, d := range s.Devices {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("scenario %q: device %d: %w", s.Name, i, err)
		}
	}
	for i, w := range s.Workloads {
		if w.explicit() {
			// Layer-by-layer (not Net.Validate) so nil counts stay legal:
			// the pipeline treats a nil counts vector as all ones.
			if w.Net.Counts != nil && len(w.Net.Counts) != len(w.Net.Layers) {
				return fmt.Errorf("scenario %q: workload %d: %d counts for %d layers",
					s.Name, i, len(w.Net.Counts), len(w.Net.Layers))
			}
			for j, l := range w.Net.Layers {
				if err := l.Validate(); err != nil {
					return fmt.Errorf("scenario %q: workload %d layer %d: %w", s.Name, i, j, err)
				}
			}
			continue
		}
		if w.Name == "" {
			return fmt.Errorf("scenario %q: workload %d: empty (need a name or layers)", s.Name, i)
		}
		// Registry membership doesn't depend on the batch (negative
		// batches are rejected above), so one resolution suffices.
		if _, err := cnn.ByName(w.Name, 0); err != nil {
			return fmt.Errorf("scenario %q: workload %d: %w", s.Name, i, err)
		}
	}
	if s.countModelCombos() == 0 && len(s.SimConfigs) == 0 {
		return fmt.Errorf("scenario %q: every model×pass combination is invalid (training requires the delta model)", s.Name)
	}
	return nil
}

// analyticModels returns the effective model axis: the listed models, or
// ModelDelta when unset — unless the scenario is sim-only.
func (s Scenario) analyticModels() []string {
	if len(s.Models) == 0 {
		if len(s.SimConfigs) > 0 {
			return nil
		}
		return []string{ModelDelta}
	}
	return s.Models
}

// countModelCombos returns the surviving (model, pass, options) combos.
func (s Scenario) countModelCombos() int {
	n := 0
	for _, m := range s.analyticModels() {
		for _, p := range orStrings(s.Passes, PassInference) {
			if !skipped(m, p) {
				n += len(orOptions(s.Options))
			}
		}
	}
	return n
}

// Size returns the number of points the scenario expands to, without
// resolving workloads. Streamed progress counts are reported against it.
// A cross-product too large for int saturates at math.MaxInt (use
// SizeChecked to detect that case — such a scenario cannot be expanded or
// evaluated anyway, but splitting code must not see a wrapped-negative
// total).
func (s Scenario) Size() int {
	n, _ := s.SizeChecked()
	return n
}

// SizeChecked is Size with overflow detection: it returns math.MaxInt and
// a non-nil error when the axis cross-product does not fit in an int.
func (s Scenario) SizeChecked() (int, error) {
	perWDB := addCap(s.countModelCombos(), len(s.SimConfigs))
	batches := len(orInts(s.Batches, 0))
	explicit := 0
	for _, w := range s.Workloads {
		if w.explicit() {
			explicit++
		}
	}
	named := len(s.Workloads) - explicit
	n := mulCap(mulCap(addCap(mulCap(named, batches), explicit), len(s.Devices)), perWDB)
	if n == math.MaxInt {
		return math.MaxInt, fmt.Errorf("scenario %q: point count overflows int", s.Name)
	}
	return n, nil
}

// mulCap multiplies two non-negative counts, saturating at math.MaxInt on
// overflow (the sentinel SizeChecked reports as an error).
func mulCap(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt/b {
		return math.MaxInt
	}
	return a * b
}

// addCap adds two non-negative counts, saturating at math.MaxInt.
func addCap(a, b int) int {
	if a > math.MaxInt-b {
		return math.MaxInt
	}
	return a + b
}

// Range is a contiguous half-open span [Offset, Offset+Count) of a
// scenario's expansion-order point indices: the unit of work a distributed
// sweep assigns to one worker (evaluate the scenario with a stream offset
// of Range.Offset and a limit of Range.Count).
type Range struct {
	Offset int
	Count  int
}

// End returns the exclusive upper bound of the range.
func (r Range) End() int { return r.Offset + r.Count }

// SplitRanges partitions the scenario's full index space [0, Size()) into
// at most n contiguous ranges in expansion order — a disjoint exact cover,
// so evaluating every range on any mix of workers and concatenating the
// results in range order reproduces a single-node sweep exactly. It
// returns an error when the point count overflows (splitting a saturated
// size would silently drop points).
func (s Scenario) SplitRanges(n int) ([]Range, error) {
	size, err := s.SizeChecked()
	if err != nil {
		return nil, err
	}
	return SplitSpan(0, size, n), nil
}

// SplitSpan partitions the half-open index span [start, start+count) into
// at most n contiguous, non-empty ranges of near-equal size (the first
// count%n ranges are one point longer). Fewer than n points yield one
// single-point range each — never an empty range. n < 1 is treated as 1;
// an empty span yields no ranges.
func SplitSpan(start, count, n int) []Range {
	if count <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > count {
		n = count
	}
	out := make([]Range, 0, n)
	base, extra := count/n, count%n
	off := start
	for i := 0; i < n; i++ {
		c := base
		if i < extra {
			c++
		}
		out = append(out, Range{Offset: off, Count: c})
		off += c
	}
	return out
}

// Expand flattens the scenario into its ordered point list. The order is
// deterministic and documented: workloads (outer) → batches → devices →
// models → passes → options, then the workload's simulator configs — so a
// point's Index alone identifies its axis coordinates.
func (s Scenario) Expand() ([]Point, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	models := s.analyticModels()
	passes := orStrings(s.Passes, PassInference)
	options := orOptions(s.Options)
	batches := orInts(s.Batches, 0)

	var out []Point
	for _, w := range s.Workloads {
		wBatches := batches
		if w.explicit() {
			// Explicit layer lists carry their own mini-batch.
			wBatches = []int{0}
		}
		for _, b := range wBatches {
			net := w.Net
			if !w.explicit() {
				var err error
				net, err = cnn.ByName(w.Name, b)
				if err != nil {
					return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
				}
			}
			for _, d := range s.Devices {
				for _, m := range models {
					for _, p := range passes {
						if skipped(m, p) {
							continue
						}
						mr := 0.0
						if m == ModelPrior {
							mr = s.MissRate
							if mr == 0 {
								mr = 1.0
							}
						}
						for _, opt := range options {
							out = append(out, Point{
								Index: len(out), Workload: w.label(), Net: net,
								Device: d, Batch: b, Model: m, Pass: p,
								MissRate: mr, Options: opt,
							})
						}
					}
				}
				for _, sc := range s.SimConfigs {
					cfg := sc
					cfg.Device = d
					out = append(out, Point{
						Index: len(out), Workload: w.label(), Net: net,
						Device: d, Batch: b, Sim: &cfg,
					})
				}
			}
		}
	}
	return out, nil
}

// Single wraps one whole-network evaluation as a one-point scenario: the
// adapter shape the /v1 endpoints and the facade batch helpers use.
func Single(net cnn.Network, d gpu.Device, opt traffic.Options, model, pass string, missRate float64) Scenario {
	return Scenario{
		Name:      net.Name,
		Workloads: []Workload{{Net: net}},
		Devices:   []gpu.Device{d},
		Models:    []string{orString(model, ModelDelta)},
		Passes:    []string{orString(pass, PassInference)},
		MissRate:  missRate,
		Options:   []traffic.Options{opt},
	}
}

// SingleSim wraps one trace-driven simulation sweep (a layer list under one
// engine config) as a one-point scenario.
func SingleSim(ls []layers.Conv, cfg engine.Config) Scenario {
	return Scenario{
		Name:       "sim",
		Workloads:  []Workload{{Net: cnn.Network{Name: "sim", Layers: ls}}},
		Devices:    []gpu.Device{cfg.Device},
		Models:     nil,
		Passes:     nil,
		SimConfigs: []engine.Config{cfg},
	}
}

func orString(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
