package scenario

import (
	"strings"
	"testing"

	"delta/internal/cnn"
	"delta/internal/gpu"
	"delta/internal/sim/engine"
	"delta/internal/traffic"
)

// TestExpandMultiAxis checks the documented expansion order and the axis
// coordinates of a dense grid.
func TestExpandMultiAxis(t *testing.T) {
	s := Scenario{
		Name:      "grid",
		Workloads: []Workload{{Name: "alexnet"}, {Name: "vgg16"}},
		Devices:   []gpu.Device{gpu.TitanXp(), gpu.V100()},
		Batches:   []int{16, 32},
		Models:    []string{ModelDelta, ModelPrior},
	}
	pts, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * 2 * 2 // workloads × batches × devices × models
	if len(pts) != want {
		t.Fatalf("expanded %d points, want %d", len(pts), want)
	}
	if got := s.Size(); got != want {
		t.Errorf("Size() = %d, want %d", got, want)
	}
	for i, p := range pts {
		if p.Index != i {
			t.Errorf("point %d has Index %d", i, p.Index)
		}
		if p.Pass != PassInference {
			t.Errorf("point %d pass = %q", i, p.Pass)
		}
	}
	// Order: workload outer, then batch, then device, then model.
	if pts[0].Workload != "alexnet" || pts[0].Batch != 16 ||
		pts[0].Device.Name != "TITAN Xp" || pts[0].Model != ModelDelta {
		t.Errorf("point 0 = %s", pts[0])
	}
	if pts[1].Model != ModelPrior || pts[1].MissRate != 1.0 {
		t.Errorf("point 1 = %s (miss rate %v)", pts[1], pts[1].MissRate)
	}
	if pts[2].Device.Name != "V100" {
		t.Errorf("point 2 device = %q", pts[2].Device.Name)
	}
	if pts[4].Batch != 32 {
		t.Errorf("point 4 batch = %d", pts[4].Batch)
	}
	if pts[8].Workload != "vgg16" {
		t.Errorf("point 8 workload = %q", pts[8].Workload)
	}
	// Named workloads resolve at the point's batch.
	if pts[0].Net.Layers[0].B != 16 || pts[4].Net.Layers[0].B != 32 {
		t.Error("named workload not resolved at the batch-axis value")
	}
}

// TestExpandSkipsInvalidCombos drops (prior|roofline, training) pairs
// instead of rejecting the grid.
func TestExpandSkipsInvalidCombos(t *testing.T) {
	s := Scenario{
		Workloads: []Workload{{Name: "alexnet"}},
		Devices:   []gpu.Device{gpu.TitanXp()},
		Batches:   []int{16},
		Models:    []string{ModelDelta, ModelPrior, ModelRoofline},
		Passes:    []string{PassInference, PassTraining},
	}
	pts, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 3 models × inference + delta × training.
	if len(pts) != 4 {
		t.Fatalf("expanded %d points, want 4", len(pts))
	}
	if s.Size() != len(pts) {
		t.Errorf("Size() = %d, want %d", s.Size(), len(pts))
	}
	training := 0
	for _, p := range pts {
		if p.Pass == PassTraining {
			training++
			if p.Model != ModelDelta {
				t.Errorf("training point with model %q", p.Model)
			}
		}
	}
	if training != 1 {
		t.Errorf("training points = %d, want 1", training)
	}
}

// TestExpandSimAxis: sim configs extend the sweep; with no models listed a
// sim scenario is simulation-only.
func TestExpandSimAxis(t *testing.T) {
	s := Scenario{
		Workloads:  []Workload{{Net: cnn.AlexNet(2)}},
		Devices:    []gpu.Device{gpu.TitanXp()},
		SimConfigs: []engine.Config{{MaxWaves: 1}},
	}
	pts, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Sim == nil {
		t.Fatalf("sim-only scenario expanded to %d points (sim %v)", len(pts), pts[0].Sim != nil)
	}
	if pts[0].Sim.Device.Name != "TITAN Xp" {
		t.Errorf("sim config device = %q (device axis not applied)", pts[0].Sim.Device.Name)
	}

	s.Models = []string{ModelDelta}
	pts, err = s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("mixed scenario expanded to %d points, want 2", len(pts))
	}
	if pts[0].Sim != nil || pts[1].Sim == nil {
		t.Error("analytic point should precede the sim point")
	}
}

// TestExplicitWorkloadIgnoresBatches: explicit layer lists carry their own
// mini-batch, so the batch axis multiplies named workloads only.
func TestExplicitWorkloadIgnoresBatches(t *testing.T) {
	s := Scenario{
		Workloads: []Workload{{Net: cnn.AlexNet(8)}, {Name: "alexnet"}},
		Devices:   []gpu.Device{gpu.TitanXp()},
		Batches:   []int{16, 32},
	}
	pts, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 { // explicit once + named twice
		t.Fatalf("expanded %d points, want 3", len(pts))
	}
	if s.Size() != 3 {
		t.Errorf("Size() = %d, want 3", s.Size())
	}
	if pts[0].Net.Layers[0].B != 8 {
		t.Error("explicit workload re-batched")
	}
}

// TestValidateErrors covers the rejection paths.
func TestValidateErrors(t *testing.T) {
	base := Scenario{
		Workloads: []Workload{{Name: "alexnet"}},
		Devices:   []gpu.Device{gpu.TitanXp()},
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no workloads", func(s *Scenario) { s.Workloads = nil }, "no workloads"},
		{"no devices", func(s *Scenario) { s.Devices = nil }, "no devices"},
		{"unknown model", func(s *Scenario) { s.Models = []string{"magic"} }, "unknown model"},
		{"unknown pass", func(s *Scenario) { s.Passes = []string{"sideways"} }, "unknown pass"},
		{"unknown network", func(s *Scenario) { s.Workloads = []Workload{{Name: "skynet"}} }, "skynet"},
		{"negative batch", func(s *Scenario) { s.Batches = []int{-1} }, "negative batch"},
		{"bad miss rate", func(s *Scenario) { s.MissRate = 2 }, "miss rate"},
		{"empty workload", func(s *Scenario) { s.Workloads = []Workload{{}} }, "empty"},
		{"bad device", func(s *Scenario) { s.Devices = []gpu.Device{{Name: "broken"}} }, "broken"},
		{"all combos invalid", func(s *Scenario) {
			s.Models = []string{ModelPrior}
			s.Passes = []string{PassTraining}
		}, "invalid"},
	}
	for _, tc := range cases {
		s := base
		tc.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("base scenario invalid: %v", err)
	}
}

// TestSingle wraps one evaluation and defaults model/pass.
func TestSingle(t *testing.T) {
	s := Single(cnn.AlexNet(4), gpu.V100(), traffic.Options{}, "", "", 0)
	pts, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("Single expanded to %d points", len(pts))
	}
	p := pts[0]
	if p.Model != ModelDelta || p.Pass != PassInference || p.Device.Name != "V100" {
		t.Errorf("point = %s", p)
	}
}
