// Package cache implements the sectored, set-associative cache model the
// trace-driven simulator uses for GPU L1 and L2 caches.
//
// GPU caches tag at 128-byte line granularity but fill at 32-byte sector
// granularity (the paper's "minimum memory transaction granularity",
// Section IV): a miss on a sector of an already-present line fetches only
// that sector. Replacement is LRU within a set.
package cache

import (
	"fmt"
	"math/bits"
)

// Config sizes a cache.
type Config struct {
	SizeBytes   int // total data capacity
	LineBytes   int // tag granularity
	SectorBytes int // fill granularity
	Ways        int // associativity
}

// Validate reports whether the configuration is geometrically consistent.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.SectorBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.LineBytes%c.SectorBytes != 0:
		return fmt.Errorf("cache: line %d not a multiple of sector %d", c.LineBytes, c.SectorBytes)
	case c.LineBytes/c.SectorBytes > 64:
		return fmt.Errorf("cache: more than 64 sectors per line")
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by line*ways %d", c.SizeBytes, c.LineBytes*c.Ways)
	}
	return nil
}

// Stats counts sector-granularity cache events.
type Stats struct {
	SectorAccesses uint64 // sectors referenced (loads)
	SectorHits     uint64
	SectorMisses   uint64 // sectors fetched from the next level
	LineEvictions  uint64

	SectorWrites    uint64 // sectors written (stores)
	DirtyWritebacks uint64 // dirty sectors evicted to the next level
}

// MissRate returns misses / accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.SectorAccesses == 0 {
		return 0
	}
	return float64(s.SectorMisses) / float64(s.SectorAccesses)
}

type way struct {
	tag     int64
	valid   uint64 // per-sector valid bits
	dirty   uint64 // per-sector dirty bits
	lastUse uint64
	live    bool
}

// Cache is a sectored set-associative LRU cache. Not safe for concurrent
// use; the engine drives each cache from a single goroutine.
type Cache struct {
	cfg     Config
	sets    [][]way
	numSets int64
	tick    uint64
	stats   Stats
}

// New builds a cache; it panics on an invalid config (a programmer error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	sets := make([][]way, numSets)
	backing := make([]way, numSets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		numSets: int64(numSets),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = way{}
		}
	}
	c.tick = 0
	c.stats = Stats{}
}

// AccessSector references one sector by byte address. It returns true on a
// hit; on a miss the sector is filled (fetching SectorBytes from the next
// level, which the caller accounts for).
func (c *Cache) AccessSector(byteAddr int64) bool {
	c.tick++
	c.stats.SectorAccesses++

	lineAddr := byteAddr / int64(c.cfg.LineBytes)
	sector := uint(byteAddr % int64(c.cfg.LineBytes) / int64(c.cfg.SectorBytes))
	setIdx := lineAddr % c.numSets
	set := c.sets[setIdx]

	// Probe for the line.
	for i := range set {
		w := &set[i]
		if w.live && w.tag == lineAddr {
			w.lastUse = c.tick
			if w.valid&(1<<sector) != 0 {
				c.stats.SectorHits++
				return true
			}
			// Line present, sector not: sector fill.
			w.valid |= 1 << sector
			c.stats.SectorMisses++
			return false
		}
	}

	// Line absent: evict LRU way, install line with this sector.
	c.install(set, lineAddr, sector, false)
	c.stats.SectorMisses++
	return false
}

// WriteSector writes one sector by byte address with write-back,
// write-validate allocation: a full-sector store installs the sector
// without fetching it (no read traffic), marking it dirty. The dirty data
// reaches the next level only on eviction (DirtyWritebacks).
func (c *Cache) WriteSector(byteAddr int64) {
	c.tick++
	c.stats.SectorWrites++

	lineAddr := byteAddr / int64(c.cfg.LineBytes)
	sector := uint(byteAddr % int64(c.cfg.LineBytes) / int64(c.cfg.SectorBytes))
	setIdx := lineAddr % c.numSets
	set := c.sets[setIdx]

	for i := range set {
		w := &set[i]
		if w.live && w.tag == lineAddr {
			w.lastUse = c.tick
			w.valid |= 1 << sector
			w.dirty |= 1 << sector
			return
		}
	}
	c.install(set, lineAddr, sector, true)
}

// install evicts the LRU way of the set (counting dirty writebacks) and
// fills it with a fresh line holding one sector.
func (c *Cache) install(set []way, lineAddr int64, sector uint, dirty bool) {
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].live {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if set[victim].live {
		c.stats.LineEvictions++
		c.countWritebacks(set[victim].dirty)
	}
	w := way{tag: lineAddr, valid: 1 << sector, lastUse: c.tick, live: true}
	if dirty {
		w.dirty = 1 << sector
	}
	set[victim] = w
}

func (c *Cache) countWritebacks(dirty uint64) {
	c.stats.DirtyWritebacks += uint64(bits.OnesCount64(dirty))
}

// FlushDirty writes back every dirty sector still resident (end of kernel)
// and returns the number flushed; counters include them as DirtyWritebacks.
func (c *Cache) FlushDirty() uint64 {
	before := c.stats.DirtyWritebacks
	for _, set := range c.sets {
		for i := range set {
			if set[i].live {
				c.countWritebacks(set[i].dirty)
				set[i].dirty = 0
			}
		}
	}
	return c.stats.DirtyWritebacks - before
}

// AccessBytes references every sector overlapped by [byteAddr,
// byteAddr+size) and returns the number of sector misses.
func (c *Cache) AccessBytes(byteAddr int64, size int) (misses int) {
	sb := int64(c.cfg.SectorBytes)
	first := byteAddr / sb
	last := (byteAddr + int64(size) - 1) / sb
	for s := first; s <= last; s++ {
		if !c.AccessSector(s * sb) {
			misses++
		}
	}
	return misses
}

// MissBytes returns the bytes fetched from the next level so far.
func (c *Cache) MissBytes() uint64 {
	return c.stats.SectorMisses * uint64(c.cfg.SectorBytes)
}

// AccessBytesTotal returns the bytes referenced so far (sector granularity).
func (c *Cache) AccessBytesTotal() uint64 {
	return c.stats.SectorAccesses * uint64(c.cfg.SectorBytes)
}
