// Package cache implements the sectored, set-associative cache model the
// trace-driven simulator uses for GPU L1 and L2 caches.
//
// GPU caches tag at 128-byte line granularity but fill at 32-byte sector
// granularity (the paper's "minimum memory transaction granularity",
// Section IV): a miss on a sector of an already-present line fetches only
// that sector. Replacement is LRU within a set.
//
// The model sits on the simulator's hottest path (one call per sector of
// every warp of every CTA), so address decomposition uses shifts and masks
// instead of div/mod: line and sector granularities must be powers of two
// (true of every modeled device; Validate rejects the rest), and the set
// index — whose count is NOT a power of two on several devices (TITAN Xp:
// 96 L1 sets, 1536 L2 sets) — falls back to a Lemire fastmod (two
// multiplies) for 32-bit line addresses, and to hardware division beyond.
package cache

import (
	"fmt"
	"math/bits"
	"sync"
)

// Config sizes a cache.
type Config struct {
	SizeBytes   int // total data capacity
	LineBytes   int // tag granularity
	SectorBytes int // fill granularity
	Ways        int // associativity
}

// Validate reports whether the configuration is geometrically consistent.
// LineBytes and SectorBytes must be powers of two: the simulator decomposes
// every address with shifts and masks, and no real cache uses non-power-of-
// two transaction granularities. (The set *count* may be any positive
// integer; see setIndex.)
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.SectorBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line %d not a power of two", c.LineBytes)
	case c.SectorBytes&(c.SectorBytes-1) != 0:
		return fmt.Errorf("cache: sector %d not a power of two", c.SectorBytes)
	case c.LineBytes%c.SectorBytes != 0:
		return fmt.Errorf("cache: line %d not a multiple of sector %d", c.LineBytes, c.SectorBytes)
	case c.LineBytes/c.SectorBytes > 64:
		return fmt.Errorf("cache: more than 64 sectors per line")
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by line*ways %d", c.SizeBytes, c.LineBytes*c.Ways)
	}
	return nil
}

// Stats counts sector-granularity cache events.
type Stats struct {
	SectorAccesses uint64 // sectors referenced (loads)
	SectorHits     uint64
	SectorMisses   uint64 // sectors fetched from the next level
	LineEvictions  uint64

	SectorWrites    uint64 // sectors written (stores)
	DirtyWritebacks uint64 // dirty sectors evicted to the next level
}

// MissRate returns misses / accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.SectorAccesses == 0 {
		return 0
	}
	return float64(s.SectorMisses) / float64(s.SectorAccesses)
}

// invalidTag marks an empty way. Real line addresses are never negative.
const invalidTag = -1

// Cache is a sectored set-associative LRU cache. Not safe for concurrent
// use; the engine drives each cache from a single goroutine.
//
// Way state lives in structure-of-arrays layout: the probe loop scans only
// tags (8 bytes per way, so a 4-way set's tags share one hardware cache
// line), touching valid/dirty/lastUse lanes only for the way that matched.
type Cache struct {
	cfg Config

	lineShift   uint  // log2(LineBytes)
	sectorShift uint  // log2(SectorBytes)
	lineMask    int64 // LineBytes - 1
	ways        int

	numSets  int64
	setsPow2 bool
	setMask  int64  // numSets - 1, when setsPow2
	setM     uint64 // ceil(2^64 / numSets), for the fastmod path

	tags    []int64 // numSets*ways; invalidTag = empty
	valid   []uint64
	dirty   []uint64
	lastUse []uint64
	mru     []int32 // per set: way that hit or filled last (probe hint only)

	tick  uint64
	stats Stats
}

// New builds a cache; it panics on an invalid config (a programmer error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	n := numSets * cfg.Ways
	c := &Cache{
		cfg:         cfg,
		lineShift:   uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		sectorShift: uint(bits.TrailingZeros(uint(cfg.SectorBytes))),
		lineMask:    int64(cfg.LineBytes - 1),
		ways:        cfg.Ways,
		numSets:     int64(numSets),
		setsPow2:    numSets&(numSets-1) == 0,
		setMask:     int64(numSets - 1),
		setM:        ^uint64(0)/uint64(numSets) + 1,
		tags:        make([]int64, n),
		valid:       make([]uint64, n),
		dirty:       make([]uint64, n),
		lastUse:     make([]uint64, n),
		mru:         make([]int32, numSets),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	clear(c.valid)
	clear(c.dirty)
	clear(c.lastUse)
	clear(c.mru)
	c.tick = 0
	c.stats = Stats{}
}

// setIndex maps a line address to its set: a mask for power-of-two set
// counts, otherwise a Lemire fastmod (exact for 32-bit operands — every
// realistic address space; line addresses are byte addresses / 128, so the
// division fallback only triggers beyond 512 GB footprints).
func (c *Cache) setIndex(lineAddr int64) int64 {
	if c.setsPow2 {
		return lineAddr & c.setMask
	}
	if uint64(lineAddr) < 1<<32 {
		hi, _ := bits.Mul64(c.setM*uint64(lineAddr), uint64(c.numSets))
		return int64(hi)
	}
	return lineAddr % c.numSets
}

// AccessSector references one sector by byte address. It returns true on a
// hit; on a miss the sector is filled (fetching SectorBytes from the next
// level, which the caller accounts for).
func (c *Cache) AccessSector(byteAddr int64) bool {
	c.tick++
	c.stats.SectorAccesses++

	lineAddr := byteAddr >> c.lineShift
	sector := uint(byteAddr&c.lineMask) >> c.sectorShift
	set := c.setIndex(lineAddr)
	base := int(set) * c.ways

	// MRU-first probe: the way that hit last in this set usually hits again
	// (tile streams revisit the same line many times in a row).
	w := base + int(c.mru[set])
	if c.tags[w] != lineAddr {
		w = -1
		for i := base; i < base+c.ways; i++ {
			if c.tags[i] == lineAddr {
				w = i
				break
			}
		}
	}
	if w >= 0 {
		c.lastUse[w] = c.tick
		c.mru[set] = int32(w - base)
		if c.valid[w]&(1<<sector) != 0 {
			c.stats.SectorHits++
			return true
		}
		// Line present, sector not: sector fill.
		c.valid[w] |= 1 << sector
		c.stats.SectorMisses++
		return false
	}

	// Line absent: evict LRU way, install line with this sector.
	c.install(base, set, lineAddr, sector, false, c.tick, &c.stats)
	c.stats.SectorMisses++
	return false
}

// WriteSector writes one sector by byte address with write-back,
// write-validate allocation: a full-sector store installs the sector
// without fetching it (no read traffic), marking it dirty. The dirty data
// reaches the next level only on eviction (DirtyWritebacks).
func (c *Cache) WriteSector(byteAddr int64) {
	lineAddr := byteAddr >> c.lineShift
	c.writeSector(byteAddr, lineAddr, c.setIndex(lineAddr), &c.tick, &c.stats)
}

// writeSector is the shared store core behind WriteSector and the Shard
// view; see accessLineSectors for the clock/counter argument.
func (c *Cache) writeSector(byteAddr, lineAddr, set int64, tick *uint64, stats *Stats) {
	*tick++
	stats.SectorWrites++

	sector := uint(byteAddr&c.lineMask) >> c.sectorShift
	base := int(set) * c.ways

	w := base + int(c.mru[set])
	if c.tags[w] != lineAddr {
		w = -1
		for i := base; i < base+c.ways; i++ {
			if c.tags[i] == lineAddr {
				w = i
				break
			}
		}
	}
	if w >= 0 {
		c.lastUse[w] = *tick
		c.mru[set] = int32(w - base)
		c.valid[w] |= 1 << sector
		c.dirty[w] |= 1 << sector
		return
	}
	c.install(base, set, lineAddr, sector, true, *tick, stats)
}

// install evicts the LRU way of the set (counting dirty writebacks) and
// fills it with a fresh line holding one sector. Victim selection scans in
// way order, preferring the first empty way, else the smallest lastUse —
// the exact order of the original div/mod implementation, so fill patterns
// (and therefore every downstream counter) are bit-identical.
func (c *Cache) install(base int, set, lineAddr int64, sector uint, dirty bool, tick uint64, stats *Stats) {
	victim := base
	for i := base + 1; i < base+c.ways; i++ {
		if c.tags[i] == invalidTag {
			victim = i
			break
		}
		if c.lastUse[i] < c.lastUse[victim] {
			victim = i
		}
	}
	if c.tags[victim] != invalidTag {
		stats.LineEvictions++
		stats.DirtyWritebacks += uint64(bits.OnesCount64(c.dirty[victim]))
	}
	c.tags[victim] = lineAddr
	c.valid[victim] = 1 << sector
	c.lastUse[victim] = tick
	c.mru[set] = int32(victim - base)
	if dirty {
		c.dirty[victim] = 1 << sector
	} else {
		c.dirty[victim] = 0
	}
}

func (c *Cache) countWritebacks(dirty uint64) {
	c.stats.DirtyWritebacks += uint64(bits.OnesCount64(dirty))
}

// FlushDirty writes back every dirty sector still resident (end of kernel)
// and returns the number flushed; counters include them as DirtyWritebacks.
func (c *Cache) FlushDirty() uint64 {
	before := c.stats.DirtyWritebacks
	for i, d := range c.dirty {
		if c.tags[i] != invalidTag {
			c.countWritebacks(d)
			c.dirty[i] = 0
		}
	}
	return c.stats.DirtyWritebacks - before
}

// AccessLineSectors references every sector of one line whose bit is set
// in mask (lineAddr = byte address >> log2(LineBytes); mask bit i = sector
// i of the line), in ascending sector order, and returns the mask of
// sectors that missed. It is bit-identical — every counter, LRU timestamp,
// and eviction decision — to calling AccessSector once per set bit in
// ascending order, but probes the set once per line instead of once per
// sector: the engine's fastest entry for the coalesced tile streams, whose
// sectors arrive as runs within one line.
func (c *Cache) AccessLineSectors(lineAddr int64, mask uint64) (missMask uint64) {
	return c.accessLineSectors(lineAddr, c.setIndex(lineAddr), mask, &c.tick, &c.stats)
}

// accessLineSectors is the shared access core behind both the whole-cache
// entry (AccessLineSectors) and the partitioned Shard view: the set index
// is precomputed by the caller, and the LRU clock and event counters are
// passed explicitly so a shard can keep private ones. LRU decisions depend
// only on the relative order of lastUse values within one set, so any
// clock that ticks per access in set-restricted program order — the global
// clock or a per-shard one — produces identical evictions.
func (c *Cache) accessLineSectors(lineAddr, set int64, mask uint64, tick *uint64, stats *Stats) (missMask uint64) {
	if mask == 0 {
		return 0
	}
	n := uint64(bits.OnesCount64(mask))
	*tick += n
	stats.SectorAccesses += n

	base := int(set) * c.ways

	w := base + int(c.mru[set])
	if c.tags[w] != lineAddr {
		w = -1
		for i := base; i < base+c.ways; i++ {
			if c.tags[i] == lineAddr {
				w = i
				break
			}
		}
	}
	if w >= 0 {
		// Line present: every set bit already valid is a hit, the rest are
		// sector fills. The line's lastUse lands on the tick of the run's
		// last access, exactly as sequential accesses would leave it.
		c.lastUse[w] = *tick
		c.mru[set] = int32(w - base)
		missMask = mask &^ c.valid[w]
		c.valid[w] |= mask
		misses := uint64(bits.OnesCount64(missMask))
		stats.SectorHits += n - misses
		stats.SectorMisses += misses
		return missMask
	}

	// Line absent: one install covers the whole run (sequentially, the
	// first sector installs and the rest are sector fills on the fresh
	// line, so eviction bookkeeping happens exactly once either way).
	c.installMask(base, set, lineAddr, mask, *tick, stats)
	stats.SectorMisses += n
	return mask
}

// installMask is install for a whole run of sectors at once.
func (c *Cache) installMask(base int, set, lineAddr int64, mask uint64, tick uint64, stats *Stats) {
	victim := base
	for i := base + 1; i < base+c.ways; i++ {
		if c.tags[i] == invalidTag {
			victim = i
			break
		}
		if c.lastUse[i] < c.lastUse[victim] {
			victim = i
		}
	}
	if c.tags[victim] != invalidTag {
		stats.LineEvictions++
		stats.DirtyWritebacks += uint64(bits.OnesCount64(c.dirty[victim]))
	}
	c.tags[victim] = lineAddr
	c.valid[victim] = mask
	c.dirty[victim] = 0
	c.lastUse[victim] = tick
	c.mru[set] = int32(victim - base)
}

// AccessSectors references each sector index in secs, in order (byte
// address = sec * sectorBytes), and returns the number of sector misses:
// the generic batch entry for scalar sector streams. (The engine itself
// drives its coalesced tile streams through AccessLineSectors, whose runs
// amortize the set probe as well as the call.)
func (c *Cache) AccessSectors(secs []int64, sectorBytes int64) (misses int) {
	for _, sec := range secs {
		if !c.AccessSector(sec * sectorBytes) {
			misses++
		}
	}
	return misses
}

// AccessBytes references every sector overlapped by [byteAddr,
// byteAddr+size) and returns the number of sector misses.
func (c *Cache) AccessBytes(byteAddr int64, size int) (misses int) {
	sb := int64(c.cfg.SectorBytes)
	first := byteAddr >> c.sectorShift
	last := (byteAddr + int64(size) - 1) >> c.sectorShift
	for s := first; s <= last; s++ {
		if !c.AccessSector(s * sb) {
			misses++
		}
	}
	return misses
}

// MissBytes returns the bytes fetched from the next level so far.
func (c *Cache) MissBytes() uint64 {
	return c.stats.SectorMisses * uint64(c.cfg.SectorBytes)
}

// AccessBytesTotal returns the bytes referenced so far (sector granularity).
func (c *Cache) AccessBytesTotal() uint64 {
	return c.stats.SectorAccesses * uint64(c.cfg.SectorBytes)
}

// pools holds one sync.Pool of *Cache per geometry, so simulation runs
// reuse backing arrays instead of re-allocating them per layer (an L2 alone
// is ~1 MB of way state).
var pools sync.Map // Config -> *sync.Pool

// Acquire returns a reset cache of the given geometry, reusing a pooled
// instance when one is available. Pair with Release when the run is done;
// the config must validate (Acquire panics like New otherwise).
func Acquire(cfg Config) *Cache {
	p, ok := pools.Load(cfg)
	if !ok {
		p, _ = pools.LoadOrStore(cfg, &sync.Pool{})
	}
	if v := p.(*sync.Pool).Get(); v != nil {
		c := v.(*Cache)
		c.Reset()
		return c
	}
	return New(cfg)
}

// Release returns the cache to its geometry's pool. The caller must not use
// it afterwards; contents are reset on the next Acquire.
func (c *Cache) Release() {
	if p, ok := pools.Load(c.cfg); ok {
		p.(*sync.Pool).Put(c)
	}
}
