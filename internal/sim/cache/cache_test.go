package cache

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return New(Config{SizeBytes: 4096, LineBytes: 128, SectorBytes: 32, Ways: 4})
}

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 4096, LineBytes: 128, SectorBytes: 32, Ways: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 128, SectorBytes: 32, Ways: 4},
		{SizeBytes: 4096, LineBytes: 100, SectorBytes: 32, Ways: 4},
		{SizeBytes: 4000, LineBytes: 128, SectorBytes: 32, Ways: 4},
		{SizeBytes: 1 << 20, LineBytes: 1 << 13, SectorBytes: 1, Ways: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := smallCache()
	if c.AccessSector(0) {
		t.Error("cold access hit")
	}
	if !c.AccessSector(0) {
		t.Error("repeat access missed")
	}
	if !c.AccessSector(31) {
		t.Error("same-sector byte missed")
	}
	st := c.Stats()
	if st.SectorAccesses != 3 || st.SectorHits != 2 || st.SectorMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSectoredFill(t *testing.T) {
	c := smallCache()
	c.AccessSector(0) // installs line 0, sector 0
	// Sector 1 of the same line: line hit but sector miss (sector fill).
	if c.AccessSector(32) {
		t.Error("untouched sector of a present line hit")
	}
	if c.Stats().LineEvictions != 0 {
		t.Error("sector fill evicted a line")
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache() // 8 sets x 4 ways
	// Five lines mapping to set 0: line addresses 0, 8, 16, 24, 32.
	for i := int64(0); i < 5; i++ {
		c.AccessSector(i * 8 * 128)
	}
	if c.Stats().LineEvictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().LineEvictions)
	}
	// Line 0 was LRU: it must now miss (and that refill evicts line 8, the
	// new LRU); the most recently installed line must still hit.
	if c.AccessSector(0) {
		t.Error("evicted line hit")
	}
	if !c.AccessSector(32 * 128) {
		t.Error("resident line missed")
	}
}

func TestAccessBytesSpansSectors(t *testing.T) {
	c := smallCache()
	// 64 bytes starting at 16 spans sectors 0, 1, 2.
	if m := c.AccessBytes(16, 64); m != 3 {
		t.Errorf("misses = %d, want 3", m)
	}
	if m := c.AccessBytes(16, 64); m != 0 {
		t.Errorf("second pass misses = %d, want 0", m)
	}
}

func TestReset(t *testing.T) {
	c := smallCache()
	c.AccessSector(0)
	c.Reset()
	if st := c.Stats(); st.SectorAccesses != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
	if c.AccessSector(0) {
		t.Error("hit after reset")
	}
}

func TestMissRateAndByteCounters(t *testing.T) {
	c := smallCache()
	c.AccessSector(0)
	c.AccessSector(0)
	st := c.Stats()
	if st.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", st.MissRate())
	}
	if c.MissBytes() != 32 || c.AccessBytesTotal() != 64 {
		t.Errorf("bytes: miss %d access %d", c.MissBytes(), c.AccessBytesTotal())
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty miss rate != 0")
	}
}

// TestWorkingSetFitsOnlyCompulsoryMisses: streaming twice over a working set
// that fits entirely must show only compulsory misses.
func TestWorkingSetFitsOnlyCompulsoryMisses(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 16, LineBytes: 128, SectorBytes: 32, Ways: 8})
	n := int64(1 << 14) // 16 KB working set in a 64 KB cache
	for pass := 0; pass < 2; pass++ {
		for a := int64(0); a < n; a += 32 {
			c.AccessSector(a)
		}
	}
	st := c.Stats()
	if want := uint64(n / 32); st.SectorMisses != want {
		t.Errorf("misses = %d, want %d (compulsory only)", st.SectorMisses, want)
	}
}

// TestThrashingWorkingSet: a working set far larger than the cache streamed
// repeatedly misses on (nearly) every access.
func TestThrashingWorkingSet(t *testing.T) {
	c := smallCache() // 4 KB
	n := int64(1 << 16)
	for pass := 0; pass < 2; pass++ {
		for a := int64(0); a < n; a += 32 {
			c.AccessSector(a)
		}
	}
	st := c.Stats()
	if st.MissRate() < 0.99 {
		t.Errorf("thrash miss rate = %v, want ~1", st.MissRate())
	}
}

func TestWriteValidateNoFetch(t *testing.T) {
	c := smallCache()
	// A full-sector store allocates without read traffic.
	c.WriteSector(0)
	st := c.Stats()
	if st.SectorMisses != 0 || st.SectorWrites != 1 {
		t.Errorf("stats after store = %+v", st)
	}
	// The stored sector is now resident: a load hits.
	if !c.AccessSector(0) {
		t.Error("load after store missed")
	}
}

func TestDirtyWritebackOnEviction(t *testing.T) {
	c := smallCache() // 8 sets x 4 ways
	c.WriteSector(0)  // dirty sector in set 0
	// Evict it with four more lines mapping to set 0.
	for i := int64(1); i <= 4; i++ {
		c.AccessSector(i * 8 * 128)
	}
	if got := c.Stats().DirtyWritebacks; got != 1 {
		t.Errorf("writebacks = %d, want 1", got)
	}
	// Clean evictions don't write back.
	for i := int64(5); i <= 8; i++ {
		c.AccessSector(i * 8 * 128)
	}
	if got := c.Stats().DirtyWritebacks; got != 1 {
		t.Errorf("clean eviction wrote back: %d", got)
	}
}

func TestFlushDirty(t *testing.T) {
	c := smallCache()
	c.WriteSector(0)
	c.WriteSector(32)
	c.WriteSector(4096) // different set
	if got := c.FlushDirty(); got != 3 {
		t.Errorf("flushed = %d, want 3", got)
	}
	// Idempotent: nothing dirty remains.
	if got := c.FlushDirty(); got != 0 {
		t.Errorf("second flush = %d, want 0", got)
	}
}

// TestQuickWriteConservation: every written sector is either written back on
// eviction or still dirty at flush — total writebacks equal unique dirty
// sectors, never exceeding writes.
func TestQuickWriteConservation(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache()
		for _, a := range addrs {
			c.WriteSector(int64(a))
		}
		c.FlushDirty()
		st := c.Stats()
		return st.DirtyWritebacks <= st.SectorWrites
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickConservation: hits + misses == accesses, always.
func TestQuickConservation(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache()
		for _, a := range addrs {
			c.AccessSector(int64(a))
		}
		st := c.Stats()
		return st.SectorHits+st.SectorMisses == st.SectorAccesses &&
			st.SectorAccesses == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickBiggerCacheNeverWorse: on any trace, doubling capacity never
// increases misses (LRU inclusion property holds per-set for same geometry).
func TestQuickBiggerCacheNeverWorse(t *testing.T) {
	f := func(addrs []uint16) bool {
		small := New(Config{SizeBytes: 2048, LineBytes: 128, SectorBytes: 32, Ways: 4})
		big := New(Config{SizeBytes: 4096, LineBytes: 128, SectorBytes: 32, Ways: 8})
		for _, a := range addrs {
			small.AccessSector(int64(a))
			big.AccessSector(int64(a))
		}
		return big.Stats().SectorMisses <= small.Stats().SectorMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessSector(b *testing.B) {
	c := New(Config{SizeBytes: 3 << 20, LineBytes: 128, SectorBytes: 32, Ways: 16})
	for i := 0; i < b.N; i++ {
		c.AccessSector(int64(i*32) % (16 << 20))
	}
}

// TestAccessAllocFree guards the hot entries: steady-state accesses must
// not allocate at all.
func TestAccessAllocFree(t *testing.T) {
	c := New(Config{SizeBytes: 96 * 128 * 4, LineBytes: 128, SectorBytes: 32, Ways: 4})
	secs := []int64{0, 1, 2, 3, 40, 41}
	allocs := testing.AllocsPerRun(100, func() {
		c.AccessSector(4096)
		c.AccessSectors(secs, 32)
		c.AccessLineSectors(7, 0xF)
		c.WriteSector(12345)
	})
	if allocs != 0 {
		t.Errorf("%v allocs per access batch, want 0", allocs)
	}
}

// BenchmarkAccessSectorPow2 probes the mask set-index path (64 sets, the
// V100 L1 shape); BenchmarkAccessSector above covers the fastmod path
// (1536 sets, the TITAN Xp L2 shape).
func BenchmarkAccessSectorPow2(b *testing.B) {
	c := New(Config{SizeBytes: 32 << 10, LineBytes: 128, SectorBytes: 32, Ways: 4})
	for i := 0; i < b.N; i++ {
		c.AccessSector(int64(i*32) % (1 << 20))
	}
}

// BenchmarkAccessLineSectors measures the engine's batch entry: one probe
// filling four sectors of a line, the shape coalesced tile streams produce.
func BenchmarkAccessLineSectors(b *testing.B) {
	c := New(Config{SizeBytes: 3 << 20, LineBytes: 128, SectorBytes: 32, Ways: 16})
	for i := 0; i < b.N; i++ {
		c.AccessLineSectors(int64(i)%(1<<17), 0xF)
	}
}
