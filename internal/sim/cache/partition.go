// Set partitioning: disjoint views over one cache for the engine's
// parallel shared-L2 replay.
//
// A sectored set-associative cache factors exactly along its set index:
// every line address maps to one set, LRU state (tags, valid/dirty masks,
// lastUse) lives entirely within a set, and replacement compares lastUse
// values only between ways of the same set. Partitioning the sets into
// disjoint contiguous ranges therefore partitions the cache's entire state
// machine: accesses to different partitions commute, and a worker that
// owns a partition can replay its accesses with a private LRU clock — per
// set, the clock values it assigns are in the same relative order as the
// global serial clock's, so every eviction decision, counter, and dirty
// bit is bit-identical to the serial interleave. Summing the per-shard
// uint64 counters (in any fixed order) then reproduces the serial totals
// exactly, because integer addition is exact.
package cache

// PartitionOf maps a line address to its partition under an n-way set
// partitioning: partition p owns the contiguous set range
// [p*numSets/n, (p+1)*numSets/n). It reads only immutable geometry, so
// concurrent callers (the engine's L1 workers bucketing misses while
// replay workers drain earlier waves) never race.
func (c *Cache) PartitionOf(lineAddr int64, n int) int {
	return int(c.setIndex(lineAddr) * int64(n) / c.numSets)
}

// Shard is the view of one set partition: it probes and fills the parent
// cache's way state directly (its partition's sets are untouched by every
// other shard) but keeps a private LRU clock and private event counters,
// so shards never write shared memory. A shard must only be driven with
// addresses of its own partition — the engine guarantees this by bucketing
// replay work with PartitionOf — except WriteSector, which filters itself.
// Not safe for concurrent use; each replay worker owns one shard.
type Shard struct {
	c     *Cache
	part  int64
	parts int64
	tick  uint64
	stats Stats
}

// Shards splits the cache into n disjoint set-partition views (n is
// clamped to [1, set count]). The parent cache must not be accessed
// directly until the shards are folded back with MergeShards.
func (c *Cache) Shards(n int) []*Shard {
	if n < 1 {
		n = 1
	}
	if int64(n) > c.numSets {
		n = int(c.numSets)
	}
	shards := make([]*Shard, n)
	for p := range shards {
		shards[p] = &Shard{c: c, part: int64(p), parts: int64(n)}
	}
	return shards
}

// AccessLineSectors is Cache.AccessLineSectors against the shard's private
// clock and counters. The line must belong to this shard's partition.
func (s *Shard) AccessLineSectors(lineAddr int64, mask uint64) (missMask uint64) {
	return s.c.accessLineSectors(lineAddr, s.c.setIndex(lineAddr), mask, &s.tick, &s.stats)
}

// WriteSector writes one sector iff its line belongs to this shard's
// partition, reporting whether it did: replay workers walk the identical
// epilogue store stream and each shard keeps only its share, so together
// they perform the serial store sequence exactly once, set-partitioned.
func (s *Shard) WriteSector(byteAddr int64) bool {
	lineAddr := byteAddr >> s.c.lineShift
	set := s.c.setIndex(lineAddr)
	if set*s.parts/s.c.numSets != s.part {
		return false
	}
	s.c.writeSector(byteAddr, lineAddr, set, &s.tick, &s.stats)
	return true
}

// Stats returns the shard's private event counters.
func (s *Shard) Stats() Stats { return s.stats }

// MergeShards folds per-shard clocks and counters back into the parent, in
// shard order. Every access lands in exactly one shard and the counters
// are exact integer sums, so the merged totals are bit-identical to a
// serial replay's regardless of partition count; after the merge the
// parent cache (Stats, FlushDirty) is usable as if it had been driven
// serially.
func (c *Cache) MergeShards(shards []*Shard) {
	for _, s := range shards {
		c.tick += s.tick
		c.stats.SectorAccesses += s.stats.SectorAccesses
		c.stats.SectorHits += s.stats.SectorHits
		c.stats.SectorMisses += s.stats.SectorMisses
		c.stats.LineEvictions += s.stats.LineEvictions
		c.stats.SectorWrites += s.stats.SectorWrites
		c.stats.DirtyWritebacks += s.stats.DirtyWritebacks
	}
}
