package cache

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"
)

// partitionGeometries spans pow2 set counts and the non-pow2 fastmod ones
// the real devices use (TITAN Xp: 96 L1 sets, 1536 L2 sets).
var partitionGeometries = []Config{
	{SizeBytes: 64 * 1024, LineBytes: 128, SectorBytes: 32, Ways: 4},        // 128 sets (pow2)
	{SizeBytes: 48 * 1024, LineBytes: 128, SectorBytes: 32, Ways: 4},        // 96 sets
	{SizeBytes: 3 * 1024 * 1024, LineBytes: 128, SectorBytes: 32, Ways: 16}, // 1536 sets
	{SizeBytes: 28 * 1024, LineBytes: 64, SectorBytes: 32, Ways: 7},         // 64 sets, odd ways
}

// op is one event of a synthetic replay stream.
type op struct {
	write bool
	addr  int64 // line address for reads, byte address for writes
	mask  uint64
}

func randomOps(r *rand.Rand, cfg Config, n int) []op {
	// Footprint ~4x the cache so evictions and writebacks are plentiful,
	// with a hot subset so hits are too.
	numSets := int64(cfg.SizeBytes / (cfg.LineBytes * cfg.Ways))
	span := numSets * int64(cfg.Ways) * 4
	sectors := cfg.LineBytes / cfg.SectorBytes
	ops := make([]op, n)
	for i := range ops {
		line := r.Int63n(span)
		if r.Intn(3) == 0 {
			line = r.Int63n(span / 8) // hot region
		}
		if r.Intn(5) == 0 {
			ops[i] = op{
				write: true,
				addr:  line*int64(cfg.LineBytes) + int64(r.Intn(sectors))*int64(cfg.SectorBytes),
			}
		} else {
			ops[i] = op{addr: line, mask: uint64(r.Int63())%(1<<uint(sectors)-1) + 1}
		}
	}
	return ops
}

// TestShardsMatchSerial replays identical randomized streams — reads and
// writes, hot and streaming regions — through a serial cache and through a
// partitioned set of shards (each op routed to its owning shard, in
// order), asserting the merged counters, dram-side misses, and the flushed
// dirty state are bit-identical at every partition count, including counts
// that do not divide the set count and the max (one set per shard).
func TestShardsMatchSerial(t *testing.T) {
	for gi, cfg := range partitionGeometries {
		numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
		for _, parts := range []int{1, 2, 3, 7, numSets, numSets * 2} {
			t.Run(fmt.Sprintf("geom%d/parts%d", gi, parts), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(gi*1000 + parts)))
				ops := randomOps(r, cfg, 20000)

				serial := New(cfg)
				var serialMiss uint64
				for _, o := range ops {
					if o.write {
						serial.WriteSector(o.addr)
					} else {
						serialMiss += uint64(bits.OnesCount64(serial.AccessLineSectors(o.addr, o.mask)))
					}
				}
				serial.FlushDirty()
				wantStats := serial.Stats()

				part := New(cfg)
				shards := part.Shards(parts)
				var partMiss uint64
				for _, o := range ops {
					if o.write {
						owned := 0
						for _, s := range shards {
							if s.WriteSector(o.addr) {
								owned++
							}
						}
						if owned != 1 {
							t.Fatalf("write %#x claimed by %d shards", o.addr, owned)
						}
					} else {
						p := part.PartitionOf(o.addr, len(shards))
						partMiss += uint64(bits.OnesCount64(shards[p].AccessLineSectors(o.addr, o.mask)))
					}
				}
				part.MergeShards(shards)
				part.FlushDirty()

				if got := part.Stats(); got != wantStats {
					t.Errorf("merged stats diverged:\n got %+v\nwant %+v", got, wantStats)
				}
				if partMiss != serialMiss {
					t.Errorf("downstream miss sectors: got %d, want %d", partMiss, serialMiss)
				}
			})
		}
	}
}

// TestShardsDisjointOrderFree asserts the partition independence claim the
// engine's overlap relies on: replaying shard A's whole stream before
// shard B's (instead of interleaving) yields the same merged counters,
// because partitions share no state.
func TestShardsDisjointOrderFree(t *testing.T) {
	cfg := partitionGeometries[1] // 96 sets: fastmod path
	r := rand.New(rand.NewSource(7))
	ops := randomOps(r, cfg, 20000)
	const parts = 4

	run := func(interleaved bool) Stats {
		c := New(cfg)
		shards := c.Shards(parts)
		route := func(o op, s *Shard, p int) {
			if o.write {
				s.WriteSector(o.addr)
			} else if c.PartitionOf(o.addr, parts) == p {
				s.AccessLineSectors(o.addr, o.mask)
			}
		}
		if interleaved {
			for _, o := range ops {
				for p, s := range shards {
					route(o, s, p)
				}
			}
		} else {
			for p, s := range shards {
				for _, o := range ops {
					route(o, s, p)
				}
			}
		}
		c.MergeShards(shards)
		c.FlushDirty()
		return c.Stats()
	}

	if a, b := run(true), run(false); a != b {
		t.Errorf("shard replay order changed merged counters:\n interleaved %+v\n sequential  %+v", a, b)
	}
}

// TestShardsClamp pins the partition-count clamp: more shards than sets
// collapses to one shard per set, and n < 1 to a single shard.
func TestShardsClamp(t *testing.T) {
	cfg := Config{SizeBytes: 4096, LineBytes: 128, SectorBytes: 32, Ways: 4} // 8 sets
	c := New(cfg)
	if got := len(c.Shards(100)); got != 8 {
		t.Errorf("Shards(100) = %d shards, want 8", got)
	}
	if got := len(c.Shards(0)); got != 1 {
		t.Errorf("Shards(0) = %d shards, want 1", got)
	}
	// Every line lands in a valid partition under the clamped count.
	for line := int64(0); line < 1000; line++ {
		if p := c.PartitionOf(line, 8); p < 0 || p >= 8 {
			t.Fatalf("PartitionOf(%d, 8) = %d out of range", line, p)
		}
	}
}
