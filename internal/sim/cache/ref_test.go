package cache

import (
	"math/bits"
	"math/rand"
	"testing"
)

// refCache is the original div/mod, array-of-structs implementation,
// retained verbatim as the differential oracle for the shift/mask rewrite:
// same LRU policy, same victim-selection order, same sector bookkeeping.
type refCache struct {
	cfg     Config
	sets    [][]refWay
	numSets int64
	tick    uint64
	stats   Stats
}

type refWay struct {
	tag     int64
	valid   uint64
	dirty   uint64
	lastUse uint64
	live    bool
}

func newRef(cfg Config) *refCache {
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	sets := make([][]refWay, numSets)
	backing := make([]refWay, numSets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &refCache{cfg: cfg, sets: sets, numSets: int64(numSets)}
}

func (c *refCache) AccessSector(byteAddr int64) bool {
	c.tick++
	c.stats.SectorAccesses++
	lineAddr := byteAddr / int64(c.cfg.LineBytes)
	sector := uint(byteAddr % int64(c.cfg.LineBytes) / int64(c.cfg.SectorBytes))
	set := c.sets[lineAddr%c.numSets]
	for i := range set {
		w := &set[i]
		if w.live && w.tag == lineAddr {
			w.lastUse = c.tick
			if w.valid&(1<<sector) != 0 {
				c.stats.SectorHits++
				return true
			}
			w.valid |= 1 << sector
			c.stats.SectorMisses++
			return false
		}
	}
	c.install(set, lineAddr, sector, false)
	c.stats.SectorMisses++
	return false
}

func (c *refCache) WriteSector(byteAddr int64) {
	c.tick++
	c.stats.SectorWrites++
	lineAddr := byteAddr / int64(c.cfg.LineBytes)
	sector := uint(byteAddr % int64(c.cfg.LineBytes) / int64(c.cfg.SectorBytes))
	set := c.sets[lineAddr%c.numSets]
	for i := range set {
		w := &set[i]
		if w.live && w.tag == lineAddr {
			w.lastUse = c.tick
			w.valid |= 1 << sector
			w.dirty |= 1 << sector
			return
		}
	}
	c.install(set, lineAddr, sector, true)
}

func (c *refCache) install(set []refWay, lineAddr int64, sector uint, dirty bool) {
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].live {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if set[victim].live {
		c.stats.LineEvictions++
		c.stats.DirtyWritebacks += uint64(bits.OnesCount64(set[victim].dirty))
	}
	w := refWay{tag: lineAddr, valid: 1 << sector, lastUse: c.tick, live: true}
	if dirty {
		w.dirty = 1 << sector
	}
	set[victim] = w
}

func (c *refCache) Stats() Stats { return c.stats }

func (c *refCache) FlushDirty() uint64 {
	before := c.stats.DirtyWritebacks
	for _, set := range c.sets {
		for i := range set {
			if set[i].live {
				c.stats.DirtyWritebacks += uint64(bits.OnesCount64(set[i].dirty))
				set[i].dirty = 0
			}
		}
	}
	return c.stats.DirtyWritebacks - before
}

// diffGeometries spans power-of-two and non-power-of-two set counts (the
// modeled devices have both: V100 L1 = 64 sets, TITAN Xp L1 = 96, L2 =
// 1536), several associativities, and sub-line sector ratios.
func diffGeometries() []Config {
	sectors := []int{32, 64, 128}
	lines := []int{128, 256}
	ways := []int{1, 2, 4, 16}
	setCounts := []int{1, 3, 7, 48, 64, 96, 255, 1536}
	var out []Config
	for _, ln := range lines {
		for _, sb := range sectors {
			if sb > ln {
				continue
			}
			for _, w := range ways {
				for _, s := range setCounts {
					out = append(out, Config{SizeBytes: s * ln * w, LineBytes: ln, SectorBytes: sb, Ways: w})
				}
			}
		}
	}
	return out
}

// TestDifferentialVsReference drives randomized address streams (loads,
// stores, batch accesses, mid-stream flushes) through the shift/mask cache
// and the retained div/mod reference in lockstep, asserting every return
// value and the full counter set agree at each step across the geometry
// grid. This is the bit-identity oracle for the address-decomposition and
// probe-order rewrite.
func TestDifferentialVsReference(t *testing.T) {
	for _, cfg := range diffGeometries() {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("geometry %+v: %v", cfg, err)
		}
		rng := rand.New(rand.NewSource(int64(cfg.SizeBytes)*31 + int64(cfg.Ways)))
		fast := New(cfg)
		ref := newRef(cfg)

		// Address pool ~4x the cache capacity so streams mix hits,
		// conflict evictions, and sector fills; plus a sprinkle of far
		// addresses to exercise high line-address bits.
		span := int64(cfg.SizeBytes) * 4
		randAddr := func() int64 {
			a := rng.Int63n(span)
			if rng.Intn(32) == 0 {
				a += int64(1) << (33 + rng.Intn(8))
			}
			return a
		}

		for op := 0; op < 4000; op++ {
			switch rng.Intn(12) {
			case 0, 1, 2: // store
				a := randAddr()
				fast.WriteSector(a)
				ref.WriteSector(a)
			case 3: // mid-stream flush
				if got, want := fast.FlushDirty(), ref.FlushDirty(); got != want {
					t.Fatalf("%+v op %d: FlushDirty = %d, ref %d", cfg, op, got, want)
				}
			case 4: // batch access over sector indices
				n := 1 + rng.Intn(32)
				secs := make([]int64, n)
				for i := range secs {
					secs[i] = randAddr() / int64(cfg.SectorBytes)
				}
				refMisses := 0
				for _, s := range secs {
					if !ref.AccessSector(s * int64(cfg.SectorBytes)) {
						refMisses++
					}
				}
				if got := fast.AccessSectors(secs, int64(cfg.SectorBytes)); got != refMisses {
					t.Fatalf("%+v op %d: AccessSectors = %d, ref %d", cfg, op, got, refMisses)
				}
			case 5: // line-masked batch: one probe, many sectors
				spl := cfg.LineBytes / cfg.SectorBytes
				lineAddr := randAddr() / int64(cfg.LineBytes)
				mask := rng.Uint64() & (1<<uint(spl) - 1)
				var refMask uint64
				for bit := 0; bit < spl; bit++ {
					if mask&(1<<uint(bit)) == 0 {
						continue
					}
					byteAddr := lineAddr*int64(cfg.LineBytes) + int64(bit)*int64(cfg.SectorBytes)
					if !ref.AccessSector(byteAddr) {
						refMask |= 1 << uint(bit)
					}
				}
				if got := fast.AccessLineSectors(lineAddr, mask); got != refMask {
					t.Fatalf("%+v op %d: AccessLineSectors(%d, %#x) = %#x, ref %#x",
						cfg, op, lineAddr, mask, got, refMask)
				}
			default: // load
				a := randAddr()
				if got, want := fast.AccessSector(a), ref.AccessSector(a); got != want {
					t.Fatalf("%+v op %d: AccessSector(%d) = %v, ref %v", cfg, op, a, got, want)
				}
			}
			if fast.Stats() != ref.Stats() {
				t.Fatalf("%+v op %d: stats diverged:\n fast %+v\n ref  %+v", cfg, op, fast.Stats(), ref.Stats())
			}
		}
		fast.FlushDirty()
		ref.FlushDirty()
		if fast.Stats() != ref.Stats() {
			t.Fatalf("%+v: final stats diverged:\n fast %+v\n ref  %+v", cfg, fast.Stats(), ref.Stats())
		}
	}
}

// TestAcquireReleaseReuse pins pooled caches: a released cache comes back
// reset (no stale contents, zero counters) and geometry-matched.
func TestAcquireReleaseReuse(t *testing.T) {
	cfg := Config{SizeBytes: 4096, LineBytes: 128, SectorBytes: 32, Ways: 4}
	c := Acquire(cfg)
	c.AccessSector(0)
	c.WriteSector(128)
	c.Release()
	c2 := Acquire(cfg)
	if c2.Config() != cfg {
		t.Fatalf("pooled cache config %+v, want %+v", c2.Config(), cfg)
	}
	if st := c2.Stats(); st != (Stats{}) {
		t.Fatalf("pooled cache not reset: %+v", st)
	}
	if c2.AccessSector(0) {
		t.Fatal("pooled cache retained contents across Release/Acquire")
	}
	c2.Release()
}
