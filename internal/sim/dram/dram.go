// Package dram models a GPU DRAM channel as a bandwidth-limited queue with
// a fixed pipeline latency — the abstraction behind the paper's Fig. 18
// micro-benchmark (turnaround latency vs offered load) and the timing
// simulator's memory contention.
package dram

import "fmt"

// Channel is a single-server queue: requests are serialized at the channel's
// byte rate and each completes one pipeline latency after its transfer ends.
// Not safe for concurrent use.
type Channel struct {
	bytesPerClk float64
	latencyClk  float64

	busyUntil float64

	readBytes  float64
	writeBytes float64
	requests   uint64
	totalWait  float64 // accumulated turnaround for averaging
}

// NewChannel builds a channel; rates must be positive.
func NewChannel(bytesPerClk, latencyClk float64) (*Channel, error) {
	if bytesPerClk <= 0 || latencyClk < 0 {
		return nil, fmt.Errorf("dram: invalid channel (%v B/clk, %v clk)", bytesPerClk, latencyClk)
	}
	return &Channel{bytesPerClk: bytesPerClk, latencyClk: latencyClk}, nil
}

// Read enqueues a read of the given bytes at time now (clocks) and returns
// the completion time. Requests are served in arrival order.
func (c *Channel) Read(now, bytes float64) float64 {
	done := c.serve(now, bytes)
	c.readBytes += bytes
	return done
}

// Write enqueues a write; writes share the data bus with reads.
func (c *Channel) Write(now, bytes float64) float64 {
	done := c.serve(now, bytes)
	c.writeBytes += bytes
	return done
}

func (c *Channel) serve(now, bytes float64) float64 {
	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	c.busyUntil = start + bytes/c.bytesPerClk
	done := c.busyUntil + c.latencyClk
	c.requests++
	c.totalWait += done - now
	return done
}

// BusyUntil returns the time the data bus frees up.
func (c *Channel) BusyUntil() float64 { return c.busyUntil }

// Stats summarizes channel activity.
type Stats struct {
	ReadBytes, WriteBytes float64
	Requests              uint64
	MeanTurnaroundClk     float64
}

// Stats returns a snapshot of the counters.
func (c *Channel) Stats() Stats {
	s := Stats{ReadBytes: c.readBytes, WriteBytes: c.writeBytes, Requests: c.requests}
	if c.requests > 0 {
		s.MeanTurnaroundClk = c.totalWait / float64(c.requests)
	}
	return s
}

// Reset clears queue state and counters.
func (c *Channel) Reset() {
	c.busyUntil = 0
	c.readBytes = 0
	c.writeBytes = 0
	c.requests = 0
	c.totalWait = 0
}

// UnloadedLatency returns the turnaround of a lone request of the given
// size: transfer time plus pipeline latency.
func (c *Channel) UnloadedLatency(bytes float64) float64 {
	return bytes/c.bytesPerClk + c.latencyClk
}

// PeakBytesPerClk returns the channel's byte rate.
func (c *Channel) PeakBytesPerClk() float64 { return c.bytesPerClk }
