package dram

import (
	"math"
	"testing"
	"testing/quick"
)

func newCh(t *testing.T) *Channel {
	t.Helper()
	c, err := NewChannel(272, 500) // ~TITAN Xp: 430 GB/s at 1.58 GHz
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewChannelValidation(t *testing.T) {
	if _, err := NewChannel(0, 500); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewChannel(100, -1); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestUnloadedLatency(t *testing.T) {
	c := newCh(t)
	// A lone 32 B request completes after transfer + pipeline latency.
	done := c.Read(0, 32)
	want := 32.0/272 + 500
	if math.Abs(done-want) > 1e-9 {
		t.Errorf("done = %v, want %v", done, want)
	}
	if math.Abs(c.UnloadedLatency(32)-want) > 1e-9 {
		t.Errorf("UnloadedLatency = %v", c.UnloadedLatency(32))
	}
}

func TestQueueingUnderSaturation(t *testing.T) {
	c := newCh(t)
	// Offer requests far faster than the channel drains: turnaround grows
	// unboundedly (the Fig. 18 hockey stick).
	var last float64
	for i := 0; i < 10000; i++ {
		now := float64(i) * 0.01 // ~3200 B/clk offered vs 272 B/clk capacity
		last = c.Read(now, 32) - now
	}
	if last < 2*c.UnloadedLatency(32) {
		t.Errorf("saturated turnaround = %v clk, expected queue growth", last)
	}
}

func TestNoQueueingUnderLightLoad(t *testing.T) {
	c := newCh(t)
	// Offer 32 B every 10 clocks (3.2 B/clk): no queueing, constant latency.
	for i := 0; i < 100; i++ {
		now := float64(i) * 10
		turn := c.Read(now, 32) - now
		if math.Abs(turn-c.UnloadedLatency(32)) > 1e-9 {
			t.Fatalf("light-load turnaround = %v at request %d", turn, i)
		}
	}
}

func TestStatsAndReset(t *testing.T) {
	c := newCh(t)
	c.Read(0, 64)
	c.Write(1, 32)
	s := c.Stats()
	if s.ReadBytes != 64 || s.WriteBytes != 32 || s.Requests != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.MeanTurnaroundClk <= 0 {
		t.Errorf("mean turnaround = %v", s.MeanTurnaroundClk)
	}
	c.Reset()
	if c.Stats().Requests != 0 || c.BusyUntil() != 0 {
		t.Error("reset incomplete")
	}
}

func TestWritesShareBus(t *testing.T) {
	c := newCh(t)
	c.Write(0, 272000) // 1000 clk of bus time
	done := c.Read(0, 32) - 0
	if done < 1000 {
		t.Errorf("read bypassed a queued write: turnaround %v", done)
	}
}

// TestQuickFIFOMonotone: completion times never decrease for
// non-decreasing arrivals.
func TestQuickFIFOMonotone(t *testing.T) {
	f := func(gaps []uint8) bool {
		c, _ := NewChannel(100, 50)
		now, prevDone := 0.0, 0.0
		for _, g := range gaps {
			now += float64(g)
			done := c.Read(now, 32)
			if done < prevDone || done < now {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
