// Package engine drives the im2col GEMM's warp-level load trace through a
// simulated GPU memory hierarchy — per-SM sectored L1 caches, one shared
// sectored L2, and a DRAM byte counter — under column-major CTA scheduling
// with round-robin SM assignment.
//
// The engine substitutes for the paper's nvprof measurements: its traffic
// counters at each level are the "measured" side of every model-vs-measured
// figure (DESIGN.md, Substitutions).
//
// Two execution strategies produce bit-identical counters: the serial
// reference engine (Config.Workers = 1) walks the wave schedule on one
// goroutine, and the default parallel engine fans per-SM L1 simulation out
// across workers and replays the recorded L1 miss segments through the
// shared L2 in the exact serial interleave order (see runParallel).
//
// The L2 replay itself parallelizes without breaking that guarantee
// (Config.ReplayPartitions): the L2's sets are split into disjoint
// partitions, each owned by one replay worker holding a cache.Shard view.
// A line address maps to exactly one set, LRU replacement compares
// timestamps only within a set, and a shard's private clock assigns
// timestamps in set-restricted program order — the same relative order per
// set as the serial clock — so every eviction, hit, miss, and writeback
// decision is identical to the serial replay's. Each worker consumes its
// partition's pre-bucketed miss segments in the serial interleave order and
// counts into private uint64 counters; the coordinator folds shards back in
// fixed partition order, and integer sums are exact, so totals are
// bit-identical at any partition count (see internal/sim/cache/partition.go
// and TestPartitionedReplayBitIdentical).
package engine

import (
	"fmt"
	"math/bits"
	"runtime"

	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/sim/cache"
	"delta/internal/sim/trace"
	"delta/internal/tiling"
)

// Config controls a simulation run.
type Config struct {
	Device gpu.Device

	// L1Ways / L2Ways set cache associativity (defaults 4 and 16).
	L1Ways, L2Ways int

	// SkipPadding predicates off loads into the zero-padding halo. The
	// paper's accounting keeps them; default false.
	SkipPadding bool

	// RowMajorScheduling orders CTAs row-major instead of the paper's
	// column-wise order (Section IV-C). With many CTA columns this
	// lengthens the filter-tile reuse distance: an ablation that validates
	// the scheduling assumption behind the DRAM model.
	RowMajorScheduling bool

	// MaxWaves truncates the simulation after the given number of CTA
	// waves (0 = run everything). Counters are NOT scaled; callers that
	// sample must scale. Used only to bound very large experiments.
	MaxWaves int

	// Workers bounds the goroutines the engine fans per-SM L1 simulation
	// across: 0 (the default) uses GOMAXPROCS, 1 selects the serial
	// reference engine, and higher values cap the pool explicitly (never
	// above the SM count). Every setting yields bit-identical counters.
	Workers int

	// ReplayPartitions splits the shared-L2 replay across that many
	// workers by partitioning the L2's sets (clamped to the set count;
	// 0 or 1 keeps the replay serial). Partitioned replay lifts the
	// serial-L2 Amdahl ceiling of the parallel engine; counters stay
	// bit-identical at every partition count (see the package comment).
	// Ignored by the serial reference engine unless > 1, which forces the
	// two-phase engine even at Workers = 1.
	ReplayPartitions int

	// Streams, when non-nil, backs every worker's private stream memo
	// with a process-level shared tier, so coalesced tile streams are
	// generated once per identity (layer, grid, geometry, axis, index,
	// loop) across engine runs — scenario sweeps whose points share
	// coalescing geometry stop regenerating identical streams. Streams
	// are pure functions of their identity, so sharing cannot change any
	// counter. Safe for concurrent use by parallel runs.
	Streams *trace.SharedStreams
}

func (c Config) withDefaults() Config {
	if c.L1Ways == 0 {
		c.L1Ways = 4
	}
	if c.L2Ways == 0 {
		c.L2Ways = 16
	}
	return c
}

// Normalized returns the config with cache-geometry defaults applied and
// the execution-strategy knobs (Workers, ReplayPartitions, Streams)
// cleared: the equivalence class under which results are bit-identical, so
// it is usable as a memoization key.
func (c Config) Normalized() Config {
	c = c.withDefaults()
	c.Workers = 0
	c.ReplayPartitions = 0
	c.Streams = nil
	return c
}

// Result holds the simulated ("measured") traffic of one layer.
type Result struct {
	Layer  layers.Conv
	Device string
	Grid   tiling.Grid

	L1Requests uint64 // warp-level L1 requests after coalescing

	// Measured load traffic in bytes, defined exactly like nvprof counts
	// them: L1 = requests x request granularity; L2 = L1 sector misses x
	// 32 B; DRAM = L2 sector misses x 32 B.
	L1Bytes   float64
	L2Bytes   float64
	DRAMBytes float64

	// StoreBytes is the epilogue OFmap write volume issued to L2 (sector
	// granularity; global stores bypass L1 on the modeled devices).
	StoreBytes float64

	// DRAMWriteBytes is the dirty-writeback volume reaching DRAM,
	// including the end-of-kernel flush.
	DRAMWriteBytes float64

	L1Stats cache.Stats // aggregated over all SM L1s
	L2Stats cache.Stats

	SimulatedCTAs int
	TotalCTAs     int
}

// MissRateL1 returns L2 bytes / L1 bytes, the Fig. 4 quantity.
func (r Result) MissRateL1() float64 {
	if r.L1Bytes == 0 {
		return 0
	}
	return r.L2Bytes / r.L1Bytes
}

// MissRateL2 returns DRAM bytes / L2 bytes.
func (r Result) MissRateL2() float64 {
	if r.L2Bytes == 0 {
		return 0
	}
	return r.DRAMBytes / r.L2Bytes
}

// Scale returns the factor to extrapolate sampled traffic to the full
// launch (TotalCTAs / SimulatedCTAs); 1 when the run was complete.
func (r Result) Scale() float64 {
	if r.SimulatedCTAs == 0 {
		return 0
	}
	return float64(r.TotalCTAs) / float64(r.SimulatedCTAs)
}

// Run simulates one layer. Tile selection follows the stock Fig. 6 lookup.
func Run(l layers.Conv, cfg Config) (Result, error) {
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	// The layer is already validated; skip RunGrid's duplicate check.
	return runGrid(l, tiling.NewGrid(l), cfg)
}

// RunGrid simulates one layer with an explicit CTA grid.
func RunGrid(l layers.Conv, grid tiling.Grid, cfg Config) (Result, error) {
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	return runGrid(l, grid, cfg)
}

func runGrid(l layers.Conv, grid tiling.Grid, cfg Config) (Result, error) {
	if err := cfg.Device.Validate(); err != nil {
		return Result{}, err
	}
	cfg = cfg.withDefaults()
	s := newSim(l, grid, cfg)
	defer s.release()
	w, p := s.workerCount(), s.partitionCount()
	if w > 1 || p > 1 {
		s.runParallel(w, p)
	} else {
		s.runSerial()
	}
	return s.finish()
}

// sim carries the state of one simulation run, shared by the serial and
// parallel engines.
type sim struct {
	cfg  Config
	d    gpu.Device
	grid tiling.Grid
	gen  *trace.Generator

	l1s []*cache.Cache
	l2  *cache.Cache

	loops    int
	waveSize int
	limit    int // schedule indices simulated: min(NumCTA, MaxWaves*waveSize)

	ofmapBase   int64
	dramSectors uint64
	res         Result
}

func newSim(l layers.Conv, grid tiling.Grid, cfg Config) *sim {
	d := cfg.Device
	gen := trace.New(l, grid, cfg.SkipPadding)

	// Cache state comes from per-geometry pools: backing arrays (an L2
	// alone is ~1 MB of way state) are reset and reused across layers
	// instead of re-allocated per run.
	l1s := make([]*cache.Cache, d.NumSM)
	l1Size := int(d.L1SizeKBPerSM * 1024)
	l1Size -= l1Size % (d.LineBytes * cfg.L1Ways)
	if l1Size < d.LineBytes*cfg.L1Ways {
		l1Size = d.LineBytes * cfg.L1Ways
	}
	for i := range l1s {
		l1s[i] = cache.Acquire(cache.Config{
			SizeBytes: l1Size, LineBytes: d.LineBytes,
			SectorBytes: d.SectorBytes, Ways: cfg.L1Ways,
		})
	}
	l2Size := int(d.L2SizeBytes())
	l2Size -= l2Size % (d.LineBytes * cfg.L2Ways)
	l2 := cache.Acquire(cache.Config{
		SizeBytes: l2Size, LineBytes: d.LineBytes,
		SectorBytes: d.SectorBytes, Ways: cfg.L2Ways,
	})

	// CTAs execute in waves of NumSM x ActiveCTAs (Section IV-C), assigned
	// round-robin to SMs. MaxWaves truncates the schedule to whole waves.
	numCTA := grid.NumCTA()
	s := &sim{
		cfg: cfg, d: d, grid: grid, gen: gen,
		l1s: l1s, l2: l2,
		loops:    grid.MainLoops(),
		waveSize: d.NumSM * grid.ActiveCTAs(d),
		limit:    numCTA,
		// Epilogue stores: the OFmap lives after the weight region.
		ofmapBase: gen.FilterBase() + int64(grid.K)*int64(grid.N)*layers.ElemBytes,
		res:       Result{Layer: l, Device: d.Name, Grid: grid, TotalCTAs: numCTA},
	}
	if cfg.MaxWaves > 0 && cfg.MaxWaves*s.waveSize < numCTA {
		s.limit = cfg.MaxWaves * s.waveSize
	}
	return s
}

// workerCount resolves the Config.Workers knob against GOMAXPROCS and the
// SM count (one worker per SM at most).
func (s *sim) workerCount() int {
	w := s.cfg.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > s.d.NumSM {
		w = s.d.NumSM
	}
	if w < 1 {
		w = 1
	}
	return w
}

// partitionCount resolves the Config.ReplayPartitions knob (the clamp to
// the L2 set count happens in cache.Shards).
func (s *sim) partitionCount() int {
	if p := s.cfg.ReplayPartitions; p > 1 {
		return p
	}
	return 1
}

// ctaAt maps a schedule index to CTA grid coordinates: column-major order
// (Section IV-C: column-wise scheduling for the skinny im2col GEMM) or
// row-major under the ablation knob.
func (s *sim) ctaAt(idx int) (row, col int) {
	if s.cfg.RowMajorScheduling {
		return idx / s.grid.Cols, idx % s.grid.Cols
	}
	return idx % s.grid.Rows, idx / s.grid.Rows
}

// storeCTA issues the epilogue stores of CTA (row, col): its blkM x blkN
// block of the row-major M x N OFmap. Stores bypass L1 and write-allocate
// in L2.
func (s *sim) storeCTA(row, col int) {
	g := s.grid
	sb := int64(s.d.SectorBytes)
	m0 := row * g.Tile.BlkM
	n0 := col * g.Tile.BlkN
	nEnd := n0 + g.Tile.BlkN
	if nEnd > g.N {
		nEnd = g.N
	}
	for m := m0; m < m0+g.Tile.BlkM && m < g.M; m++ {
		start := s.ofmapBase + (int64(m)*int64(g.N)+int64(n0))*layers.ElemBytes
		end := s.ofmapBase + (int64(m)*int64(g.N)+int64(nEnd))*layers.ElemBytes
		for sec := start / sb; sec*sb < end; sec++ {
			s.l2.WriteSector(sec * sb)
		}
	}
}

// storeCTAShard is storeCTA against one L2 set-partition view: every replay
// worker walks the identical store stream and the shard keeps only the
// sectors of its own partition, so together the workers perform the serial
// store sequence exactly once.
func (s *sim) storeCTAShard(sh *cache.Shard, row, col int) {
	g := s.grid
	sb := int64(s.d.SectorBytes)
	m0 := row * g.Tile.BlkM
	n0 := col * g.Tile.BlkN
	nEnd := n0 + g.Tile.BlkN
	if nEnd > g.N {
		nEnd = g.N
	}
	for m := m0; m < m0+g.Tile.BlkM && m < g.M; m++ {
		start := s.ofmapBase + (int64(m)*int64(g.N)+int64(n0))*layers.ElemBytes
		end := s.ofmapBase + (int64(m)*int64(g.N)+int64(nEnd))*layers.ElemBytes
		for sec := start / sb; sec*sb < end; sec++ {
			sh.WriteSector(sec * sb)
		}
	}
}

// runSerial is the reference engine: one goroutine walks the wave schedule
// in program order — within a wave, loops proceed in lockstep across CTAs
// so concurrently-resident CTAs interleave in L2, the behaviour the DRAM
// model's reuse argument (Fig. 8) relies on — driving every L1 and the
// shared L2 directly.
//
// Tile streams come from a StreamCache: a CTA's coalesced sector stream is
// a pure function of (axis, grid index, loop), so CTAs sharing a row or
// column replay the memoized stream instead of regenerating and
// re-coalescing it. Replaying a stream drives the L1 with the exact sector
// sequence the warp-by-warp path produced, and the misses are forwarded to
// the L2 in the same relative order, so all counters stay bit-identical
// (pinned by TestGoldenResults).
func (s *sim) runSerial() {
	sc := trace.NewStreamCache(s.gen, s.d.L1ReqBytes, s.d.SectorBytes, s.d.LineBytes, s.waveSize)
	if s.cfg.Streams != nil {
		sc.SetShared(s.cfg.Streams)
	}
	drive := func(l1 *cache.Cache, st *trace.Stream) {
		s.res.L1Requests += st.Requests
		for _, r := range st.Runs {
			if m := l1.AccessLineSectors(r.Line, r.Mask); m != 0 {
				if m = s.l2.AccessLineSectors(r.Line, m); m != 0 {
					s.dramSectors += uint64(bits.OnesCount64(m))
				}
			}
		}
	}
	for start := 0; start < s.limit; start += s.waveSize {
		end := start + s.waveSize
		if end > s.limit {
			end = s.limit
		}
		for loop := 0; loop < s.loops; loop++ {
			for idx := start; idx < end; idx++ {
				row, col := s.ctaAt(idx)
				l1 := s.l1s[idx%s.d.NumSM]
				drive(l1, sc.IFmap(row, loop))
				drive(l1, sc.Filter(col, loop))
			}
		}
		for idx := start; idx < end; idx++ {
			s.storeCTA(s.ctaAt(idx))
		}
		s.res.SimulatedCTAs += end - start
	}
}

// release returns pooled state (cache backing arrays) after a run; the
// Result only carries copied counters, never references into them.
func (s *sim) release() {
	for i, c := range s.l1s {
		c.Release()
		s.l1s[i] = nil
	}
	s.l2.Release()
	s.l2 = nil
}

// finish aggregates per-cache stats into the Result, in the same order the
// serial engine always has (SM index order, then L2).
func (s *sim) finish() (Result, error) {
	if s.res.SimulatedCTAs == 0 {
		return Result{}, fmt.Errorf("engine: no CTAs simulated for %s (%d total)",
			s.res.Layer.Name, s.res.TotalCTAs)
	}
	for _, c := range s.l1s {
		st := c.Stats()
		s.res.L1Stats.SectorAccesses += st.SectorAccesses
		s.res.L1Stats.SectorHits += st.SectorHits
		s.res.L1Stats.SectorMisses += st.SectorMisses
		s.res.L1Stats.LineEvictions += st.LineEvictions
	}
	s.l2.FlushDirty()
	s.res.L2Stats = s.l2.Stats()

	sectorBytes := float64(s.d.SectorBytes)
	s.res.L1Bytes = float64(s.res.L1Requests) * float64(s.d.L1ReqBytes)
	s.res.L2Bytes = float64(s.res.L1Stats.SectorMisses) * sectorBytes
	s.res.DRAMBytes = float64(s.dramSectors) * sectorBytes
	s.res.StoreBytes = float64(s.res.L2Stats.SectorWrites) * sectorBytes
	s.res.DRAMWriteBytes = float64(s.res.L2Stats.DirtyWritebacks) * sectorBytes
	return s.res, nil
}
