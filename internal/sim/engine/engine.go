// Package engine drives the im2col GEMM's warp-level load trace through a
// simulated GPU memory hierarchy — per-SM sectored L1 caches, one shared
// sectored L2, and a DRAM byte counter — under column-major CTA scheduling
// with round-robin SM assignment.
//
// The engine substitutes for the paper's nvprof measurements: its traffic
// counters at each level are the "measured" side of every model-vs-measured
// figure (DESIGN.md, Substitutions).
package engine

import (
	"fmt"

	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/sim/cache"
	"delta/internal/sim/trace"
	"delta/internal/tiling"
)

// Config controls a simulation run.
type Config struct {
	Device gpu.Device

	// L1Ways / L2Ways set cache associativity (defaults 4 and 16).
	L1Ways, L2Ways int

	// SkipPadding predicates off loads into the zero-padding halo. The
	// paper's accounting keeps them; default false.
	SkipPadding bool

	// RowMajorScheduling orders CTAs row-major instead of the paper's
	// column-wise order (Section IV-C). With many CTA columns this
	// lengthens the filter-tile reuse distance: an ablation that validates
	// the scheduling assumption behind the DRAM model.
	RowMajorScheduling bool

	// MaxWaves truncates the simulation after the given number of CTA
	// waves (0 = run everything). Counters are NOT scaled; callers that
	// sample must scale. Used only to bound very large experiments.
	MaxWaves int
}

func (c Config) withDefaults() Config {
	if c.L1Ways == 0 {
		c.L1Ways = 4
	}
	if c.L2Ways == 0 {
		c.L2Ways = 16
	}
	return c
}

// Result holds the simulated ("measured") traffic of one layer.
type Result struct {
	Layer  layers.Conv
	Device string
	Grid   tiling.Grid

	L1Requests uint64 // warp-level L1 requests after coalescing

	// Measured load traffic in bytes, defined exactly like nvprof counts
	// them: L1 = requests x request granularity; L2 = L1 sector misses x
	// 32 B; DRAM = L2 sector misses x 32 B.
	L1Bytes   float64
	L2Bytes   float64
	DRAMBytes float64

	// StoreBytes is the epilogue OFmap write volume issued to L2 (sector
	// granularity; global stores bypass L1 on the modeled devices).
	StoreBytes float64

	// DRAMWriteBytes is the dirty-writeback volume reaching DRAM,
	// including the end-of-kernel flush.
	DRAMWriteBytes float64

	L1Stats cache.Stats // aggregated over all SM L1s
	L2Stats cache.Stats

	SimulatedCTAs int
	TotalCTAs     int
}

// MissRateL1 returns L2 bytes / L1 bytes, the Fig. 4 quantity.
func (r Result) MissRateL1() float64 {
	if r.L1Bytes == 0 {
		return 0
	}
	return r.L2Bytes / r.L1Bytes
}

// MissRateL2 returns DRAM bytes / L2 bytes.
func (r Result) MissRateL2() float64 {
	if r.L2Bytes == 0 {
		return 0
	}
	return r.DRAMBytes / r.L2Bytes
}

// Scale returns the factor to extrapolate sampled traffic to the full
// launch (TotalCTAs / SimulatedCTAs); 1 when the run was complete.
func (r Result) Scale() float64 {
	if r.SimulatedCTAs == 0 {
		return 0
	}
	return float64(r.TotalCTAs) / float64(r.SimulatedCTAs)
}

// Run simulates one layer. Tile selection follows the stock Fig. 6 lookup.
func Run(l layers.Conv, cfg Config) (Result, error) {
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	return RunGrid(l, tiling.NewGrid(l), cfg)
}

// RunGrid simulates one layer with an explicit CTA grid.
func RunGrid(l layers.Conv, grid tiling.Grid, cfg Config) (Result, error) {
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	d := cfg.Device
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	cfg = cfg.withDefaults()

	gen := trace.New(l, grid, cfg.SkipPadding)
	co := trace.NewCoalescer(d.L1ReqBytes, d.SectorBytes)

	l1s := make([]*cache.Cache, d.NumSM)
	l1Size := int(d.L1SizeKBPerSM * 1024)
	l1Size -= l1Size % (d.LineBytes * cfg.L1Ways)
	if l1Size < d.LineBytes*cfg.L1Ways {
		l1Size = d.LineBytes * cfg.L1Ways
	}
	for i := range l1s {
		l1s[i] = cache.New(cache.Config{
			SizeBytes: l1Size, LineBytes: d.LineBytes,
			SectorBytes: d.SectorBytes, Ways: cfg.L1Ways,
		})
	}
	l2Size := int(d.L2SizeBytes())
	l2Size -= l2Size % (d.LineBytes * cfg.L2Ways)
	l2 := cache.New(cache.Config{
		SizeBytes: l2Size, LineBytes: d.LineBytes,
		SectorBytes: d.SectorBytes, Ways: cfg.L2Ways,
	})

	res := Result{Layer: l, Device: d.Name, Grid: grid, TotalCTAs: grid.NumCTA()}
	sectorBytes := float64(d.SectorBytes)
	reqBytes := float64(d.L1ReqBytes)
	var dramSectors uint64

	// One warp request: coalesce, probe L1, forward misses to L2, count
	// L2 misses as DRAM sectors.
	issue := func(l1 *cache.Cache) trace.VisitFn {
		return func(addrs []int64) {
			reqs := co.Coalesce(addrs)
			res.L1Requests += uint64(reqs)
			for _, s := range co.Sectors() {
				byteAddr := s * co.SectorBytes()
				if !l1.AccessSector(byteAddr) {
					if !l2.AccessSector(byteAddr) {
						dramSectors++
					}
				}
			}
		}
	}

	// Column-major CTA order (Section IV-C: column-wise scheduling for the
	// skinny im2col GEMM), assigned round-robin to SMs, executed in waves
	// of NumSM x ActiveCTAs CTAs. Within a wave, loops proceed in lockstep
	// across CTAs so concurrently-resident CTAs interleave in L2 — the
	// behaviour the DRAM model's reuse argument (Fig. 8) relies on.
	active := grid.ActiveCTAs(d)
	waveSize := d.NumSM * active
	loops := grid.MainLoops()
	numCTA := grid.NumCTA()

	// Epilogue stores: each CTA writes its blkM x blkN block of the
	// row-major M x N OFmap, which lives after the weight region. Stores
	// bypass L1 and write-allocate in L2.
	ofmapBase := gen.FilterBase() + int64(grid.K)*int64(grid.N)*layers.ElemBytes
	sb := int64(d.SectorBytes)
	storeCTA := func(row, col int) {
		m0 := row * grid.Tile.BlkM
		n0 := col * grid.Tile.BlkN
		nEnd := n0 + grid.Tile.BlkN
		if nEnd > grid.N {
			nEnd = grid.N
		}
		for m := m0; m < m0+grid.Tile.BlkM && m < grid.M; m++ {
			start := ofmapBase + (int64(m)*int64(grid.N)+int64(n0))*layers.ElemBytes
			end := ofmapBase + (int64(m)*int64(grid.N)+int64(nEnd))*layers.ElemBytes
			for s := start / sb; s*sb < end; s++ {
				l2.WriteSector(s * sb)
			}
		}
	}

	type ctaID struct{ row, col, sm int }
	wave := make([]ctaID, 0, waveSize)
	waves := 0
	flush := func() {
		if len(wave) == 0 {
			return
		}
		for loop := 0; loop < loops; loop++ {
			for _, c := range wave {
				v := issue(l1s[c.sm])
				gen.IFmapLoop(c.row, loop, v)
				gen.FilterLoop(c.col, loop, v)
			}
		}
		for _, c := range wave {
			storeCTA(c.row, c.col)
		}
		res.SimulatedCTAs += len(wave)
		wave = wave[:0]
		waves++
	}

	idx := 0
	enqueue := func(rowIdx, colIdx int) bool {
		wave = append(wave, ctaID{row: rowIdx, col: colIdx, sm: idx % d.NumSM})
		idx++
		if len(wave) == waveSize {
			flush()
			if cfg.MaxWaves > 0 && waves >= cfg.MaxWaves {
				return false
			}
		}
		return true
	}
	schedule := func() {
		if cfg.RowMajorScheduling {
			for rowIdx := 0; rowIdx < grid.Rows; rowIdx++ {
				for colIdx := 0; colIdx < grid.Cols; colIdx++ {
					if !enqueue(rowIdx, colIdx) {
						return
					}
				}
			}
			return
		}
		for colIdx := 0; colIdx < grid.Cols; colIdx++ {
			for rowIdx := 0; rowIdx < grid.Rows; rowIdx++ {
				if !enqueue(rowIdx, colIdx) {
					return
				}
			}
		}
	}
	schedule()
	if cfg.MaxWaves == 0 || waves < cfg.MaxWaves {
		flush()
	}
	if res.SimulatedCTAs == 0 {
		return Result{}, fmt.Errorf("engine: no CTAs simulated for %s (%d total)", l.Name, numCTA)
	}

	for _, c := range l1s {
		s := c.Stats()
		res.L1Stats.SectorAccesses += s.SectorAccesses
		res.L1Stats.SectorHits += s.SectorHits
		res.L1Stats.SectorMisses += s.SectorMisses
		res.L1Stats.LineEvictions += s.LineEvictions
	}
	l2.FlushDirty()
	res.L2Stats = l2.Stats()

	res.L1Bytes = float64(res.L1Requests) * reqBytes
	res.L2Bytes = float64(res.L1Stats.SectorMisses) * sectorBytes
	res.DRAMBytes = float64(dramSectors) * sectorBytes
	res.StoreBytes = float64(res.L2Stats.SectorWrites) * sectorBytes
	res.DRAMWriteBytes = float64(res.L2Stats.DirtyWritebacks) * sectorBytes
	return res, nil
}
