package engine

import (
	"math"
	"testing"

	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/traffic"
)

var xp = gpu.TitanXp()

var testLayer = layers.Conv{
	Name: "e", B: 4, Ci: 32, Hi: 14, Wi: 14, Co: 64, Hf: 3, Wf: 3, Stride: 1, Pad: 1,
}

func run(t *testing.T, l layers.Conv, cfg Config) Result {
	t.Helper()
	if cfg.Device.Name == "" {
		cfg.Device = xp
	}
	r, err := Run(l, cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", l.Name, err)
	}
	return r
}

func TestFlowConservation(t *testing.T) {
	r := run(t, testLayer, Config{})
	// Every L2 access is an L1 miss; every DRAM sector is an L2 miss.
	if r.L2Stats.SectorAccesses != r.L1Stats.SectorMisses {
		t.Errorf("L2 accesses %d != L1 misses %d", r.L2Stats.SectorAccesses, r.L1Stats.SectorMisses)
	}
	wantDRAM := float64(r.L2Stats.SectorMisses) * 32
	if r.DRAMBytes != wantDRAM {
		t.Errorf("DRAM bytes %v != L2 miss bytes %v", r.DRAMBytes, wantDRAM)
	}
	// Hierarchy ordering.
	if !(r.DRAMBytes <= r.L2Bytes && r.L2Bytes <= r.L1Bytes) {
		t.Errorf("ordering violated: L1=%v L2=%v DRAM=%v", r.L1Bytes, r.L2Bytes, r.DRAMBytes)
	}
	if r.SimulatedCTAs != r.TotalCTAs {
		t.Errorf("simulated %d of %d CTAs", r.SimulatedCTAs, r.TotalCTAs)
	}
}

func TestDRAMAtLeastFootprint(t *testing.T) {
	// Compulsory misses: DRAM traffic covers at least the touched footprint
	// (padded IFmap + filter), within sector rounding.
	r := run(t, testLayer, Config{})
	foot := testLayer.IFmapPaddedBytes() + testLayer.FilterBytes()
	if r.DRAMBytes < foot*0.95 {
		t.Errorf("DRAM %v below compulsory footprint %v", r.DRAMBytes, foot)
	}
}

func TestDRAMNearFootprintWhenL2Fits(t *testing.T) {
	// Whole working set (~105 KB) fits the 3 MB L2: DRAM traffic should be
	// close to one footprint despite the CTA-column re-streaming.
	l := layers.Conv{Name: "fits", B: 2, Ci: 32, Hi: 14, Wi: 14, Co: 256, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	r := run(t, l, Config{})
	foot := l.IFmapPaddedBytes() + l.FilterBytes()
	if ratio := r.DRAMBytes / foot; ratio > 1.6 {
		t.Errorf("L2-resident layer re-read %vx its footprint from DRAM", ratio)
	}
}

func TestColumnRestreamWhenL2Thrashes(t *testing.T) {
	// IFmap (~25 MB) >> L2 (3 MB) and Co=256 gives 2 CTA columns: the
	// second column pass cannot reuse L2 contents, so DRAM IFmap traffic
	// approaches 2 footprints — the Eq. 10 mechanism.
	l := layers.Conv{Name: "stream", B: 32, Ci: 64, Hi: 56, Wi: 56, Co: 256, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	r := run(t, l, Config{})
	if r.Grid.Cols != 2 {
		t.Fatalf("cols = %d, want 2", r.Grid.Cols)
	}
	foot := l.IFmapPaddedBytes()
	if ratio := r.DRAMBytes / foot; ratio < 1.5 {
		t.Errorf("thrashing layer DRAM/footprint = %v, want ~2 (column re-stream)", ratio)
	}
}

func TestL1TrafficMatchesModelOrder(t *testing.T) {
	// The simulator's L1 traffic should land in the same ballpark as the
	// analytical model (the Fig. 11 claim). Allow a generous band here;
	// precise agreement is asserted statistically in the experiments.
	r := run(t, testLayer, Config{})
	e, err := traffic.Model(testLayer, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := e.L1Bytes / r.L1Bytes
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("model/sim L1 ratio = %v (model %v, sim %v)", ratio, e.L1Bytes, r.L1Bytes)
	}
}

func TestL2TrafficMatchesModelOrder(t *testing.T) {
	r := run(t, testLayer, Config{})
	e, err := traffic.Model(testLayer, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := e.L2Bytes / r.L2Bytes
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("model/sim L2 ratio = %v (model %v, sim %v)", ratio, e.L2Bytes, r.L2Bytes)
	}
}

func TestSkipPaddingReducesTraffic(t *testing.T) {
	full := run(t, testLayer, Config{})
	skip := run(t, testLayer, Config{SkipPadding: true})
	if skip.L1Requests > full.L1Requests {
		t.Errorf("skip-padding issued more requests (%d > %d)", skip.L1Requests, full.L1Requests)
	}
	if skip.DRAMBytes >= full.DRAMBytes {
		t.Errorf("skip-padding DRAM %v >= padded %v", skip.DRAMBytes, full.DRAMBytes)
	}
}

func TestEpilogueStores(t *testing.T) {
	r := run(t, testLayer, Config{})
	// Issued store volume covers the OFmap exactly (sector rounding only).
	want := testLayer.OFmapBytes()
	if r.StoreBytes < want || r.StoreBytes > want*1.1 {
		t.Errorf("store bytes = %v, want ~%v", r.StoreBytes, want)
	}
	// Streaming outputs all eventually reach DRAM.
	if r.DRAMWriteBytes < want*0.9 || r.DRAMWriteBytes > want*1.1 {
		t.Errorf("DRAM write bytes = %v, want ~%v", r.DRAMWriteBytes, want)
	}
}

func TestSchedulingAblationMatchesEq10(t *testing.T) {
	// Section IV-C assumes column-wise CTA scheduling, under which each of
	// the grid's CTA columns re-streams the whole IFmap: DRAM traffic ~
	// IFmap * cols + filter (Eq. 10). Row-major order instead shares each
	// IFmap row-band across all columns and re-streams the (small) filter,
	// moving *less* data for IFmap-dominated layers — i.e. Eq. 10 models
	// cuDNN's observed schedule, not an optimal one, and the simulator
	// reproduces exactly that distinction.
	l := layers.Conv{Name: "sched", B: 16, Ci: 128, Hi: 28, Wi: 28, Co: 512, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	col := run(t, l, Config{})
	row := run(t, l, Config{RowMajorScheduling: true})
	if col.Grid.Cols < 4 {
		t.Fatalf("need a multi-column grid, got %d", col.Grid.Cols)
	}
	eq10 := l.IFmapPaddedBytes()*float64(col.Grid.Cols) + l.FilterBytes()
	if r := col.DRAMBytes / eq10; r < 0.7 || r > 1.3 {
		t.Errorf("column-wise DRAM %v vs Eq. 10 %v (ratio %v)", col.DRAMBytes, eq10, r)
	}
	// Row-major keeps the IFmap resident per row band: well below Eq. 10.
	if row.DRAMBytes >= col.DRAMBytes {
		t.Errorf("row-major DRAM %v should undercut column-wise %v on an IFmap-dominated layer",
			row.DRAMBytes, col.DRAMBytes)
	}
	// Both orders issue identical request streams at L1.
	if col.L1Requests != row.L1Requests {
		t.Errorf("L1 requests differ: %d vs %d", col.L1Requests, row.L1Requests)
	}
}

func TestMaxWavesSampling(t *testing.T) {
	l := layers.Conv{Name: "mw", B: 64, Ci: 32, Hi: 28, Wi: 28, Co: 64, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	r := run(t, l, Config{MaxWaves: 1})
	if r.SimulatedCTAs >= r.TotalCTAs {
		t.Fatalf("sampling did not truncate: %d of %d", r.SimulatedCTAs, r.TotalCTAs)
	}
	if r.Scale() <= 1 {
		t.Errorf("scale = %v, want > 1", r.Scale())
	}
}

func TestMissRatesInRange(t *testing.T) {
	r := run(t, testLayer, Config{})
	if mr := r.MissRateL1(); mr <= 0 || mr > 1 {
		t.Errorf("L1 miss rate = %v", mr)
	}
	if mr := r.MissRateL2(); mr <= 0 || mr > 1 {
		t.Errorf("L2 miss rate = %v", mr)
	}
}

func TestPointwiseVsSpatialMissRates(t *testing.T) {
	// 1x1 layers have little intra-tile reuse, so their L1 miss rate should
	// exceed a reuse-heavy 3x3 layer's (the spread of Fig. 4).
	pw := layers.Conv{Name: "pw", B: 4, Ci: 192, Hi: 28, Wi: 28, Co: 64, Hf: 1, Wf: 1, Stride: 1}
	sp := layers.Conv{Name: "sp", B: 4, Ci: 96, Hi: 28, Wi: 28, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	rp := run(t, pw, Config{})
	rs := run(t, sp, Config{})
	if rp.MissRateL1() <= rs.MissRateL1() {
		t.Errorf("1x1 L1 miss rate %v should exceed 3x3's %v", rp.MissRateL1(), rs.MissRateL1())
	}
}

func TestVoltaRequestGranularity(t *testing.T) {
	// The same layer on V100 (32 B requests) must issue more, smaller L1
	// requests but less total L1 request traffic than Pascal's 128 B.
	rx := run(t, testLayer, Config{Device: xp})
	rv := run(t, testLayer, Config{Device: gpu.V100()})
	if rv.L1Requests <= rx.L1Requests {
		t.Errorf("V100 requests %d should exceed Pascal's %d", rv.L1Requests, rx.L1Requests)
	}
	if rv.L1Bytes >= rx.L1Bytes {
		t.Errorf("V100 L1 bytes %v should be below Pascal's %v", rv.L1Bytes, rx.L1Bytes)
	}
}

func TestBatchScalingApproxLinear(t *testing.T) {
	small := run(t, testLayer, Config{})
	big := run(t, testLayer.WithBatch(8), Config{})
	ratio := big.L1Bytes / small.L1Bytes
	if math.Abs(ratio-2) > 0.3 {
		t.Errorf("L1 traffic batch scaling = %v, want ~2", ratio)
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := Run(layers.Conv{Name: "bad"}, Config{Device: xp}); err == nil {
		t.Error("invalid layer accepted")
	}
	if _, err := Run(testLayer, Config{}); err == nil {
		t.Error("zero device accepted")
	}
}

// TestAllocsBounded is the allocation regression guard for the pooled
// engine: with cache backing arrays, wave buffers, and warp scratch reused,
// a serial run of the test layer sits around ~60 allocations (generator,
// stream-cache slots, and result bookkeeping) where the pre-pooling engine
// paid ~10k (one escaped warp buffer per tile-stream call plus fresh cache
// arrays per run). The bound leaves ~10x headroom so GC-emptied pools and
// runtime noise cannot flake the test, while still catching any return of
// per-warp or per-run allocation.
func TestAllocsBounded(t *testing.T) {
	for _, workers := range []int{1, 0} {
		cfg := Config{Device: xp, Workers: workers}
		if _, err := Run(testLayer, cfg); err != nil { // warm the pools
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := Run(testLayer, cfg); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 600 {
			t.Errorf("workers=%d: %v allocs/run, want <= 600 (pooling regressed)", workers, allocs)
		}
	}
}
