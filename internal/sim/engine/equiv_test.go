package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/sim/trace"
)

// equivCorpus spans the grid shapes the paper suite produces: all three
// Fig. 6 tiles (Co <= 32, <= 64, > 64), pointwise and spatial filters,
// stride 2, no padding, multi-wave launches, and an edge-heavy grid.
var equivCorpus = []layers.Conv{
	{Name: "narrow", B: 2, Ci: 96, Hi: 14, Wi: 14, Co: 32, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
	{Name: "mid", B: 2, Ci: 64, Hi: 28, Wi: 28, Co: 64, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
	{Name: "wide", B: 2, Ci: 128, Hi: 14, Wi: 14, Co: 256, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
	{Name: "pointwise", B: 4, Ci: 192, Hi: 28, Wi: 28, Co: 64, Hf: 1, Wf: 1, Stride: 1},
	{Name: "stride2", B: 2, Ci: 48, Hi: 56, Wi: 56, Co: 96, Hf: 5, Wf: 5, Stride: 2, Pad: 2},
	{Name: "nopad", B: 2, Ci: 32, Hi: 27, Wi: 27, Co: 48, Hf: 3, Wf: 3, Stride: 1},
	{Name: "multiwave", B: 8, Ci: 32, Hi: 28, Wi: 28, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
}

// equivConfigs are the Config variants the ablations and experiments
// exercise, per device.
func equivConfigs(d gpu.Device) []Config {
	return []Config{
		{Device: d},
		{Device: d, SkipPadding: true},
		{Device: d, RowMajorScheduling: true},
		{Device: d, MaxWaves: 1},
		{Device: d, MaxWaves: 2, RowMajorScheduling: true},
		{Device: d, L1Ways: 2, L2Ways: 8},
	}
}

// TestParallelBitIdentical asserts the two-phase parallel engine reproduces
// the serial reference engine's Result exactly — every counter, byte total,
// and cache stat — across the corpus, for several worker and replay-
// partition counts (including partitioned replay under a single L1 worker).
// Run under -race in CI, this is also the engine's data-race gauntlet.
func TestParallelBitIdentical(t *testing.T) {
	combos := []struct{ workers, parts int }{
		{0, 0}, {2, 0}, {3, 2}, {0, 4}, {1, 3},
	}
	for _, d := range []gpu.Device{gpu.TitanXp(), gpu.V100()} {
		for _, l := range equivCorpus {
			for ci, cfg := range equivConfigs(d) {
				cfg := cfg
				t.Run(fmt.Sprintf("%s/%s/cfg%d", d.Name, l.Name, ci), func(t *testing.T) {
					t.Parallel()
					serial := cfg
					serial.Workers = 1
					want, err := Run(l, serial)
					if err != nil {
						t.Fatalf("serial: %v", err)
					}
					for _, wp := range combos {
						par := cfg
						par.Workers = wp.workers
						par.ReplayPartitions = wp.parts
						got, err := Run(l, par)
						if err != nil {
							t.Fatalf("workers=%d parts=%d: %v", wp.workers, wp.parts, err)
						}
						if got != want {
							t.Errorf("workers=%d parts=%d diverged from serial:\n got %+v\nwant %+v",
								wp.workers, wp.parts, got, want)
						}
					}
				})
			}
		}
	}
}

// TestPartitionedReplayBitIdentical is the partitioned-replay differential
// gauntlet: randomized layer geometries and cache associativities — on the
// TITAN Xp these hit the non-pow2 fastmod set counts (96 L1 / 1536 L2 sets
// at the default ways) — replayed at 2, 3, and max (>= set count, clamped)
// partitions, and additionally with a shared stream tier, all of which must
// reproduce the serial reference Result exactly.
func TestPartitionedReplayBitIdentical(t *testing.T) {
	devices := []gpu.Device{gpu.TitanXp(), gpu.V100()}
	rng := rand.New(rand.NewSource(42))
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		l := layers.Conv{
			Name:   fmt.Sprintf("rand%d", trial),
			B:      1 + rng.Intn(3),
			Ci:     8 * (1 + rng.Intn(12)),
			Hi:     7 + rng.Intn(22),
			Co:     16 * (1 + rng.Intn(8)),
			Hf:     1 + 2*rng.Intn(2), // 1 or 3
			Stride: 1 + rng.Intn(2),
		}
		l.Wi = l.Hi
		l.Wf = l.Hf
		if l.Hf > 1 {
			l.Pad = rng.Intn(2)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid layer: %v", trial, err)
		}
		d := devices[trial%len(devices)]
		cfg := Config{
			Device:   d,
			L1Ways:   []int{2, 3, 4}[rng.Intn(3)],
			L2Ways:   []int{8, 12, 16}[rng.Intn(3)],
			MaxWaves: 2, // bound the trial; truncation is part of the schedule
		}
		t.Run(fmt.Sprintf("trial%d/%s", trial, d.Name), func(t *testing.T) {
			t.Parallel()
			serial := cfg
			serial.Workers = 1
			want, err := Run(l, serial)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			for _, parts := range []int{2, 3, 1 << 20} {
				for _, workers := range []int{1, 3} {
					par := cfg
					par.Workers = workers
					par.ReplayPartitions = parts
					par.Streams = trace.NewSharedStreams(0)
					got, err := Run(l, par)
					if err != nil {
						t.Fatalf("workers=%d parts=%d: %v", workers, parts, err)
					}
					if got != want {
						t.Errorf("workers=%d parts=%d diverged:\n got %+v\nwant %+v",
							workers, parts, got, want)
					}
					// Second run against the now-warm tier: hits must be as
					// exact as generation.
					again, err := Run(l, par)
					if err != nil {
						t.Fatalf("warm rerun: %v", err)
					}
					if again != want {
						t.Errorf("workers=%d parts=%d warm-tier rerun diverged:\n got %+v\nwant %+v",
							workers, parts, again, want)
					}
				}
			}
		})
	}
}
