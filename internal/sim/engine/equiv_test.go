package engine

import (
	"fmt"
	"testing"

	"delta/internal/gpu"
	"delta/internal/layers"
)

// equivCorpus spans the grid shapes the paper suite produces: all three
// Fig. 6 tiles (Co <= 32, <= 64, > 64), pointwise and spatial filters,
// stride 2, no padding, multi-wave launches, and an edge-heavy grid.
var equivCorpus = []layers.Conv{
	{Name: "narrow", B: 2, Ci: 96, Hi: 14, Wi: 14, Co: 32, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
	{Name: "mid", B: 2, Ci: 64, Hi: 28, Wi: 28, Co: 64, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
	{Name: "wide", B: 2, Ci: 128, Hi: 14, Wi: 14, Co: 256, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
	{Name: "pointwise", B: 4, Ci: 192, Hi: 28, Wi: 28, Co: 64, Hf: 1, Wf: 1, Stride: 1},
	{Name: "stride2", B: 2, Ci: 48, Hi: 56, Wi: 56, Co: 96, Hf: 5, Wf: 5, Stride: 2, Pad: 2},
	{Name: "nopad", B: 2, Ci: 32, Hi: 27, Wi: 27, Co: 48, Hf: 3, Wf: 3, Stride: 1},
	{Name: "multiwave", B: 8, Ci: 32, Hi: 28, Wi: 28, Co: 128, Hf: 3, Wf: 3, Stride: 1, Pad: 1},
}

// equivConfigs are the Config variants the ablations and experiments
// exercise, per device.
func equivConfigs(d gpu.Device) []Config {
	return []Config{
		{Device: d},
		{Device: d, SkipPadding: true},
		{Device: d, RowMajorScheduling: true},
		{Device: d, MaxWaves: 1},
		{Device: d, MaxWaves: 2, RowMajorScheduling: true},
		{Device: d, L1Ways: 2, L2Ways: 8},
	}
}

// TestParallelBitIdentical asserts the two-phase parallel engine reproduces
// the serial reference engine's Result exactly — every counter, byte total,
// and cache stat — across the corpus, for several worker counts. Run under
// -race in CI, this is also the engine's data-race gauntlet.
func TestParallelBitIdentical(t *testing.T) {
	for _, d := range []gpu.Device{gpu.TitanXp(), gpu.V100()} {
		for _, l := range equivCorpus {
			for ci, cfg := range equivConfigs(d) {
				cfg := cfg
				t.Run(fmt.Sprintf("%s/%s/cfg%d", d.Name, l.Name, ci), func(t *testing.T) {
					t.Parallel()
					serial := cfg
					serial.Workers = 1
					want, err := Run(l, serial)
					if err != nil {
						t.Fatalf("serial: %v", err)
					}
					for _, workers := range []int{0, 2, 3} {
						par := cfg
						par.Workers = workers
						got, err := Run(l, par)
						if err != nil {
							t.Fatalf("workers=%d: %v", workers, err)
						}
						if got != want {
							t.Errorf("workers=%d diverged from serial:\n got %+v\nwant %+v",
								workers, got, want)
						}
					}
				})
			}
		}
	}
}
