package engine

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"delta/internal/gpu"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_results.json from the current engine")

const goldenPath = "testdata/golden_results.json"

// goldenCase names one (device, layer, config) cell of the equivalence
// corpus; the map key is its string form.
func goldenKey(device string, layer string, ci int) string {
	return fmt.Sprintf("%s/%s/cfg%d", device, layer, ci)
}

// TestGoldenResults pins the serial engine's full Result — every counter,
// byte total, and cache stat — for the corpus, against values recorded from
// the engine before the hot-path overhaul (shift/mask caches, tile-stream
// memoization, pooled state). Any optimization that perturbs a counter
// bit-identically fails here, not just serial-vs-parallel consistency.
//
// Regenerate (only when a semantic change is intended) with:
//
//	go test ./internal/sim/engine -run TestGoldenResults -update
func TestGoldenResults(t *testing.T) {
	results := map[string]Result{}
	for _, d := range []gpu.Device{gpu.TitanXp(), gpu.V100()} {
		for _, l := range equivCorpus {
			for ci, cfg := range equivConfigs(d) {
				cfg.Workers = 1
				r, err := Run(l, cfg)
				if err != nil {
					t.Fatalf("%s: %v", goldenKey(d.Name, l.Name, ci), err)
				}
				results[goldenKey(d.Name, l.Name, ci)] = r
			}
		}
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", goldenPath, len(results))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	want := map[string]Result{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(results) {
		t.Fatalf("golden has %d cases, corpus has %d", len(want), len(results))
	}
	for k, w := range want {
		got, ok := results[k]
		if !ok {
			t.Errorf("%s: missing from corpus", k)
			continue
		}
		if got != w {
			t.Errorf("%s: diverged from pre-overhaul engine:\n got %+v\nwant %+v", k, got, w)
		}
	}
}
