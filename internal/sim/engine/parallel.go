package engine

import (
	"sync"

	"delta/internal/sim/cache"
	"delta/internal/sim/trace"
)

// waveSlot buffers one CTA's L1 sector-miss stream for one wave: misses
// holds the miss byte addresses of every main loop back to back, in issue
// order, and loopEnd[i] is the end offset of loop i's segment.
type waveSlot struct {
	misses  []int64
	loopEnd []int32
}

// waveBuf is one wave's slots plus its schedule-index range. Two buffers
// alternate so the L2 replay of wave w overlaps the L1 phase of wave w+1.
type waveBuf struct {
	start, end int
	slots      []waveSlot
}

func newWaveBuf(waveSize, loops int) *waveBuf {
	b := &waveBuf{slots: make([]waveSlot, waveSize)}
	for i := range b.slots {
		b.slots[i].loopEnd = make([]int32, loops)
	}
	return b
}

// runParallel is the deterministic two-phase engine.
//
// Phase 1 (parallel): each wave's CTAs fan out across workers keyed by SM —
// worker w owns every SM with index ≡ w (mod workers) — so each L1 cache is
// driven by exactly one goroutine, in the serial engine's per-SM access
// order (loop-major lockstep, wave order within a loop). Per-SM L1
// simulation is independent within a wave: instead of touching the shared
// L2, workers record each CTA's L1 sector misses into its (loop, slot)
// segment of a reusable wave buffer.
//
// Phase 2 (serial): the coordinating goroutine replays the recorded miss
// segments through the L2 in the exact serial interleave order — loop-major,
// wave order within a loop, then the wave's epilogue stores — so L2 state
// transitions, DRAM sector counts, and dirty writebacks are bit-identical
// to runSerial. Wave w's replay overlaps wave w+1's L1 phase; the two
// phases always touch disjoint buffers.
func (s *sim) runParallel(workers int) {
	nsm := s.d.NumSM
	bufs := [2]*waveBuf{newWaveBuf(s.waveSize, s.loops), newWaveBuf(s.waveSize, s.loops)}

	var wave sync.WaitGroup // per-wave L1 phase barrier
	var exit sync.WaitGroup
	chans := make([]chan *waveBuf, workers)
	requests := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		chans[w] = make(chan *waveBuf, 1)
		exit.Add(1)
		go func(w int) {
			defer exit.Done()
			co := trace.NewCoalescer(s.d.L1ReqBytes, s.d.SectorBytes)
			var reqs uint64
			var l1 *cache.Cache
			var slot *waveSlot
			visit := func(addrs []int64) {
				reqs += uint64(co.Coalesce(addrs))
				for _, sec := range co.Sectors() {
					byteAddr := sec * co.SectorBytes()
					if !l1.AccessSector(byteAddr) {
						slot.misses = append(slot.misses, byteAddr)
					}
				}
			}
			for b := range chans[w] {
				for loop := 0; loop < s.loops; loop++ {
					for idx := b.start; idx < b.end; idx++ {
						sm := idx % nsm
						if sm%workers != w {
							continue
						}
						slot = &b.slots[idx-b.start]
						l1 = s.l1s[sm]
						row, col := s.ctaAt(idx)
						s.gen.IFmapLoop(row, loop, visit)
						s.gen.FilterLoop(col, loop, visit)
						slot.loopEnd[loop] = int32(len(slot.misses))
					}
				}
				wave.Done()
			}
			requests[w] = reqs
		}(w)
	}

	dispatch := func(b *waveBuf, start, end int) {
		b.start, b.end = start, end
		for i := range b.slots[:end-start] {
			b.slots[i].misses = b.slots[i].misses[:0]
		}
		wave.Add(workers)
		for _, ch := range chans {
			ch <- b
		}
	}

	var pending *waveBuf
	cur := 0
	for start := 0; start < s.limit; start += s.waveSize {
		end := start + s.waveSize
		if end > s.limit {
			end = s.limit
		}
		dispatch(bufs[cur], start, end)
		if pending != nil {
			s.replay(pending)
		}
		wave.Wait()
		pending = bufs[cur]
		cur ^= 1
	}
	for _, ch := range chans {
		close(ch)
	}
	exit.Wait()
	if pending != nil {
		s.replay(pending)
	}
	for _, r := range requests {
		s.res.L1Requests += r
	}
}

// replay runs one wave's recorded L1 miss segments through the shared L2 in
// the serial interleave order, then issues the wave's epilogue stores.
func (s *sim) replay(b *waveBuf) {
	n := b.end - b.start
	for loop := 0; loop < s.loops; loop++ {
		for si := 0; si < n; si++ {
			slot := &b.slots[si]
			lo := int32(0)
			if loop > 0 {
				lo = slot.loopEnd[loop-1]
			}
			for _, a := range slot.misses[lo:slot.loopEnd[loop]] {
				if !s.l2.AccessSector(a) {
					s.dramSectors++
				}
			}
		}
	}
	for idx := b.start; idx < b.end; idx++ {
		s.storeCTA(s.ctaAt(idx))
	}
	s.res.SimulatedCTAs += n
}
