package engine

import (
	"math/bits"
	"sync"

	"delta/internal/sim/cache"
	"delta/internal/sim/trace"
)

// partSeg buffers the slice of one CTA's L1 miss stream that falls in one
// L2 set partition: misses holds the missed line runs of every main loop
// back to back, in issue order, and loopEnd[i] is the end offset (in runs)
// of loop i's segment.
type partSeg struct {
	misses  []trace.LineRun
	loopEnd []int32
}

// waveSlot buffers one CTA's L1 miss stream for one wave, bucketed by L2
// replay partition (a single segment when the replay is serial). Bucketing
// happens in the parallel L1 phase — PartitionOf reads only immutable cache
// geometry — so replay workers consume their partition's runs directly
// instead of rescanning every miss.
type waveSlot struct {
	parts []partSeg
}

// waveBuf is one wave's slots plus its schedule-index range. Two buffers
// alternate so the L2 replay of wave w overlaps the L1 phase of wave w+1.
type waveBuf struct {
	start, end int
	slots      []waveSlot
}

// waveBufPool recycles wave buffers (and the per-slot miss buffers they
// carry) across runs; getWaveBuf resizes a pooled buffer to the run's wave
// geometry, reusing slot and segment capacity.
var waveBufPool sync.Pool

func getWaveBuf(waveSize, loops, parts int) *waveBuf {
	b, _ := waveBufPool.Get().(*waveBuf)
	if b == nil {
		b = &waveBuf{}
	}
	if cap(b.slots) < waveSize {
		slots := make([]waveSlot, waveSize)
		copy(slots, b.slots[:cap(b.slots)])
		b.slots = slots
	}
	b.slots = b.slots[:waveSize]
	for i := range b.slots {
		s := &b.slots[i]
		if cap(s.parts) < parts {
			ps := make([]partSeg, parts)
			copy(ps, s.parts[:cap(s.parts)])
			s.parts = ps
		}
		s.parts = s.parts[:parts]
		for p := range s.parts {
			seg := &s.parts[p]
			seg.misses = seg.misses[:0]
			if cap(seg.loopEnd) < loops {
				seg.loopEnd = make([]int32, loops)
			}
			seg.loopEnd = seg.loopEnd[:loops]
		}
	}
	return b
}

// runParallel is the deterministic two-phase engine.
//
// Phase 1 (parallel): each wave's CTAs fan out across workers keyed by SM —
// worker w owns every SM with index ≡ w (mod workers) — so each L1 cache is
// driven by exactly one goroutine, in the serial engine's per-SM access
// order (loop-major lockstep, wave order within a loop). Per-SM L1
// simulation is independent within a wave: instead of touching the shared
// L2, workers record each CTA's L1 sector misses into its (loop, slot)
// segment of a reusable wave buffer, bucketed by L2 set partition. Each
// worker owns a StreamCache, so tile streams shared by its CTAs are
// generated and coalesced once, then replayed; streams are pure functions
// of (axis, index, loop), so per-worker memoization cannot diverge from the
// serial engine.
//
// Phase 2: the recorded miss segments replay through the L2 in the exact
// serial interleave order — loop-major, wave order within a loop, then the
// wave's epilogue stores — so L2 state transitions, DRAM sector counts, and
// dirty writebacks are bit-identical to runSerial. With parts == 1 the
// coordinating goroutine replays serially; with parts > 1 each replay
// worker owns one disjoint L2 set-partition shard and drains only its
// partition's segments (in the same interleave order), which preserves
// every per-set decision — see the package comment and
// internal/sim/cache/partition.go for the determinism argument. Wave w's
// replay overlaps wave w+1's L1 phase; the two phases always touch disjoint
// buffers, and replay workers only ever touch their own partition's sets.
func (s *sim) runParallel(workers, parts int) {
	nsm := s.d.NumSM
	shards := s.l2.Shards(parts)
	parts = len(shards)
	bufs := [2]*waveBuf{
		getWaveBuf(s.waveSize, s.loops, parts),
		getWaveBuf(s.waveSize, s.loops, parts),
	}

	var wave sync.WaitGroup // per-wave L1 phase barrier
	var exit sync.WaitGroup
	chans := make([]chan *waveBuf, workers)
	requests := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		chans[w] = make(chan *waveBuf, 1)
		exit.Add(1)
		go func(w int) {
			defer exit.Done()
			sc := trace.NewStreamCache(s.gen, s.d.L1ReqBytes, s.d.SectorBytes, s.d.LineBytes, s.waveSize)
			if s.cfg.Streams != nil {
				sc.SetShared(s.cfg.Streams)
			}
			var reqs uint64
			drive := func(slot *waveSlot, l1 *cache.Cache, st *trace.Stream) {
				reqs += st.Requests
				for _, r := range st.Runs {
					if m := l1.AccessLineSectors(r.Line, r.Mask); m != 0 {
						p := 0
						if parts > 1 {
							p = s.l2.PartitionOf(r.Line, parts)
						}
						seg := &slot.parts[p]
						seg.misses = append(seg.misses, trace.LineRun{Line: r.Line, Mask: m})
					}
				}
			}
			for b := range chans[w] {
				for loop := 0; loop < s.loops; loop++ {
					for idx := b.start; idx < b.end; idx++ {
						sm := idx % nsm
						if sm%workers != w {
							continue
						}
						slot := &b.slots[idx-b.start]
						l1 := s.l1s[sm]
						row, col := s.ctaAt(idx)
						drive(slot, l1, sc.IFmap(row, loop))
						drive(slot, l1, sc.Filter(col, loop))
						for p := range slot.parts {
							slot.parts[p].loopEnd[loop] = int32(len(slot.parts[p].misses))
						}
					}
				}
				wave.Done()
			}
			requests[w] = reqs
		}(w)
	}

	// Replay workers (parts > 1): one per L2 set partition, each draining
	// its own shard's segments in the serial interleave order with private
	// DRAM sector counters, merged in partition order after exit.
	var replayWave sync.WaitGroup
	var replayExit sync.WaitGroup
	var replayChans []chan *waveBuf
	drams := make([]uint64, parts)
	if parts > 1 {
		replayChans = make([]chan *waveBuf, parts)
		for p := 0; p < parts; p++ {
			replayChans[p] = make(chan *waveBuf, 1)
			replayExit.Add(1)
			go func(p int) {
				defer replayExit.Done()
				sh := shards[p]
				var dram uint64
				for b := range replayChans[p] {
					n := b.end - b.start
					for loop := 0; loop < s.loops; loop++ {
						for si := 0; si < n; si++ {
							seg := &b.slots[si].parts[p]
							lo := int32(0)
							if loop > 0 {
								lo = seg.loopEnd[loop-1]
							}
							for _, r := range seg.misses[lo:seg.loopEnd[loop]] {
								if m := sh.AccessLineSectors(r.Line, r.Mask); m != 0 {
									dram += uint64(bits.OnesCount64(m))
								}
							}
						}
					}
					for idx := b.start; idx < b.end; idx++ {
						row, col := s.ctaAt(idx)
						s.storeCTAShard(sh, row, col)
					}
					replayWave.Done()
				}
				drams[p] = dram
			}(p)
		}
	}

	// replay drains one completed wave buffer through the L2 — inline when
	// the replay is serial, fanned across the partition workers otherwise.
	// Either way it returns only once the buffer is reusable; the L1 phase
	// of the next wave (dispatched before the call) runs concurrently.
	replay := func(b *waveBuf) {
		if parts == 1 {
			s.replaySerial(b)
			return
		}
		replayWave.Add(parts)
		for _, ch := range replayChans {
			ch <- b
		}
		replayWave.Wait()
		s.res.SimulatedCTAs += b.end - b.start
	}

	dispatch := func(b *waveBuf, start, end int) {
		b.start, b.end = start, end
		for i := range b.slots[:end-start] {
			for p := range b.slots[i].parts {
				b.slots[i].parts[p].misses = b.slots[i].parts[p].misses[:0]
			}
		}
		wave.Add(workers)
		for _, ch := range chans {
			ch <- b
		}
	}

	var pending *waveBuf
	cur := 0
	for start := 0; start < s.limit; start += s.waveSize {
		end := start + s.waveSize
		if end > s.limit {
			end = s.limit
		}
		dispatch(bufs[cur], start, end)
		if pending != nil {
			replay(pending)
		}
		wave.Wait()
		pending = bufs[cur]
		cur ^= 1
	}
	for _, ch := range chans {
		close(ch)
	}
	exit.Wait()
	if pending != nil {
		replay(pending)
	}
	for _, ch := range replayChans {
		close(ch)
	}
	replayExit.Wait()
	if parts > 1 {
		for _, d := range drams {
			s.dramSectors += d
		}
		s.l2.MergeShards(shards)
	}
	for _, r := range requests {
		s.res.L1Requests += r
	}
	waveBufPool.Put(bufs[0])
	waveBufPool.Put(bufs[1])
}

// replaySerial runs one wave's recorded L1 miss segments through the shared
// L2 on the coordinating goroutine, in the serial interleave order, then
// issues the wave's epilogue stores.
func (s *sim) replaySerial(b *waveBuf) {
	n := b.end - b.start
	for loop := 0; loop < s.loops; loop++ {
		for si := 0; si < n; si++ {
			seg := &b.slots[si].parts[0]
			lo := int32(0)
			if loop > 0 {
				lo = seg.loopEnd[loop-1]
			}
			for _, r := range seg.misses[lo:seg.loopEnd[loop]] {
				if m := s.l2.AccessLineSectors(r.Line, r.Mask); m != 0 {
					s.dramSectors += uint64(bits.OnesCount64(m))
				}
			}
		}
	}
	for idx := b.start; idx < b.end; idx++ {
		s.storeCTA(s.ctaAt(idx))
	}
	s.res.SimulatedCTAs += n
}
