package engine

import (
	"math/bits"
	"sync"

	"delta/internal/sim/cache"
	"delta/internal/sim/trace"
)

// waveSlot buffers one CTA's L1 miss stream for one wave: misses holds the
// missed line runs of every main loop back to back, in issue order, and
// loopEnd[i] is the end offset (in runs) of loop i's segment.
type waveSlot struct {
	misses  []trace.LineRun
	loopEnd []int32
}

// waveBuf is one wave's slots plus its schedule-index range. Two buffers
// alternate so the L2 replay of wave w overlaps the L1 phase of wave w+1.
type waveBuf struct {
	start, end int
	slots      []waveSlot
}

// waveBufPool recycles wave buffers (and the per-slot miss buffers they
// carry) across runs; getWaveBuf resizes a pooled buffer to the run's wave
// geometry, reusing slot capacity.
var waveBufPool sync.Pool

func getWaveBuf(waveSize, loops int) *waveBuf {
	b, _ := waveBufPool.Get().(*waveBuf)
	if b == nil {
		b = &waveBuf{}
	}
	if cap(b.slots) < waveSize {
		slots := make([]waveSlot, waveSize)
		copy(slots, b.slots[:cap(b.slots)])
		b.slots = slots
	}
	b.slots = b.slots[:waveSize]
	for i := range b.slots {
		s := &b.slots[i]
		s.misses = s.misses[:0]
		if cap(s.loopEnd) < loops {
			s.loopEnd = make([]int32, loops)
		}
		s.loopEnd = s.loopEnd[:loops]
	}
	return b
}

// runParallel is the deterministic two-phase engine.
//
// Phase 1 (parallel): each wave's CTAs fan out across workers keyed by SM —
// worker w owns every SM with index ≡ w (mod workers) — so each L1 cache is
// driven by exactly one goroutine, in the serial engine's per-SM access
// order (loop-major lockstep, wave order within a loop). Per-SM L1
// simulation is independent within a wave: instead of touching the shared
// L2, workers record each CTA's L1 sector misses into its (loop, slot)
// segment of a reusable wave buffer. Each worker owns a StreamCache, so
// tile streams shared by its CTAs are generated and coalesced once, then
// replayed; streams are pure functions of (axis, index, loop), so
// per-worker memoization cannot diverge from the serial engine.
//
// Phase 2 (serial): the coordinating goroutine replays the recorded miss
// segments through the L2 in the exact serial interleave order — loop-major,
// wave order within a loop, then the wave's epilogue stores — so L2 state
// transitions, DRAM sector counts, and dirty writebacks are bit-identical
// to runSerial. Wave w's replay overlaps wave w+1's L1 phase; the two
// phases always touch disjoint buffers.
func (s *sim) runParallel(workers int) {
	nsm := s.d.NumSM
	bufs := [2]*waveBuf{getWaveBuf(s.waveSize, s.loops), getWaveBuf(s.waveSize, s.loops)}

	var wave sync.WaitGroup // per-wave L1 phase barrier
	var exit sync.WaitGroup
	chans := make([]chan *waveBuf, workers)
	requests := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		chans[w] = make(chan *waveBuf, 1)
		exit.Add(1)
		go func(w int) {
			defer exit.Done()
			sc := trace.NewStreamCache(s.gen, s.d.L1ReqBytes, s.d.SectorBytes, s.d.LineBytes, s.waveSize)
			var reqs uint64
			drive := func(slot *waveSlot, l1 *cache.Cache, st *trace.Stream) {
				reqs += st.Requests
				for _, r := range st.Runs {
					if m := l1.AccessLineSectors(r.Line, r.Mask); m != 0 {
						slot.misses = append(slot.misses, trace.LineRun{Line: r.Line, Mask: m})
					}
				}
			}
			for b := range chans[w] {
				for loop := 0; loop < s.loops; loop++ {
					for idx := b.start; idx < b.end; idx++ {
						sm := idx % nsm
						if sm%workers != w {
							continue
						}
						slot := &b.slots[idx-b.start]
						l1 := s.l1s[sm]
						row, col := s.ctaAt(idx)
						drive(slot, l1, sc.IFmap(row, loop))
						drive(slot, l1, sc.Filter(col, loop))
						slot.loopEnd[loop] = int32(len(slot.misses))
					}
				}
				wave.Done()
			}
			requests[w] = reqs
		}(w)
	}

	dispatch := func(b *waveBuf, start, end int) {
		b.start, b.end = start, end
		for i := range b.slots[:end-start] {
			b.slots[i].misses = b.slots[i].misses[:0]
		}
		wave.Add(workers)
		for _, ch := range chans {
			ch <- b
		}
	}

	var pending *waveBuf
	cur := 0
	for start := 0; start < s.limit; start += s.waveSize {
		end := start + s.waveSize
		if end > s.limit {
			end = s.limit
		}
		dispatch(bufs[cur], start, end)
		if pending != nil {
			s.replay(pending)
		}
		wave.Wait()
		pending = bufs[cur]
		cur ^= 1
	}
	for _, ch := range chans {
		close(ch)
	}
	exit.Wait()
	if pending != nil {
		s.replay(pending)
	}
	for _, r := range requests {
		s.res.L1Requests += r
	}
	waveBufPool.Put(bufs[0])
	waveBufPool.Put(bufs[1])
}

// replay runs one wave's recorded L1 miss segments through the shared L2 in
// the serial interleave order, then issues the wave's epilogue stores.
func (s *sim) replay(b *waveBuf) {
	n := b.end - b.start
	for loop := 0; loop < s.loops; loop++ {
		for si := 0; si < n; si++ {
			slot := &b.slots[si]
			lo := int32(0)
			if loop > 0 {
				lo = slot.loopEnd[loop-1]
			}
			for _, r := range slot.misses[lo:slot.loopEnd[loop]] {
				if m := s.l2.AccessLineSectors(r.Line, r.Mask); m != 0 {
					s.dramSectors += uint64(bits.OnesCount64(m))
				}
			}
		}
	}
	for idx := b.start; idx < b.end; idx++ {
		s.storeCTA(s.ctaAt(idx))
	}
	s.res.SimulatedCTAs += n
}
