// Package noc models the crossbar interconnection network between SMs and
// the banked L2 cache (Section II-A: "The SMs share access to the L2 cache
// and DRAM through a crossbar interconnection network").
//
// The crossbar is modeled as a set of independently-queued L2 banks:
// requests hash by address to a bank, each bank serves at an equal share of
// the aggregate L2 bandwidth, and a hot bank queues while others idle. This
// exposes bank-camping effects a single aggregate-bandwidth queue hides.
package noc

import (
	"fmt"

	"delta/internal/sim/dram"
)

// Crossbar routes requests to banked channels.
type Crossbar struct {
	banks     []*dram.Channel
	bankShift uint // hash granularity: address >> shift selects the stripe
}

// NewCrossbar builds a crossbar with the given number of banks sharing
// totalBytesPerClk of bandwidth. Addresses are striped across banks in
// stripeBytes units (typically the 128 B line size).
func NewCrossbar(banks int, totalBytesPerClk, latencyClk float64, stripeBytes int) (*Crossbar, error) {
	if banks <= 0 {
		return nil, fmt.Errorf("noc: banks must be positive, got %d", banks)
	}
	if stripeBytes <= 0 || stripeBytes&(stripeBytes-1) != 0 {
		return nil, fmt.Errorf("noc: stripe %d must be a positive power of two", stripeBytes)
	}
	x := &Crossbar{banks: make([]*dram.Channel, banks)}
	for s := stripeBytes; s > 1; s >>= 1 {
		x.bankShift++
	}
	per := totalBytesPerClk / float64(banks)
	for i := range x.banks {
		ch, err := dram.NewChannel(per, latencyClk)
		if err != nil {
			return nil, err
		}
		x.banks[i] = ch
	}
	return x, nil
}

// Banks returns the bank count.
func (x *Crossbar) Banks() int { return len(x.banks) }

// bankFor selects the bank a byte address routes to.
func (x *Crossbar) bankFor(addr int64) int {
	b := (addr >> x.bankShift) % int64(len(x.banks))
	if b < 0 {
		b = -b
	}
	return int(b)
}

// Read enqueues a read of the given bytes at the bank owning addr and
// returns the completion time.
func (x *Crossbar) Read(now float64, addr int64, bytes float64) float64 {
	return x.banks[x.bankFor(addr)].Read(now, bytes)
}

// ReadStriped spreads a large transfer across all banks (the behaviour of a
// well-interleaved tile load) and returns the time the last stripe lands.
func (x *Crossbar) ReadStriped(now float64, bytes float64) float64 {
	per := bytes / float64(len(x.banks))
	var last float64
	for _, b := range x.banks {
		if done := b.Read(now, per); done > last {
			last = done
		}
	}
	return last
}

// ReadHot sends the whole transfer to a single bank — the worst-case
// camping pattern, used to bound interconnect sensitivity.
func (x *Crossbar) ReadHot(now float64, bytes float64) float64 {
	return x.banks[0].Read(now, bytes)
}

// Stats aggregates all banks' counters plus an imbalance measure.
type Stats struct {
	ReadBytes  float64
	WriteBytes float64
	Requests   uint64

	// Imbalance is max-bank bytes over mean-bank bytes (1.0 = perfectly
	// balanced).
	Imbalance float64
}

// Stats returns aggregate crossbar counters.
func (x *Crossbar) Stats() Stats {
	var s Stats
	var maxBytes float64
	for _, b := range x.banks {
		bs := b.Stats()
		tot := bs.ReadBytes + bs.WriteBytes
		s.ReadBytes += bs.ReadBytes
		s.WriteBytes += bs.WriteBytes
		s.Requests += bs.Requests
		if tot > maxBytes {
			maxBytes = tot
		}
	}
	mean := (s.ReadBytes + s.WriteBytes) / float64(len(x.banks))
	if mean > 0 {
		s.Imbalance = maxBytes / mean
	}
	return s
}

// Reset clears every bank.
func (x *Crossbar) Reset() {
	for _, b := range x.banks {
		b.Reset()
	}
}
