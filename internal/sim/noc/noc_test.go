package noc

import (
	"testing"
	"testing/quick"
)

func newXbar(t *testing.T, banks int) *Crossbar {
	t.Helper()
	x, err := NewCrossbar(banks, 640, 50, 128)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestNewCrossbarValidation(t *testing.T) {
	if _, err := NewCrossbar(0, 100, 10, 128); err == nil {
		t.Error("zero banks accepted")
	}
	if _, err := NewCrossbar(4, 100, 10, 100); err == nil {
		t.Error("non-power-of-two stripe accepted")
	}
	if _, err := NewCrossbar(4, 0, 10, 128); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestAddressStriping(t *testing.T) {
	x := newXbar(t, 4)
	// Consecutive 128 B stripes round-robin the banks.
	seen := map[int]bool{}
	for i := int64(0); i < 4; i++ {
		seen[x.bankFor(i*128)] = true
	}
	if len(seen) != 4 {
		t.Errorf("4 stripes hit %d banks, want 4", len(seen))
	}
	// Addresses within one stripe share a bank.
	if x.bankFor(0) != x.bankFor(127) {
		t.Error("same stripe split across banks")
	}
}

func TestStripedBeatsHotBank(t *testing.T) {
	// The same volume completes sooner striped across banks than camped on
	// one: the effect a single aggregate queue cannot show.
	striped := newXbar(t, 8)
	hot := newXbar(t, 8)
	vol := 64 * 1024.0
	ts := striped.ReadStriped(0, vol)
	th := hot.ReadHot(0, vol)
	if ts >= th {
		t.Errorf("striped %v not faster than hot-bank %v", ts, th)
	}
	// Hot bank serves at 1/8 the bandwidth: ~8x the transfer time.
	if th < ts*4 {
		t.Errorf("hot/striped = %v, want ~8x", th/ts)
	}
}

func TestStatsAndImbalance(t *testing.T) {
	x := newXbar(t, 4)
	x.ReadStriped(0, 4096)
	s := x.Stats()
	if s.ReadBytes != 4096 {
		t.Errorf("read bytes = %v", s.ReadBytes)
	}
	if s.Imbalance < 0.99 || s.Imbalance > 1.01 {
		t.Errorf("striped imbalance = %v, want 1.0", s.Imbalance)
	}
	x.Reset()
	x.ReadHot(0, 4096)
	if got := x.Stats().Imbalance; got < 3.9 {
		t.Errorf("hot-bank imbalance = %v, want ~4", got)
	}
}

func TestReset(t *testing.T) {
	x := newXbar(t, 2)
	x.Read(0, 0, 128)
	x.Reset()
	if s := x.Stats(); s.Requests != 0 || s.ReadBytes != 0 {
		t.Errorf("stats after reset: %+v", s)
	}
}

// TestQuickBankSelectionStable: the same address always routes to the same
// bank, and all banks are reachable.
func TestQuickBankSelectionStable(t *testing.T) {
	x, err := NewCrossbar(8, 640, 50, 128)
	if err != nil {
		t.Fatal(err)
	}
	f := func(addr uint32) bool {
		a := int64(addr)
		b := x.bankFor(a)
		return b >= 0 && b < 8 && b == x.bankFor(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
