// Package timing is an event-driven execution-time simulator for the
// blocked im2col GEMM: per-SM compute pipes, double-buffered main loops, and
// queueing contention on the shared L2 and DRAM channels.
//
// It stands in for the paper's measured execution cycles (Fig. 13/14/19).
// Unlike the closed-form model of package perf it resolves contention
// dynamically: every CTA's global loads are serialized through shared
// bandwidth queues in issue order, latency exposure emerges from buffer
// readiness rather than a case analysis, and SMs desynchronize freely.
package timing

import (
	"fmt"
	"math"

	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/sim/dram"
	"delta/internal/sim/noc"
	"delta/internal/traffic"
)

// Options tunes the timing simulation.
type Options struct {
	// L2Banks routes L2 traffic through a banked crossbar (internal/sim/noc)
	// instead of one aggregate bandwidth queue. Zero keeps the aggregate
	// queue. Banked L2 exposes transient bank collisions between SMs.
	L2Banks int
}

// Result is the simulated execution time of one layer.
type Result struct {
	Layer  layers.Conv
	Device string

	Cycles  float64
	Seconds float64

	SimulatedCTAs int

	// MeanDRAMTurnaroundClk exposes the queueing the DRAM channel saw.
	MeanDRAMTurnaroundClk float64
}

// Run simulates the layer described by a traffic estimate on device d with
// default options (aggregate L2 queue).
func Run(e traffic.Estimate, d gpu.Device) (Result, error) {
	return RunWithOptions(e, d, Options{})
}

// RunWithOptions simulates the layer described by a traffic estimate on
// device d. Per-main-loop load volumes come from the estimate; the
// discrete-event machinery resolves when those loads complete under
// contention.
func RunWithOptions(e traffic.Estimate, d gpu.Device, o Options) (Result, error) {
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	if e.Device != d.Name {
		return Result{}, fmt.Errorf("timing: estimate for %q run on %q", e.Device, d.Name)
	}
	g := e.Grid
	tile := g.Tile
	const eb = layers.ElemBytes

	// Shared channels. The L2 "channel" has zero pipeline latency of its
	// own (latency is added per request) so it acts as a bandwidth queue.
	dramCh, err := dram.NewChannel(d.DRAMBytesPerClk(), d.LatDRAMClk)
	if err != nil {
		return Result{}, err
	}
	l2Ch, err := dram.NewChannel(d.L2BytesPerClk(), 0)
	if err != nil {
		return Result{}, err
	}
	var xbar *noc.Crossbar
	if o.L2Banks > 0 {
		xbar, err = noc.NewCrossbar(o.L2Banks, d.L2BytesPerClk(), 0, d.LineBytes)
		if err != nil {
			return Result{}, err
		}
	}

	// Per-loop stream times local to an SM.
	macPerClk := d.MACPerClkPerSM()
	tCS := float64(tile.BlkM) * float64(tile.BlkN) * float64(tile.BlkK) / macPerClk
	smemStoreBytes := float64(tile.BlkM+tile.BlkN) * float64(tile.BlkK) * eb
	smemLoadBytes := float64(tile.WarpM+tile.WarpN) * float64(tile.BlkK) * eb * float64(tile.Warps())
	tSAS := smemStoreBytes/d.SMEMStoreBPerClk + smemLoadBytes/d.SMEMLoadBPerClk
	inner := math.Max(tCS, tSAS)

	l1Rate := d.L1BytesPerClkPerSM()
	vL1 := e.PerLoopL1Bytes
	vL2 := e.PerLoopL2Bytes
	vDRAM := e.PerLoopDRAMBytes

	prologueBytes := smemStoreBytes
	epiBytes := float64(tile.BlkM) * float64(tile.BlkN) * eb

	active := g.ActiveCTAs(d)
	waveSize := d.NumSM * active
	loops := g.MainLoops()
	numCTA := g.NumCTA()

	// issueGLS models one loop's global loads launched at time t: the L1
	// transfer is SM-local, the L2 and DRAM portions queue on the shared
	// channels. The loads complete when the slowest level delivers. With a
	// banked L2, the CTA's tile address (hashed from slot and loop) picks
	// the bank, so colliding SMs queue behind each other.
	issueGLS := func(t float64, slot, loop int) float64 {
		l1Done := t + d.LatL1Clk + vL1/l1Rate
		var l2Done float64
		if xbar != nil {
			addr := int64(uint32(slot*2654435761) ^ uint32(loop*40503))
			l2Done = xbar.Read(t, addr*int64(d.LineBytes), vL2) + d.LatL2Clk
		} else {
			l2Done = l2Ch.Read(t, vL2) + d.LatL2Clk
		}
		dDone := dramCh.Read(t, vDRAM)
		return math.Max(l1Done, math.Max(l2Done, dDone))
	}

	// Slot state: each of the waveSize concurrent CTA slots has a free time
	// and each SM a compute-pipe free time.
	slotFree := make([]float64, waveSize)
	pipeFree := make([]float64, d.NumSM)
	glsReady := make([]float64, waveSize)
	loopDone := make([]float64, waveSize)

	var finish float64
	simulated := 0

	for start := 0; start < numCTA; start += waveSize {
		n := waveSize
		if start+n > numCTA {
			n = numCTA - start
		}
		// Prologue: each CTA's first buffers stream from DRAM, then into
		// SMEM, before loop 0 can run.
		for s := 0; s < n; s++ {
			t0 := slotFree[s]
			dDone := dramCh.Read(t0, prologueBytes)
			glsReady[s] = dDone + d.LatSMEMClk + prologueBytes/d.SMEMStoreBPerClk
			loopDone[s] = glsReady[s]
		}
		// Main loops, double buffered: compute of loop i overlaps the
		// global loads of loop i+1.
		for loop := 0; loop < loops; loop++ {
			for s := 0; s < n; s++ {
				sm := s % d.NumSM
				cs := math.Max(glsReady[s], pipeFree[sm])
				pipeFree[sm] = cs + inner
				loopDone[s] = cs + inner
				if loop+1 < loops {
					glsReady[s] = issueGLS(cs, s, loop)
				}
			}
		}
		// Epilogue: accumulators stream to DRAM; the slot frees for the
		// next wave's CTA when the write drains.
		for s := 0; s < n; s++ {
			done := dramCh.Write(loopDone[s], epiBytes)
			slotFree[s] = done
			if done > finish {
				finish = done
			}
		}
		simulated += n
	}

	res := Result{
		Layer:                 e.Layer,
		Device:                d.Name,
		Cycles:                finish,
		Seconds:               d.CyclesToSeconds(finish),
		SimulatedCTAs:         simulated,
		MeanDRAMTurnaroundClk: dramCh.Stats().MeanTurnaroundClk,
	}
	return res, nil
}

// RunLayer is a convenience wrapper: traffic model then timing simulation.
func RunLayer(l layers.Conv, d gpu.Device, opt traffic.Options) (Result, error) {
	e, err := traffic.Model(l, d, opt)
	if err != nil {
		return Result{}, err
	}
	return Run(e, d)
}
