package timing

import (
	"testing"

	"delta/internal/gpu"
	"delta/internal/layers"
	"delta/internal/perf"
	"delta/internal/traffic"
)

var xp = gpu.TitanXp()

func runLayer(t *testing.T, l layers.Conv, d gpu.Device) Result {
	t.Helper()
	r, err := RunLayer(l, d, traffic.Options{})
	if err != nil {
		t.Fatalf("RunLayer(%s): %v", l.Name, err)
	}
	return r
}

func TestPositiveAndAboveArithmeticBound(t *testing.T) {
	l := layers.Conv{Name: "cb", B: 64, Ci: 256, Hi: 13, Wi: 13, Co: 384, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	r := runLayer(t, l, xp)
	if r.Cycles <= 0 {
		t.Fatalf("cycles = %v", r.Cycles)
	}
	ideal := l.MACs() / (xp.MACPerClkPerSM() * float64(xp.NumSM))
	if r.Cycles < ideal {
		t.Errorf("simulated cycles %v below arithmetic bound %v", r.Cycles, ideal)
	}
	if r.SimulatedCTAs == 0 {
		t.Error("no CTAs simulated")
	}
}

func TestAgreesWithModelOnComputeBoundLayer(t *testing.T) {
	// Both the closed form and the event sim should land near the MAC
	// roofline for a compute-bound layer — this is the Fig. 13 shape claim.
	l := layers.Conv{Name: "agree", B: 64, Ci: 256, Hi: 13, Wi: 13, Co: 384, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	sim := runLayer(t, l, xp)
	model, err := perf.ModelLayer(l, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := model.Cycles / sim.Cycles
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("model/sim = %v (model %v, sim %v)", ratio, model.Cycles, sim.Cycles)
	}
}

func TestMoreSMsFaster(t *testing.T) {
	l := layers.Conv{Name: "sms", B: 64, Ci: 128, Hi: 28, Wi: 28, Co: 256, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	base := runLayer(t, l, xp)
	big := (gpu.Scale{NumSM: 2, L2BW: 2, DRAMBW: 2}).Apply(xp)
	fast, err := RunLayer(l, big, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles >= base.Cycles {
		t.Errorf("2x device not faster: %v vs %v", fast.Cycles, base.Cycles)
	}
}

func TestStarvedDRAMExposesQueueing(t *testing.T) {
	// Cut DRAM bandwidth 10x: the simulated time must grow and the DRAM
	// turnaround must exceed the unloaded pipeline latency.
	l := layers.Conv{Name: "starve", B: 64, Ci: 64, Hi: 56, Wi: 56, Co: 64, Hf: 1, Wf: 1, Stride: 1}
	base := runLayer(t, l, xp)
	slow := (gpu.Scale{DRAMBW: 0.1}).Apply(xp)
	starved, err := RunLayer(l, slow, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if starved.Cycles <= base.Cycles {
		t.Errorf("starved run not slower: %v vs %v", starved.Cycles, base.Cycles)
	}
	if starved.MeanDRAMTurnaroundClk <= slow.LatDRAMClk {
		t.Errorf("no queueing visible: %v <= %v", starved.MeanDRAMTurnaroundClk, slow.LatDRAMClk)
	}
}

func TestBatchScalingRoughlyLinear(t *testing.T) {
	l := layers.Conv{Name: "lin", B: 32, Ci: 128, Hi: 14, Wi: 14, Co: 256, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	small := runLayer(t, l, xp)
	big := runLayer(t, l.WithBatch(128), xp)
	ratio := big.Cycles / small.Cycles
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("4x batch scaled cycles by %v, want ~4", ratio)
	}
}

func TestDeviceMismatchRejected(t *testing.T) {
	l := layers.Conv{Name: "mm", B: 8, Ci: 16, Hi: 14, Wi: 14, Co: 32, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	e, err := traffic.Model(l, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e, gpu.P100()); err == nil {
		t.Error("cross-device estimate accepted")
	}
}

func TestInvalidLayerRejected(t *testing.T) {
	if _, err := RunLayer(layers.Conv{Name: "bad"}, xp, traffic.Options{}); err == nil {
		t.Error("invalid layer accepted")
	}
}

func TestBankedL2CrossbarOption(t *testing.T) {
	l := layers.Conv{Name: "xbar", B: 32, Ci: 128, Hi: 28, Wi: 28, Co: 256, Hf: 3, Wf: 3, Stride: 1, Pad: 1}
	e, err := traffic.Model(l, xp, traffic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := RunWithOptions(e, xp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	banked, err := RunWithOptions(e, xp, Options{L2Banks: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Banking can only add collisions: never faster than the aggregate
	// queue, and within a modest factor for a balanced workload.
	if banked.Cycles < agg.Cycles*0.999 {
		t.Errorf("banked L2 faster than aggregate: %v vs %v", banked.Cycles, agg.Cycles)
	}
	if banked.Cycles > agg.Cycles*2 {
		t.Errorf("banked L2 pathologically slow: %v vs %v", banked.Cycles, agg.Cycles)
	}
	if _, err := RunWithOptions(e, xp, Options{L2Banks: -1}); err == nil {
		t.Log("negative banks treated as aggregate (allowed)")
	}
}
