// SharedStreams: a process-level tier above the per-run StreamCache, so
// coalesced tile streams survive across engine runs.
//
// A stream is a pure function of (layer, grid, padding predication,
// coalescing geometry, axis, index, loop). Scenario sweeps re-derive the
// same functions point after point: adjacent points that differ only in
// cache capacity, associativity, SM count, or any other knob outside the
// coalescing geometry regenerate byte-identical streams, and within one
// parallel run every worker's private StreamCache regenerates the streams
// its siblings already built. The shared tier memoizes the coalesced form
// once under the full identity key, so correctness never depends on which
// run (or worker) produced an entry — a hit returns exactly the stream
// the consumer would have generated.
package trace

import (
	"sync"
	"sync/atomic"

	"delta/internal/layers"
	"delta/internal/tiling"
)

// streamAxis distinguishes the two tile-stream families of a GEMM.
type streamAxis uint8

const (
	axisIFmap streamAxis = iota
	axisFilter
)

// sharedKey is the complete identity of one coalesced tile stream. Every
// input that influences generation or coalescing is part of the key; two
// equal keys therefore always denote byte-identical streams.
type sharedKey struct {
	layer   layers.Conv
	grid    tiling.Grid
	skipPad bool

	reqBytes, sectorBytes, lineBytes int32

	axis  streamAxis
	index int32
	loop  int32
}

// SharedStreamStats reports the tier's observability counters.
type SharedStreamStats struct {
	Hits    uint64
	Misses  uint64
	Entries uint64
}

// DefaultSharedStreamLimit bounds a SharedStreams tier constructed with
// limit < 1. Entries hold one coalesced stream each (typically a few
// hundred bytes of line runs), so the default bounds the tier to tens of
// MB even under adversarial sweep shapes. The default is sized so one
// generation (half the limit) holds a whole network suite's unique streams
// — a GoogLeNet-class sweep point generates ~25k — because a tier smaller
// than one sweep point thrashes: every point regenerates everything and
// the tier costs more than it saves.
const DefaultSharedStreamLimit = 1 << 16

// SharedStreams is a bounded concurrency-safe stream memo. Eviction is
// two-generational: inserts fill the young map, and when it reaches half
// the limit the old generation is dropped and the young one retires into
// its place — recently used streams survive (old-generation hits promote),
// stale sweeps age out, and occupancy never exceeds the limit. Published
// streams are immutable; readers may hold them indefinitely.
type SharedStreams struct {
	mu    sync.Mutex
	young map[sharedKey]*Stream
	old   map[sharedKey]*Stream
	limit int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSharedStreams builds a shared stream tier bounded to roughly limit
// entries across both generations (limit < 1 selects the default).
func NewSharedStreams(limit int) *SharedStreams {
	if limit < 1 {
		limit = DefaultSharedStreamLimit
	}
	// Two generations of limit/2 keep total occupancy under the limit; a
	// floor of one entry per generation keeps tiny limits functional.
	half := limit / 2
	if half < 1 {
		half = 1
	}
	return &SharedStreams{
		young: make(map[sharedKey]*Stream),
		old:   make(map[sharedKey]*Stream),
		limit: half,
	}
}

// Stats returns a snapshot of the tier's counters.
func (ss *SharedStreams) Stats() SharedStreamStats {
	ss.mu.Lock()
	entries := len(ss.young) + len(ss.old)
	ss.mu.Unlock()
	return SharedStreamStats{
		Hits:    ss.hits.Load(),
		Misses:  ss.misses.Load(),
		Entries: uint64(entries),
	}
}

// get returns the published stream for key, promoting old-generation hits
// so live keys survive rotation. nil means the caller must generate (and
// should publish via put).
func (ss *SharedStreams) get(key sharedKey) *Stream {
	ss.mu.Lock()
	st, ok := ss.young[key]
	if !ok {
		if st, ok = ss.old[key]; ok {
			ss.rotateIfFull()
			ss.young[key] = st
		}
	}
	ss.mu.Unlock()
	if !ok {
		ss.misses.Add(1)
		return nil
	}
	ss.hits.Add(1)
	return st
}

// put publishes a freshly generated stream and returns the canonical copy:
// under a concurrent duplicate generation the first publisher wins, so
// every consumer shares one allocation. The stream must not be mutated
// after publication.
func (ss *SharedStreams) put(key sharedKey, st *Stream) *Stream {
	ss.mu.Lock()
	if prev, ok := ss.young[key]; ok {
		st = prev
	} else if prev, ok := ss.old[key]; ok {
		st = prev
	} else {
		ss.rotateIfFull()
		ss.young[key] = st
	}
	ss.mu.Unlock()
	return st
}

// rotateIfFull retires the young generation once it reaches the per-
// generation limit, dropping the old one. Called with mu held.
func (ss *SharedStreams) rotateIfFull() {
	if len(ss.young) >= ss.limit {
		ss.old = ss.young
		ss.young = make(map[sharedKey]*Stream, ss.limit)
	}
}
