package trace

import (
	"fmt"
	"sync"
	"testing"
)

// streamsEqual reports deep equality of two coalesced streams.
func streamsEqual(a, b *Stream) bool {
	if a.Requests != b.Requests || len(a.Runs) != len(b.Runs) {
		return false
	}
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			return false
		}
	}
	return true
}

// TestSharedStreamsMatchPrivate pins the tier-backed StreamCache against a
// private one: for every (axis, index, loop) across the corpus, both
// granularities, and both padding modes, the shared path must return a
// stream deep-equal to the private ring's.
func TestSharedStreamsMatchPrivate(t *testing.T) {
	grans := []struct{ req, sec, line int }{{128, 32, 128}, {32, 32, 128}}
	for _, l := range streamCorpus {
		for _, skipPad := range []bool{false, true} {
			g := newGen(t, l, skipPad)
			for gi, gr := range grans {
				t.Run(fmt.Sprintf("%s/skip%v/g%d", l.Name, skipPad, gi), func(t *testing.T) {
					priv := NewStreamCache(g, gr.req, gr.sec, gr.line, 8)
					ss := NewSharedStreams(0)
					shrd := NewStreamCache(g, gr.req, gr.sec, gr.line, 8)
					shrd.SetShared(ss)
					for loop := 0; loop < g.Grid.MainLoops(); loop++ {
						for row := 0; row < g.Grid.Rows; row++ {
							if !streamsEqual(priv.IFmap(row, loop), shrd.IFmap(row, loop)) {
								t.Fatalf("ifmap(%d,%d): shared stream diverged from private", row, loop)
							}
						}
						for col := 0; col < g.Grid.Cols; col++ {
							if !streamsEqual(priv.Filter(col, loop), shrd.Filter(col, loop)) {
								t.Fatalf("filter(%d,%d): shared stream diverged from private", col, loop)
							}
						}
					}
					if st := ss.Stats(); st.Misses == 0 || st.Entries == 0 {
						t.Fatalf("tier never populated: %+v", st)
					}
				})
			}
		}
	}
}

// TestSharedStreamsCrossCacheHits is the point of the tier: a second
// StreamCache over the same generator and geometry must hit every stream
// the first one published, returning the canonical (pointer-identical)
// copies without regenerating.
func TestSharedStreamsCrossCacheHits(t *testing.T) {
	l := streamCorpus[0]
	g := newGen(t, l, false)
	ss := NewSharedStreams(0)

	a := NewStreamCache(g, 128, 32, 128, 8)
	a.SetShared(ss)
	for row := 0; row < g.Grid.Rows; row++ {
		a.IFmap(row, 0)
	}
	for col := 0; col < g.Grid.Cols; col++ {
		a.Filter(col, 0)
	}
	before := ss.Stats()

	b := NewStreamCache(g, 128, 32, 128, 8)
	b.SetShared(ss)
	for row := 0; row < g.Grid.Rows; row++ {
		if a.IFmap(row, 0) != b.IFmap(row, 0) {
			t.Fatalf("ifmap row %d: second cache did not adopt the canonical stream", row)
		}
	}
	for col := 0; col < g.Grid.Cols; col++ {
		if a.Filter(col, 0) != b.Filter(col, 0) {
			t.Fatalf("filter col %d: second cache did not adopt the canonical stream", col)
		}
	}
	after := ss.Stats()
	if after.Misses != before.Misses {
		t.Errorf("second cache regenerated %d streams", after.Misses-before.Misses)
	}
	if wantHits := uint64(g.Grid.Rows + g.Grid.Cols); after.Hits-before.Hits < wantHits {
		t.Errorf("second cache hit %d times, want >= %d", after.Hits-before.Hits, wantHits)
	}
	if after.Entries != before.Entries {
		t.Errorf("entries changed %d -> %d on a pure re-read", before.Entries, after.Entries)
	}
}

// TestSharedStreamsGeometryIsolation ensures the identity key covers the
// coalescing geometry: caches with different request granularity over one
// tier must never adopt each other's streams.
func TestSharedStreamsGeometryIsolation(t *testing.T) {
	l := streamCorpus[0]
	g := newGen(t, l, false)
	ss := NewSharedStreams(0)

	wide := NewStreamCache(g, 128, 32, 128, 8)
	wide.SetShared(ss)
	narrow := NewStreamCache(g, 32, 32, 128, 8)
	narrow.SetShared(ss)

	w, n := wide.IFmap(0, 0), narrow.IFmap(0, 0)
	if w == n {
		t.Fatal("different granularities shared one canonical stream")
	}
	if w.Requests == n.Requests {
		t.Skip("granularities coincidentally equal for this layer; isolation unobservable")
	}
}

// TestSharedStreamsBounded drives more unique streams through the tier than
// its limit and asserts occupancy stays bounded while results stay correct
// (generation after eviction reproduces the same stream).
func TestSharedStreamsBounded(t *testing.T) {
	l := streamCorpus[1] // s2p2: plenty of rows and loops
	g := newGen(t, l, false)
	const limit = 8
	ss := NewSharedStreams(limit)
	sc := NewStreamCache(g, 128, 32, 128, 8)
	sc.SetShared(ss)
	priv := NewStreamCache(g, 128, 32, 128, 8)

	for loop := 0; loop < g.Grid.MainLoops(); loop++ {
		for row := 0; row < g.Grid.Rows; row++ {
			if !streamsEqual(priv.IFmap(row, loop), sc.IFmap(row, loop)) {
				t.Fatalf("ifmap(%d,%d) wrong under eviction pressure", row, loop)
			}
			if st := ss.Stats(); st.Entries > limit {
				t.Fatalf("tier grew to %d entries, limit %d", st.Entries, limit)
			}
		}
	}
	uniqueStreams := uint64(g.Grid.Rows * g.Grid.MainLoops())
	if st := ss.Stats(); st.Misses < uniqueStreams {
		t.Fatalf("only %d misses for %d unique streams under limit %d — nothing evicted?",
			st.Misses, uniqueStreams, limit)
	}
}

// TestSharedStreamsConcurrent hammers one tier from per-goroutine
// StreamCaches (the engine's worker topology) and checks every result
// against a private reference. Run under -race this also proves the
// publication discipline: canonical streams are never written after the
// tier returns them.
func TestSharedStreamsConcurrent(t *testing.T) {
	l := streamCorpus[0]
	g := newGen(t, l, false)
	ss := NewSharedStreams(0)

	const workers = 8
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sc := NewStreamCache(g, 128, 32, 128, 8)
			sc.SetShared(ss)
			mine := NewStreamCache(g, 128, 32, 128, 8)
			for loop := 0; loop < g.Grid.MainLoops(); loop++ {
				for i := 0; i < g.Grid.Rows+g.Grid.Cols; i++ {
					// Stagger traversal per worker so publishers race.
					idx := (i + seed) % (g.Grid.Rows + g.Grid.Cols)
					if idx < g.Grid.Rows {
						if !streamsEqual(mine.IFmap(idx, loop), sc.IFmap(idx, loop)) {
							errs <- fmt.Errorf("worker %d: ifmap(%d,%d) diverged", seed, idx, loop)
							return
						}
					} else {
						col := idx - g.Grid.Rows
						if !streamsEqual(mine.Filter(col, loop), sc.Filter(col, loop)) {
							errs <- fmt.Errorf("worker %d: filter(%d,%d) diverged", seed, col, loop)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
