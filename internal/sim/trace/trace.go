// Package trace generates the warp-level global-load address streams of the
// blocked im2col GEMM: exactly the requests the cuDNN main loop issues for
// its IFmap and filter tiles (Fig. 5), CTA by CTA, loop by loop.
//
// The generator is the simulator's ground truth: the analytical model's L1
// and L2 equations are abstractions of these streams.
package trace

import (
	"delta/internal/im2col"
	"delta/internal/layers"
	"delta/internal/tiling"
)

// Generator produces warp requests for one layer's GEMM.
type Generator struct {
	Layer layers.Conv
	Grid  tiling.Grid

	mat im2col.Matrix
	fil im2col.FilterMatrix

	// filterBase is the byte offset of the weight region, placed after the
	// padded IFmap region so the two streams never alias.
	filterBase int64

	skipPad bool
}

// New builds a generator for the layer under the given grid. If skipPad is
// true, loads that fall in the zero-padding halo are predicated off (the
// paper's traffic accounting keeps them, so the engine defaults to false).
func New(l layers.Conv, g tiling.Grid, skipPad bool) *Generator {
	mat := im2col.New(l)
	return &Generator{
		Layer:      l,
		Grid:       g,
		mat:        mat,
		fil:        im2col.NewFilter(l),
		filterBase: mat.PaddedElems() * layers.ElemBytes,
		skipPad:    skipPad,
	}
}

// FilterBase returns the byte address where the weight region starts.
func (g *Generator) FilterBase() int64 { return g.filterBase }

// VisitFn receives one warp's byte addresses (up to 32; fewer at predicated
// edges). The slice is reused across calls — consume, don't retain.
type VisitFn func(addrs []int64)

// IFmapLoop emits the warp requests loading the blkM x blkK IFmap tile of
// CTA (ctaRow, _) for one main loop. Threads are arranged down the M
// dimension, so each warp covers 32 consecutive rows of one matrix column —
// the Fig. 5a access pattern. Addresses are produced by stride-stepping an
// incremental column iterator instead of a full Address decode per element.
func (g *Generator) IFmapLoop(ctaRow, loop int, visit VisitFn) {
	t := g.Grid.Tile
	k0 := loop * t.BlkK
	row0 := ctaRow * t.BlkM
	rows := t.BlkM
	if row0+rows > g.Grid.M {
		rows = g.Grid.M - row0
	}
	var buf [tiling.WarpSize]int64

	for dk := 0; dk < t.BlkK; dk++ {
		k := k0 + dk
		if k >= g.Grid.K {
			break
		}
		it := g.mat.ColumnIter(k, row0)
		for chunk := 0; chunk < rows; chunk += tiling.WarpSize {
			lanes := rows - chunk
			if lanes > tiling.WarpSize {
				lanes = tiling.WarpSize
			}
			n := 0
			for i := 0; i < lanes; i++ {
				if !g.skipPad || !it.IsPad() {
					buf[n] = it.Addr() * layers.ElemBytes
					n++
				}
				it.Advance()
			}
			if n > 0 {
				visit(buf[:n])
			}
		}
	}
}

// FilterLoop emits the warp requests loading the blkN x blkK filter tile of
// CTA (_, ctaCol) for one main loop. Threads are arranged down the K
// dimension, so each warp covers blkK consecutive K elements of 32/blkK
// adjacent columns — the Fig. 5b/5c access pattern.
func (g *Generator) FilterLoop(ctaCol, loop int, visit VisitFn) {
	t := g.Grid.Tile
	k0 := loop * t.BlkK
	n0 := ctaCol * t.BlkN
	colsPerWarp := tiling.WarpSize / t.BlkK
	if colsPerWarp < 1 {
		colsPerWarp = 1
	}
	var buf [tiling.WarpSize]int64

	ks := t.BlkK
	if k0+ks > g.Grid.K {
		ks = g.Grid.K - k0
	}
	for group := 0; group < t.BlkN; group += colsPerWarp {
		cnt := 0
		for dc := 0; dc < colsPerWarp; dc++ {
			n := n0 + group + dc
			if n >= g.Grid.N {
				break
			}
			// Column n's blkK addresses are contiguous from (k0, n).
			addr := g.filterBase + g.fil.Address(k0, n)*layers.ElemBytes
			for dk := 0; dk < ks; dk++ {
				buf[cnt] = addr
				addr += layers.ElemBytes
				cnt++
			}
		}
		if cnt > 0 {
			visit(buf[:cnt])
		}
	}
}

// Coalescer groups a warp's addresses into L1 requests and unique sectors.
// A Coalescer is reusable and allocation-free after construction.
type Coalescer struct {
	reqBytes    int64
	sectorBytes int64

	sectors [tiling.WarpSize]int64
	nSec    int
}

// NewCoalescer builds a coalescer for a device's L1 request and sector
// granularities.
func NewCoalescer(reqBytes, sectorBytes int) *Coalescer {
	return &Coalescer{reqBytes: int64(reqBytes), sectorBytes: int64(sectorBytes)}
}

// Coalesce ingests one warp's byte addresses. It returns the number of L1
// requests (unique request-granularity blocks) the warp generates; the
// unique touched sectors are retrievable via Sectors until the next call.
//
// The generator emits every warp's addresses in ascending order (Fig. 5's
// access patterns are monotone), so duplicates are adjacent and one pass
// counts sectors and requests during insertion. Unsorted input — possible
// for external callers — falls back to the quadratic reference scan.
func (c *Coalescer) Coalesce(addrs []int64) (requests int) {
	c.nSec = 0
	ratio := c.reqBytes / c.sectorBytes
	prev := int64(-1)
	lastSec := int64(-1)
	lastReq := int64(-1)
	for i, a := range addrs {
		if a < prev {
			return c.coalesceUnsorted(addrs[i:])
		}
		prev = a
		if s := a / c.sectorBytes; s != lastSec {
			c.sectors[c.nSec] = s
			c.nSec++
			lastSec = s
			if r := s / ratio; r != lastReq {
				requests++
				lastReq = r
			}
		}
	}
	return requests
}

// coalesceUnsorted finishes a warp whose remaining addresses are not in
// ascending order, deduplicating against everything inserted so far in
// first-seen order (the reference semantics).
func (c *Coalescer) coalesceUnsorted(rest []int64) (requests int) {
	for _, a := range rest {
		s := a / c.sectorBytes
		found := false
		for i := c.nSec - 1; i >= 0; i-- {
			if c.sectors[i] == s {
				found = true
				break
			}
		}
		if !found {
			c.sectors[c.nSec] = s
			c.nSec++
		}
	}
	// Count requests over the full sector set: unique request-granularity
	// blocks in first-seen order.
	ratio := c.reqBytes / c.sectorBytes
	for i := 0; i < c.nSec; i++ {
		r := c.sectors[i] / ratio
		seen := false
		for j := 0; j < i; j++ {
			if c.sectors[j]/ratio == r {
				seen = true
				break
			}
		}
		if !seen {
			requests++
		}
	}
	return requests
}

// Sectors returns the unique sector indices (address / sectorBytes) of the
// last Coalesce call. The slice is invalidated by the next call.
func (c *Coalescer) Sectors() []int64 { return c.sectors[:c.nSec] }

// SectorBytes returns the sector granularity in bytes.
func (c *Coalescer) SectorBytes() int64 { return c.sectorBytes }
