// Package trace generates the warp-level global-load address streams of the
// blocked im2col GEMM: exactly the requests the cuDNN main loop issues for
// its IFmap and filter tiles (Fig. 5), CTA by CTA, loop by loop.
//
// The generator is the simulator's ground truth: the analytical model's L1
// and L2 equations are abstractions of these streams.
//
// A CTA's streams depend only on its grid coordinates, not its identity: the
// FilterLoop stream is a function of (ctaCol, loop) and the IFmapLoop stream
// of (ctaRow, loop), so every CTA in a wave that shares a row or column
// re-issues an identical stream — the redundancy behind the paper's
// column-wise scheduling argument (Section IV-C). StreamCache memoizes the
// coalesced form of each stream so the engine generates and coalesces it
// once per unique (axis, index, loop) per wave instead of once per CTA.
package trace

import (
	"math/bits"

	"delta/internal/im2col"
	"delta/internal/layers"
	"delta/internal/tiling"
)

// Generator produces warp requests for one layer's GEMM.
type Generator struct {
	Layer layers.Conv
	Grid  tiling.Grid

	mat im2col.Matrix
	fil im2col.FilterMatrix

	// filterBase is the byte offset of the weight region, placed after the
	// padded IFmap region so the two streams never alias.
	filterBase int64

	skipPad bool
}

// New builds a generator for the layer under the given grid. If skipPad is
// true, loads that fall in the zero-padding halo are predicated off (the
// paper's traffic accounting keeps them, so the engine defaults to false).
func New(l layers.Conv, g tiling.Grid, skipPad bool) *Generator {
	mat := im2col.New(l)
	return &Generator{
		Layer:      l,
		Grid:       g,
		mat:        mat,
		fil:        im2col.NewFilter(l),
		filterBase: mat.PaddedElems() * layers.ElemBytes,
		skipPad:    skipPad,
	}
}

// FilterBase returns the byte address where the weight region starts.
func (g *Generator) FilterBase() int64 { return g.filterBase }

// VisitFn receives one warp's byte addresses (up to 32; fewer at predicated
// edges). The slice is reused across calls — consume, don't retain.
type VisitFn func(addrs []int64)

// IFmapLoop emits the warp requests loading the blkM x blkK IFmap tile of
// CTA (ctaRow, _) for one main loop. Threads are arranged down the M
// dimension, so each warp covers 32 consecutive rows of one matrix column —
// the Fig. 5a access pattern. Addresses are produced by stride-stepping an
// incremental column iterator instead of a full Address decode per element.
func (g *Generator) IFmapLoop(ctaRow, loop int, visit VisitFn) {
	var buf [tiling.WarpSize]int64
	g.ifmapLoop(ctaRow, loop, &buf, visit)
}

// ifmapLoop is IFmapLoop with a caller-provided warp scratch buffer: visit
// is an unknown function, so a local buffer escapes to the heap on every
// call — per-CTA-per-loop on the simulator's hot path. Hot callers
// (StreamCache) pass a long-lived buffer instead.
func (g *Generator) ifmapLoop(ctaRow, loop int, buf *[tiling.WarpSize]int64, visit VisitFn) {
	t := g.Grid.Tile
	k0 := loop * t.BlkK
	row0 := ctaRow * t.BlkM
	rows := t.BlkM
	if row0+rows > g.Grid.M {
		rows = g.Grid.M - row0
	}

	for dk := 0; dk < t.BlkK; dk++ {
		k := k0 + dk
		if k >= g.Grid.K {
			break
		}
		it := g.mat.ColumnIter(k, row0)
		for chunk := 0; chunk < rows; chunk += tiling.WarpSize {
			lanes := rows - chunk
			if lanes > tiling.WarpSize {
				lanes = tiling.WarpSize
			}
			n := 0
			for i := 0; i < lanes; i++ {
				if !g.skipPad || !it.IsPad() {
					buf[n] = it.Addr() * layers.ElemBytes
					n++
				}
				it.Advance()
			}
			if n > 0 {
				visit(buf[:n])
			}
		}
	}
}

// FilterLoop emits the warp requests loading the blkN x blkK filter tile of
// CTA (_, ctaCol) for one main loop. Threads are arranged down the K
// dimension, so each warp covers blkK consecutive K elements of 32/blkK
// adjacent columns — the Fig. 5b/5c access pattern.
func (g *Generator) FilterLoop(ctaCol, loop int, visit VisitFn) {
	var buf [tiling.WarpSize]int64
	g.filterLoop(ctaCol, loop, &buf, visit)
}

// filterLoop is FilterLoop with a caller-provided warp scratch buffer; see
// ifmapLoop.
func (g *Generator) filterLoop(ctaCol, loop int, buf *[tiling.WarpSize]int64, visit VisitFn) {
	t := g.Grid.Tile
	k0 := loop * t.BlkK
	n0 := ctaCol * t.BlkN
	colsPerWarp := tiling.WarpSize / t.BlkK
	if colsPerWarp < 1 {
		colsPerWarp = 1
	}

	ks := t.BlkK
	if k0+ks > g.Grid.K {
		ks = g.Grid.K - k0
	}
	for group := 0; group < t.BlkN; group += colsPerWarp {
		cnt := 0
		for dc := 0; dc < colsPerWarp; dc++ {
			n := n0 + group + dc
			if n >= g.Grid.N {
				break
			}
			// Column n's blkK addresses are contiguous from (k0, n).
			addr := g.filterBase + g.fil.Address(k0, n)*layers.ElemBytes
			for dk := 0; dk < ks; dk++ {
				buf[cnt] = addr
				addr += layers.ElemBytes
				cnt++
			}
		}
		if cnt > 0 {
			visit(buf[:cnt])
		}
	}
}

// Coalescer groups a warp's addresses into L1 requests and unique sectors.
// A Coalescer is reusable and allocation-free after construction.
type Coalescer struct {
	reqBytes    int64
	sectorBytes int64

	// Power-of-two granularities (every modeled device) replace the two
	// divisions per address with shifts.
	secShift   uint
	ratioShift uint
	pow2       bool

	sectors [tiling.WarpSize]int64
	nSec    int
}

// NewCoalescer builds a coalescer for a device's L1 request and sector
// granularities.
func NewCoalescer(reqBytes, sectorBytes int) *Coalescer {
	c := &Coalescer{reqBytes: int64(reqBytes), sectorBytes: int64(sectorBytes)}
	if sectorBytes > 0 && reqBytes >= sectorBytes &&
		sectorBytes&(sectorBytes-1) == 0 && reqBytes&(reqBytes-1) == 0 {
		c.pow2 = true
		c.secShift = uint(bits.TrailingZeros(uint(sectorBytes)))
		c.ratioShift = uint(bits.TrailingZeros(uint(reqBytes / sectorBytes)))
	}
	return c
}

// Coalesce ingests one warp's byte addresses. It returns the number of L1
// requests (unique request-granularity blocks) the warp generates; the
// unique touched sectors are retrievable via Sectors until the next call.
//
// The generator emits every warp's addresses in ascending order (Fig. 5's
// access patterns are monotone), so duplicates are adjacent and one pass
// counts sectors and requests during insertion. Unsorted input — possible
// for external callers — falls back to the quadratic reference scan, whose
// result (first-seen sector order, distinct request blocks over the whole
// warp including the already-inserted sorted prefix) is pinned against
// coalesceRef by TestCoalescerQuickVsReference.
func (c *Coalescer) Coalesce(addrs []int64) (requests int) {
	c.nSec = 0
	if c.pow2 {
		prev := int64(-1)
		lastSec := int64(-1)
		lastReq := int64(-1)
		for i, a := range addrs {
			if a < prev {
				return c.coalesceUnsorted(addrs[i:])
			}
			prev = a
			if s := a >> c.secShift; s != lastSec {
				c.sectors[c.nSec] = s
				c.nSec++
				lastSec = s
				if r := s >> c.ratioShift; r != lastReq {
					requests++
					lastReq = r
				}
			}
		}
		return requests
	}
	ratio := c.reqBytes / c.sectorBytes
	prev := int64(-1)
	lastSec := int64(-1)
	lastReq := int64(-1)
	for i, a := range addrs {
		if a < prev {
			return c.coalesceUnsorted(addrs[i:])
		}
		prev = a
		if s := a / c.sectorBytes; s != lastSec {
			c.sectors[c.nSec] = s
			c.nSec++
			lastSec = s
			if r := s / ratio; r != lastReq {
				requests++
				lastReq = r
			}
		}
	}
	return requests
}

// coalesceUnsorted finishes a warp whose remaining addresses are not in
// ascending order, deduplicating against everything inserted so far —
// including the sorted prefix — in first-seen order (the reference
// semantics). The request count is recomputed over the full sector set, so
// blocks the sorted prefix already spanned are not double-counted.
func (c *Coalescer) coalesceUnsorted(rest []int64) (requests int) {
	for _, a := range rest {
		s := a / c.sectorBytes
		found := false
		for i := c.nSec - 1; i >= 0; i-- {
			if c.sectors[i] == s {
				found = true
				break
			}
		}
		if !found {
			c.sectors[c.nSec] = s
			c.nSec++
		}
	}
	// Count requests over the full sector set: unique request-granularity
	// blocks in first-seen order.
	ratio := c.reqBytes / c.sectorBytes
	for i := 0; i < c.nSec; i++ {
		r := c.sectors[i] / ratio
		seen := false
		for j := 0; j < i; j++ {
			if c.sectors[j]/ratio == r {
				seen = true
				break
			}
		}
		if !seen {
			requests++
		}
	}
	return requests
}

// Sectors returns the unique sector indices (address / sectorBytes) of the
// last Coalesce call. The slice is invalidated by the next call.
func (c *Coalescer) Sectors() []int64 { return c.sectors[:c.nSec] }

// SectorBytes returns the sector granularity in bytes.
func (c *Coalescer) SectorBytes() int64 { return c.sectorBytes }

// LineRun is a maximal ascending run of unique sectors within one cache
// line: Line is the line index (byte address / LineBytes) and bit i of
// Mask marks sector i of that line.
type LineRun struct {
	Line int64
	Mask uint64
}

// Stream is one tile stream — the warp requests of one (axis, index, loop)
// cell — in coalesced form: the unique-per-warp sectors in L1 access order
// (warps concatenated in issue order), compressed into line runs, plus the
// total L1 request count. Replaying Runs through a cache (one
// AccessLineSectors call per run) is bit-identical to generating and
// coalescing the stream warp by warp and accessing each sector: runs only
// merge sectors that were adjacent and ascending in the original stream,
// so access order, duplicate revisits across warps, and per-sector counts
// are all preserved.
type Stream struct {
	Requests uint64
	Runs     []LineRun
}

// streamEntry is one memo slot: the stream of (index, loop). A slot either
// owns its storage (s, whose Runs buffer is reused across refills) or
// references an immutable shared-tier stream (ref non-nil) when the cache
// is backed by a SharedStreams tier.
type streamEntry struct {
	index int32
	loop  int32
	live  bool
	ref   *Stream
	s     Stream
}

// stream returns the slot's current stream.
func (e *streamEntry) stream() *Stream {
	if e.ref != nil {
		return e.ref
	}
	return &e.s
}

// StreamCache memoizes coalesced tile streams keyed by (axis, index, loop).
// It is bounded to one wave's worth of unique streams per axis: slots are
// direct-mapped by index modulo the wave-derived slot count, so a wave's
// streams never collide (indices active in one wave span less than the slot
// count) and older waves' entries are evicted by overwrite — a ring, not a
// tracked LRU. A StreamCache is single-goroutine (each engine worker owns
// one); streams are pure functions of (axis, index, loop), so per-worker
// caches cannot diverge.
type StreamCache struct {
	gen *Generator
	co  *Coalescer

	lineShift  uint // log2(LineBytes / SectorBytes): sector index -> line
	secShift   uint // log2(SectorBytes)
	ratioShift uint // log2(L1ReqBytes / SectorBytes)

	// fastIFmap selects the fused IFmap path: instead of materializing
	// every warp's 32 addresses and re-scanning them in the coalescer, the
	// column iterator is stepped run by run and each run's sector range is
	// emitted arithmetically. Requires no padding predication and a step
	// (Stride elements) no larger than a sector, so runs touch every
	// sector in their range — true of every real conv layer; anything else
	// falls back to the warp-by-warp path. Both paths produce identical
	// Streams (pinned by TestStreamCacheFastMatchesGeneric).
	fastIFmap bool

	ifmap  []streamEntry // direct-mapped by ctaRow % len
	filter []streamEntry // direct-mapped by ctaCol % len

	// shared, when non-nil, backs ring misses with the process-level
	// stream tier: generation lands in a fresh immutable Stream that is
	// published under its full identity key (keyProto + axis/index/loop),
	// so later runs — or sibling workers of this run — reuse it. With
	// shared == nil the ring owns its storage and refills are
	// allocation-free, exactly the pre-tier behaviour.
	shared   *SharedStreams
	keyProto sharedKey
	scratch  Stream // reusable generation target for tier publication

	buf     [tiling.WarpSize]int64 // warp scratch shared by both axes
	cur     *Stream                // fill target of the in-flight generation
	lastSec int64                  // last appended sector, for run merging

	// Per-warp coalescing state of the fused path (the Coalescer resets
	// per warp, so block/request counting must too).
	wLastSec int64
	wLastReq int64

	visit VisitFn // allocated once; appends into cur
}

// NewStreamCache builds a stream memo over gen for a device's coalescing
// granularities (lineBytes/sectorBytes must be a power-of-two ratio, as
// gpu.Device.Validate guarantees), sized to one wave of waveSize CTAs.
func NewStreamCache(gen *Generator, reqBytes, sectorBytes, lineBytes, waveSize int) *StreamCache {
	slots := func(n int) int {
		if n > waveSize {
			n = waveSize
		}
		if n < 1 {
			n = 1
		}
		return n
	}
	sc := &StreamCache{
		gen:        gen,
		co:         NewCoalescer(reqBytes, sectorBytes),
		lineShift:  uint(bits.TrailingZeros(uint(lineBytes / sectorBytes))),
		secShift:   uint(bits.TrailingZeros(uint(sectorBytes))),
		ratioShift: uint(bits.TrailingZeros(uint(reqBytes / sectorBytes))),
		ifmap:      make([]streamEntry, slots(gen.Grid.Rows)),
		filter:     make([]streamEntry, slots(gen.Grid.Cols)),
		keyProto: sharedKey{
			layer:       gen.Layer,
			grid:        gen.Grid,
			skipPad:     gen.skipPad,
			reqBytes:    int32(reqBytes),
			sectorBytes: int32(sectorBytes),
			lineBytes:   int32(lineBytes),
		},
	}
	sc.fastIFmap = !gen.skipPad &&
		int64(gen.Layer.Stride)*layers.ElemBytes <= int64(sectorBytes) &&
		reqBytes >= sectorBytes &&
		sectorBytes&(sectorBytes-1) == 0 && reqBytes&(reqBytes-1) == 0
	sc.visit = func(addrs []int64) {
		sc.cur.Requests += uint64(sc.co.Coalesce(addrs))
		runs := sc.cur.Runs
		for _, sec := range sc.co.Sectors() {
			line := sec >> sc.lineShift
			// Merge into the open run only while the stream stays on the
			// same line AND keeps ascending: a warp boundary may revisit a
			// line at a lower (or equal) sector, which must remain a
			// separate access so replay order and counts stay exact.
			if n := len(runs); n > 0 && runs[n-1].Line == line && sec > sc.lastSec {
				runs[n-1].Mask |= 1 << uint(sec-(line<<sc.lineShift))
			} else {
				runs = append(runs, LineRun{Line: line, Mask: 1 << uint(sec-(line<<sc.lineShift))})
			}
			sc.lastSec = sec
		}
		sc.cur.Runs = runs
	}
	return sc
}

// IFmap returns the coalesced IFmap tile stream of CTA row ctaRow at the
// given main loop, generating it only if the slot does not already hold it.
// The returned Stream is valid until the slot is refilled (at the earliest,
// the next IFmap call with a different row or loop).
func (sc *StreamCache) IFmap(ctaRow, loop int) *Stream {
	e := &sc.ifmap[ctaRow%len(sc.ifmap)]
	if e.live && e.index == int32(ctaRow) && e.loop == int32(loop) {
		return e.stream()
	}
	e.index, e.loop, e.live = int32(ctaRow), int32(loop), true
	if sc.shared != nil {
		e.ref = sc.sharedStream(axisIFmap, ctaRow, loop)
		return e.ref
	}
	e.ref = nil
	sc.fill(&e.s)
	if sc.fastIFmap {
		sc.fillIFmapFused(ctaRow, loop)
	} else {
		sc.gen.ifmapLoop(ctaRow, loop, &sc.buf, sc.visit)
	}
	return &e.s
}

// sharedStream resolves a ring miss against the shared tier: a hit returns
// the canonical published stream; a miss generates into the reusable
// scratch stream and publishes an exact-size immutable copy (two
// right-sized allocations instead of append-growth into a fresh buffer),
// adopting whichever copy the tier kept.
func (sc *StreamCache) sharedStream(axis streamAxis, index, loop int) *Stream {
	key := sc.keyProto
	key.axis, key.index, key.loop = axis, int32(index), int32(loop)
	if st := sc.shared.get(key); st != nil {
		return st
	}
	sc.fill(&sc.scratch)
	switch {
	case axis == axisFilter:
		sc.gen.filterLoop(index, loop, &sc.buf, sc.visit)
	case sc.fastIFmap:
		sc.fillIFmapFused(index, loop)
	default:
		sc.gen.ifmapLoop(index, loop, &sc.buf, sc.visit)
	}
	sc.cur = nil
	st := &Stream{Requests: sc.scratch.Requests, Runs: make([]LineRun, len(sc.scratch.Runs))}
	copy(st.Runs, sc.scratch.Runs)
	return sc.shared.put(key, st)
}

// fillIFmapFused generates the IFmap stream of (ctaRow, loop) without
// materializing addresses: each warp is a slice of one im2col column, which
// the column iterator decomposes into arithmetic runs (fixed Stride-element
// step until the output-row wrap); a run's touched sectors are exactly the
// range [first, last] because the step never exceeds a sector. Warp
// boundaries reset block/request state just as the Coalescer does per call.
func (sc *StreamCache) fillIFmapFused(ctaRow, loop int) {
	g := sc.gen
	t := g.Grid.Tile
	k0 := loop * t.BlkK
	row0 := ctaRow * t.BlkM
	rows := t.BlkM
	if row0+rows > g.Grid.M {
		rows = g.Grid.M - row0
	}
	step := int64(g.Layer.Stride) * layers.ElemBytes

	for dk := 0; dk < t.BlkK; dk++ {
		k := k0 + dk
		if k >= g.Grid.K {
			break
		}
		it := g.mat.ColumnIter(k, row0)
		for chunk := 0; chunk < rows; chunk += tiling.WarpSize {
			lanes := rows - chunk
			if lanes > tiling.WarpSize {
				lanes = tiling.WarpSize
			}
			sc.wLastSec = -1
			sc.wLastReq = -1
			for lanes > 0 {
				run := it.RunLen()
				if run > lanes {
					run = lanes
				}
				a0 := it.Addr() * layers.ElemBytes
				sc.emitSectorRange(a0>>sc.secShift, (a0+int64(run-1)*step)>>sc.secShift)
				it.AdvanceRun(run)
				lanes -= run
			}
		}
	}
}

// emitSectorRange appends the ascending sector range [s0, s1] to the
// current stream: warp-local dedup against the previous sector, request
// counting on block transitions, and line-run compression — the same
// decisions the materialize-then-Coalesce path makes per address.
func (sc *StreamCache) emitSectorRange(s0, s1 int64) {
	if s0 == sc.wLastSec {
		s0++
	}
	if s1 < s0 {
		return
	}
	runs := sc.cur.Runs
	for s := s0; s <= s1; s++ {
		if b := s >> sc.ratioShift; b != sc.wLastReq {
			sc.cur.Requests++
			sc.wLastReq = b
		}
		line := s >> sc.lineShift
		bit := uint64(1) << uint(s-(line<<sc.lineShift))
		if n := len(runs); n > 0 && runs[n-1].Line == line && s > sc.lastSec {
			runs[n-1].Mask |= bit
		} else {
			runs = append(runs, LineRun{Line: line, Mask: bit})
		}
		sc.lastSec = s
	}
	sc.cur.Runs = runs
	sc.wLastSec = s1
}

// Filter is IFmap for the filter axis: the stream of CTA column ctaCol.
func (sc *StreamCache) Filter(ctaCol, loop int) *Stream {
	e := &sc.filter[ctaCol%len(sc.filter)]
	if e.live && e.index == int32(ctaCol) && e.loop == int32(loop) {
		return e.stream()
	}
	e.index, e.loop, e.live = int32(ctaCol), int32(loop), true
	if sc.shared != nil {
		e.ref = sc.sharedStream(axisFilter, ctaCol, loop)
		return e.ref
	}
	e.ref = nil
	sc.fill(&e.s)
	sc.gen.filterLoop(ctaCol, loop, &sc.buf, sc.visit)
	return &e.s
}

// SetShared backs the cache with a process-level stream tier: ring misses
// consult (and feed) ss instead of regenerating into private storage. A nil
// tier restores the private allocation-free behaviour.
func (sc *StreamCache) SetShared(ss *SharedStreams) { sc.shared = ss }

func (sc *StreamCache) fill(s *Stream) {
	s.Requests = 0
	s.Runs = s.Runs[:0]
	sc.cur = s
	sc.lastSec = -1
}
